package gks

import (
	"bytes"
	"context"
	"errors"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

const universityXML = `<?xml version="1.0"?>
<Dept>
  <Dept_Name>CS</Dept_Name>
  <Area>
    <Name>Databases</Name>
    <Courses>
      <Course>
        <Name>Data Mining</Name>
        <Students>
          <Student>Karen</Student>
          <Student>Mike</Student>
          <Student>John</Student>
        </Students>
      </Course>
      <Course>
        <Name>Algorithms</Name>
        <Students>
          <Student>Karen</Student>
          <Student>Julie</Student>
        </Students>
      </Course>
    </Courses>
  </Area>
</Dept>`

func university(t *testing.T) *System {
	t.Helper()
	doc, err := ParseDocumentString(universityXML, "university.xml")
	if err != nil {
		t.Fatal(err)
	}
	sys, err := IndexDocuments(doc)
	if err != nil {
		t.Fatal(err)
	}
	return sys
}

func TestEndToEndSearch(t *testing.T) {
	sys := university(t)
	resp, err := sys.Search("karen mike john", 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(resp.Results) != 1 {
		t.Fatalf("results = %d, want the Data Mining course", len(resp.Results))
	}
	r := resp.Results[0]
	if r.Label != "Course" || !r.IsEntity {
		t.Errorf("result = %s entity=%v", r.Label, r.IsEntity)
	}
	chunk, err := sys.Chunk(r)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(chunk, "<Name>Data Mining</Name>") {
		t.Errorf("chunk missing course name:\n%s", chunk)
	}
}

func TestEndToEndInsights(t *testing.T) {
	sys := university(t)
	resp, err := sys.Search("karen", 1)
	if err != nil {
		t.Fatal(err)
	}
	ins := sys.Insights(resp, 3)
	if len(ins) == 0 {
		t.Fatal("no insights")
	}
	found := false
	for _, in := range ins {
		if in.Value == "Data Mining" || in.Value == "Algorithms" {
			found = true
		}
	}
	if !found {
		t.Errorf("insights = %v, want course names", ins)
	}
}

func TestEndToEndRefinements(t *testing.T) {
	sys := university(t)
	resp, err := sys.Search("karen julie mike", 2)
	if err != nil {
		t.Fatal(err)
	}
	refs := sys.Refinements(resp, 3)
	if len(refs) == 0 {
		t.Fatal("no refinement suggestions")
	}
	// {karen, julie} (Algorithms) and {karen, mike} (Data Mining) are the
	// natural sub-queries.
	joined := make([]string, len(refs))
	for i, r := range refs {
		joined[i] = r.String()
	}
	all := strings.Join(joined, " | ")
	if !strings.Contains(all, "karen") {
		t.Errorf("refinements = %v", joined)
	}
}

func TestBaselines(t *testing.T) {
	sys := university(t)
	q := NewQuery("karen", "mike", "john")
	slca := sys.SLCA(q)
	if len(slca) != 1 || slca[0] != "0.0.1.1.0.1" {
		t.Errorf("SLCA = %v, want [0.0.1.1.0.1] (the Students node)", slca)
	}
	elca := sys.ELCA(q)
	if len(elca) < 1 {
		t.Errorf("ELCA = %v", elca)
	}
}

func TestSaveLoadIndexRoundTrip(t *testing.T) {
	sys := university(t)
	var buf bytes.Buffer
	if err := sys.SaveIndex(&buf); err != nil {
		t.Fatal(err)
	}
	loaded, err := LoadIndex(&buf)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := loaded.Search("karen mike", 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(resp.Results) == 0 {
		t.Fatal("loaded index returns no results")
	}
	if _, err := loaded.Chunk(resp.Results[0]); err == nil {
		t.Error("Chunk must fail without documents")
	}
}

func TestSaveLoadIndexFile(t *testing.T) {
	sys := university(t)
	path := filepath.Join(t.TempDir(), "uni.gksidx")
	if err := sys.SaveIndexFile(path); err != nil {
		t.Fatal(err)
	}
	loaded, err := LoadIndexFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if loaded.Stats().ElementNodes != sys.Stats().ElementNodes {
		t.Error("stats differ after file round trip")
	}
}

func TestCategoryOf(t *testing.T) {
	sys := university(t)
	cat, ok := sys.CategoryOf("0.0.1.1.0")
	if !ok || cat&EntityNode == 0 {
		t.Errorf("Course category = %v/%v, want entity", cat, ok)
	}
	cat, ok = sys.CategoryOf("0.0.0")
	if !ok || cat != AttributeNode {
		t.Errorf("Dept_Name category = %v/%v, want attribute", cat, ok)
	}
	if _, ok := sys.CategoryOf("9.9"); ok {
		t.Error("missing node must report !ok")
	}
	if _, ok := sys.CategoryOf("garbage"); ok {
		t.Error("bad ID must report !ok")
	}
}

func TestIndexDocumentsErrors(t *testing.T) {
	if _, err := IndexDocuments(); err == nil {
		t.Error("no documents must error")
	}
}

func TestIndexFiles(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "u.xml")
	if err := writeFile(path, universityXML); err != nil {
		t.Fatal(err)
	}
	sys, err := IndexFiles(path)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := sys.Search("karen", 1)
	if err != nil || len(resp.Results) == 0 {
		t.Fatalf("search on file-built index: %v / %d results", err, len(resp.Results))
	}
	if _, err := IndexFiles(filepath.Join(dir, "missing.xml")); err == nil {
		t.Error("missing file must error")
	}
}

func TestBuilderAPI(t *testing.T) {
	doc := BuildDocument("built.xml", E("lib",
		E("book", ET("title", "systems design"), ET("author", "Ann")),
		E("book", ET("title", "query processing"), ET("author", "Ann")),
	))
	sys, err := IndexDocuments(doc)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := sys.Search("ann", 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(resp.Results) != 2 {
		t.Errorf("results = %d, want both books", len(resp.Results))
	}
}

func TestRecursiveInsights(t *testing.T) {
	sys := university(t)
	rounds, err := sys.InsightsRecursive(NewQuery("karen"), 1, 2, 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(rounds) < 1 || len(rounds[0].Insights) == 0 {
		t.Fatalf("rounds = %+v", rounds)
	}
}

func writeFile(path, content string) error {
	return os.WriteFile(path, []byte(content), 0o644)
}

func TestFacadeBestEffortAndTopK(t *testing.T) {
	sys := university(t)
	resp, err := sys.SearchBestEffort("karen mike john harry")
	if err != nil {
		t.Fatal(err)
	}
	// harry is unknown; the best supported subset is {karen, mike, john}.
	if resp.S != 3 {
		t.Errorf("best-effort s = %d, want 3", resp.S)
	}
	topk, err := sys.SearchTopK("karen mike john", 1, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(topk.Results) != 1 || topk.Results[0].Label != "Course" {
		t.Errorf("top-1 = %+v", topk.Results)
	}
}

func TestFacadeSchema(t *testing.T) {
	sys := university(t)
	edges := sys.Schema()
	if len(edges) == 0 {
		t.Fatal("no schema edges")
	}
	found := false
	for _, e := range edges {
		if e.Parent == "Students" && e.Child == "Student" && e.Repeats {
			found = true
		}
	}
	if !found {
		t.Errorf("Students/Student edge missing or not repeating: %v", edges)
	}
	// Re-categorization on this regular document changes little but must
	// keep searches working.
	sys.ApplySchemaCategorization()
	resp, err := sys.Search("karen", 1)
	if err != nil || len(resp.Results) == 0 {
		t.Fatalf("search after schema apply: %v / %d", err, len(resp.Results))
	}
}

func TestFacadeXPath(t *testing.T) {
	sys := university(t)
	nodes, err := sys.XPath(`//Course[Name="Data Mining"]/Students/Student`)
	if err != nil {
		t.Fatal(err)
	}
	if len(nodes) != 3 {
		t.Fatalf("xpath students = %d, want 3", len(nodes))
	}
	// Cross-check: the GKS result for the same intent covers exactly these
	// students' course.
	resp, err := sys.Search("karen mike john", 3)
	if err != nil {
		t.Fatal(err)
	}
	course := resp.Results[0].ID
	for _, n := range nodes {
		if !course.IsAncestorOrSelf(n.ID) {
			t.Errorf("xpath node %s outside GKS result %s", n.ID, course)
		}
	}
	if _, err := sys.XPath("not an xpath"); err == nil {
		t.Error("bad expression must error")
	}
	// Index-only systems cannot evaluate XPath.
	var buf bytes.Buffer
	if err := sys.SaveIndex(&buf); err != nil {
		t.Fatal(err)
	}
	loaded, err := LoadIndex(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := loaded.XPath("//Student"); err == nil {
		t.Error("XPath on index-only system must error")
	}
}

func TestFacadeExplain(t *testing.T) {
	sys := university(t)
	ex, err := sys.Explain("karen mike", 2)
	if err != nil {
		t.Fatal(err)
	}
	if ex.Survivors != len(ex.Response.Results) || ex.SLSize == 0 {
		t.Errorf("explain stats inconsistent: %+v", ex)
	}
}

func TestFacadeAddDocuments(t *testing.T) {
	sys := university(t)
	before, err := sys.Search("zoe", 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(before.Results) != 0 {
		t.Fatal("zoe should not exist yet")
	}
	extra := BuildDocument("extra.xml", E("Dept",
		ET("Dept_Name", "EE"),
		E("Area",
			ET("Name", "Signals"),
			E("Courses",
				E("Course",
					ET("Name", "DSP"),
					E("Students", ET("Student", "Zoe"), ET("Student", "Karen")),
				),
			),
		),
	))
	if err := sys.AddDocuments(extra); err != nil {
		t.Fatal(err)
	}
	after, err := sys.Search("zoe", 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(after.Results) != 1 {
		t.Fatalf("zoe after add = %d results", len(after.Results))
	}
	if after.Results[0].ID.Doc != 1 {
		t.Errorf("zoe found in doc %d, want 1", after.Results[0].ID.Doc)
	}
	// Old content still searchable, and chunks resolve across documents.
	both, err := sys.Search("karen", 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(both.Results) != 3 {
		t.Fatalf("karen courses = %d, want 3", len(both.Results))
	}
	if _, err := sys.Chunk(after.Results[0]); err != nil {
		t.Errorf("chunk across documents: %v", err)
	}
}

func TestFacadeSnippet(t *testing.T) {
	sys := university(t)
	resp, err := sys.Search("karen mike", 2)
	if err != nil {
		t.Fatal(err)
	}
	lines, err := sys.Snippet(resp, resp.Results[0], 5)
	if err != nil {
		t.Fatal(err)
	}
	if len(lines) == 0 {
		t.Fatal("no snippet lines")
	}
	found := false
	for _, l := range lines {
		if strings.Contains(l.Text, "«Karen»") {
			found = true
		}
	}
	if !found {
		t.Errorf("no highlighted match: %+v", lines)
	}
}

func TestFacadeSuggestAndTypes(t *testing.T) {
	sys := university(t)
	if sys.HasMatches("karne") {
		t.Fatal("misspelling should have no matches")
	}
	sug := sys.Suggest("karne", 2, 3)
	if len(sug) == 0 || sug[0].Keyword != "karen" {
		t.Fatalf("Suggest = %+v, want karen", sug)
	}
	types := sys.InferResultTypes("karen mike", 2)
	if len(types) == 0 || types[0].Label != "Course" {
		t.Fatalf("types = %+v, want Course", types)
	}
	// Vocabulary refreshes after AddDocuments.
	extra := BuildDocument("x.xml", E("Dept",
		ET("Dept_Name", "ME"),
		E("Area", ET("Name", "Fluids"),
			E("Courses", E("Course", ET("Name", "Turbulence"),
				E("Students", ET("Student", "Quentin"), ET("Student", "Xander"))))),
	))
	if err := sys.AddDocuments(extra); err != nil {
		t.Fatal(err)
	}
	sug = sys.Suggest("xandre", 2, 3)
	if len(sug) == 0 || sug[0].Keyword != "xander" {
		t.Fatalf("post-add Suggest = %+v, want xander", sug)
	}
}

func TestFacadePrunedChunk(t *testing.T) {
	sys := university(t)
	resp, err := sys.Search("karen", 1)
	if err != nil {
		t.Fatal(err)
	}
	chunk, err := sys.PrunedChunk(resp, resp.Results[0])
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(chunk, "Karen") {
		t.Errorf("pruned chunk missing match:\n%s", chunk)
	}
	if strings.Contains(chunk, "Julie") && strings.Contains(chunk, "Mike") {
		// The top result is a single course; its other students must have
		// been pruned (only one of Mike/Julie can appear, and only if that
		// course's roster contains Karen's co-match... in fact neither
		// non-matching student should survive).
		t.Errorf("pruned chunk kept irrelevant students:\n%s", chunk)
	}
}

func TestIndexFilesStreaming(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "u.xml")
	if err := writeFile(path, universityXML); err != nil {
		t.Fatal(err)
	}
	streamed, err := IndexFilesStreaming(path)
	if err != nil {
		t.Fatal(err)
	}
	treed, err := IndexFiles(path)
	if err != nil {
		t.Fatal(err)
	}
	a, err := streamed.Search("karen mike john", 3)
	if err != nil {
		t.Fatal(err)
	}
	b, err := treed.Search("karen mike john", 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(a.Results) != len(b.Results) || a.Results[0].ID.String() != b.Results[0].ID.String() {
		t.Errorf("streaming and tree builds disagree: %+v vs %+v", a.Results, b.Results)
	}
	// Tree-dependent features are unavailable.
	if _, err := streamed.Chunk(a.Results[0]); err == nil {
		t.Error("Chunk must fail on a streamed system")
	}
}

func TestFacadeSmallWrappers(t *testing.T) {
	// ParseDocument / T / SearchQuery / stats wrappers / Augmentations.
	doc, err := ParseDocument(strings.NewReader(universityXML), "u.xml")
	if err != nil {
		t.Fatal(err)
	}
	sys, err := IndexDocuments(doc)
	if err != nil {
		t.Fatal(err)
	}
	if n := T("hello"); n.Value() != "hello" {
		t.Errorf("T = %q", n.Value())
	}
	resp, err := sys.SearchQuery(NewQuery("karen"), 1)
	if err != nil || len(resp.Results) == 0 {
		t.Fatalf("SearchQuery: %v", err)
	}
	if top := sys.TopKeywords(3); len(top) != 3 {
		t.Errorf("TopKeywords = %d", len(top))
	}
	if hist := sys.LabelHistogram(); len(hist) == 0 {
		t.Error("empty label histogram")
	}
	if depths := sys.DepthHistogram(); len(depths) == 0 || depths[0] != 1 {
		t.Errorf("depth histogram = %v", depths)
	}
	ins := sys.Insights(resp, 1)
	if len(ins) == 0 {
		t.Fatal("no insights")
	}
	augs := sys.Augmentations(NewQuery("karen"), ins, 1)
	if len(augs) != 1 || augs[0].Len() != 2 {
		t.Errorf("Augmentations = %+v", augs)
	}
}

func TestSearchContext(t *testing.T) {
	sys := university(t)
	ctx := context.Background()

	resp, err := sys.SearchContext(ctx, "karen mike", 2)
	if err != nil {
		t.Fatal(err)
	}
	plain, err := sys.Search("karen mike", 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(resp.Results) != len(plain.Results) {
		t.Errorf("SearchContext returned %d results, Search %d", len(resp.Results), len(plain.Results))
	}

	if resp, err := sys.SearchBestEffortContext(ctx, "karen julie mike"); err != nil || resp.S < 2 {
		t.Errorf("SearchBestEffortContext = (%+v, %v)", resp, err)
	}
	if _, err := sys.SearchTopKContext(ctx, "karen", 1, 1); err != nil {
		t.Errorf("SearchTopKContext: %v", err)
	}
	if ex, err := sys.ExplainContext(ctx, "karen mike", 2); err != nil || ex.SLSize == 0 {
		t.Errorf("ExplainContext = (%+v, %v)", ex, err)
	}
}

func TestSearchContextCanceled(t *testing.T) {
	sys := university(t)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	for name, run := range map[string]func() error{
		"SearchContext":           func() error { _, err := sys.SearchContext(ctx, "karen", 1); return err },
		"SearchBestEffortContext": func() error { _, err := sys.SearchBestEffortContext(ctx, "karen"); return err },
		"SearchTopKContext":       func() error { _, err := sys.SearchTopKContext(ctx, "karen", 1, 1); return err },
		"ExplainContext":          func() error { _, err := sys.ExplainContext(ctx, "karen", 1); return err },
	} {
		if err := run(); !errors.Is(err, context.Canceled) {
			t.Errorf("%s with canceled ctx: err = %v, want context.Canceled", name, err)
		}
	}
}

func TestIndexFilesLenient(t *testing.T) {
	dir := t.TempDir()
	good := filepath.Join(dir, "good.xml")
	bad := filepath.Join(dir, "bad.xml")
	missing := filepath.Join(dir, "missing.xml")
	if err := writeFile(good, universityXML); err != nil {
		t.Fatal(err)
	}
	if err := writeFile(bad, "<Dept><unclosed>"); err != nil {
		t.Fatal(err)
	}

	sys, skipped, err := IndexFilesLenient(good, bad, missing)
	if err != nil {
		t.Fatalf("lenient batch with one good file errored: %v", err)
	}
	if len(skipped) != 2 {
		t.Fatalf("skipped = %d files (%v), want 2", len(skipped), skipped)
	}
	for _, fe := range skipped {
		if fe.Path != bad && fe.Path != missing {
			t.Errorf("unexpected skipped path %q", fe.Path)
		}
		if fe.Unwrap() == nil || !strings.Contains(fe.Error(), fe.Path) {
			t.Errorf("FileError should carry cause and name the file: %v", fe)
		}
	}
	resp, err := sys.Search("karen", 1)
	if err != nil || len(resp.Results) == 0 {
		t.Fatalf("search on lenient-built index: %v / %+v", err, resp)
	}

	// All files unusable: lenient mode still errors rather than returning
	// an empty searchable system.
	if _, _, err := IndexFilesLenient(bad, missing); err == nil {
		t.Error("lenient batch with zero parsable files must error")
	}
	if _, _, err := IndexFilesLenient(); err == nil {
		t.Error("lenient batch with no files must error")
	}
}

func TestLoadIndexFileCorrupt(t *testing.T) {
	sys := university(t)
	dir := t.TempDir()
	path := filepath.Join(dir, "uni.gksidx")
	if err := sys.SaveIndexFile(path); err != nil {
		t.Fatal(err)
	}
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}

	cases := map[string][]byte{
		"flipped.gksidx":   append(append([]byte(nil), raw[:len(raw)/2]...), append([]byte{raw[len(raw)/2] ^ 0x10}, raw[len(raw)/2+1:]...)...),
		"truncated.gksidx": raw[:len(raw)-5],
		"empty.gksidx":     {},
		"garbage.gksidx":   []byte("this is not an index"),
	}
	for name, data := range cases {
		p := filepath.Join(dir, name)
		if err := os.WriteFile(p, data, 0o644); err != nil {
			t.Fatal(err)
		}
		_, err := LoadIndexFile(p)
		if !errors.Is(err, ErrCorruptIndex) {
			t.Errorf("%s: err = %v, want ErrCorruptIndex", name, err)
		}
		if err == nil || !strings.Contains(err.Error(), name) {
			t.Errorf("%s: error should name the file: %v", name, err)
		}
	}

	// A missing file is an I/O problem, not corruption.
	if _, err := LoadIndexFile(filepath.Join(dir, "nope.gksidx")); err == nil || errors.Is(err, ErrCorruptIndex) {
		t.Errorf("missing file err = %v, want non-nil and not ErrCorruptIndex", err)
	}
}

func TestValidateIndexOnHealthySystem(t *testing.T) {
	if err := university(t).ValidateIndex(); err != nil {
		t.Errorf("ValidateIndex on a freshly built system: %v", err)
	}
}
