// Quickstart: index a small XML catalog, run a GKS search, and discover
// Deeper Analytical Insights — the one-minute tour of the public API.
package main

import (
	"fmt"
	"log"
	"strings"

	gks "repro"
)

const catalog = `<?xml version="1.0"?>
<catalog>
  <product>
    <name>Trail Runner</name>
    <brand>Vertex</brand>
    <reviews>
      <review>lightweight and durable</review>
      <review>great grip on wet rock</review>
    </reviews>
  </product>
  <product>
    <name>Peak Boot</name>
    <brand>Vertex</brand>
    <reviews>
      <review>durable leather, heavy</review>
      <review>kept my feet dry all winter</review>
    </reviews>
  </product>
  <product>
    <name>River Sandal</name>
    <brand>Cascade</brand>
    <reviews>
      <review>lightweight, dries fast</review>
      <review>straps wear out</review>
    </reviews>
  </product>
</catalog>`

func main() {
	doc, err := gks.ParseDocumentString(catalog, "catalog.xml")
	if err != nil {
		log.Fatal(err)
	}
	sys, err := gks.IndexDocuments(doc)
	if err != nil {
		log.Fatal(err)
	}

	// GKS relaxes AND-semantics: with s=1 every product matching any
	// keyword is returned, ranked by how many keywords it packs and how
	// tightly. An LCA-based system would return the catalog root here,
	// because no single product is both lightweight AND durable... except
	// one, which GKS ranks first.
	resp, err := sys.Search("lightweight durable", 1)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("query %q (s=%d) -> %d results\n", resp.Query.String(), resp.S, len(resp.Results))
	for i, r := range resp.Results {
		fmt.Printf("%d. <%s> %s rank=%.3f keywords=%v\n",
			i+1, r.Label, r.ID, r.Rank, resp.KeywordsOf(r))
		chunk, err := sys.Chunk(r)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Println(indent(chunk, "   "))
	}

	// DI: the most relevant attribute values in the response, with their
	// schema paths.
	fmt.Println("deeper analytical insights:")
	for _, in := range sys.Insights(resp, 3) {
		fmt.Printf("  %s (weight %.2f)\n", in, in.Weight)
	}

	// Baselines for comparison.
	q := gks.NewQuery("lightweight", "durable")
	fmt.Printf("SLCA baseline returns: %v\n", sys.SLCA(q))
}

func indent(s, prefix string) string {
	lines := strings.Split(strings.TrimRight(s, "\n"), "\n")
	for i := range lines {
		lines[i] = prefix + lines[i]
	}
	return strings.Join(lines, "\n")
}
