// Refinement reproduces the §7.4 walk-through of the paper: a user starts
// with QD1 = {"Dimitrios Georgakopoulos", "Joe D. Morrison"} (one joint
// article), the DI suggests co-author Marek Rusinkiewicz, and the refined
// query surfaces ten joint articles — GKS guiding navigation of data the
// user does not know.
package main

import (
	"fmt"
	"log"

	gks "repro"
	"repro/internal/datagen"
)

func main() {
	doc := datagen.PaperDBLP(1)
	sys, err := gks.IndexDocuments(doc)
	if err != nil {
		log.Fatal(err)
	}

	georgakopoulos, morrison, _ := datagen.RefinementAuthors()
	original := gks.NewQuery(georgakopoulos, morrison)
	resp, err := sys.SearchQuery(original, 1)
	if err != nil {
		log.Fatal(err)
	}
	joint := 0
	for _, r := range resp.Results {
		if r.KeywordCount == 2 {
			joint++
		}
	}
	fmt.Printf("original query {%s}: %d articles, %d joint (paper: 30 / 1)\n",
		original, len(resp.Results), joint)

	// DI over the response: the suggested co-author appears among the top
	// insights.
	insights := sys.Insights(resp, 5)
	fmt.Println("top insights:")
	for i, in := range insights {
		fmt.Printf("  %d. %s (weight %.2f)\n", i+1, in, in.Weight)
	}

	// §7.4: augment the query with the first author-type insight.
	var authorInsights []gks.Insight
	for _, in := range insights {
		if last := in.Path[len(in.Path)-1]; last == "author" {
			authorInsights = append(authorInsights, in)
		}
	}
	if len(authorInsights) == 0 {
		log.Fatal("no author insight discovered")
	}
	refinedBase := gks.NewQuery(georgakopoulos)
	refined := sys.Augmentations(refinedBase, authorInsights, 1)[0]
	refResp, err := sys.SearchQuery(refined, 2)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nrefined query {%s}: %d joint articles (paper: 10)\n", refined, len(refResp.Results))
	for i, r := range refResp.Results {
		if i == 3 {
			fmt.Printf("  ... %d more\n", len(refResp.Results)-3)
			break
		}
		chunk, err := sys.Chunk(r)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  %s rank=%.3f\n%s", r.ID, r.Rank, indent(chunk))
	}
}

func indent(s string) string {
	out := ""
	for _, line := range splitLines(s) {
		out += "    " + line + "\n"
	}
	return out
}

func splitLines(s string) []string {
	var lines []string
	cur := ""
	for _, r := range s {
		if r == '\n' {
			lines = append(lines, cur)
			cur = ""
			continue
		}
		cur += string(r)
	}
	if cur != "" {
		lines = append(lines, cur)
	}
	return lines
}
