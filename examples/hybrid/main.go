// Hybrid reproduces the paper's §7.6 experiment as a runnable program:
// DBLP and SIGMOD Record are merged under a common root (with two extra
// connecting nodes deepening the SIGMOD side), and a single query whose
// keyword pairs target two *different* entity types returns exactly the
// right nodes of both types — with ranking driven by keyword packing, not
// absolute depth.
package main

import (
	"fmt"
	"log"

	gks "repro"
	"repro/internal/datagen"
)

func main() {
	dblp := datagen.PaperDBLP(1)
	sigmod := datagen.PaperSigmod(1)

	// Merge under a common root; two connecting nodes above SIGMOD Record
	// increase its relative depth (§7.6).
	merged := gks.BuildDocument("hybrid.xml", gks.E("repository",
		dblp.Root,
		gks.E("archive", gks.E("collection", sigmod.Root)),
	))
	sys, err := gks.IndexDocuments(merged)
	if err != nil {
		log.Fatal(err)
	}
	st := sys.Stats()
	fmt.Printf("merged repository: %d elements, %d entity nodes\n\n", st.ElementNodes, st.EntityNodes)

	// First two authors co-occur only in DBLP <inproceedings>; last two
	// only in SIGMOD <article> nodes.
	terms := datagen.HybridAuthors()
	query := fmt.Sprintf("%q %q %q %q", terms[0], terms[1], terms[2], terms[3])
	resp, err := sys.Search(query, 2)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("query %s (s=2): %d results (paper: 8 = 3 inproceedings + 5 articles)\n\n",
		resp.Query, len(resp.Results))

	counts := map[string]int{}
	for i, r := range resp.Results {
		counts[r.Label]++
		depth := len(r.ID.Path) - 1
		fmt.Printf("%d. <%s> %s depth=%d rank=%.3f authors=%v\n",
			i+1, r.Label, r.ID, depth, r.Rank, resp.KeywordsOf(r))
	}
	fmt.Printf("\nby type: %v\n", counts)

	// The deeper 2-author <article> nodes outrank the shallower but
	// co-author-crowded <inproceedings> — "entity nodes are ranked based
	// on only the number of query keywords present in their sub-tree and
	// the distribution of these keywords, and not according to their
	// absolute depth" (§7.6).
	if resp.Results[0].Label == "article" {
		fmt.Println("deeper <article> nodes rank first: ranking is depth-independent ✓")
	}

	// The result-type inference sees both targets.
	fmt.Println("\ninferred result types:")
	for _, ts := range sys.InferResultTypes(query, 4) {
		fmt.Printf("  %-16s score=%.2f\n", ts.Label, ts.Score)
	}
}
