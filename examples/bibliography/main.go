// Bibliography reproduces the paper's Example 2 interactively: the QD2
// query over a DBLP-shaped bibliography, where one "wrong" author name
// would make any LCA-based system return the whole root. The dataset is
// the synthetic DBLP analog (internal/datagen) carrying the paper's
// planted ground truth; searching, ranking, DI and baselines all go
// through the public API.
package main

import (
	"fmt"
	"log"
	"strings"

	gks "repro"
	"repro/internal/datagen"
)

func main() {
	// Generate the DBLP analog (also available on disk via cmd/gksgen).
	doc := datagen.PaperDBLP(1)
	sys, err := gks.IndexDocuments(doc)
	if err != nil {
		log.Fatal(err)
	}
	st := sys.Stats()
	fmt.Printf("indexed bibliography: %d elements, %d entity nodes, %d keywords\n\n",
		st.ElementNodes, st.EntityNodes, st.DistinctKeywords)

	// Example 2: three authors share five joint articles; the fourth never
	// co-authored with any of them.
	query := `"Peter Buneman" "Wenfei Fan" "Scott Weinstein" "Prithviraj Banerjee"`

	// The LCA baselines collapse to the document root — "not a meaningful
	// response as it is available to the user even in the absence of any
	// query" (§1).
	q := gks.ParseQuery(query)
	fmt.Printf("SLCA answer for the query: %v (the DBLP root)\n\n", sys.SLCA(q))

	// GKS with s=1 returns every article by any of the authors...
	all, err := sys.Search(query, 1)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("GKS s=1: %d articles (paper: 234)\n", len(all.Results))

	// ...with the joint articles ranked on top.
	fmt.Println("top 5 of the ranked response:")
	for i, r := range all.Results[:5] {
		fmt.Printf("%d. %s rank=%.3f authors=%v\n", i+1, r.ID, r.Rank, all.KeywordsOf(r))
	}

	// Tightening s to 2 keeps only articles by at least two query authors.
	pairs, err := sys.Search(query, 2)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nGKS s=2: %d articles (paper: 10)\n", len(pairs.Results))

	// DI: the most relevant venues, years and co-authors in the context of
	// the query.
	fmt.Println("\ndeeper analytical insights (s=1):")
	for _, in := range sys.Insights(all, 5) {
		fmt.Printf("  %s (weight %.2f over %d articles)\n", in, in.Weight, in.Count)
	}

	// Refinement: the keyword subsets the data actually supports.
	fmt.Println("\nrefinement suggestions:")
	for _, ref := range sys.Refinements(pairs, 3) {
		fmt.Printf("  {%s}\n", ref)
	}

	// Recursive DI (§2.3): feed the top insights back as a query.
	rounds, err := sys.InsightsRecursive(q, 1, 3, 2)
	if err != nil {
		log.Fatal(err)
	}
	if len(rounds) > 1 {
		vals := make([]string, 0, len(rounds[0].Insights))
		for _, in := range rounds[0].Insights {
			vals = append(vals, in.Value)
		}
		fmt.Printf("\nrecursive DI round 1 query: {%s} -> %d results, %d new insights\n",
			strings.Join(vals, ", "), len(rounds[1].Response.Results), len(rounds[1].Insights))
	}
}
