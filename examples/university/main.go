// University walks through the paper's running example (Figure 2(a),
// Examples 3–5 and §2.3 of Agarwal et al., EDBT 2016): the node
// categorization model, an "imperfect" query answered by LCE nodes, the
// potential-flow ranking, and DI discovery.
package main

import (
	"fmt"
	"log"

	gks "repro"
)

func main() {
	// Figure 2(a): a department with areas, courses and student rosters.
	doc := gks.BuildDocument("university.xml", gks.E("Dept",
		gks.ET("Dept_Name", "CS"),
		gks.E("Area",
			gks.ET("Name", "Databases"),
			gks.E("Courses",
				course("Data Mining", "Karen", "Mike", "John"),
				course("Algorithms", "Karen", "Julie", "John"),
				course("AI", "Karen", "Mike", "Serena", "Peter"),
			),
		),
		gks.E("Area",
			gks.ET("Name", "Theory"),
			gks.E("Courses",
				course("Logic", "Alice", "Bob"),
			),
		),
	))
	sys, err := gks.IndexDocuments(doc)
	if err != nil {
		log.Fatal(err)
	}

	// §2.2 node categorization: Dept and Course are entity nodes, Student
	// is repeating, Name is an attribute, Courses/Students connect.
	fmt.Println("node categorization (Defs 2.1.1-2.1.4):")
	for _, id := range []string{"0.0", "0.0.1", "0.0.1.1", "0.0.1.1.0", "0.0.1.1.0.0", "0.0.1.1.0.1", "0.0.1.1.0.1.0"} {
		cat, _ := sys.CategoryOf(id)
		fmt.Printf("  %-16s %v\n", id, cat)
	}

	// Example 3: the "imperfect" query Q4 with s=2. LCA systems need the
	// user to know which students share courses; GKS returns the three
	// courses as LCE nodes, each exposing its Name attribute as context.
	resp, err := sys.Search("student karen mike john harry", 2)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nExample 3 - Q4 = {student, karen, mike, john, harry}, s=2: %d LCE nodes\n", len(resp.Results))
	for i, r := range resp.Results {
		fmt.Printf("%d. <%s> %s rank=%.3f keywords=%v\n", i+1, r.Label, r.ID, r.Rank, resp.KeywordsOf(r))
	}

	// §2.3: the DI exposes <Course: Name: Data Mining> — the context the
	// "perfect" SLCA answer (the bare <Students> node) never reveals.
	fmt.Println("\nDI (Def 2.3.1):")
	for _, in := range sys.Insights(resp, 3) {
		fmt.Printf("  %s\n", in)
	}

	// §2.3 perfect query: GKS returns the Course entity; SLCA returns the
	// context-free <Students> node.
	q5 := gks.NewQuery("student", "karen", "mike", "john")
	perfect, err := sys.SearchQuery(q5, 4)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nperfect query Q5, s=|Q|: GKS -> %s <%s>, SLCA -> %v\n",
		perfect.Results[0].ID, perfect.Results[0].Label, sys.SLCA(q5))

	// §6.1: refinement suggestions split an over-constrained query into
	// the sub-queries the data actually supports.
	mixed, err := sys.Search("karen julie serena", 2)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nrefinements for {karen, julie, serena}:")
	for _, ref := range sys.Refinements(mixed, 3) {
		fmt.Printf("  {%s}\n", ref)
	}
}

func course(name string, students ...string) *gks.Node {
	st := gks.E("Students")
	for _, s := range students {
		st.Append(gks.ET("Student", s))
	}
	return gks.E("Course", gks.ET("Name", name), st)
}
