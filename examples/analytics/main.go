// Analytics explores a geographic database (the Mondial analog) with the
// features beyond plain search: best-effort thresholding, top-k retrieval,
// schema inspection, schema-aware categorization and recursive DI — the
// "analytics over raw XML data" direction the paper's conclusion points
// at.
package main

import (
	"fmt"
	"log"

	gks "repro"
	"repro/internal/datagen"
)

func main() {
	doc := datagen.Mondial(datagen.Config{Seed: 42, Scale: 1})
	sys, err := gks.IndexDocuments(doc)
	if err != nil {
		log.Fatal(err)
	}
	st := sys.Stats()
	fmt.Printf("indexed %d elements (%d entity nodes)\n\n", st.ElementNodes, st.EntityNodes)

	// The inferred schema: which elements repeat where.
	fmt.Println("inferred schema (repeating edges):")
	for _, e := range sys.Schema() {
		if e.Repeats {
			fmt.Printf("  %s -> %s*\n", e.Parent, e.Child)
		}
	}

	// Best-effort search: ask for a lot, get the best the data supports.
	query := "Muslim Buddhism Christianity Hinduism Chinese Thai"
	resp, err := sys.SearchBestEffort(query)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nbest-effort for {%s}: s=%d, %d countries\n", query, resp.S, len(resp.Results))
	for i, r := range resp.Results {
		if i == 3 {
			break
		}
		fmt.Printf("  %d. <%s> %s rank=%.3f keywords=%v\n",
			i+1, r.Label, r.ID, r.Rank, resp.KeywordsOf(r))
	}

	// Top-k: just the three most relevant nodes for a broad query. At
	// instance level, countries whose religions happen not to repeat are
	// connecting nodes, so bare <religion> leaves can surface...
	topk, err := sys.SearchTopK("Muslim Catholic", 1, 3)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\ntop-3 for {Muslim Catholic}, instance-level categorization:\n")
	for i, r := range topk.Results {
		fmt.Printf("  %d. <%s> %s rank=%.3f\n", i+1, r.Label, r.ID, r.Rank)
	}

	// ...which is exactly what schema-aware categorization (the paper's
	// §2.2 future work) fixes: <religion> repeats somewhere, so every
	// country is an entity and matches lift to it.
	changed := sys.ApplySchemaCategorization()
	fmt.Printf("\nschema-aware categorization changed %d node(s) (entity nodes now %d)\n",
		changed, sys.Stats().EntityNodes)
	topk, err = sys.SearchTopK("Muslim Catholic", 1, 3)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("top-3 after schema-aware categorization:")
	for i, r := range topk.Results {
		fmt.Printf("  %d. <%s> %s rank=%.3f\n", i+1, r.Label, r.ID, r.Rank)
	}

	// Recursive DI: let the data suggest what to look at next.
	rounds, err := sys.InsightsRecursive(gks.NewQuery("Laos"), 1, 3, 2)
	if err != nil {
		log.Fatal(err)
	}
	for i, round := range rounds {
		fmt.Printf("\nDI round %d (query {%s}):\n", i, round.Query)
		for _, in := range round.Insights {
			fmt.Printf("  %s\n", in)
		}
	}
}
