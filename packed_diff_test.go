package gks

import (
	"fmt"
	"math/rand"
	"reflect"
	"sort"
	"sync"
	"testing"

	"repro/internal/core"
	"repro/internal/datagen"
	"repro/internal/index"
	"repro/internal/xmltree"
)

// Differential tests for the packed (DAG-compressed) node table: a system
// serving from the packed representation must be observationally identical
// to the flat system it was packed from, across the entire read surface
// and across mutation histories. The segment differential suite already
// exercises the packed form implicitly (the GKS4 writer packs meta by
// default); this file pins the property directly, without a file format in
// between, so a future codec change cannot mask an accessor bug.

// packedPair builds a flat in-memory system from docs and a second system
// serving the Pack()ed form of the same index.
func packedPair(t *testing.T, docs ...*Document) (flat, packed *System) {
	t.Helper()
	flat, err := IndexDocuments(docs...)
	if err != nil {
		t.Fatal(err)
	}
	packed = newSystem(flat.ix.Pack(), flat.repo)
	if !packed.ix.IsPacked() {
		t.Fatal("Pack() did not produce a packed index")
	}
	return flat, packed
}

// packedCorpora extends the segment corpora with a duplicate-heavy DBLP
// corpus — shared subtrees are where the shape table actually dedups, so
// the instance-dispatch paths get real coverage.
func packedCorpora(t *testing.T) map[string][]*Document {
	t.Helper()
	c := segmentCorpora(t)
	c["dblp-dup"] = []*Document{datagen.DBLP(datagen.BibConfig{
		Config:      datagen.Config{Seed: 13, Scale: 2},
		DupFraction: 0.6,
	})}
	return c
}

// normExplain strips the wall-clock timings from an explanation; every
// counted quantity (posting sizes, blocks, LCP nodes, candidates,
// survivors) and the embedded response must match exactly.
func normExplain(e *Explanation) Explanation {
	if e == nil {
		return Explanation{}
	}
	c := *e
	c.MergeTime, c.ScanTime, c.RankTime = 0, 0, 0
	c.Stages = core.StageTimings{}
	if c.Response != nil {
		r := normResp(c.Response)
		c.Response = &r
	}
	return c
}

func diffExplain(t *testing.T, a, b *System, query string, s int) {
	t.Helper()
	ea, errA := a.Explain(query, s)
	eb, errB := b.Explain(query, s)
	if (errA == nil) != (errB == nil) {
		t.Fatalf("Explain(%q,%d) error mismatch: flat=%v packed=%v", query, s, errA, errB)
	}
	if errA != nil {
		if errA.Error() != errB.Error() {
			t.Fatalf("Explain(%q,%d) error text: flat=%v packed=%v", query, s, errA, errB)
		}
		return
	}
	if !reflect.DeepEqual(normExplain(ea), normExplain(eb)) {
		t.Fatalf("Explain(%q,%d) differ:\nflat:   %+v\npacked: %+v", query, s, normExplain(ea), normExplain(eb))
	}
}

// diffAggregates compares every whole-index summary the System exposes.
func diffAggregates(t *testing.T, flat, packed *System) {
	t.Helper()
	if !reflect.DeepEqual(flat.Stats(), packed.Stats()) {
		t.Fatalf("Stats differ:\nflat:   %+v\npacked: %+v", flat.Stats(), packed.Stats())
	}
	if se, sp := flat.Schema(), packed.Schema(); !reflect.DeepEqual(se, sp) {
		t.Fatalf("Schema differ: flat=%v packed=%v", se, sp)
	}
	if ke, kp := flat.TopKeywords(10), packed.TopKeywords(10); !reflect.DeepEqual(ke, kp) {
		t.Fatalf("TopKeywords differ: flat=%v packed=%v", ke, kp)
	}
	if le, lp := flat.LabelHistogram(), packed.LabelHistogram(); !reflect.DeepEqual(le, lp) {
		t.Fatalf("LabelHistogram differ: flat=%v packed=%v", le, lp)
	}
	if de, dp := flat.DepthHistogram(), packed.DepthHistogram(); !reflect.DeepEqual(de, dp) {
		t.Fatalf("DepthHistogram differ: flat=%v packed=%v", de, dp)
	}
	if ve, vp := flat.ValidateIndex(), packed.ValidateIndex(); ve != nil || vp != nil {
		t.Fatalf("ValidateIndex: flat=%v packed=%v", ve, vp)
	}
}

// TestPackedDifferentialSearch is the central packed-node-table property
// test: over randomized corpora (including a duplicate-heavy one) and
// seeded random queries, the packed system answers the entire read surface
// — search, top-k, best effort, insights, refinements, explain, SLCA,
// ELCA, schema and every histogram — identically to the flat system.
func TestPackedDifferentialSearch(t *testing.T) {
	for name, docs := range packedCorpora(t) {
		t.Run(name, func(t *testing.T) {
			flat, packed := packedPair(t, docs...)
			diffAggregates(t, flat, packed)

			kws := vocab(flat)
			rng := rand.New(rand.NewSource(77))
			for i, query := range randomQueries(rng, kws, 40) {
				s := 1 + rng.Intn(3)
				diffSearchSurface(t, flat, packed, query, s)
				if i%5 == 0 {
					diffExplain(t, flat, packed, query, s)
				}
			}
			for i := 0; i < 5; i++ {
				kw := kws[rng.Intn(len(kws))] + "x"
				if se, sp := flat.Suggest(kw, 2, 3), packed.Suggest(kw, 2, 3); !reflect.DeepEqual(se, sp) {
					t.Fatalf("Suggest(%q) differ: flat=%v packed=%v", kw, se, sp)
				}
			}

			// Schema-driven recategorization mutates categories in place;
			// the packed system must apply it through unpack/repack and
			// stay packed — and stay identical to the flat system after.
			ce, cp := flat.ApplySchemaCategorization(), packed.ApplySchemaCategorization()
			if ce != cp {
				t.Fatalf("ApplySchemaCategorization: flat recategorized %d, packed %d", ce, cp)
			}
			if !packed.ix.IsPacked() {
				t.Fatal("ApplySchemaCategorization lost the packed representation")
			}
			diffAggregates(t, flat, packed)
			for _, query := range randomQueries(rng, kws, 10) {
				diffSearchSurface(t, flat, packed, query, 2)
			}
		})
	}
}

// bagDoc builds a small random document over a fixed vocabulary; repeated
// words across documents make shared shapes and multi-doc postings common.
func bagDoc(name string, rng *rand.Rand, words []string) *Document {
	root := xmltree.E("collection")
	n := 3 + rng.Intn(8)
	for i := 0; i < n; i++ {
		entry := xmltree.E("entry")
		entry.Append(xmltree.ET("title", words[rng.Intn(len(words))]+" "+words[rng.Intn(len(words))]))
		entry.Append(xmltree.ET("year", words[rng.Intn(len(words))]))
		root.Append(entry)
	}
	return xmltree.NewDocument(name, 0, root)
}

// TestPackedMutationHistoryDifferential drives random mutation histories
// (add, replace, delete) against a packed system and pins two properties:
// every mutation preserves the packed representation, and the compacted
// survivor — Compacted() over whatever tombstones and appends accumulated
// — answers the full search surface identically to a cold rebuild from the
// surviving documents.
func TestPackedMutationHistoryDifferential(t *testing.T) {
	words := []string{
		"alpha", "bravo", "charlie", "delta", "echo", "foxtrot", "golf",
		"hotel", "india", "juliet", "kilo", "lima", "mike", "november",
	}
	for trial := 0; trial < 4; trial++ {
		t.Run(fmt.Sprintf("trial%d", trial), func(t *testing.T) {
			rng := rand.New(rand.NewSource(int64(100 + trial)))
			var docs []*Document
			var names []string
			for i := 0; i < 4; i++ {
				name := fmt.Sprintf("d%d", i)
				docs = append(docs, bagDoc(name, rng, words))
				names = append(names, name)
			}
			_, sys := packedPair(t, docs...)
			nextName := len(names)

			for step := 0; step < 30; step++ {
				switch op := rng.Intn(3); op {
				case 0: // add a new document
					name := fmt.Sprintf("d%d", nextName)
					nextName++
					next, replaced, err := Upsert(sys, bagDoc(name, rng, words))
					if err != nil || replaced {
						t.Fatalf("step %d: add %s: replaced=%v err=%v", step, name, replaced, err)
					}
					sys = next.(*System)
					names = append(names, name)
				case 1: // replace an existing document
					name := names[rng.Intn(len(names))]
					next, replaced, err := Upsert(sys, bagDoc(name, rng, words))
					if err != nil || !replaced {
						t.Fatalf("step %d: replace %s: replaced=%v err=%v", step, name, replaced, err)
					}
					sys = next.(*System)
				default: // delete (keep >=2 documents so ErrLastDocument's
					// fresh-rebuild path stays out of this history)
					if len(names) <= 2 {
						continue
					}
					i := rng.Intn(len(names))
					next, err := Remove(sys, names[i])
					if err != nil {
						t.Fatalf("step %d: remove %s: %v", step, names[i], err)
					}
					sys = next.(*System)
					names = append(names[:i], names[i+1:]...)
				}
				if !sys.ix.IsPacked() {
					t.Fatalf("step %d: mutation lost the packed representation", step)
				}
			}

			comp := newSystem(sys.ix.Compacted(), sys.repo)
			if !comp.ix.IsPacked() {
				t.Fatal("Compacted() over a packed index is not packed")
			}
			// Cold rebuild from the survivors with their document ids
			// preserved (Repository.Add would renumber); Build requires
			// Dewey document order.
			sorted := append([]*Document(nil), sys.repo.Docs...)
			sort.Slice(sorted, func(i, j int) bool { return sorted[i].DocID < sorted[j].DocID })
			coldIx, err := index.Build(&xmltree.Repository{Docs: sorted}, index.DefaultOptions())
			if err != nil {
				t.Fatalf("cold rebuild: %v", err)
			}
			cold := newSystem(coldIx, &xmltree.Repository{Docs: sorted})

			diffAggregates(t, cold, comp)
			kws := vocab(cold)
			for i, query := range randomQueries(rng, kws, 25) {
				s := 1 + rng.Intn(3)
				diffSearchSurface(t, cold, comp, query, s)
				if i%5 == 0 {
					diffExplain(t, cold, comp, query, s)
				}
			}
		})
	}
}

// TestPackedDeltaAppendEquivalence is the differential oracle for the
// delta-maintaining pack: the same random append/replace/delete history
// is driven through the fast path (AppendAs, which extends the pack
// incrementally) and through AppendAsFullRepack (the pre-delta
// flatten-splice-repack), with identical document numbering on both
// sides. At every checkpoint the two must hold the same logical state —
// statistics, document sets, doc-insensitive results — and after a final
// Compacted() the fast side's flat node table and postings must be
// byte-for-byte the slow side's. Mid-history the fast side crosses the
// repack threshold and pays its debt via Repacked(), so the equivalence
// also covers resuming delta appends on a repacked table.
func TestPackedDeltaAppendEquivalence(t *testing.T) {
	words := []string{
		"alpha", "bravo", "charlie", "delta", "echo", "foxtrot", "golf",
		"hotel", "india", "juliet", "kilo", "lima", "mike", "november",
	}
	queries := append(append([]string(nil), words[:8]...), "alpha bravo", "echo kilo lima")
	for trial := 0; trial < 4; trial++ {
		t.Run(fmt.Sprintf("trial%d", trial), func(t *testing.T) {
			rng := rand.New(rand.NewSource(int64(500 + trial)))
			var docs []*Document
			for i := 0; i < 4; i++ {
				docs = append(docs, bagDoc(fmt.Sprintf("d%d", i), rng, words))
			}
			_, fastSys := packedPair(t, docs...)
			fast := fastSys.ix
			slow := fast // same starting generation
			names := []string{"d0", "d1", "d2", "d3"}
			nextName := len(names)
			repacked := false

			appendBoth := func(doc *Document) {
				t.Helper()
				fid, sid := fast.NextDocID(), slow.NextDocID()
				if fid != sid {
					t.Fatalf("doc numbering diverged: fast %d, slow %d", fid, sid)
				}
				f, err := index.AppendAs(fast, doc, fid, index.DefaultOptions())
				if err != nil {
					t.Fatalf("fast append %s: %v", doc.Name, err)
				}
				s, err := index.AppendAsFullRepack(slow, doc, sid, index.DefaultOptions())
				if err != nil {
					t.Fatalf("slow append %s: %v", doc.Name, err)
				}
				fast, slow = f, s
			}
			deleteBoth := func(name string) {
				t.Helper()
				f, err := fast.DeleteDoc(name)
				if err != nil {
					t.Fatalf("fast delete %s: %v", name, err)
				}
				s, err := slow.DeleteDoc(name)
				if err != nil {
					t.Fatalf("slow delete %s: %v", name, err)
				}
				fast, slow = f, s
			}

			for step := 0; step < 24; step++ {
				switch rng.Intn(3) {
				case 0:
					name := fmt.Sprintf("d%d", nextName)
					nextName++
					doc := bagDoc(name, rng, words)
					appendBoth(doc)
					names = append(names, name)
				case 1:
					name := names[rng.Intn(len(names))]
					deleteBoth(name)
					appendBoth(bagDoc(name, rng, words))
				default:
					if len(names) <= 2 {
						continue
					}
					i := rng.Intn(len(names))
					deleteBoth(names[i])
					names = append(names[:i], names[i+1:]...)
				}
				if !fast.IsPacked() {
					t.Fatalf("step %d: fast side lost the packed representation", step)
				}
				if err := fast.Validate(); err != nil {
					t.Fatalf("step %d: fast validate: %v", step, err)
				}
				if debt := fast.PackDebt(); !repacked && debt >= 0.5 {
					before := index.PackCount()
					fast = fast.Repacked()
					if index.PackCount() == before {
						t.Fatalf("step %d: Repacked() at debt %.2f did not repack", step, debt)
					}
					if d := fast.PackDebt(); d != 0 {
						t.Fatalf("step %d: debt %.2f survives Repacked()", step, d)
					}
					repacked = true
				}
				if step%6 == 5 {
					assertStateEqual(t, fmt.Sprintf("trial %d step %d", trial, step),
						newSystem(slow, nil), newSystem(fast, nil), queries)
				}
			}
			if !repacked {
				// Histories are seeded, so the threshold crossing is
				// deterministic; flag a seed change that silently stops
				// covering the repack-resume path.
				t.Error("history never crossed the repack threshold")
			}

			fc, sc := fast.Compacted().Unpacked(), slow.Compacted().Unpacked()
			if !reflect.DeepEqual(fc.Nodes, sc.Nodes) {
				t.Fatal("compacted node tables diverge between delta and full-repack histories")
			}
			if !reflect.DeepEqual(fc.Postings, sc.Postings) {
				t.Fatal("compacted postings diverge between delta and full-repack histories")
			}
			if !reflect.DeepEqual(fc.DocNames, sc.DocNames) {
				t.Fatalf("compacted doc names diverge: fast=%v slow=%v", fc.DocNames, sc.DocNames)
			}
		})
	}
}

// TestPackedDeltaAppendConcurrentSearch pins the race contract of the
// in-place tail extension: a delta append grows the predecessor's backing
// arrays beyond their published lengths, and concurrent searches on any
// earlier generation must never observe it (run under -race by make
// dag-smoke). Readers hammer a fixed generation while a writer chains
// appends past it; every response must keep matching the oracle captured
// before the writer started.
func TestPackedDeltaAppendConcurrentSearch(t *testing.T) {
	words := []string{"alpha", "bravo", "charlie", "delta", "echo", "foxtrot"}
	rng := rand.New(rand.NewSource(321))
	var docs []*Document
	for i := 0; i < 6; i++ {
		docs = append(docs, bagDoc(fmt.Sprintf("d%d", i), rng, words))
	}
	_, packed := packedPair(t, docs...)

	queries := randomQueries(rng, vocab(packed), 12)
	want := make([]Response, len(queries))
	for i, q := range queries {
		r, err := packed.Search(q, 2)
		if err != nil {
			t.Fatalf("oracle %q: %v", q, err)
		}
		want[i] = normResp(r)
	}

	var wg sync.WaitGroup
	errc := make(chan error, 64)
	stop := make(chan struct{})
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				for i, q := range queries {
					r, err := packed.Search(q, 2)
					if err != nil {
						errc <- fmt.Errorf("goroutine %d: Search(%q): %v", g, q, err)
						return
					}
					if !reflect.DeepEqual(normResp(r), want[i]) {
						errc <- fmt.Errorf("goroutine %d: Search(%q) diverged under concurrent append", g, q)
						return
					}
				}
			}
		}(g)
	}

	// Writer: chain delta appends from the generation the readers hold.
	sys := packed
	for i := 0; i < 12; i++ {
		next, _, err := sys.UpsertDocument(bagDoc(fmt.Sprintf("w%d", i), rng, words))
		if err != nil {
			t.Errorf("writer append %d: %v", i, err)
			break
		}
		sys = next
		if !sys.ix.IsPacked() {
			t.Error("writer append lost the packed representation")
			break
		}
	}
	close(stop)
	wg.Wait()
	close(errc)
	for err := range errc {
		t.Error(err)
	}
	if err := sys.ValidateIndex(); err != nil {
		t.Fatalf("final generation invalid: %v", err)
	}
}

// TestPackedSearchConcurrent hammers one packed system from many
// goroutines (run under -race by make dag-smoke): packed serving is
// read-only and must be race-free, and every response must still match the
// flat oracle.
func TestPackedSearchConcurrent(t *testing.T) {
	docs := []*Document{
		datagen.DBLP(datagen.BibConfig{
			Config:      datagen.Config{Seed: 21, Scale: 2},
			DupFraction: 0.5,
		}),
		datagen.Mondial(datagen.Config{Seed: 8, Scale: 1}),
	}
	flat, packed := packedPair(t, docs...)

	kws := vocab(flat)
	rng := rand.New(rand.NewSource(55))
	queries := randomQueries(rng, kws, 24)
	type oracle struct {
		resp Response
		err  string
	}
	want := make([]oracle, len(queries))
	for i, q := range queries {
		r, err := flat.Search(q, 2)
		if err != nil {
			want[i] = oracle{err: err.Error()}
			continue
		}
		want[i] = oracle{resp: normResp(r)}
	}

	var wg sync.WaitGroup
	errc := make(chan error, 8*len(queries))
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i, q := range queries {
				r, err := packed.Search(q, 2)
				switch {
				case err != nil && want[i].err == "":
					errc <- fmt.Errorf("goroutine %d: Search(%q): unexpected error %v", g, q, err)
				case err == nil && want[i].err != "":
					errc <- fmt.Errorf("goroutine %d: Search(%q): missing error %q", g, q, want[i].err)
				case err == nil && !reflect.DeepEqual(normResp(r), want[i].resp):
					errc <- fmt.Errorf("goroutine %d: Search(%q): response diverged", g, q)
				}
			}
		}(g)
	}
	wg.Wait()
	close(errc)
	for err := range errc {
		t.Error(err)
	}
}
