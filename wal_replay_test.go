package gks

import (
	"errors"
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"testing"

	"repro/internal/index"
	"repro/internal/wal"
)

// TestUpsertRejectsInvalidDocName is the regression test for the
// validation gap where only the HTTP parser checked names: the library
// layer (gks add, direct API callers) accepted empty and
// control-character names, creating documents no delete or replace could
// ever address. Both physical layouts must reject them with the typed
// error.
func TestUpsertRejectsInvalidDocName(t *testing.T) {
	single, err := IndexDocuments(ingestDoc(t, "a.xml", "apple"))
	if err != nil {
		t.Fatal(err)
	}
	sharded, err := IndexDocumentsSharded(2,
		ingestDoc(t, "a.xml", "apple"), ingestDoc(t, "b.xml", "pear"))
	if err != nil {
		t.Fatal(err)
	}
	bad := []string{"", "   ", "\t\n", "name\nwith\nnewlines", "nul\x00byte", "cr\rname",
		strings.Repeat("x", 513)}
	for _, name := range bad {
		doc := ingestDoc(t, "placeholder", "apple")
		doc.Name = name
		if _, _, err := single.UpsertDocument(doc); !errors.Is(err, ErrInvalidDocName) {
			t.Fatalf("System.UpsertDocument(%q): err = %v, want ErrInvalidDocName", name, err)
		}
		for _, sys := range []Searcher{single, sharded} {
			if _, _, err := Upsert(sys, doc); !errors.Is(err, ErrInvalidDocName) {
				t.Fatalf("Upsert(%T, %q): err = %v, want ErrInvalidDocName", sys, name, err)
			}
		}
	}
	// The boundary cases stay accepted.
	for _, name := range []string{"a", strings.Repeat("x", 512), "spaces inside.xml"} {
		doc := ingestDoc(t, "placeholder", "apple")
		doc.Name = name
		if _, _, err := single.UpsertDocument(doc); err != nil {
			t.Fatalf("UpsertDocument(%q): unexpected reject: %v", name, err)
		}
	}
}

// docInsensitiveResults renders a query's results as a sorted multiset
// of doc-number-free keys. A WAL replay onto a checkpoint assigns
// different Dewey document numbers than a cold rebuild of the same
// history (replayed documents append past the snapshot's ids), so state
// equality must be judged on everything else: the in-document node path,
// label, rank, and matched keyword set of every result.
func docInsensitiveResults(t *testing.T, sys Searcher, q string) []string {
	t.Helper()
	resp, err := sys.Search(q, 1)
	if err != nil {
		t.Fatalf("search %q: %v", q, err)
	}
	keys := make([]string, 0, len(resp.Results))
	for _, r := range resp.Results {
		id := r.ID.String()
		rel := ""
		if i := strings.IndexByte(id, '.'); i >= 0 {
			rel = id[i+1:]
		}
		kws := append([]string(nil), resp.KeywordsOf(r)...)
		sort.Strings(kws)
		keys = append(keys, strings.Join([]string{
			rel, r.Label, strconv.FormatFloat(r.Rank, 'g', 12, 64),
			strconv.Itoa(r.KeywordCount), strings.Join(kws, ","),
		}, "|"))
	}
	sort.Strings(keys)
	return keys
}

// assertStateEqual property-tests that two systems hold the same logical
// state: identical document-name sets, identical index statistics, and
// identical result multisets for every workload query.
func assertStateEqual(t *testing.T, label string, want, got Searcher, queries []string) {
	t.Helper()
	if w, g := want.Stats(), got.Stats(); w != g {
		t.Fatalf("%s: stats %+v, want %+v", label, g, w)
	}
	if ws, ok := want.(*System); ok {
		gs := got.(*System)
		wn := append([]string(nil), ws.DocNames()...)
		gn := append([]string(nil), gs.DocNames()...)
		sort.Strings(wn)
		sort.Strings(gn)
		if strings.Join(wn, "\n") != strings.Join(gn, "\n") {
			t.Fatalf("%s: documents %v, want %v", label, gn, wn)
		}
	}
	for _, q := range queries {
		w := docInsensitiveResults(t, want, q)
		g := docInsensitiveResults(t, got, q)
		if strings.Join(w, "\n") != strings.Join(g, "\n") {
			t.Fatalf("%s: q=%q results diverge:\ngot  %v\nwant %v", label, q, g, w)
		}
	}
}

var walTestVocab = []string{
	"apple", "pear", "plum", "cherry", "quince",
	"mango", "grape", "fig", "date", "olive",
}

// walSegmentFiles lists the segment files in a WAL directory, sorted.
func walSegmentFiles(t *testing.T, dir string) []string {
	t.Helper()
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	var names []string
	for _, e := range entries {
		if strings.HasPrefix(e.Name(), "wal-") && strings.HasSuffix(e.Name(), ".seg") {
			names = append(names, e.Name())
		}
	}
	sort.Strings(names)
	return names
}

// TestWALReplayEqualsColdRebuild is the randomized kill-point property
// test of the durability design: random mutation histories with
// checkpoints landing at random points, crashed at a random window —
// mid-append (a torn, unacknowledged record at the tail), mid-checkpoint
// (snapshot written, log untouched), mid-truncate (only some superseded
// segments removed), or cleanly — must always recover, via snapshot load
// plus ReplayWAL, to a state equal to a cold rebuild of exactly the
// acknowledged history.
func TestWALReplayEqualsColdRebuild(t *testing.T) {
	rng := rand.New(rand.NewSource(0x6B534B47)) // deterministic trials
	randDoc := func(t *testing.T, name string) (*Document, string) {
		t.Helper()
		var b strings.Builder
		b.WriteString("<root>")
		for i, n := 0, 2+rng.Intn(3); i < n; i++ {
			b.WriteString("<item>" + walTestVocab[rng.Intn(len(walTestVocab))] + "</item>")
		}
		b.WriteString("</root>")
		doc, err := ParseDocumentString(b.String(), name)
		if err != nil {
			t.Fatal(err)
		}
		return doc, b.String()
	}
	queries := append(append([]string(nil), walTestVocab...), "apple pear", "plum cherry quince")

	for trial := 0; trial < 10; trial++ {
		trial := trial
		t.Run(fmt.Sprintf("trial-%d", trial), func(t *testing.T) {
			dir := t.TempDir()
			snap := filepath.Join(dir, "snap.gksidx")
			walDir := filepath.Join(dir, "wal")

			// content models the acknowledged state: name -> XML source.
			content := map[string]string{}
			var base []*Document
			for i := 0; i < 3; i++ {
				name := fmt.Sprintf("base-%d.xml", i)
				doc, src := randDoc(t, name)
				base = append(base, doc)
				content[name] = src
			}
			var sys Searcher
			sys, err := IndexDocuments(base...)
			if err != nil {
				t.Fatal(err)
			}
			if err := sys.(*System).SaveIndexFile(snap); err != nil {
				t.Fatal(err)
			}
			// Tiny segments force rotations, so truncation has real work.
			l, err := wal.Open(walDir, wal.Options{SegmentBytes: 256, NoSync: true})
			if err != nil {
				t.Fatal(err)
			}

			names := append([]string(nil), "base-0.xml", "base-1.xml", "base-2.xml",
				"live-0.xml", "live-1.xml", "live-2.xml", "live-3.xml")
			for step, steps := 0, 8+rng.Intn(12); step < steps; step++ {
				name := names[rng.Intn(len(names))]
				if rng.Intn(3) == 0 {
					next, err := Remove(sys, name)
					if errors.Is(err, ErrDocNotFound) || errors.Is(err, ErrLastDocument) {
						continue // rejected live, so never logged
					}
					if err != nil {
						t.Fatal(err)
					}
					sys = next
					if _, err := l.Enqueue(wal.OpDelete, name, ""); err != nil {
						t.Fatal(err)
					}
					delete(content, name)
				} else {
					doc, src := randDoc(t, name)
					next, _, err := Upsert(sys, doc)
					if err != nil {
						t.Fatal(err)
					}
					sys = next
					if _, err := l.Enqueue(wal.OpUpsert, name, src); err != nil {
						t.Fatal(err)
					}
					content[name] = src
				}
				if rng.Intn(4) == 0 {
					// Checkpoint: persist the serving state atomically, then
					// crash somewhere in the truncate window.
					if err := sys.(*System).SaveIndexFile(snap); err != nil {
						t.Fatal(err)
					}
					lsn := l.LastLSN()
					switch rng.Intn(3) {
					case 0:
						// crash after persist, before any truncation
					case 1:
						// crash mid-truncate: deletions go oldest-first, so a
						// partial pass equals truncating through a smaller lsn
						if _, err := l.TruncateThrough(rng.Uint64() % (lsn + 1)); err != nil {
							t.Fatal(err)
						}
					default:
						if _, err := l.TruncateThrough(lsn); err != nil {
							t.Fatal(err)
						}
					}
				}
			}

			// Final crash: half the trials die mid-append, with a record
			// partially on disk that was never acknowledged.
			if rng.Intn(2) == 0 {
				sizes := map[string]int64{}
				for _, n := range walSegmentFiles(t, walDir) {
					fi, err := os.Stat(filepath.Join(walDir, n))
					if err != nil {
						t.Fatal(err)
					}
					sizes[n] = fi.Size()
				}
				doc, src := randDoc(t, "torn.xml")
				_ = doc
				if _, err := l.Enqueue(wal.OpUpsert, "torn.xml", src); err != nil {
					t.Fatal(err)
				}
				if err := l.Close(); err != nil {
					t.Fatal(err)
				}
				for _, n := range walSegmentFiles(t, walDir) {
					path := filepath.Join(walDir, n)
					fi, err := os.Stat(path)
					if err != nil {
						t.Fatal(err)
					}
					old, existed := sizes[n]
					if existed && fi.Size() == old {
						continue
					}
					if !existed {
						old = 0 // record opened a fresh segment: cut anywhere in it
					}
					cut := old + rng.Int63n(fi.Size()-old)
					if err := os.Truncate(path, cut); err != nil {
						t.Fatal(err)
					}
				}
			} else if err := l.Close(); err != nil {
				t.Fatal(err)
			}

			// Recovery: reopen the log, load the snapshot, replay the tail.
			l2, err := wal.Open(walDir, wal.Options{NoSync: true})
			if err != nil {
				t.Fatal(err)
			}
			loaded, err := LoadIndexFile(snap)
			if err != nil {
				t.Fatal(err)
			}
			recovered, _, err := ReplayWAL(loaded, l2)
			if err != nil {
				t.Fatal(err)
			}
			if err := l2.Close(); err != nil {
				t.Fatal(err)
			}

			// Cold rebuild of the acknowledged history.
			survivors := make([]string, 0, len(content))
			for name := range content {
				survivors = append(survivors, name)
			}
			sort.Strings(survivors)
			docs := make([]*Document, 0, len(survivors))
			for _, name := range survivors {
				doc, err := ParseDocumentString(content[name], name)
				if err != nil {
					t.Fatal(err)
				}
				docs = append(docs, doc)
			}
			ref, err := IndexDocuments(docs...)
			if err != nil {
				t.Fatal(err)
			}
			assertStateEqual(t, fmt.Sprintf("trial %d", trial), ref, recovered, queries)
			// The live (never-crashed) system agrees too.
			assertStateEqual(t, fmt.Sprintf("trial %d live", trial), ref, sys, queries)
		})
	}
}

// TestWALReplayPacksOnce is the regression test for the boot-time write
// collapse: replaying a K-record WAL tail onto a packed snapshot used to
// unpack and re-pack the whole node table once per upsert (O(N·K) boot
// cost). The batch path must re-pack at most once regardless of K, and
// still recover exactly the cold-rebuild state, packed.
func TestWALReplayPacksOnce(t *testing.T) {
	dir := t.TempDir()
	flat, err := IndexDocuments(
		ingestDoc(t, "a.xml", "apple", "pear"),
		ingestDoc(t, "b.xml", "pear", "plum"),
		ingestDoc(t, "c.xml", "plum", "fig"),
	)
	if err != nil {
		t.Fatal(err)
	}
	sys := newSystem(flat.ix.Pack(), flat.repo)
	if !sys.ix.IsPacked() {
		t.Fatal("base system did not pack")
	}

	l, err := wal.Open(filepath.Join(dir, "wal"), wal.Options{NoSync: true})
	if err != nil {
		t.Fatal(err)
	}
	content := map[string]string{
		"a.xml": "<root><item>apple</item><item>pear</item></root>",
		"b.xml": "<root><item>pear</item><item>plum</item></root>",
		"c.xml": "<root><item>plum</item><item>fig</item></root>",
	}
	// A K-record tail mixing fresh names, replacements (including of the
	// same name twice, exercising last-writer-wins) and deletes.
	history := []struct {
		op   wal.Op
		name string
		body string
	}{
		{wal.OpUpsert, "d.xml", "<root><item>cherry</item></root>"},
		{wal.OpUpsert, "b.xml", "<root><item>quince</item></root>"},
		{wal.OpUpsert, "e.xml", "<root><item>mango</item></root>"},
		{wal.OpDelete, "a.xml", ""},
		{wal.OpUpsert, "b.xml", "<root><item>olive</item><item>date</item></root>"},
		{wal.OpUpsert, "f.xml", "<root><item>grape</item></root>"},
		{wal.OpDelete, "e.xml", ""},
		{wal.OpUpsert, "g.xml", "<root><item>fig</item><item>apple</item></root>"},
		{wal.OpUpsert, "c.xml", "<root><item>pear</item></root>"},
		{wal.OpUpsert, "h.xml", "<root><item>plum</item></root>"},
		{wal.OpDelete, "d.xml", ""},
		{wal.OpUpsert, "i.xml", "<root><item>cherry</item><item>quince</item></root>"},
	}
	for _, h := range history {
		if _, err := l.Enqueue(h.op, h.name, h.body); err != nil {
			t.Fatal(err)
		}
		if h.op == wal.OpUpsert {
			content[h.name] = h.body
		} else {
			delete(content, h.name)
		}
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}

	l2, err := wal.Open(filepath.Join(dir, "wal"), wal.Options{NoSync: true})
	if err != nil {
		t.Fatal(err)
	}
	defer l2.Close()
	before := index.PackCount()
	recovered, applied, err := ReplayWAL(sys, l2)
	if err != nil {
		t.Fatal(err)
	}
	if packs := index.PackCount() - before; packs > 1 {
		t.Errorf("replay of %d records ran packNodes %d times, want at most 1", len(history), packs)
	}
	if applied == 0 {
		t.Fatal("replay applied nothing")
	}
	rs := recovered.(*System)
	if !rs.ix.IsPacked() {
		t.Error("recovered system lost its packed representation")
	}
	if err := rs.ValidateIndex(); err != nil {
		t.Fatal(err)
	}

	names := make([]string, 0, len(content))
	for name := range content {
		names = append(names, name)
	}
	sort.Strings(names)
	docs := make([]*Document, 0, len(names))
	for _, name := range names {
		doc, err := ParseDocumentString(content[name], name)
		if err != nil {
			t.Fatal(err)
		}
		docs = append(docs, doc)
	}
	ref, err := IndexDocuments(docs...)
	if err != nil {
		t.Fatal(err)
	}
	queries := append(append([]string(nil), walTestVocab...), "apple pear", "plum cherry quince")
	assertStateEqual(t, "packed batch replay", ref, recovered, queries)
}

// TestWALReplayShardedSmoke checks the replay path against the sharded
// layout: the log is layout-agnostic, so a snapshot+WAL recovery of a
// shard set must equal a cold sharded rebuild of the same history.
func TestWALReplayShardedSmoke(t *testing.T) {
	dir := t.TempDir()
	manifest := filepath.Join(dir, "set.gksm")
	set, err := IndexDocumentsSharded(3,
		ingestDoc(t, "a.xml", "apple", "pear"),
		ingestDoc(t, "b.xml", "pear", "plum"),
		ingestDoc(t, "c.xml", "plum", "fig"))
	if err != nil {
		t.Fatal(err)
	}
	if err := set.SaveManifest(manifest); err != nil {
		t.Fatal(err)
	}
	l, err := wal.Open(filepath.Join(dir, "wal"), wal.Options{NoSync: true})
	if err != nil {
		t.Fatal(err)
	}
	var sys Searcher = set
	history := []struct {
		op   wal.Op
		name string
		body string
	}{
		{wal.OpUpsert, "d.xml", "<root><item>cherry</item><item>apple</item></root>"},
		{wal.OpUpsert, "b.xml", "<root><item>quince</item></root>"},
		{wal.OpDelete, "a.xml", ""},
		{wal.OpUpsert, "e.xml", "<root><item>mango</item><item>plum</item></root>"},
		{wal.OpDelete, "d.xml", ""},
	}
	for _, h := range history {
		if h.op == wal.OpUpsert {
			doc, err := ParseDocumentString(h.body, h.name)
			if err != nil {
				t.Fatal(err)
			}
			if sys, _, err = Upsert(sys, doc); err != nil {
				t.Fatal(err)
			}
		} else {
			var err error
			if sys, err = Remove(sys, h.name); err != nil {
				t.Fatal(err)
			}
		}
		if _, err := l.Enqueue(h.op, h.name, h.body); err != nil {
			t.Fatal(err)
		}
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}

	l2, err := wal.Open(filepath.Join(dir, "wal"), wal.Options{NoSync: true})
	if err != nil {
		t.Fatal(err)
	}
	defer l2.Close()
	loaded, err := LoadShardSet(manifest)
	if err != nil {
		t.Fatal(err)
	}
	recovered, applied, err := ReplayWAL(loaded, l2)
	if err != nil {
		t.Fatal(err)
	}
	if applied == 0 {
		t.Fatal("replay applied nothing")
	}
	ref, err := IndexDocumentsSharded(3,
		ingestDoc(t, "b.xml", "quince"),
		ingestDoc(t, "c.xml", "plum", "fig"),
		ingestDoc(t, "e.xml", "mango", "plum"))
	if err != nil {
		t.Fatal(err)
	}
	queries := []string{"apple", "pear", "plum", "quince", "mango", "cherry", "plum fig"}
	assertStateEqual(t, "sharded", ref, recovered, queries)
	assertStateEqual(t, "sharded live", ref, sys, queries)
}
