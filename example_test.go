package gks_test

import (
	"fmt"
	"log"

	gks "repro"
)

const exampleXML = `<Dept>
  <Dept_Name>CS</Dept_Name>
  <Area>
    <Name>Databases</Name>
    <Courses>
      <Course>
        <Name>Data Mining</Name>
        <Students>
          <Student>Karen</Student>
          <Student>Mike</Student>
          <Student>John</Student>
        </Students>
      </Course>
      <Course>
        <Name>Algorithms</Name>
        <Students>
          <Student>Karen</Student>
          <Student>Julie</Student>
        </Students>
      </Course>
    </Courses>
  </Area>
</Dept>`

func exampleSystem() *gks.System {
	doc, err := gks.ParseDocumentString(exampleXML, "university.xml")
	if err != nil {
		log.Fatal(err)
	}
	sys, err := gks.IndexDocuments(doc)
	if err != nil {
		log.Fatal(err)
	}
	return sys
}

// The paper's running example: an "imperfect" keyword query over the
// university document of Figure 2(a) answered by LCE nodes.
func ExampleSystem_Search() {
	sys := exampleSystem()
	resp, err := sys.Search("karen mike john", 3)
	if err != nil {
		log.Fatal(err)
	}
	for _, r := range resp.Results {
		fmt.Printf("<%s> %s keywords=%d\n", r.Label, r.ID, r.KeywordCount)
	}
	// Output:
	// <Course> 0.0.1.1.0 keywords=3
}

// DI discovery exposes the context of a response — here, the names of the
// courses the matching students are enrolled in.
func ExampleSystem_Insights() {
	sys := exampleSystem()
	resp, err := sys.Search("karen", 1)
	if err != nil {
		log.Fatal(err)
	}
	for _, in := range sys.Insights(resp, 2) {
		fmt.Println(in)
	}
	// The Algorithms course ranks higher for {karen} — it packs the
	// keyword more tightly (2 students vs 3) — so its context leads.
	// Output:
	// <Course: Name: Algorithms>
	// <Course: Students: Student: Julie>
}

// The SLCA baseline answers the same intent with the bare <Students> node,
// stripped of the course context GKS preserves.
func ExampleSystem_SLCA() {
	sys := exampleSystem()
	fmt.Println(sys.SLCA(gks.NewQuery("karen", "mike", "john")))
	// Output:
	// [0.0.1.1.0.1]
}

// XPath is the structured query a user would otherwise have to write.
func ExampleSystem_XPath() {
	sys := exampleSystem()
	nodes, err := sys.XPath(`//Course[Name="Data Mining"]/Students/Student`)
	if err != nil {
		log.Fatal(err)
	}
	for _, n := range nodes {
		fmt.Println(n.Value())
	}
	// Output:
	// Karen
	// Mike
	// John
}

// Best-effort search honors as much of the query as the data supports.
func ExampleSystem_SearchBestEffort() {
	sys := exampleSystem()
	resp, err := sys.SearchBestEffort("karen mike john harry")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("s=%d results=%d\n", resp.S, len(resp.Results))
	// Output:
	// s=3 results=1
}

// Refinements split an over-constrained query into the sub-queries the
// data actually supports (§6.1 of the paper).
func ExampleSystem_Refinements() {
	sys := exampleSystem()
	resp, err := sys.Search("mike julie", 1)
	if err != nil {
		log.Fatal(err)
	}
	for _, q := range sys.Refinements(resp, 2) {
		fmt.Println(q)
	}
	// Output:
	// julie
	// mike
}
