GO ?= go

.PHONY: build vet test race bench fuzz-smoke check

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

# The serving layer (middleware, singleflight, shared cache, graceful
# shutdown) is concurrency-sensitive; always exercise it under the race
# detector before shipping.
race:
	$(GO) test -race ./...

bench:
	$(GO) test -bench=. -benchmem -run '^$$' ./...

# Short fuzz pass over the snapshot loader: arbitrary bytes fed to
# index.Load must produce a typed error, never a panic or an unbounded
# allocation. CI-sized; run with a longer -fuzztime when touching the
# codec.
fuzz-smoke:
	$(GO) test -run '^$$' -fuzz FuzzLoad -fuzztime 10s ./internal/index

check: build vet race fuzz-smoke
