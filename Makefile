GO ?= go

.PHONY: build vet test race bench check

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

# The serving layer (middleware, singleflight, shared cache, graceful
# shutdown) is concurrency-sensitive; always exercise it under the race
# detector before shipping.
race:
	$(GO) test -race ./...

bench:
	$(GO) test -bench=. -benchmem -run '^$$' ./...

check: build vet race
