GO ?= go

.PHONY: build vet test race bench fuzz-smoke shard-race ingest-smoke wal-smoke replica-smoke segment-smoke dag-smoke bench-smoke bench-query bench-ingest bench-replica bench-segment bench-dag check

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

# The serving layer (middleware, singleflight, shared cache, graceful
# shutdown) is concurrency-sensitive; always exercise it under the race
# detector before shipping.
race:
	$(GO) test -race ./...

bench:
	$(GO) test -bench=. -benchmem -run '^$$' ./...

# Short fuzz pass over the snapshot loader: arbitrary bytes fed to
# index.Load must produce a typed error, never a panic or an unbounded
# allocation. CI-sized; run with a longer -fuzztime when touching the
# codec.
fuzz-smoke:
	$(GO) test -run '^$$' -fuzz FuzzLoad -fuzztime 10s ./internal/index
	$(GO) test -run '^$$' -fuzz FuzzLoadManifest -fuzztime 10s ./internal/shard
	$(GO) test -run '^$$' -fuzz FuzzAdminDocs -fuzztime 10s ./internal/server
	$(GO) test -run '^$$' -fuzz FuzzLoadSegment -fuzztime 10s ./internal/segment

# GKS4 segment smoke: the unit suite plus the root differential property
# tests — a segment-backed system, with a block cache small enough to
# force eviction mid-query, must answer the entire read surface
# byte-identically to the eager in-memory system — all under the race
# detector (the block cache is shared mutable state on the query path).
segment-smoke:
	$(GO) test -race -count=1 ./internal/segment
	$(GO) test -race -count=1 -run 'TestSegment|TestReadIndexStats' .

# Packed node-table smoke: the differential property tests for the
# DAG-compressed representation — a packed system must answer the entire
# read surface identically to the flat system, across random mutation
# histories (packed Compacted() vs cold rebuild) and under concurrent
# search — plus the segment differentials, which exercise the packed meta
# codec through save/reload churn (the GKS4 writer packs by default). All
# under the race detector.
dag-smoke:
	$(GO) test -race -count=1 -run 'TestPacked|TestSegmentDifferential|TestSegmentMutation|TestSegmentEviction' .
	$(GO) test -race -count=1 -run 'TestPack|TestNodeTableBytes|TestRandomMutations' ./internal/index

# Live-ingestion smoke: the full HTTP mutation lifecycle (add → replace →
# delete, persistence round-trips, durability failure modes, metrics) in
# one focused run — the fastest signal that /admin/docs still honours
# persist-before-acknowledge.
ingest-smoke:
	$(GO) test -run 'TestIngest' -count=1 ./internal/server

# Write-ahead-log smoke: a short fuzz pass over the segment scanner
# (arbitrary bytes must parse cleanly, drop a torn tail, or fail with a
# typed ErrCorrupt — never panic), plus the group-commit concurrency and
# crash-replay suites under the race detector. Run with a longer
# -fuzztime when touching the framing codec.
wal-smoke:
	$(GO) test -run '^$$' -fuzz FuzzWALReplay -fuzztime 10s ./internal/wal
	$(GO) test -race -count=1 ./internal/wal
	$(GO) test -race -count=1 -run 'TestWALReplay|TestIngestWAL' . ./internal/server

# Replication crash drill: the in-process cluster property test (WAL
# shipping under injected network faults, snapshot re-install, router
# failover/partial contract) under the race detector, then the
# real-process smoke — gksd leader and follower SIGKILLed mid-stream /
# mid-ingest, restarted from their surviving directories, and asserted
# to converge.
replica-smoke:
	$(GO) test -race -count=1 ./internal/replica/... ./internal/wal
	$(GO) test -count=1 -run TestProcessCrashConvergence ./internal/replica

# The scatter-gather fan-out and the build worker pool are the most
# concurrency-sensitive code in the tree; the shard suite includes
# dedicated concurrent-search and reload-under-traffic tests that only
# bite under the race detector.
shard-race:
	$(GO) test -race -count=1 ./internal/shard/... ./internal/server/...

# One-shot parallel-build benchmark smoke: runs the shard experiment at
# the default scale and checks it completes and emits the JSON artifact
# (speedup numbers are only meaningful at -scale 10+ on a quiet machine;
# see BENCH_shard.json for the recorded run).
bench-smoke:
	@tmp=$$(mktemp -d) && \
	$(GO) run ./cmd/gksbench -exp shard -json-dir $$tmp > /dev/null && \
	test -s $$tmp/BENCH_shard.json && echo "bench-smoke: BENCH_shard.json OK" && rm -rf $$tmp

# One-shot query hot-path smoke: the merge and search benchmarks at
# -benchtime=1x prove they still run, and the query experiment must emit
# its JSON artifact (speedup/alloc numbers are only meaningful at
# -scale 10 on a quiet machine; see BENCH_query.json for the recorded
# run).
bench-query:
	$(GO) test -run '^$$' -bench 'BenchmarkMergeLoserTree|BenchmarkSearchHotPath|BenchmarkSearchTopK' -benchtime=1x ./internal/merge ./internal/core
	@tmp=$$(mktemp -d) && \
	$(GO) run ./cmd/gksbench -exp query -json-dir $$tmp > /dev/null && \
	test -s $$tmp/BENCH_query.json && echo "bench-query: BENCH_query.json OK" && rm -rf $$tmp

# One-shot ingest-throughput smoke: runs the snapshot-vs-WAL durability
# experiment and checks it completes and emits the JSON artifact (the
# recorded speedup lives in BENCH_ingest.json).
bench-ingest:
	@tmp=$$(mktemp -d) && \
	$(GO) run ./cmd/gksbench -exp ingest -json-dir $$tmp > /dev/null && \
	test -s $$tmp/BENCH_ingest.json && echo "bench-ingest: BENCH_ingest.json OK" && rm -rf $$tmp

# One-shot replicated-serving smoke: runs the read scale-out experiment
# over a live leader + followers and checks it completes and emits the
# JSON artifact (scale-out numbers are only meaningful across real
# machines; see the Mode note inside BENCH_replica.json).
bench-replica:
	@tmp=$$(mktemp -d) && \
	$(GO) run ./cmd/gksbench -exp replica -json-dir $$tmp > /dev/null && \
	test -s $$tmp/BENCH_replica.json && echo "bench-replica: BENCH_replica.json OK" && rm -rf $$tmp

# One-shot segment-serving smoke: runs the GKS4-vs-GKS3 boot/memory/
# latency experiment at the default scale and checks it emits the JSON
# artifact (the recorded scale-10 run lives in BENCH_segment.json).
bench-segment:
	@tmp=$$(mktemp -d) && \
	$(GO) run ./cmd/gksbench -exp segment -json-dir $$tmp > /dev/null && \
	test -s $$tmp/BENCH_segment.json && echo "bench-segment: BENCH_segment.json OK" && rm -rf $$tmp

# One-shot DAG-compression smoke: runs the flat-vs-packed node-table
# experiment (which diffs every query's responses between the two engines
# as it measures) and checks it emits the JSON artifact (the recorded
# scale-10 run lives in BENCH_dag.json).
bench-dag:
	@tmp=$$(mktemp -d) && \
	$(GO) run ./cmd/gksbench -exp dag -json-dir $$tmp > /dev/null && \
	test -s $$tmp/BENCH_dag.json && echo "bench-dag: BENCH_dag.json OK" && rm -rf $$tmp

check: build vet race fuzz-smoke wal-smoke replica-smoke segment-smoke dag-smoke shard-race ingest-smoke bench-smoke bench-query bench-ingest bench-replica bench-segment bench-dag
