package gks

import (
	"errors"
	"fmt"

	"repro/internal/index"
	"repro/internal/wal"
	"repro/internal/xmltree"
)

// Write-ahead-log recovery: folding a surviving log tail into a loaded
// snapshot so a daemon boots to exactly the state it acknowledged before
// a crash. The snapshot and the log overlap by design — checkpoint
// truncation removes only whole segments, so the log's surviving records
// are a contiguous suffix of the mutation history whose early records
// may already be baked into the snapshot — and replay must be idempotent
// across that overlap.

// ReplayWAL applies the log's surviving records to sys and returns the
// recovered system (sys itself is unchanged, copy-on-write like every
// mutation) along with the number of mutations applied. Replay is
// last-writer-wins: only each document's final logged op matters, all
// final upserts apply before all final deletes, and a delete of an
// already-absent document is skipped. For a log that is a contiguous
// suffix of the acknowledged history this provably reproduces the state
// a cold rebuild of that history would reach:
//
//   - a record older than the snapshot re-applies a state the snapshot
//     already holds (same content on upsert, already-gone on delete);
//   - ordering between different documents is immaterial once each is
//     collapsed to its final op;
//   - applying upserts first means the corpus never shrinks below its
//     final size mid-replay, so ErrLastDocument — which the live path
//     can reject but an acknowledged history can never contain — cannot
//     fire transiently.
//
// A single-index system replays the whole collapsed tail as one batch:
// every replaced or deleted document tombstones first, then all upserts
// splice in through a single index.AppendBatch merge, so a packed
// snapshot re-packs at most once no matter how many records survived.
// The per-record path below it used to pay a full unpack/repack cycle
// per upsert — O(snapshot × records) boot cost, the same write collapse
// the delta pack fixes for live ingestion. Sharded systems still replay
// record by record (each record touches one shard, there is no shared
// table to amortize).
//
// Damage in the log (ErrCorrupt) or an unparsable logged document fails
// the whole recovery: serving a partial history would silently drop
// acknowledged writes.
func ReplayWAL(sys Searcher, l *wal.Log) (Searcher, int, error) {
	type finalOp struct {
		op  wal.Op
		doc string
	}
	finals := make(map[string]*finalOp)
	var order []string // first-appearance order, for deterministic apply
	err := l.Replay(func(r wal.Record) error {
		f, ok := finals[r.Name]
		if !ok {
			f = &finalOp{}
			finals[r.Name] = f
			order = append(order, r.Name)
		}
		f.op, f.doc = r.Op, r.Doc
		return nil
	})
	if err != nil {
		return nil, 0, fmt.Errorf("gks: wal replay: %w", err)
	}
	// Parse every surviving document before touching sys: an unparsable
	// record fails recovery without a partially-mutated result to discard.
	var upserts []*Document
	var deletes []string
	for _, name := range order {
		f := finals[name]
		if f.op != wal.OpUpsert {
			deletes = append(deletes, name)
			continue
		}
		doc, err := ParseDocumentString(f.doc, name)
		if err != nil {
			return nil, 0, fmt.Errorf("gks: wal replay: document %q: %w", name, err)
		}
		upserts = append(upserts, doc)
	}
	if s, ok := sys.(*System); ok {
		next, applied, err := s.replayBatch(upserts, deletes)
		if err != nil {
			return nil, 0, err
		}
		return next, applied, nil
	}
	applied := 0
	for _, doc := range upserts {
		next, _, err := Upsert(sys, doc)
		if err != nil {
			return nil, 0, fmt.Errorf("gks: wal replay: upsert %q: %w", doc.Name, err)
		}
		sys = next
		applied++
	}
	for _, name := range deletes {
		next, err := Remove(sys, name)
		if errors.Is(err, ErrDocNotFound) {
			continue // the snapshot never held it, or a replayed state already dropped it
		}
		if err != nil {
			return nil, 0, fmt.Errorf("gks: wal replay: delete %q: %w", name, err)
		}
		sys = next
		applied++
	}
	return sys, applied, nil
}

// replayBatch applies a collapsed WAL tail (disjoint final upserts and
// final deletes) to a single-index system in one splice. Replaced and
// deleted documents tombstone against the shared base — no unpack, no
// copy — and the upserts then merge through one AppendBatch call, which
// flattens the base once and re-packs a packed base exactly once. The
// applied count matches per-record replay: every upsert counts, a delete
// counts only when the document existed.
func (s *System) replayBatch(upserts []*Document, deletes []string) (*System, int, error) {
	opts := index.DefaultOptions()
	wasPacked := s.ix.IsPacked()
	work := s.ix
	applied := len(upserts)
	freshRebuild := false

	type removal struct {
		name     string
		isDelete bool
	}
	removals := make([]removal, 0, len(upserts)+len(deletes))
	for _, d := range upserts {
		removals = append(removals, removal{d.Name, false})
	}
	for _, n := range deletes {
		removals = append(removals, removal{n, true})
	}
	for _, r := range removals {
		next, err := work.DeleteDoc(r.name)
		switch {
		case err == nil:
			work = next
			if r.isDelete {
				applied++
			}
		case errors.Is(err, index.ErrNotFound):
			// New document on upsert, or a delete the snapshot never held.
		case errors.Is(err, index.ErrLastDocument):
			// The batch empties the old corpus. With upserts pending the
			// final state is exactly the upsert set, built fresh below;
			// without any, an acknowledged history cannot reach here and
			// the recovery fails like the live path would have.
			if len(upserts) == 0 {
				return nil, 0, fmt.Errorf("gks: wal replay: delete %q: %w", r.name, err)
			}
			if r.isDelete {
				applied++
			}
			freshRebuild = true
		default:
			return nil, 0, fmt.Errorf("gks: wal replay: %q: %w", r.name, err)
		}
		if freshRebuild {
			break
		}
	}

	var next *index.Index
	var err error
	if freshRebuild {
		next, err = index.BuildDocumentAs(upserts[0], 0, opts)
		if err != nil {
			return nil, 0, fmt.Errorf("gks: wal replay: upsert %q: %w", upserts[0].Name, err)
		}
		next, err = index.AppendBatch(next, upserts[1:], opts)
		if err != nil {
			return nil, 0, fmt.Errorf("gks: wal replay: %w", err)
		}
		if wasPacked {
			next = next.Pack()
		}
	} else {
		next, err = index.AppendBatch(work, upserts, opts)
		if err != nil {
			return nil, 0, fmt.Errorf("gks: wal replay: %w", err)
		}
	}

	repo := s.repo
	if repo != nil {
		docs := repo.Docs
		for _, r := range removals {
			docs = docsWithout(docs, r.name)
		}
		docs = append(docs, upserts...)
		repo = &xmltree.Repository{Docs: docs}
	}
	return newSystem(next, repo), applied, nil
}
