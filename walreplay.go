package gks

import (
	"errors"
	"fmt"

	"repro/internal/wal"
)

// Write-ahead-log recovery: folding a surviving log tail into a loaded
// snapshot so a daemon boots to exactly the state it acknowledged before
// a crash. The snapshot and the log overlap by design — checkpoint
// truncation removes only whole segments, so the log's surviving records
// are a contiguous suffix of the mutation history whose early records
// may already be baked into the snapshot — and replay must be idempotent
// across that overlap.

// ReplayWAL applies the log's surviving records to sys and returns the
// recovered system (sys itself is unchanged, copy-on-write like every
// mutation) along with the number of mutations applied. Replay is
// last-writer-wins: only each document's final logged op matters, all
// final upserts apply before all final deletes, and a delete of an
// already-absent document is skipped. For a log that is a contiguous
// suffix of the acknowledged history this provably reproduces the state
// a cold rebuild of that history would reach:
//
//   - a record older than the snapshot re-applies a state the snapshot
//     already holds (same content on upsert, already-gone on delete);
//   - ordering between different documents is immaterial once each is
//     collapsed to its final op;
//   - applying upserts first means the corpus never shrinks below its
//     final size mid-replay, so ErrLastDocument — which the live path
//     can reject but an acknowledged history can never contain — cannot
//     fire transiently.
//
// Damage in the log (ErrCorrupt) or an unparsable logged document fails
// the whole recovery: serving a partial history would silently drop
// acknowledged writes.
func ReplayWAL(sys Searcher, l *wal.Log) (Searcher, int, error) {
	type finalOp struct {
		op  wal.Op
		doc string
	}
	finals := make(map[string]*finalOp)
	var order []string // first-appearance order, for deterministic apply
	err := l.Replay(func(r wal.Record) error {
		f, ok := finals[r.Name]
		if !ok {
			f = &finalOp{}
			finals[r.Name] = f
			order = append(order, r.Name)
		}
		f.op, f.doc = r.Op, r.Doc
		return nil
	})
	if err != nil {
		return nil, 0, fmt.Errorf("gks: wal replay: %w", err)
	}
	applied := 0
	for _, name := range order {
		f := finals[name]
		if f.op != wal.OpUpsert {
			continue
		}
		doc, err := ParseDocumentString(f.doc, name)
		if err != nil {
			return nil, 0, fmt.Errorf("gks: wal replay: document %q: %w", name, err)
		}
		next, _, err := Upsert(sys, doc)
		if err != nil {
			return nil, 0, fmt.Errorf("gks: wal replay: upsert %q: %w", name, err)
		}
		sys = next
		applied++
	}
	for _, name := range order {
		if finals[name].op != wal.OpDelete {
			continue
		}
		next, err := Remove(sys, name)
		if errors.Is(err, ErrDocNotFound) {
			continue // the snapshot never held it, or a replayed state already dropped it
		}
		if err != nil {
			return nil, 0, fmt.Errorf("gks: wal replay: delete %q: %w", name, err)
		}
		sys = next
		applied++
	}
	return sys, applied, nil
}
