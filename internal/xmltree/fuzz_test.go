package xmltree

import "testing"

// FuzzParse feeds arbitrary byte strings to the XML parser: it must return
// a well-formed tree or an error, never panic, and accepted documents must
// survive a serialize→parse round trip.
func FuzzParse(f *testing.F) {
	seeds := []string{
		`<a/>`,
		`<a><b>text</b></a>`,
		`<a k="v">mixed <b/> content</a>`,
		`<a>&lt;escaped&gt;</a>`,
		`not xml at all`,
		`<a><b></a></b>`,
		`<?xml version="1.0"?><root/>`,
		`<a xmlns:x="u"><x:b/></a>`,
		`<a>` + "\x00" + `</a>`,
		`<a><![CDATA[cdata text]]></a>`,
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, src string) {
		doc, err := ParseString(src, 0, "fuzz.xml")
		if err != nil {
			return
		}
		if doc.Root == nil || !doc.Root.IsElement() {
			t.Fatal("accepted document without element root")
		}
		// Dewey IDs must be assigned consistently.
		Walk(doc.Root, func(n *Node) bool {
			if !n.ID.IsValid() {
				t.Fatalf("invalid Dewey ID on %q", n.Label)
			}
			for i, c := range n.Children {
				if c.Parent != n {
					t.Fatal("broken parent pointer")
				}
				want := n.ID.Child(int32(i))
				if c.ID.String() != want.String() {
					t.Fatalf("child ID %s, want %s", c.ID, want)
				}
			}
			return true
		})
	})
}

// FuzzDeweyRoundTrip checks the tree against FindByID for every node.
func FuzzFindByID(f *testing.F) {
	f.Add(`<a><b><c>x</c></b><d/></a>`)
	f.Fuzz(func(t *testing.T, src string) {
		doc, err := ParseString(src, 0, "fuzz.xml")
		if err != nil {
			return
		}
		Walk(doc.Root, func(n *Node) bool {
			if got := doc.FindByID(n.ID); got != n {
				t.Fatalf("FindByID(%s) mismatch", n.ID)
			}
			return true
		})
	})
}
