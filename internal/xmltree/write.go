package xmltree

import (
	"bufio"
	"encoding/xml"
	"fmt"
	"io"
)

// WriteXML serializes the document as indented XML. The output re-parses to
// an equivalent tree (attributes stay child elements). It is used by the
// dataset generators to materialize repositories on disk and to measure
// data-set sizes for the Table 4 experiment.
func WriteXML(w io.Writer, d *Document) error {
	bw := bufio.NewWriter(w)
	if _, err := bw.WriteString(xml.Header); err != nil {
		return err
	}
	if err := writeNode(bw, d.Root, 0); err != nil {
		return err
	}
	if err := bw.WriteByte('\n'); err != nil {
		return err
	}
	return bw.Flush()
}

func writeNode(w *bufio.Writer, n *Node, depth int) error {
	for i := 0; i < depth; i++ {
		if err := w.WriteByte(' '); err != nil {
			return err
		}
	}
	if n.Kind == Text {
		return xml.EscapeText(w, []byte(n.Text))
	}
	if _, err := fmt.Fprintf(w, "<%s>", n.Label); err != nil {
		return err
	}
	if n.DirectlyContainsValue() {
		if err := xml.EscapeText(w, []byte(n.Children[0].Text)); err != nil {
			return err
		}
		_, err := fmt.Fprintf(w, "</%s>\n", n.Label)
		return err
	}
	if err := w.WriteByte('\n'); err != nil {
		return err
	}
	for _, c := range n.Children {
		if err := writeNode(w, c, depth+1); err != nil {
			return err
		}
		if c.Kind == Text {
			if err := w.WriteByte('\n'); err != nil {
				return err
			}
		}
	}
	for i := 0; i < depth; i++ {
		if err := w.WriteByte(' '); err != nil {
			return err
		}
	}
	_, err := fmt.Fprintf(w, "</%s>\n", n.Label)
	return err
}

// XMLSize returns the number of bytes WriteXML would produce for d. It is
// the "Data Set Size" column of the Table 4 experiment.
func XMLSize(d *Document) (int64, error) {
	var cw countWriter
	if err := WriteXML(&cw, d); err != nil {
		return 0, err
	}
	return cw.n, nil
}

type countWriter struct{ n int64 }

func (c *countWriter) Write(p []byte) (int, error) {
	c.n += int64(len(p))
	return len(p), nil
}
