package xmltree

import (
	"bytes"
	"math/rand"
	"os"
	"strings"
	"testing"

	"repro/internal/dewey"
)

// figure2a builds the university document of Figure 2(a) of the paper,
// shared by several packages' tests via BuildFigure2a.
func figure2a() *Document { return BuildFigure2a() }

func TestBuildAndIDs(t *testing.T) {
	d := figure2a()
	if d.Root.Label != "Dept" {
		t.Fatalf("root = %s, want Dept", d.Root.Label)
	}
	if got := d.Root.ID.String(); got != "0.0" {
		t.Errorf("root ID = %s, want 0.0", got)
	}
	// Paper: <Name> under first <Area> is n0.1.0, courses are n0.1.1.x.
	area := d.Root.Children[1]
	if area.Label != "Area" || area.ID.String() != "0.0.1" {
		t.Fatalf("Area = %s %s", area.Label, area.ID)
	}
	name := area.Children[0]
	if name.Label != "Name" || name.Value() != "Databases" {
		t.Errorf("Area/Name = %s %q", name.Label, name.Value())
	}
	courses := area.Children[1]
	if courses.Label != "Courses" {
		t.Fatalf("expected Courses, got %s", courses.Label)
	}
	if len(courses.Children) != 3 {
		t.Fatalf("want 3 courses, got %d", len(courses.Children))
	}
	course0 := courses.Children[0]
	if course0.Children[0].Value() != "Data Mining" {
		t.Errorf("course 0 name = %q", course0.Children[0].Value())
	}
}

func TestFindByID(t *testing.T) {
	d := figure2a()
	found := 0
	Walk(d.Root, func(n *Node) bool {
		if got := d.FindByID(n.ID); got != n {
			t.Fatalf("FindByID(%s) returned wrong node", n.ID)
		}
		found++
		return true
	})
	if found != d.NodeCount() {
		t.Errorf("walked %d nodes, count %d", found, d.NodeCount())
	}
	if d.FindByID(dewey.MustParse("0.0.99")) != nil {
		t.Error("FindByID should return nil for missing node")
	}
	if d.FindByID(dewey.MustParse("5.0")) != nil {
		t.Error("FindByID should return nil for wrong document")
	}
}

func TestWalkPreOrderMatchesDeweyOrder(t *testing.T) {
	d := figure2a()
	var prev dewey.ID
	first := true
	Walk(d.Root, func(n *Node) bool {
		if !first && dewey.Compare(prev, n.ID) >= 0 {
			t.Fatalf("pre-order not increasing: %s then %s", prev, n.ID)
		}
		prev, first = n.ID, false
		return true
	})
}

func TestWalkPrune(t *testing.T) {
	d := figure2a()
	visited := 0
	Walk(d.Root, func(n *Node) bool {
		visited++
		return n.Label != "Area" // prune both Area subtrees
	})
	// Dept + Dept_Name + its text + 2 Areas.
	if visited != 5 {
		t.Errorf("visited %d nodes, want 5", visited)
	}
}

func TestParseBasic(t *testing.T) {
	const doc = `<?xml version="1.0"?>
<dblp>
  <article key="a1">
    <author>Jane Roe</author>
    <title>On Things</title>
    <year>2001</year>
  </article>
</dblp>`
	d, err := ParseString(doc, 0, "test.xml")
	if err != nil {
		t.Fatal(err)
	}
	if d.Root.Label != "dblp" {
		t.Fatalf("root = %s", d.Root.Label)
	}
	article := d.Root.Children[0]
	if article.Label != "article" {
		t.Fatalf("child = %s", article.Label)
	}
	// Attribute normalized to leading child element.
	if article.Children[0].Label != "key" || article.Children[0].Value() != "a1" {
		t.Errorf("attribute child = %s %q", article.Children[0].Label, article.Children[0].Value())
	}
	if article.Children[1].Value() != "Jane Roe" {
		t.Errorf("author = %q", article.Children[1].Value())
	}
	if d.Depth() != 3 {
		t.Errorf("depth = %d, want 3", d.Depth())
	}
}

func TestParseErrors(t *testing.T) {
	cases := []string{
		"",
		"<a><b></a>",
		"<a></a><b></b>",
		"   just text   ",
		"<a>",
	}
	for _, src := range cases {
		if _, err := ParseString(src, 0, "bad.xml"); err == nil {
			t.Errorf("ParseString(%q): expected error", src)
		}
	}
}

func TestParseMixedContentAndWhitespace(t *testing.T) {
	d, err := ParseString("<p>  hello <b>bold</b> world  </p>", 0, "mixed.xml")
	if err != nil {
		t.Fatal(err)
	}
	if len(d.Root.Children) != 3 {
		t.Fatalf("mixed content children = %d, want 3", len(d.Root.Children))
	}
	if d.Root.Children[0].Text != "hello" || d.Root.Children[2].Text != "world" {
		t.Errorf("text children = %q, %q", d.Root.Children[0].Text, d.Root.Children[2].Text)
	}
}

func TestWriteParseRoundTrip(t *testing.T) {
	orig := figure2a()
	var buf bytes.Buffer
	if err := WriteXML(&buf, orig); err != nil {
		t.Fatal(err)
	}
	back, err := Parse(&buf, 0, "roundtrip.xml")
	if err != nil {
		t.Fatal(err)
	}
	if !equalTrees(orig.Root, back.Root) {
		t.Error("round-trip changed the tree")
	}
}

func TestWriteEscapes(t *testing.T) {
	d := NewDocument("esc", 0, E("r", ET("v", `a<b & "c"`)))
	var buf bytes.Buffer
	if err := WriteXML(&buf, d); err != nil {
		t.Fatal(err)
	}
	back, err := Parse(&buf, 0, "esc")
	if err != nil {
		t.Fatal(err)
	}
	if got := back.Root.Children[0].Value(); got != `a<b & "c"` {
		t.Errorf("escaped value = %q", got)
	}
}

func TestXMLSize(t *testing.T) {
	d := figure2a()
	sz, err := XMLSize(d)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := WriteXML(&buf, d); err != nil {
		t.Fatal(err)
	}
	if sz != int64(buf.Len()) {
		t.Errorf("XMLSize = %d, buffer = %d", sz, buf.Len())
	}
}

func TestRepository(t *testing.T) {
	var repo Repository
	d1 := NewDocument("one", 0, E("r", ET("a", "x")))
	d2 := NewDocument("two", 0, E("r", ET("b", "y")))
	repo.Add(d1)
	repo.Add(d2)
	if d2.DocID != 1 {
		t.Errorf("second doc renumbered to %d, want 1", d2.DocID)
	}
	if d2.Root.ID.Doc != 1 {
		t.Errorf("second doc root dewey doc = %d, want 1", d2.Root.ID.Doc)
	}
	n := repo.FindByID(dewey.MustParse("1.0.0"))
	if n == nil || n.Label != "b" {
		t.Fatalf("FindByID across docs = %v", n)
	}
	if repo.FindByID(dewey.MustParse("7.0")) != nil {
		t.Error("missing doc should give nil")
	}
	if repo.NodeCount() != d1.NodeCount()+d2.NodeCount() {
		t.Error("repository node count mismatch")
	}
}

func TestValueAndDirectlyContainsValue(t *testing.T) {
	leaf := ET("Name", "Data Mining")
	if !leaf.DirectlyContainsValue() {
		t.Error("ET node must directly contain its value")
	}
	if leaf.Value() != "Data Mining" {
		t.Errorf("Value = %q", leaf.Value())
	}
	inner := E("Course", leaf, E("Students"))
	if inner.DirectlyContainsValue() {
		t.Error("element with element children must not directly contain value")
	}
	if inner.Value() != "" {
		t.Errorf("inner Value = %q, want empty", inner.Value())
	}
	txt := T("abc")
	if txt.Value() != "abc" {
		t.Errorf("text Value = %q", txt.Value())
	}
}

func TestRandomTreeRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	labels := []string{"a", "b", "c", "d", "e"}
	words := []string{"alpha", "beta", "gamma", "delta"}
	var build func(depth int) *Node
	build = func(depth int) *Node {
		n := E(labels[rng.Intn(len(labels))])
		if depth >= 5 || rng.Intn(3) == 0 {
			n.Append(T(words[rng.Intn(len(words))]))
			return n
		}
		for i := 0; i < 1+rng.Intn(3); i++ {
			n.Append(build(depth + 1))
		}
		return n
	}
	for trial := 0; trial < 25; trial++ {
		d := NewDocument("rand", 0, build(0))
		var buf bytes.Buffer
		if err := WriteXML(&buf, d); err != nil {
			t.Fatal(err)
		}
		back, err := Parse(&buf, 0, "rand")
		if err != nil {
			t.Fatalf("trial %d: %v\n%s", trial, err, buf.String())
		}
		if !equalTrees(d.Root, back.Root) {
			t.Fatalf("trial %d: round-trip mismatch\n%s", trial, buf.String())
		}
	}
}

func equalTrees(a, b *Node) bool {
	if a.Kind != b.Kind || a.Label != b.Label {
		return false
	}
	if a.Kind == Text && strings.Join(strings.Fields(a.Text), " ") != strings.Join(strings.Fields(b.Text), " ") {
		return false
	}
	if len(a.Children) != len(b.Children) {
		return false
	}
	for i := range a.Children {
		if !equalTrees(a.Children[i], b.Children[i]) {
			return false
		}
	}
	return true
}

func TestElementCount(t *testing.T) {
	d := figure2a()
	if got := d.ElementCount(); got != 32 {
		t.Errorf("ElementCount = %d, want 32", got)
	}
	if d.ElementCount() >= d.NodeCount() {
		t.Error("element count must exclude text nodes")
	}
}

func TestParseFile(t *testing.T) {
	dir := t.TempDir()
	path := dir + "/doc.xml"
	var buf bytes.Buffer
	if err := WriteXML(&buf, figure2a()); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, buf.Bytes(), 0o644); err != nil {
		t.Fatal(err)
	}
	d, err := ParseFile(path, 2)
	if err != nil {
		t.Fatal(err)
	}
	if d.DocID != 2 || d.Root.Label != "Dept" {
		t.Errorf("ParseFile doc = %d %s", d.DocID, d.Root.Label)
	}
	if _, err := ParseFile(dir+"/missing.xml", 0); err == nil {
		t.Error("missing file must error")
	}
}

func TestBuildFigure1Shape(t *testing.T) {
	d := BuildFigure1()
	if d.Root.Label != "r" || len(d.Root.Children) != 2 {
		t.Fatalf("figure 1 root = %s with %d children", d.Root.Label, len(d.Root.Children))
	}
	if got := d.Root.Children[0].Label; got != "x1" {
		t.Errorf("first child = %s", got)
	}
}
