// Package xmltree models XML documents as the labeled, ordered trees the GKS
// system operates on (Agarwal et al., EDBT 2016, §2.1).
//
// A node in the tree is either an element, carrying its tag label, or a text
// node carrying a value. XML attributes are normalized into leading child
// elements (<a k="v"> becomes <a><k>v</k>...</a>), matching the paper's
// element-only data model in which "attribute nodes" are ordinary elements
// that directly contain their value (Def 2.1.1). Every node is labeled with
// a Dewey identifier; children are numbered in document order, so iterating
// a document pre-order visits Dewey IDs in increasing order.
//
// A Repository groups several documents under distinct document numbers —
// the paper's multi-file search setting (§2.4, "GKS search is seamlessly
// expanded over multiple documents by prefixing Dewey ids with corresponding
// document id").
package xmltree

import (
	"encoding/xml"
	"errors"
	"fmt"
	"io"
	"os"
	"strings"

	"repro/internal/dewey"
)

// Kind distinguishes element nodes from text nodes.
type Kind uint8

const (
	// Element is an XML element node (including normalized attributes).
	Element Kind = iota
	// Text is a text node directly containing a value.
	Text
)

// Node is one node of a labeled XML tree.
type Node struct {
	// Kind reports whether the node is an Element or Text node.
	Kind Kind
	// Label is the element tag; empty for text nodes.
	Label string
	// Text is the node value; empty for element nodes.
	Text string
	// ID is the node's Dewey identifier, assigned by the owning Document.
	ID dewey.ID
	// Parent is the parent node; nil for a document root.
	Parent *Node
	// Children holds the node's children in document order.
	Children []*Node
}

// Document is a single parsed XML document within a repository.
type Document struct {
	// Name is a human-readable identifier (usually a file name).
	Name string
	// DocID is the repository-wide document number used in Dewey IDs.
	DocID int32
	// Root is the document element.
	Root *Node
}

// Repository is an ordered collection of documents indexed and searched as
// one data set.
type Repository struct {
	Docs []*Document
}

// ErrNoRoot is returned when a parsed document contains no element.
var ErrNoRoot = errors.New("xmltree: document has no root element")

// E constructs an element node with the given label and children. It is the
// tree-building primitive used by tests, generators and examples.
func E(label string, children ...*Node) *Node {
	n := &Node{Kind: Element, Label: label}
	for _, c := range children {
		n.Append(c)
	}
	return n
}

// T constructs a text node with the given value.
func T(value string) *Node { return &Node{Kind: Text, Text: value} }

// ET constructs an element that directly contains a single text value —
// the paper's "text node", e.g. ET("Name", "Databases").
func ET(label, value string) *Node { return E(label, T(value)) }

// Append adds child as the last child of n and sets its parent pointer.
func (n *Node) Append(child *Node) {
	child.Parent = n
	n.Children = append(n.Children, child)
}

// IsElement reports whether the node is an element node.
func (n *Node) IsElement() bool { return n.Kind == Element }

// Value returns the concatenation of the node's direct text children,
// separated by single spaces. For a text node it returns the node's text.
func (n *Node) Value() string {
	if n.Kind == Text {
		return n.Text
	}
	var parts []string
	for _, c := range n.Children {
		if c.Kind == Text {
			parts = append(parts, c.Text)
		}
	}
	return strings.Join(parts, " ")
}

// DirectlyContainsValue reports whether the element's children are exactly
// one text node — the paper's notion of an element that "directly contains
// its value".
func (n *Node) DirectlyContainsValue() bool {
	return n.Kind == Element && len(n.Children) == 1 && n.Children[0].Kind == Text
}

// Walk visits n and its subtree in pre-order (document order). If fn
// returns false for a node, that node's subtree is skipped.
func Walk(n *Node, fn func(*Node) bool) {
	if n == nil {
		return
	}
	if !fn(n) {
		return
	}
	for _, c := range n.Children {
		Walk(c, fn)
	}
}

// NewDocument wraps a constructed tree in a Document and assigns Dewey IDs.
func NewDocument(name string, docID int32, root *Node) *Document {
	d := &Document{Name: name, DocID: docID, Root: root}
	d.AssignIDs()
	return d
}

// AssignIDs (re)labels the whole document with Dewey IDs: the root gets
// dewey.Root(DocID) and each child the parent's ID extended with its ordinal.
func (d *Document) AssignIDs() {
	if d.Root == nil {
		return
	}
	var assign func(n *Node, id dewey.ID)
	assign = func(n *Node, id dewey.ID) {
		n.ID = id
		for i, c := range n.Children {
			assign(c, id.Child(int32(i)))
		}
	}
	assign(d.Root, dewey.Root(d.DocID))
}

// NodeCount returns the number of nodes (elements and text nodes) in the
// document.
func (d *Document) NodeCount() int {
	count := 0
	Walk(d.Root, func(*Node) bool { count++; return true })
	return count
}

// ElementCount returns the number of element nodes in the document.
func (d *Document) ElementCount() int {
	count := 0
	Walk(d.Root, func(n *Node) bool {
		if n.IsElement() {
			count++
		}
		return true
	})
	return count
}

// Depth returns the number of edges on the longest root-to-leaf path.
func (d *Document) Depth() int {
	var depth func(n *Node) int
	depth = func(n *Node) int {
		max := 0
		for _, c := range n.Children {
			if d := depth(c) + 1; d > max {
				max = d
			}
		}
		return max
	}
	if d.Root == nil {
		return 0
	}
	return depth(d.Root)
}

// FindByID returns the node with the given Dewey ID, or nil if the ID does
// not denote a node of this document.
func (d *Document) FindByID(id dewey.ID) *Node {
	if d.Root == nil || id.Doc != d.DocID || len(id.Path) == 0 || id.Path[0] != d.Root.ID.Path[0] {
		return nil
	}
	n := d.Root
	for _, ord := range id.Path[1:] {
		if int(ord) >= len(n.Children) {
			return nil
		}
		n = n.Children[int(ord)]
	}
	return n
}

// Parse reads one XML document from r. XML attributes become leading child
// elements; comments, processing instructions and directives are ignored;
// whitespace-only character data is dropped.
func Parse(r io.Reader, docID int32, name string) (*Document, error) {
	dec := xml.NewDecoder(r)
	var root *Node
	var stack []*Node
	for {
		tok, err := dec.Token()
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, fmt.Errorf("xmltree: parsing %s: %w", name, err)
		}
		switch t := tok.(type) {
		case xml.StartElement:
			n := &Node{Kind: Element, Label: t.Name.Local}
			for _, a := range t.Attr {
				if a.Name.Space == "xmlns" || a.Name.Local == "xmlns" {
					continue
				}
				n.Append(ET(a.Name.Local, a.Value))
			}
			if len(stack) == 0 {
				if root != nil {
					return nil, fmt.Errorf("xmltree: parsing %s: multiple root elements", name)
				}
				root = n
			} else {
				stack[len(stack)-1].Append(n)
			}
			stack = append(stack, n)
		case xml.EndElement:
			if len(stack) == 0 {
				return nil, fmt.Errorf("xmltree: parsing %s: unbalanced end element %s", name, t.Name.Local)
			}
			stack = stack[:len(stack)-1]
		case xml.CharData:
			text := strings.TrimSpace(string(t))
			if text == "" || len(stack) == 0 {
				continue
			}
			stack[len(stack)-1].Append(T(text))
		}
	}
	if root == nil {
		return nil, fmt.Errorf("xmltree: parsing %s: %w", name, ErrNoRoot)
	}
	if len(stack) != 0 {
		return nil, fmt.Errorf("xmltree: parsing %s: unexpected end of input inside <%s>", name, stack[len(stack)-1].Label)
	}
	return NewDocument(name, docID, root), nil
}

// ParseString parses an XML document held in a string.
func ParseString(s string, docID int32, name string) (*Document, error) {
	return Parse(strings.NewReader(s), docID, name)
}

// ParseFile parses the XML document stored at path.
func ParseFile(path string, docID int32) (*Document, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("xmltree: %w", err)
	}
	defer f.Close()
	return Parse(f, docID, path)
}

// Add appends doc to the repository, renumbering it to the next free
// document ID and reassigning Dewey IDs.
func (r *Repository) Add(doc *Document) {
	doc.DocID = int32(len(r.Docs))
	doc.AssignIDs()
	r.Docs = append(r.Docs, doc)
}

// FindByID locates a node across all documents of the repository.
func (r *Repository) FindByID(id dewey.ID) *Node {
	if id.Doc < 0 || int(id.Doc) >= len(r.Docs) {
		return nil
	}
	return r.Docs[id.Doc].FindByID(id)
}

// NodeCount returns the total node count over all documents.
func (r *Repository) NodeCount() int {
	total := 0
	for _, d := range r.Docs {
		total += d.NodeCount()
	}
	return total
}
