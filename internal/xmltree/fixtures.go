package xmltree

// Paper fixtures shared by tests, examples and documentation across the
// repository. They reconstruct the worked examples of Agarwal et al.
// (EDBT 2016) so that algorithmic results can be checked against the
// numbers printed in the paper.

// BuildFigure2a builds the university document of Figure 2(a): a <Dept>
// with a department name and two <Area> subtrees; the Databases area holds
// three courses (Data Mining, Algorithms, AI) whose student rosters drive
// Examples 3–5 and the DI discovery example of §2.3.
//
// In the paper's numbering <Area> is n0.1; with the repository's document
// prefix and root ordinal the same node is Dewey "0.0.1".
func BuildFigure2a() *Document {
	root := E("Dept",
		ET("Dept_Name", "CS"),
		E("Area",
			ET("Name", "Databases"),
			E("Courses",
				E("Course",
					ET("Name", "Data Mining"),
					E("Students",
						ET("Student", "Karen"),
						ET("Student", "Mike"),
						ET("Student", "John"),
					),
				),
				E("Course",
					ET("Name", "Algorithms"),
					E("Students",
						ET("Student", "Karen"),
						ET("Student", "Julie"),
						ET("Student", "John"),
					),
				),
				E("Course",
					ET("Name", "AI"),
					E("Students",
						ET("Student", "Karen"),
						ET("Student", "Mike"),
						ET("Student", "Serena"),
						ET("Student", "Peter"),
					),
				),
			),
		),
		E("Area",
			ET("Name", "Theory"),
			E("Courses",
				E("Course",
					ET("Name", "Logic"),
					E("Students",
						ET("Student", "Alice"),
						ET("Student", "Bob"),
					),
				),
			),
		),
	)
	return NewDocument("figure2a.xml", 0, root)
}

// BuildFigure1 builds a tree realizing Figure 1(i) and consistent with
// Table 1 and Example 5 of the paper:
//
//	r
//	├── x1: a₁ b₂ c₂ x2(a₂ b₁ c₁)
//	└── x3: a₃ b₃ x4(a₄ d₁)
//
// Keyword instances are elements that directly contain the keyword as
// their value (the paper's "text nodes"). The paper's abstract keywords
// a, b, c, d, e are realized as alpha, beta, gamma, delta, epsilon (the
// single letters would be removed as stop words). With queries
// Q1={a,b,c}, Q2={a,b,e}, Q3={a,b,c,d} this tree yields exactly the
// paper's Table 1 responses and the Example 5 ranks rank(x2)=3,
// rank(x3)=2.5, rank(x4)=2.
func BuildFigure1() *Document {
	root := E("r",
		E("x1",
			ET("k", "alpha"),
			ET("k", "beta"),
			ET("k", "gamma"),
			E("x2",
				ET("k", "alpha"),
				ET("k", "beta"),
				ET("k", "gamma"),
			),
		),
		E("x3",
			ET("k", "alpha"),
			ET("k", "beta"),
			E("x4",
				ET("k", "alpha"),
				ET("k", "delta"),
			),
		),
	)
	return NewDocument("figure1.xml", 0, root)
}
