package lca

import (
	"math/rand"
	"testing"

	"repro/internal/core"
	"repro/internal/index"
	"repro/internal/xmltree"
)

func fig1(t *testing.T) (*index.Index, *core.Engine) {
	t.Helper()
	ix, err := index.BuildDocument(xmltree.BuildFigure1(), index.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	return ix, core.NewEngine(ix)
}

func fig2a(t *testing.T) (*index.Index, *core.Engine) {
	t.Helper()
	ix, err := index.BuildDocument(xmltree.BuildFigure2a(), index.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	return ix, core.NewEngine(ix)
}

func labels(ix *index.Index, ords []int32) []string {
	out := make([]string, len(ords))
	for i, o := range ords {
		out[i] = ix.LabelOf(o)
	}
	return out
}

func TestTable1SLCAandELCA(t *testing.T) {
	ix, eng := fig1(t)
	q1 := eng.PostingLists(core.NewQuery("alpha", "beta", "gamma"))
	q2 := eng.PostingLists(core.NewQuery("alpha", "beta", "epsilon"))
	q3 := eng.PostingLists(core.NewQuery("alpha", "beta", "gamma", "delta"))

	// Q1: SLCA {x2}, ELCA {x1, x2}.
	if got := labels(ix, SLCA(ix, q1)); len(got) != 1 || got[0] != "x2" {
		t.Errorf("SLCA(Q1) = %v, want [x2]", got)
	}
	if got := labels(ix, ELCA(ix, q1)); len(got) != 2 || got[0] != "x1" || got[1] != "x2" {
		t.Errorf("ELCA(Q1) = %v, want [x1 x2]", got)
	}

	// Q2: both NULL (epsilon does not occur).
	if got := SLCA(ix, q2); len(got) != 0 {
		t.Errorf("SLCA(Q2) = %v, want empty", labels(ix, got))
	}
	if got := ELCA(ix, q2); len(got) != 0 {
		t.Errorf("ELCA(Q2) = %v, want empty", labels(ix, got))
	}

	// Q3: both {r}.
	if got := labels(ix, SLCA(ix, q3)); len(got) != 1 || got[0] != "r" {
		t.Errorf("SLCA(Q3) = %v, want [r]", got)
	}
	if got := labels(ix, ELCA(ix, q3)); len(got) != 1 || got[0] != "r" {
		t.Errorf("ELCA(Q3) = %v, want [r]", got)
	}
}

func TestSLCASection23(t *testing.T) {
	ix, eng := fig2a(t)
	// Perfect query Q5 = {student, karen, mike, john}: the SLCA is the
	// <Students> node n0.1.1.0.1 — shallower context than GKS's Course.
	lists := eng.PostingLists(core.NewQuery("student", "karen", "mike", "john"))
	got := SLCA(ix, lists)
	if len(got) != 1 {
		t.Fatalf("SLCA = %v, want single node", labels(ix, got))
	}
	if id := ix.Nodes[got[0]].ID.String(); id != "0.0.1.1.0.1" {
		t.Errorf("SLCA = %s, want Students 0.0.1.1.0.1", id)
	}
}

func TestSLCANestedNotReturned(t *testing.T) {
	ix, eng := fig2a(t)
	// {karen} alone: every Student named Karen is its own SLCA (leaf level).
	lists := eng.PostingLists(core.NewQuery("karen"))
	got := SLCA(ix, lists)
	if len(got) != 3 {
		t.Fatalf("SLCA(karen) = %d nodes, want 3", len(got))
	}
	for _, o := range got {
		if ix.LabelOf(o) != "Student" {
			t.Errorf("SLCA(karen) includes %s", ix.LabelOf(o))
		}
	}
}

func TestELCAIsSupersetOfSLCA(t *testing.T) {
	ix, eng := fig2a(t)
	queries := []core.Query{
		core.NewQuery("karen", "mike"),
		core.NewQuery("student", "karen"),
		core.NewQuery("karen", "john"),
		core.NewQuery("databases", "karen"),
	}
	for _, q := range queries {
		lists := eng.PostingLists(q)
		s := SLCA(ix, lists)
		e := ELCA(ix, lists)
		inE := map[int32]bool{}
		for _, o := range e {
			inE[o] = true
		}
		for _, o := range s {
			if !inE[o] {
				t.Errorf("query %v: SLCA node %s missing from ELCA", q, ix.Nodes[o].ID)
			}
		}
	}
}

func TestEmptyAndMissingLists(t *testing.T) {
	ix, _ := fig1(t)
	if got := SLCA(ix, nil); got != nil {
		t.Errorf("SLCA(nil) = %v", got)
	}
	if got := SLCA(ix, [][]int32{{}, {1}}); got != nil {
		t.Errorf("SLCA with empty list = %v", got)
	}
	if got := ELCA(ix, [][]int32{{}}); got != nil {
		t.Errorf("ELCA with empty list = %v", got)
	}
	if got := NaiveGKS(ix, nil, 1); got != nil {
		t.Errorf("NaiveGKS(nil) = %v", got)
	}
}

func TestNaiveGKSSubsetSemantics(t *testing.T) {
	ix, eng := fig1(t)
	// Q3 with s=2: naive enumeration over all subsets of size >= 2.
	lists := eng.PostingLists(core.NewQuery("alpha", "beta", "gamma", "delta"))
	got := NaiveGKS(ix, lists, 2)
	// Every returned node must contain at least 2 distinct query keywords.
	for _, o := range got {
		start, end := ix.SubtreeRange(o)
		distinct := 0
		for _, list := range lists {
			if countInRange(list, start, end) > 0 {
				distinct++
			}
		}
		if distinct < 2 {
			t.Errorf("naive node %s has %d distinct keywords", ix.Nodes[o].ID, distinct)
		}
	}
	// x2, x3, x4 must all be found (they are SLCAs of subsets).
	want := map[string]bool{"x2": false, "x3": false, "x4": false}
	for _, o := range got {
		if _, ok := want[ix.LabelOf(o)]; ok {
			want[ix.LabelOf(o)] = true
		}
	}
	for label, found := range want {
		if !found {
			t.Errorf("naive enumeration missed %s", label)
		}
	}
}

func TestNaiveGKSCoversGKSResults(t *testing.T) {
	// Oracle: on trees without entity nodes, every GKS result node must
	// appear in the naive subset-SLCA union (GKS prunes ancestors; naive
	// finds all minimal nodes).
	ix, eng := fig1(t)
	q := core.NewQuery("alpha", "beta", "gamma", "delta")
	lists := eng.PostingLists(q)
	for s := 1; s <= 4; s++ {
		resp, err := eng.Search(q, s)
		if err != nil {
			t.Fatal(err)
		}
		naive := map[int32]bool{}
		for _, o := range NaiveGKS(ix, lists, s) {
			naive[o] = true
		}
		for _, r := range resp.Results {
			if !naive[r.Ord] {
				t.Errorf("s=%d: GKS result %s (%s) not in naive subset union", s, r.Label, r.ID)
			}
		}
	}
}

func TestSLCARandomTreesAgainstBruteForce(t *testing.T) {
	// Property test: stack/window SLCA equals a brute-force check on random
	// trees.
	rng := rand.New(rand.NewSource(123))
	words := []string{"w0", "w1", "w2", "w3"}
	for trial := 0; trial < 40; trial++ {
		var build func(depth int) *xmltree.Node
		build = func(depth int) *xmltree.Node {
			n := xmltree.E("n")
			if depth >= 4 || rng.Intn(3) == 0 {
				n.Append(xmltree.T(words[rng.Intn(len(words))]))
				return n
			}
			for i := 0; i < 1+rng.Intn(3); i++ {
				n.Append(build(depth + 1))
			}
			return n
		}
		doc := xmltree.NewDocument("rand", 0, build(0))
		ix, err := index.BuildDocument(doc, index.Options{IndexElementNames: false})
		if err != nil {
			t.Fatal(err)
		}
		eng := core.NewEngine(ix)
		q := core.NewQuery("w0", "w1")
		lists := eng.PostingLists(q)
		got := SLCA(ix, lists)

		// Brute force: qualifying nodes with no qualifying descendant.
		var want []int32
		for ord := range ix.Nodes {
			start, end := ix.SubtreeRange(int32(ord))
			if countInRange(lists[0], start, end) == 0 || countInRange(lists[1], start, end) == 0 {
				continue
			}
			minimal := true
			for d := int32(ord) + 1; d < end; d++ {
				ds, de := ix.SubtreeRange(d)
				if countInRange(lists[0], ds, de) > 0 && countInRange(lists[1], ds, de) > 0 {
					minimal = false
					break
				}
			}
			if minimal {
				want = append(want, int32(ord))
			}
		}
		if len(got) != len(want) {
			t.Fatalf("trial %d: SLCA = %v, want %v", trial, got, want)
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("trial %d: SLCA[%d] = %d, want %d", trial, i, got[i], want[i])
			}
		}
	}
}

func TestELCAWitnessSemantics(t *testing.T) {
	// Hand-built nested case: root has its own witnesses plus a child that
	// contains all keywords; both are ELCAs, only the child is SLCA.
	doc := xmltree.NewDocument("nested", 0, xmltree.E("root",
		xmltree.ET("v", "apple"),
		xmltree.ET("v", "pear"),
		xmltree.E("mid",
			xmltree.ET("v", "apple"),
			xmltree.ET("v", "pear"),
		),
	))
	ix, err := index.BuildDocument(doc, index.Options{IndexElementNames: false})
	if err != nil {
		t.Fatal(err)
	}
	eng := core.NewEngine(ix)
	lists := eng.PostingLists(core.NewQuery("apple", "pear"))
	s := SLCA(ix, lists)
	if len(s) != 1 || ix.LabelOf(s[0]) != "mid" {
		t.Fatalf("SLCA = %v", labels(ix, s))
	}
	e := ELCA(ix, lists)
	if len(e) != 2 || ix.LabelOf(e[0]) != "root" || ix.LabelOf(e[1]) != "mid" {
		t.Fatalf("ELCA = %v, want [root mid]", labels(ix, e))
	}

	// Removing root's own pear witness demotes root from the ELCA set.
	doc2 := xmltree.NewDocument("nested2", 0, xmltree.E("root",
		xmltree.ET("v", "apple"),
		xmltree.E("mid",
			xmltree.ET("v", "apple"),
			xmltree.ET("v", "pear"),
		),
	))
	ix2, err := index.BuildDocument(doc2, index.Options{IndexElementNames: false})
	if err != nil {
		t.Fatal(err)
	}
	eng2 := core.NewEngine(ix2)
	lists2 := eng2.PostingLists(core.NewQuery("apple", "pear"))
	e2 := ELCA(ix2, lists2)
	if len(e2) != 1 || ix2.LabelOf(e2[0]) != "mid" {
		t.Fatalf("ELCA without root witness = %v, want [mid]", labels(ix2, e2))
	}
}
