package lca

import (
	"sort"

	"repro/internal/index"
)

// FSLCAForType implements a simplified form of MESSIAH's FSLCA (Truong et
// al., SIGMOD 2013 — the paper's [19]): SLCA-style answers that are
// conscious of missing elements. The caller supplies the target node type
// (in the paper's framing "specific XML node types are targeted"; use
// di.InferResultTypes to deduce it). A keyword that occurs under *no*
// instance of the target type is treated as a missing-element keyword and
// forgiven; the answer is the set of target-type nodes whose subtree
// contains every remaining keyword.
//
// The returned ordinals are in document order; forgiven lists the indexes
// of the forgiven keywords. If every keyword is forgiven the answer is
// empty (nothing anchors the query to the type).
func FSLCAForType(ix *index.Index, lists [][]int32, label string) (nodes []int32, forgiven []int) {
	labelID := int32(-1)
	for i, l := range ix.Labels {
		if l == label {
			labelID = int32(i)
			break
		}
	}
	if labelID < 0 || len(lists) == 0 {
		return nil, nil
	}
	var instances []int32
	for i := int32(0); i < int32(ix.NodeCount()); i++ {
		if ix.LabelIDOf(i) == labelID {
			instances = append(instances, i)
		}
	}
	if len(instances) == 0 {
		return nil, nil
	}

	// Partition keywords into anchored (occur under some instance) and
	// forgiven (missing under the type everywhere).
	var anchored []int
	for k, list := range lists {
		occurs := false
		for _, inst := range instances {
			start, end := ix.SubtreeRange(inst)
			if countInRange(list, start, end) > 0 {
				occurs = true
				break
			}
		}
		if occurs {
			anchored = append(anchored, k)
		} else {
			forgiven = append(forgiven, k)
		}
	}
	if len(anchored) == 0 {
		return nil, forgiven
	}

	for _, inst := range instances {
		start, end := ix.SubtreeRange(inst)
		all := true
		for _, k := range anchored {
			if countInRange(lists[k], start, end) == 0 {
				all = false
				break
			}
		}
		if all {
			nodes = append(nodes, inst)
		}
	}
	sort.Slice(nodes, func(i, j int) bool { return nodes[i] < nodes[j] })
	return nodes, forgiven
}
