package lca

import (
	"math/rand"
	"testing"

	"repro/internal/core"
	"repro/internal/datagen"
	"repro/internal/index"
	"repro/internal/xmltree"
)

func TestEagerMatchesWindowOnFixtures(t *testing.T) {
	ix, eng := fig1(t)
	queries := [][]string{
		{"alpha", "beta", "gamma"},
		{"alpha", "beta", "epsilon"},
		{"alpha", "beta", "gamma", "delta"},
		{"alpha"},
		{"delta", "gamma"},
	}
	for _, terms := range queries {
		lists := eng.PostingLists(core.NewQuery(terms...))
		assertSameOrds(t, terms, SLCA(ix, lists), SLCAIndexedLookupEager(ix, lists))
	}

	ix2, eng2 := fig2a(t)
	queries2 := [][]string{
		{"karen", "mike", "john"},
		{"karen", "julie"},
		{"student", "karen"},
		{"databases", "serena"},
		{"karen", "nosuchword"},
	}
	for _, terms := range queries2 {
		lists := eng2.PostingLists(core.NewQuery(terms...))
		assertSameOrds(t, terms, SLCA(ix2, lists), SLCAIndexedLookupEager(ix2, lists))
	}
}

func TestEagerMatchesWindowOnRandomTrees(t *testing.T) {
	rng := rand.New(rand.NewSource(4242))
	words := []string{"w0", "w1", "w2", "w3"}
	for trial := 0; trial < 80; trial++ {
		var build func(depth int) *xmltree.Node
		build = func(depth int) *xmltree.Node {
			n := xmltree.E("n")
			if depth >= 5 || rng.Intn(3) == 0 {
				n.Append(xmltree.T(words[rng.Intn(len(words))]))
				return n
			}
			for i := 0; i < 1+rng.Intn(3); i++ {
				n.Append(build(depth + 1))
			}
			return n
		}
		doc := xmltree.NewDocument("rand", 0, build(0))
		ix, err := index.BuildDocument(doc, index.Options{IndexElementNames: false})
		if err != nil {
			t.Fatal(err)
		}
		eng := core.NewEngine(ix)
		for _, terms := range [][]string{{"w0", "w1"}, {"w0", "w1", "w2"}, {"w3"}} {
			lists := eng.PostingLists(core.NewQuery(terms...))
			assertSameOrds(t, terms, SLCA(ix, lists), SLCAIndexedLookupEager(ix, lists))
		}
	}
}

func TestEagerOnPaperWorkload(t *testing.T) {
	doc := datagen.PaperDBLP(1)
	ix, err := index.BuildDocument(doc, index.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	eng := core.NewEngine(ix)
	for _, pq := range datagen.PaperQueries() {
		if pq.Dataset != "dblp" {
			continue
		}
		lists := eng.PostingLists(core.NewQuery(pq.Terms...))
		assertSameOrds(t, []string{pq.ID}, SLCA(ix, lists), SLCAIndexedLookupEager(ix, lists))
	}
}

func TestEagerEmptyInputs(t *testing.T) {
	ix, _ := fig1(t)
	if got := SLCAIndexedLookupEager(ix, nil); got != nil {
		t.Errorf("nil lists: %v", got)
	}
	if got := SLCAIndexedLookupEager(ix, [][]int32{{}, {1}}); got != nil {
		t.Errorf("empty list: %v", got)
	}
}

func assertSameOrds(t *testing.T, label []string, a, b []int32) {
	t.Helper()
	if len(a) != len(b) {
		t.Fatalf("%v: window SLCA = %v, eager = %v", label, a, b)
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("%v: window SLCA = %v, eager = %v", label, a, b)
		}
	}
}

func TestFSLCAForType(t *testing.T) {
	ix, eng := fig2a(t)
	// {karen, harry}: harry occurs nowhere, so it is forgiven; every
	// Course containing karen is an FSLCA answer.
	lists := eng.PostingLists(core.NewQuery("karen", "harry"))
	nodes, forgiven := FSLCAForType(ix, lists, "Course")
	if len(forgiven) != 1 || forgiven[0] != 1 {
		t.Errorf("forgiven = %v, want [1] (harry)", forgiven)
	}
	if len(nodes) != 3 {
		t.Errorf("FSLCA nodes = %d, want 3 karen courses", len(nodes))
	}
	for _, o := range nodes {
		if ix.LabelOf(o) != "Course" {
			t.Errorf("node %s has label %s", ix.Nodes[o].ID, ix.LabelOf(o))
		}
	}
	// Plain AND within the type: {karen, mike} → 2 courses.
	lists = eng.PostingLists(core.NewQuery("karen", "mike"))
	nodes, forgiven = FSLCAForType(ix, lists, "Course")
	if len(forgiven) != 0 || len(nodes) != 2 {
		t.Errorf("karen+mike: nodes=%d forgiven=%v", len(nodes), forgiven)
	}
	// Unknown target type.
	if nodes, _ := FSLCAForType(ix, lists, "NoSuchType"); nodes != nil {
		t.Errorf("unknown type: %v", nodes)
	}
	// All keywords forgiven: empty answer.
	lists = eng.PostingLists(core.NewQuery("zeta", "theta"))
	nodes, forgiven = FSLCAForType(ix, lists, "Course")
	if len(nodes) != 0 || len(forgiven) != 2 {
		t.Errorf("all-forgiven: nodes=%d forgiven=%v", len(nodes), forgiven)
	}
}
