package lca

import (
	"testing"

	"repro/internal/core"
	"repro/internal/datagen"
	"repro/internal/index"
)

// BenchmarkSLCAAlgorithms compares the window-based SLCA derivation with
// the classic Indexed Lookup Eager algorithm on a paper-scale query.
func BenchmarkSLCAAlgorithms(b *testing.B) {
	ix, err := index.BuildDocument(datagen.PaperDBLP(1), index.DefaultOptions())
	if err != nil {
		b.Fatal(err)
	}
	eng := core.NewEngine(ix)
	q := core.NewQuery("Peter Buneman", "Wenfei Fan", "Scott Weinstein")
	lists := eng.PostingLists(q)
	b.Run("window", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if got := SLCA(ix, lists); len(got) == 0 {
				b.Fatal("empty")
			}
		}
	})
	b.Run("eager", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if got := SLCAIndexedLookupEager(ix, lists); len(got) == 0 {
				b.Fatal("empty")
			}
		}
	})
	b.Run("elca", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if got := ELCA(ix, lists); len(got) == 0 {
				b.Fatal("empty")
			}
		}
	})
}
