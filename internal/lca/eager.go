package lca

import (
	"sort"

	"repro/internal/dewey"
	"repro/internal/index"
)

// SLCAIndexedLookupEager implements the Indexed Lookup Eager algorithm of
// Xu & Papakonstantinou (SIGMOD 2005) — the SLCA baseline the paper cites
// as [13], with the complexity the paper quotes in §4.2:
// O(d·n·|S_min|·log|S_max|).
//
// For every occurrence v of the rarest keyword, and for every other
// keyword list S_i, the deepest ancestor of v containing a match from S_i
// is lca(v, closest(v, S_i)) where closest is the better of v's
// predecessor and successor in S_i. The candidate for v is the shallowest
// of those per-list ancestors (they all lie on v's ancestor path, so they
// form a chain); the SLCA set is the candidate set with ancestors of other
// candidates removed.
//
// It returns exactly the same set as SLCA (property-tested); both are kept
// so the benchmark suite can compare the window-based derivation used by
// the GKS engine with the classic per-occurrence lookup approach.
func SLCAIndexedLookupEager(ix *index.Index, lists [][]int32) []int32 {
	n := len(lists)
	if n == 0 {
		return nil
	}
	for _, l := range lists {
		if len(l) == 0 {
			return nil
		}
	}
	// Drive from the shortest list.
	shortest := 0
	for i, l := range lists {
		if len(l) < len(lists[shortest]) {
			shortest = i
		}
	}

	seen := make(map[int32]bool)
	var cands []int32
	for _, v := range lists[shortest] {
		cand, ok := candidateFor(ix, lists, shortest, v)
		if ok && !seen[cand] {
			seen[cand] = true
			cands = append(cands, cand)
		}
	}
	sort.Slice(cands, func(i, j int) bool { return cands[i] < cands[j] })
	return dropAncestorsOfCandidates(ix, cands)
}

// candidateFor computes the deepest node containing v plus one match from
// every list.
func candidateFor(ix *index.Index, lists [][]int32, skip int, v int32) (int32, bool) {
	vid := ix.IDOf(v)
	best := v // deepest possible: v itself
	for i, list := range lists {
		if i == skip {
			continue
		}
		a, ok := deepestAncestorWithMatch(ix, list, v, vid)
		if !ok {
			return 0, false
		}
		// All candidates are ancestors-or-self of v: keep the shallowest.
		if ix.DepthOf(a) < ix.DepthOf(best) {
			best = a
		}
	}
	return best, true
}

// deepestAncestorWithMatch returns the deepest ancestor-or-self of v whose
// subtree contains an element of list: the deeper of lca(v, pred) and
// lca(v, succ) where pred/succ are v's neighbors in the (ordinal-sorted)
// list.
func deepestAncestorWithMatch(ix *index.Index, list []int32, v int32, vid dewey.ID) (int32, bool) {
	pos := sort.Search(len(list), func(i int) bool { return list[i] >= v })
	bestDepth := -1
	var best int32
	consider := func(u int32) {
		id, ok := dewey.LCA(vid, ix.IDOf(u))
		if !ok {
			return
		}
		ord, ok := ix.OrdinalOf(id)
		if !ok {
			return
		}
		if d := len(id.Path); d > bestDepth {
			bestDepth, best = d, ord
		}
	}
	if pos < len(list) {
		consider(list[pos]) // successor (or v itself)
	}
	if pos > 0 {
		consider(list[pos-1]) // predecessor
	}
	if bestDepth < 0 {
		return 0, false
	}
	return best, true
}
