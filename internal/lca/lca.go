// Package lca implements the LCA-based XML keyword search baselines that
// GKS is compared against (Agarwal et al., EDBT 2016, §1, §3, §7.3):
//
//   - SLCA — Smallest Lowest Common Ancestor (Xu & Papakonstantinou,
//     SIGMOD 2005): nodes containing every query keyword in their subtree
//     with no descendant that also does;
//   - ELCA — Exclusive LCA (Guo et al., XRank, SIGMOD 2003): nodes that
//     still contain every keyword after excluding the subtrees of
//     descendants that themselves contain every keyword;
//   - NaiveGKS — the strawman of Lemma 3: enumerate every keyword subset of
//     size ≥ s and union the subsets' SLCA answers. Exponential in |Q|;
//     kept as the ablation baseline and correctness oracle for the
//     single-pass GKS search.
//
// All functions operate on per-keyword posting lists of node ordinals from
// the shared index, exactly like the GKS engine, so baseline comparisons
// measure algorithmic differences only.
package lca

import (
	"sort"

	"repro/internal/index"
	"repro/internal/merge"
)

// SLCA returns the ordinals of the Smallest LCA nodes for the keyword
// posting lists, in document order. If any list is empty the result is
// empty (AND semantics).
func SLCA(ix *index.Index, lists [][]int32) []int32 {
	n := len(lists)
	if n == 0 || n > merge.MaxKeywords {
		return nil
	}
	for _, l := range lists {
		if len(l) == 0 {
			return nil
		}
	}
	sl := merge.Merge(lists)
	// Candidate generation: every block of n unique keywords contributes
	// the LCP of its ends; minimal qualifying nodes are exactly the
	// candidates with no candidate descendant.
	seen := make(map[int32]bool)
	var cands []int32
	merge.Windows(sl, n, func(l, r int) {
		if ord, ok := lcpOrd(ix, sl[l].Ord, sl[r].Ord); ok && !seen[ord] {
			seen[ord] = true
			cands = append(cands, ord)
		}
	})
	sort.Slice(cands, func(i, j int) bool { return cands[i] < cands[j] })
	return dropAncestorsOfCandidates(ix, cands)
}

// dropAncestorsOfCandidates keeps only candidates with no candidate in
// their proper subtree. cands must be sorted ascending (pre-order).
func dropAncestorsOfCandidates(ix *index.Index, cands []int32) []int32 {
	var out []int32
	for i, c := range cands {
		// The next candidate in pre-order is a descendant iff it falls in
		// c's subtree range; because candidates are sorted, checking the
		// immediate successor suffices.
		if i+1 < len(cands) && ix.ContainsOrd(c, cands[i+1]) {
			continue
		}
		out = append(out, c)
	}
	return out
}

// ELCA returns the ordinals of the Exclusive LCA nodes in document order.
func ELCA(ix *index.Index, lists [][]int32) []int32 {
	slcas := SLCA(ix, lists)
	if len(slcas) == 0 {
		return nil
	}
	// The nodes containing all keywords are exactly the ancestors-or-self
	// of SLCA nodes.
	qualSet := make(map[int32]bool)
	for _, s := range slcas {
		for cur := s; cur >= 0; cur = ix.ParentOf(cur) {
			if qualSet[cur] {
				break
			}
			qualSet[cur] = true
		}
	}
	qual := make([]int32, 0, len(qualSet))
	for q := range qualSet {
		qual = append(qual, q)
	}
	sort.Slice(qual, func(i, j int) bool { return qual[i] < qual[j] })

	// For each qualifying node, find its maximal qualifying proper
	// descendants with a pre-order stack sweep.
	maximalChildren := make(map[int32][]int32, len(qual))
	var stack []int32
	for _, q := range qual {
		for len(stack) > 0 && !ix.ContainsOrd(stack[len(stack)-1], q) {
			stack = stack[:len(stack)-1]
		}
		if len(stack) > 0 {
			top := stack[len(stack)-1]
			maximalChildren[top] = append(maximalChildren[top], q)
		}
		stack = append(stack, q)
	}

	var out []int32
	for _, q := range qual {
		if isELCA(ix, lists, q, maximalChildren[q]) {
			out = append(out, q)
		}
	}
	return out
}

// isELCA checks that every keyword has a witness under q outside the
// subtrees of q's maximal qualifying descendants.
func isELCA(ix *index.Index, lists [][]int32, q int32, exclude []int32) bool {
	qs, qe := ix.SubtreeRange(q)
	for _, list := range lists {
		total := countInRange(list, qs, qe)
		for _, x := range exclude {
			xs, xe := ix.SubtreeRange(x)
			total -= countInRange(list, xs, xe)
		}
		if total <= 0 {
			return false
		}
	}
	return true
}

// countInRange counts posting entries within the ordinal range [start, end).
func countInRange(list []int32, start, end int32) int {
	lo := sort.Search(len(list), func(i int) bool { return list[i] >= start })
	hi := sort.Search(len(list), func(i int) bool { return list[i] >= end })
	return hi - lo
}

// NaiveGKS unions the SLCA answers of every keyword subset of size >= s —
// the exponential strawman of Lemma 3. The result is the deduplicated,
// document-ordered union. It is exponential in len(lists); callers should
// keep len(lists) small (tests and the Lemma 3 ablation use n <= 8).
func NaiveGKS(ix *index.Index, lists [][]int32, s int) []int32 {
	n := len(lists)
	if n == 0 || n > 20 {
		return nil
	}
	if s < 1 {
		s = 1
	}
	if s > n {
		s = n
	}
	seen := make(map[int32]bool)
	var out []int32
	for subset := 1; subset < 1<<n; subset++ {
		if popcount(subset) < s {
			continue
		}
		var sub [][]int32
		for i := 0; i < n; i++ {
			if subset&(1<<i) != 0 {
				sub = append(sub, lists[i])
			}
		}
		for _, ord := range SLCA(ix, sub) {
			if !seen[ord] {
				seen[ord] = true
				out = append(out, ord)
			}
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

func popcount(x int) int {
	c := 0
	for ; x != 0; x &= x - 1 {
		c++
	}
	return c
}

func lcpOrd(ix *index.Index, a, b int32) (int32, bool) {
	if a == b {
		return a, true
	}
	ida, idb := ix.IDOf(a), ix.IDOf(b)
	if ida.Doc != idb.Doc {
		return 0, false
	}
	// Longest common Dewey prefix (Lemma 6).
	n := len(ida.Path)
	if len(idb.Path) < n {
		n = len(idb.Path)
	}
	i := 0
	for i < n && ida.Path[i] == idb.Path[i] {
		i++
	}
	if i == 0 {
		return 0, false
	}
	prefix := ida
	prefix.Path = ida.Path[:i]
	return ix.OrdinalOf(prefix)
}
