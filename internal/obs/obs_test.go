package obs

import (
	"net/http/httptest"
	"strconv"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestObserveRequestAggregates(t *testing.T) {
	r := NewRegistry()
	r.ObserveRequest("/search", 200, 500*time.Microsecond)
	r.ObserveRequest("/search", 200, 2*time.Millisecond)
	r.ObserveRequest("/search", 400, time.Millisecond)
	r.ObserveRequest("/stats", 500, 100*time.Microsecond)

	requests, errors, panics, shed := r.Snapshot()
	if requests != 4 || errors != 2 || panics != 0 || shed != 0 {
		t.Errorf("snapshot = %d/%d/%d/%d, want 4/2/0/0", requests, errors, panics, shed)
	}
}

func TestHistogramBuckets(t *testing.T) {
	h := newHistogram([]float64{0.001, 0.01, 0.1})
	for _, s := range []float64{0.0005, 0.005, 0.05, 0.5, 0.001} {
		h.observe(s)
	}
	// 0.0005 and 0.001 land in le=0.001 (upper bounds are inclusive via
	// SearchFloat64s semantics: 0.001 → index 0), 0.005 in le=0.01,
	// 0.05 in le=0.1, 0.5 in +Inf.
	want := []int64{2, 1, 1, 1}
	for i, n := range h.counts {
		if n != want[i] {
			t.Errorf("bucket %d = %d, want %d (%v)", i, n, want[i], h.counts)
		}
	}
	if h.Count() != 5 {
		t.Errorf("count = %d, want 5", h.Count())
	}
}

func TestWritePrometheusFormat(t *testing.T) {
	r := NewRegistry()
	r.ObserveRequest("/search", 200, time.Millisecond)
	r.ObserveRequest("/search", 504, 50*time.Millisecond)
	r.IncPanic()
	r.IncShed()
	r.AddInFlight(3)
	r.SetCacheStats(func() (int64, int64) { return 7, 11 })

	var sb strings.Builder
	r.WritePrometheus(&sb)
	out := sb.String()
	for _, want := range []string{
		"# TYPE gks_http_requests_total counter",
		`gks_http_requests_total{endpoint="/search"} 2`,
		`gks_http_errors_total{endpoint="/search",code="504"} 1`,
		"# TYPE gks_http_request_duration_seconds histogram",
		`gks_http_request_duration_seconds_bucket{endpoint="/search",le="0.001"} 1`,
		`gks_http_request_duration_seconds_bucket{endpoint="/search",le="+Inf"} 2`,
		`gks_http_request_duration_seconds_count{endpoint="/search"} 2`,
		"gks_http_panics_total 1",
		"gks_http_load_shed_total 1",
		"gks_http_in_flight 3",
		"gks_cache_hits_total 7",
		"gks_cache_misses_total 11",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q\n%s", want, out)
		}
	}
}

func TestHistogramBucketsCumulative(t *testing.T) {
	r := NewRegistry()
	for i := 0; i < 100; i++ {
		r.ObserveRequest("/search", 200, time.Duration(i)*time.Millisecond)
	}
	var sb strings.Builder
	r.WritePrometheus(&sb)
	// Cumulative buckets must be non-decreasing line to line.
	last := int64(-1)
	for _, line := range strings.Split(sb.String(), "\n") {
		if !strings.HasPrefix(line, "gks_http_request_duration_seconds_bucket") {
			continue
		}
		n, err := strconv.ParseInt(line[strings.LastIndexByte(line, ' ')+1:], 10, 64)
		if err != nil {
			t.Fatalf("unparseable bucket line %q: %v", line, err)
		}
		if n < last {
			t.Errorf("cumulative bucket decreased: %q after %d", line, last)
		}
		last = n
	}
	if last != 100 {
		t.Errorf("+Inf bucket = %d, want 100", last)
	}
}

func TestHandlerServesTextFormat(t *testing.T) {
	r := NewRegistry()
	r.ObserveRequest("/stats", 200, time.Millisecond)
	rec := httptest.NewRecorder()
	r.Handler().ServeHTTP(rec, httptest.NewRequest("GET", "/metrics", nil))
	if rec.Code != 200 {
		t.Fatalf("status %d", rec.Code)
	}
	if ct := rec.Header().Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Errorf("Content-Type = %q", ct)
	}
	if !strings.Contains(rec.Body.String(), "gks_http_requests_total") {
		t.Errorf("body missing series:\n%s", rec.Body.String())
	}
}

func TestRegistryConcurrency(t *testing.T) {
	r := NewRegistry()
	var wg sync.WaitGroup
	for i := 0; i < 16; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			for j := 0; j < 100; j++ {
				r.ObserveRequest("/search", 200+(i%2)*300, time.Millisecond)
				r.AddInFlight(1)
				r.AddInFlight(-1)
				if j%10 == 0 {
					var sb strings.Builder
					r.WritePrometheus(&sb)
				}
			}
		}(i)
	}
	wg.Wait()
	if requests, _, _, _ := r.Snapshot(); requests != 1600 {
		t.Errorf("requests = %d, want 1600", requests)
	}
}
