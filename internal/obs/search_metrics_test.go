package obs

import (
	"strings"
	"testing"
)

func TestSearchStageAndSLSizeSeries(t *testing.T) {
	r := NewRegistry()
	r.ObserveSearchStage("merge", 0.0002)
	r.ObserveSearchStage("merge", 0.02)
	r.ObserveSearchStage("rank", 0.001)
	r.ObserveSLSize(0)
	r.ObserveSLSize(12)
	r.ObserveSLSize(250_000)

	var b strings.Builder
	r.WritePrometheus(&b)
	out := b.String()

	for _, want := range []string{
		`gks_search_stage_seconds_bucket{stage="merge",le="+Inf"} 2`,
		`gks_search_stage_seconds_count{stage="merge"} 2`,
		`gks_search_stage_seconds_count{stage="rank"} 1`,
		"# TYPE gks_search_stage_seconds histogram",
		`gks_search_sl_entries_bucket{le="1"} 1`,
		`gks_search_sl_entries_bucket{le="100"} 2`,
		`gks_search_sl_entries_bucket{le="1e+06"} 3`,
		"gks_search_sl_entries_count 3",
		"# TYPE gks_search_sl_entries histogram",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("missing series %q in output:\n%s", want, out)
		}
	}

	if got := r.SearchStageStats(); got["merge"] != 2 || got["rank"] != 1 {
		t.Errorf("SearchStageStats = %v", got)
	}
	if got := r.SLSizeCount(); got != 3 {
		t.Errorf("SLSizeCount = %d, want 3", got)
	}
}

// TestStageHistogramsAbsentUntilObserved keeps the exposition clean for
// deployments that never wire a SearchObserver.
func TestStageHistogramsAbsentUntilObserved(t *testing.T) {
	r := NewRegistry()
	var b strings.Builder
	r.WritePrometheus(&b)
	if strings.Contains(b.String(), "gks_search_stage_seconds") ||
		strings.Contains(b.String(), "gks_search_sl_entries") {
		t.Errorf("unobserved search series should not be exported:\n%s", b.String())
	}
}
