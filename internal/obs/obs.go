// Package obs provides stdlib-only serving-path observability for cmd/gksd:
// per-endpoint request counters, error counters keyed by status code, latency
// histograms, panic / load-shed counters, an in-flight gauge, and cache
// hit/miss gauges sourced from internal/cache.Stats. The whole registry is
// exported in Prometheus text exposition format (version 0.0.4) at
// GET /metrics, so the service can sit behind a stock Prometheus scrape
// config without importing any client library.
//
// This package is distinct from internal/metrics, which implements the
// paper's evaluation metrics (rank score, precision/recall); obs measures
// the HTTP serving layer itself.
package obs

import (
	"fmt"
	"io"
	"net/http"
	"sort"
	"strconv"
	"sync"
	"time"
)

// DefaultBuckets are the histogram upper bounds in seconds. They span 100µs
// to 10s — the paper's engine answers most queries in well under a
// millisecond at test scale, while production-scale indexes and best-effort
// threshold searches reach into the tens of milliseconds.
var DefaultBuckets = []float64{
	0.0001, 0.00025, 0.0005, 0.001, 0.0025, 0.005,
	0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 1, 2.5, 5, 10,
}

// StageBuckets are the upper bounds of the per-stage search histograms.
// Stages run one to two orders of magnitude faster than whole requests, so
// the scale starts at 10µs.
var StageBuckets = []float64{
	0.00001, 0.000025, 0.00005, 0.0001, 0.00025, 0.0005,
	0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 1,
}

// SLEntryBuckets are the upper bounds of the S_L-size histogram: entry
// counts in decade steps, covering a single-instance keyword through
// production-scale merges.
var SLEntryBuckets = []float64{
	1, 10, 100, 1_000, 10_000, 100_000, 1_000_000, 10_000_000,
}

// WALBatchBuckets are the upper bounds of the group-commit batch-size
// histogram: how many log records each fsync made durable. 1 means no
// batching happened (a lone writer); higher buckets show concurrent
// writers amortizing the flush.
var WALBatchBuckets = []float64{
	1, 2, 4, 8, 16, 32, 64, 128, 256, 512,
}

// Histogram is a fixed-bucket latency histogram. The zero value is unusable;
// create instances with newHistogram. Guarded by the Registry mutex.
type Histogram struct {
	bounds []float64 // ascending upper bounds; an implicit +Inf bucket follows
	counts []int64   // len(bounds)+1, last = +Inf
	sum    float64
	count  int64
}

func newHistogram(bounds []float64) *Histogram {
	return &Histogram{bounds: bounds, counts: make([]int64, len(bounds)+1)}
}

func (h *Histogram) observe(seconds float64) {
	i := sort.SearchFloat64s(h.bounds, seconds)
	h.counts[i]++
	h.sum += seconds
	h.count++
}

// Count returns the number of observations.
func (h *Histogram) Count() int64 { return h.count }

// endpointStats aggregates one endpoint's serving counters.
type endpointStats struct {
	requests int64
	errors   map[int]int64 // by HTTP status code, 4xx/5xx only
	latency  *Histogram
}

// Registry aggregates serving metrics for one process. All methods are safe
// for concurrent use. Create instances with NewRegistry.
type Registry struct {
	mu        sync.Mutex
	endpoints map[string]*endpointStats
	buckets   []float64

	panics   int64
	shed     int64
	inFlight int64

	reloadOK       int64
	reloadFail     int64
	snapshotGen    int64
	lastReloadUnix int64

	shardCount    int64
	shardPartials int64
	shardSearch   map[int]*Histogram // per-shard fan-out latency

	searchStages map[string]*Histogram // per-pipeline-stage search time
	slEntries    *Histogram            // |S_L| distribution across searches

	ingestOK   map[string]int64 // live-ingestion successes by op (upsert, delete)
	ingestFail map[string]int64 // live-ingestion failures by op
	ingestLat  *Histogram       // end-to-end mutation latency, persist included
	docs       int64            // live documents serving

	walEnabled     bool       // any WAL series observed; gates the WAL exposition block
	walFsyncDur    *Histogram // group-commit fsync latency
	walFsyncBatch  *Histogram // records made durable per fsync
	walSegments    int64      // log segment files on disk
	walBytes       int64      // log bytes on disk
	walReplays     int64      // boot/reload replays performed
	walReplayedRec int64      // total records applied across replays

	ckptOK          int64      // checkpoints that persisted and truncated
	ckptFail        int64      // checkpoints that failed (log retained)
	ckptDur         *Histogram // checkpoint persist+truncate latency
	ckptSegsRemoved int64      // total log segments truncated by checkpoints

	packEnabled bool       // any pack-maintenance series observed; gates the block
	repackTotal int64      // full repacks of the serving node table
	repackDur   *Histogram // repack+swap latency
	packBloat   float64    // serving index pack debt (delta+tombstone fraction)

	replicaEnabled   bool   // any replica series observed; gates the block
	replicaRole      string // "leader" or "follower"
	replicaStreamed  int64  // leader: records shipped to followers
	replicaSnapshots int64  // leader: snapshots served to joiners
	replicaApplied   int64  // follower: locally durable applied LSN
	replicaLeaderLSN int64  // follower: leader durable LSN last observed
	replicaReconn    int64  // follower: stream reconnects
	replicaInstalls  int64  // follower: snapshot installs

	segEnabled  bool       // any block-cache series observed; gates the block
	segHits     int64      // posting-block fetches served from the cache
	segMisses   int64      // posting-block fetches that went to disk
	segEvicts   int64      // blocks evicted to respect the byte capacity
	segResident int64      // decompressed block bytes resident in the cache
	segFetchDur *Histogram // disk block fetch latency (pread+CRC+inflate)

	cacheStats func() (hits, misses int64)
}

// NewRegistry returns an empty registry using DefaultBuckets.
func NewRegistry() *Registry {
	return &Registry{
		endpoints: make(map[string]*endpointStats),
		buckets:   DefaultBuckets,
	}
}

// SetCacheStats wires a cumulative hit/miss source (typically
// server.Handler.CacheStats backed by cache.LRU.Stats) into the
// gks_cache_hits_total / gks_cache_misses_total series.
func (r *Registry) SetCacheStats(fn func() (hits, misses int64)) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.cacheStats = fn
}

func (r *Registry) endpoint(name string) *endpointStats {
	es, ok := r.endpoints[name]
	if !ok {
		es = &endpointStats{errors: make(map[int]int64), latency: newHistogram(r.buckets)}
		r.endpoints[name] = es
	}
	return es
}

// ObserveRequest records one completed request: the request counter, the
// latency histogram, and — for status >= 400 — the per-status error counter.
func (r *Registry) ObserveRequest(endpoint string, status int, d time.Duration) {
	r.mu.Lock()
	defer r.mu.Unlock()
	es := r.endpoint(endpoint)
	es.requests++
	es.latency.observe(d.Seconds())
	if status >= 400 {
		es.errors[status]++
	}
}

// IncPanic counts one recovered handler panic.
func (r *Registry) IncPanic() {
	r.mu.Lock()
	r.panics++
	r.mu.Unlock()
}

// IncShed counts one request rejected by the concurrency limiter.
func (r *Registry) IncShed() {
	r.mu.Lock()
	r.shed++
	r.mu.Unlock()
}

// AddInFlight adjusts the in-flight request gauge by delta (±1).
func (r *Registry) AddInFlight(delta int64) {
	r.mu.Lock()
	r.inFlight += delta
	r.mu.Unlock()
}

// SetSnapshotGeneration records the index snapshot generation currently
// serving; cmd/gksd seeds it at boot and ObserveReload advances it.
func (r *Registry) SetSnapshotGeneration(gen int64) {
	r.mu.Lock()
	r.snapshotGen = gen
	r.mu.Unlock()
}

// ObserveReload counts one snapshot reload attempt. On success the
// generation gauge moves to gen and the last-reload timestamp is set; on
// failure only the failure counter moves — the generation gauge keeps
// reporting the snapshot still serving.
func (r *Registry) ObserveReload(ok bool, gen int64) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if ok {
		r.reloadOK++
		r.snapshotGen = gen
		r.lastReloadUnix = time.Now().Unix()
	} else {
		r.reloadFail++
	}
}

// SetShardCount records the number of index shards serving (1 for a
// single-index system); cmd/gksd sets it at boot and after every reload.
func (r *Registry) SetShardCount(n int) {
	r.mu.Lock()
	r.shardCount = int64(n)
	r.mu.Unlock()
}

// ObserveShardSearch records one shard's portion of a scatter-gather
// search fan-out. It satisfies shard.Metrics.
func (r *Registry) ObserveShardSearch(shard int, d time.Duration) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.shardSearch == nil {
		r.shardSearch = make(map[int]*Histogram)
	}
	h, ok := r.shardSearch[shard]
	if !ok {
		h = newHistogram(r.buckets)
		r.shardSearch[shard] = h
	}
	h.observe(d.Seconds())
}

// IncShardPartial counts one search answered with partial results because
// at least one shard failed. It satisfies shard.Metrics.
func (r *Registry) IncShardPartial() {
	r.mu.Lock()
	r.shardPartials++
	r.mu.Unlock()
}

// ObserveSearchStage records the wall-clock seconds one search spent in a
// pipeline stage (merge, windows, lift, filter, rank). It satisfies the
// server's SearchObserver.
func (r *Registry) ObserveSearchStage(stage string, seconds float64) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.searchStages == nil {
		r.searchStages = make(map[string]*Histogram)
	}
	h, ok := r.searchStages[stage]
	if !ok {
		h = newHistogram(StageBuckets)
		r.searchStages[stage] = h
	}
	h.observe(seconds)
}

// ObserveSLSize records the merged-list length |S_L| of one search, so
// operators can correlate latency with merge volume. It satisfies the
// server's SearchObserver.
func (r *Registry) ObserveSLSize(entries int) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.slEntries == nil {
		r.slEntries = newHistogram(SLEntryBuckets)
	}
	r.slEntries.observe(float64(entries))
}

// ObserveIngest records one live document mutation (/admin/docs or a
// programmatic upsert/delete): the op/result counter and — successes and
// failures alike — the end-to-end latency, which includes the crash-safe
// persist that precedes the serving swap.
func (r *Registry) ObserveIngest(op string, ok bool, d time.Duration) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if ok {
		if r.ingestOK == nil {
			r.ingestOK = make(map[string]int64)
		}
		r.ingestOK[op]++
	} else {
		if r.ingestFail == nil {
			r.ingestFail = make(map[string]int64)
		}
		r.ingestFail[op]++
	}
	if r.ingestLat == nil {
		r.ingestLat = newHistogram(r.buckets)
	}
	r.ingestLat.observe(d.Seconds())
}

// SetDocs records the number of live documents currently serving; cmd/gksd
// seeds it at boot and every successful ingest or reload moves it.
func (r *Registry) SetDocs(n int) {
	r.mu.Lock()
	r.docs = int64(n)
	r.mu.Unlock()
}

// ObserveWALFsync records one group-commit flush: the fsync latency and
// how many log records it made durable at once. It satisfies wal.Metrics.
func (r *Registry) ObserveWALFsync(records int, d time.Duration) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.walEnabled = true
	if r.walFsyncDur == nil {
		r.walFsyncDur = newHistogram(r.buckets)
		r.walFsyncBatch = newHistogram(WALBatchBuckets)
	}
	r.walFsyncDur.observe(d.Seconds())
	r.walFsyncBatch.observe(float64(records))
}

// SetWALState records the log's on-disk footprint (segment files and total
// bytes); the WAL pushes it after every rotation, truncation and flush. It
// satisfies wal.Metrics.
func (r *Registry) SetWALState(segments int, bytes int64) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.walEnabled = true
	r.walSegments = int64(segments)
	r.walBytes = bytes
}

// ObserveWALReplay records one boot or reload recovery pass and the number
// of log records it folded into the snapshot.
func (r *Registry) ObserveWALReplay(records int) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.walEnabled = true
	r.walReplays++
	r.walReplayedRec += int64(records)
}

// ObserveCheckpoint records one background checkpoint: result, how many
// superseded log segments it truncated, and the persist+truncate latency.
func (r *Registry) ObserveCheckpoint(ok bool, removedSegments int, d time.Duration) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.walEnabled = true
	if ok {
		r.ckptOK++
		r.ckptSegsRemoved += int64(removedSegments)
	} else {
		r.ckptFail++
	}
	if r.ckptDur == nil {
		r.ckptDur = newHistogram(r.buckets)
	}
	r.ckptDur.observe(d.Seconds())
}

// ObserveRepack records one full repack of the serving node table — the
// amortization step that folds accumulated delta appends and tombstones
// back into a canonically packed index — and its latency (repack + swap).
func (r *Registry) ObserveRepack(d time.Duration) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.packEnabled = true
	r.repackTotal++
	if r.repackDur == nil {
		r.repackDur = newHistogram(r.buckets)
	}
	r.repackDur.observe(d.Seconds())
}

// SetPackBloat publishes the serving index's pack debt: the fraction of
// the node table that is delta-appended past the canonical pack or
// tombstoned garbage. The checkpointer refreshes it on every checkpoint;
// it trends toward zero right after a repack.
func (r *Registry) SetPackBloat(ratio float64) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.packEnabled = true
	r.packBloat = ratio
}

// RepackStats reports the repack counter and the last-published pack
// debt, for tests and status endpoints.
func (r *Registry) RepackStats() (total int64, bloat float64) {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.repackTotal, r.packBloat
}

// SetReplicaRole marks this process's replication role ("leader" or
// "follower") and turns the replica exposition block on.
func (r *Registry) SetReplicaRole(role string) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.replicaEnabled = true
	r.replicaRole = role
}

// AddReplicaStreamed counts records shipped to followers over the
// replication stream. It satisfies replica.LeaderMetrics.
func (r *Registry) AddReplicaStreamed(records int) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.replicaEnabled = true
	r.replicaStreamed += int64(records)
}

// IncReplicaSnapshotServed counts snapshots served to joining
// followers. It satisfies replica.LeaderMetrics.
func (r *Registry) IncReplicaSnapshotServed() {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.replicaEnabled = true
	r.replicaSnapshots++
}

// SetReplicaLSNs records a follower's replication positions: the
// locally durable applied LSN and the leader's durable watermark as
// last observed. It satisfies replica.FollowerMetrics.
func (r *Registry) SetReplicaLSNs(applied, leaderDurable uint64) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.replicaEnabled = true
	if v := int64(applied); v > r.replicaApplied {
		r.replicaApplied = v
	}
	if v := int64(leaderDurable); v > r.replicaLeaderLSN {
		r.replicaLeaderLSN = v
	}
}

// IncReplicaReconnect counts follower stream reconnects. It satisfies
// replica.FollowerMetrics.
func (r *Registry) IncReplicaReconnect() {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.replicaEnabled = true
	r.replicaReconn++
}

// IncReplicaSnapshotInstall counts follower snapshot installs. It
// satisfies replica.FollowerMetrics.
func (r *Registry) IncReplicaSnapshotInstall() {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.replicaEnabled = true
	r.replicaInstalls++
}

// BlockCacheHit counts a posting-block fetch served from the block cache.
// It satisfies segment.Metrics.
func (r *Registry) BlockCacheHit() {
	r.mu.Lock()
	r.segEnabled = true
	r.segHits++
	r.mu.Unlock()
}

// BlockCacheMiss counts a posting-block fetch that had to read disk. It
// satisfies segment.Metrics.
func (r *Registry) BlockCacheMiss() {
	r.mu.Lock()
	r.segEnabled = true
	r.segMisses++
	r.mu.Unlock()
}

// BlockCacheEvict counts a block evicted to respect the cache's byte
// capacity. It satisfies segment.Metrics.
func (r *Registry) BlockCacheEvict() {
	r.mu.Lock()
	r.segEnabled = true
	r.segEvicts++
	r.mu.Unlock()
}

// SetBlockCacheBytes records the decompressed block bytes resident in the
// cache — the memory actually spent on postings when serving a GKS4
// segment. It satisfies segment.Metrics.
func (r *Registry) SetBlockCacheBytes(n int64) {
	r.mu.Lock()
	r.segEnabled = true
	r.segResident = n
	r.mu.Unlock()
}

// ObserveBlockFetch records one disk block fetch (pread + CRC check +
// decompression) — cache misses only. It satisfies segment.Metrics.
func (r *Registry) ObserveBlockFetch(d time.Duration) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.segEnabled = true
	if r.segFetchDur == nil {
		r.segFetchDur = newHistogram(StageBuckets)
	}
	r.segFetchDur.observe(d.Seconds())
}

// BlockCacheStats returns the block-cache counters and resident-bytes
// gauge for tests.
func (r *Registry) BlockCacheStats() (hits, misses, evicts, residentBytes int64) {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.segHits, r.segMisses, r.segEvicts, r.segResident
}

// ReplicaStats returns the replication counters for tests: leader-side
// (streamed, snapshots) and follower-side (applied/leader LSNs,
// reconnects, installs).
func (r *Registry) ReplicaStats() (streamed, snapshots, applied, leaderLSN, reconnects, installs int64) {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.replicaStreamed, r.replicaSnapshots, r.replicaApplied, r.replicaLeaderLSN, r.replicaReconn, r.replicaInstalls
}

// WALStats returns the WAL gauges and fsync count for tests.
func (r *Registry) WALStats() (fsyncs, segments, bytes int64) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.walFsyncDur != nil {
		fsyncs = r.walFsyncDur.count
	}
	return fsyncs, r.walSegments, r.walBytes
}

// WALReplayStats returns the replay counters for tests.
func (r *Registry) WALReplayStats() (replays, records int64) {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.walReplays, r.walReplayedRec
}

// CheckpointStats returns the checkpoint counters for tests.
func (r *Registry) CheckpointStats() (ok, fail, removedSegments int64) {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.ckptOK, r.ckptFail, r.ckptSegsRemoved
}

// IngestStats returns the aggregate ingest counters and the live-document
// gauge for tests.
func (r *Registry) IngestStats() (ok, fail, docs int64) {
	r.mu.Lock()
	defer r.mu.Unlock()
	for _, n := range r.ingestOK {
		ok += n
	}
	for _, n := range r.ingestFail {
		fail += n
	}
	return ok, fail, r.docs
}

// SearchStageStats returns per-stage observation counts for tests.
func (r *Registry) SearchStageStats() map[string]int64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make(map[string]int64, len(r.searchStages))
	for stage, h := range r.searchStages {
		out[stage] = h.count
	}
	return out
}

// SLSizeCount returns the number of S_L-size observations for tests.
func (r *Registry) SLSizeCount() int64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.slEntries == nil {
		return 0
	}
	return r.slEntries.count
}

// ShardStats returns the shard gauges/counters for tests.
func (r *Registry) ShardStats() (count, partials int64) {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.shardCount, r.shardPartials
}

// ReloadStats returns the reload counters and generation gauge for tests.
func (r *Registry) ReloadStats() (ok, fail, gen int64) {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.reloadOK, r.reloadFail, r.snapshotGen
}

// Snapshot returns aggregate counters for tests and logs.
func (r *Registry) Snapshot() (requests, errors, panics, shed int64) {
	r.mu.Lock()
	defer r.mu.Unlock()
	for _, es := range r.endpoints {
		requests += es.requests
		for _, n := range es.errors {
			errors += n
		}
	}
	return requests, errors, r.panics, r.shed
}

func fmtFloat(v float64) string { return strconv.FormatFloat(v, 'g', -1, 64) }

// WritePrometheus renders every series in Prometheus text exposition format.
// Output is deterministic: endpoints and status codes are sorted.
func (r *Registry) WritePrometheus(w io.Writer) {
	r.mu.Lock()
	defer r.mu.Unlock()

	names := make([]string, 0, len(r.endpoints))
	for name := range r.endpoints {
		names = append(names, name)
	}
	sort.Strings(names)

	fmt.Fprintln(w, "# HELP gks_http_requests_total Total HTTP requests by endpoint.")
	fmt.Fprintln(w, "# TYPE gks_http_requests_total counter")
	for _, name := range names {
		fmt.Fprintf(w, "gks_http_requests_total{endpoint=%q} %d\n", name, r.endpoints[name].requests)
	}

	fmt.Fprintln(w, "# HELP gks_http_errors_total HTTP responses with status >= 400, by endpoint and status code.")
	fmt.Fprintln(w, "# TYPE gks_http_errors_total counter")
	for _, name := range names {
		es := r.endpoints[name]
		codes := make([]int, 0, len(es.errors))
		for code := range es.errors {
			codes = append(codes, code)
		}
		sort.Ints(codes)
		for _, code := range codes {
			fmt.Fprintf(w, "gks_http_errors_total{endpoint=%q,code=\"%d\"} %d\n", name, code, es.errors[code])
		}
	}

	fmt.Fprintln(w, "# HELP gks_http_request_duration_seconds HTTP request latency by endpoint.")
	fmt.Fprintln(w, "# TYPE gks_http_request_duration_seconds histogram")
	for _, name := range names {
		h := r.endpoints[name].latency
		cum := int64(0)
		for i, bound := range h.bounds {
			cum += h.counts[i]
			fmt.Fprintf(w, "gks_http_request_duration_seconds_bucket{endpoint=%q,le=%q} %d\n",
				name, fmtFloat(bound), cum)
		}
		fmt.Fprintf(w, "gks_http_request_duration_seconds_bucket{endpoint=%q,le=\"+Inf\"} %d\n", name, h.count)
		fmt.Fprintf(w, "gks_http_request_duration_seconds_sum{endpoint=%q} %s\n", name, fmtFloat(h.sum))
		fmt.Fprintf(w, "gks_http_request_duration_seconds_count{endpoint=%q} %d\n", name, h.count)
	}

	fmt.Fprintln(w, "# HELP gks_http_panics_total Recovered handler panics.")
	fmt.Fprintln(w, "# TYPE gks_http_panics_total counter")
	fmt.Fprintf(w, "gks_http_panics_total %d\n", r.panics)

	fmt.Fprintln(w, "# HELP gks_http_load_shed_total Requests rejected with 503 by the concurrency limiter.")
	fmt.Fprintln(w, "# TYPE gks_http_load_shed_total counter")
	fmt.Fprintf(w, "gks_http_load_shed_total %d\n", r.shed)

	fmt.Fprintln(w, "# HELP gks_http_in_flight Requests currently being served.")
	fmt.Fprintln(w, "# TYPE gks_http_in_flight gauge")
	fmt.Fprintf(w, "gks_http_in_flight %d\n", r.inFlight)

	fmt.Fprintln(w, "# HELP gks_snapshot_generation Index snapshot generation currently serving (1 = boot snapshot).")
	fmt.Fprintln(w, "# TYPE gks_snapshot_generation gauge")
	fmt.Fprintf(w, "gks_snapshot_generation %d\n", r.snapshotGen)

	fmt.Fprintln(w, "# HELP gks_snapshot_reloads_total Snapshot reload attempts by result.")
	fmt.Fprintln(w, "# TYPE gks_snapshot_reloads_total counter")
	fmt.Fprintf(w, "gks_snapshot_reloads_total{result=\"success\"} %d\n", r.reloadOK)
	fmt.Fprintf(w, "gks_snapshot_reloads_total{result=\"failure\"} %d\n", r.reloadFail)

	fmt.Fprintln(w, "# HELP gks_snapshot_last_reload_timestamp_seconds Unix time of the last successful reload (0 = never reloaded).")
	fmt.Fprintln(w, "# TYPE gks_snapshot_last_reload_timestamp_seconds gauge")
	fmt.Fprintf(w, "gks_snapshot_last_reload_timestamp_seconds %d\n", r.lastReloadUnix)

	fmt.Fprintln(w, "# HELP gks_shard_count Index shards serving (1 = unsharded).")
	fmt.Fprintln(w, "# TYPE gks_shard_count gauge")
	fmt.Fprintf(w, "gks_shard_count %d\n", r.shardCount)

	fmt.Fprintln(w, "# HELP gks_shard_partial_results_total Searches answered with partial results because a shard failed.")
	fmt.Fprintln(w, "# TYPE gks_shard_partial_results_total counter")
	fmt.Fprintf(w, "gks_shard_partial_results_total %d\n", r.shardPartials)

	fmt.Fprintln(w, "# HELP gks_docs Live documents currently serving.")
	fmt.Fprintln(w, "# TYPE gks_docs gauge")
	fmt.Fprintf(w, "gks_docs %d\n", r.docs)

	if len(r.ingestOK) > 0 || len(r.ingestFail) > 0 {
		ops := make(map[string]bool)
		for op := range r.ingestOK {
			ops[op] = true
		}
		for op := range r.ingestFail {
			ops[op] = true
		}
		sorted := make([]string, 0, len(ops))
		for op := range ops {
			sorted = append(sorted, op)
		}
		sort.Strings(sorted)
		fmt.Fprintln(w, "# HELP gks_ingest_total Live document mutations by op and result.")
		fmt.Fprintln(w, "# TYPE gks_ingest_total counter")
		for _, op := range sorted {
			fmt.Fprintf(w, "gks_ingest_total{op=%q,result=\"success\"} %d\n", op, r.ingestOK[op])
			fmt.Fprintf(w, "gks_ingest_total{op=%q,result=\"failure\"} %d\n", op, r.ingestFail[op])
		}
	}

	if r.ingestLat != nil {
		h := r.ingestLat
		fmt.Fprintln(w, "# HELP gks_ingest_duration_seconds Live document mutation latency, crash-safe persist included.")
		fmt.Fprintln(w, "# TYPE gks_ingest_duration_seconds histogram")
		cum := int64(0)
		for i, bound := range h.bounds {
			cum += h.counts[i]
			fmt.Fprintf(w, "gks_ingest_duration_seconds_bucket{le=%q} %d\n", fmtFloat(bound), cum)
		}
		fmt.Fprintf(w, "gks_ingest_duration_seconds_bucket{le=\"+Inf\"} %d\n", h.count)
		fmt.Fprintf(w, "gks_ingest_duration_seconds_sum %s\n", fmtFloat(h.sum))
		fmt.Fprintf(w, "gks_ingest_duration_seconds_count %d\n", h.count)
	}

	if r.walEnabled {
		fmt.Fprintln(w, "# HELP gks_wal_segments Write-ahead-log segment files on disk.")
		fmt.Fprintln(w, "# TYPE gks_wal_segments gauge")
		fmt.Fprintf(w, "gks_wal_segments %d\n", r.walSegments)

		fmt.Fprintln(w, "# HELP gks_wal_size_bytes Write-ahead-log bytes on disk.")
		fmt.Fprintln(w, "# TYPE gks_wal_size_bytes gauge")
		fmt.Fprintf(w, "gks_wal_size_bytes %d\n", r.walBytes)

		fmt.Fprintln(w, "# HELP gks_wal_replays_total Boot/reload recovery passes over the log.")
		fmt.Fprintln(w, "# TYPE gks_wal_replays_total counter")
		fmt.Fprintf(w, "gks_wal_replays_total %d\n", r.walReplays)

		fmt.Fprintln(w, "# HELP gks_wal_replayed_records_total Log records folded into snapshots across all replays.")
		fmt.Fprintln(w, "# TYPE gks_wal_replayed_records_total counter")
		fmt.Fprintf(w, "gks_wal_replayed_records_total %d\n", r.walReplayedRec)

		fmt.Fprintln(w, "# HELP gks_wal_checkpoints_total Background checkpoints by result.")
		fmt.Fprintln(w, "# TYPE gks_wal_checkpoints_total counter")
		fmt.Fprintf(w, "gks_wal_checkpoints_total{result=\"success\"} %d\n", r.ckptOK)
		fmt.Fprintf(w, "gks_wal_checkpoints_total{result=\"failure\"} %d\n", r.ckptFail)

		fmt.Fprintln(w, "# HELP gks_wal_checkpoint_segments_removed_total Log segments truncated by checkpoints.")
		fmt.Fprintln(w, "# TYPE gks_wal_checkpoint_segments_removed_total counter")
		fmt.Fprintf(w, "gks_wal_checkpoint_segments_removed_total %d\n", r.ckptSegsRemoved)
	}

	if r.packEnabled {
		fmt.Fprintln(w, "# HELP gks_repack_total Full repacks of the serving node table.")
		fmt.Fprintln(w, "# TYPE gks_repack_total counter")
		fmt.Fprintf(w, "gks_repack_total %d\n", r.repackTotal)

		fmt.Fprintln(w, "# HELP gks_pack_bloat_ratio Fraction of the node table that is delta-appended or tombstoned.")
		fmt.Fprintln(w, "# TYPE gks_pack_bloat_ratio gauge")
		fmt.Fprintf(w, "gks_pack_bloat_ratio %s\n", fmtFloat(r.packBloat))
	}

	if r.replicaEnabled {
		if r.replicaRole != "" {
			fmt.Fprintln(w, "# HELP gks_replica_role Replication role of this process (1 = active).")
			fmt.Fprintln(w, "# TYPE gks_replica_role gauge")
			fmt.Fprintf(w, "gks_replica_role{role=%q} 1\n", r.replicaRole)
		}

		fmt.Fprintln(w, "# HELP gks_replica_streamed_records_total WAL records shipped to followers.")
		fmt.Fprintln(w, "# TYPE gks_replica_streamed_records_total counter")
		fmt.Fprintf(w, "gks_replica_streamed_records_total %d\n", r.replicaStreamed)

		fmt.Fprintln(w, "# HELP gks_replica_snapshots_served_total Snapshots served to joining followers.")
		fmt.Fprintln(w, "# TYPE gks_replica_snapshots_served_total counter")
		fmt.Fprintf(w, "gks_replica_snapshots_served_total %d\n", r.replicaSnapshots)

		fmt.Fprintln(w, "# HELP gks_replica_applied_lsn Locally durable applied LSN (follower).")
		fmt.Fprintln(w, "# TYPE gks_replica_applied_lsn gauge")
		fmt.Fprintf(w, "gks_replica_applied_lsn %d\n", r.replicaApplied)

		fmt.Fprintln(w, "# HELP gks_replica_leader_durable_lsn Leader durable LSN as last observed (follower).")
		fmt.Fprintln(w, "# TYPE gks_replica_leader_durable_lsn gauge")
		fmt.Fprintf(w, "gks_replica_leader_durable_lsn %d\n", r.replicaLeaderLSN)

		fmt.Fprintln(w, "# HELP gks_replica_lag_records Replication lag in records (leader durable - applied).")
		fmt.Fprintln(w, "# TYPE gks_replica_lag_records gauge")
		lag := r.replicaLeaderLSN - r.replicaApplied
		if lag < 0 {
			lag = 0
		}
		fmt.Fprintf(w, "gks_replica_lag_records %d\n", lag)

		fmt.Fprintln(w, "# HELP gks_replica_reconnects_total Follower stream reconnects.")
		fmt.Fprintln(w, "# TYPE gks_replica_reconnects_total counter")
		fmt.Fprintf(w, "gks_replica_reconnects_total %d\n", r.replicaReconn)

		fmt.Fprintln(w, "# HELP gks_replica_snapshot_installs_total Follower snapshot installs.")
		fmt.Fprintln(w, "# TYPE gks_replica_snapshot_installs_total counter")
		fmt.Fprintf(w, "gks_replica_snapshot_installs_total %d\n", r.replicaInstalls)
	}

	if r.segEnabled {
		fmt.Fprintln(w, "# HELP gks_segment_block_cache_hits_total Posting-block fetches served from the block cache.")
		fmt.Fprintln(w, "# TYPE gks_segment_block_cache_hits_total counter")
		fmt.Fprintf(w, "gks_segment_block_cache_hits_total %d\n", r.segHits)

		fmt.Fprintln(w, "# HELP gks_segment_block_cache_misses_total Posting-block fetches read from disk.")
		fmt.Fprintln(w, "# TYPE gks_segment_block_cache_misses_total counter")
		fmt.Fprintf(w, "gks_segment_block_cache_misses_total %d\n", r.segMisses)

		fmt.Fprintln(w, "# HELP gks_segment_block_cache_evictions_total Blocks evicted to respect the cache byte capacity.")
		fmt.Fprintln(w, "# TYPE gks_segment_block_cache_evictions_total counter")
		fmt.Fprintf(w, "gks_segment_block_cache_evictions_total %d\n", r.segEvicts)

		fmt.Fprintln(w, "# HELP gks_segment_block_cache_resident_bytes Decompressed posting-block bytes resident in the cache.")
		fmt.Fprintln(w, "# TYPE gks_segment_block_cache_resident_bytes gauge")
		fmt.Fprintf(w, "gks_segment_block_cache_resident_bytes %d\n", r.segResident)

		if r.segFetchDur != nil {
			h := r.segFetchDur
			fmt.Fprintln(w, "# HELP gks_segment_block_fetch_duration_seconds Disk block fetch latency (pread + CRC + decompress).")
			fmt.Fprintln(w, "# TYPE gks_segment_block_fetch_duration_seconds histogram")
			cum := int64(0)
			for i, bound := range h.bounds {
				cum += h.counts[i]
				fmt.Fprintf(w, "gks_segment_block_fetch_duration_seconds_bucket{le=%q} %d\n", fmtFloat(bound), cum)
			}
			fmt.Fprintf(w, "gks_segment_block_fetch_duration_seconds_bucket{le=\"+Inf\"} %d\n", h.count)
			fmt.Fprintf(w, "gks_segment_block_fetch_duration_seconds_sum %s\n", fmtFloat(h.sum))
			fmt.Fprintf(w, "gks_segment_block_fetch_duration_seconds_count %d\n", h.count)
		}
	}

	if r.walFsyncDur != nil {
		h := r.walFsyncDur
		fmt.Fprintln(w, "# HELP gks_wal_fsync_duration_seconds Group-commit fsync latency.")
		fmt.Fprintln(w, "# TYPE gks_wal_fsync_duration_seconds histogram")
		cum := int64(0)
		for i, bound := range h.bounds {
			cum += h.counts[i]
			fmt.Fprintf(w, "gks_wal_fsync_duration_seconds_bucket{le=%q} %d\n", fmtFloat(bound), cum)
		}
		fmt.Fprintf(w, "gks_wal_fsync_duration_seconds_bucket{le=\"+Inf\"} %d\n", h.count)
		fmt.Fprintf(w, "gks_wal_fsync_duration_seconds_sum %s\n", fmtFloat(h.sum))
		fmt.Fprintf(w, "gks_wal_fsync_duration_seconds_count %d\n", h.count)

		h = r.walFsyncBatch
		fmt.Fprintln(w, "# HELP gks_wal_fsync_batch_records Log records made durable per fsync (group-commit batch size).")
		fmt.Fprintln(w, "# TYPE gks_wal_fsync_batch_records histogram")
		cum = 0
		for i, bound := range h.bounds {
			cum += h.counts[i]
			fmt.Fprintf(w, "gks_wal_fsync_batch_records_bucket{le=%q} %d\n", fmtFloat(bound), cum)
		}
		fmt.Fprintf(w, "gks_wal_fsync_batch_records_bucket{le=\"+Inf\"} %d\n", h.count)
		fmt.Fprintf(w, "gks_wal_fsync_batch_records_sum %s\n", fmtFloat(h.sum))
		fmt.Fprintf(w, "gks_wal_fsync_batch_records_count %d\n", h.count)
	}

	if r.ckptDur != nil {
		h := r.ckptDur
		fmt.Fprintln(w, "# HELP gks_wal_checkpoint_duration_seconds Checkpoint persist+truncate latency.")
		fmt.Fprintln(w, "# TYPE gks_wal_checkpoint_duration_seconds histogram")
		cum := int64(0)
		for i, bound := range h.bounds {
			cum += h.counts[i]
			fmt.Fprintf(w, "gks_wal_checkpoint_duration_seconds_bucket{le=%q} %d\n", fmtFloat(bound), cum)
		}
		fmt.Fprintf(w, "gks_wal_checkpoint_duration_seconds_bucket{le=\"+Inf\"} %d\n", h.count)
		fmt.Fprintf(w, "gks_wal_checkpoint_duration_seconds_sum %s\n", fmtFloat(h.sum))
		fmt.Fprintf(w, "gks_wal_checkpoint_duration_seconds_count %d\n", h.count)
	}

	if r.repackDur != nil {
		h := r.repackDur
		fmt.Fprintln(w, "# HELP gks_repack_duration_seconds Full node-table repack + swap latency.")
		fmt.Fprintln(w, "# TYPE gks_repack_duration_seconds histogram")
		cum := int64(0)
		for i, bound := range h.bounds {
			cum += h.counts[i]
			fmt.Fprintf(w, "gks_repack_duration_seconds_bucket{le=%q} %d\n", fmtFloat(bound), cum)
		}
		fmt.Fprintf(w, "gks_repack_duration_seconds_bucket{le=\"+Inf\"} %d\n", h.count)
		fmt.Fprintf(w, "gks_repack_duration_seconds_sum %s\n", fmtFloat(h.sum))
		fmt.Fprintf(w, "gks_repack_duration_seconds_count %d\n", h.count)
	}

	if len(r.shardSearch) > 0 {
		shardIDs := make([]int, 0, len(r.shardSearch))
		for id := range r.shardSearch {
			shardIDs = append(shardIDs, id)
		}
		sort.Ints(shardIDs)
		fmt.Fprintln(w, "# HELP gks_shard_search_duration_seconds Per-shard search latency within scatter-gather fan-outs.")
		fmt.Fprintln(w, "# TYPE gks_shard_search_duration_seconds histogram")
		for _, id := range shardIDs {
			h := r.shardSearch[id]
			cum := int64(0)
			for i, bound := range h.bounds {
				cum += h.counts[i]
				fmt.Fprintf(w, "gks_shard_search_duration_seconds_bucket{shard=\"%d\",le=%q} %d\n",
					id, fmtFloat(bound), cum)
			}
			fmt.Fprintf(w, "gks_shard_search_duration_seconds_bucket{shard=\"%d\",le=\"+Inf\"} %d\n", id, h.count)
			fmt.Fprintf(w, "gks_shard_search_duration_seconds_sum{shard=\"%d\"} %s\n", id, fmtFloat(h.sum))
			fmt.Fprintf(w, "gks_shard_search_duration_seconds_count{shard=\"%d\"} %d\n", id, h.count)
		}
	}

	if len(r.searchStages) > 0 {
		stages := make([]string, 0, len(r.searchStages))
		for stage := range r.searchStages {
			stages = append(stages, stage)
		}
		sort.Strings(stages)
		fmt.Fprintln(w, "# HELP gks_search_stage_seconds Wall-clock time per search pipeline stage (merge, windows, lift, filter, rank).")
		fmt.Fprintln(w, "# TYPE gks_search_stage_seconds histogram")
		for _, stage := range stages {
			h := r.searchStages[stage]
			cum := int64(0)
			for i, bound := range h.bounds {
				cum += h.counts[i]
				fmt.Fprintf(w, "gks_search_stage_seconds_bucket{stage=%q,le=%q} %d\n",
					stage, fmtFloat(bound), cum)
			}
			fmt.Fprintf(w, "gks_search_stage_seconds_bucket{stage=%q,le=\"+Inf\"} %d\n", stage, h.count)
			fmt.Fprintf(w, "gks_search_stage_seconds_sum{stage=%q} %s\n", stage, fmtFloat(h.sum))
			fmt.Fprintf(w, "gks_search_stage_seconds_count{stage=%q} %d\n", stage, h.count)
		}
	}

	if r.slEntries != nil {
		h := r.slEntries
		fmt.Fprintln(w, "# HELP gks_search_sl_entries Merged keyword-instance list size |S_L| per search.")
		fmt.Fprintln(w, "# TYPE gks_search_sl_entries histogram")
		cum := int64(0)
		for i, bound := range h.bounds {
			cum += h.counts[i]
			fmt.Fprintf(w, "gks_search_sl_entries_bucket{le=%q} %d\n", fmtFloat(bound), cum)
		}
		fmt.Fprintf(w, "gks_search_sl_entries_bucket{le=\"+Inf\"} %d\n", h.count)
		fmt.Fprintf(w, "gks_search_sl_entries_sum %s\n", fmtFloat(h.sum))
		fmt.Fprintf(w, "gks_search_sl_entries_count %d\n", h.count)
	}

	if r.cacheStats != nil {
		hits, misses := r.cacheStats()
		fmt.Fprintln(w, "# HELP gks_cache_hits_total Response-cache hits.")
		fmt.Fprintln(w, "# TYPE gks_cache_hits_total counter")
		fmt.Fprintf(w, "gks_cache_hits_total %d\n", hits)
		fmt.Fprintln(w, "# HELP gks_cache_misses_total Response-cache misses.")
		fmt.Fprintln(w, "# TYPE gks_cache_misses_total counter")
		fmt.Fprintf(w, "gks_cache_misses_total %d\n", misses)
	}
}

// Handler serves the registry at GET /metrics.
func (r *Registry) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		r.WritePrometheus(w)
	})
}
