package schema

import (
	"testing"

	"repro/internal/core"
	"repro/internal/dewey"
	"repro/internal/index"
	"repro/internal/xmltree"
)

// singleStudentDoc is Figure 2(a)'s structure with a course that has only
// one student — the §2.2 example: "if a <Course> node had just one student
// in its sub-tree, that instance would have been stored as 'Connecting
// node'". Schema-level categorization should classify it as an entity
// anyway, because students repeat under other courses.
func singleStudentDoc() *xmltree.Document {
	return xmltree.NewDocument("uni.xml", 0, xmltree.E("Dept",
		xmltree.ET("Dept_Name", "CS"),
		xmltree.E("Area",
			xmltree.ET("Name", "Databases"),
			xmltree.E("Courses",
				xmltree.E("Course",
					xmltree.ET("Name", "Data Mining"),
					xmltree.E("Students",
						xmltree.ET("Student", "Karen"),
						xmltree.ET("Student", "Mike"),
					),
				),
				xmltree.E("Course",
					xmltree.ET("Name", "Seminar"),
					xmltree.E("Students",
						xmltree.ET("Student", "Julie"),
					),
				),
			),
		),
	))
}

func build(t *testing.T, doc *xmltree.Document) *index.Index {
	t.Helper()
	ix, err := index.BuildDocument(doc, index.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	return ix
}

func TestInferRepeats(t *testing.T) {
	ix := build(t, singleStudentDoc())
	s := Infer(ix)
	if !s.Repeats("Students", "Student") {
		t.Error("Student must be schema-repeating under Students")
	}
	if !s.Repeats("Courses", "Course") {
		t.Error("Course must be schema-repeating under Courses")
	}
	if s.Repeats("Course", "Name") {
		t.Error("Name must not repeat under Course")
	}
	if s.Repeats("NoSuch", "Label") {
		t.Error("unknown labels must not repeat")
	}
}

func TestEdges(t *testing.T) {
	ix := build(t, singleStudentDoc())
	edges := Infer(ix).Edges()
	if len(edges) == 0 {
		t.Fatal("no edges inferred")
	}
	seen := map[string]bool{}
	for i, e := range edges {
		seen[e.Parent+"/"+e.Child] = true
		if i > 0 {
			prev := edges[i-1]
			if prev.Parent > e.Parent || (prev.Parent == e.Parent && prev.Child > e.Child) {
				t.Error("edges not sorted")
			}
		}
	}
	if !seen["Dept/Area"] || !seen["Students/Student"] {
		t.Errorf("edges missing expected pairs: %v", edges)
	}
}

func TestSchemaCategorizationUpgradesSingletonInstances(t *testing.T) {
	ix := build(t, singleStudentDoc())

	// Instance level: the Seminar course (one student) is NOT an entity.
	seminarID := "0.0.1.1.1"
	ord := mustOrd(t, ix, seminarID)
	if ix.Nodes[ord].Cat&index.Entity != 0 {
		t.Fatalf("instance-level Seminar course should not be an entity, got %v", ix.Nodes[ord].Cat)
	}

	s := Infer(ix)
	cats := s.Categorize(ix)
	if cats[ord]&index.Entity == 0 {
		t.Errorf("schema-level Seminar course must be an entity, got %v", cats[ord])
	}
	// Its single Student must be Repeating at schema level (not Attribute).
	stOrd := mustOrd(t, ix, "0.0.1.1.1.1.0")
	if cats[stOrd]&index.Repeating == 0 {
		t.Errorf("schema-level singleton Student must be repeating, got %v", cats[stOrd])
	}
	if ix.Nodes[stOrd].Cat != index.Attribute {
		t.Errorf("instance-level singleton Student should be attribute, got %v", ix.Nodes[stOrd].Cat)
	}
}

func TestSchemaCategorizationAgreesOnRegularInstances(t *testing.T) {
	// On Figure 2(a) both categorizations agree, except that schema-level
	// classification may add the Repeating flag to singleton instances of
	// schema-repeating labels (the Theory area's single Course).
	ix := build(t, xmltree.BuildFigure2a())
	cats := Infer(ix).Categorize(ix)
	for i := range ix.Nodes {
		inst := ix.Nodes[i].Cat
		if cats[i] != inst && cats[i] != inst|index.Repeating {
			t.Errorf("node %s: schema %v vs instance %v",
				ix.Nodes[i].ID, cats[i], inst)
		}
	}
	// The singleton Course indeed gains the Repeating flag.
	ord := mustOrd(t, ix, "0.0.2.1.0")
	if cats[ord] != index.Entity|index.Repeating {
		t.Errorf("singleton Course schema category = %v, want RN|EN", cats[ord])
	}
}

func TestApply(t *testing.T) {
	ix := build(t, singleStudentDoc())
	before := ix.Stats.EntityNodes
	changed := Apply(ix, Infer(ix).Categorize(ix))
	if changed == 0 {
		t.Fatal("expected category changes")
	}
	if ix.Stats.EntityNodes <= before {
		t.Errorf("entity count should grow: %d -> %d", before, ix.Stats.EntityNodes)
	}
	// Applying again is a no-op.
	if again := Apply(ix, Infer(ix).Categorize(ix)); again != 0 {
		t.Errorf("second apply changed %d nodes", again)
	}
}

func TestSearchAfterSchemaApplyReturnsCourseForSingleton(t *testing.T) {
	ix := build(t, singleStudentDoc())
	eng := core.NewEngine(ix)
	// Instance level: julie's course is not an entity; the response for
	// {julie} is the lifted Area entity (the nearest entity ancestor).
	resp, err := eng.Search(core.NewQuery("julie"), 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(resp.Results) != 1 || resp.Results[0].Label != "Area" {
		t.Fatalf("instance-level response = %+v, want Area", resp.Results)
	}

	Apply(ix, Infer(ix).Categorize(ix))
	eng2 := core.NewEngine(ix)
	resp2, err := eng2.Search(core.NewQuery("julie"), 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(resp2.Results) != 1 || resp2.Results[0].Label != "Course" {
		t.Fatalf("schema-level response = %+v, want the Seminar Course", resp2.Results)
	}
}

func mustOrd(t *testing.T, ix *index.Index, id string) int32 {
	t.Helper()
	ord, ok := ix.OrdinalOf(mustParse(t, id))
	if !ok {
		t.Fatalf("node %s not found", id)
	}
	return ord
}

func mustParse(t *testing.T, s string) dewey.ID {
	t.Helper()
	return dewey.MustParse(s)
}
