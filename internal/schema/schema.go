// Package schema infers a structural schema summary from indexed XML
// instances and re-categorizes nodes against it — the extension the paper
// names as future work in §2.2: "GKS can be easily extended to take into
// account the XML schema to categorize the nodes."
//
// Instance-level categorization (the paper's default, implemented by
// internal/index) classifies each node by its own subtree: an <article>
// with a single <author> is a connecting node because its author does not
// repeat *in that instance* (§7.2 observes exactly this on DBLP and SIGMOD
// Record). Schema-level categorization instead asks whether the schema
// allows the child to repeat — if <author> repeats under *any* article,
// every article classifies as an entity node. The Table 5 ablation
// (experiments.SchemaAblation) quantifies the difference.
package schema

import (
	"sort"

	"repro/internal/index"
)

// edge identifies a parent-label → child-label relationship.
type edge struct {
	parent int32
	child  int32
}

// Summary is an inferred structural schema: which parent→child element
// edges are repeating (maxOccurs > 1 observed anywhere in the data).
// Labels are interned per summary, so a summary may span several
// independently built indexes with disjoint label tables.
type Summary struct {
	labels   []string
	labelIDs map[string]int32
	repeats  map[edge]bool
	// edgeSeen tracks all observed edges, repeating or not.
	edgeSeen map[edge]bool
}

// Infer scans a built index and returns its schema summary. It needs only
// the node table (labels + parent pointers), not the original documents.
func Infer(ix *index.Index) *Summary { return InferIndexes(ix) }

// InferIndexes infers one schema summary across several indexes — e.g. the
// shards of a partitioned repository. Edges are unioned by label string: a
// child repeating under any parent instance in any index marks the edge
// repeating, which is exactly the summary Infer would compute on a single
// index holding all the documents.
func InferIndexes(ixs ...*index.Index) *Summary {
	s := &Summary{
		labelIDs: make(map[string]int32),
		repeats:  make(map[edge]bool),
		edgeSeen: make(map[edge]bool),
	}
	for _, ix := range ixs {
		local := make([]int32, len(ix.Labels))
		for i, l := range ix.Labels {
			local[i] = s.intern(l)
		}
		// Count same-label element children per parent. Children of a
		// parent are contiguous in no particular grouping, so count with a
		// map keyed by (parent ordinal, label). Ordinals collide across
		// indexes, so the counter map is per index.
		type pk struct {
			parent int32
			label  int32
		}
		counts := make(map[pk]int)
		// Only live nodes contribute: an edge exhibited solely by a
		// tombstoned document must not shape the schema the survivors are
		// categorized against.
		for _, sp := range ix.LiveSpans() {
			for ord := sp[0]; ord < sp[1]; ord++ {
				parent := ix.ParentOf(ord)
				if parent < 0 {
					continue
				}
				label := ix.LabelIDOf(ord)
				e := edge{local[ix.LabelIDOf(parent)], local[label]}
				s.edgeSeen[e] = true
				k := pk{parent, label}
				counts[k]++
				if counts[k] == 2 {
					s.repeats[e] = true
				}
			}
		}
	}
	return s
}

func (s *Summary) intern(label string) int32 {
	if id, ok := s.labelIDs[label]; ok {
		return id
	}
	id := int32(len(s.labels))
	s.labels = append(s.labels, label)
	s.labelIDs[label] = id
	return id
}

// Repeats reports whether child elements with label childLabel may repeat
// under parents labeled parentLabel according to the inferred schema.
func (s *Summary) Repeats(parentLabel, childLabel string) bool {
	pi, ok := s.labelID(parentLabel)
	if !ok {
		return false
	}
	ci, ok := s.labelID(childLabel)
	if !ok {
		return false
	}
	return s.repeats[edge{pi, ci}]
}

// Edges returns the observed parent→child label pairs in deterministic
// order, with their repetition flag — a printable schema summary.
func (s *Summary) Edges() []Edge {
	out := make([]Edge, 0, len(s.edgeSeen))
	for e := range s.edgeSeen {
		out = append(out, Edge{
			Parent:  s.labels[e.parent],
			Child:   s.labels[e.child],
			Repeats: s.repeats[e],
		})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Parent != out[j].Parent {
			return out[i].Parent < out[j].Parent
		}
		return out[i].Child < out[j].Child
	})
	return out
}

// Edge is one parent→child relationship of the inferred schema.
type Edge struct {
	Parent  string
	Child   string
	Repeats bool
}

func (s *Summary) labelID(label string) (int32, bool) {
	id, ok := s.labelIDs[label]
	return id, ok
}

// Categorize computes schema-level categories for every node of the index
// (Defs 2.1.1–2.1.4 with "repeating" decided by the schema instead of the
// instance). The index is not modified; use Apply to install the result.
func (s *Summary) Categorize(ix *index.Index) []index.Category {
	n := ix.NodeCount()
	cats := make([]index.Category, n)
	// Per-node visibility, computed in reverse ordinal order (children
	// before parents, since children have larger pre-order ordinals).
	qualAttr := make([]bool, n)
	repVis := make([]bool, n)
	// attr/rep/both visibility counters per parent.
	attrC := make([]int, n)
	repC := make([]int, n)
	bothC := make([]int, n)

	// Translate the index's label IDs into the summary's interning — the
	// summary may have been inferred from other indexes (or several).
	local := make([]int32, len(ix.Labels))
	for i, l := range ix.Labels {
		if id, ok := s.labelIDs[l]; ok {
			local[i] = id
		} else {
			local[i] = -1 // label unknown to the schema: never repeating
		}
	}
	isRep := func(i int32) bool {
		parent := ix.ParentOf(i)
		if parent < 0 {
			return false
		}
		pl, cl := local[ix.LabelIDOf(parent)], local[ix.LabelIDOf(i)]
		if pl < 0 || cl < 0 {
			return false
		}
		return s.repeats[edge{pl, cl}]
	}

	for i := n - 1; i >= 0; i-- {
		ord := int32(i)
		directValue := ix.SubtreeSizeOf(ord) == 1 && ix.HasValueAt(ord) && ix.ChildCountOf(ord) == 1
		rep := isRep(ord)

		var cat index.Category
		switch {
		case directValue && rep:
			cat = index.Repeating
		case directValue:
			cat = index.Attribute
		default:
			if rep {
				cat |= index.Repeating
			}
			if entityTest(attrC[i], repC[i], bothC[i]) {
				cat |= index.Entity
			}
			if cat == 0 {
				cat = index.Connecting
			}
		}
		cats[i] = cat

		// Visibility toward the parent.
		var qa, rv bool
		switch {
		case cat&index.Repeating != 0:
			qa, rv = false, true
		case cat == index.Attribute:
			qa, rv = true, false
		default:
			qa = attrC[i]+bothC[i] > 0
			rv = repC[i]+bothC[i] > 0
		}
		qualAttr[i], repVis[i] = qa, rv
		if p := ix.ParentOf(ord); p >= 0 {
			switch {
			case qa && rv:
				bothC[p]++
			case qa:
				attrC[p]++
			case rv:
				repC[p]++
			}
		}
	}
	return cats
}

// entityTest mirrors internal/index: the node is the lowest common
// ancestor of a qualifying attribute and a repeating group exactly when
// two distinct children expose them.
func entityTest(attr, rep, both int) bool {
	switch {
	case both >= 2:
		return true
	case both == 1:
		return attr+rep >= 1
	default:
		return attr >= 1 && rep >= 1
	}
}

// Apply installs schema-level categories into the index and refreshes its
// category statistics. It returns the number of nodes whose category
// changed. The search engine picks the new entity structure up
// immediately (LCE lifting reads ix.Nodes[i].Cat).
func Apply(ix *index.Index, cats []index.Category) int {
	// A packed node table is immutable; flatten it, write the categories,
	// then repack. RepackInPlace preserves ordinals, so the live-span
	// restriction below and the caller's cats slice stay aligned.
	repack := ix.IsPacked()
	if repack {
		ix.UnpackInPlace()
	}
	changed := 0
	// Restrict writes and the changed count to live nodes: tombstoned
	// documents are invisible to search and must not inflate the count,
	// and leaving their categories untouched keeps a tombstoned index's
	// shared node table byte-stable for readers of the predecessor.
	for _, sp := range ix.LiveSpans() {
		for ord := sp[0]; ord < sp[1]; ord++ {
			if ix.Nodes[ord].Cat != cats[ord] {
				ix.Nodes[ord].Cat = cats[ord]
				changed++
			}
		}
	}
	ix.RefreshCategoryStats()
	if repack {
		ix.RepackInPlace()
	}
	return changed
}
