package experiments

import (
	"fmt"
	"io"
	"sort"
	"text/tabwriter"
	"time"

	"repro/internal/core"
	"repro/internal/datagen"
	"repro/internal/index"
	"repro/internal/xmltree"
)

// RTPoint is one response-time measurement: the paper plots RT against the
// merged list size |S_L| (Figure 8) and against the number of query
// keywords n (Figure 9).
type RTPoint struct {
	Dataset string
	Query   string
	N       int
	SLSize  int
	Time    time.Duration
	Results int
}

// figureKeywords returns 16 keywords of mixed selectivity for a dataset —
// frequent element names first (long posting lists), then values.
var figureKeywords = map[string][]string{
	"nasa": {
		"author", "title", "reference", "year", "lastname", "dataset",
		"quasar", "pulsar", "nebula", "supernova", "galaxy", "cluster",
		"comet", "asteroid", "magnetar", "exoplanet",
	},
	"swissprot": {
		"Entry", "Author", "Keyword", "Descr", "Ref", "Features",
		"Kinase", "Hydrolase", "Helicase", "Transferase", "Bacteria",
		"Eukaryota", "Zinc", "Membrane", "Signal", "Protease",
	},
}

// Figure8 reproduces Figure 8: response time versus |S_L| with the number
// of keywords fixed at 8. Queries of increasing selectivity produce the
// spread of |S_L| values; the paper's claim is that RT grows linearly
// with |S_L| for fixed n and d.
func (s *Suite) Figure8() ([]RTPoint, error) {
	var points []RTPoint
	for _, name := range []string{"nasa", "swissprot"} {
		d, err := s.Dataset(name)
		if err != nil {
			return nil, err
		}
		kws := figureKeywords[name]
		// Five n=8 queries sliding from rare (values only) to frequent
		// (element names included) keyword mixes.
		for shift := 0; shift+8 <= len(kws); shift += 2 {
			terms := kws[shift : shift+8]
			q := core.NewQuery(terms...)
			el, resp, err := timeSearch(d.Engine, q, 2, 3)
			if err != nil {
				return nil, err
			}
			points = append(points, RTPoint{
				Dataset: name, Query: fmt.Sprintf("shift=%d", shift), N: 8,
				SLSize: resp.SLSize, Time: el, Results: len(resp.Results),
			})
		}
	}
	sort.SliceStable(points, func(i, j int) bool {
		if points[i].Dataset != points[j].Dataset {
			return points[i].Dataset < points[j].Dataset
		}
		return points[i].SLSize < points[j].SLSize
	})
	return points, nil
}

// Figure9 reproduces Figure 9: response time versus the number of query
// keywords n = 2..16. The paper's claim is a logarithmic dependence on n
// for comparable |S_L|.
func (s *Suite) Figure9() ([]RTPoint, error) {
	var points []RTPoint
	for _, name := range []string{"nasa", "swissprot"} {
		d, err := s.Dataset(name)
		if err != nil {
			return nil, err
		}
		kws := figureKeywords[name]
		for n := 2; n <= 16; n += 2 {
			q := core.NewQuery(kws[:n]...)
			el, resp, err := timeSearch(d.Engine, q, 2, 3)
			if err != nil {
				return nil, err
			}
			points = append(points, RTPoint{
				Dataset: name, Query: fmt.Sprintf("n=%d", n), N: n,
				SLSize: resp.SLSize, Time: el, Results: len(resp.Results),
			})
		}
	}
	return points, nil
}

// PrintRTPoints renders Figure 8/9 series.
func PrintRTPoints(w io.Writer, title string, points []RTPoint) {
	fmt.Fprintln(w, title)
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "Dataset\tQuery\tn\t|S_L|\tResponse Time\tResults")
	for _, p := range points {
		fmt.Fprintf(tw, "%s\t%s\t%d\t%d\t%v\t%d\n",
			p.Dataset, p.Query, p.N, p.SLSize, p.Time.Round(time.Microsecond), p.Results)
	}
	tw.Flush()
}

// Fig10Point is one scalability measurement: the SwissProt analog
// replicated 1..3 times, as in the paper's Figure 10.
type Fig10Point struct {
	Replicas  int
	DataBytes int64
	SLSize    int
	Time      time.Duration
	Results   int
}

// Figure10 reproduces Figure 10: the same query against 1×, 2× and 3×
// replicas of the SwissProt analog; response time and result counts must
// scale linearly with data size.
func (s *Suite) Figure10() ([]Fig10Point, error) {
	var points []Fig10Point
	q := core.NewQuery("Kinase", "Author", "Zinc", "Membrane")
	for replicas := 1; replicas <= 3; replicas++ {
		repo := datagen.Replicate(func() *xmltree.Document {
			return datagen.SwissProt(datagen.Config{Seed: 42, Scale: s.Scale})
		}, replicas)
		ix, err := index.Build(repo, index.DefaultOptions())
		if err != nil {
			return nil, err
		}
		eng := core.NewEngine(ix)
		el, resp, err := timeSearch(eng, q, 2, 3)
		if err != nil {
			return nil, err
		}
		var dataBytes int64
		for _, doc := range repo.Docs {
			n, err := xmltree.XMLSize(doc)
			if err != nil {
				return nil, err
			}
			dataBytes += n
		}
		points = append(points, Fig10Point{
			Replicas: replicas, DataBytes: dataBytes, SLSize: resp.SLSize,
			Time: el, Results: len(resp.Results),
		})
	}
	return points, nil
}

// PrintFigure10 renders the scalability series.
func PrintFigure10(w io.Writer, points []Fig10Point) {
	fmt.Fprintln(w, "Figure 10: response time for replicated SwissProt datasets")
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "Replicas\t|S_L|\tResponse Time\tResults")
	for _, p := range points {
		fmt.Fprintf(tw, "%d\t%d\t%v\t%d\n", p.Replicas, p.SLSize, p.Time.Round(time.Microsecond), p.Results)
	}
	tw.Flush()
}
