package experiments

import (
	"fmt"
	"io"
	"text/tabwriter"
	"time"

	"repro/internal/core"
	"repro/internal/index"
	"repro/internal/lca"
	"repro/internal/metrics"
	"repro/internal/xmltree"
)

// ---------------------------------------------------------------- Table 1

// Table1Row compares GKS with ELCA and SLCA on one Figure 1 query.
type Table1Row struct {
	Query string
	S     int
	GKS   []string
	ELCA  []string
	SLCA  []string
}

// Table1 reproduces Table 1: queries Q1–Q3 over the Figure 1 toy tree.
func Table1() ([]Table1Row, error) {
	ix, err := index.BuildDocument(xmltree.BuildFigure1(), index.DefaultOptions())
	if err != nil {
		return nil, err
	}
	eng := core.NewEngine(ix)
	queries := []struct {
		name  string
		terms []string
		s     int
	}{
		{"Q1, s=|Q1|", []string{"alpha", "beta", "gamma"}, 3},
		{"Q2, s=2", []string{"alpha", "beta", "epsilon"}, 2},
		{"Q3, s=2", []string{"alpha", "beta", "gamma", "delta"}, 2},
	}
	var rows []Table1Row
	for _, qd := range queries {
		q := core.NewQuery(qd.terms...)
		resp, err := eng.Search(q, qd.s)
		if err != nil {
			return nil, err
		}
		row := Table1Row{Query: qd.name, S: qd.s}
		for _, r := range resp.Results {
			row.GKS = append(row.GKS, r.Label)
		}
		lists := eng.PostingLists(q)
		for _, o := range lca.ELCA(ix, lists) {
			row.ELCA = append(row.ELCA, ix.LabelOf(o))
		}
		for _, o := range lca.SLCA(ix, lists) {
			row.SLCA = append(row.SLCA, ix.LabelOf(o))
		}
		rows = append(rows, row)
	}
	return rows, nil
}

// PrintTable1 renders Table 1 in the paper's layout.
func PrintTable1(w io.Writer, rows []Table1Row) {
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "Queries\tGKS (ranked)\tELCA\tSLCA")
	for _, r := range rows {
		fmt.Fprintf(tw, "%s\t%v\t%v\t%v\n", r.Query, orNull(r.GKS), orNull(r.ELCA), orNull(r.SLCA))
	}
	tw.Flush()
}

func orNull(v []string) interface{} {
	if len(v) == 0 {
		return "NULL"
	}
	return v
}

// ---------------------------------------------------------------- Table 4

// Table4Row is one dataset's index-size/build-time measurement.
type Table4Row struct {
	Dataset    string
	DataBytes  int64
	IndexBytes int64
	Depth      int
	BuildTime  time.Duration
	Elements   int
	Entities   int
}

// Table4 reproduces Table 4 (index size and preparation time) over the
// dataset analogs. Absolute sizes are scaled down from the paper's
// multi-hundred-MB downloads; the claims preserved are the index/data size
// ratio (slightly below 1) and build time growing linearly with data size.
func (s *Suite) Table4() ([]Table4Row, error) {
	names := []string{"sigmod", "mondial", "plays", "treebank", "swissprot", "protein", "dblp"}
	var rows []Table4Row
	for _, name := range names {
		d, err := s.Dataset(name)
		if err != nil {
			return nil, err
		}
		ixBytes, err := d.Index.SizeBytes()
		if err != nil {
			return nil, err
		}
		rows = append(rows, Table4Row{
			Dataset:    name,
			DataBytes:  d.DataBytes,
			IndexBytes: ixBytes,
			Depth:      d.Index.Stats.MaxDepth,
			BuildTime:  d.BuildTime,
			Elements:   d.Index.Stats.ElementNodes,
			Entities:   d.Index.Stats.EntityNodes,
		})
	}
	return rows, nil
}

// PrintTable4 renders Table 4.
func PrintTable4(w io.Writer, rows []Table4Row) {
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "Data Set\tData Size\tIndex Size\tXML Depth\tIndex Prep Time\tElements\tEntity Nodes")
	for _, r := range rows {
		fmt.Fprintf(tw, "%s\t%s\t%s\t%d\t%v\t%d\t%d\n",
			r.Dataset, bytesHuman(r.DataBytes), bytesHuman(r.IndexBytes),
			r.Depth, r.BuildTime.Round(time.Microsecond), r.Elements, r.Entities)
	}
	tw.Flush()
}

func bytesHuman(n int64) string {
	switch {
	case n >= 1<<20:
		return fmt.Sprintf("%.2fMB", float64(n)/(1<<20))
	case n >= 1<<10:
		return fmt.Sprintf("%.1fKB", float64(n)/(1<<10))
	}
	return fmt.Sprintf("%dB", n)
}

// ---------------------------------------------------------------- Table 5

// Table5Row is one dataset's node-category distribution.
type Table5Row struct {
	Dataset string
	AN      int
	EN      int
	RN      int
	CN      int
	Total   int
}

// Table5 reproduces Table 5 (distribution of XML elements over the node
// categorization model) for the datasets the paper lists.
func (s *Suite) Table5() ([]Table5Row, error) {
	names := []string{"sigmod", "dblp", "mondial", "interpro", "swissprot"}
	var rows []Table5Row
	for _, name := range names {
		d, err := s.Dataset(name)
		if err != nil {
			return nil, err
		}
		st := d.Index.Stats
		rows = append(rows, Table5Row{
			Dataset: name,
			AN:      st.AttributeNodes,
			EN:      st.EntityNodes,
			RN:      st.RepeatingNodes,
			CN:      st.ConnectingNodes,
			Total:   st.ElementNodes,
		})
	}
	return rows, nil
}

// PrintTable5 renders Table 5.
func PrintTable5(w io.Writer, rows []Table5Row) {
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "Data Set\tCount of AN\tCount of EN\tCount of RN\tCount of CN\tTotal Nodes")
	for _, r := range rows {
		fmt.Fprintf(tw, "%s\t%d\t%d\t%d\t%d\t%d\n", r.Dataset, r.AN, r.EN, r.RN, r.CN, r.Total)
	}
	tw.Flush()
}

// ---------------------------------------------------------------- Table 7

// Table7Row compares GKS and SLCA result counts and the rank score for one
// paper query.
type Table7Row struct {
	ID        string
	QueryLen  int
	GKS1      int
	GKSHalf   int // -1 when |Q|/2 < 2 (the paper prints NA)
	SLCA      int
	MaxKw     int
	RankScore float64

	PaperGKS1, PaperGKSHalf, PaperSLCA, PaperMaxKw int
	PaperRankScore                                 float64
	Exact                                          bool
}

// Table7 reproduces Table 7 over the paper's Table 6 workload. SLCA counts
// exclude document roots, matching the paper's convention that a root-only
// SLCA response is "null" (§7.3).
func (s *Suite) Table7() ([]Table7Row, error) {
	var rows []Table7Row
	for _, pq := range paperQueries() {
		d, err := s.Dataset(pq.Dataset)
		if err != nil {
			return nil, err
		}
		q := core.NewQuery(pq.Terms...)
		r1, err := d.Engine.Search(q, 1)
		if err != nil {
			return nil, err
		}
		row := Table7Row{
			ID: pq.ID, QueryLen: q.Len(), GKS1: len(r1.Results), GKSHalf: -1,
			PaperGKS1: pq.PaperGKS1, PaperGKSHalf: pq.PaperGKSHalf,
			PaperSLCA: pq.PaperSLCA, PaperMaxKw: pq.PaperMaxKw,
			PaperRankScore: pq.PaperRankScore, Exact: pq.Exact,
		}
		if q.Len() > 2 {
			half, err := d.Engine.Search(q, q.Len()/2)
			if err != nil {
				return nil, err
			}
			row.GKSHalf = len(half.Results)
		}
		for _, ord := range lca.SLCA(d.Index, d.Engine.PostingLists(q)) {
			if d.Index.DepthOf(ord) > 0 {
				row.SLCA++
			}
		}
		counts := make([]int, len(r1.Results))
		for i, res := range r1.Results {
			counts[i] = res.KeywordCount
			if res.KeywordCount > row.MaxKw {
				row.MaxKw = res.KeywordCount
			}
		}
		row.RankScore = metrics.RankScore(metrics.TruePositions(counts))
		rows = append(rows, row)
	}
	return rows, nil
}

// PrintTable7 renders Table 7 with measured and paper columns side by side.
func PrintTable7(w io.Writer, rows []Table7Row) {
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "Query\t#GKS,s=1\t#GKS,s=|Q|/2\tSLCA\tMax kw\tRank Score\t| paper:\tGKS1\tGKS|Q|/2\tSLCA\tMaxKw\tScore")
	for _, r := range rows {
		half, paperHalf := "NA", "NA"
		if r.GKSHalf >= 0 {
			half = fmt.Sprint(r.GKSHalf)
		}
		if r.PaperGKSHalf >= 0 {
			paperHalf = fmt.Sprint(r.PaperGKSHalf)
		}
		fmt.Fprintf(tw, "%s\t%d\t%s\t%d\t%d\t%.3f\t|\t%d\t%s\t%d\t%d\t%.3f\n",
			r.ID, r.GKS1, half, r.SLCA, r.MaxKw, r.RankScore,
			r.PaperGKS1, paperHalf, r.PaperSLCA, r.PaperMaxKw, r.PaperRankScore)
	}
	tw.Flush()
}
