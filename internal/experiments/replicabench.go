package experiments

import (
	"context"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"net/url"
	"os"
	"path/filepath"
	"runtime"
	"strings"
	"sync"
	"sync/atomic"
	"text/tabwriter"
	"time"

	gks "repro"
	"repro/internal/replica"
	"repro/internal/server"
	"repro/internal/wal"
)

// Replica bench: read scale-out of the replicated serving tier. One
// leader ingests a corpus through the WAL commit path; followers join
// from its snapshot and tail the log; then a fixed query workload is
// driven by concurrent clients fanned round-robin across 1, 2 and 4
// serving nodes, the way the query router spreads load. The measured
// speedup is what adding read replicas buys.
//
// Honesty note: everything runs in one process over loopback HTTP, so
// the numbers reflect CPU scale-out of the serving stack on a single
// machine — the replicas contend for the same cores and page cache.
// Cross-machine deployments add network latency but remove that
// contention; treat the speedup as a lower bound on isolation, not a
// cluster measurement.

// ReplicaRow is one replica-count configuration's measurements.
type ReplicaRow struct {
	// Replicas is the number of serving nodes queries fan across
	// (1 = leader only).
	Replicas int
	// Ops is the total completed queries across all clients.
	Ops int
	// Elapsed is wall-clock time for all Ops.
	Elapsed time.Duration
	// OpsPerSec is Ops / Elapsed.
	OpsPerSec float64
	// Speedup is OpsPerSec divided by the 1-replica baseline's.
	Speedup float64
}

// ReplicaBenchResult aggregates the experiment for reporting and the
// BENCH_replica.json artifact.
type ReplicaBenchResult struct {
	// Documents is the corpus size; LiveMutations of them arrived through
	// the WAL ingest path (and therefore reached followers via the
	// replication stream rather than the snapshot).
	Documents     int
	LiveMutations int
	// Clients is the number of concurrent query clients; OpsPerConfig the
	// queries each configuration answers.
	Clients      int
	OpsPerConfig int
	Rows         []ReplicaRow
	// SpeedupMax is the highest-replica-count row's speedup — the
	// headline read scale-out number.
	SpeedupMax float64
	// Mode documents the measurement's scope.
	Mode string
}

var replicaBenchVocab = []string{
	"window", "merge", "keyword", "dewey", "lattice", "rank",
	"schema", "entity", "snippet", "threshold",
}

func replicaBenchDoc(rng *rand.Rand, i int) (name, xml string) {
	pick := func() string { return replicaBenchVocab[rng.Intn(len(replicaBenchVocab))] }
	return fmt.Sprintf("rb-%d.xml", i), fmt.Sprintf(
		"<paper><title>%s %s study %d</title><author>%s</author><topic>%s</topic></paper>",
		pick(), pick(), i, pick(), pick())
}

var replicaBenchQueries = []string{
	"window merge", "keyword", "dewey lattice", "rank schema", "entity snippet", "threshold",
}

// replicaBenchNode is one serving node (leader or follower) of the
// benchmark cluster.
type replicaBenchNode struct {
	srv     *httptest.Server
	stop    func()
	cleanup func()
}

// startReplicaLeader builds the corpus, ingests the live tail through
// the WAL commit path, and serves the query API plus the replication
// endpoints.
func startReplicaLeader(scale int) (*replicaBenchNode, int, int, error) {
	rng := rand.New(rand.NewSource(1))
	seedDocs := 160 * scale
	liveDocs := 40 * scale

	dir, err := os.MkdirTemp("", "gks-replicabench-leader-")
	if err != nil {
		return nil, 0, 0, err
	}
	fail := func(err error) (*replicaBenchNode, int, int, error) {
		os.RemoveAll(dir)
		return nil, 0, 0, err
	}
	indexPath := filepath.Join(dir, "leader.gksidx")

	docs := make([]*gks.Document, 0, seedDocs)
	for i := 0; i < seedDocs; i++ {
		name, xml := replicaBenchDoc(rng, i)
		d, err := gks.ParseDocumentString(xml, name)
		if err != nil {
			return fail(err)
		}
		docs = append(docs, d)
	}
	sys, err := gks.IndexDocuments(docs...)
	if err != nil {
		return fail(err)
	}
	if err := sys.SaveIndexFile(indexPath); err != nil {
		return fail(err)
	}
	l, err := wal.Open(indexPath+".wal", wal.Options{})
	if err != nil {
		return fail(err)
	}

	api := server.New(sys)
	rl := server.NewReloader(api, func() (gks.Searcher, error) {
		s, err := gks.LoadIndexFile(indexPath)
		if err != nil {
			return nil, err
		}
		recovered, _, err := gks.ReplayWAL(s, l)
		return recovered, err
	}, nil, nil)
	persist := func(s gks.Searcher) error { return s.(*gks.System).SaveIndexFile(indexPath) }
	ing := server.NewIngester(rl, persist, nil, nil)
	ing.EnableWAL(l, nil)
	leader := &replica.Leader{Log: l, Snapshot: rl.ReplicaSource(l), HeartbeatEvery: 100 * time.Millisecond}

	mux := http.NewServeMux()
	mux.Handle("/", api)
	mux.Handle("/admin/docs", ing.Handler())
	leader.Routes(mux)
	srv := httptest.NewServer(mux)
	node := &replicaBenchNode{
		srv:     srv,
		stop:    func() { srv.Close(); l.Close() },
		cleanup: func() { os.RemoveAll(dir) },
	}

	// The live tail arrives through HTTP ingestion so followers replicate
	// a log with real records in it, not just a snapshot.
	for i := 0; i < liveDocs; i++ {
		name, xml := replicaBenchDoc(rng, seedDocs+i)
		body := fmt.Sprintf("{\"name\":%q,\"xml\":%q}", name, xml)
		resp, err := http.Post(srv.URL+"/admin/docs", "application/json", strings.NewReader(body))
		if err != nil {
			node.stop()
			return fail(err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		if resp.StatusCode != 200 {
			node.stop()
			return fail(fmt.Errorf("experiments: replica corpus ingest: HTTP %d", resp.StatusCode))
		}
	}
	return node, seedDocs + liveDocs, liveDocs, nil
}

// startReplicaFollower joins the leader, tails its log, and blocks until
// fully caught up.
func startReplicaFollower(leaderURL string, leaderLSN uint64) (*replicaBenchNode, error) {
	dir, err := os.MkdirTemp("", "gks-replicabench-follower-")
	if err != nil {
		return nil, err
	}
	fail := func(err error) (*replicaBenchNode, error) {
		os.RemoveAll(dir)
		return nil, err
	}
	indexPath := filepath.Join(dir, "replica.gksidx")
	l, err := wal.Open(indexPath+".wal", wal.Options{})
	if err != nil {
		return fail(err)
	}
	if err := server.JoinCluster(leaderURL, nil, indexPath, l, nil); err != nil {
		l.Close()
		return fail(err)
	}
	sys, err := gks.LoadIndexFile(indexPath)
	if err != nil {
		l.Close()
		return fail(err)
	}
	recovered, _, err := gks.ReplayWAL(sys, l)
	if err != nil {
		l.Close()
		return fail(err)
	}

	api := server.New(recovered)
	rl := server.NewReloader(api, func() (gks.Searcher, error) { return nil, fmt.Errorf("not used") }, nil, nil)
	applier := server.NewReplicaApplier(rl, l, indexPath, nil, nil, nil)
	fl, err := replica.NewFollower(replica.Config{
		Leader:       leaderURL,
		Applier:      applier,
		ReconnectMin: 10 * time.Millisecond,
		ReconnectMax: 200 * time.Millisecond,
	})
	if err != nil {
		l.Close()
		return fail(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan struct{})
	go func() { defer close(done); fl.Run(ctx) }()

	mux := http.NewServeMux()
	mux.Handle("/", api)
	srv := httptest.NewServer(mux)
	node := &replicaBenchNode{
		srv:     srv,
		stop:    func() { cancel(); <-done; srv.Close(); l.Close() },
		cleanup: func() { os.RemoveAll(dir) },
	}

	deadline := time.Now().Add(60 * time.Second)
	for applier.AppliedLSN() < leaderLSN {
		if time.Now().After(deadline) {
			node.stop()
			return fail(fmt.Errorf("experiments: follower never caught up (applied %d, leader %d)",
				applier.AppliedLSN(), leaderLSN))
		}
		time.Sleep(5 * time.Millisecond)
	}
	return node, nil
}

// ReplicaBench measures query throughput with clients concurrent readers
// fanned across each replica count. Every configuration answers the same
// number of queries against the same replicated corpus.
func ReplicaBench(scale int, replicaCounts []int, clients, opsPerConfig int) (*ReplicaBenchResult, error) {
	if scale < 1 {
		scale = 1
	}
	maxReplicas := 1
	for _, n := range replicaCounts {
		if n > maxReplicas {
			maxReplicas = n
		}
	}

	leader, documents, live, err := startReplicaLeader(scale)
	if err != nil {
		return nil, fmt.Errorf("experiments: replica bench leader: %w", err)
	}
	defer leader.cleanup()
	defer leader.stop()

	// One durable-watermark probe: followers are caught up once they
	// applied every live mutation (LSNs are 1..live).
	leaderLSN := uint64(live)

	endpoints := []string{leader.srv.URL}
	for i := 1; i < maxReplicas; i++ {
		f, err := startReplicaFollower(leader.srv.URL, leaderLSN)
		if err != nil {
			return nil, fmt.Errorf("experiments: replica bench follower %d: %w", i, err)
		}
		defer f.cleanup()
		defer f.stop()
		endpoints = append(endpoints, f.srv.URL)
	}

	res := &ReplicaBenchResult{
		Documents:     documents,
		LiveMutations: live,
		Clients:       clients,
		OpsPerConfig:  opsPerConfig,
		Mode: "in-process loopback HTTP on one machine: CPU scale-out of the serving stack, " +
			"replicas contend for the same cores; treat speedup as a lower bound on isolated hosts",
	}
	client := &http.Client{Transport: &http.Transport{MaxIdleConnsPerHost: clients}}
	for _, n := range replicaCounts {
		urls := endpoints[:n]
		var idx int64
		var firstErr atomic.Value
		var wg sync.WaitGroup
		runtime.GC()
		start := time.Now()
		for c := 0; c < clients; c++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for {
					i := atomic.AddInt64(&idx, 1)
					if i > int64(opsPerConfig) {
						return
					}
					q := replicaBenchQueries[int(i)%len(replicaBenchQueries)]
					u := urls[int(i)%len(urls)] + "/search?s=1&q=" + url.QueryEscape(q)
					resp, err := client.Get(u)
					if err != nil {
						firstErr.CompareAndSwap(nil, err)
						return
					}
					io.Copy(io.Discard, resp.Body)
					resp.Body.Close()
					if resp.StatusCode != 200 {
						firstErr.CompareAndSwap(nil, fmt.Errorf("search: HTTP %d", resp.StatusCode))
						return
					}
				}
			}()
		}
		wg.Wait()
		elapsed := time.Since(start)
		if err, _ := firstErr.Load().(error); err != nil {
			return nil, fmt.Errorf("experiments: replica bench at %d replicas: %w", n, err)
		}
		row := ReplicaRow{
			Replicas:  n,
			Ops:       opsPerConfig,
			Elapsed:   elapsed,
			OpsPerSec: float64(opsPerConfig) / elapsed.Seconds(),
		}
		if len(res.Rows) == 0 {
			row.Speedup = 1
		} else {
			row.Speedup = row.OpsPerSec / res.Rows[0].OpsPerSec
		}
		res.Rows = append(res.Rows, row)
		if row.Speedup > res.SpeedupMax {
			res.SpeedupMax = row.Speedup
		}
	}
	return res, nil
}

// PrintReplicaBench writes the experiment's table.
func PrintReplicaBench(w io.Writer, r *ReplicaBenchResult) {
	fmt.Fprintf(w, "corpus: %d docs (%d via live WAL ingest), %d clients, %d queries per config\n",
		r.Documents, r.LiveMutations, r.Clients, r.OpsPerConfig)
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "replicas\tops/sec\telapsed\tspeedup")
	for _, row := range r.Rows {
		fmt.Fprintf(tw, "%d\t%.0f\t%s\t%.2fx\n",
			row.Replicas, row.OpsPerSec, row.Elapsed.Round(time.Millisecond), row.Speedup)
	}
	tw.Flush()
	fmt.Fprintf(w, "note: %s\n", r.Mode)
}
