package experiments

import (
	"fmt"
	"io"
	"math/rand"
	"os"
	"path/filepath"
	"runtime"
	"sort"
	"text/tabwriter"
	"time"

	gks "repro"
	"repro/internal/datagen"
)

// Segment bench: the memory/boot story of the GKS4 block-compressed
// segment format. One corpus is persisted twice — as a GKS3 in-memory
// snapshot and as a GKS4 segment — and each file is booted and queried
// the way gksd serves it. Measured per format: file size, boot (load)
// time, resident heap attributable to the loaded system, and cold/warm
// query latency. GKS4 boots by reading only the meta section + footer
// and fetches posting blocks lazily through a bounded cache, so its boot
// time and resident bytes should sit far below GKS3's, at the price of
// block fetches on cold queries.
//
// Honesty note: resident bytes are heap deltas across forced GCs in one
// process, so they carry allocator granularity noise; the OS page cache
// (which serves the GKS4 preads) is not charged to either side. Treat
// the ratio, not the absolute bytes, as the result.

// SegmentRow is one physical format's measurements.
type SegmentRow struct {
	// Format is "gks3" or "gks4".
	Format string
	// FileBytes is the on-disk snapshot size.
	FileBytes int64
	// BootTime is the time to load the file into a serving system.
	BootTime time.Duration
	// ResidentBytes is the heap growth retained after loading (forced-GC
	// delta): the memory the serving process pays just to hold the index.
	ResidentBytes int64
	// ColdQueryAvg is the mean latency of the first pass over the query
	// set right after boot (GKS4 pays its block fetches here).
	ColdQueryAvg time.Duration
	// WarmQueryAvg is the mean latency over subsequent passes, when the
	// block cache holds the working set.
	WarmQueryAvg time.Duration
	// BlockReads counts posting blocks fetched from disk (0 for gks3).
	BlockReads int64
	// PostingResidentBytes is the memory devoted to posting data after the
	// query passes: for gks3 the decoded posting payload (keyword bytes +
	// 4 bytes per entry — a floor, headers excluded), which grows linearly
	// with the corpus; for gks4 the block cache's resident bytes, which the
	// cache capacity bounds regardless of corpus size.
	PostingResidentBytes int64
	// NodeTableBytes is the exact footprint of the node table's backing
	// storage (index.NodeTableBytes — computed, not sampled): flat NodeInfo
	// records for gks3, the packed DAG-compressed arrays for gks4.
	NodeTableBytes int64
	// OtherResidentBytes is ResidentBytes minus the node-table and
	// posting-resident shares — label/doc tables, directories, allocator
	// slack. Floored at zero: the three addends come from different
	// measurement methods, so small negatives are noise.
	OtherResidentBytes int64
}

// SegmentBenchResult aggregates the experiment for reporting and the
// BENCH_segment.json artifact.
type SegmentBenchResult struct {
	// Documents / DistinctKeywords / PostingEntries describe the corpus.
	Documents        int
	DistinctKeywords int
	PostingEntries   int
	// Queries is the size of the query set; each pass runs all of them.
	Queries int
	// CacheBytes is the GKS4 block-cache capacity used for serving.
	CacheBytes int64
	Rows       []SegmentRow
	// BootSpeedup is gks3 boot time / gks4 boot time.
	BootSpeedup float64
	// ResidentRatio is gks4 resident bytes / gks3 resident bytes — the
	// whole-process memory number (smaller is better). Both formats keep
	// the node table resident (the engine walks it directly), and on this
	// corpus shape the node table — not the postings — dominates the heap,
	// so this ratio is bounded well above zero by design; PostingRatio
	// isolates the part the format actually makes lazy.
	ResidentRatio float64
	// PostingRatio is gks4 posting-resident bytes / gks3 posting payload
	// bytes: the bounded-vs-unbounded comparison. GKS3's term grows
	// linearly with the corpus; GKS4's is capped at CacheBytes forever.
	PostingRatio float64
	// Mode documents the measurement's scope.
	Mode string
}

// segmentBenchQueries derives a deterministic query set from the corpus
// vocabulary: mixed single- and multi-keyword queries spread across the
// frequency spectrum, so both dense and sparse posting blocks are hit.
func segmentBenchQueries(sys *gks.System, n int) []string {
	kws := make([]string, 0, 1024)
	for _, kf := range sys.TopKeywords(1 << 20) {
		kws = append(kws, kf.Keyword)
	}
	sort.Strings(kws)
	rng := rand.New(rand.NewSource(17))
	qs := make([]string, 0, n)
	for i := 0; i < n && len(kws) > 0; i++ {
		k := 1 + rng.Intn(3)
		q := ""
		for j := 0; j < k; j++ {
			if j > 0 {
				q += " "
			}
			q += kws[rng.Intn(len(kws))]
		}
		qs = append(qs, q)
	}
	return qs
}

// heapResident returns the live heap after a double forced GC — the
// steadiest single-process proxy for "memory this system retains".
func heapResident() int64 {
	runtime.GC()
	runtime.GC()
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	return int64(ms.HeapAlloc)
}

// measureSegmentFormat boots path, runs the query passes and returns the
// row. The loaded system is released before returning so the next format
// starts from the same baseline.
func measureSegmentFormat(format, path string, queries []string, cacheBytes int64) (SegmentRow, error) {
	row := SegmentRow{Format: format}
	fi, err := os.Stat(path)
	if err != nil {
		return row, err
	}
	row.FileBytes = fi.Size()

	// Boot time is the minimum over several load/close cycles: single
	// boots swing tens of milliseconds with GC and scheduler noise, and
	// the minimum is the steadiest estimator of the real decode cost (the
	// OS page cache is warm for both formats after the first cycle). The
	// last boot is kept for the resident and query measurements.
	const bootPasses = 5
	var sys *gks.System
	before := heapResident()
	for i := 0; i < bootPasses; i++ {
		start := time.Now()
		s, err := gks.LoadIndexFileOpts(path, gks.SegmentOptions{CacheBytes: cacheBytes})
		if err != nil {
			return row, err
		}
		if d := time.Since(start); i == 0 || d < row.BootTime {
			row.BootTime = d
		}
		if i < bootPasses-1 {
			if err := s.CloseIndex(); err != nil {
				return row, err
			}
			continue
		}
		sys = s
	}
	row.ResidentBytes = heapResident() - before
	if row.ResidentBytes < 0 {
		row.ResidentBytes = 0
	}

	pass := func() (time.Duration, error) {
		start := time.Now()
		for _, q := range queries {
			if _, err := sys.Search(q, 1); err != nil {
				return 0, fmt.Errorf("%s: search %q: %w", format, q, err)
			}
		}
		return time.Since(start), nil
	}
	cold, err := pass()
	if err != nil {
		return row, err
	}
	row.ColdQueryAvg = cold / time.Duration(len(queries))
	const warmPasses = 3
	var warm time.Duration
	for i := 0; i < warmPasses; i++ {
		d, err := pass()
		if err != nil {
			return row, err
		}
		warm += d
	}
	row.WarmQueryAvg = warm / time.Duration(warmPasses*len(queries))
	if seg := sys.Segment(); seg != nil {
		row.BlockReads = seg.BlockReads()
		row.PostingResidentBytes = seg.Cache().Bytes()
	} else {
		for _, kf := range sys.TopKeywords(1 << 30) {
			row.PostingResidentBytes += int64(len(kf.Keyword)) + 4*int64(kf.Count)
		}
	}
	row.NodeTableBytes = sys.NodeTableBytes()
	if row.OtherResidentBytes = row.ResidentBytes - row.NodeTableBytes - row.PostingResidentBytes; row.OtherResidentBytes < 0 {
		row.OtherResidentBytes = 0
	}
	if err := sys.CloseIndex(); err != nil {
		return row, err
	}
	runtime.KeepAlive(sys)
	return row, nil
}

// SegmentBench runs the GKS4-vs-GKS3 serving comparison at the given
// corpus scale with the given block-cache capacity (0 uses 4 MiB).
func SegmentBench(scale int, cacheBytes int64) (*SegmentBenchResult, error) {
	if cacheBytes <= 0 {
		cacheBytes = 4 << 20
	}
	docs := []*gks.Document{
		datagen.SwissProt(datagen.Config{Seed: 1, Scale: scale}),
		datagen.Mondial(datagen.Config{Seed: 2, Scale: scale}),
		datagen.NASA(datagen.Config{Seed: 3, Scale: scale}),
	}
	sys, err := gks.IndexDocuments(docs...)
	if err != nil {
		return nil, err
	}
	st := sys.Stats()
	queries := segmentBenchQueries(sys, 40)

	dir, err := os.MkdirTemp("", "gks-segmentbench-")
	if err != nil {
		return nil, err
	}
	defer os.RemoveAll(dir)
	g3 := filepath.Join(dir, "corpus.gksidx")
	g4 := filepath.Join(dir, "corpus.gks4")
	if err := sys.SaveIndexFile(g3); err != nil {
		return nil, err
	}
	if err := sys.SaveSegmentFile(g4); err != nil {
		return nil, err
	}
	// Release the build-time system so it doesn't pollute the resident
	// measurements of the loads below.
	sys = nil
	docs = nil

	res := &SegmentBenchResult{
		Documents:        st.Documents,
		DistinctKeywords: st.DistinctKeywords,
		PostingEntries:   st.PostingEntries,
		Queries:          len(queries),
		CacheBytes:       cacheBytes,
		Mode: "single process; resident bytes are forced-GC heap deltas; " +
			"GKS4 preads hit the OS page cache, which is not charged to either format. " +
			"Both formats decode the node table eagerly (the engine indexes it directly): " +
			"gks3 as flat NodeInfo records, gks4 in the packed DAG-compressed form " +
			"(node tbl column, computed exactly via index.NodeTableBytes). " +
			"The posting-resident column is the bounded-vs-unbounded story: gks3 " +
			"posting memory grows with the corpus, gks4's is capped at the " +
			"block-cache capacity; 'other' is the remainder (label/doc tables, " +
			"directories, allocator slack)",
	}
	r3, err := measureSegmentFormat("gks3", g3, queries, cacheBytes)
	if err != nil {
		return nil, err
	}
	r4, err := measureSegmentFormat("gks4", g4, queries, cacheBytes)
	if err != nil {
		return nil, err
	}
	res.Rows = []SegmentRow{r3, r4}
	if r4.BootTime > 0 {
		res.BootSpeedup = float64(r3.BootTime) / float64(r4.BootTime)
	}
	if r3.ResidentBytes > 0 {
		res.ResidentRatio = float64(r4.ResidentBytes) / float64(r3.ResidentBytes)
	}
	if r3.PostingResidentBytes > 0 {
		res.PostingRatio = float64(r4.PostingResidentBytes) / float64(r3.PostingResidentBytes)
	}
	return res, nil
}

// PrintSegmentBench renders the comparison as a table.
func PrintSegmentBench(w io.Writer, r *SegmentBenchResult) {
	fmt.Fprintf(w, "corpus: %d document(s), %d distinct keywords, %d posting entries; %d queries/pass; gks4 block cache %d MiB\n",
		r.Documents, r.DistinctKeywords, r.PostingEntries, r.Queries, r.CacheBytes>>20)
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "format\tfile\tboot\tresident\tnode tbl\tposting res.\tother\tcold q\twarm q\tblock reads")
	for _, row := range r.Rows {
		fmt.Fprintf(tw, "%s\t%.1f MiB\t%v\t%.1f MiB\t%.1f MiB\t%.1f MiB\t%.1f MiB\t%v\t%v\t%d\n",
			row.Format, float64(row.FileBytes)/(1<<20),
			row.BootTime.Round(time.Microsecond),
			float64(row.ResidentBytes)/(1<<20),
			float64(row.NodeTableBytes)/(1<<20),
			float64(row.PostingResidentBytes)/(1<<20),
			float64(row.OtherResidentBytes)/(1<<20),
			row.ColdQueryAvg.Round(time.Microsecond),
			row.WarmQueryAvg.Round(time.Microsecond),
			row.BlockReads)
	}
	tw.Flush()
	fmt.Fprintf(w, "boot speedup (gks3/gks4): %.1fx; resident ratio (gks4/gks3): %.2f; posting-resident ratio: %.2f\n",
		r.BootSpeedup, r.ResidentRatio, r.PostingRatio)
	fmt.Fprintf(w, "mode: %s\n", r.Mode)
}
