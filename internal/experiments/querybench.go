package experiments

import (
	"fmt"
	"io"
	"runtime"
	"text/tabwriter"
	"time"

	"repro/internal/core"
)

// Query bench: end-to-end hot-path comparison between the frozen seed
// pipeline (Engine.SearchBaseline — container/heap merge, map-backed
// window scan, per-candidate allocations) and the current pipeline
// (loser-tree merge, pooled query arena, memoized LCP). Both paths
// produce byte-identical responses (the core differential tests are the
// oracle); this experiment records how much cheaper the current one is
// on the paper workloads, with the per-stage latency split the engine
// now reports.

// QueryStageMicros is the per-stage wall-clock split of the optimized
// path, summed over a workload's queries (best run per query).
type QueryStageMicros struct {
	Merge, Windows, Lift, Filter, Rank float64
}

// QueryBenchRow is one dataset workload's measurements.
type QueryBenchRow struct {
	// Dataset names the workload corpus; Threshold is the s threshold the
	// queries run at; Queries is the workload size.
	Dataset   string
	Threshold int
	Queries   int
	// SeedTime and OptTime are the summed best-of-reps wall times over
	// the workload for the seed and optimized pipelines.
	SeedTime time.Duration
	OptTime  time.Duration
	// Speedup is SeedTime / OptTime.
	Speedup float64
	// SeedAllocs and OptAllocs are steady-state heap allocations per
	// query for each pipeline.
	SeedAllocs float64
	OptAllocs  float64
	// QueriesPerSec is the optimized pipeline's throughput implied by
	// OptTime.
	QueriesPerSec float64
	// Stages is the optimized path's per-stage cost over the workload.
	Stages QueryStageMicros
}

// QueryBenchResult aggregates the experiment for reporting and the
// BENCH_query.json artifact.
type QueryBenchResult struct {
	Rows []QueryBenchRow
	// TotalSeed and TotalOptimized sum the workload times across rows.
	TotalSeed      time.Duration
	TotalOptimized time.Duration
	// Speedup is TotalSeed / TotalOptimized.
	Speedup float64
	// AllocReduction is 1 − (optimized allocs / seed allocs), weighted by
	// workload size: 0.5 means half the allocations per query.
	AllocReduction float64
}

// queryWorkload is one dataset's fixed query set.
type queryWorkload struct {
	dataset   string
	threshold int
	queries   []core.Query
}

// queryBenchWorkloads builds the fixed workloads: the Table 6
// bibliographic queries at s=1, plus the Figure 8 pattern of n=8 keyword
// windows (shifts 0,2,4,6,8 over the 16 mixed-selectivity keywords) at
// s=2 on the scientific datasets, which stress the k-way merge hardest.
func queryBenchWorkloads() []queryWorkload {
	var ws []queryWorkload
	for _, ds := range []string{"sigmod", "dblp"} {
		var qs []core.Query
		for _, pq := range paperQueries() {
			if pq.Dataset == ds {
				qs = append(qs, core.NewQuery(pq.Terms...))
			}
		}
		ws = append(ws, queryWorkload{dataset: ds, threshold: 1, queries: qs})
	}
	for _, ds := range []string{"nasa", "swissprot"} {
		kws := figureKeywords[ds]
		var qs []core.Query
		for shift := 0; shift+8 <= len(kws); shift += 2 {
			qs = append(qs, core.NewQuery(kws[shift:shift+8]...))
		}
		ws = append(ws, queryWorkload{dataset: ds, threshold: 2, queries: qs})
	}
	return ws
}

// allocsPerRun reports the mean heap allocations of one run() call in
// steady state — the same measurement testing.AllocsPerRun makes,
// inlined here so the gksbench binary does not link package testing.
func allocsPerRun(run func()) float64 {
	defer runtime.GOMAXPROCS(runtime.GOMAXPROCS(1))
	run() // warm caches and pools outside the measured region
	var before, after runtime.MemStats
	runtime.GC()
	runtime.ReadMemStats(&before)
	const rounds = 3
	for i := 0; i < rounds; i++ {
		run()
	}
	runtime.ReadMemStats(&after)
	return float64(after.Mallocs-before.Mallocs) / rounds
}

// QueryBench measures the seed vs optimized search pipelines on the
// paper workloads. reps > 1 keeps the fastest run of each query.
func (s *Suite) QueryBench(reps int) (*QueryBenchResult, error) {
	if reps < 1 {
		reps = 1
	}
	res := &QueryBenchResult{}
	var seedAllocsSum, optAllocsSum float64
	var totalQueries int
	for _, w := range queryBenchWorkloads() {
		d, err := s.Dataset(w.dataset)
		if err != nil {
			return nil, err
		}
		eng := d.Engine
		row := QueryBenchRow{
			Dataset:   w.dataset,
			Threshold: w.threshold,
			Queries:   len(w.queries),
		}

		// Warm both paths so pool growth and lazily built tables land
		// outside the timed regions, then measure from a collected heap
		// (same methodology as the shard bench: without the GC the
		// previous region's garbage is collected inside this one).
		for _, q := range w.queries {
			if _, err := eng.SearchBaseline(q, w.threshold); err != nil {
				return nil, fmt.Errorf("experiments: %s seed warmup: %w", w.dataset, err)
			}
			if _, err := eng.Search(q, w.threshold); err != nil {
				return nil, fmt.Errorf("experiments: %s warmup: %w", w.dataset, err)
			}
		}

		runtime.GC()
		for _, q := range w.queries {
			var best time.Duration
			for r := 0; r < reps; r++ {
				start := time.Now()
				if _, err := eng.SearchBaseline(q, w.threshold); err != nil {
					return nil, err
				}
				if el := time.Since(start); r == 0 || el < best {
					best = el
				}
			}
			row.SeedTime += best
		}

		runtime.GC()
		for _, q := range w.queries {
			el, resp, err := timeSearch(eng, q, w.threshold, reps)
			if err != nil {
				return nil, err
			}
			row.OptTime += el
			row.Stages.Merge += float64(resp.Stages.Merge.Microseconds())
			row.Stages.Windows += float64(resp.Stages.Windows.Microseconds())
			row.Stages.Lift += float64(resp.Stages.Lift.Microseconds())
			row.Stages.Filter += float64(resp.Stages.Filter.Microseconds())
			row.Stages.Rank += float64(resp.Stages.Rank.Microseconds())
		}

		row.SeedAllocs = allocsPerRun(func() {
			for _, q := range w.queries {
				eng.SearchBaseline(q, w.threshold) //nolint:errcheck — measured above
			}
		}) / float64(len(w.queries))
		row.OptAllocs = allocsPerRun(func() {
			for _, q := range w.queries {
				eng.Search(q, w.threshold) //nolint:errcheck — measured above
			}
		}) / float64(len(w.queries))

		if row.OptTime > 0 {
			row.Speedup = float64(row.SeedTime) / float64(row.OptTime)
			row.QueriesPerSec = float64(row.Queries) / row.OptTime.Seconds()
		}
		res.TotalSeed += row.SeedTime
		res.TotalOptimized += row.OptTime
		seedAllocsSum += row.SeedAllocs * float64(row.Queries)
		optAllocsSum += row.OptAllocs * float64(row.Queries)
		totalQueries += row.Queries
		res.Rows = append(res.Rows, row)
	}
	if res.TotalOptimized > 0 {
		res.Speedup = float64(res.TotalSeed) / float64(res.TotalOptimized)
	}
	if seedAllocsSum > 0 && totalQueries > 0 {
		res.AllocReduction = 1 - optAllocsSum/seedAllocsSum
	}
	return res, nil
}

// PrintQueryBench renders the experiment for the gksbench text report.
func PrintQueryBench(w io.Writer, r *QueryBenchResult) {
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "dataset\ts\tqueries\tseed\toptimized\tspeedup\tallocs/q seed\tallocs/q opt\tqueries/s")
	for _, row := range r.Rows {
		fmt.Fprintf(tw, "%s\t%d\t%d\t%s\t%s\t%.2fx\t%.0f\t%.0f\t%.0f\n",
			row.Dataset, row.Threshold, row.Queries,
			row.SeedTime.Round(time.Microsecond), row.OptTime.Round(time.Microsecond),
			row.Speedup, row.SeedAllocs, row.OptAllocs, row.QueriesPerSec)
	}
	tw.Flush()
	fmt.Fprintf(w, "total: seed %s, optimized %s — %.2fx faster, %.0f%% fewer allocations\n",
		r.TotalSeed.Round(time.Microsecond), r.TotalOptimized.Round(time.Microsecond),
		r.Speedup, 100*r.AllocReduction)
	fmt.Fprintln(w, "optimized per-stage cost (µs summed over each workload):")
	tw = tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "dataset\tmerge\twindows\tlift\tfilter\trank")
	for _, row := range r.Rows {
		fmt.Fprintf(tw, "%s\t%.0f\t%.0f\t%.0f\t%.0f\t%.0f\n",
			row.Dataset, row.Stages.Merge, row.Stages.Windows,
			row.Stages.Lift, row.Stages.Filter, row.Stages.Rank)
	}
	tw.Flush()
}
