package experiments

import (
	"fmt"
	"io"
	"runtime"
	"text/tabwriter"
	"time"

	"repro/internal/core"
	"repro/internal/datagen"
	"repro/internal/index"
	"repro/internal/shard"
	"repro/internal/xmltree"
)

// Shard bench: build-time and search-latency comparison between one index
// over a multi-document corpus and the same corpus partitioned into N
// shards built through shard.Build's worker pool. Even on a single CPU the
// sharded build wins, because partitioning feeds the builders size
// information a monolithic build never has: each shard is pre-sized from
// its group's exact node count and from the first finished shard's
// observed term/posting stats (index.SizeHint), eliminating most of the
// node-table re-growth, posting-list reallocation, and map rehashing —
// and the resulting garbage — that an unhinted build pays for. The
// bounded worker pool adds true parallelism on multi-core machines on
// top of that. Search compares the scatter-gather fan-out cost against
// the single-index pipeline on the same queries.

// ShardBuildRow is one sharding configuration's measurements.
type ShardBuildRow struct {
	// Shards is the configured shard count (actual count may be lower if
	// hashing left a shard empty; Actual records it).
	Shards int
	Actual int
	// BuildTime is the fastest wall-clock shard.Build over the corpus.
	BuildTime time.Duration
	// BuildSpeedup is single-index build time / BuildTime.
	BuildSpeedup float64
	// SearchTime is the mean best-of-reps scatter-gather latency over the
	// workload queries.
	SearchTime time.Duration
}

// ShardBenchResult aggregates the experiment for reporting and the
// BENCH_shard.json artifact.
type ShardBenchResult struct {
	// Documents and DataBytes describe the corpus.
	Documents int
	DataBytes int64
	// SingleBuild is the fastest single-index build over the corpus.
	SingleBuild time.Duration
	// SingleSearch is the mean single-index search latency on the workload.
	SingleSearch time.Duration
	Rows         []ShardBuildRow
}

// shardCorpus generates the multi-document corpus: distinct bibliography
// documents (distinct seeds, so vocabularies overlap but do not
// coincide), sized so index build dominates measurement noise.
func shardCorpus(scale int) []*xmltree.Document {
	if scale < 1 {
		scale = 1
	}
	docs := make([]*xmltree.Document, 16)
	for i := range docs {
		docs[i] = datagen.DBLP(datagen.BibConfig{
			Config:  datagen.Config{Seed: int64(i + 1)},
			Entries: 150 * scale,
		})
		docs[i].Name = fmt.Sprintf("%s#%d", docs[i].Name, i)
	}
	return docs
}

// shardBenchQueries is the fixed search workload for the latency columns.
func shardBenchQueries() []core.Query {
	return []core.Query{
		core.NewQuery("keyword", "search", "data"),
		core.NewQuery("efficient", "indexing"),
		core.NewQuery("ranking", "queries", "streams", "adaptive"),
	}
}

// ShardBench measures single-index vs sharded build and search for each
// shard count. reps > 1 keeps the fastest run of each measurement.
func ShardBench(scale int, shardCounts []int, reps int) (*ShardBenchResult, error) {
	if reps < 1 {
		reps = 1
	}
	docs := shardCorpus(scale)
	var dataBytes int64
	for _, doc := range docs {
		n, err := xmltree.XMLSize(doc)
		if err != nil {
			return nil, fmt.Errorf("experiments: sizing shard corpus: %w", err)
		}
		dataBytes += n
	}
	res := &ShardBenchResult{Documents: len(docs), DataBytes: dataBytes}

	// Methodology:
	//
	//   - Each timed region starts from a collected heap: without this,
	//     the garbage of the previous build is collected inside the next
	//     timed build and the comparison measures GC scheduling, not
	//     indexing.
	//   - Both timed paths start from bare parsed documents and include
	//     the Dewey numbering pass — Repository.Add for the single index,
	//     shard.Build's global renumbering for the sharded one — exactly
	//     the work `gks index` does from files in each mode.
	//   - Configurations are interleaved within each repetition (single,
	//     then every shard count) so environmental drift — a noisy
	//     neighbor, CPU frequency changes — lands on all configurations
	//     alike instead of biasing whichever happened to run last; the
	//     reported time is the best over repetitions per configuration.
	var single *index.Index
	bests := make([]time.Duration, len(shardCounts))
	actual := make([]int, len(shardCounts))
	for r := 0; r < reps; r++ {
		single = nil
		runtime.GC()
		start := time.Now()
		repo := &xmltree.Repository{}
		for _, d := range docs {
			repo.Add(d)
		}
		ix, err := index.Build(repo, index.DefaultOptions())
		el := time.Since(start)
		if err != nil {
			return nil, fmt.Errorf("experiments: single build: %w", err)
		}
		if r == 0 || el < res.SingleBuild {
			res.SingleBuild = el
		}
		single = ix

		for c, n := range shardCounts {
			runtime.GC()
			start := time.Now()
			s, err := shard.Build(docs, shard.DefaultOptions(n))
			el := time.Since(start)
			if err != nil {
				return nil, fmt.Errorf("experiments: %d-shard build: %w", n, err)
			}
			if r == 0 || el < bests[c] {
				bests[c] = el
			}
			actual[c] = s.NumShards()
		}
	}

	eng := core.NewEngine(single)
	queries := shardBenchQueries()
	var total time.Duration
	runtime.GC()
	for _, q := range queries {
		el, _, err := timeSearch(eng, q, 1, reps)
		if err != nil {
			return nil, err
		}
		total += el
	}
	res.SingleSearch = total / time.Duration(len(queries))
	single, eng = nil, nil

	for c, n := range shardCounts {
		row := ShardBuildRow{
			Shards:       n,
			Actual:       actual[c],
			BuildTime:    bests[c],
			BuildSpeedup: float64(res.SingleBuild) / float64(bests[c]),
		}
		runtime.GC()
		s, err := shard.Build(docs, shard.DefaultOptions(n))
		if err != nil {
			return nil, fmt.Errorf("experiments: %d-shard build: %w", n, err)
		}
		var total time.Duration
		for _, q := range queries {
			var qBest time.Duration
			for r := 0; r < reps; r++ {
				start := time.Now()
				if _, err := s.SearchQuery(q, 1); err != nil {
					return nil, err
				}
				if el := time.Since(start); r == 0 || el < qBest {
					qBest = el
				}
			}
			total += qBest
		}
		row.SearchTime = total / time.Duration(len(queries))
		res.Rows = append(res.Rows, row)
	}
	return res, nil
}

// PrintShardBench renders the experiment for the gksbench text report.
func PrintShardBench(w io.Writer, r *ShardBenchResult) {
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintf(tw, "corpus\t%d documents\t%.1f MB\n", r.Documents, float64(r.DataBytes)/(1<<20))
	fmt.Fprintf(tw, "single index\tbuild %s\tsearch %s\n", r.SingleBuild.Round(time.Millisecond), r.SingleSearch.Round(time.Microsecond))
	fmt.Fprintln(tw, "shards\tbuild\tspeedup\tsearch")
	for _, row := range r.Rows {
		fmt.Fprintf(tw, "%d (%d used)\t%s\t%.2fx\t%s\n",
			row.Shards, row.Actual, row.BuildTime.Round(time.Millisecond),
			row.BuildSpeedup, row.SearchTime.Round(time.Microsecond))
	}
	tw.Flush()
}
