package experiments

import (
	"fmt"
	"io"
	"math"
	"math/rand"
	"sort"
	"time"

	"repro/internal/core"
	"repro/internal/index"
)

// Query-workload sampling: instead of hand-picked keyword sets, sample
// queries from the index vocabulary stratified by posting-list length, so
// response-time figures cover the selectivity spectrum representatively.

// SampleQueries draws count queries of n keywords each from ix's
// vocabulary. Keywords are drawn from frequency strata (one quarter each
// from the shortest to the longest posting-list quartiles), so every query
// mixes rare and frequent terms the way real query logs do. Sampling is
// deterministic in seed.
func SampleQueries(ix *index.Index, n, count int, seed int64) []core.Query {
	vocab := ix.TopKeywords(0) // sorted by frequency desc
	if len(vocab) == 0 || n <= 0 || count <= 0 {
		return nil
	}
	sort.Slice(vocab, func(i, j int) bool { return vocab[i].Count < vocab[j].Count })
	rng := rand.New(rand.NewSource(seed))
	quartile := func(q int) []index.KeywordFreq {
		lo := q * len(vocab) / 4
		hi := (q + 1) * len(vocab) / 4
		if hi <= lo {
			hi = lo + 1
		}
		if hi > len(vocab) {
			hi = len(vocab)
		}
		return vocab[lo:hi]
	}
	var out []core.Query
	for len(out) < count {
		terms := make([]string, 0, n)
		seen := map[string]bool{}
		for len(terms) < n {
			stratum := quartile(len(terms) % 4)
			kw := stratum[rng.Intn(len(stratum))].Keyword
			if seen[kw] {
				continue
			}
			seen[kw] = true
			terms = append(terms, kw)
		}
		q := core.NewQuery(terms...)
		if q.Len() == n {
			out = append(out, q)
		}
	}
	return out
}

// Figure8Sampled re-runs the Figure 8 experiment over sampled n=8 queries
// rather than the hand-picked keyword mixes, checking the RT-vs-|S_L|
// linearity claim without selection bias.
func (s *Suite) Figure8Sampled(queriesPerDataset int) ([]RTPoint, error) {
	if queriesPerDataset <= 0 {
		queriesPerDataset = 8
	}
	var points []RTPoint
	for _, name := range []string{"nasa", "swissprot"} {
		d, err := s.Dataset(name)
		if err != nil {
			return nil, err
		}
		for i, q := range SampleQueries(d.Index, 8, queriesPerDataset, 99) {
			el, resp, err := timeSearch(d.Engine, q, 2, 3)
			if err != nil {
				return nil, err
			}
			points = append(points, RTPoint{
				Dataset: name, Query: fmt.Sprintf("sample-%02d", i), N: 8,
				SLSize: resp.SLSize, Time: el, Results: len(resp.Results),
			})
		}
	}
	sort.SliceStable(points, func(i, j int) bool {
		if points[i].Dataset != points[j].Dataset {
			return points[i].Dataset < points[j].Dataset
		}
		return points[i].SLSize < points[j].SLSize
	})
	return points, nil
}

// LinearFit returns the least-squares slope and Pearson correlation of
// time-vs-|S_L| for a point series — the quantitative form of "RT
// increases linearly with S_L" (§7.1.2).
func LinearFit(points []RTPoint) (slopeNsPerEntry, r float64) {
	n := float64(len(points))
	if n < 2 {
		return 0, 0
	}
	var sx, sy, sxx, syy, sxy float64
	for _, p := range points {
		x := float64(p.SLSize)
		y := float64(p.Time / time.Nanosecond)
		sx += x
		sy += y
		sxx += x * x
		syy += y * y
		sxy += x * y
	}
	den := n*sxx - sx*sx
	if den == 0 {
		return 0, 0
	}
	slope := (n*sxy - sx*sy) / den
	varY := n*syy - sy*sy
	if varY <= 0 {
		return slope, 0
	}
	r = (n*sxy - sx*sy) / (math.Sqrt(den) * math.Sqrt(varY))
	return slope, r
}

// PrintFigure8Sampled renders the sampled series with the linear fit.
func PrintFigure8Sampled(w io.Writer, points []RTPoint) {
	PrintRTPoints(w, "Figure 8 (sampled queries): response time vs |S_L|, n=8", points)
	byDataset := map[string][]RTPoint{}
	for _, p := range points {
		byDataset[p.Dataset] = append(byDataset[p.Dataset], p)
	}
	names := make([]string, 0, len(byDataset))
	for name := range byDataset {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		slope, r := LinearFit(byDataset[name])
		fmt.Fprintf(w, "%s: linear fit %.1f ns per S_L entry, correlation r = %.3f\n", name, slope, r)
	}
}
