package experiments

import (
	"fmt"
	"io"
	"math/rand"
	"text/tabwriter"
	"time"

	"repro/internal/core"
	"repro/internal/datagen"
	"repro/internal/index"
	"repro/internal/xmltree"
)

// DAG bench: the node-table compression story of the packed index. One
// DBLP-shaped corpus is generated at several duplicate-subtree fractions
// (datagen.BibConfig.DupFraction) and indexed once; the flat index and its
// Pack()ed form are then compared head to head: exact node-table bytes
// (index.NodeTableBytes — computed, not sampled), shape-table statistics,
// pack time, and cold/warm query latency of the engine serving each
// representation. Every query's responses are diffed between the two
// engines during the cold pass, so a latency win can never hide a
// correctness regression.
//
// Honesty note: latency is single-process wall clock (best-of-passes for
// warm), so treat small ratios as noise; the byte columns are exact.

// DAGRow is one duplicate-fraction's measurements.
type DAGRow struct {
	// DupFraction is the fraction of background DBLP entries emitted as
	// exact copies of an earlier entry.
	DupFraction float64
	// Nodes is the element-node count of the corpus.
	Nodes int
	// FlatBytes / PackedBytes are the exact node-table footprints of the
	// two representations; Ratio is Flat/Packed (bigger is better).
	FlatBytes   int64
	PackedBytes int64
	Ratio       float64
	// SpineNodes, Instances, Shapes, ShapeNodes and Values summarize the
	// packed form (index.PackInfo): SpineNodes+ShapeNodes is the number of
	// structural records actually stored vs Nodes in the flat table.
	SpineNodes int
	Instances  int
	Shapes     int
	ShapeNodes int
	Values     int
	// BuildTime is the flat index build; PackTime the Pack() call on top.
	BuildTime time.Duration
	PackTime  time.Duration
	// FlatCold/PackedCold are first-pass mean latencies; FlatWarm and
	// PackedWarm best-of-7-passes means. WarmRatio is PackedWarm/FlatWarm
	// (≤1 means packed serving is free or better).
	FlatCold   time.Duration
	PackedCold time.Duration
	FlatWarm   time.Duration
	PackedWarm time.Duration
	WarmRatio  float64
}

// DAGIngestRow is one append strategy's live-ingestion measurement: the
// same document stream appended one at a time onto the same base corpus.
type DAGIngestRow struct {
	// Strategy identifies the append path: "flat-append" (no packing at
	// all), "packed-full-repack" (the pre-delta behavior: flatten, splice,
	// re-pack per document) or "packed-delta" (incremental pack
	// maintenance).
	Strategy string
	// Docs is the number of documents appended; Nodes the final node count.
	Docs  int
	Nodes int
	// Total is the wall-clock for the whole stream; PerDoc the mean;
	// DocsPerSec the resulting upsert throughput.
	Total      time.Duration
	PerDoc     time.Duration
	DocsPerSec float64
	// PackDebt is the delta strategy's leftover debt ratio (what a repack
	// would reclaim); 0 for the other strategies.
	PackDebt float64
}

// DAGBenchResult aggregates the experiment for reporting and the
// BENCH_dag.json artifact.
type DAGBenchResult struct {
	Scale      int
	Queries    int
	Rows       []DAGRow
	IngestDocs int
	Ingest     []DAGIngestRow
	Mode       string
}

// dagQueries derives a deterministic mixed query set from the index
// vocabulary, spread across the frequency spectrum.
func dagQueries(ix *index.Index, n int) ([]string, error) {
	var kws []string
	err := ix.ForEachKeywordSorted(func(kw string, list []int32) error {
		kws = append(kws, kw)
		return nil
	})
	if err != nil {
		return nil, err
	}
	rng := rand.New(rand.NewSource(23))
	qs := make([]string, 0, n)
	for i := 0; i < n && len(kws) > 0; i++ {
		k := 1 + rng.Intn(3)
		q := ""
		for j := 0; j < k; j++ {
			if j > 0 {
				q += " "
			}
			q += kws[rng.Intn(len(kws))]
		}
		qs = append(qs, q)
	}
	return qs, nil
}

// diffResponses compares the user-visible surface of two responses.
func diffResponses(q string, a, b *core.Response) error {
	if len(a.Results) != len(b.Results) {
		return fmt.Errorf("dag: query %q: %d flat results vs %d packed", q, len(a.Results), len(b.Results))
	}
	for i := range a.Results {
		ra, rb := &a.Results[i], &b.Results[i]
		if ra.Ord != rb.Ord || ra.Rank != rb.Rank || ra.Label != rb.Label ||
			ra.KeywordCount != rb.KeywordCount || ra.ID.String() != rb.ID.String() {
			return fmt.Errorf("dag: query %q: result %d diverges (flat %s rank %g vs packed %s rank %g)",
				q, i, ra.ID, ra.Rank, rb.ID, rb.Rank)
		}
	}
	return nil
}

// dagMeasure runs the query passes over one engine. The first pass is the
// cold column; warm is the per-query mean of the best subsequent pass.
func dagMeasure(eng *core.Engine, queries []string, threshold int) (cold, warm time.Duration, responses []*core.Response, err error) {
	pass := func(keep bool) (time.Duration, error) {
		start := time.Now()
		for _, q := range queries {
			resp, err := eng.Search(core.ParseQuery(q), threshold)
			if err != nil {
				return 0, err
			}
			if keep {
				responses = append(responses, resp)
			}
		}
		return time.Since(start), nil
	}
	coldTotal, err := pass(true)
	if err != nil {
		return 0, 0, nil, err
	}
	const warmPasses = 7
	var best time.Duration
	for i := 0; i < warmPasses; i++ {
		d, err := pass(false)
		if err != nil {
			return 0, 0, nil, err
		}
		if i == 0 || d < best {
			best = d
		}
	}
	n := time.Duration(len(queries))
	return coldTotal / n, best / n, responses, nil
}

// dagLiveDocs generates the live-upsert stream: small bibliography
// fragments (a handful of entries each), the shape a single ingest API
// call carries, deterministic in the seed.
func dagLiveDocs(n int) []*xmltree.Document {
	docs := make([]*xmltree.Document, n)
	for i := range docs {
		d := datagen.DBLP(datagen.BibConfig{
			Config:  datagen.Config{Seed: int64(1000 + i), Scale: 1},
			Entries: 5,
		})
		d.Name = fmt.Sprintf("live-%d.xml", i)
		docs[i] = d
	}
	return docs
}

// dagIngest measures live-ingestion throughput: the same document stream
// appended one at a time via three strategies onto the same base corpus —
// flat append (never packed), the pre-delta packed behavior (flatten,
// splice, re-pack every document: the O(N)-per-append collapse this repo
// fixed) and the delta-maintaining packed append. Final states are diffed
// query-by-query so a throughput win can never hide divergence.
func dagIngest(scale int) ([]DAGIngestRow, int, error) {
	repo := datagen.Repo(datagen.DBLP(datagen.BibConfig{
		Config:      datagen.Config{Seed: 31, Scale: scale},
		DupFraction: 0.3,
	}))
	flatBase, err := index.Build(repo, index.DefaultOptions())
	if err != nil {
		return nil, 0, fmt.Errorf("dag ingest: indexing base: %w", err)
	}
	packedBase := flatBase.Pack()

	nDocs := 16 + 4*scale
	if nDocs > 96 {
		nDocs = 96
	}
	docs := dagLiveDocs(nDocs)

	type strategy struct {
		name string
		base *index.Index
		step func(*index.Index, *xmltree.Document) (*index.Index, error)
	}
	strategies := []strategy{
		{"flat-append", flatBase, func(ix *index.Index, d *xmltree.Document) (*index.Index, error) {
			return index.AppendAs(ix, d, ix.NextDocID(), index.DefaultOptions())
		}},
		{"packed-full-repack", packedBase, func(ix *index.Index, d *xmltree.Document) (*index.Index, error) {
			return index.AppendAsFullRepack(ix, d, ix.NextDocID(), index.DefaultOptions())
		}},
		{"packed-delta", packedBase, func(ix *index.Index, d *xmltree.Document) (*index.Index, error) {
			return index.AppendAs(ix, d, ix.NextDocID(), index.DefaultOptions())
		}},
	}

	rows := make([]DAGIngestRow, 0, len(strategies))
	finals := make([]*index.Index, 0, len(strategies))
	for _, s := range strategies {
		cur := s.base
		start := time.Now()
		for _, d := range docs {
			next, err := s.step(cur, d)
			if err != nil {
				return nil, 0, fmt.Errorf("dag ingest: %s: %w", s.name, err)
			}
			cur = next
		}
		total := time.Since(start)
		if s.base == packedBase && !cur.IsPacked() {
			return nil, 0, fmt.Errorf("dag ingest: %s lost the packed representation", s.name)
		}
		row := DAGIngestRow{
			Strategy: s.name,
			Docs:     nDocs,
			Nodes:    cur.NodeCount(),
			Total:    total,
			PerDoc:   total / time.Duration(nDocs),
			PackDebt: cur.PackDebt(),
		}
		if total > 0 {
			row.DocsPerSec = float64(nDocs) / total.Seconds()
		}
		rows = append(rows, row)
		finals = append(finals, cur)
	}

	queries, err := dagQueries(finals[0], 30)
	if err != nil {
		return nil, 0, err
	}
	onePass := func(ix *index.Index) ([]*core.Response, error) {
		eng := core.NewEngine(ix)
		resp := make([]*core.Response, 0, len(queries))
		for _, q := range queries {
			r, err := eng.Search(core.ParseQuery(q), 2)
			if err != nil {
				return nil, err
			}
			resp = append(resp, r)
		}
		return resp, nil
	}
	refResp, err := onePass(finals[0])
	if err != nil {
		return nil, 0, err
	}
	for i := 1; i < len(finals); i++ {
		resp, err := onePass(finals[i])
		if err != nil {
			return nil, 0, err
		}
		for j, q := range queries {
			if err := diffResponses(q, refResp[j], resp[j]); err != nil {
				return nil, 0, fmt.Errorf("dag ingest: %s vs flat-append: %w", rows[i].Strategy, err)
			}
		}
	}
	return rows, nDocs, nil
}

// DAGBench runs the flat-vs-packed node-table comparison at the given
// corpus scale across a sweep of duplicate-subtree fractions.
func DAGBench(scale int) (*DAGBenchResult, error) {
	res := &DAGBenchResult{
		Scale: scale,
		Mode: "single process; byte columns are exact (index.NodeTableBytes), " +
			"latency is wall clock (warm = best of 7 passes); every query's " +
			"responses are diffed flat-vs-packed during the cold pass",
	}
	for _, dup := range []float64{0, 0.3, 0.6, 0.9} {
		repo := datagen.Repo(datagen.DBLP(datagen.BibConfig{
			Config:      datagen.Config{Seed: 29, Scale: scale},
			DupFraction: dup,
		}))
		start := time.Now()
		flat, err := index.Build(repo, index.DefaultOptions())
		if err != nil {
			return nil, fmt.Errorf("dag: indexing dup=%.1f: %w", dup, err)
		}
		buildTime := time.Since(start)
		start = time.Now()
		packed := flat.Pack()
		packTime := time.Since(start)
		info, ok := packed.PackedInfo()
		if !ok {
			return nil, fmt.Errorf("dag: Pack() did not produce a packed index")
		}

		queries, err := dagQueries(flat, 30)
		if err != nil {
			return nil, err
		}
		flatEng, packedEng := core.NewEngine(flat), core.NewEngine(packed)
		fCold, fWarm, fResp, err := dagMeasure(flatEng, queries, 2)
		if err != nil {
			return nil, err
		}
		pCold, pWarm, pResp, err := dagMeasure(packedEng, queries, 2)
		if err != nil {
			return nil, err
		}
		for i, q := range queries {
			if err := diffResponses(q, fResp[i], pResp[i]); err != nil {
				return nil, err
			}
		}

		row := DAGRow{
			DupFraction: dup,
			Nodes:       flat.NodeCount(),
			FlatBytes:   flat.NodeTableBytes(),
			PackedBytes: packed.NodeTableBytes(),
			SpineNodes:  info.SpineNodes,
			Instances:   info.Instances,
			Shapes:      info.Shapes,
			ShapeNodes:  info.ShapeNodes,
			Values:      info.Values,
			BuildTime:   buildTime,
			PackTime:    packTime,
			FlatCold:    fCold,
			PackedCold:  pCold,
			FlatWarm:    fWarm,
			PackedWarm:  pWarm,
		}
		if row.PackedBytes > 0 {
			row.Ratio = float64(row.FlatBytes) / float64(row.PackedBytes)
		}
		if fWarm > 0 {
			row.WarmRatio = float64(pWarm) / float64(fWarm)
		}
		res.Rows = append(res.Rows, row)
		res.Queries = len(queries)
	}
	ingest, nDocs, err := dagIngest(scale)
	if err != nil {
		return nil, err
	}
	res.Ingest, res.IngestDocs = ingest, nDocs
	return res, nil
}

// PrintDAGBench renders the comparison as a table.
func PrintDAGBench(w io.Writer, r *DAGBenchResult) {
	fmt.Fprintf(w, "DBLP corpus at scale %d; %d queries/pass; flat vs packed (DAG-compressed) node table\n", r.Scale, r.Queries)
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "dup\tnodes\tflat ntbl\tpacked ntbl\tratio\tshapes\tinstances\tspine\tpack\tflat warm\tpacked warm\twarm ratio")
	for _, row := range r.Rows {
		fmt.Fprintf(tw, "%.1f\t%d\t%.2f MiB\t%.2f MiB\t%.2fx\t%d\t%d\t%d\t%v\t%v\t%v\t%.2f\n",
			row.DupFraction, row.Nodes,
			float64(row.FlatBytes)/(1<<20), float64(row.PackedBytes)/(1<<20),
			row.Ratio, row.Shapes, row.Instances, row.SpineNodes,
			row.PackTime.Round(time.Millisecond),
			row.FlatWarm.Round(time.Microsecond), row.PackedWarm.Round(time.Microsecond),
			row.WarmRatio)
	}
	tw.Flush()
	if len(r.Ingest) > 0 {
		fmt.Fprintf(w, "\nlive ingestion: %d single-document upserts onto the dup=0.3 base, per strategy\n", r.IngestDocs)
		tw = tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
		fmt.Fprintln(tw, "strategy\tdocs/s\tper doc\ttotal\tfinal nodes\tpack debt")
		for _, row := range r.Ingest {
			fmt.Fprintf(tw, "%s\t%.1f\t%v\t%v\t%d\t%.3f\n",
				row.Strategy, row.DocsPerSec,
				row.PerDoc.Round(time.Microsecond), row.Total.Round(time.Millisecond),
				row.Nodes, row.PackDebt)
		}
		tw.Flush()
	}
	fmt.Fprintf(w, "mode: %s\n", r.Mode)
}
