package experiments

import (
	"fmt"
	"io"
	"text/tabwriter"
	"time"

	"repro/internal/index"
)

// FormatRow compares the gob (v1) and compact binary (v2) index formats on
// one dataset: serialized size and encode/decode wall time.
type FormatRow struct {
	Dataset    string
	GobBytes   int64
	BinBytes   int64
	GobEncode  time.Duration
	BinEncode  time.Duration
	GobDecode  time.Duration
	BinDecode  time.Duration
	Equivalent bool
}

// IndexFormats measures both persistence formats over representative
// datasets. The claim: the delta-varint binary format is substantially
// smaller and faster to decode, while decoding to an identical index.
func (s *Suite) IndexFormats() ([]FormatRow, error) {
	var rows []FormatRow
	for _, name := range []string{"sigmod", "swissprot", "dblp"} {
		d, err := s.Dataset(name)
		if err != nil {
			return nil, err
		}
		row := FormatRow{Dataset: name}

		var gobBuf, binBuf writeCounter
		start := time.Now()
		if err := d.Index.Save(&gobBuf); err != nil {
			return nil, err
		}
		row.GobEncode = time.Since(start)
		row.GobBytes = gobBuf.n

		start = time.Now()
		if err := d.Index.SaveBinary(&binBuf); err != nil {
			return nil, err
		}
		row.BinEncode = time.Since(start)
		row.BinBytes = binBuf.n

		start = time.Now()
		fromGob, err := index.Load(gobBuf.reader())
		if err != nil {
			return nil, err
		}
		row.GobDecode = time.Since(start)

		start = time.Now()
		fromBin, err := index.Load(binBuf.reader())
		if err != nil {
			return nil, err
		}
		row.BinDecode = time.Since(start)

		row.Equivalent = fromGob.Stats == fromBin.Stats &&
			len(fromGob.Nodes) == len(fromBin.Nodes) &&
			len(fromGob.Postings) == len(fromBin.Postings)
		rows = append(rows, row)
	}
	return rows, nil
}

// writeCounter buffers written bytes and counts them.
type writeCounter struct {
	n   int64
	buf []byte
}

func (w *writeCounter) Write(p []byte) (int, error) {
	w.n += int64(len(p))
	w.buf = append(w.buf, p...)
	return len(p), nil
}

func (w *writeCounter) reader() io.Reader { return &sliceReader{data: w.buf} }

type sliceReader struct {
	data []byte
	off  int
}

func (r *sliceReader) Read(p []byte) (int, error) {
	if r.off >= len(r.data) {
		return 0, io.EOF
	}
	n := copy(p, r.data[r.off:])
	r.off += n
	return n, nil
}

// PrintIndexFormats renders the format comparison.
func PrintIndexFormats(w io.Writer, rows []FormatRow) {
	fmt.Fprintln(w, "Index persistence formats: gob (v1) vs delta-varint binary (v2)")
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "Dataset\tgob size\tbinary size\tratio\tgob enc\tbin enc\tgob dec\tbin dec\tequal")
	for _, r := range rows {
		fmt.Fprintf(tw, "%s\t%s\t%s\t%.2f\t%v\t%v\t%v\t%v\t%v\n",
			r.Dataset, bytesHuman(r.GobBytes), bytesHuman(r.BinBytes),
			float64(r.BinBytes)/float64(r.GobBytes),
			r.GobEncode.Round(time.Microsecond), r.BinEncode.Round(time.Microsecond),
			r.GobDecode.Round(time.Microsecond), r.BinDecode.Round(time.Microsecond),
			r.Equivalent)
	}
	tw.Flush()
}
