package experiments

import (
	"fmt"
	"io"
	"text/tabwriter"

	"repro/internal/core"
	"repro/internal/di"
	"repro/internal/lca"
)

// FSLCARow reproduces the §7.3 comparison against MESSIAH's FSLCA [19]:
// the paper reports that GKS's top node was present in the FSLCA result
// set for QI1 and QI2, that many FSLCA nodes were among GKS's top 10 for
// QM1, and that QM2 had no FSLCA node while GKS still answered.
type FSLCARow struct {
	ID            string
	TargetType    string
	FSLCANodes    int
	Forgiven      int // query keywords forgiven as missing elements
	GKSTop        int // GKS response size (s=1)
	TopInFSLCA    bool
	FSLCAInTop10  int
	GKSNonEmpty   bool
	FSLCANonEmpty bool
}

// FSLCA runs the comparison for the paper's QI and QM queries: the target
// type is deduced with the XReal-style inference, FSLCA answers against
// that type, and the overlap with the ranked GKS response is measured.
func (s *Suite) FSLCA() ([]FSLCARow, error) {
	var rows []FSLCARow
	for _, pq := range paperQueries() {
		if pq.Dataset != "mondial" && pq.Dataset != "interpro" {
			continue
		}
		d, err := s.Dataset(pq.Dataset)
		if err != nil {
			return nil, err
		}
		q := core.NewQuery(pq.Terms...)
		row := FSLCARow{ID: pq.ID}

		types := di.InferResultTypes(d.Engine, q, 1)
		if len(types) > 0 {
			row.TargetType = types[0].Label
		}
		lists := d.Engine.PostingLists(q)
		fslca, forgiven := lca.FSLCAForType(d.Index, lists, row.TargetType)
		row.FSLCANodes = len(fslca)
		row.Forgiven = len(forgiven)
		row.FSLCANonEmpty = len(fslca) > 0

		resp, err := d.Engine.Search(q, 1)
		if err != nil {
			return nil, err
		}
		row.GKSTop = len(resp.Results)
		row.GKSNonEmpty = len(resp.Results) > 0

		inFSLCA := make(map[int32]bool, len(fslca))
		for _, o := range fslca {
			inFSLCA[o] = true
		}
		if len(resp.Results) > 0 {
			row.TopInFSLCA = inFSLCA[resp.Results[0].Ord]
		}
		for i, r := range resp.Results {
			if i >= 10 {
				break
			}
			if inFSLCA[r.Ord] {
				row.FSLCAInTop10++
			}
		}
		rows = append(rows, row)
	}
	return rows, nil
}

// PrintFSLCA renders the comparison.
func PrintFSLCA(w io.Writer, rows []FSLCARow) {
	fmt.Fprintln(w, "FSLCA (simplified MESSIAH [19]) vs GKS (§7.3)")
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "Query\ttarget type\t#FSLCA\tforgiven kw\t#GKS s=1\ttop GKS in FSLCA\tFSLCA in GKS top-10")
	for _, r := range rows {
		fmt.Fprintf(tw, "%s\t%s\t%d\t%d\t%d\t%v\t%d\n",
			r.ID, r.TargetType, r.FSLCANodes, r.Forgiven, r.GKSTop, r.TopInFSLCA, r.FSLCAInTop10)
	}
	tw.Flush()
}
