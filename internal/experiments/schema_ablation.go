package experiments

import (
	"fmt"
	"io"
	"text/tabwriter"

	"repro/internal/core"
	"repro/internal/index"
	"repro/internal/schema"
	"repro/internal/xmltree"
)

// SchemaAblationRow compares the node-category distribution of one dataset
// under instance-level (the paper's default) and schema-level
// categorization (the paper's §2.2 future-work extension).
type SchemaAblationRow struct {
	Dataset        string
	InstanceEN     int
	SchemaEN       int
	InstanceCN     int
	SchemaCN       int
	ChangedNodes   int
	SingletonQuery string
	InstanceLabel  string // response label for the singleton probe query
	SchemaLabel    string
}

// SchemaAblation quantifies the paper's §7.2 observation that
// single-author articles classify as connecting nodes at instance level:
// schema-level categorization upgrades them to entities, shrinking the CN
// count and changing what GKS returns for keywords inside those articles.
func (s *Suite) SchemaAblation() ([]SchemaAblationRow, error) {
	probes := map[string]string{
		"sigmod": "Anthony I. Wasserman", // solo author: article is CN at instance level
		"dblp":   "Prithviraj Banerjee",  // mostly solo articles
	}
	var rows []SchemaAblationRow
	for _, name := range []string{"sigmod", "dblp"} {
		d, err := s.Dataset(name)
		if err != nil {
			return nil, err
		}
		// Work on a private copy of the index so the cached dataset keeps
		// instance-level semantics for the other experiments.
		ix, err := rebuildIndex(d.Repo)
		if err != nil {
			return nil, err
		}
		row := SchemaAblationRow{
			Dataset:        name,
			InstanceEN:     ix.Stats.EntityNodes,
			InstanceCN:     ix.Stats.ConnectingNodes,
			SingletonQuery: probes[name],
		}
		row.InstanceLabel = probeLabel(ix, probes[name])

		row.ChangedNodes = schema.Apply(ix, schema.Infer(ix).Categorize(ix))
		row.SchemaEN = ix.Stats.EntityNodes
		row.SchemaCN = ix.Stats.ConnectingNodes
		row.SchemaLabel = probeLabel(ix, probes[name])
		rows = append(rows, row)
	}
	return rows, nil
}

func rebuildIndex(repo *xmltree.Repository) (*index.Index, error) {
	return index.Build(repo, index.DefaultOptions())
}

// probeLabel returns the label of the top response node for a single
// keyword query, or "".
func probeLabel(ix *index.Index, term string) string {
	eng := core.NewEngine(ix)
	resp, err := eng.Search(core.NewQuery(term), 1)
	if err != nil || len(resp.Results) == 0 {
		return ""
	}
	return resp.Results[0].Label
}

// PrintSchemaAblation renders the comparison.
func PrintSchemaAblation(w io.Writer, rows []SchemaAblationRow) {
	fmt.Fprintln(w, "Schema-aware categorization ablation (§2.2 future work)")
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "Dataset\tEN inst\tEN schema\tCN inst\tCN schema\tchanged\tprobe\ttop inst\ttop schema")
	for _, r := range rows {
		fmt.Fprintf(tw, "%s\t%d\t%d\t%d\t%d\t%d\t%q\t%s\t%s\n",
			r.Dataset, r.InstanceEN, r.SchemaEN, r.InstanceCN, r.SchemaCN,
			r.ChangedNodes, r.SingletonQuery, r.InstanceLabel, r.SchemaLabel)
	}
	tw.Flush()
}
