package experiments

import (
	"fmt"
	"io"
	"os"
	"path/filepath"
	"runtime"
	"sync"
	"sync/atomic"
	"text/tabwriter"
	"time"

	"repro/internal/datagen"
	"repro/internal/shard"
	"repro/internal/wal"
	"repro/internal/xmltree"
)

// Ingest bench: sustained write throughput of the two durability designs
// the server has shipped. Snapshot-per-mutation (the old contract)
// serializes every upsert behind a full persist of the index — at N
// shards that is N snapshot files plus a manifest, all rewritten and
// fsynced per operation, so cost grows with corpus size and adding
// writers adds nothing but queueing. The write-ahead log appends one
// CRC-framed record per operation and group-commits: concurrent writers
// enqueue under the serving lock but share fsyncs, so cost is O(record)
// and throughput climbs with writer count. The measured gap is the
// motivation for the WAL subsystem; BENCH_ingest.json records it.

// IngestRow is one (mode, writer-count) configuration's measurements.
type IngestRow struct {
	// Mode is "snapshot" (persist whole index per op) or "wal" (append +
	// group-commit fsync per op).
	Mode string
	// Writers is the number of concurrent mutating goroutines.
	Writers int
	// Ops is the total acknowledged upserts across all writers.
	Ops int
	// Elapsed is wall-clock time for all Ops.
	Elapsed time.Duration
	// OpsPerSec is Ops / Elapsed.
	OpsPerSec float64
}

// IngestBenchResult aggregates the experiment for reporting and the
// BENCH_ingest.json artifact.
type IngestBenchResult struct {
	// Documents and Shards describe the base corpus the mutations land on.
	Documents int
	Shards    int
	// OpsPerConfig is the acknowledged upserts measured per configuration.
	OpsPerConfig int
	Rows         []IngestRow
	// Speedup16 is WAL ops/sec divided by snapshot ops/sec at the highest
	// writer count (the issue's headline number).
	Speedup16 float64
}

// ingestBenchDoc builds the i-th mutation payload: a small bibliography
// entry, the shape of document live ingestion exists for. Returns the
// parsed tree and its serialized form (what the WAL logs).
func ingestBenchDoc(i int64) (*xmltree.Document, string, error) {
	src := fmt.Sprintf(
		"<entry><title>live update %d window merge</title><author>bench writer %d</author><year>%d</year></entry>",
		i, i%7, 2000+i%25)
	doc, err := xmltree.ParseString(src, 0, fmt.Sprintf("live-%d.xml", i))
	if err != nil {
		return nil, "", err
	}
	return doc, src, nil
}

// ingestDrive runs ops upserts across writers goroutines. Each op applies
// copy-on-write under a mutex — mutations must serialize, exactly as the
// server's reload mutex serializes them — and then calls ack outside it.
// commit runs under the mutex and makes the op durable (or enqueues it);
// ack, with the mutex released, waits for durability where the mode
// splits the two.
func ingestDrive(writers, ops int, apply func(i int64) (ackToken uint64, err error), ack func(token uint64) error) (time.Duration, error) {
	var idx int64
	var firstErr atomic.Value
	var wg sync.WaitGroup
	runtime.GC()
	start := time.Now()
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := atomic.AddInt64(&idx, 1)
				if i > int64(ops) {
					return
				}
				token, err := apply(i)
				if err == nil && ack != nil {
					err = ack(token)
				}
				if err != nil {
					firstErr.CompareAndSwap(nil, err)
					return
				}
			}
		}()
	}
	wg.Wait()
	elapsed := time.Since(start)
	if err, _ := firstErr.Load().(error); err != nil {
		return 0, err
	}
	return elapsed, nil
}

// IngestBench measures upsert throughput for both durability modes at
// each writer count. Every configuration performs the same number of
// acknowledged upserts onto a fresh copy of the same sharded corpus.
func IngestBench(scale int, writerCounts []int, opsPerConfig int) (*IngestBenchResult, error) {
	if scale < 1 {
		scale = 1
	}
	docs := make([]*xmltree.Document, 6)
	for i := range docs {
		docs[i] = datagen.DBLP(datagen.BibConfig{
			Config:  datagen.Config{Seed: int64(i + 1)},
			Entries: 100 * scale,
		})
		docs[i].Name = fmt.Sprintf("%s#%d", docs[i].Name, i)
	}
	const shards = 4
	base, err := shard.Build(docs, shard.DefaultOptions(shards))
	if err != nil {
		return nil, fmt.Errorf("experiments: ingest corpus build: %w", err)
	}
	res := &IngestBenchResult{Documents: len(docs), Shards: base.NumShards(), OpsPerConfig: opsPerConfig}

	snapshotPerSec := map[int]float64{}
	walPerSec := map[int]float64{}
	for _, writers := range writerCounts {
		// Snapshot-per-mutation: apply + full SaveManifest under the lock,
		// the legacy server commit path. The ack is the save itself.
		dir, err := os.MkdirTemp("", "gks-ingestbench-snap-")
		if err != nil {
			return nil, err
		}
		path := filepath.Join(dir, "bench.gksm")
		if err := base.SaveManifest(path); err != nil {
			os.RemoveAll(dir)
			return nil, fmt.Errorf("experiments: seeding snapshot mode: %w", err)
		}
		var mu sync.Mutex
		cur := base
		elapsed, err := ingestDrive(writers, opsPerConfig, func(i int64) (uint64, error) {
			doc, _, err := ingestBenchDoc(i)
			if err != nil {
				return 0, err
			}
			mu.Lock()
			defer mu.Unlock()
			next, _, err := cur.WithDocument(doc)
			if err != nil {
				return 0, err
			}
			if err := next.SaveManifest(path); err != nil {
				return 0, err
			}
			cur = next
			return 0, nil
		}, nil)
		os.RemoveAll(dir)
		if err != nil {
			return nil, fmt.Errorf("experiments: snapshot mode (%d writers): %w", writers, err)
		}
		perSec := float64(opsPerConfig) / elapsed.Seconds()
		snapshotPerSec[writers] = perSec
		res.Rows = append(res.Rows, IngestRow{
			Mode: "snapshot", Writers: writers, Ops: opsPerConfig,
			Elapsed: elapsed, OpsPerSec: perSec,
		})

		// WAL: apply + append under the lock, group-commit fsync outside
		// it — the server's two-phase commit.
		dir, err = os.MkdirTemp("", "gks-ingestbench-wal-")
		if err != nil {
			return nil, err
		}
		l, err := wal.Open(filepath.Join(dir, "wal"), wal.Options{})
		if err != nil {
			os.RemoveAll(dir)
			return nil, err
		}
		cur = base
		elapsed, err = ingestDrive(writers, opsPerConfig, func(i int64) (uint64, error) {
			doc, src, err := ingestBenchDoc(i)
			if err != nil {
				return 0, err
			}
			mu.Lock()
			defer mu.Unlock()
			next, _, err := cur.WithDocument(doc)
			if err != nil {
				return 0, err
			}
			lsn, err := l.Enqueue(wal.OpUpsert, doc.Name, src)
			if err != nil {
				return 0, err
			}
			cur = next
			return lsn, nil
		}, l.WaitDurable)
		l.Close()
		os.RemoveAll(dir)
		if err != nil {
			return nil, fmt.Errorf("experiments: wal mode (%d writers): %w", writers, err)
		}
		perSec = float64(opsPerConfig) / elapsed.Seconds()
		walPerSec[writers] = perSec
		res.Rows = append(res.Rows, IngestRow{
			Mode: "wal", Writers: writers, Ops: opsPerConfig,
			Elapsed: elapsed, OpsPerSec: perSec,
		})
	}

	if len(writerCounts) > 0 {
		maxW := writerCounts[0]
		for _, w := range writerCounts[1:] {
			if w > maxW {
				maxW = w
			}
		}
		if snapshotPerSec[maxW] > 0 {
			res.Speedup16 = walPerSec[maxW] / snapshotPerSec[maxW]
		}
	}
	return res, nil
}

// PrintIngestBench renders the experiment for the gksbench text report.
func PrintIngestBench(w io.Writer, r *IngestBenchResult) {
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintf(tw, "corpus\t%d documents in %d shards, %d upserts per configuration\n",
		r.Documents, r.Shards, r.OpsPerConfig)
	fmt.Fprintln(tw, "mode\twriters\tops\telapsed\tops/sec")
	for _, row := range r.Rows {
		fmt.Fprintf(tw, "%s\t%d\t%d\t%s\t%.1f\n",
			row.Mode, row.Writers, row.Ops, row.Elapsed.Round(time.Millisecond), row.OpsPerSec)
	}
	fmt.Fprintf(tw, "wal speedup at max writers\t%.1fx\n", r.Speedup16)
	tw.Flush()
}
