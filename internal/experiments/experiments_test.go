package experiments

import (
	"bytes"
	"strings"
	"testing"
)

func suite(t *testing.T) *Suite {
	t.Helper()
	return NewSuite(1)
}

func TestTable1MatchesPaper(t *testing.T) {
	rows, err := Table1()
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 {
		t.Fatalf("rows = %d", len(rows))
	}
	// Q1: GKS {x2}, ELCA {x1,x2}, SLCA {x2}.
	if got := rows[0].GKS; len(got) != 1 || got[0] != "x2" {
		t.Errorf("Q1 GKS = %v", got)
	}
	if got := rows[0].ELCA; len(got) != 2 {
		t.Errorf("Q1 ELCA = %v", got)
	}
	// Q2: GKS {x2,x3}, LCA baselines NULL.
	if got := rows[1].GKS; len(got) != 2 {
		t.Errorf("Q2 GKS = %v", got)
	}
	if len(rows[1].SLCA) != 0 || len(rows[1].ELCA) != 0 {
		t.Errorf("Q2 baselines = %v / %v, want NULL", rows[1].SLCA, rows[1].ELCA)
	}
	// Q3: GKS {x2,x3,x4}; baselines {r}.
	if got := rows[2].GKS; len(got) != 3 {
		t.Errorf("Q3 GKS = %v", got)
	}
	if len(rows[2].SLCA) != 1 || rows[2].SLCA[0] != "r" {
		t.Errorf("Q3 SLCA = %v, want [r]", rows[2].SLCA)
	}
	var buf bytes.Buffer
	PrintTable1(&buf, rows)
	if !strings.Contains(buf.String(), "NULL") {
		t.Error("printed table must show NULL for empty baselines")
	}
}

func TestTable4ShapeClaims(t *testing.T) {
	s := suite(t)
	rows, err := s.Table4()
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 7 {
		t.Fatalf("rows = %d, want 7 datasets", len(rows))
	}
	for _, r := range rows {
		if r.DataBytes == 0 || r.IndexBytes == 0 {
			t.Errorf("%s: zero sizes", r.Dataset)
		}
		if r.BuildTime <= 0 {
			t.Errorf("%s: no build time", r.Dataset)
		}
	}
	// TreeBank must be the deepest dataset, as in the paper (depth 36
	// versus 5–8 for the others).
	depths := map[string]int{}
	for _, r := range rows {
		depths[r.Dataset] = r.Depth
	}
	for name, d := range depths {
		if name != "treebank" && d >= depths["treebank"] {
			t.Errorf("treebank (%d) must be deeper than %s (%d)", depths["treebank"], name, d)
		}
	}
	var buf bytes.Buffer
	PrintTable4(&buf, rows)
	if !strings.Contains(buf.String(), "treebank") {
		t.Error("print output incomplete")
	}
}

func TestTable5Counts(t *testing.T) {
	s := suite(t)
	rows, err := s.Table5()
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 5 {
		t.Fatalf("rows = %d", len(rows))
	}
	for _, r := range rows {
		if r.Total == 0 || r.EN == 0 || r.AN == 0 || r.RN == 0 {
			t.Errorf("%s: degenerate distribution %+v", r.Dataset, r)
		}
		// Real-world repositories are dominated by AN+RN, with CN a small
		// fraction (the paper: <3% for DBLP up to ~15% for InterPro).
		if r.CN*3 > r.Total {
			t.Errorf("%s: connecting nodes = %d of %d, too many", r.Dataset, r.CN, r.Total)
		}
	}
}

func TestTable7AgainstPaper(t *testing.T) {
	s := suite(t)
	rows, err := s.Table7()
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 14 {
		t.Fatalf("rows = %d, want 14 queries", len(rows))
	}
	for _, r := range rows {
		if r.Exact {
			if r.GKS1 != r.PaperGKS1 {
				t.Errorf("%s: GKS1 = %d, paper %d", r.ID, r.GKS1, r.PaperGKS1)
			}
			if r.PaperGKSHalf >= 0 && r.GKSHalf != r.PaperGKSHalf {
				t.Errorf("%s: GKSHalf = %d, paper %d", r.ID, r.GKSHalf, r.PaperGKSHalf)
			}
			if r.SLCA != r.PaperSLCA {
				t.Errorf("%s: SLCA = %d, paper %d", r.ID, r.SLCA, r.PaperSLCA)
			}
			if r.MaxKw != r.PaperMaxKw {
				t.Errorf("%s: MaxKw = %d, paper %d", r.ID, r.MaxKw, r.PaperMaxKw)
			}
		}
		// Shape claims for every query: GKS(s=1) dominates SLCA, and the
		// s=|Q|/2 response is non-empty (Table 7's "non-zero for all").
		if r.GKS1 < r.SLCA {
			t.Errorf("%s: GKS1 (%d) < SLCA (%d)", r.ID, r.GKS1, r.SLCA)
		}
		if r.GKSHalf == 0 {
			t.Errorf("%s: GKS at s=|Q|/2 must be non-zero", r.ID)
		}
		if r.RankScore < 0 || r.RankScore > 1 {
			t.Errorf("%s: rank score %v out of range", r.ID, r.RankScore)
		}
	}
	var buf bytes.Buffer
	PrintTable7(&buf, rows)
	if !strings.Contains(buf.String(), "QD2") {
		t.Error("print output incomplete")
	}
}

func TestTable7RankScores(t *testing.T) {
	s := suite(t)
	rows, err := s.Table7()
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range rows {
		switch r.ID {
		case "QS1", "QS2", "QS3", "QS4", "QD1", "QD3", "QD4":
			if r.RankScore != 1 {
				t.Errorf("%s: rank score = %v, paper reports 1", r.ID, r.RankScore)
			}
		case "QD2":
			// The crowded fifth joint article must push the score below 1
			// (paper: 0.72; the exact value depends on co-author counts).
			if r.RankScore >= 1 || r.RankScore < 0.4 {
				t.Errorf("QD2: rank score = %v, want in (0.4, 1)", r.RankScore)
			}
		}
	}
}

func TestTable8DIHighlights(t *testing.T) {
	s := suite(t)
	rows, err := s.Table8()
	if err != nil {
		t.Fatal(err)
	}
	byID := map[string]Table8Row{}
	for _, r := range rows {
		byID[r.ID] = r
	}
	// QD2 at s=1: the paper reports <year: 2001> and <journal: SIGMOD
	// Record> (our analog plants booktitle: SIGMOD Record).
	qd2 := strings.Join(byID["QD2"].DI1, " ")
	if !strings.Contains(qd2, "2001") && !strings.Contains(qd2, "SIGMOD Record") {
		t.Errorf("QD2 DI = %v, want 2001 / SIGMOD Record", byID["QD2"].DI1)
	}
	// QD3 at s=1: <year: 1999>, <booktitle: ICCD>.
	qd3 := strings.Join(byID["QD3"].DI1, " ")
	if !strings.Contains(qd3, "1999") && !strings.Contains(qd3, "ICCD") {
		t.Errorf("QD3 DI = %v, want 1999 / ICCD", byID["QD3"].DI1)
	}
	var buf bytes.Buffer
	PrintTable8(&buf, rows)
	if !strings.Contains(buf.String(), "QD3") {
		t.Error("print output incomplete")
	}
}

func TestRefinementWalkthrough(t *testing.T) {
	s := suite(t)
	r, err := s.Refinement()
	if err != nil {
		t.Fatal(err)
	}
	if r.OriginalJoint != 1 {
		t.Errorf("original joint articles = %d, paper reports 1", r.OriginalJoint)
	}
	if !r.SuggestionListed {
		t.Fatal("DI must suggest Marek Rusinkiewicz (§7.4)")
	}
	if r.RefinedJoint != 10 {
		t.Errorf("refined joint articles = %d, paper reports 10", r.RefinedJoint)
	}
	var buf bytes.Buffer
	PrintRefinement(&buf, r)
	if !strings.Contains(buf.String(), "Rusinkiewicz") {
		t.Error("print output incomplete")
	}
}

func TestFeedbackSimulation(t *testing.T) {
	s := suite(t)
	rows, err := s.Feedback()
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 12 {
		t.Fatalf("rows = %d, want the 12 rated queries", len(rows))
	}
	better, total := 0, 0
	for _, r := range rows {
		if r.Ratings.Total() != 40 {
			t.Errorf("%s: panel = %d", r.ID, r.Ratings.Total())
		}
		better += r.Ratings.GKSBetter()
		total += r.Ratings.Total()
	}
	pct := 100 * float64(better) / float64(total)
	// The paper reports 89.6% GKS-better; the simulation must land in the
	// same regime (GKS clearly preferred but not unanimous).
	if pct < 75 || pct > 99 {
		t.Errorf("GKS-better = %.1f%%, want within [75, 99] (paper: 89.6)", pct)
	}
	var buf bytes.Buffer
	PrintFeedback(&buf, rows)
	if !strings.Contains(buf.String(), "89.6") {
		t.Error("print output must cite the paper number")
	}
}

func TestHybridQueries(t *testing.T) {
	s := suite(t)
	r, err := s.Hybrid()
	if err != nil {
		t.Fatal(err)
	}
	if r.Results != 8 {
		t.Errorf("hybrid results = %d, paper reports 8", r.Results)
	}
	if r.DBLPNodes != 3 || r.SigmodNodes != 5 {
		t.Errorf("hybrid split = %d inproceedings + %d articles, want 3 + 5",
			r.DBLPNodes, r.SigmodNodes)
	}
	if !r.OnlyTargetHits {
		t.Error("hybrid response contains non-target node types")
	}
	if !r.ArticlesOnTop {
		t.Errorf("2-author articles must outrank crowded inproceedings despite depth; top = %v", r.TopLabels)
	}
	var buf bytes.Buffer
	PrintHybrid(&buf, r)
	if !strings.Contains(buf.String(), "8") {
		t.Error("print output incomplete")
	}
}

func TestNaiveAblation(t *testing.T) {
	s := suite(t)
	rows, err := s.NaiveAblation()
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 7 {
		t.Fatalf("rows = %d", len(rows))
	}
	last := rows[len(rows)-1]
	if last.Subsets < 160 {
		t.Errorf("n=8, s=4 subsets = %d, want 163 (Lemma 3 exponential)", last.Subsets)
	}
	// The naive union must get strictly slower than GKS at large n.
	if last.NaiveTime <= last.GKSTime {
		t.Errorf("naive (%v) should be slower than GKS (%v) at n=8", last.NaiveTime, last.GKSTime)
	}
	var buf bytes.Buffer
	PrintNaiveAblation(&buf, rows)
	if !strings.Contains(buf.String(), "naive") {
		t.Error("print output incomplete")
	}
}

func TestFigure8LinearInSL(t *testing.T) {
	s := suite(t)
	points, err := s.Figure8()
	if err != nil {
		t.Fatal(err)
	}
	if len(points) != 10 {
		t.Fatalf("points = %d, want 2 datasets x 5 queries", len(points))
	}
	for _, p := range points {
		if p.SLSize == 0 {
			t.Errorf("%s %s: empty S_L", p.Dataset, p.Query)
		}
	}
	var buf bytes.Buffer
	PrintRTPoints(&buf, "Figure 8", points)
	if !strings.Contains(buf.String(), "S_L") {
		t.Error("print output incomplete")
	}
}

func TestFigure9VariesN(t *testing.T) {
	s := suite(t)
	points, err := s.Figure9()
	if err != nil {
		t.Fatal(err)
	}
	if len(points) != 16 {
		t.Fatalf("points = %d, want 2 datasets x 8 sizes", len(points))
	}
	for _, p := range points {
		if p.N < 2 || p.N > 16 {
			t.Errorf("n = %d out of range", p.N)
		}
	}
}

func TestFigure10Scalability(t *testing.T) {
	s := suite(t)
	points, err := s.Figure10()
	if err != nil {
		t.Fatal(err)
	}
	if len(points) != 3 {
		t.Fatalf("points = %d", len(points))
	}
	// |S_L| and results must scale linearly with replicas.
	for i := 1; i < len(points); i++ {
		if points[i].SLSize <= points[i-1].SLSize {
			t.Errorf("S_L must grow with replicas: %v", points)
		}
		if points[i].Results <= points[i-1].Results {
			t.Errorf("results must grow with replicas: %v", points)
		}
	}
	ratio := float64(points[2].SLSize) / float64(points[0].SLSize)
	if ratio < 2.5 || ratio > 3.5 {
		t.Errorf("3x replicas produced %.2fx S_L, want ~3x", ratio)
	}
	var buf bytes.Buffer
	PrintFigure10(&buf, points)
	if !strings.Contains(buf.String(), "Replicas") {
		t.Error("print output incomplete")
	}
}

func TestDatasetErrors(t *testing.T) {
	s := suite(t)
	if _, err := s.Dataset("nope"); err == nil {
		t.Error("unknown dataset must error")
	}
	d1, err := s.Dataset("mondial")
	if err != nil {
		t.Fatal(err)
	}
	d2, err := s.Dataset("mondial")
	if err != nil {
		t.Fatal(err)
	}
	if d1 != d2 {
		t.Error("datasets must be cached")
	}
}

func TestSchemaAblation(t *testing.T) {
	s := suite(t)
	rows, err := s.SchemaAblation()
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("rows = %d", len(rows))
	}
	for _, r := range rows {
		if r.SchemaEN <= r.InstanceEN {
			t.Errorf("%s: schema EN (%d) must exceed instance EN (%d)",
				r.Dataset, r.SchemaEN, r.InstanceEN)
		}
		if r.ChangedNodes == 0 {
			t.Errorf("%s: no nodes changed", r.Dataset)
		}
	}
	var buf bytes.Buffer
	PrintSchemaAblation(&buf, rows)
	if !strings.Contains(buf.String(), "schema") {
		t.Error("print output incomplete")
	}
}

func TestIndexFormats(t *testing.T) {
	s := suite(t)
	rows, err := s.IndexFormats()
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 {
		t.Fatalf("rows = %d", len(rows))
	}
	for _, r := range rows {
		if !r.Equivalent {
			t.Errorf("%s: formats decode to different indexes", r.Dataset)
		}
		if r.BinBytes >= r.GobBytes {
			t.Errorf("%s: binary (%d) should beat gob (%d)", r.Dataset, r.BinBytes, r.GobBytes)
		}
	}
	var buf bytes.Buffer
	PrintIndexFormats(&buf, rows)
	if !strings.Contains(buf.String(), "binary") {
		t.Error("print output incomplete")
	}
}

func TestMeaningfulness(t *testing.T) {
	s := suite(t)
	rows, err := s.Meaningfulness()
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 8 {
		t.Fatalf("rows = %d, want the 8 exact bibliographic queries", len(rows))
	}
	for _, r := range rows {
		// §1.2: GKS recall is high — the planted intent is always covered.
		if r.GKSRecall != 1 {
			t.Errorf("%s: GKS recall = %v, want 1", r.ID, r.GKSRecall)
		}
		// Ranked precision@R: the top slots are the relevant nodes for all
		// queries except QD2 (the crowded joint article, rank score < 1).
		if r.ID != "QD2" && r.GKSPrecisionAt != 1 {
			t.Errorf("%s: GKS precision@R = %v, want 1", r.ID, r.GKSPrecisionAt)
		}
		// SLCA misses the intent whenever no single node holds all the
		// keywords. Even for QS4 (one article with all 8 authors) the SLCA
		// answer is the nested <authors> wrapper, not the article — the
		// paper's "context-free response" critique. Only flat DBLP's QD1
		// SLCA coincides with the intent node.
		if r.ID == "QD1" {
			if r.SLCARecall == 0 {
				t.Errorf("QD1: SLCA should find the joint article")
			}
		} else if r.SLCARecall != 0 {
			t.Errorf("%s: SLCA recall = %v, want 0", r.ID, r.SLCARecall)
		}
	}
	var buf bytes.Buffer
	PrintMeaningfulness(&buf, rows)
	if !strings.Contains(buf.String(), "recall") {
		t.Error("print output incomplete")
	}
}

func TestSampleQueries(t *testing.T) {
	s := suite(t)
	d, err := s.Dataset("nasa")
	if err != nil {
		t.Fatal(err)
	}
	qs := SampleQueries(d.Index, 8, 5, 7)
	if len(qs) != 5 {
		t.Fatalf("sampled %d queries", len(qs))
	}
	for _, q := range qs {
		if q.Len() != 8 {
			t.Errorf("query size %d", q.Len())
		}
	}
	// Deterministic in seed.
	again := SampleQueries(d.Index, 8, 5, 7)
	for i := range qs {
		if qs[i].String() != again[i].String() {
			t.Error("sampling not deterministic")
		}
	}
	if got := SampleQueries(d.Index, 0, 5, 7); got != nil {
		t.Error("n=0 must yield nil")
	}
}

func TestFigure8SampledLinearity(t *testing.T) {
	s := suite(t)
	points, err := s.Figure8Sampled(6)
	if err != nil {
		t.Fatal(err)
	}
	if len(points) != 12 {
		t.Fatalf("points = %d", len(points))
	}
	byDataset := map[string][]RTPoint{}
	for _, p := range points {
		byDataset[p.Dataset] = append(byDataset[p.Dataset], p)
	}
	for name, ps := range byDataset {
		slope, r := LinearFit(ps)
		if slope <= 0 {
			t.Errorf("%s: non-positive slope %v", name, slope)
		}
		// Wall-clock noise allows slack, but the correlation must be
		// clearly positive for the paper's linearity claim.
		if r < 0.5 {
			t.Errorf("%s: correlation %v too weak for linearity", name, r)
		}
	}
	var buf bytes.Buffer
	PrintFigure8Sampled(&buf, points)
	if !strings.Contains(buf.String(), "correlation") {
		t.Error("print output incomplete")
	}
}

func TestLinearFitEdgeCases(t *testing.T) {
	if s, r := LinearFit(nil); s != 0 || r != 0 {
		t.Error("empty fit must be zero")
	}
	same := []RTPoint{{SLSize: 5, Time: 10}, {SLSize: 5, Time: 20}}
	if s, _ := LinearFit(same); s != 0 {
		t.Errorf("degenerate x variance: slope %v", s)
	}
}

func TestFSLCAComparison(t *testing.T) {
	s := suite(t)
	rows, err := s.FSLCA()
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 6 {
		t.Fatalf("rows = %d, want QM1-4 + QI1-2", len(rows))
	}
	byID := map[string]FSLCARow{}
	for _, r := range rows {
		byID[r.ID] = r
	}
	// §7.3: "the top XML node for both QI1 and QI2 for GKS was present in
	// FSLCA result set". In our analog QI1 reproduces this exactly; QI2's
	// top slot goes to a tighter partial match, but FSLCA nodes still
	// appear in the GKS top 10 for both.
	if !byID["QI1"].TopInFSLCA {
		t.Errorf("QI1: top GKS node not in FSLCA set (%+v)", byID["QI1"])
	}
	for _, id := range []string{"QI1", "QI2"} {
		if byID[id].FSLCAInTop10 == 0 {
			t.Errorf("%s: no FSLCA overlap with GKS top 10 (%+v)", id, byID[id])
		}
	}
	// "For QM1, many XML nodes of FSLCA were among the top 10 nodes of GKS".
	if byID["QM1"].FSLCAInTop10 == 0 {
		t.Errorf("QM1: no FSLCA nodes in GKS top 10 (%+v)", byID["QM1"])
	}
	// GKS answers every query even when FSLCA is thin.
	for _, r := range rows {
		if !r.GKSNonEmpty {
			t.Errorf("%s: empty GKS response", r.ID)
		}
	}
	var buf bytes.Buffer
	PrintFSLCA(&buf, rows)
	if !strings.Contains(buf.String(), "FSLCA") {
		t.Error("print output incomplete")
	}
}

func TestRecursiveDI(t *testing.T) {
	s := suite(t)
	rows, err := s.RecursiveDI(3)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) < 2 {
		t.Fatalf("rounds = %d, want at least 2", len(rows))
	}
	if rows[0].Results != 30 {
		t.Errorf("round 0 results = %d, want 30 (QD1)", rows[0].Results)
	}
	if len(rows[0].Insights) == 0 {
		t.Fatal("round 0 has no insights")
	}
	// Round 1's query derives from round 0's insight values.
	if rows[1].Query == rows[0].Query {
		t.Error("recursion did not advance the query")
	}
	var buf bytes.Buffer
	PrintRecursiveDI(&buf, rows)
	if !strings.Contains(buf.String(), "round") {
		t.Error("print output incomplete")
	}
}
