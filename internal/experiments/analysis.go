package experiments

import (
	"fmt"
	"io"
	"strings"
	"text/tabwriter"
	"time"

	"repro/internal/core"
	"repro/internal/datagen"
	"repro/internal/di"
	"repro/internal/index"
	"repro/internal/lca"
	"repro/internal/metrics"
	"repro/internal/xmltree"
)

// ---------------------------------------------------------------- Table 8

// Table8Row lists the top DI discovered for one paper query at s=1 and
// s=|Q|/2.
type Table8Row struct {
	ID     string
	DI1    []string
	DIHalf []string
}

// Table8 reproduces Table 8: the top-2 insights per query for both s
// settings.
func (s *Suite) Table8() ([]Table8Row, error) {
	const m = 2
	var rows []Table8Row
	for _, pq := range paperQueries() {
		d, err := s.Dataset(pq.Dataset)
		if err != nil {
			return nil, err
		}
		an := di.New(d.Engine)
		q := core.NewQuery(pq.Terms...)
		row := Table8Row{ID: pq.ID}
		r1, err := d.Engine.Search(q, 1)
		if err != nil {
			return nil, err
		}
		for _, in := range an.Discover(r1, m) {
			row.DI1 = append(row.DI1, in.String())
		}
		if q.Len() > 2 {
			half, err := d.Engine.Search(q, q.Len()/2)
			if err != nil {
				return nil, err
			}
			for _, in := range an.Discover(half, m) {
				row.DIHalf = append(row.DIHalf, in.String())
			}
		}
		rows = append(rows, row)
	}
	return rows, nil
}

// PrintTable8 renders Table 8.
func PrintTable8(w io.Writer, rows []Table8Row) {
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "Query\tDI, s=1\tDI, s=|Q|/2")
	for _, r := range rows {
		d1, dh := "NA", "NA"
		if len(r.DI1) > 0 {
			d1 = strings.Join(r.DI1, ", ")
		}
		if len(r.DIHalf) > 0 {
			dh = strings.Join(r.DIHalf, ", ")
		}
		fmt.Fprintf(tw, "%s\t%s\t%s\n", r.ID, d1, dh)
	}
	tw.Flush()
}

// ------------------------------------------------------------ §7.4 refine

// RefinementResult records the QD1 walk-through of §7.4: DI over the QD1
// response suggests a new co-author; refining the query with it surfaces
// many more joint articles.
type RefinementResult struct {
	OriginalQuery    string
	OriginalJoint    int // articles with both original authors (paper: 1)
	SuggestedAuthor  string
	SuggestionInTop  int // position of the suggestion in the DI list (1-based)
	RefinedQuery     string
	RefinedJoint     int // articles with both refined authors (paper: 10)
	SuggestionListed bool
}

// Refinement reproduces §7.4.
func (s *Suite) Refinement() (*RefinementResult, error) {
	d, err := s.Dataset("dblp")
	if err != nil {
		return nil, err
	}
	georgakopoulos, morrison, rusinkiewicz := datagen.RefinementAuthors()
	q := core.NewQuery(georgakopoulos, morrison)
	resp, err := d.Engine.Search(q, 1)
	if err != nil {
		return nil, err
	}
	res := &RefinementResult{OriginalQuery: q.String()}
	for _, r := range resp.Results {
		if r.KeywordCount == 2 {
			res.OriginalJoint++
		}
	}
	an := di.New(d.Engine)
	insights := an.Discover(resp, 10)
	for i, in := range insights {
		if in.Value == rusinkiewicz {
			res.SuggestedAuthor = in.Value
			res.SuggestionInTop = i + 1
			res.SuggestionListed = true
			break
		}
	}
	refined := core.NewQuery(georgakopoulos, rusinkiewicz)
	res.RefinedQuery = refined.String()
	refResp, err := d.Engine.Search(refined, 2)
	if err != nil {
		return nil, err
	}
	res.RefinedJoint = len(refResp.Results)
	return res, nil
}

// PrintRefinement renders the §7.4 walk-through.
func PrintRefinement(w io.Writer, r *RefinementResult) {
	fmt.Fprintf(w, "Section 7.4 query refinement (QD1):\n")
	fmt.Fprintf(w, "  original query  %s -> %d joint article(s)\n", r.OriginalQuery, r.OriginalJoint)
	if r.SuggestionListed {
		fmt.Fprintf(w, "  DI suggests     <author: %s> (position %d)\n", r.SuggestedAuthor, r.SuggestionInTop)
	} else {
		fmt.Fprintf(w, "  DI suggestion   not found\n")
	}
	fmt.Fprintf(w, "  refined query   %s -> %d joint article(s)\n", r.RefinedQuery, r.RefinedJoint)
}

// ------------------------------------------------------------ §7.5 panel

// FeedbackRow is the simulated §7.5 histogram for one query.
type FeedbackRow struct {
	ID      string
	Ratings metrics.Ratings
}

// Feedback simulates the §7.5 crowd study over the QS/QD/QM workload
// (the paper's 12 rated queries): for each query the GKS and SLCA
// responses are scored against the ground truth (the result nodes carrying
// the most query keywords) and a deterministic 40-rater panel maps the
// utility gap onto 1–4 ratings.
func (s *Suite) Feedback() ([]FeedbackRow, error) {
	var rows []FeedbackRow
	seed := int64(7)
	for _, pq := range paperQueries() {
		if pq.Dataset == "interpro" {
			continue // the paper's panel rated QS/QD/QM only
		}
		d, err := s.Dataset(pq.Dataset)
		if err != nil {
			return nil, err
		}
		q := core.NewQuery(pq.Terms...)
		resp, err := d.Engine.Search(q, 1)
		if err != nil {
			return nil, err
		}
		// Graded usefulness: a GKS result is as useful as the fraction of
		// query keywords it carries; every (non-root) SLCA node carries all
		// keywords and grades 1.
		maxKw := 0
		for _, r := range resp.Results {
			if r.KeywordCount > maxKw {
				maxKw = r.KeywordCount
			}
		}
		var gksGrades []float64
		if maxKw > 0 {
			for _, r := range resp.Results {
				gksGrades = append(gksGrades, float64(r.KeywordCount)/float64(maxKw))
			}
		}
		var slcaGrades []float64
		for _, ord := range lca.SLCA(d.Index, d.Engine.PostingLists(q)) {
			if d.Index.DepthOf(ord) > 0 {
				slcaGrades = append(slcaGrades, 1)
			}
		}
		gksU := metrics.GradedUtility(gksGrades, 10)
		slcaU := metrics.GradedUtility(slcaGrades, 10)
		seed++
		rows = append(rows, FeedbackRow{
			ID:      pq.ID,
			Ratings: metrics.Feedback{Raters: 40, Seed: seed}.Rate(gksU, slcaU),
		})
	}
	return rows, nil
}

// PrintFeedback renders the §7.5 histogram plus the headline percentage.
func PrintFeedback(w io.Writer, rows []FeedbackRow) {
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "Query\t1\t2\t3\t4")
	better, total := 0, 0
	for _, r := range rows {
		fmt.Fprintf(tw, "%s\t%d\t%d\t%d\t%d\n", r.ID,
			r.Ratings.Counts[0], r.Ratings.Counts[1], r.Ratings.Counts[2], r.Ratings.Counts[3])
		better += r.Ratings.GKSBetter()
		total += r.Ratings.Total()
	}
	tw.Flush()
	if total > 0 {
		fmt.Fprintf(w, "GKS-better (rating 1 or 2): %d/%d = %.1f%% (paper: 430/480 = 89.6%%)\n",
			better, total, 100*float64(better)/float64(total))
	}
}

// ------------------------------------------------------------ §7.6 hybrid

// HybridResult records the §7.6 hybrid query experiment over the merged
// DBLP + SIGMOD Record repository.
type HybridResult struct {
	Query          string
	Results        int
	DBLPNodes      int // inproceedings results (first two authors)
	SigmodNodes    int // article results (last two authors)
	ArticlesOnTop  bool
	TopLabels      []string
	OnlyTargetHits bool
}

// Hybrid reproduces §7.6: DBLP and SIGMOD Record are merged under a common
// root, with two extra connecting nodes increasing the SIGMOD subtree's
// depth. The 4-author query at s=2 must return exactly the 3 DBLP
// inproceedings (first author pair) and 5 SIGMOD articles (second pair),
// with the 2-author articles ranked above the deeper-but-crowded
// inproceedings — demonstrating depth-independent ranking.
func (s *Suite) Hybrid() (*HybridResult, error) {
	dblp := datagen.PaperDBLP(s.Scale)
	sigmod := datagen.PaperSigmod(s.Scale)
	// Two connecting nodes between the common root and the SIGMOD root.
	wrapped := xmltree.E("archive", xmltree.E("collection", sigmod.Root))
	merged := xmltree.E("repository", dblp.Root, wrapped)
	repo := datagen.Repo(xmltree.NewDocument("hybrid.xml", 0, merged))
	ix, err := index.Build(repo, index.DefaultOptions())
	if err != nil {
		return nil, err
	}
	eng := core.NewEngine(ix)
	q := core.NewQuery(datagen.HybridAuthors()...)
	resp, err := eng.Search(q, 2)
	if err != nil {
		return nil, err
	}
	res := &HybridResult{Query: q.String(), Results: len(resp.Results), OnlyTargetHits: true}
	for i, r := range resp.Results {
		switch r.Label {
		case "inproceedings":
			res.DBLPNodes++
		case "article":
			res.SigmodNodes++
		default:
			res.OnlyTargetHits = false
		}
		if i < 5 {
			res.TopLabels = append(res.TopLabels, r.Label)
		}
	}
	res.ArticlesOnTop = len(res.TopLabels) > 0
	for i := 0; i < len(res.TopLabels) && i < res.SigmodNodes; i++ {
		if res.TopLabels[i] != "article" {
			res.ArticlesOnTop = false
		}
	}
	return res, nil
}

// PrintHybrid renders the §7.6 outcome.
func PrintHybrid(w io.Writer, r *HybridResult) {
	fmt.Fprintf(w, "Section 7.6 hybrid query: %s (s=2)\n", r.Query)
	fmt.Fprintf(w, "  results: %d (paper: 8 — 3 inproceedings + 5 articles)\n", r.Results)
	fmt.Fprintf(w, "  inproceedings: %d, articles: %d, only-targets: %v\n",
		r.DBLPNodes, r.SigmodNodes, r.OnlyTargetHits)
	fmt.Fprintf(w, "  articles ranked above deeper inproceedings: %v (top: %v)\n",
		r.ArticlesOnTop, r.TopLabels)
}

// ------------------------------------------------------- Lemma 3 ablation

// NaiveRow compares the single-pass GKS search with the exponential
// subset-enumeration strawman of Lemma 3.
type NaiveRow struct {
	N          int
	S          int
	GKSTime    time.Duration
	NaiveTime  time.Duration
	GKSNodes   int
	NaiveNodes int
	Subsets    int
}

// NaiveAblation runs both algorithms for n = 2..8 keywords at s = n/2 on
// the SIGMOD analog.
func (s *Suite) NaiveAblation() ([]NaiveRow, error) {
	d, err := s.Dataset("sigmod")
	if err != nil {
		return nil, err
	}
	terms := []string{
		"Anthony I. Wasserman", "Lawrence A. Rowe", "S. Jerrold Kaplan",
		"Robert P. Trueblood", "David J. DeWitt", "Randy H. Katz",
		"David A. Patterson", "Garth A. Gibson",
	}
	var rows []NaiveRow
	for n := 2; n <= len(terms); n++ {
		q := core.NewQuery(terms[:n]...)
		sThresh := n / 2
		if sThresh < 1 {
			sThresh = 1
		}
		gksTime, resp, err := timeSearch(d.Engine, q, sThresh, 3)
		if err != nil {
			return nil, err
		}
		lists := d.Engine.PostingLists(q)
		start := time.Now()
		naive := lca.NaiveGKS(d.Index, lists, sThresh)
		naiveTime := time.Since(start)
		subsets := 0
		for mask := 1; mask < 1<<n; mask++ {
			if popcount(mask) >= sThresh {
				subsets++
			}
		}
		rows = append(rows, NaiveRow{
			N: n, S: sThresh, GKSTime: gksTime, NaiveTime: naiveTime,
			GKSNodes: len(resp.Results), NaiveNodes: len(naive), Subsets: subsets,
		})
	}
	return rows, nil
}

func popcount(x int) int {
	c := 0
	for ; x != 0; x &= x - 1 {
		c++
	}
	return c
}

// PrintNaiveAblation renders the Lemma 3 comparison.
func PrintNaiveAblation(w io.Writer, rows []NaiveRow) {
	fmt.Fprintln(w, "Lemma 3 ablation: single-pass GKS vs subset-enumeration SLCA union")
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "n\ts\tsubsets\tGKS time\tnaive time\tGKS nodes\tnaive nodes")
	for _, r := range rows {
		fmt.Fprintf(tw, "%d\t%d\t%d\t%v\t%v\t%d\t%d\n",
			r.N, r.S, r.Subsets, r.GKSTime.Round(time.Microsecond),
			r.NaiveTime.Round(time.Microsecond), r.GKSNodes, r.NaiveNodes)
	}
	tw.Flush()
}

// -------------------------------------------------------- recursive DI

// RecursiveDIRound summarizes one round of the §2.3 recursion R^r_Q(s).
type RecursiveDIRound struct {
	Round    int
	Query    string
	Results  int
	Insights []string
}

// RecursiveDI runs the recursive DI procedure for the QD1 query: round 0's
// insights become round 1's query, and so on — the mechanism behind the
// paper's "recursive DI may reveal deeper insights".
func (s *Suite) RecursiveDI(rounds int) ([]RecursiveDIRound, error) {
	d, err := s.Dataset("dblp")
	if err != nil {
		return nil, err
	}
	georgakopoulos, morrison, _ := datagen.RefinementAuthors()
	an := di.New(d.Engine)
	all, err := an.DiscoverRecursive(core.NewQuery(georgakopoulos, morrison), 1, 3, rounds)
	if err != nil {
		return nil, err
	}
	var out []RecursiveDIRound
	for i, r := range all {
		row := RecursiveDIRound{Round: i, Query: r.Query.String(), Results: len(r.Response.Results)}
		for _, in := range r.Insights {
			row.Insights = append(row.Insights, in.String())
		}
		out = append(out, row)
	}
	return out, nil
}

// PrintRecursiveDI renders the rounds.
func PrintRecursiveDI(w io.Writer, rows []RecursiveDIRound) {
	fmt.Fprintln(w, "Recursive DI (§2.3): R^r_Q(s) rounds for QD1")
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "round\tquery\tresults\tinsights")
	for _, r := range rows {
		fmt.Fprintf(tw, "%d\t%s\t%d\t%s\n", r.Round, r.Query, r.Results, strings.Join(r.Insights, ", "))
	}
	tw.Flush()
}
