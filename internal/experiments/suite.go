// Package experiments reproduces every table and figure of the paper's
// evaluation (Agarwal et al., EDBT 2016, §7) on the synthetic dataset
// analogs of internal/datagen. Each experiment returns typed rows plus a
// tabwriter-based printer so cmd/gksbench and the root benchmark suite can
// regenerate the paper's output. EXPERIMENTS.md records paper-vs-measured
// numbers for each experiment.
package experiments

import (
	"fmt"
	"time"

	"repro/internal/core"
	"repro/internal/datagen"
	"repro/internal/index"
	"repro/internal/xmltree"
)

// Suite lazily builds and caches the datasets the experiments share.
type Suite struct {
	// Scale multiplies dataset sizes (1 = test scale, larger for benches).
	Scale int

	cache map[string]*Dataset
}

// Dataset bundles a generated repository with its index and engine, plus
// the measurements Table 4 reports.
type Dataset struct {
	Name      string
	Repo      *xmltree.Repository
	Index     *index.Index
	Engine    *core.Engine
	DataBytes int64
	BuildTime time.Duration
}

// NewSuite creates a suite at the given scale (values < 1 become 1).
func NewSuite(scale int) *Suite {
	if scale < 1 {
		scale = 1
	}
	return &Suite{Scale: scale, cache: make(map[string]*Dataset)}
}

// DatasetNames lists the analogs in the order of the paper's Table 4.
func DatasetNames() []string {
	return []string{
		"sigmod", "mondial", "plays", "treebank", "swissprot", "protein", "dblp",
		"nasa", "interpro", "xmark",
	}
}

// Dataset builds (or returns the cached) named dataset. Valid names are
// those in DatasetNames.
func (s *Suite) Dataset(name string) (*Dataset, error) {
	if d, ok := s.cache[name]; ok {
		return d, nil
	}
	repo, err := s.generate(name)
	if err != nil {
		return nil, err
	}
	var dataBytes int64
	for _, doc := range repo.Docs {
		n, err := xmltree.XMLSize(doc)
		if err != nil {
			return nil, fmt.Errorf("experiments: sizing %s: %w", name, err)
		}
		dataBytes += n
	}
	start := time.Now()
	ix, err := index.Build(repo, index.DefaultOptions())
	if err != nil {
		return nil, fmt.Errorf("experiments: indexing %s: %w", name, err)
	}
	d := &Dataset{
		Name:      name,
		Repo:      repo,
		Index:     ix,
		Engine:    core.NewEngine(ix),
		DataBytes: dataBytes,
		BuildTime: time.Since(start),
	}
	s.cache[name] = d
	return d, nil
}

func (s *Suite) generate(name string) (*xmltree.Repository, error) {
	cfg := datagen.Config{Seed: 42, Scale: s.Scale}
	switch name {
	case "sigmod":
		return datagen.Repo(datagen.PaperSigmod(s.Scale)), nil
	case "dblp":
		return datagen.Repo(datagen.PaperDBLP(s.Scale)), nil
	case "mondial":
		return datagen.Repo(datagen.Mondial(cfg)), nil
	case "plays":
		return datagen.Plays(cfg), nil
	case "treebank":
		return datagen.Repo(datagen.TreeBank(cfg)), nil
	case "swissprot":
		return datagen.Repo(datagen.SwissProt(cfg)), nil
	case "protein":
		return datagen.Repo(datagen.ProteinSequence(cfg)), nil
	case "nasa":
		return datagen.Repo(datagen.NASA(cfg)), nil
	case "interpro":
		return datagen.Repo(datagen.InterPro(cfg)), nil
	case "xmark":
		return datagen.Repo(datagen.XMark(cfg)), nil
	}
	return nil, fmt.Errorf("experiments: unknown dataset %q", name)
}

// paperQueries exposes the Table 6 workload to the experiment files.
func paperQueries() []datagen.PaperQuery { return datagen.PaperQueries() }

// timeSearch runs the query reps times and returns the fastest wall-clock
// duration together with the last response — the response-time measurement
// used by the Figure 8–10 experiments.
func timeSearch(eng *core.Engine, q core.Query, sThreshold, reps int) (time.Duration, *core.Response, error) {
	if reps < 1 {
		reps = 1
	}
	var best time.Duration
	var resp *core.Response
	for i := 0; i < reps; i++ {
		start := time.Now()
		r, err := eng.Search(q, sThreshold)
		el := time.Since(start)
		if err != nil {
			return 0, nil, err
		}
		if resp == nil || el < best {
			best, resp = el, r
		}
	}
	return best, resp, nil
}
