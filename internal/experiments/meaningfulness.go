package experiments

import (
	"fmt"
	"io"
	"text/tabwriter"

	"repro/internal/core"
	"repro/internal/lca"
	"repro/internal/metrics"
)

// MeaningfulnessRow quantifies §1.2's claim — "the meaningfulness of the
// results of a search query is defined by their recall and precision...
// recall of GKS is likely to be high... the precision of the GKS system
// will be high if the most relevant XML nodes are ranked higher" — for one
// bibliographic paper query. The relevant set is the ground truth the
// generators plant: the nodes carrying the largest number of query
// keywords (the user's joint-article intent).
type MeaningfulnessRow struct {
	ID             string
	Relevant       int
	GKSRecall      float64
	GKSPrecisionAt float64 // precision@|relevant| of the ranked response
	SLCARecall     float64
	SLCAPrecision  float64
}

// Meaningfulness measures recall and rank-sensitive precision for GKS and
// the SLCA baseline over the exact bibliographic workload.
func (s *Suite) Meaningfulness() ([]MeaningfulnessRow, error) {
	var rows []MeaningfulnessRow
	for _, pq := range paperQueries() {
		if !pq.Exact {
			continue
		}
		d, err := s.Dataset(pq.Dataset)
		if err != nil {
			return nil, err
		}
		q := core.NewQuery(pq.Terms...)
		resp, err := d.Engine.Search(q, 1)
		if err != nil {
			return nil, err
		}
		maxKw := 0
		for _, r := range resp.Results {
			if r.KeywordCount > maxKw {
				maxKw = r.KeywordCount
			}
		}
		relevant := make(map[int32]bool)
		for _, r := range resp.Results {
			if r.KeywordCount == maxKw {
				relevant[r.Ord] = true
			}
		}
		row := MeaningfulnessRow{ID: pq.ID, Relevant: len(relevant)}

		// GKS: recall over the full response; precision over the top
		// |relevant| ranked slots (precision@R).
		retrieved := make(map[int32]bool)
		topR := make(map[int32]bool)
		for i, r := range resp.Results {
			retrieved[r.Ord] = true
			if i < len(relevant) {
				topR[r.Ord] = true
			}
		}
		_, row.GKSRecall = metrics.PrecisionRecall(retrieved, relevant)
		row.GKSPrecisionAt, _ = metrics.PrecisionRecall(topR, relevant)

		// SLCA: the baseline's whole answer (roots excluded, §7.3).
		slcaSet := make(map[int32]bool)
		for _, ord := range lca.SLCA(d.Index, d.Engine.PostingLists(q)) {
			if d.Index.DepthOf(ord) > 0 {
				slcaSet[ord] = true
			}
		}
		row.SLCAPrecision, row.SLCARecall = metrics.PrecisionRecall(slcaSet, relevant)
		rows = append(rows, row)
	}
	return rows, nil
}

// PrintMeaningfulness renders the §1.2 precision/recall comparison.
func PrintMeaningfulness(w io.Writer, rows []MeaningfulnessRow) {
	fmt.Fprintln(w, "Meaningfulness (§1.2): recall and precision@R against planted joint-article intent")
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "Query\trelevant\tGKS recall\tGKS prec@R\tSLCA recall\tSLCA precision")
	for _, r := range rows {
		fmt.Fprintf(tw, "%s\t%d\t%.2f\t%.2f\t%.2f\t%.2f\n",
			r.ID, r.Relevant, r.GKSRecall, r.GKSPrecisionAt, r.SLCARecall, r.SLCAPrecision)
	}
	tw.Flush()
}
