package xpath

import (
	"testing"

	"repro/internal/xmltree"
)

func doc(t *testing.T) *xmltree.Document {
	t.Helper()
	return xmltree.BuildFigure2a()
}

func values(nodes []*xmltree.Node) []string {
	out := make([]string, len(nodes))
	for i, n := range nodes {
		out[i] = n.Value()
	}
	return out
}

func labels(nodes []*xmltree.Node) []string {
	out := make([]string, len(nodes))
	for i, n := range nodes {
		out[i] = n.Label
	}
	return out
}

func TestAbsoluteChildPath(t *testing.T) {
	got := MustCompile("/Dept/Area/Courses/Course").Evaluate(doc(t))
	if len(got) != 4 {
		t.Fatalf("courses = %d, want 4", len(got))
	}
	for _, n := range got {
		if n.Label != "Course" {
			t.Errorf("label = %s", n.Label)
		}
	}
}

func TestDescendantAxis(t *testing.T) {
	got := MustCompile("//Student").Evaluate(doc(t))
	if len(got) != 12 {
		t.Fatalf("students = %d, want 12", len(got))
	}
	got = MustCompile("//Course//Student").Evaluate(doc(t))
	if len(got) != 12 {
		t.Fatalf("course students = %d, want 12", len(got))
	}
}

func TestWildcard(t *testing.T) {
	got := MustCompile("/Dept/*").Evaluate(doc(t))
	if len(got) != 3 {
		t.Fatalf("children = %v", labels(got))
	}
}

func TestValuePredicate(t *testing.T) {
	// The paper's "perfect query" as XPath: students of the Data Mining
	// course — this is what GKS spares the user from writing.
	got := MustCompile(`//Course[Name="Data Mining"]/Students/Student`).Evaluate(doc(t))
	want := []string{"Karen", "Mike", "John"}
	if len(got) != len(want) {
		t.Fatalf("students = %v", values(got))
	}
	for i, w := range want {
		if got[i].Value() != w {
			t.Errorf("student %d = %q, want %q", i, got[i].Value(), w)
		}
	}
}

func TestSelfValuePredicate(t *testing.T) {
	got := MustCompile(`//Student[.="Karen"]`).Evaluate(doc(t))
	if len(got) != 3 {
		t.Fatalf("karens = %d, want 3", len(got))
	}
}

func TestPositionalPredicate(t *testing.T) {
	got := MustCompile(`/Dept/Area/Courses/Course[2]`).Evaluate(doc(t))
	if len(got) != 1 || got[0].Children[0].Value() != "Algorithms" {
		t.Fatalf("second course = %v", values(got))
	}
}

func TestExistencePredicate(t *testing.T) {
	got := MustCompile(`//Course[Students]`).Evaluate(doc(t))
	if len(got) != 4 {
		t.Fatalf("courses with students = %d", len(got))
	}
	got = MustCompile(`//Course[Instructor]`).Evaluate(doc(t))
	if len(got) != 0 {
		t.Fatalf("courses with instructors = %d, want 0", len(got))
	}
}

func TestNestedPredicatePath(t *testing.T) {
	got := MustCompile(`//Area[Courses/Course/Name="AI"]`).Evaluate(doc(t))
	if len(got) != 1 {
		t.Fatalf("areas = %d, want 1", len(got))
	}
	if got[0].Children[0].Value() != "Databases" {
		t.Errorf("area = %q", got[0].Children[0].Value())
	}
}

func TestDocumentOrderAndDedup(t *testing.T) {
	got := MustCompile(`//Student`).Evaluate(doc(t))
	for i := 1; i < len(got); i++ {
		if got[i-1] == got[i] {
			t.Fatal("duplicate node")
		}
	}
	// First student in document order is Karen of Data Mining.
	if got[0].ID.String() != "0.0.1.1.0.1.0" {
		t.Errorf("first student = %s", got[0].ID)
	}
}

func TestEvaluateRepo(t *testing.T) {
	var repo xmltree.Repository
	repo.Add(xmltree.BuildFigure2a())
	repo.Add(xmltree.BuildFigure2a())
	got := MustCompile(`//Course`).EvaluateRepo(&repo)
	if len(got) != 8 {
		t.Fatalf("courses over 2 docs = %d, want 8", len(got))
	}
}

func TestNoMatches(t *testing.T) {
	if got := MustCompile(`/Nope`).Evaluate(doc(t)); got != nil {
		t.Errorf("got %v", labels(got))
	}
	if got := MustCompile(`//Student[.="Nobody"]`).Evaluate(doc(t)); got != nil {
		t.Errorf("got %v", labels(got))
	}
	if got := MustCompile(`/Dept`).Evaluate(nil); got != nil {
		t.Errorf("nil doc: %v", got)
	}
}

func TestCompileErrors(t *testing.T) {
	bad := []string{
		"",
		"Dept",
		"/",
		"/Dept[",
		"/Dept[Name",
		`/Dept[Name="x`,
		"/Dept[.]",
		"/Dept[0]x",
		"/Dept/",
		"/Dept[*]",
	}
	for _, src := range bad {
		if _, err := Compile(src); err == nil {
			t.Errorf("Compile(%q): expected error", src)
		}
	}
}

func TestSingleQuotes(t *testing.T) {
	got := MustCompile(`//Course[Name='AI']`).Evaluate(doc(t))
	if len(got) != 1 {
		t.Fatalf("AI courses = %d", len(got))
	}
}

func TestStringRoundTrip(t *testing.T) {
	src := `//Course[Name="Data Mining"]/Students/Student`
	if got := MustCompile(src).String(); got != src {
		t.Errorf("String = %q", got)
	}
}
