// Package xpath implements a small XPath subset over xmltree documents —
// the structured-query counterpoint to GKS. The paper's opening motivation
// is "to relieve users from writing difficult XQueries since otherwise
// users are required to know the complex XML schema"; this evaluator is
// what such a user would have to write, and the examples and tests use it
// to cross-check keyword-search results against exact structural queries.
//
// Supported grammar:
//
//	path     := ('/' | '//') step (('/' | '//') step)*
//	step     := (name | '*') predicate*
//	predicate:= '[' integer ']'                     positional (1-based)
//	          | '[' rel ']'                         existence of a child path
//	          | '[' rel '=' '"' value '"' ']'       child-path value equality
//	          | '[' '.' '=' '"' value '"' ']'       own-value equality
//	rel      := name ('/' name)*
//
// Examples:
//
//	/Dept/Area/Courses/Course
//	//Course[Name="Data Mining"]/Students/Student
//	//Student[.="Karen"]
//	//Course[2]
package xpath

import (
	"fmt"
	"strings"

	"repro/internal/xmltree"
)

// Expr is a compiled XPath-subset expression.
type Expr struct {
	source string
	steps  []step
}

type axis int

const (
	axisChild axis = iota
	axisDescendant
)

type step struct {
	axis  axis
	name  string // "*" matches any element
	preds []predicate
}

type predicate struct {
	position int      // >0 for positional predicates
	path     []string // child path for existence/equality
	self     bool     // [.="v"]
	value    string   // comparison value; "" with hasValue=false means existence
	hasValue bool
}

// Compile parses an expression.
func Compile(src string) (*Expr, error) {
	p := &parser{src: src}
	steps, err := p.parse()
	if err != nil {
		return nil, fmt.Errorf("xpath: %s: %w", src, err)
	}
	return &Expr{source: src, steps: steps}, nil
}

// MustCompile is Compile for tests and static expressions.
func MustCompile(src string) *Expr {
	e, err := Compile(src)
	if err != nil {
		panic(err)
	}
	return e
}

// String returns the source expression.
func (e *Expr) String() string { return e.source }

// Evaluate returns the nodes selected by the expression from the document
// root, in document order, without duplicates.
func (e *Expr) Evaluate(doc *xmltree.Document) []*xmltree.Node {
	if doc == nil || doc.Root == nil {
		return nil
	}
	// A virtual root above the document element makes /RootName behave
	// like standard XPath.
	virtual := &xmltree.Node{Kind: xmltree.Element, Children: []*xmltree.Node{doc.Root}}
	current := []*xmltree.Node{virtual}
	for _, st := range e.steps {
		var next []*xmltree.Node
		seen := map[*xmltree.Node]bool{}
		for _, n := range current {
			var matched []*xmltree.Node
			switch st.axis {
			case axisChild:
				for _, c := range n.Children {
					if elementMatches(c, st.name) {
						matched = append(matched, c)
					}
				}
			case axisDescendant:
				collectDescendants(n, st.name, &matched)
			}
			matched = applyPredicates(matched, st.preds)
			for _, m := range matched {
				if !seen[m] {
					seen[m] = true
					next = append(next, m)
				}
			}
		}
		current = next
		if len(current) == 0 {
			return nil
		}
	}
	return current
}

// EvaluateRepo evaluates the expression over every document of a
// repository, concatenating results in repository order.
func (e *Expr) EvaluateRepo(repo *xmltree.Repository) []*xmltree.Node {
	var out []*xmltree.Node
	for _, doc := range repo.Docs {
		out = append(out, e.Evaluate(doc)...)
	}
	return out
}

func elementMatches(n *xmltree.Node, name string) bool {
	return n.IsElement() && (name == "*" || n.Label == name)
}

func collectDescendants(n *xmltree.Node, name string, out *[]*xmltree.Node) {
	for _, c := range n.Children {
		if elementMatches(c, name) {
			*out = append(*out, c)
		}
		if c.IsElement() {
			collectDescendants(c, name, out)
		}
	}
}

func applyPredicates(nodes []*xmltree.Node, preds []predicate) []*xmltree.Node {
	for _, p := range preds {
		var kept []*xmltree.Node
		for i, n := range nodes {
			if predicateHolds(n, i, p) {
				kept = append(kept, n)
			}
		}
		nodes = kept
	}
	return nodes
}

func predicateHolds(n *xmltree.Node, pos int, p predicate) bool {
	if p.position > 0 {
		return pos+1 == p.position
	}
	if p.self {
		return n.Value() == p.value
	}
	// Resolve the child path; any match suffices.
	targets := []*xmltree.Node{n}
	for _, label := range p.path {
		var next []*xmltree.Node
		for _, t := range targets {
			for _, c := range t.Children {
				if elementMatches(c, label) {
					next = append(next, c)
				}
			}
		}
		targets = next
	}
	if !p.hasValue {
		return len(targets) > 0
	}
	for _, t := range targets {
		if t.Value() == p.value {
			return true
		}
	}
	return false
}

// ------------------------------------------------------------------ parser

type parser struct {
	src string
	pos int
}

func (p *parser) parse() ([]step, error) {
	var steps []step
	if p.pos >= len(p.src) || p.src[p.pos] != '/' {
		return nil, fmt.Errorf("expression must start with '/' or '//'")
	}
	for p.pos < len(p.src) {
		ax := axisChild
		if !p.consume("/") {
			return nil, fmt.Errorf("expected '/' at offset %d", p.pos)
		}
		if p.consume("/") {
			ax = axisDescendant
		}
		name := p.readName()
		if name == "" {
			return nil, fmt.Errorf("missing element name at offset %d", p.pos)
		}
		st := step{axis: ax, name: name}
		for p.pos < len(p.src) && p.src[p.pos] == '[' {
			pred, err := p.readPredicate()
			if err != nil {
				return nil, err
			}
			st.preds = append(st.preds, pred)
		}
		steps = append(steps, st)
	}
	if len(steps) == 0 {
		return nil, fmt.Errorf("empty expression")
	}
	return steps, nil
}

func (p *parser) consume(tok string) bool {
	if strings.HasPrefix(p.src[p.pos:], tok) {
		p.pos += len(tok)
		return true
	}
	return false
}

func nameChar(c byte) bool {
	return c == '_' || c == '-' ||
		c >= 'a' && c <= 'z' || c >= 'A' && c <= 'Z' || c >= '0' && c <= '9'
}

func (p *parser) readName() string {
	if p.pos < len(p.src) && p.src[p.pos] == '*' {
		p.pos++
		return "*"
	}
	start := p.pos
	for p.pos < len(p.src) && nameChar(p.src[p.pos]) {
		p.pos++
	}
	return p.src[start:p.pos]
}

func (p *parser) readPredicate() (predicate, error) {
	var pred predicate
	if !p.consume("[") {
		return pred, fmt.Errorf("expected '[' at offset %d", p.pos)
	}
	// Positional predicate.
	if p.pos < len(p.src) && p.src[p.pos] >= '1' && p.src[p.pos] <= '9' {
		n := 0
		for p.pos < len(p.src) && p.src[p.pos] >= '0' && p.src[p.pos] <= '9' {
			n = n*10 + int(p.src[p.pos]-'0')
			p.pos++
		}
		if !p.consume("]") {
			return pred, fmt.Errorf("unterminated positional predicate")
		}
		pred.position = n
		return pred, nil
	}
	// Self-value predicate.
	if p.consume(".") {
		pred.self = true
	} else {
		for {
			name := p.readName()
			if name == "" || name == "*" {
				return pred, fmt.Errorf("bad predicate path at offset %d", p.pos)
			}
			pred.path = append(pred.path, name)
			if !p.consume("/") {
				break
			}
		}
	}
	if p.consume("=") {
		val, err := p.readQuoted()
		if err != nil {
			return pred, err
		}
		pred.value = val
		pred.hasValue = true
	} else if pred.self {
		return pred, fmt.Errorf("'.' predicate requires a comparison")
	}
	if !p.consume("]") {
		return pred, fmt.Errorf("unterminated predicate at offset %d", p.pos)
	}
	return pred, nil
}

func (p *parser) readQuoted() (string, error) {
	var quote byte
	if p.pos < len(p.src) && (p.src[p.pos] == '"' || p.src[p.pos] == '\'') {
		quote = p.src[p.pos]
		p.pos++
	} else {
		return "", fmt.Errorf("expected quoted value at offset %d", p.pos)
	}
	start := p.pos
	for p.pos < len(p.src) && p.src[p.pos] != quote {
		p.pos++
	}
	if p.pos >= len(p.src) {
		return "", fmt.Errorf("unterminated string")
	}
	val := p.src[start:p.pos]
	p.pos++
	return val, nil
}
