package wal

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"sync"
	"testing"
)

// collect replays the log into a slice.
func collect(t *testing.T, l *Log) []Record {
	t.Helper()
	var out []Record
	if err := l.Replay(func(r Record) error {
		out = append(out, r)
		return nil
	}); err != nil {
		t.Fatalf("replay: %v", err)
	}
	return out
}

// segmentFiles lists the wal segment files in dir, sorted.
func segmentFiles(t *testing.T, dir string) []string {
	t.Helper()
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	var names []string
	for _, e := range entries {
		if segmentNameRE.MatchString(e.Name()) {
			names = append(names, e.Name())
		}
	}
	sort.Strings(names)
	return names
}

func TestAppendReplayRoundTrip(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(dir, Options{SegmentBytes: 128}) // force rotations
	if err != nil {
		t.Fatal(err)
	}
	want := make([]Record, 0, 20)
	for i := 0; i < 20; i++ {
		op, doc := OpUpsert, fmt.Sprintf("<doc><n>%d</n></doc>", i)
		if i%5 == 4 {
			op, doc = OpDelete, ""
		}
		name := fmt.Sprintf("doc-%d", i%7)
		lsn, err := l.Append(op, name, doc)
		if err != nil {
			t.Fatalf("append %d: %v", i, err)
		}
		if lsn != uint64(i+1) {
			t.Fatalf("append %d: lsn %d, want %d", i, lsn, i+1)
		}
		want = append(want, Record{LSN: lsn, Op: op, Name: name, Doc: doc})
	}
	if got := l.DurableLSN(); got != 20 {
		t.Fatalf("durable lsn %d, want 20", got)
	}
	if n := len(segmentFiles(t, dir)); n < 2 {
		t.Fatalf("expected rotation to produce multiple segments, got %d", n)
	}
	check := func(label string, l *Log) {
		t.Helper()
		got := collect(t, l)
		if len(got) != len(want) {
			t.Fatalf("%s: %d records, want %d", label, len(got), len(want))
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("%s: record %d = %+v, want %+v", label, i, got[i], want[i])
			}
		}
	}
	check("live", l)
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	check("closed", l)

	l2, err := Open(dir, Options{SegmentBytes: 128})
	if err != nil {
		t.Fatal(err)
	}
	defer l2.Close()
	check("reopened", l2)
	if got := l2.LastLSN(); got != 20 {
		t.Fatalf("reopened last lsn %d, want 20", got)
	}
	// Appends continue the sequence.
	if lsn, err := l2.Append(OpUpsert, "after", "<x/>"); err != nil || lsn != 21 {
		t.Fatalf("append after reopen: lsn %d, err %v", lsn, err)
	}
}

func TestTornTailDroppedOnReplay(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		if _, err := l.Append(OpUpsert, fmt.Sprintf("d%d", i), "<x/>"); err != nil {
			t.Fatal(err)
		}
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	// Simulate a crash mid-append: a partial frame at the tail of the
	// final segment, cut inside both the header and the body.
	names := segmentFiles(t, dir)
	path := filepath.Join(dir, names[len(names)-1])
	extra := encodeFrame(Record{LSN: 4, Op: OpUpsert, Name: "torn", Doc: "<torn/>"})
	for _, cut := range []int{3, frameHeaderSize + 2, len(extra) - 1} {
		data, err := os.ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, append(data, extra[:cut]...), 0o644); err != nil {
			t.Fatal(err)
		}
		l2, err := Open(dir, Options{})
		if err != nil {
			t.Fatalf("cut %d: open: %v", cut, err)
		}
		recs := collect(t, l2)
		if len(recs) != 3 {
			t.Fatalf("cut %d: %d records survive, want 3", cut, len(recs))
		}
		if got := l2.LastLSN(); got != 3 {
			t.Fatalf("cut %d: last lsn %d, want 3", cut, got)
		}
		// The dropped LSN is reused by the next append — the torn record
		// was never acknowledged, so the sequence may not skip it.
		if lsn, err := l2.Append(OpUpsert, "next", "<n/>"); err != nil || lsn != 4 {
			t.Fatalf("cut %d: append: lsn %d, err %v", cut, lsn, err)
		}
		if recs := collect(t, l2); len(recs) != 4 {
			t.Fatalf("cut %d: %d records after append, want 4", cut, len(recs))
		}
		l2.Close()
		if err := os.WriteFile(path, data, 0o644); err != nil { // restore
			t.Fatal(err)
		}
		// Remove the segment the append above created.
		for _, n := range segmentFiles(t, dir) {
			if n != names[0] && !contains(names, n) {
				os.Remove(filepath.Join(dir, n))
			}
		}
	}
}

func contains(xs []string, x string) bool {
	for _, v := range xs {
		if v == x {
			return true
		}
	}
	return false
}

func TestCorruptionDetected(t *testing.T) {
	build := func(t *testing.T, segBytes int64) string {
		dir := t.TempDir()
		l, err := Open(dir, Options{SegmentBytes: segBytes})
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < 8; i++ {
			if _, err := l.Append(OpUpsert, fmt.Sprintf("d%d", i), "<payload>some text</payload>"); err != nil {
				t.Fatal(err)
			}
		}
		if err := l.Close(); err != nil {
			t.Fatal(err)
		}
		return dir
	}

	t.Run("bit flip in record body", func(t *testing.T) {
		dir := build(t, 0)
		names := segmentFiles(t, dir)
		path := filepath.Join(dir, names[0])
		data, _ := os.ReadFile(path)
		data[len(data)/2] ^= 0x40
		os.WriteFile(path, data, 0o644)
		if _, err := Open(dir, Options{}); !errors.Is(err, ErrCorrupt) {
			t.Fatalf("open after bit flip: %v, want ErrCorrupt", err)
		}
	})

	t.Run("torn tail on a non-final segment", func(t *testing.T) {
		dir := build(t, 64) // rotations: several segments
		names := segmentFiles(t, dir)
		if len(names) < 2 {
			t.Fatalf("need multiple segments, got %d", len(names))
		}
		path := filepath.Join(dir, names[0])
		data, _ := os.ReadFile(path)
		os.WriteFile(path, data[:len(data)-3], 0o644)
		if _, err := Open(dir, Options{}); !errors.Is(err, ErrCorrupt) {
			t.Fatalf("open after mid-log truncation: %v, want ErrCorrupt", err)
		}
	})

	t.Run("missing segment breaks the sequence", func(t *testing.T) {
		dir := build(t, 64)
		names := segmentFiles(t, dir)
		if len(names) < 3 {
			t.Fatalf("need at least 3 segments, got %d", len(names))
		}
		os.Remove(filepath.Join(dir, names[1]))
		if _, err := Open(dir, Options{}); !errors.Is(err, ErrCorrupt) {
			t.Fatalf("open with a removed interior segment: %v, want ErrCorrupt", err)
		}
	})

	t.Run("bad magic", func(t *testing.T) {
		dir := build(t, 0)
		names := segmentFiles(t, dir)
		path := filepath.Join(dir, names[0])
		data, _ := os.ReadFile(path)
		copy(data, "BOGUS")
		os.WriteFile(path, data, 0o644)
		if _, err := Open(dir, Options{}); !errors.Is(err, ErrCorrupt) {
			t.Fatalf("open with bad magic: %v, want ErrCorrupt", err)
		}
	})
}

func TestTruncateThrough(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(dir, Options{SegmentBytes: 96})
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i <= 12; i++ {
		if _, err := l.Append(OpUpsert, fmt.Sprintf("d%d", i), "<doc>words here</doc>"); err != nil {
			t.Fatal(err)
		}
	}
	segsBefore, _ := l.SegmentStats()
	if segsBefore < 3 {
		t.Fatalf("need at least 3 segments, got %d", segsBefore)
	}
	// Partial truncate: only whole segments at or below lsn 6 go.
	removed, err := l.TruncateThrough(6)
	if err != nil {
		t.Fatal(err)
	}
	if removed == 0 {
		t.Fatal("partial truncate removed nothing")
	}
	recs := collect(t, l)
	if len(recs) == 0 || recs[len(recs)-1].LSN != 12 {
		t.Fatalf("replay after partial truncate ends at %v, want lsn 12", recs)
	}
	// Survivors are a contiguous suffix.
	for i := 1; i < len(recs); i++ {
		if recs[i].LSN != recs[i-1].LSN+1 {
			t.Fatalf("gap in surviving records: %d then %d", recs[i-1].LSN, recs[i].LSN)
		}
	}
	if recs[0].LSN > 7 {
		t.Fatalf("truncate removed uncovered records: replay starts at %d, checkpoint was 6", recs[0].LSN)
	}
	// Full truncate: everything including the active segment goes.
	if _, err := l.TruncateThrough(l.LastLSN()); err != nil {
		t.Fatal(err)
	}
	if recs := collect(t, l); len(recs) != 0 {
		t.Fatalf("%d records survive a full truncate, want 0", len(recs))
	}
	if names := segmentFiles(t, dir); len(names) != 0 {
		t.Fatalf("segment files survive a full truncate: %v", names)
	}
	// The log keeps appending after a full truncate, LSNs still rising.
	lsn, err := l.Append(OpUpsert, "after", "<x/>")
	if err != nil {
		t.Fatal(err)
	}
	if lsn != 13 {
		t.Fatalf("append after full truncate: lsn %d, want 13", lsn)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	l2, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer l2.Close()
	recs = collect(t, l2)
	if len(recs) != 1 || recs[0].LSN != 13 {
		t.Fatalf("reopen after truncate: %+v, want single record at lsn 13", recs)
	}
}

func TestEmptyTailSegmentRemovedOnOpen(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := l.Append(OpUpsert, "a", "<x/>"); err != nil {
		t.Fatal(err)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	// Crash between segment creation and the first record: a file holding
	// only the magic (or less).
	for _, content := range []string{segmentMagic, "GK"} {
		stub := filepath.Join(dir, segmentName(2))
		if err := os.WriteFile(stub, []byte(content), 0o644); err != nil {
			t.Fatal(err)
		}
		l2, err := Open(dir, Options{})
		if err != nil {
			t.Fatalf("open with empty tail segment (%q): %v", content, err)
		}
		if _, err := os.Stat(stub); !errors.Is(err, os.ErrNotExist) {
			t.Fatalf("empty tail segment %q not removed", content)
		}
		// Its LSN is free for reuse by the next append.
		if lsn, err := l2.Append(OpUpsert, "b", "<y/>"); err != nil || lsn != 2 {
			t.Fatalf("append after stub removal: lsn %d, err %v", lsn, err)
		}
		if _, err := l2.TruncateThrough(2); err != nil {
			t.Fatal(err)
		}
		if _, err := l2.Append(OpUpsert, "c", "<z/>"); err != nil {
			t.Fatal(err)
		}
		l2.Close()
		// Reset for the next variant: keep only the first segment, and
		// drop the floor sidecar the TruncateThrough above wrote — it
		// records that lsn 2 left the log, which would (correctly) block
		// the reuse this test asserts.
		for _, n := range segmentFiles(t, dir) {
			if n != segmentName(1) {
				os.Remove(filepath.Join(dir, n))
			}
		}
		os.Remove(filepath.Join(dir, floorFileName))
	}
}

func TestClosedLogRejectsAppends(t *testing.T) {
	l, err := Open(t.TempDir(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := l.Append(OpUpsert, "a", "<x/>"); err != nil {
		t.Fatal(err)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := l.Enqueue(OpUpsert, "b", "<y/>"); !errors.Is(err, ErrClosed) {
		t.Fatalf("enqueue on closed log: %v, want ErrClosed", err)
	}
	if err := l.Close(); err != nil {
		t.Fatalf("double close: %v", err)
	}
	if _, err := l.Enqueue(Op(9), "b", "<y/>"); err == nil {
		t.Fatal("invalid op accepted")
	}
}

// TestGroupCommitConcurrency drives many writers through the
// Enqueue/WaitDurable pair under the race detector: every record must
// come back durable, the LSN sequence must be dense, and a replay must
// see exactly the appended set. Run with -race.
func TestGroupCommitConcurrency(t *testing.T) {
	const writers, perWriter = 16, 25
	l, err := Open(t.TempDir(), Options{SegmentBytes: 4096})
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	var wg sync.WaitGroup
	lsnCh := make(chan uint64, writers*perWriter)
	errCh := make(chan error, writers)
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWriter; i++ {
				lsn, err := l.Append(OpUpsert, fmt.Sprintf("w%d-%d", w, i), "<doc>concurrent</doc>")
				if err != nil {
					errCh <- err
					return
				}
				if got := l.DurableLSN(); got < lsn {
					errCh <- fmt.Errorf("acknowledged lsn %d above durable watermark %d", lsn, got)
					return
				}
				lsnCh <- lsn
			}
		}(w)
	}
	wg.Wait()
	close(errCh)
	close(lsnCh)
	for err := range errCh {
		t.Fatal(err)
	}
	seen := make(map[uint64]bool)
	for lsn := range lsnCh {
		if seen[lsn] {
			t.Fatalf("lsn %d assigned twice", lsn)
		}
		seen[lsn] = true
	}
	if len(seen) != writers*perWriter {
		t.Fatalf("%d lsns, want %d", len(seen), writers*perWriter)
	}
	for lsn := uint64(1); lsn <= uint64(writers*perWriter); lsn++ {
		if !seen[lsn] {
			t.Fatalf("lsn %d missing: sequence not dense", lsn)
		}
	}
	if recs := collect(t, l); len(recs) != writers*perWriter {
		t.Fatalf("replay sees %d records, want %d", len(recs), writers*perWriter)
	}
}
