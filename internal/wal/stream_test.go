package wal

import (
	"bufio"
	"bytes"
	"context"
	"errors"
	"fmt"
	"io"
	"sync"
	"testing"
	"time"
)

func mustAppend(t *testing.T, l *Log, op Op, name, doc string) uint64 {
	t.Helper()
	lsn, err := l.Append(op, name, doc)
	if err != nil {
		t.Fatalf("append %s: %v", name, err)
	}
	return lsn
}

func TestReadAfterBatchesInOrder(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(dir, Options{SegmentBytes: 128}) // force rotations
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	const n = 12
	for i := 1; i <= n; i++ {
		mustAppend(t, l, OpUpsert, fmt.Sprintf("d%d", i), fmt.Sprintf("<x>%d</x>", i))
	}
	// Walk the log in batches of 5 from every starting point.
	for after := uint64(0); after <= n; after++ {
		pos := after
		for {
			recs, err := l.ReadAfter(pos, 5)
			if err != nil {
				t.Fatalf("ReadAfter(%d): %v", pos, err)
			}
			if len(recs) == 0 {
				break
			}
			if len(recs) > 5 {
				t.Fatalf("ReadAfter(%d): %d records, want <= 5", pos, len(recs))
			}
			for _, r := range recs {
				if r.LSN != pos+1 {
					t.Fatalf("ReadAfter(%d): got lsn %d, want %d", pos, r.LSN, pos+1)
				}
				if want := fmt.Sprintf("d%d", r.LSN); r.Name != want {
					t.Fatalf("lsn %d: name %q, want %q", r.LSN, r.Name, want)
				}
				pos = r.LSN
			}
		}
		if pos != n {
			t.Fatalf("walk from %d ended at %d, want %d", after, pos, n)
		}
	}
	// Caught up: nil, nil.
	if recs, err := l.ReadAfter(n, 5); err != nil || recs != nil {
		t.Fatalf("caught-up ReadAfter: %v, %v; want nil, nil", recs, err)
	}
}

func TestReadAfterCapsAtDurable(t *testing.T) {
	l, err := Open(t.TempDir(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	mustAppend(t, l, OpUpsert, "a", "<x/>")
	// Enqueue without waiting: the record exists but is not durable yet.
	if _, err := l.Enqueue(OpUpsert, "b", "<y/>"); err != nil {
		t.Fatal(err)
	}
	recs, err := l.ReadAfter(0, 10)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range recs {
		if r.LSN > l.DurableLSN() {
			t.Fatalf("ReadAfter returned lsn %d above durable %d", r.LSN, l.DurableLSN())
		}
	}
	if err := l.WaitDurable(2); err != nil {
		t.Fatal(err)
	}
	recs, err = l.ReadAfter(0, 10)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 2 || recs[1].LSN != 2 {
		t.Fatalf("after WaitDurable: %+v, want lsns 1,2", recs)
	}
}

func TestReadAfterGoneAfterTruncate(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(dir, Options{SegmentBytes: 64})
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	for i := 1; i <= 8; i++ {
		mustAppend(t, l, OpUpsert, fmt.Sprintf("d%d", i), "<x/>")
	}
	if _, err := l.TruncateThrough(5); err != nil {
		t.Fatal(err)
	}
	floor := l.Floor()
	if floor == 0 {
		t.Fatal("floor still 0 after truncate")
	}
	if _, err := l.ReadAfter(floor-1, 10); !errors.Is(err, ErrGone) {
		t.Fatalf("ReadAfter below floor: %v, want ErrGone", err)
	}
	// At or above the floor the surviving suffix is readable.
	recs, err := l.ReadAfter(floor, 10)
	if err != nil {
		t.Fatalf("ReadAfter(floor): %v", err)
	}
	if len(recs) == 0 || recs[0].LSN != floor+1 || recs[len(recs)-1].LSN != 8 {
		t.Fatalf("ReadAfter(floor): %+v, want (%d..8]", recs, floor)
	}
}

func TestFloorSurvivesReopen(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(dir, Options{SegmentBytes: 64})
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i <= 6; i++ {
		mustAppend(t, l, OpUpsert, fmt.Sprintf("d%d", i), "<x/>")
	}
	// Truncate the WHOLE log: without the floor sidecar a reopen would
	// restart the sequence at 1 and reissue LSNs followers already saw.
	if _, err := l.TruncateThrough(6); err != nil {
		t.Fatal(err)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	l2, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer l2.Close()
	if got := l2.Floor(); got != 6 {
		t.Fatalf("floor after reopen: %d, want 6", got)
	}
	if lsn := mustAppend(t, l2, OpUpsert, "d7", "<x/>"); lsn != 7 {
		t.Fatalf("append after full truncate + reopen: lsn %d, want 7", lsn)
	}
}

func TestResetRestartsSequence(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(dir, Options{SegmentBytes: 64})
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i <= 4; i++ {
		mustAppend(t, l, OpUpsert, fmt.Sprintf("d%d", i), "<x/>")
	}
	if err := l.Reset(101); err != nil {
		t.Fatal(err)
	}
	if got := l.Floor(); got != 100 {
		t.Fatalf("floor after reset: %d, want 100", got)
	}
	if got := l.DurableLSN(); got != 100 {
		t.Fatalf("durable after reset: %d, want 100", got)
	}
	if lsn := mustAppend(t, l, OpUpsert, "n1", "<x/>"); lsn != 101 {
		t.Fatalf("append after reset: lsn %d, want 101", lsn)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	// The reset sequence survives a reopen.
	l2, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer l2.Close()
	recs := collect(t, l2)
	if len(recs) != 1 || recs[0].LSN != 101 {
		t.Fatalf("replay after reset: %+v, want single record at lsn 101", recs)
	}
	if lsn := mustAppend(t, l2, OpUpsert, "n2", "<x/>"); lsn != 102 {
		t.Fatalf("append after reopen: lsn %d, want 102", lsn)
	}
}

func TestWaitDurableMore(t *testing.T) {
	l, err := Open(t.TempDir(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	mustAppend(t, l, OpUpsert, "a", "<x/>")

	// Already satisfied: returns immediately.
	if err := l.WaitDurableMore(context.Background(), 0); err != nil {
		t.Fatalf("WaitDurableMore(0): %v", err)
	}

	// Context expiry while waiting: the heartbeat cue.
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
	defer cancel()
	if err := l.WaitDurableMore(ctx, 1); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("WaitDurableMore past end: %v, want DeadlineExceeded", err)
	}

	// A new durable record releases a waiter.
	done := make(chan error, 1)
	go func() { done <- l.WaitDurableMore(context.Background(), 1) }()
	time.Sleep(5 * time.Millisecond)
	mustAppend(t, l, OpUpsert, "b", "<y/>")
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("WaitDurableMore after append: %v", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("WaitDurableMore did not wake on new durable record")
	}
}

func TestWaitDurableMoreUnblocksOnClose(t *testing.T) {
	l, err := Open(t.TempDir(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	mustAppend(t, l, OpUpsert, "a", "<x/>")
	done := make(chan error, 1)
	go func() { done <- l.WaitDurableMore(context.Background(), 1) }()
	time.Sleep(5 * time.Millisecond)
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	select {
	case err := <-done:
		if !errors.Is(err, ErrClosed) {
			t.Fatalf("WaitDurableMore after close: %v, want ErrClosed", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("WaitDurableMore hung across Close")
	}
}

// TestCloseVsWaitDurableRace is the regression test for the Close /
// group-commit race: a WaitDurable caller racing Close must either get a
// real durability ack (its record was fsynced before the close completed)
// or a typed ErrClosed — never a hang, never an ack for bytes that were
// not synced. Run under -race.
func TestCloseVsWaitDurableRace(t *testing.T) {
	for trial := 0; trial < 20; trial++ {
		l, err := Open(t.TempDir(), Options{})
		if err != nil {
			t.Fatal(err)
		}
		const writers = 8
		var wg sync.WaitGroup
		errs := make([]error, writers)
		start := make(chan struct{})
		for w := 0; w < writers; w++ {
			wg.Add(1)
			go func(w int) {
				defer wg.Done()
				<-start
				lsn, err := l.Enqueue(OpUpsert, fmt.Sprintf("w%d", w), "<x/>")
				if err != nil {
					if !errors.Is(err, ErrClosed) {
						errs[w] = fmt.Errorf("enqueue: %w", err)
					}
					return
				}
				done := make(chan error, 1)
				go func() { done <- l.WaitDurable(lsn) }()
				select {
				case err := <-done:
					if err != nil && !errors.Is(err, ErrClosed) {
						errs[w] = fmt.Errorf("wait lsn %d: %w", lsn, err)
					}
				case <-time.After(10 * time.Second):
					errs[w] = fmt.Errorf("wait lsn %d: hung across Close", lsn)
				}
			}(w)
		}
		close(start)
		// Race Close against the enqueue+wait storm.
		if err := l.Close(); err != nil {
			t.Fatalf("trial %d: close: %v", trial, err)
		}
		wg.Wait()
		for w, err := range errs {
			if err != nil {
				t.Fatalf("trial %d writer %d: %v", trial, w, err)
			}
		}
	}
}

func TestWireFrameRoundTrip(t *testing.T) {
	recs := []Record{
		{LSN: 1, Op: OpUpsert, Name: "a", Doc: "<x>1</x>"},
		{LSN: 2, Op: OpDelete, Name: "b"},
		{LSN: 1 << 40, Op: OpUpsert, Name: "big-lsn", Doc: "<y/>"},
	}
	var buf bytes.Buffer
	for _, r := range recs {
		buf.Write(EncodeWireFrame(r))
	}
	buf.Write(EncodeWireHeartbeat(77))
	br := bufio.NewReader(&buf)
	for i, want := range recs {
		got, err := ReadWireFrame(br)
		if err != nil {
			t.Fatalf("frame %d: %v", i, err)
		}
		if got != want {
			t.Fatalf("frame %d: %+v, want %+v", i, got, want)
		}
	}
	hb, err := ReadWireFrame(br)
	if err != nil {
		t.Fatalf("heartbeat: %v", err)
	}
	if hb.Op != OpHeartbeat || hb.LSN != 77 {
		t.Fatalf("heartbeat: %+v, want op 0 lsn 77", hb)
	}
	// Clean end-of-stream at a frame boundary.
	if _, err := ReadWireFrame(br); err != io.EOF {
		t.Fatalf("end of stream: %v, want io.EOF", err)
	}
}

func TestWireFrameFaults(t *testing.T) {
	frame := EncodeWireFrame(Record{LSN: 9, Op: OpUpsert, Name: "n", Doc: "<d/>"})

	// Truncated mid-header and mid-payload: connection fault, not corruption.
	for _, cut := range []int{3, frameHeaderSize + 2} {
		_, err := ReadWireFrame(bufio.NewReader(bytes.NewReader(frame[:cut])))
		if err != io.ErrUnexpectedEOF {
			t.Fatalf("cut at %d: %v, want ErrUnexpectedEOF", cut, err)
		}
	}

	// A flipped payload bit is corruption.
	bad := append([]byte(nil), frame...)
	bad[frameHeaderSize] ^= 0x01
	if _, err := ReadWireFrame(bufio.NewReader(bytes.NewReader(bad))); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("flipped bit: %v, want ErrCorrupt", err)
	}

	// An implausible length is corruption, not a giant allocation.
	huge := append([]byte(nil), frame...)
	huge[3] = 0xff
	if _, err := ReadWireFrame(bufio.NewReader(bytes.NewReader(huge))); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("huge length: %v, want ErrCorrupt", err)
	}
}

func TestStreamedFramesAppendToFollowerLog(t *testing.T) {
	// The wire framing is the disk framing: a follower can verify and
	// re-append what it receives, and a replay sees the leader's records.
	leader, err := Open(t.TempDir(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer leader.Close()
	for i := 1; i <= 5; i++ {
		mustAppend(t, leader, OpUpsert, fmt.Sprintf("d%d", i), fmt.Sprintf("<x>%d</x>", i))
	}
	recs, err := leader.ReadAfter(0, 100)
	if err != nil {
		t.Fatal(err)
	}

	var stream bytes.Buffer
	for _, r := range recs {
		stream.Write(EncodeWireFrame(r))
	}
	br := bufio.NewReader(&stream)

	follower, err := Open(t.TempDir(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer follower.Close()
	for {
		r, err := ReadWireFrame(br)
		if err == io.EOF {
			break
		}
		if err != nil {
			t.Fatal(err)
		}
		lsn, err := follower.Append(r.Op, r.Name, r.Doc)
		if err != nil {
			t.Fatal(err)
		}
		if lsn != r.LSN {
			t.Fatalf("follower assigned lsn %d to leader record %d", lsn, r.LSN)
		}
	}
	got := collect(t, follower)
	if len(got) != len(recs) {
		t.Fatalf("follower replay: %d records, want %d", len(got), len(recs))
	}
	for i := range got {
		if got[i] != recs[i] {
			t.Fatalf("record %d: %+v, want %+v", i, got[i], recs[i])
		}
	}
}
