// Streaming access to a live log: the leader half of WAL shipping.
//
// A replication follower holds a durable LSN A and wants every record
// after it. ReadAfter serves exactly that — records in (A, durable] — by
// scanning the on-disk segments without blocking writers: segment
// metadata is captured under the log mutex, the files themselves are
// read outside every lock. That is safe because segment bytes are
// write-once (a record's frame never changes after Enqueue writes it)
// and the durable watermark only advances after the covered bytes are
// fully written, so a reader capped at the watermark can never observe a
// half-written frame it would mistake for data. A frame mid-write at the
// tail parses as the same torn tail a crash would leave and is ignored.
//
// WaitDurableMore is the long-poll half: it blocks until the watermark
// passes the follower's position, the context expires (the leader's cue
// to emit a heartbeat), or the log closes.
//
// The wire framing for the replication stream reuses the on-disk frame
// layout (u32le length, u32le CRC32, payload) so a follower can append
// received frames to its own log byte-for-byte verified. One frame kind
// exists only on the wire: a heartbeat (op byte 0) carrying the leader's
// durable watermark, which keeps idle streams alive and lets a follower
// measure its lag without new records flowing.
//
// The wal.floor sidecar file records history that has been removed from
// the log — by checkpoint truncation or by Reset when a follower
// installs a leader snapshot. Its job is LSN-sequence integrity across
// reboots: a leader that truncated its whole log must not restart the
// sequence at 1, or every reissued LSN would be skipped as a duplicate
// by followers that applied the originals.
package wal

import (
	"bufio"
	"context"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
	"strconv"
	"strings"
)

// ErrGone reports that the log no longer holds the records a reader
// asked for: checkpoint truncation removed them (match with errors.Is).
// A follower that hits it must fall back to a snapshot fetch.
var ErrGone = errors.New("wal: records truncated")

// OpHeartbeat is the wire-only frame kind: no mutation, just the
// leader's durable watermark in the LSN field. It never appears in a
// segment file.
const OpHeartbeat Op = 0

// floorFileName is the sidecar recording removed history; it must not
// match segmentNameRE.
const floorFileName = "wal.floor"

// Floor returns the highest LSN the log no longer holds; records at or
// below it were truncated into a checkpoint snapshot (or superseded by a
// Reset) and are only reachable through that snapshot.
func (l *Log) Floor() uint64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.floor
}

// errStopRead aborts a ReadAfter segment scan once the batch is full or
// the durable watermark is reached; it never escapes ReadAfter.
var errStopRead = errors.New("wal: stop read")

// ReadAfter returns up to max records with LSNs in (after, durable],
// oldest first. It never blocks writers: the files are read outside the
// log's locks, capped at the durable watermark so an acknowledged-only
// prefix is returned even while appends race. A nil slice with a nil
// error means the reader is caught up. ErrGone reports that records
// after `after` have been truncated away — the caller needs a snapshot,
// not a tail.
func (l *Log) ReadAfter(after uint64, max int) ([]Record, error) {
	if max <= 0 {
		max = 1
	}
	type segMeta struct {
		path        string
		first, last uint64
		tornOK      bool
	}
	l.mu.Lock()
	if after < l.floor {
		floor := l.floor
		l.mu.Unlock()
		return nil, fmt.Errorf("wal: records through lsn %d truncated (reader at %d): %w", floor, after, ErrGone)
	}
	metas := make([]segMeta, 0, len(l.sealed)+1)
	for _, s := range l.sealed {
		metas = append(metas, segMeta{path: s.path, first: s.first, last: s.last, tornOK: s.tornOK})
	}
	if l.active != nil {
		metas = append(metas, segMeta{path: l.activePath, first: l.activeFirst, last: l.activeLast, tornOK: true})
	}
	l.mu.Unlock()

	durable := l.DurableLSN()
	if durable <= after {
		return nil, nil
	}
	var out []Record
	for _, m := range metas {
		if m.last <= after || m.first > durable {
			continue
		}
		_, err := scanSegment(m.path, m.first, m.tornOK, func(r Record) error {
			if r.LSN <= after {
				return nil
			}
			if r.LSN > durable || len(out) >= max {
				return errStopRead
			}
			out = append(out, r)
			return nil
		})
		switch {
		case err == nil:
		case errors.Is(err, errStopRead):
			return out, nil
		case errors.Is(err, os.ErrNotExist):
			// The segment was truncated between the metadata capture and
			// the scan; to this reader that is indistinguishable from
			// having arrived after the truncation.
			return nil, fmt.Errorf("wal: segment %s truncated mid-read: %w", filepath.Base(m.path), ErrGone)
		default:
			return nil, err
		}
		if len(out) >= max {
			break
		}
	}
	return out, nil
}

// WaitDurableMore blocks until the durable watermark exceeds after,
// returning nil. It returns ctx.Err() when the context expires first —
// the leader's heartbeat cue — ErrClosed when the log closes, and the
// sticky sync error if group commit has failed.
func (l *Log) WaitDurableMore(ctx context.Context, after uint64) error {
	// The watcher goroutine converts ctx expiry into a broadcast so the
	// cond wait below wakes up; the loop re-checks ctx before every wait,
	// so a broadcast that lands before the first wait is never lost.
	done := make(chan struct{})
	defer close(done)
	go func() {
		select {
		case <-ctx.Done():
			l.sm.Lock()
			l.syncCond.Broadcast()
			l.sm.Unlock()
		case <-done:
		}
	}()

	l.sm.Lock()
	defer l.sm.Unlock()
	for {
		if l.syncErr != nil {
			return l.syncErr
		}
		if l.durable > after {
			return nil
		}
		if l.smClosed {
			return ErrClosed
		}
		if err := ctx.Err(); err != nil {
			return err
		}
		l.syncCond.Wait()
	}
}

// Reset discards the log's entire contents and restarts the LSN sequence
// at next, recording next-1 as the floor. A replication follower calls
// it while installing a leader snapshot taken at LSN next-1: from then
// on the local log must mirror the leader's LSNs exactly. The caller
// owns crash consistency between the snapshot file and this reset (the
// server's install marker); Reset itself orders floor-write before
// segment removal so the LSN sequence can never restart low.
func (l *Log) Reset(next uint64) error {
	if next == 0 {
		return errors.New("wal: reset: next lsn must be >= 1")
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return ErrClosed
	}
	if err := writeFloorFile(l.dir, next-1); err != nil {
		return err
	}
	if l.active != nil {
		if err := l.active.Close(); err != nil {
			return fmt.Errorf("wal: reset: %w", err)
		}
		if err := os.Remove(l.activePath); err != nil {
			return fmt.Errorf("wal: reset: %w", err)
		}
		l.active = nil
	}
	for len(l.sealed) > 0 {
		if err := os.Remove(l.sealed[0].path); err != nil {
			return fmt.Errorf("wal: reset: %w", err)
		}
		l.sealed = l.sealed[1:]
	}
	syncDir(l.dir)
	l.nextLSN = next
	l.floor = next - 1
	// Earlier append/fsync failures poisoned files that no longer exist;
	// the reset log starts clean.
	l.wedged = nil
	l.sm.Lock()
	l.durable = next - 1
	l.syncErr = nil
	l.syncCond.Broadcast()
	l.sm.Unlock()
	l.reportLocked()
	return nil
}

// readFloorFile loads the floor sidecar; a missing file is floor 0.
func readFloorFile(dir string) (uint64, error) {
	data, err := os.ReadFile(filepath.Join(dir, floorFileName))
	if errors.Is(err, os.ErrNotExist) {
		return 0, nil
	}
	if err != nil {
		return 0, fmt.Errorf("wal: %w", err)
	}
	v, err := strconv.ParseUint(strings.TrimSpace(string(data)), 10, 64)
	if err != nil {
		return 0, fmt.Errorf("wal: floor file: %v: %w", err, ErrCorrupt)
	}
	return v, nil
}

// writeFloorFile persists the floor atomically (temp + fsync + rename +
// dir fsync), mirroring the snapshot writer's discipline: a crash leaves
// either the old floor or the new one, never a torn file.
func writeFloorFile(dir string, floor uint64) error {
	path := filepath.Join(dir, floorFileName)
	tmp, err := os.CreateTemp(dir, floorFileName+".tmp*")
	if err != nil {
		return fmt.Errorf("wal: floor: %w", err)
	}
	defer os.Remove(tmp.Name())
	if _, err := fmt.Fprintf(tmp, "%d\n", floor); err != nil {
		tmp.Close()
		return fmt.Errorf("wal: floor: %w", err)
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		return fmt.Errorf("wal: floor: %w", err)
	}
	if err := tmp.Close(); err != nil {
		return fmt.Errorf("wal: floor: %w", err)
	}
	if err := os.Rename(tmp.Name(), path); err != nil {
		return fmt.Errorf("wal: floor: %w", err)
	}
	syncDir(dir)
	return nil
}

// EncodeWireFrame renders one record in the replication stream's wire
// framing — identical to the on-disk frame layout, so the CRC the
// follower verifies is the CRC the leader's log verified.
func EncodeWireFrame(r Record) []byte { return encodeFrame(r) }

// EncodeWireHeartbeat renders a heartbeat frame carrying the leader's
// durable watermark.
func EncodeWireHeartbeat(durable uint64) []byte {
	payload := make([]byte, 0, 1+binary.MaxVarintLen64)
	payload = append(payload, byte(OpHeartbeat))
	payload = binary.AppendUvarint(payload, durable)
	frame := make([]byte, frameHeaderSize, frameHeaderSize+len(payload))
	binary.LittleEndian.PutUint32(frame[0:4], uint32(len(payload)))
	binary.LittleEndian.PutUint32(frame[4:8], crc32.ChecksumIEEE(payload))
	return append(frame, payload...)
}

// ReadWireFrame reads one frame from a replication stream. It returns
// io.EOF on a clean end-of-stream at a frame boundary,
// io.ErrUnexpectedEOF when the stream dies mid-frame, and an
// ErrCorrupt-wrapped error for a frame whose checksum or structure is
// wrong — a follower treats the first as the leader closing, the second
// as a connection fault to retry, and the third as a reason to panic
// loudly. Heartbeats come back with Op == OpHeartbeat and the leader's
// durable watermark in LSN.
func ReadWireFrame(br *bufio.Reader) (Record, error) {
	var hdr [frameHeaderSize]byte
	if _, err := io.ReadFull(br, hdr[:]); err != nil {
		if err == io.EOF {
			return Record{}, io.EOF
		}
		return Record{}, io.ErrUnexpectedEOF
	}
	payloadLen := binary.LittleEndian.Uint32(hdr[0:4])
	wantCRC := binary.LittleEndian.Uint32(hdr[4:8])
	if payloadLen == 0 || int64(payloadLen) > maxRecordBytes {
		return Record{}, fmt.Errorf("wal: stream: implausible frame length %d: %w", payloadLen, ErrCorrupt)
	}
	payload := make([]byte, payloadLen)
	if _, err := io.ReadFull(br, payload); err != nil {
		return Record{}, io.ErrUnexpectedEOF
	}
	if crc32.ChecksumIEEE(payload) != wantCRC {
		return Record{}, fmt.Errorf("wal: stream: frame checksum mismatch: %w", ErrCorrupt)
	}
	if Op(payload[0]) == OpHeartbeat {
		durable, n := binary.Uvarint(payload[1:])
		if n <= 0 || 1+n != len(payload) {
			return Record{}, fmt.Errorf("wal: stream: malformed heartbeat: %w", ErrCorrupt)
		}
		return Record{Op: OpHeartbeat, LSN: durable}, nil
	}
	rec, err := decodePayload(payload)
	if err != nil {
		return Record{}, fmt.Errorf("wal: stream: %v: %w", err, ErrCorrupt)
	}
	return rec, nil
}
