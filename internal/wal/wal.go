// Package wal implements the append-only write-ahead log behind live
// ingestion: the piece that lets a mutation be acknowledged after one
// amortized fsync of a ~100-byte record instead of a full index snapshot
// write. Records are length-framed and individually CRC32-protected;
// durability is group-committed — N concurrent writers Enqueue records
// and share a single fsync through a leader elected among the waiters —
// so acknowledgment latency stays one fsync while throughput scales with
// concurrency.
//
// On-disk layout: a directory of segment files named wal-%016x.seg,
// where the hex number is the LSN of the segment's first record. Each
// segment is
//
//	magic "GKSW1"
//	record*
//
// and each record frame is
//
//	u32le payload length | u32le CRC32(payload) | payload
//	payload = op byte (1 upsert, 2 delete)
//	        | uvarint LSN
//	        | uvarint name length | name bytes
//	        | uvarint doc length  | doc bytes (serialized XML; empty for deletes)
//
// LSNs are assigned contiguously from 1 and every segment's records are
// contiguous, so the log as a whole is a contiguous run of LSNs and any
// gap is corruption. TruncateThrough removes whole segments oldest-first
// only, preserving the contiguous-suffix invariant a checkpointed replay
// depends on.
//
// Crash semantics mirror internal/index's snapshot discipline: an
// incomplete frame at the tail of the final segment is the legal
// signature of a crash mid-append and is silently dropped (the record
// was never acknowledged — acknowledgment happens only after fsync), but
// a complete frame whose CRC does not match, an out-of-sequence LSN, or
// a torn frame anywhere but the tail is damage and fails with an
// ErrCorrupt-wrapped error.
package wal

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"strconv"
	"sync"
	"time"
)

const (
	segmentMagic = "GKSW1"

	// DefaultSegmentBytes is the rotation threshold: a segment that would
	// grow past it is sealed (fsynced, closed) and a new one started, so
	// checkpoint truncation always has whole superseded files to remove.
	DefaultSegmentBytes = 4 << 20

	// maxRecordBytes bounds a single record payload. It is far above the
	// server's request-body cap; its real job is keeping a corrupt length
	// field from demanding a giant allocation during replay.
	maxRecordBytes = 64 << 20

	frameHeaderSize = 8
)

// ErrCorrupt reports a damaged segment: a bad checksum, an impossible
// frame, or a gap in the LSN sequence (match with errors.Is). A torn
// tail on the final segment is not corruption — it is a crash mid-append
// and is dropped silently.
var ErrCorrupt = errors.New("corrupt wal segment")

// ErrClosed reports an operation on a closed log.
var ErrClosed = errors.New("wal: log closed")

// Op is a record's mutation kind.
type Op byte

const (
	OpUpsert Op = 1
	OpDelete Op = 2
)

// Record is one logged mutation. Doc carries the serialized XML source
// for upserts and is empty for deletes.
type Record struct {
	LSN  uint64
	Op   Op
	Name string
	Doc  string
}

// Metrics is the observability sink (satisfied by obs.Registry); every
// method may be called concurrently.
type Metrics interface {
	// ObserveWALFsync records one group commit: how many records the
	// single fsync made durable and how long it took.
	ObserveWALFsync(records int, d time.Duration)
	// SetWALState reports the live segment count and total log bytes.
	SetWALState(segments int, bytes int64)
}

// Options configures Open.
type Options struct {
	// SegmentBytes is the rotation threshold (DefaultSegmentBytes if 0).
	SegmentBytes int64
	// NoSync skips every fsync. For tests and benchmarks only: every
	// record counts as durable the moment Enqueue returns (WaitDurable
	// and the replication stream see it immediately), but none of it is
	// actually crash-safe.
	NoSync bool
	// Metrics receives fsync/batch/size observations; may be nil.
	Metrics Metrics
}

// segment is one on-disk segment file the log knows about.
type segment struct {
	path  string
	first uint64 // LSN of the first record
	last  uint64 // LSN of the last record; first-1 when empty
	size  int64  // bytes of magic plus complete frames
	// tornOK marks a segment that was the final one at Open time: its
	// tail may legally hold an incomplete frame from a crash mid-append,
	// and replay must keep tolerating it even after newer segments exist.
	tornOK bool
}

// Log is an open write-ahead log. All methods are safe for concurrent
// use. Lock order: mu strictly before sm, never the reverse.
type Log struct {
	dir  string
	opts Options

	mu          sync.Mutex // guards file and segment state
	sealed      []segment
	active      *os.File
	activePath  string
	activeFirst uint64
	activeLast  uint64 // activeFirst-1 while the active segment is empty
	activeSize  int64
	nextLSN     uint64
	closed      bool
	wedged      error // sticky append-failure: file position is unknowable

	// floor is the highest LSN the log no longer holds: records <= floor
	// were removed by truncation (their history lives in a checkpoint
	// snapshot) or superseded by a Reset. It is persisted in the wal.floor
	// file so a reboot after a full truncation can never reissue an LSN a
	// replication follower has already applied. Guarded by mu.
	floor uint64

	sm       sync.Mutex // guards group-commit sync state
	syncCond *sync.Cond
	durable  uint64 // highest fsynced LSN
	syncing  bool   // a leader is currently running the shared fsync
	syncErr  error  // sticky fsync failure: no later fsync can recover it
	// smClosed mirrors closed into the sm-guarded state (lock order
	// forbids reading closed, which lives under mu, from WaitDurable).
	// Once set, a WaitDurable caller whose record is not durable and not
	// failed gets ErrClosed instead of waiting for a flush that will
	// never come.
	smClosed bool
}

var segmentNameRE = regexp.MustCompile(`^wal-[0-9a-f]{16}\.seg$`)

func segmentName(first uint64) string { return fmt.Sprintf("wal-%016x.seg", first) }

func parseSegmentName(name string) (uint64, bool) {
	if !segmentNameRE.MatchString(name) {
		return 0, false
	}
	v, err := strconv.ParseUint(name[len("wal-"):len(name)-len(".seg")], 16, 64)
	return v, err == nil
}

// Open opens (creating if necessary) the log at dir and scans every
// segment, validating checksums and LSN contiguity. A torn tail on the
// final segment is tolerated and recorded; any other damage fails with
// ErrCorrupt. An empty final segment (a crash between segment creation
// and the first complete record) is removed.
func Open(dir string, opts Options) (*Log, error) {
	if opts.SegmentBytes <= 0 {
		opts.SegmentBytes = DefaultSegmentBytes
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("wal: %w", err)
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("wal: %w", err)
	}
	var names []string
	for _, e := range entries {
		if !e.IsDir() && segmentNameRE.MatchString(e.Name()) {
			names = append(names, e.Name())
		}
	}
	sort.Strings(names) // zero-padded hex: lexical order is LSN order

	l := &Log{dir: dir, opts: opts, nextLSN: 1}
	l.syncCond = sync.NewCond(&l.sm)
	expect := uint64(0)
	for i, name := range names {
		first, ok := parseSegmentName(name)
		if !ok || first == 0 {
			return nil, fmt.Errorf("wal: segment %s: implausible first lsn: %w", name, ErrCorrupt)
		}
		if expect != 0 && first != expect {
			return nil, fmt.Errorf("wal: segment %s: first lsn %d breaks the sequence (want %d): %w",
				name, first, expect, ErrCorrupt)
		}
		path := filepath.Join(dir, name)
		st, err := scanSegment(path, first, i == len(names)-1, nil)
		if err != nil {
			return nil, err
		}
		seg := segment{path: path, first: first, last: first - 1, size: st.size, tornOK: i == len(names)-1}
		if st.count > 0 {
			seg.last = first + uint64(st.count) - 1
		}
		l.sealed = append(l.sealed, seg)
		expect = seg.last + 1
		if expect > l.nextLSN {
			l.nextLSN = expect
		}
	}
	// A recordless final segment (crash between create and first record)
	// holds nothing acknowledged — drop it so its name is free for reuse.
	if n := len(l.sealed); n > 0 && l.sealed[n-1].last < l.sealed[n-1].first {
		if err := os.Remove(l.sealed[n-1].path); err != nil {
			return nil, fmt.Errorf("wal: %w", err)
		}
		l.sealed = l.sealed[:n-1]
	}
	// The floor file records history removed from the log (checkpoint
	// truncation, snapshot reset). When a checkpoint truncated every
	// segment, it is the only thing standing between a reboot and LSN
	// reuse — reissued LSNs would be silently skipped as duplicates by
	// any replication follower that already applied the originals.
	ff, err := readFloorFile(dir)
	if err != nil {
		return nil, err
	}
	if ff+1 > l.nextLSN {
		l.nextLSN = ff + 1
	}
	if len(l.sealed) > 0 {
		l.floor = l.sealed[0].first - 1
	} else {
		l.floor = l.nextLSN - 1
	}
	// Everything that survived the scan is on disk and will survive the
	// next crash identically, so it counts as durable history.
	l.durable = l.nextLSN - 1
	l.reportLocked()
	return l, nil
}

// Dir returns the log's directory.
func (l *Log) Dir() string { return l.dir }

// LastLSN returns the highest LSN ever appended (0 for an empty log).
func (l *Log) LastLSN() uint64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.nextLSN - 1
}

// DurableLSN returns the highest fsynced LSN.
func (l *Log) DurableLSN() uint64 {
	l.sm.Lock()
	defer l.sm.Unlock()
	return l.durable
}

// SegmentStats returns the live segment count and total log bytes.
func (l *Log) SegmentStats() (segments int, bytes int64) {
	l.mu.Lock()
	defer l.mu.Unlock()
	segments = len(l.sealed)
	for _, s := range l.sealed {
		bytes += s.size
	}
	if l.active != nil {
		segments++
		bytes += l.activeSize
	}
	return segments, bytes
}

// Append logs one record and blocks until it is durable (one shared
// fsync away). It is Enqueue followed by WaitDurable; callers that hold
// a lock other writers need should call the two halves themselves, with
// only Enqueue inside the critical section.
func (l *Log) Append(op Op, name, doc string) (uint64, error) {
	lsn, err := l.Enqueue(op, name, doc)
	if err != nil {
		return 0, err
	}
	if l.opts.NoSync {
		return lsn, nil
	}
	return lsn, l.WaitDurable(lsn)
}

// Enqueue writes one record into the active segment (rotating first if
// it is full) and returns its LSN. The record is buffered in the OS page
// cache, not yet durable: callers must WaitDurable(lsn) before
// acknowledging. A write failure wedges the log — the file position is
// no longer knowable, so no further appends are accepted — while replay
// of what is on disk stays exact: the half-written frame is a legal torn
// tail.
func (l *Log) Enqueue(op Op, name, doc string) (uint64, error) {
	if op != OpUpsert && op != OpDelete {
		return 0, fmt.Errorf("wal: invalid op %d", op)
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return 0, ErrClosed
	}
	if l.wedged != nil {
		return 0, fmt.Errorf("wal: log wedged by earlier write failure: %w", l.wedged)
	}
	lsn := l.nextLSN
	frame := encodeFrame(Record{LSN: lsn, Op: op, Name: name, Doc: doc})
	if int64(len(frame)-frameHeaderSize) > maxRecordBytes {
		return 0, fmt.Errorf("wal: record for %q is %d bytes (max %d)", name, len(frame)-frameHeaderSize, maxRecordBytes)
	}
	if l.active != nil && l.activeLast >= l.activeFirst &&
		l.activeSize+int64(len(frame)) > l.opts.SegmentBytes {
		if err := l.sealActiveLocked(); err != nil {
			l.wedged = err
			return 0, err
		}
	}
	if l.active == nil {
		if err := l.openActiveLocked(lsn); err != nil {
			return 0, err
		}
	}
	if _, err := l.active.Write(frame); err != nil {
		l.wedged = fmt.Errorf("wal: append lsn %d: %w", lsn, err)
		return 0, l.wedged
	}
	l.activeSize += int64(len(frame))
	l.activeLast = lsn
	l.nextLSN = lsn + 1
	if l.opts.NoSync {
		// Without fsyncs the write itself is as durable as this record
		// will ever get; advancing here keeps WaitDurable and the
		// replication stream (which caps at the durable watermark)
		// usable in NoSync harnesses.
		l.advanceDurable(lsn)
	}
	l.reportLocked()
	return lsn, nil
}

// WaitDurable blocks until every record up to lsn is fsynced. Among the
// goroutines waiting at any moment exactly one becomes the leader and
// runs a single fsync covering every record enqueued before it — the
// group commit. A failed fsync is sticky: the kernel may have dropped
// the dirty pages, so no later fsync can make these records durable and
// every waiter (current and future) gets the error.
//
// A caller racing Close resolves promptly and truthfully: if Close's
// final fsync covered the record, WaitDurable returns nil (the record IS
// durable); if that fsync failed, it returns the sticky error; and if
// the log closed without making the record durable it returns ErrClosed
// — never a false ack, never a hang on a flush no one will run.
func (l *Log) WaitDurable(lsn uint64) error {
	l.sm.Lock()
	for {
		if l.syncErr != nil {
			err := l.syncErr
			l.sm.Unlock()
			return err
		}
		if l.durable >= lsn {
			l.sm.Unlock()
			return nil
		}
		if l.smClosed {
			l.sm.Unlock()
			return ErrClosed
		}
		if !l.syncing {
			l.syncing = true
			l.sm.Unlock()
			l.leadSync()
			l.sm.Lock()
			continue
		}
		l.syncCond.Wait()
	}
}

// leadSync runs one shared fsync as the elected leader. The active file
// is captured under mu but synced outside it, so concurrent Enqueues
// keep filling the next batch during the flush; if a rotation seals the
// captured file mid-flight (Sync returns ErrClosed), its records were
// fsynced by the seal and the leader simply re-captures the new active
// file.
//
// The durable watermark advances only when this leader actually ran a
// successful fsync on a captured file. Capturing a nil active file means
// someone else — a seal, a truncation, or Close — owns those records'
// durability and has already published the truth under sm; advancing
// blindly here used to convert a failed Close fsync into a false
// durability ack for the waiters that raced it.
func (l *Log) leadSync() {
	start := time.Now()
	for {
		l.mu.Lock()
		f := l.active
		high := l.nextLSN - 1
		l.mu.Unlock()

		var err error
		synced := false
		if f != nil {
			err = f.Sync()
			if err != nil && errors.Is(err, os.ErrClosed) {
				continue
			}
			synced = err == nil
		}
		if err != nil {
			l.mu.Lock()
			if l.wedged == nil {
				l.wedged = fmt.Errorf("wal: fsync: %w", err)
			}
			l.mu.Unlock()
		}
		l.sm.Lock()
		l.syncing = false
		batch := 0
		if err != nil {
			if l.syncErr == nil {
				l.syncErr = fmt.Errorf("wal: fsync: %w", err)
			}
		} else if synced && high > l.durable {
			batch = int(high - l.durable)
			l.durable = high
		}
		l.syncCond.Broadcast()
		l.sm.Unlock()
		if err == nil && batch > 0 && l.opts.Metrics != nil {
			l.opts.Metrics.ObserveWALFsync(batch, time.Since(start))
		}
		return
	}
}

// sealActiveLocked fsyncs, closes and retires the active segment. The
// seal's fsync raises the durable watermark over the segment's records,
// which is what makes a mid-rotation leader fsync on the closed file
// harmless. Callers hold mu.
func (l *Log) sealActiveLocked() error {
	if !l.opts.NoSync {
		if err := l.active.Sync(); err != nil {
			return fmt.Errorf("wal: seal %s: %w", filepath.Base(l.activePath), err)
		}
	}
	if err := l.active.Close(); err != nil {
		return fmt.Errorf("wal: seal %s: %w", filepath.Base(l.activePath), err)
	}
	l.sealed = append(l.sealed, segment{
		path: l.activePath, first: l.activeFirst, last: l.activeLast, size: l.activeSize,
	})
	l.active = nil
	if !l.opts.NoSync {
		l.advanceDurable(l.activeLast)
	}
	return nil
}

// advanceDurable raises the durable watermark to lsn. Callers may hold
// mu (mu before sm is the lock order).
func (l *Log) advanceDurable(lsn uint64) {
	l.sm.Lock()
	if lsn > l.durable {
		l.durable = lsn
		l.syncCond.Broadcast()
	}
	l.sm.Unlock()
}

// openActiveLocked creates the segment whose first record will be lsn.
// The directory entry is fsynced so the file itself survives a crash —
// its records' durability is still governed by the group commit.
func (l *Log) openActiveLocked(first uint64) error {
	path := filepath.Join(l.dir, segmentName(first))
	f, err := os.OpenFile(path, os.O_CREATE|os.O_EXCL|os.O_WRONLY, 0o644)
	if err != nil {
		return fmt.Errorf("wal: create segment: %w", err)
	}
	if _, err := f.WriteString(segmentMagic); err != nil {
		f.Close()
		return fmt.Errorf("wal: create segment: %w", err)
	}
	syncDir(l.dir)
	l.active = f
	l.activePath = path
	l.activeFirst = first
	l.activeLast = first - 1
	l.activeSize = int64(len(segmentMagic))
	return nil
}

// Replay streams every surviving record, oldest first, through fn. It
// holds the log's mutex, so it sees a consistent prefix: no appends,
// rotations or truncations interleave. An fn error aborts the replay
// and is returned as-is.
func (l *Log) Replay(fn func(Record) error) error {
	l.mu.Lock()
	defer l.mu.Unlock()
	segs := append([]segment{}, l.sealed...)
	if l.active != nil {
		segs = append(segs, segment{path: l.activePath, first: l.activeFirst})
	}
	for i, s := range segs {
		tornOK := s.tornOK || i == len(segs)-1
		if _, err := scanSegment(s.path, s.first, tornOK, fn); err != nil {
			return err
		}
	}
	return nil
}

// TruncateThrough removes every segment whose records are all covered by
// a checkpoint at lsn, oldest first, and returns how many files were
// removed. Only whole segments go — a segment holding even one record
// past lsn stays — so the survivors are always a contiguous suffix of
// the history, which is what keeps replay-onto-checkpoint equal to a
// cold rebuild. If the active segment is fully covered it is sealed and
// removed too, and the next append starts a fresh one.
func (l *Log) TruncateThrough(lsn uint64) (int, error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	// Persist the post-truncation floor BEFORE unlinking anything. The
	// caller's ordering is persist-snapshot → TruncateThrough, so by now
	// every record about to be removed is checkpoint-covered; writing the
	// floor first means a crash anywhere in the removal loop leaves
	// either extra (still-replayable, idempotent) segments or a floor
	// that exactly matches the removed history — never a reboot that
	// restarts the LSN sequence below what followers have applied.
	newFloor := l.floor
	cut := 0
	for cut < len(l.sealed) && l.sealed[cut].last <= lsn {
		newFloor = l.sealed[cut].last
		cut++
	}
	cutActive := l.active != nil && cut == len(l.sealed) &&
		l.activeLast >= l.activeFirst && l.activeLast <= lsn
	if cutActive {
		newFloor = l.activeLast
	}
	if newFloor > l.floor {
		if err := writeFloorFile(l.dir, newFloor); err != nil {
			return 0, err
		}
	}
	removed := 0
	for len(l.sealed) > 0 && l.sealed[0].last <= lsn {
		last := l.sealed[0].last
		if err := os.Remove(l.sealed[0].path); err != nil {
			return removed, fmt.Errorf("wal: truncate: %w", err)
		}
		l.sealed = l.sealed[1:]
		if last > l.floor {
			l.floor = last
		}
		removed++
	}
	if cutActive {
		// The checkpoint covers the whole log: the active segment's
		// records are superseded by snapshot durability, so the file can
		// go without an fsync of its own.
		if err := l.active.Close(); err != nil {
			return removed, fmt.Errorf("wal: truncate: %w", err)
		}
		last := l.activeLast
		if err := os.Remove(l.activePath); err != nil {
			return removed, fmt.Errorf("wal: truncate: %w", err)
		}
		l.active = nil
		if last > l.floor {
			l.floor = last
		}
		removed++
		l.advanceDurable(last)
	}
	if removed > 0 {
		syncDir(l.dir)
	}
	l.reportLocked()
	return removed, nil
}

// Close fsyncs and closes the active segment. Replay keeps working on a
// closed log (reads reopen the files); appends fail with ErrClosed.
//
// In-flight WaitDurable callers resolve promptly: records the final fsync
// covered ack normally, a failed final fsync surfaces as the sticky sync
// error, and anything else gets ErrClosed. The sm-guarded verdict is
// published while mu is still held (mu before sm is the lock order), so
// a group-commit leader that observes the active file gone can never see
// a half-closed log whose durability outcome is still unknown.
func (l *Log) Close() error {
	l.mu.Lock()
	if l.closed {
		l.mu.Unlock()
		return nil
	}
	l.closed = true
	high := l.nextLSN - 1
	var err error
	if l.active != nil {
		if !l.opts.NoSync {
			err = l.active.Sync()
		}
		if cerr := l.active.Close(); err == nil {
			err = cerr
		}
		// Keep the segment replayable through this handle's bookkeeping.
		l.sealed = append(l.sealed, segment{
			path: l.activePath, first: l.activeFirst, last: l.activeLast, size: l.activeSize,
		})
		l.active = nil
	}
	l.sm.Lock()
	l.smClosed = true
	if err != nil {
		if l.syncErr == nil {
			l.syncErr = fmt.Errorf("wal: close: %w", err)
		}
	} else if !l.opts.NoSync && high > l.durable {
		l.durable = high
	}
	l.syncCond.Broadcast()
	l.sm.Unlock()
	l.mu.Unlock()
	if err != nil {
		return fmt.Errorf("wal: close: %w", err)
	}
	return nil
}

// reportLocked pushes segment count and total bytes to the metrics sink.
// Callers hold mu.
func (l *Log) reportLocked() {
	if l.opts.Metrics == nil {
		return
	}
	n := len(l.sealed)
	var bytes int64
	for _, s := range l.sealed {
		bytes += s.size
	}
	if l.active != nil {
		n++
		bytes += l.activeSize
	}
	l.opts.Metrics.SetWALState(n, bytes)
}

// encodeFrame renders one record as a complete frame (header + payload).
func encodeFrame(r Record) []byte {
	payload := make([]byte, 0, 1+3*binary.MaxVarintLen64+len(r.Name)+len(r.Doc))
	payload = append(payload, byte(r.Op))
	payload = binary.AppendUvarint(payload, r.LSN)
	payload = binary.AppendUvarint(payload, uint64(len(r.Name)))
	payload = append(payload, r.Name...)
	payload = binary.AppendUvarint(payload, uint64(len(r.Doc)))
	payload = append(payload, r.Doc...)
	frame := make([]byte, frameHeaderSize, frameHeaderSize+len(payload))
	binary.LittleEndian.PutUint32(frame[0:4], uint32(len(payload)))
	binary.LittleEndian.PutUint32(frame[4:8], crc32.ChecksumIEEE(payload))
	return append(frame, payload...)
}

// scanStats summarizes one segment scan.
type scanStats struct {
	count int   // complete, valid records
	size  int64 // bytes of magic plus complete frames (torn tail excluded)
	torn  bool  // an incomplete frame was dropped at the tail
}

// scanSegment reads the segment at path, validating framing, checksums
// and LSN contiguity from first, streaming each record through fn (nil
// fn validates only). tornOK tolerates an incomplete frame at the tail —
// legal only for the log's final segment, where a crash mid-append can
// land; anywhere else, or for a complete frame with a bad checksum, the
// scan fails with ErrCorrupt.
func scanSegment(path string, first uint64, tornOK bool, fn func(Record) error) (scanStats, error) {
	var st scanStats
	base := filepath.Base(path)
	corrupt := func(format string, args ...any) (scanStats, error) {
		return st, fmt.Errorf("wal: segment %s: "+format+": %w",
			append(append([]any{base}, args...), ErrCorrupt)...)
	}
	f, err := os.Open(path)
	if err != nil {
		return st, fmt.Errorf("wal: %w", err)
	}
	defer f.Close()
	br := bufio.NewReader(f)

	var m [len(segmentMagic)]byte
	if _, err := io.ReadFull(br, m[:]); err != nil {
		// Shorter than the magic: a crash during segment creation.
		if tornOK {
			st.torn = true
			return st, nil
		}
		return corrupt("truncated header")
	}
	if string(m[:]) != segmentMagic {
		return corrupt("bad magic %q", m[:])
	}
	st.size = int64(len(segmentMagic))

	for {
		lsn := first + uint64(st.count)
		var hdr [frameHeaderSize]byte
		if _, err := io.ReadFull(br, hdr[:]); err != nil {
			if err == io.EOF {
				return st, nil // clean end
			}
			if tornOK {
				st.torn = true
				return st, nil
			}
			return corrupt("truncated frame header at lsn %d", lsn)
		}
		payloadLen := binary.LittleEndian.Uint32(hdr[0:4])
		wantCRC := binary.LittleEndian.Uint32(hdr[4:8])
		if payloadLen == 0 || int64(payloadLen) > maxRecordBytes {
			return corrupt("implausible record length %d at lsn %d", payloadLen, lsn)
		}
		payload := make([]byte, payloadLen)
		if _, err := io.ReadFull(br, payload); err != nil {
			if tornOK {
				st.torn = true
				return st, nil
			}
			return corrupt("truncated record body at lsn %d", lsn)
		}
		if crc32.ChecksumIEEE(payload) != wantCRC {
			// A complete frame with a bad checksum is damage, not a torn
			// tail — even at the end of the final segment.
			return corrupt("checksum mismatch at lsn %d", lsn)
		}
		rec, err := decodePayload(payload)
		if err != nil {
			return corrupt("lsn %d: %v", lsn, err)
		}
		if rec.LSN != lsn {
			return corrupt("lsn %d out of sequence (want %d)", rec.LSN, lsn)
		}
		st.size += frameHeaderSize + int64(payloadLen)
		st.count++
		if fn != nil {
			if err := fn(rec); err != nil {
				return st, err
			}
		}
	}
}

// decodePayload parses a checksum-verified record payload.
func decodePayload(p []byte) (Record, error) {
	var r Record
	if len(p) == 0 {
		return r, errors.New("empty payload")
	}
	r.Op = Op(p[0])
	if r.Op != OpUpsert && r.Op != OpDelete {
		return r, fmt.Errorf("unknown op %d", p[0])
	}
	rest := p[1:]
	lsn, n := binary.Uvarint(rest)
	if n <= 0 {
		return r, errors.New("bad lsn varint")
	}
	r.LSN = lsn
	rest = rest[n:]
	var err error
	if r.Name, rest, err = takeString(rest); err != nil {
		return r, fmt.Errorf("name: %v", err)
	}
	if r.Doc, rest, err = takeString(rest); err != nil {
		return r, fmt.Errorf("doc: %v", err)
	}
	if len(rest) != 0 {
		return r, fmt.Errorf("%d trailing bytes", len(rest))
	}
	return r, nil
}

func takeString(p []byte) (string, []byte, error) {
	n, k := binary.Uvarint(p)
	if k <= 0 {
		return "", nil, errors.New("bad length varint")
	}
	p = p[k:]
	if n > uint64(len(p)) {
		return "", nil, fmt.Errorf("length %d exceeds payload", n)
	}
	return string(p[:n]), p[n:], nil
}

// syncDir fsyncs a directory so entry creations and removals survive a
// crash, best effort (some filesystems reject directory fsync).
func syncDir(dir string) {
	d, err := os.Open(dir)
	if err != nil {
		return
	}
	d.Sync()
	d.Close()
}
