package wal

import (
	"errors"
	"os"
	"path/filepath"
	"testing"
)

// FuzzWALReplay feeds arbitrary bytes to the segment scanner through the
// real Open + Replay path. Whatever the bytes, the scanner must never
// panic, never demand an allocation beyond the record-size cap, and must
// answer one of exactly three ways: a clean parse, a tolerated torn tail
// (strictly fewer records than a longer parse would yield), or an error
// wrapping ErrCorrupt. Seeds cover a valid multi-record segment plus the
// crash signatures replay is specified against: truncation at every
// frame boundary region and bit flips in the header, length field,
// checksum and body.
func FuzzWALReplay(f *testing.F) {
	valid := []byte(segmentMagic)
	valid = append(valid, encodeFrame(Record{LSN: 1, Op: OpUpsert, Name: "a", Doc: "<doc><t>one</t></doc>"})...)
	valid = append(valid, encodeFrame(Record{LSN: 2, Op: OpDelete, Name: "a"})...)
	valid = append(valid, encodeFrame(Record{LSN: 3, Op: OpUpsert, Name: "b", Doc: "<doc/>"})...)

	f.Add(valid)
	f.Add(valid[:0])
	f.Add(valid[:3])                 // torn magic
	f.Add(valid[:len(segmentMagic)]) // empty segment
	for _, cut := range []int{len(segmentMagic) + 3, len(segmentMagic) + frameHeaderSize + 1, len(valid) - 1} {
		f.Add(valid[:cut]) // torn frame header / torn body
	}
	for _, flip := range []int{0, len(segmentMagic), len(segmentMagic) + 4, len(valid) - 2} {
		tampered := append([]byte(nil), valid...)
		tampered[flip] ^= 0x01 // magic, length, checksum, body damage
		f.Add(tampered)
	}

	f.Fuzz(func(t *testing.T, data []byte) {
		dir := t.TempDir()
		if err := os.WriteFile(filepath.Join(dir, segmentName(1)), data, 0o644); err != nil {
			t.Fatal(err)
		}
		l, err := Open(dir, Options{})
		if err != nil {
			if !errors.Is(err, ErrCorrupt) {
				t.Fatalf("open: non-corrupt error %v", err)
			}
			return
		}
		count := 0
		err = l.Replay(func(r Record) error {
			if r.Op != OpUpsert && r.Op != OpDelete {
				t.Fatalf("replay surfaced invalid op %d", r.Op)
			}
			if r.LSN != uint64(count)+1 {
				t.Fatalf("replay lsn %d at position %d: sequence not contiguous", r.LSN, count)
			}
			count++
			return nil
		})
		if err != nil && !errors.Is(err, ErrCorrupt) {
			t.Fatalf("replay: non-corrupt error %v", err)
		}
		if got := l.LastLSN(); err == nil && got != uint64(count) {
			t.Fatalf("open reports last lsn %d but replay yields %d records", got, count)
		}
		l.Close()
	})
}
