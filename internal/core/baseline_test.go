package core

import (
	"fmt"
	"math/rand"
	"testing"

	"repro/internal/index"
	"repro/internal/xmltree"
)

// requireSameResponse diffs two responses field by field (Stages excluded:
// timings are never part of the search contract).
func requireSameResponse(t *testing.T, label string, got, want *Response) {
	t.Helper()
	if got.S != want.S || got.SLSize != want.SLSize {
		t.Fatalf("%s: S/SLSize = %d/%d, want %d/%d", label, got.S, got.SLSize, want.S, want.SLSize)
	}
	if len(got.Results) != len(want.Results) {
		t.Fatalf("%s: %d results, want %d", label, len(got.Results), len(want.Results))
	}
	for i := range want.Results {
		g, w := got.Results[i], want.Results[i]
		if g.Ord != w.Ord || g.Label != w.Label || g.IsEntity != w.IsEntity ||
			g.Mask != w.Mask || g.KeywordCount != w.KeywordCount ||
			g.LCPCount != w.LCPCount || g.Rank != w.Rank {
			t.Fatalf("%s: result %d = %+v, want %+v", label, i, g, w)
		}
	}
}

// TestSearchMatchesBaseline is the tentpole's oracle: the arena-based hot
// path must produce responses identical to the retained seed pipeline
// across random corpora, thresholds and result limits.
func TestSearchMatchesBaseline(t *testing.T) {
	rng := rand.New(rand.NewSource(77))
	for trial := 0; trial < 150; trial++ {
		doc := randomTree(rng, trial%2 == 0)
		ix, err := index.BuildDocument(doc, index.Options{IndexElementNames: false})
		if err != nil {
			t.Fatal(err)
		}
		eng := NewEngine(ix)
		q := NewQuery("apple", "pear", "plum", "fig")
		for s := 1; s <= 4; s++ {
			want, err := eng.SearchBaseline(q, s)
			if err != nil {
				t.Fatal(err)
			}
			got, err := eng.Search(q, s)
			if err != nil {
				t.Fatal(err)
			}
			requireSameResponse(t, fmt.Sprintf("trial %d s=%d", trial, s), got, want)

			for _, k := range []int{1, 2, 5} {
				topk, err := eng.SearchTopK(q, s, k)
				if err != nil {
					t.Fatal(err)
				}
				truncated := *want
				if len(truncated.Results) > k {
					truncated.Results = truncated.Results[:k]
				}
				requireSameResponse(t, fmt.Sprintf("trial %d s=%d topk=%d", trial, s, k), topk, &truncated)
			}
		}
	}
}

// allocBenchDoc builds one document that is large enough for steady-state
// behavior to dominate: many entity-shaped nodes whose leaves draw from a
// small vocabulary, giving posting lists in the thousands.
func allocBenchDoc(entities int) *xmltree.Document {
	words := []string{"alpha", "beta", "gamma", "delta"}
	rng := rand.New(rand.NewSource(9))
	root := xmltree.E("root")
	for i := 0; i < entities; i++ {
		e := xmltree.E("entity", xmltree.ET("name", words[rng.Intn(len(words))]))
		for j := 0; j < 3; j++ {
			m := xmltree.E("member")
			for l := 0; l < 2; l++ {
				m.Append(xmltree.ET("leaf", words[rng.Intn(len(words))]))
			}
			e.Append(m)
		}
		root.Append(e)
	}
	return xmltree.NewDocument("alloc.xml", 0, root)
}

func allocBenchEngine(tb testing.TB, entities int) *Engine {
	tb.Helper()
	ix, err := index.BuildDocument(allocBenchDoc(entities), index.Options{IndexElementNames: false})
	if err != nil {
		tb.Fatal(err)
	}
	return NewEngine(ix)
}

// TestSearchAllocsSteadyState pins the arena win: on a warmed engine a
// search must allocate less than half of what the seed pipeline allocates
// for the same query (the acceptance bar is ≥50% fewer allocations).
func TestSearchAllocsSteadyState(t *testing.T) {
	eng := allocBenchEngine(t, 400)
	q := NewQuery("alpha", "beta", "gamma")
	if _, err := eng.Search(q, 2); err != nil { // warm the arena pool
		t.Fatal(err)
	}
	baseline := testing.AllocsPerRun(10, func() {
		if _, err := eng.SearchBaseline(q, 2); err != nil {
			t.Fatal(err)
		}
	})
	hot := testing.AllocsPerRun(10, func() {
		if _, err := eng.Search(q, 2); err != nil {
			t.Fatal(err)
		}
	})
	if hot*2 >= baseline {
		t.Errorf("steady-state Search allocates %.0f/run, baseline %.0f/run — want less than half", hot, baseline)
	}
	if resp, err := eng.Search(q, 2); err != nil {
		t.Fatal(err)
	} else if resp.Stages.Total() <= 0 {
		t.Errorf("stage timings not populated: %+v", resp.Stages)
	}
}

// TestSearchTopKAllocsSteadyState does the same for the top-k path, whose
// bounded heap must not reintroduce per-candidate churn.
func TestSearchTopKAllocsSteadyState(t *testing.T) {
	eng := allocBenchEngine(t, 400)
	q := NewQuery("alpha", "beta", "gamma")
	if _, err := eng.SearchTopK(q, 2, 10); err != nil {
		t.Fatal(err)
	}
	baseline := testing.AllocsPerRun(10, func() {
		if _, err := eng.SearchBaseline(q, 2); err != nil {
			t.Fatal(err)
		}
	})
	hot := testing.AllocsPerRun(10, func() {
		if _, err := eng.SearchTopK(q, 2, 10); err != nil {
			t.Fatal(err)
		}
	})
	if hot*2 >= baseline {
		t.Errorf("steady-state SearchTopK allocates %.0f/run, baseline full search %.0f/run — want less than half", hot, baseline)
	}
}

func BenchmarkSearchHotPath(b *testing.B) {
	eng := allocBenchEngine(b, 2000)
	q := NewQuery("alpha", "beta", "gamma")
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := eng.Search(q, 2); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkSearchSeedBaseline(b *testing.B) {
	eng := allocBenchEngine(b, 2000)
	q := NewQuery("alpha", "beta", "gamma")
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := eng.SearchBaseline(q, 2); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSearchTopK pins the bounded-heap top-k maintenance (the seed
// re-sorted the whole running response after every accepted candidate).
func BenchmarkSearchTopK(b *testing.B) {
	eng := allocBenchEngine(b, 2000)
	q := NewQuery("alpha", "beta", "gamma")
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := eng.SearchTopK(q, 1, 10); err != nil {
			b.Fatal(err)
		}
	}
}
