// Package core implements the GKS Search Engine — the primary contribution
// of Agarwal et al., "Generic Keyword Search over XML Data" (EDBT 2016).
//
// For a keyword query Q and a threshold s ≤ |Q|, the engine returns every
// meaningful XML node whose subtree contains at least min(s, |Q|) distinct
// query keywords (§1.1), resolved through the paper's machinery:
//
//   - the per-keyword inverted-index lists are merged into the Dewey-sorted
//     list S_L (§4.1);
//   - a sliding block collects s *unique* keywords and contributes the
//     longest common prefix of its ends to the LCP candidate list (Lemma 6);
//   - each candidate is lifted to its Least Common Entity node — itself or
//     its lowest entity ancestor (§2.2, Def 2.2.1) — with candidates that
//     have no entity ancestor kept as plain LCP nodes;
//   - candidates survive only with an independent witness: a query keyword
//     in their subtree that no candidate below them contains (Lemmas 4–5,
//     Claims 1–2); this also generalizes the SLCA semantics the paper's
//     Table 1 illustrates (ancestors that add no new keyword are pruned);
//   - survivors are ranked with the potential-flow model of §5.
package core

import (
	"fmt"
	"strings"

	"repro/internal/textproc"
)

// Keyword is one unit of a query: a single term or a quoted phrase. A
// phrase matches nodes whose text contains every token of the phrase
// (author names such as "Peter Buneman" in the paper's Example 2 behave as
// one keyword).
type Keyword struct {
	// Raw is the keyword as the user typed it.
	Raw string
	// Tokens is the normalized token list (lower-cased, stemmed).
	Tokens []string
}

// IsPhrase reports whether the keyword spans multiple tokens.
func (k Keyword) IsPhrase() bool { return len(k.Tokens) > 1 }

// Query is a GKS keyword query Q = {k1..kn}.
type Query struct {
	Keywords []Keyword
}

// Len returns |Q|.
func (q Query) Len() int { return len(q.Keywords) }

// String renders the query with phrases quoted; ParseQuery(q.String())
// yields an equivalent query.
func (q Query) String() string {
	parts := make([]string, len(q.Keywords))
	for i, k := range q.Keywords {
		if strings.ContainsAny(k.Raw, " \t\n\r") || len(k.Tokens) > 1 {
			parts[i] = `"` + k.Raw + `"`
		} else {
			parts[i] = k.Raw
		}
	}
	return strings.Join(parts, " ")
}

// NewQuery builds a query from pre-split terms; a term containing spaces
// becomes a phrase keyword.
func NewQuery(terms ...string) Query {
	var q Query
	for _, t := range terms {
		kw := makeKeyword(t)
		if len(kw.Tokens) > 0 {
			q.Keywords = append(q.Keywords, kw)
		}
	}
	return q
}

// ParseQuery parses a query string with optional double-quoted phrases,
// e.g. `"Peter Buneman" "Wenfei Fan" 2001`.
func ParseQuery(input string) Query {
	var q Query
	i := 0
	for i < len(input) {
		switch {
		case input[i] == ' ' || input[i] == '\t' || input[i] == '\n':
			i++
		case input[i] == '"':
			j := strings.IndexByte(input[i+1:], '"')
			if j < 0 {
				// Unterminated quote: treat the rest as one phrase.
				j = len(input) - i - 1
			}
			if kw := makeKeyword(input[i+1 : i+1+j]); len(kw.Tokens) > 0 {
				q.Keywords = append(q.Keywords, kw)
			}
			i += j + 2
		default:
			j := i
			for j < len(input) && input[j] != ' ' && input[j] != '\t' && input[j] != '\n' && input[j] != '"' {
				j++
			}
			if kw := makeKeyword(input[i:j]); len(kw.Tokens) > 0 {
				q.Keywords = append(q.Keywords, kw)
			}
			i = j
		}
	}
	return q
}

func makeKeyword(raw string) Keyword {
	raw = strings.TrimSpace(raw)
	// Raw is the display form; embedded quotes would make the rendered
	// query unparseable, so drop them.
	raw = strings.ReplaceAll(raw, `"`, "")
	toks := textproc.Tokenize(raw)
	norm := make([]string, 0, len(toks))
	for _, t := range toks {
		// Multi-token phrases drop stop words, mirroring the indexing
		// pipeline ("David A. Patterson" must match the indexed tokens
		// {david, patterson}). A single-token keyword is kept even if it
		// is a stop word so an explicit query gets a well-defined (empty)
		// lookup instead of silently changing meaning.
		if len(toks) > 1 && textproc.IsStopword(t) {
			continue
		}
		norm = append(norm, textproc.Stem(t))
	}
	if len(norm) == 0 && len(toks) > 0 {
		norm = append(norm, textproc.Stem(toks[0]))
	}
	return Keyword{Raw: raw, Tokens: norm}
}

// TokenSet returns the set of normalized tokens over all keywords; DI
// discovery uses it to exclude query keywords from insights (§6.2).
func (q Query) TokenSet() map[string]bool {
	set := make(map[string]bool)
	for _, k := range q.Keywords {
		for _, t := range k.Tokens {
			set[t] = true
		}
	}
	return set
}

// Validate reports structural problems with the query.
func (q Query) Validate() error {
	if len(q.Keywords) == 0 {
		return fmt.Errorf("core: empty query")
	}
	if len(q.Keywords) > 64 {
		return fmt.Errorf("core: query has %d keywords; at most 64 supported", len(q.Keywords))
	}
	return nil
}
