package core

import (
	"testing"

	"repro/internal/index"
	"repro/internal/xmltree"
)

func TestSearchBestEffort(t *testing.T) {
	e := figure2aEngine(t)
	// {student, karen, mike, john}: all four co-occur in the Data Mining
	// course, so the best effort is s = 4.
	resp, err := e.SearchBestEffort(NewQuery("student", "karen", "mike", "john"))
	if err != nil {
		t.Fatal(err)
	}
	if resp.S != 4 {
		t.Errorf("best-effort s = %d, want 4", resp.S)
	}
	if len(resp.Results) != 1 || resp.Results[0].ID.String() != "0.0.1.1.0" {
		t.Errorf("best-effort results = %+v", resp.Results)
	}

	// {karen, serena, julie}: no course holds all three, but the Databases
	// Area entity does — best effort settles at s = 3 with the Area as the
	// answer.
	resp, err = e.SearchBestEffort(NewQuery("karen", "serena", "julie"))
	if err != nil {
		t.Fatal(err)
	}
	if resp.S != 3 {
		t.Errorf("best-effort s = %d, want 3", resp.S)
	}
	if len(resp.Results) != 1 || resp.Results[0].Label != "Area" {
		t.Errorf("best-effort results = %+v, want the Databases Area", resp.Results)
	}

	// Unknown keywords: empty response at s=1.
	resp, err = e.SearchBestEffort(NewQuery("zeta", "iota"))
	if err != nil {
		t.Fatal(err)
	}
	if len(resp.Results) != 0 {
		t.Errorf("unknown keywords produced %d results", len(resp.Results))
	}

	if _, err := e.SearchBestEffort(Query{}); err == nil {
		t.Error("empty query must error")
	}
}

func TestSearchBestEffortMatchesLinearScan(t *testing.T) {
	e := figure2aEngine(t)
	queries := []Query{
		NewQuery("karen", "mike"),
		NewQuery("student", "karen", "mike", "john", "harry"),
		NewQuery("databases", "karen", "serena"),
		NewQuery("logic", "alice", "karen"),
	}
	for _, q := range queries {
		got, err := e.SearchBestEffort(q)
		if err != nil {
			t.Fatal(err)
		}
		// Linear-scan oracle.
		wantS := 0
		for s := q.Len(); s >= 1; s-- {
			resp, err := e.Search(q, s)
			if err != nil {
				t.Fatal(err)
			}
			if len(resp.Results) > 0 {
				wantS = s
				break
			}
		}
		if wantS == 0 {
			if len(got.Results) != 0 {
				t.Errorf("%v: expected empty response", q)
			}
			continue
		}
		if got.S != wantS {
			t.Errorf("%v: best-effort s = %d, oracle %d", q, got.S, wantS)
		}
	}
}

func TestSearchTopKMatchesFullSearch(t *testing.T) {
	e := figure2aEngine(t)
	q := NewQuery("student", "karen", "mike", "john", "harry")
	full, err := e.Search(q, 1)
	if err != nil {
		t.Fatal(err)
	}
	for k := 1; k <= len(full.Results)+2; k++ {
		topk, err := e.SearchTopK(q, 1, k)
		if err != nil {
			t.Fatal(err)
		}
		want := len(full.Results)
		if k < want {
			want = k
		}
		if len(topk.Results) != want {
			t.Fatalf("k=%d: got %d results, want %d", k, len(topk.Results), want)
		}
		for i := range topk.Results {
			if topk.Results[i].Ord != full.Results[i].Ord {
				t.Errorf("k=%d: result %d = %s, want %s",
					k, i, topk.Results[i].ID, full.Results[i].ID)
			}
		}
	}
}

func TestSearchTopKZeroMeansAll(t *testing.T) {
	e := figure2aEngine(t)
	q := NewQuery("karen", "mike")
	full, err := e.Search(q, 1)
	if err != nil {
		t.Fatal(err)
	}
	topk, err := e.SearchTopK(q, 1, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(topk.Results) != len(full.Results) {
		t.Errorf("k=0 returned %d, want all %d", len(topk.Results), len(full.Results))
	}
}

func TestSearchTopKOnLargerCorpus(t *testing.T) {
	// Cross-check on the Figure 1 fixture with every k.
	ix, err := index.BuildDocument(xmltree.BuildFigure1(), index.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	e := NewEngine(ix)
	q := NewQuery("alpha", "beta", "gamma", "delta")
	full, err := e.Search(q, 2)
	if err != nil {
		t.Fatal(err)
	}
	for k := 1; k <= 3; k++ {
		topk, err := e.SearchTopK(q, 2, k)
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < k && i < len(full.Results); i++ {
			if topk.Results[i].Label != full.Results[i].Label {
				t.Errorf("k=%d pos=%d: %s vs %s", k, i, topk.Results[i].Label, full.Results[i].Label)
			}
		}
	}
}
