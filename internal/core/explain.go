package core

import (
	"context"
	"fmt"
	"strings"
	"time"

	"repro/internal/index"
	"repro/internal/merge"
)

// Explanation traces one search through the GKS pipeline — the efficiency
// story of §4 made inspectable: posting sizes, the merged list, window
// blocks, LCP/LCE candidates, witness filtering and ranking.
type Explanation struct {
	Query Query
	S     int
	// PostingSizes is |S_i| per keyword.
	PostingSizes []int
	// SLSize is |S_L| (the sum of posting sizes).
	SLSize int
	// Blocks is the number of sliding-window blocks with s unique keywords.
	Blocks int
	// LCPNodes is the number of distinct longest-common-prefix nodes.
	LCPNodes int
	// Candidates is the number of distinct candidates after lifting.
	Candidates int
	// EntityCandidates counts candidates that are LCE nodes.
	EntityCandidates int
	// Survivors is the response size after the independent-witness filter.
	Survivors int
	// MergeTime, ScanTime and RankTime split the wall-clock cost of the
	// actual search pipeline (they are coarse views of Stages: ScanTime
	// covers the window, lift and filter stages).
	MergeTime, ScanTime, RankTime time.Duration
	// Stages is the full per-stage timing breakdown of the search.
	Stages StageTimings
	// Response is the final ranked response.
	Response *Response
}

// String renders the trace as a compact report.
func (ex *Explanation) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "query %s (|Q|=%d, s=%d)\n", ex.Query, ex.Query.Len(), ex.S)
	fmt.Fprintf(&b, "  postings: %v -> |S_L| = %d (merge %v)\n",
		ex.PostingSizes, ex.SLSize, ex.MergeTime.Round(time.Microsecond))
	fmt.Fprintf(&b, "  windows:  %d blocks -> %d LCP nodes -> %d candidates (%d LCE) (scan %v)\n",
		ex.Blocks, ex.LCPNodes, ex.Candidates, ex.EntityCandidates, ex.ScanTime.Round(time.Microsecond))
	fmt.Fprintf(&b, "  witness:  %d survivors (rank %v)\n",
		ex.Survivors, ex.RankTime.Round(time.Microsecond))
	return b.String()
}

// Explain runs the search while recording pipeline statistics. The
// response in the result is identical to Search(q, s).
func (e *Engine) Explain(q Query, s int) (*Explanation, error) {
	return e.ExplainCtx(context.Background(), q, s)
}

// ExplainCtx is Explain honoring ctx: the diagnostic pre-pass checks for
// cancellation between stages, and the embedded real search propagates
// ctx into the candidate pipeline exactly like SearchCtx. The shard
// scatter-gather relies on this to cancel sibling explains when one
// shard fails.
func (e *Engine) ExplainCtx(ctx context.Context, q Query, s int) (*Explanation, error) {
	if err := q.Validate(); err != nil {
		return nil, err
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	ex := &Explanation{Query: q}

	// Diagnostic pre-pass: recompute the merged list, blocks and LCP set
	// with maps to expose the intermediate counts the arena-based pipeline
	// no longer materializes. Timings come from the real search below.
	lists := make([][]int32, q.Len())
	for i, kw := range q.Keywords {
		lists[i] = e.postings(kw)
		ex.PostingSizes = append(ex.PostingSizes, len(lists[i]))
	}
	if err := e.ix.LazyErr(); err != nil {
		return nil, err
	}
	sl := merge.Merge(lists)
	ex.SLSize = len(sl)
	if err := ctx.Err(); err != nil {
		return nil, err
	}

	if s < 1 {
		s = 1
	}
	if s > q.Len() {
		s = q.Len()
	}
	ex.S = s

	lcp := map[int32]bool{}
	merge.Windows(sl, s, func(l, r int) {
		ex.Blocks++
		if ord, ok := e.lcpNode(sl[l].Ord, sl[r].Ord); ok {
			lcp[ord] = true
		}
	})
	ex.LCPNodes = len(lcp)
	if err := ctx.Err(); err != nil {
		return nil, err
	}

	resp, cands, arena, err := e.collectCandidates(ctx, q, s)
	if err != nil {
		return nil, err
	}
	ex.Survivors = len(cands)
	// Candidate statistics require the pre-filter view; recompute cheaply
	// from the LCP set.
	seen := map[int32]bool{}
	for ord := range lcp {
		lifted := ord
		for e.ix.CatOf(lifted)&index.Attribute != 0 && e.ix.ParentOf(lifted) >= 0 {
			lifted = e.ix.ParentOf(lifted)
		}
		final := lifted
		isEntity := false
		if ent, ok := e.ix.LowestEntityAncestorOrSelf(lifted); ok {
			if e.ix.DepthOf(ent) > 0 {
				final, isEntity = ent, true
			}
		}
		if e.ix.DepthOf(final) == 0 {
			continue
		}
		if !seen[final] {
			seen[final] = true
			ex.Candidates++
			if isEntity {
				ex.EntityCandidates++
			}
		}
	}

	if len(cands) > 0 {
		start := time.Now()
		resp.Results = make([]Result, 0, len(cands))
		for _, c := range cands {
			resp.Results = append(resp.Results, e.rankCandidate(c, arena.sl))
		}
		sortResults(resp.Results)
		resp.Stages.Rank = time.Since(start)
		e.releaseArena(arena)
	}
	ex.Stages = resp.Stages
	ex.MergeTime = resp.Stages.Merge
	ex.ScanTime = resp.Stages.Windows + resp.Stages.Lift + resp.Stages.Filter
	ex.RankTime = resp.Stages.Rank
	ex.Response = resp
	return ex, nil
}
