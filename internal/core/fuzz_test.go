package core

import (
	"testing"

	"repro/internal/index"
	"repro/internal/xmltree"
)

// Fuzz targets exercise the parsing and search entry points with arbitrary
// input. `go test` runs the seed corpus; `go test -fuzz=FuzzX` explores.

func FuzzParseQuery(f *testing.F) {
	seeds := []string{
		``,
		`hello world`,
		`"Peter Buneman" "Wenfei Fan" 2001`,
		`"unterminated phrase`,
		`""`,
		`   spaced   out   `,
		`"a" "b" "c" "d" "e" "f" "g"`,
		"tabs\tand\nnewlines",
		`quotes "in" the "middle" here`,
		`émile zola ünïcode`,
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, input string) {
		q := ParseQuery(input)
		// Parsed queries must be internally consistent.
		for _, kw := range q.Keywords {
			if len(kw.Tokens) == 0 {
				t.Fatalf("keyword %q has no tokens", kw.Raw)
			}
			for _, tok := range kw.Tokens {
				if tok == "" {
					t.Fatalf("empty token in %q", kw.Raw)
				}
			}
		}
		// Re-parsing the rendered query must not grow it.
		if q.Len() > 0 {
			q2 := ParseQuery(q.String())
			if q2.Len() > q.Len() {
				t.Fatalf("re-parse grew: %d -> %d (%q)", q.Len(), q2.Len(), q.String())
			}
		}
	})
}

func FuzzSearch(f *testing.F) {
	doc := xmltree.BuildFigure2a()
	ix, err := index.BuildDocument(doc, index.DefaultOptions())
	if err != nil {
		f.Fatal(err)
	}
	eng := NewEngine(ix)
	f.Add("karen mike", 2)
	f.Add("student", 1)
	f.Add(`"Data Mining" karen`, 9)
	f.Add("", 0)
	f.Add("the and of", -5)
	f.Fuzz(func(t *testing.T, input string, s int) {
		q := ParseQuery(input)
		if q.Len() == 0 || q.Len() > 64 {
			return
		}
		resp, err := eng.Search(q, s)
		if err != nil {
			t.Fatalf("Search(%q, %d): %v", input, s, err)
		}
		for _, r := range resp.Results {
			if r.KeywordCount < resp.S {
				t.Fatalf("result below threshold: %+v", r)
			}
			if r.Rank < 0 {
				t.Fatalf("negative rank: %+v", r)
			}
			if len(r.ID.Path) <= 1 {
				t.Fatalf("document root returned: %+v", r)
			}
		}
	})
}
