package core

import (
	"repro/internal/merge"
)

// queryArena is the per-query scratch state of the search pipeline, pooled
// on the engine so the steady-state hot path runs without per-query map or
// slice allocations. The two flat tables are indexed by node ordinal —
// they replace the seed pipeline's lcpCounts and byOrd maps — and are
// cleared through the touched/candOrds lists, so a query pays O(its own
// footprint) to reset them, not O(index size).
//
// An arena is engine-bound: the tables are sized to the engine's node
// count, and the engine's index never changes shape in place (mutations
// build a new Engine), so pooled arenas always fit.
type queryArena struct {
	// lists holds the per-keyword posting list headers for the merge.
	lists [][]int32
	// sl is the reusable S_L buffer filled by merge.MergeInto.
	sl []merge.Entry
	// lcpCount counts sliding-window blocks per LCP ordinal.
	lcpCount []int32
	// touched lists the ordinals with lcpCount != 0, in first-touch order.
	touched []int32
	// candIdx maps a lifted ordinal to its slot in cands, offset by one so
	// the zero value means "no candidate yet".
	candIdx []int32
	// candOrds lists the ordinals with candIdx set.
	candOrds []int32
	// cands is the candidate slab: one entry per distinct lifted node,
	// replacing the seed's per-candidate heap allocations. Pointers into
	// the slab are taken only after the slab is fully built (ptrs), so
	// append-time reallocation cannot invalidate them.
	cands []candidate
	// ptrs is the pre-order sorted view of cands that the mask sweep,
	// witness filter and ranking loops walk.
	ptrs []*candidate
	// maskStack is the open-candidate stack of computeMasks.
	maskStack []maskOpen
	// witStack is the pending-candidate stack of the witness filter.
	witStack []*candidate
}

// acquireArena returns a pooled arena, growing a fresh one on a cold pool.
func (e *Engine) acquireArena() *queryArena {
	if a, ok := e.arenas.Get().(*queryArena); ok {
		return a
	}
	n := e.ix.NodeCount()
	return &queryArena{
		lcpCount: make([]int32, n),
		candIdx:  make([]int32, n),
	}
}

// releaseArena resets a to a clean state and returns it to the pool. Reset
// must go through here on every exit path (including cancellations), so
// the flat tables are always zeroed before reuse.
func (e *Engine) releaseArena(a *queryArena) {
	for _, ord := range a.touched {
		a.lcpCount[ord] = 0
	}
	for _, ord := range a.candOrds {
		a.candIdx[ord] = 0
	}
	a.lists = a.lists[:0]
	a.sl = a.sl[:0]
	a.touched = a.touched[:0]
	a.candOrds = a.candOrds[:0]
	a.cands = a.cands[:0]
	a.ptrs = a.ptrs[:0]
	a.maskStack = a.maskStack[:0]
	a.witStack = a.witStack[:0]
	e.arenas.Put(a)
}
