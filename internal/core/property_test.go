package core

import (
	"fmt"
	"math/bits"
	"math/rand"
	"testing"

	"repro/internal/index"
	"repro/internal/lca"
	"repro/internal/merge"
	"repro/internal/xmltree"
)

// Randomized invariant tests: the GKS pipeline is checked against its
// definitional properties on hundreds of random labeled trees, both with
// and without entity structure.

// randomTree builds a random document. withEntities controls whether the
// generator produces attribute+repeating patterns (so entity nodes exist).
func randomTree(rng *rand.Rand, withEntities bool) *xmltree.Document {
	words := []string{"apple", "pear", "plum", "fig", "cherry", "mango"}
	var build func(depth int) *xmltree.Node
	build = func(depth int) *xmltree.Node {
		if depth >= 5 || rng.Intn(4) == 0 {
			return xmltree.ET("leaf", words[rng.Intn(len(words))])
		}
		if withEntities && rng.Intn(3) == 0 {
			// Entity-shaped node: one attribute child + repeating members.
			e := xmltree.E("entity", xmltree.ET("label", words[rng.Intn(len(words))]))
			members := 2 + rng.Intn(3)
			for i := 0; i < members; i++ {
				m := xmltree.E("member")
				for j := 0; j < 1+rng.Intn(2); j++ {
					m.Append(build(depth + 2))
				}
				e.Append(m)
			}
			return e
		}
		n := xmltree.E(fmt.Sprintf("n%d", rng.Intn(4)))
		for i := 0; i < 1+rng.Intn(3); i++ {
			n.Append(build(depth + 1))
		}
		return n
	}
	root := xmltree.E("root")
	for i := 0; i < 2+rng.Intn(3); i++ {
		root.Append(build(1))
	}
	return xmltree.NewDocument("random.xml", 0, root)
}

// distinctInSubtree counts the distinct query keywords under ord.
func distinctInSubtree(ix *index.Index, lists [][]int32, ord int32) int {
	start, end := ix.SubtreeRange(ord)
	count := 0
	for _, list := range lists {
		lo, hi := merge.OrdRange(toEntries(list, 0), start, end)
		if hi > lo {
			count++
		}
	}
	return count
}

func toEntries(list []int32, kw uint8) []merge.Entry {
	out := make([]merge.Entry, len(list))
	for i, v := range list {
		out[i] = merge.Entry{Ord: v, Kw: kw}
	}
	return out
}

func TestPropertyThresholdAndWitness(t *testing.T) {
	rng := rand.New(rand.NewSource(2024))
	for trial := 0; trial < 120; trial++ {
		doc := randomTree(rng, trial%2 == 0)
		ix, err := index.BuildDocument(doc, index.Options{IndexElementNames: false})
		if err != nil {
			t.Fatal(err)
		}
		eng := NewEngine(ix)
		terms := []string{"apple", "pear", "plum", "fig"}
		q := NewQuery(terms...)
		lists := eng.PostingLists(q)
		for s := 1; s <= 4; s++ {
			resp, err := eng.Search(q, s)
			if err != nil {
				t.Fatal(err)
			}
			masks := map[int32]uint64{}
			for _, r := range resp.Results {
				masks[r.Ord] = r.Mask
				// P1: every result holds >= s distinct keywords, verified
				// against the raw posting lists (not the engine's own mask).
				if got := distinctInSubtree(ix, lists, r.Ord); got < s {
					t.Fatalf("trial %d s=%d: result %s has %d distinct keywords",
						trial, s, r.ID, got)
				}
				if got := bits.OnesCount64(r.Mask); got != r.KeywordCount {
					t.Fatalf("mask/count mismatch on %s", r.ID)
				}
				// P2: no document roots in the response.
				if len(r.ID.Path) == 1 {
					t.Fatalf("trial %d: document root returned", trial)
				}
			}
			// P3: independent witness — every result carries a keyword not
			// covered by the union of its descendant results.
			for _, r := range resp.Results {
				var covered uint64
				for ord, m := range masks {
					if ord != r.Ord && ix.ContainsOrd(r.Ord, ord) {
						covered |= m
					}
				}
				if r.Mask&^covered == 0 {
					t.Fatalf("trial %d s=%d: result %s has no independent witness",
						trial, s, r.ID)
				}
			}
		}
	}
}

func TestPropertyLemma2Monotonicity(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 100; trial++ {
		doc := randomTree(rng, trial%2 == 0)
		ix, err := index.BuildDocument(doc, index.Options{IndexElementNames: false})
		if err != nil {
			t.Fatal(err)
		}
		eng := NewEngine(ix)
		q := NewQuery("apple", "pear", "plum")
		var prev *Response
		for s := 3; s >= 1; s-- {
			resp, err := eng.Search(q, s)
			if err != nil {
				t.Fatal(err)
			}
			if prev != nil {
				// |R(s+1)| <= |R(s)|.
				if len(prev.Results) > len(resp.Results) {
					t.Fatalf("trial %d: |R(%d)|=%d > |R(%d)|=%d",
						trial, s+1, len(prev.Results), s, len(resp.Results))
				}
				// Every R(s+1) node has an ancestor-or-self in R(s) (the
				// mapping used in the paper's Lemma 2 proof).
				for _, hi := range prev.Results {
					found := false
					for _, lo := range resp.Results {
						if lo.ID.IsAncestorOrSelf(hi.ID) || hi.ID.IsAncestorOrSelf(lo.ID) {
							found = true
							break
						}
					}
					if !found {
						t.Fatalf("trial %d: R(%d) node %s unrelated to every R(%d) node",
							trial, s+1, hi.ID, s)
					}
				}
			}
			prev = resp
		}
	}
}

func TestPropertySLCACoverage(t *testing.T) {
	// At s = |Q| every SLCA node must have a response node on its ancestor
	// path (itself, or its LCE lift) — "GKS response includes LCA nodes,
	// if any" (§1, abstract).
	rng := rand.New(rand.NewSource(99))
	for trial := 0; trial < 100; trial++ {
		doc := randomTree(rng, trial%2 == 1)
		ix, err := index.BuildDocument(doc, index.Options{IndexElementNames: false})
		if err != nil {
			t.Fatal(err)
		}
		eng := NewEngine(ix)
		q := NewQuery("apple", "pear")
		lists := eng.PostingLists(q)
		slcas := lca.SLCA(ix, lists)
		resp, err := eng.Search(q, 2)
		if err != nil {
			t.Fatal(err)
		}
		full := uint64(1)<<uint(q.Len()) - 1
		for _, sl := range slcas {
			if len(ix.Nodes[sl].ID.Path) == 1 {
				continue // roots are excluded from GKS responses by design
			}
			covered := false
			for _, r := range resp.Results {
				if r.ID.IsAncestorOrSelf(ix.Nodes[sl].ID) {
					covered = true
					break
				}
			}
			if covered {
				continue
			}
			// An SLCA can legitimately go uncovered when its LCE lift loses
			// its independent witness to a nested entity elsewhere
			// (Def 2.2.1); in that case the response must still contain a
			// full-match node — the user never loses the AND answer.
			fullMatch := false
			for _, r := range resp.Results {
				if r.Mask == full {
					fullMatch = true
					break
				}
			}
			if !fullMatch {
				t.Fatalf("trial %d: SLCA %s uncovered and no full-match result", trial, ix.Nodes[sl].ID)
			}
		}
		// And if an SLCA exists below the root, the response is non-empty.
		nonRootSLCA := false
		for _, sl := range slcas {
			if len(ix.Nodes[sl].ID.Path) > 1 {
				nonRootSLCA = true
			}
		}
		if nonRootSLCA && len(resp.Results) == 0 {
			t.Fatalf("trial %d: empty response despite non-root SLCA", trial)
		}
	}
}

func TestPropertyRankBounds(t *testing.T) {
	// rank(e) <= P|e: the potential-flow rank never exceeds the initial
	// potential, and is strictly positive for every result.
	rng := rand.New(rand.NewSource(5))
	for trial := 0; trial < 80; trial++ {
		doc := randomTree(rng, true)
		ix, err := index.BuildDocument(doc, index.Options{IndexElementNames: false})
		if err != nil {
			t.Fatal(err)
		}
		eng := NewEngine(ix)
		resp, err := eng.Search(NewQuery("apple", "pear", "plum"), 1)
		if err != nil {
			t.Fatal(err)
		}
		for _, r := range resp.Results {
			if r.Rank <= 0 {
				t.Fatalf("trial %d: non-positive rank %v for %s", trial, r.Rank, r.ID)
			}
			if r.Rank > float64(r.KeywordCount)+1e-9 {
				t.Fatalf("trial %d: rank %v exceeds potential %d for %s",
					trial, r.Rank, r.KeywordCount, r.ID)
			}
		}
	}
}

func TestPropertyTopKAgreesWithFull(t *testing.T) {
	rng := rand.New(rand.NewSource(64))
	for trial := 0; trial < 60; trial++ {
		doc := randomTree(rng, trial%2 == 0)
		ix, err := index.BuildDocument(doc, index.Options{IndexElementNames: false})
		if err != nil {
			t.Fatal(err)
		}
		eng := NewEngine(ix)
		q := NewQuery("apple", "pear", "plum")
		full, err := eng.Search(q, 1)
		if err != nil {
			t.Fatal(err)
		}
		for _, k := range []int{1, 3, 7} {
			topk, err := eng.SearchTopK(q, 1, k)
			if err != nil {
				t.Fatal(err)
			}
			want := k
			if len(full.Results) < want {
				want = len(full.Results)
			}
			if len(topk.Results) != want {
				t.Fatalf("trial %d k=%d: %d results, want %d",
					trial, k, len(topk.Results), want)
			}
			for i := range topk.Results {
				// Ranks must agree position-wise (ties may reorder equal-
				// rank results, so compare ranks rather than ordinals).
				if diff := topk.Results[i].Rank - full.Results[i].Rank; diff > 1e-9 || diff < -1e-9 {
					t.Fatalf("trial %d k=%d pos=%d: rank %v vs %v",
						trial, k, i, topk.Results[i].Rank, full.Results[i].Rank)
				}
			}
		}
	}
}

func TestPropertyDeterminism(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	doc := randomTree(rng, true)
	ix, err := index.BuildDocument(doc, index.Options{IndexElementNames: false})
	if err != nil {
		t.Fatal(err)
	}
	eng := NewEngine(ix)
	q := NewQuery("apple", "pear", "plum")
	first, err := eng.Search(q, 2)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		again, err := eng.Search(q, 2)
		if err != nil {
			t.Fatal(err)
		}
		if len(again.Results) != len(first.Results) {
			t.Fatal("non-deterministic result count")
		}
		for j := range again.Results {
			if again.Results[j].Ord != first.Results[j].Ord {
				t.Fatal("non-deterministic result order")
			}
		}
	}
}

func TestComputeMasksMatchesMaskTable(t *testing.T) {
	// Differential test: the engine's stack-sweep mask computation must
	// equal the sparse-table range OR for arbitrary nested candidates.
	rng := rand.New(rand.NewSource(321))
	for trial := 0; trial < 80; trial++ {
		doc := randomTree(rng, trial%2 == 0)
		ix, err := index.BuildDocument(doc, index.Options{IndexElementNames: false})
		if err != nil {
			t.Fatal(err)
		}
		eng := NewEngine(ix)
		lists := eng.PostingLists(NewQuery("apple", "pear", "plum"))
		sl := merge.Merge(lists)
		if len(sl) == 0 {
			continue
		}
		// Candidates: a random subset of element nodes (their ranges nest
		// or are disjoint by construction).
		var cands []*candidate
		for ord := range ix.Nodes {
			if rng.Intn(3) == 0 {
				cands = append(cands, &candidate{ord: int32(ord)})
			}
		}
		computeMasks(ix, cands, sl, nil)
		mt := merge.NewMaskTable(sl)
		for _, c := range cands {
			start, end := ix.SubtreeRange(c.ord)
			if want := mt.SubtreeMask(start, end); c.mask != want {
				t.Fatalf("trial %d: node %s mask %b, table %b",
					trial, ix.Nodes[c.ord].ID, c.mask, want)
			}
		}
	}
}
