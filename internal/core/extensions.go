package core

import (
	"context"
	"math/bits"
	"sort"
	"time"
)

// Extensions beyond the paper's §4 pipeline: best-effort thresholding and
// top-k retrieval with rank-bound pruning. Both build on the same
// candidate stages as Search and return paper-identical results.

// SearchBestEffort finds the largest threshold s for which R_Q(s) is
// non-empty and returns that response. By Lemma 2, non-emptiness is
// monotone in s (|R_Q(s1)| ≤ |R_Q(s2)| for s1 > s2), so a binary search
// over s ∈ [1, |Q|] locates the boundary in O(log |Q|) searches. This is
// "best-effort AND semantics": the engine honors as much of the query as
// the data supports, which is exactly how the paper motivates relaxing
// AND-semantics for imperfect queries (§1.1).
func (e *Engine) SearchBestEffort(q Query) (*Response, error) {
	return e.SearchBestEffortCtx(context.Background(), q)
}

// SearchBestEffortCtx is SearchBestEffort honoring ctx; each probe search
// of the binary scan is individually cancellable.
func (e *Engine) SearchBestEffortCtx(ctx context.Context, q Query) (*Response, error) {
	return BestEffort(ctx, q, func(ctx context.Context, s int) (*Response, error) {
		return e.SearchCtx(ctx, q, s)
	})
}

// BestEffort runs the best-effort threshold scan over any search function:
// it finds the largest s ∈ [1, |Q|] for which search(s) returns a
// non-empty response, by binary search (non-emptiness is monotone in s,
// Lemma 2). It is shared between the single-index engine and the sharded
// scatter-gather searcher so both implement identical best-effort
// semantics.
func BestEffort(ctx context.Context, q Query, search func(ctx context.Context, s int) (*Response, error)) (*Response, error) {
	if err := q.Validate(); err != nil {
		return nil, err
	}
	lo, hi := 1, q.Len() // invariant: R(lo) known non-empty or lo==1 untested
	best, err := search(ctx, lo)
	if err != nil {
		return nil, err
	}
	if len(best.Results) == 0 {
		return best, nil // nothing matches at all
	}
	for lo < hi {
		mid := (lo + hi + 1) / 2
		resp, err := search(ctx, mid)
		if err != nil {
			return nil, err
		}
		if len(resp.Results) > 0 {
			lo, best = mid, resp
		} else {
			hi = mid - 1
		}
	}
	return best, nil
}

// SearchTopK returns the k highest-ranked response nodes for the query at
// threshold s. It prunes with the rank upper bound rank(e) ≤ P|e (the
// potential-flow rank can never exceed the initial potential, i.e. the
// candidate's distinct-keyword count): candidates are visited in
// decreasing keyword count, and scoring stops once k results are in hand
// and the next candidate's upper bound cannot beat the current k-th rank.
// For selective queries this skips the expensive per-candidate terminal
// scan for the long tail of 1-keyword candidates.
func (e *Engine) SearchTopK(q Query, s, k int) (*Response, error) {
	return e.SearchTopKCtx(context.Background(), q, s, k)
}

// SearchTopKCtx is SearchTopK honoring ctx.
func (e *Engine) SearchTopKCtx(ctx context.Context, q Query, s, k int) (*Response, error) {
	resp, cands, a, err := e.collectCandidates(ctx, q, s)
	if err != nil || len(cands) == 0 {
		return resp, err
	}
	defer e.releaseArena(a)
	start := time.Now()
	sl := a.sl
	if k <= 0 || k >= len(cands) {
		// No pruning opportunity: rank everything.
		resp.Results = make([]Result, 0, len(cands))
		for i, c := range cands {
			if i&rankCheckMask == 0 && ctx.Err() != nil {
				return nil, ctx.Err()
			}
			resp.Results = append(resp.Results, e.rankCandidate(c, sl))
		}
		sortResults(resp.Results)
		if k > 0 && len(resp.Results) > k {
			resp.Results = resp.Results[:k]
		}
		resp.Stages.Rank = time.Since(start)
		return resp, nil
	}

	// Visit candidates by decreasing upper bound (distinct keyword count).
	order := make([]*candidate, len(cands))
	copy(order, cands)
	sort.SliceStable(order, func(i, j int) bool {
		return bits.OnesCount64(order[i].mask) > bits.OnesCount64(order[j].mask)
	})

	// Maintain the running top k in a bounded min-heap whose root is the
	// *worst* kept result under the response order: a full heap admits a
	// newly ranked result only if it beats the root, and the pruning bound
	// (the k-th rank) is the root's rank. O(n log k) maintenance versus
	// the previous full re-sort after every accepted candidate
	// (O(n·k log k)); the response order is total (ordinals are unique),
	// so the kept set — and therefore the output — is byte-identical.
	h := make([]Result, 0, k)
	var kthRank float64
	for i, c := range order {
		if i&rankCheckMask == 0 && ctx.Err() != nil {
			return nil, ctx.Err()
		}
		upper := float64(bits.OnesCount64(c.mask))
		if len(h) == k && upper < kthRank {
			break // no remaining candidate can enter the top k
		}
		r := e.rankCandidate(c, sl)
		if len(h) < k {
			h = append(h, r)
			topkSiftUp(h, len(h)-1)
		} else if resultWorse(h[0], r) {
			h[0] = r
			topkSiftDown(h, 0)
		}
		if len(h) == k {
			kthRank = h[0].Rank
		}
	}
	// Heap-sort in place: popping the worst to the back leaves the heap
	// best-first — exactly the sortResults order.
	for n := len(h) - 1; n > 0; n-- {
		h[0], h[n] = h[n], h[0]
		topkSiftDown(h[:n], 0)
	}
	resp.Results = h
	resp.Stages.Rank = time.Since(start)
	return resp, nil
}

// resultWorse reports whether a orders after b in the response (rank asc,
// keyword count asc, ordinal desc — the inverse of sortResults). It is a
// total order because candidate ordinals are unique.
func resultWorse(a, b Result) bool {
	if a.Rank != b.Rank {
		return a.Rank < b.Rank
	}
	if a.KeywordCount != b.KeywordCount {
		return a.KeywordCount < b.KeywordCount
	}
	return a.Ord > b.Ord
}

// topkSiftUp restores the worst-at-root heap invariant after appending at i.
func topkSiftUp(h []Result, i int) {
	for i > 0 {
		parent := (i - 1) / 2
		if !resultWorse(h[i], h[parent]) {
			return
		}
		h[i], h[parent] = h[parent], h[i]
		i = parent
	}
}

// topkSiftDown restores the worst-at-root heap invariant after replacing h[i].
func topkSiftDown(h []Result, i int) {
	for {
		worst := i
		if l := 2*i + 1; l < len(h) && resultWorse(h[l], h[worst]) {
			worst = l
		}
		if r := 2*i + 2; r < len(h) && resultWorse(h[r], h[worst]) {
			worst = r
		}
		if worst == i {
			return
		}
		h[i], h[worst] = h[worst], h[i]
		i = worst
	}
}
