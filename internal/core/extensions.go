package core

import "sort"

// Extensions beyond the paper's §4 pipeline: best-effort thresholding and
// top-k retrieval with rank-bound pruning. Both build on the same
// candidate stages as Search and return paper-identical results.

// SearchBestEffort finds the largest threshold s for which R_Q(s) is
// non-empty and returns that response. By Lemma 2, non-emptiness is
// monotone in s (|R_Q(s1)| ≤ |R_Q(s2)| for s1 > s2), so a binary search
// over s ∈ [1, |Q|] locates the boundary in O(log |Q|) searches. This is
// "best-effort AND semantics": the engine honors as much of the query as
// the data supports, which is exactly how the paper motivates relaxing
// AND-semantics for imperfect queries (§1.1).
func (e *Engine) SearchBestEffort(q Query) (*Response, error) {
	if err := q.Validate(); err != nil {
		return nil, err
	}
	lo, hi := 1, q.Len() // invariant: R(lo) known non-empty or lo==1 untested
	best, err := e.Search(q, lo)
	if err != nil {
		return nil, err
	}
	if len(best.Results) == 0 {
		return best, nil // nothing matches at all
	}
	for lo < hi {
		mid := (lo + hi + 1) / 2
		resp, err := e.Search(q, mid)
		if err != nil {
			return nil, err
		}
		if len(resp.Results) > 0 {
			lo, best = mid, resp
		} else {
			hi = mid - 1
		}
	}
	return best, nil
}

// SearchTopK returns the k highest-ranked response nodes for the query at
// threshold s. It prunes with the rank upper bound rank(e) ≤ P|e (the
// potential-flow rank can never exceed the initial potential, i.e. the
// candidate's distinct-keyword count): candidates are visited in
// decreasing keyword count, and scoring stops once k results are in hand
// and the next candidate's upper bound cannot beat the current k-th rank.
// For selective queries this skips the expensive per-candidate terminal
// scan for the long tail of 1-keyword candidates.
func (e *Engine) SearchTopK(q Query, s, k int) (*Response, error) {
	resp, cands, sl, err := e.collectCandidates(q, s)
	if err != nil || len(cands) == 0 {
		return resp, err
	}
	if k <= 0 || k >= len(cands) {
		// No pruning opportunity: rank everything.
		for _, c := range cands {
			resp.Results = append(resp.Results, e.rankCandidate(c, sl))
		}
		sortResults(resp.Results)
		if k > 0 && len(resp.Results) > k {
			resp.Results = resp.Results[:k]
		}
		return resp, nil
	}

	// Visit candidates by decreasing upper bound (distinct keyword count).
	order := make([]*candidate, len(cands))
	copy(order, cands)
	sort.SliceStable(order, func(i, j int) bool {
		return popcount64(order[i].mask) > popcount64(order[j].mask)
	})
	var kthRank float64
	for _, c := range order {
		upper := float64(popcount64(c.mask))
		if len(resp.Results) >= k && upper < kthRank {
			break // no remaining candidate can enter the top k
		}
		resp.Results = append(resp.Results, e.rankCandidate(c, sl))
		sortResults(resp.Results)
		if len(resp.Results) > k {
			resp.Results = resp.Results[:k]
		}
		if len(resp.Results) == k {
			kthRank = resp.Results[k-1].Rank
		}
	}
	return resp, nil
}

func popcount64(x uint64) int {
	c := 0
	for ; x != 0; x &= x - 1 {
		c++
	}
	return c
}
