package core

import (
	"context"
	"sort"
)

// Extensions beyond the paper's §4 pipeline: best-effort thresholding and
// top-k retrieval with rank-bound pruning. Both build on the same
// candidate stages as Search and return paper-identical results.

// SearchBestEffort finds the largest threshold s for which R_Q(s) is
// non-empty and returns that response. By Lemma 2, non-emptiness is
// monotone in s (|R_Q(s1)| ≤ |R_Q(s2)| for s1 > s2), so a binary search
// over s ∈ [1, |Q|] locates the boundary in O(log |Q|) searches. This is
// "best-effort AND semantics": the engine honors as much of the query as
// the data supports, which is exactly how the paper motivates relaxing
// AND-semantics for imperfect queries (§1.1).
func (e *Engine) SearchBestEffort(q Query) (*Response, error) {
	return e.SearchBestEffortCtx(context.Background(), q)
}

// SearchBestEffortCtx is SearchBestEffort honoring ctx; each probe search
// of the binary scan is individually cancellable.
func (e *Engine) SearchBestEffortCtx(ctx context.Context, q Query) (*Response, error) {
	return BestEffort(ctx, q, func(ctx context.Context, s int) (*Response, error) {
		return e.SearchCtx(ctx, q, s)
	})
}

// BestEffort runs the best-effort threshold scan over any search function:
// it finds the largest s ∈ [1, |Q|] for which search(s) returns a
// non-empty response, by binary search (non-emptiness is monotone in s,
// Lemma 2). It is shared between the single-index engine and the sharded
// scatter-gather searcher so both implement identical best-effort
// semantics.
func BestEffort(ctx context.Context, q Query, search func(ctx context.Context, s int) (*Response, error)) (*Response, error) {
	if err := q.Validate(); err != nil {
		return nil, err
	}
	lo, hi := 1, q.Len() // invariant: R(lo) known non-empty or lo==1 untested
	best, err := search(ctx, lo)
	if err != nil {
		return nil, err
	}
	if len(best.Results) == 0 {
		return best, nil // nothing matches at all
	}
	for lo < hi {
		mid := (lo + hi + 1) / 2
		resp, err := search(ctx, mid)
		if err != nil {
			return nil, err
		}
		if len(resp.Results) > 0 {
			lo, best = mid, resp
		} else {
			hi = mid - 1
		}
	}
	return best, nil
}

// SearchTopK returns the k highest-ranked response nodes for the query at
// threshold s. It prunes with the rank upper bound rank(e) ≤ P|e (the
// potential-flow rank can never exceed the initial potential, i.e. the
// candidate's distinct-keyword count): candidates are visited in
// decreasing keyword count, and scoring stops once k results are in hand
// and the next candidate's upper bound cannot beat the current k-th rank.
// For selective queries this skips the expensive per-candidate terminal
// scan for the long tail of 1-keyword candidates.
func (e *Engine) SearchTopK(q Query, s, k int) (*Response, error) {
	return e.SearchTopKCtx(context.Background(), q, s, k)
}

// SearchTopKCtx is SearchTopK honoring ctx.
func (e *Engine) SearchTopKCtx(ctx context.Context, q Query, s, k int) (*Response, error) {
	resp, cands, sl, err := e.collectCandidates(ctx, q, s)
	if err != nil || len(cands) == 0 {
		return resp, err
	}
	if k <= 0 || k >= len(cands) {
		// No pruning opportunity: rank everything.
		for i, c := range cands {
			if i&rankCheckMask == 0 && ctx.Err() != nil {
				return nil, ctx.Err()
			}
			resp.Results = append(resp.Results, e.rankCandidate(c, sl))
		}
		sortResults(resp.Results)
		if k > 0 && len(resp.Results) > k {
			resp.Results = resp.Results[:k]
		}
		return resp, nil
	}

	// Visit candidates by decreasing upper bound (distinct keyword count).
	order := make([]*candidate, len(cands))
	copy(order, cands)
	sort.SliceStable(order, func(i, j int) bool {
		return popcount64(order[i].mask) > popcount64(order[j].mask)
	})
	var kthRank float64
	for i, c := range order {
		if i&rankCheckMask == 0 && ctx.Err() != nil {
			return nil, ctx.Err()
		}
		upper := float64(popcount64(c.mask))
		if len(resp.Results) >= k && upper < kthRank {
			break // no remaining candidate can enter the top k
		}
		resp.Results = append(resp.Results, e.rankCandidate(c, sl))
		sortResults(resp.Results)
		if len(resp.Results) > k {
			resp.Results = resp.Results[:k]
		}
		if len(resp.Results) == k {
			kthRank = resp.Results[k-1].Rank
		}
	}
	return resp, nil
}

func popcount64(x uint64) int {
	c := 0
	for ; x != 0; x &= x - 1 {
		c++
	}
	return c
}
