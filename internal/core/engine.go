package core

import (
	"context"
	"math/bits"
	"slices"
	"sort"
	"sync"
	"time"

	"repro/internal/dewey"
	"repro/internal/index"
	"repro/internal/merge"
	"repro/internal/rank"
)

// Engine runs GKS searches against a built index.
type Engine struct {
	ix     *index.Index
	scorer rank.Scorer
	// arenas pools per-query scratch state (see queryArena); the engine's
	// index is immutable, so pooled arenas always match its node count.
	arenas sync.Pool
}

// NewEngine wraps ix in a search engine.
func NewEngine(ix *index.Index) *Engine {
	return &Engine{ix: ix, scorer: rank.Scorer{IX: ix}}
}

// Index exposes the underlying index (used by the analysis engine).
func (e *Engine) Index() *index.Index { return e.ix }

// Result is one node of the GKS response R_Q(s), ranked.
type Result struct {
	// Ord is the node's ordinal in the index's pre-order table.
	Ord int32
	// ID is the node's Dewey identifier.
	ID dewey.ID
	// Label is the node's element tag.
	Label string
	// IsEntity reports whether the node is an LCE node (§2.2); false for
	// plain LCP nodes that have no entity ancestor.
	IsEntity bool
	// Mask is the set of distinct query keywords in the node's subtree.
	Mask uint64
	// KeywordCount is the number of distinct query keywords in the subtree
	// (popcount of Mask) — the initial potential P|e of the ranking model.
	KeywordCount int
	// LCPCount is the number of sliding-window blocks that mapped onto
	// this node (the paper's LCP-list counter).
	LCPCount int
	// Rank is the potential-flow score (§5); results are ordered by it.
	Rank float64
}

// Response is the outcome of a GKS search.
type Response struct {
	// Query is the executed query.
	Query Query
	// S is the effective threshold min(s, |Q|) after clamping.
	S int
	// Results holds the response nodes, highest rank first.
	Results []Result
	// SLSize is |S_L|, the merged posting list length (Figures 8–10 of the
	// paper plot response time against it).
	SLSize int
	// Partial reports that the response covers only part of the data: a
	// sharded scatter-gather search ran with some shards failing and
	// degrade-to-partial enabled. Single-index searches never set it.
	Partial bool
	// Stages splits the wall-clock cost of producing this response across
	// the pipeline stages. A sharded response sums its shards' stages, so
	// the totals read as aggregate work, not critical-path latency.
	Stages StageTimings
}

// StageTimings is the per-stage wall-clock breakdown of one search.
type StageTimings struct {
	// Merge covers posting-list resolution and the k-way merge into S_L.
	Merge time.Duration
	// Windows covers the sliding-window block scan and LCP resolution.
	Windows time.Duration
	// Lift covers candidate lifting, dedupe and subtree-mask computation.
	Lift time.Duration
	// Filter covers the independent-witness filter.
	Filter time.Duration
	// Rank covers candidate scoring and response ordering.
	Rank time.Duration
}

// Total sums the stage times.
func (t StageTimings) Total() time.Duration {
	return t.Merge + t.Windows + t.Lift + t.Filter + t.Rank
}

// Add accumulates o into t (used when aggregating shard responses).
func (t *StageTimings) Add(o StageTimings) {
	t.Merge += o.Merge
	t.Windows += o.Windows
	t.Lift += o.Lift
	t.Filter += o.Filter
	t.Rank += o.Rank
}

// KeywordsOf lists the raw query keywords present in the result's subtree.
func (r Response) KeywordsOf(res Result) []string {
	var out []string
	for m := res.Mask; m != 0; m &= m - 1 {
		kw := bits.TrailingZeros64(m)
		if kw < len(r.Query.Keywords) {
			out = append(out, r.Query.Keywords[kw].Raw)
		}
	}
	return out
}

// candidate is a survivor of the GKS pipeline before ranking.
type candidate struct {
	ord      int32
	isEntity bool
	mask     uint64
	lcp      int
	covered  uint64
	survives bool
}

// Search executes query q with threshold s. s is clamped to [1, |Q|]
// (the paper's response contains nodes with at least min(s,|Q|) query
// keywords). The returned response is ranked.
func (e *Engine) Search(q Query, s int) (*Response, error) {
	return e.SearchCtx(context.Background(), q, s)
}

// SearchCtx is Search honoring cancellation and deadlines from ctx. The
// pipeline polls ctx periodically — inside the S_L merge, the window scan
// and the ranking loop — so an expired request stops burning CPU at the
// next checkpoint instead of completing a doomed search on a detached
// goroutine. A cancelled search returns ctx.Err() and no response.
func (e *Engine) SearchCtx(ctx context.Context, q Query, s int) (*Response, error) {
	resp, cands, a, err := e.collectCandidates(ctx, q, s)
	if err != nil || len(cands) == 0 {
		return resp, err
	}
	defer e.releaseArena(a)
	// Rank every survivor with the potential-flow model and order the
	// response (§5).
	start := time.Now()
	resp.Results = make([]Result, 0, len(cands))
	for i, c := range cands {
		if i&rankCheckMask == 0 && ctx.Err() != nil {
			return nil, ctx.Err()
		}
		resp.Results = append(resp.Results, e.rankCandidate(c, a.sl))
	}
	sortResults(resp.Results)
	resp.Stages.Rank = time.Since(start)
	return resp, nil
}

// rankCheckMask spaces the cancellation polls of the ranking loops: one
// check every 256 candidates keeps the overhead invisible while a single
// candidate's terminal scan stays bounded by its subtree.
const rankCheckMask = 1<<8 - 1

// collectCandidates runs stages 1–4 of the pipeline (merge, windows,
// lifting, witness filter) and returns the surviving candidates in
// pre-order, unranked. ctx is polled at stage boundaries and periodically
// inside the merge and window scans.
//
// All scratch state (including S_L, reachable as arena.sl) lives in the
// returned arena; the caller must pass it to releaseArena once the
// survivors have been consumed. On error or empty-survivor returns the
// arena has already been released and comes back nil.
func (e *Engine) collectCandidates(ctx context.Context, q Query, s int) (*Response, []*candidate, *queryArena, error) {
	if err := q.Validate(); err != nil {
		return nil, nil, nil, err
	}
	if s < 1 {
		s = 1
	}
	if s > q.Len() {
		s = q.Len()
	}
	resp := &Response{Query: q, S: s}
	a := e.acquireArena()

	// 1. Fetch the inverted-index list S_i of every keyword and merge them
	// into the Dewey-ordered list S_L (§4.1).
	start := time.Now()
	lists := a.lists
	for _, kw := range q.Keywords {
		lists = append(lists, e.postings(kw))
	}
	a.lists = lists
	// On a lazily-backed (segment) index a failed block fetch surfaces as
	// an empty list plus a poisoned index; fail the query loudly rather
	// than answering from partial postings.
	if err := e.ix.LazyErr(); err != nil {
		e.releaseArena(a)
		return nil, nil, nil, err
	}
	sl, err := merge.MergeInto(ctx, lists, a.sl)
	if err != nil {
		e.releaseArena(a)
		return nil, nil, nil, err
	}
	a.sl = sl
	resp.SLSize = len(sl)
	resp.Stages.Merge = time.Since(start)
	if len(sl) == 0 {
		e.releaseArena(a)
		return resp, nil, nil, nil
	}

	// 2. Slide the s-unique-keyword block over S_L and collect the longest
	// common prefix of each block into the LCP candidate list (Lemma 6:
	// for a Dewey-sorted block the common prefix of the first and last
	// entries is the common prefix of the whole block). The LCP of the
	// previous block is memoized: S_L repeats ordinals across keywords, so
	// adjacent windows frequently share the same (first, last) ordinal
	// pair and skip the Dewey LCA + ordinal lookup entirely.
	start = time.Now()
	windows, cancelled := 0, false
	memoA, memoB := int32(-1), int32(-1)
	var memoOrd int32
	var memoOK bool
	merge.Windows(sl, s, func(l, r int) {
		windows++
		if cancelled {
			return
		}
		if windows&rankCheckMask == 0 && ctx.Err() != nil {
			cancelled = true // skip the per-window LCP work for the rest
			return
		}
		first, last := sl[l].Ord, sl[r].Ord
		if first != memoA || last != memoB {
			memoA, memoB = first, last
			memoOrd, memoOK = e.lcpNode(first, last)
		}
		if memoOK {
			if a.lcpCount[memoOrd] == 0 {
				a.touched = append(a.touched, memoOrd)
			}
			a.lcpCount[memoOrd]++
		}
	})
	if cancelled {
		e.releaseArena(a)
		return nil, nil, nil, ctx.Err()
	}
	resp.Stages.Windows = time.Since(start)

	// 3. Lift candidates: attribute nodes resolve to their parent
	// (Def 2.1.1: "the parent node of an attribute node is considered the
	// lowest ancestor for keywords in its value"), then every candidate
	// resolves to its lowest entity ancestor-or-self when one exists
	// (§4.1); otherwise it stays a plain LCP node. Distinct lifted nodes
	// dedupe through the flat candIdx table into the candidate slab.
	start = time.Now()
	for _, ord := range a.touched {
		count := int(a.lcpCount[ord])
		lifted := ord
		for e.ix.CatOf(lifted)&index.Attribute != 0 && e.ix.ParentOf(lifted) >= 0 {
			lifted = e.ix.ParentOf(lifted)
		}
		final, isEntity := lifted, false
		if ent, ok := e.ix.LowestEntityAncestorOrSelf(lifted); ok {
			final, isEntity = ent, true
		}
		if e.ix.DepthOf(final) == 0 && final != lifted {
			// The entity lift landed on a document root. Roots are never
			// meaningful responses (§1, Example 1), so keep the original
			// LCP node as a plain candidate instead of discarding the
			// match altogether.
			final, isEntity = lifted, false
		}
		if e.ix.DepthOf(final) == 0 {
			// Document roots are never meaningful responses (§1,
			// Example 1: "'r' is not a meaningful response as it is
			// available to the user even in the absence of any query").
			continue
		}
		idx := a.candIdx[final]
		if idx == 0 {
			a.cands = append(a.cands, candidate{ord: final, isEntity: isEntity})
			idx = int32(len(a.cands))
			a.candIdx[final] = idx
			a.candOrds = append(a.candOrds, final)
		}
		a.cands[idx-1].lcp += count
	}

	// Pointers into the slab are taken only now that it is fully built, so
	// append growth above cannot have invalidated them.
	cands := a.ptrs
	for i := range a.cands {
		cands = append(cands, &a.cands[i])
	}
	a.ptrs = cands
	slices.SortFunc(cands, func(x, y *candidate) int { return int(x.ord - y.ord) })
	a.maskStack = computeMasks(e.ix, cands, sl, a.maskStack)
	resp.Stages.Lift = time.Since(start)

	// 4. Independent-witness filter (Def 2.2.1, Lemmas 4–5): a candidate
	// survives only if some query keyword in its subtree is not contained
	// in any surviving candidate below it. Candidates are nested by
	// pre-order, so a stack sweep resolves coverage bottom-up.
	start = time.Now()
	stack := a.witStack
	finalize := func(c *candidate) {
		c.survives = c.mask&^c.covered != 0
		if len(stack) > 0 {
			parent := stack[len(stack)-1]
			if c.survives {
				parent.covered |= c.mask
			} else {
				parent.covered |= c.covered
			}
		}
	}
	for _, c := range cands {
		for len(stack) > 0 && !e.ix.ContainsOrd(stack[len(stack)-1].ord, c.ord) {
			top := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			finalize(top)
		}
		stack = append(stack, c)
	}
	for len(stack) > 0 {
		top := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		finalize(top)
	}
	a.witStack = stack

	survivors := cands[:0]
	for _, c := range cands {
		if c.survives {
			survivors = append(survivors, c)
		}
	}
	resp.Stages.Filter = time.Since(start)
	if len(survivors) == 0 {
		e.releaseArena(a)
		return resp, nil, nil, nil
	}
	return resp, survivors, a, nil
}

// maskOpen is one frame of the computeMasks sweep: an open candidate and
// the exclusive end of its subtree range.
type maskOpen struct {
	c   *candidate
	end int32
}

// computeMasks fills every candidate's distinct-keyword mask with one
// sweep over S_L: candidates are pre-order sorted and their subtree ranges
// nest, so a stack of "open" candidates (those whose range contains the
// current entry) absorbs each entry's keyword bit in O(|S_L|·d + |C|)
// total — cheaper and allocation-free compared to building a sparse
// range-OR table per query. scratch (may be nil) seeds the sweep stack;
// the stack is returned so pooled callers can keep its capacity.
func computeMasks(ix *index.Index, cands []*candidate, sl []merge.Entry, scratch []maskOpen) []maskOpen {
	stack := scratch[:0]
	next := 0
	for _, entry := range sl {
		// Close candidates whose range ended before this entry.
		for len(stack) > 0 && entry.Ord >= stack[len(stack)-1].end {
			top := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			// Fold the child's mask into its enclosing candidate, if any
			// (ranges nest, so the parent is the new stack top).
			if len(stack) > 0 {
				stack[len(stack)-1].c.mask |= top.c.mask
			}
		}
		// Open candidates whose range starts at or before this entry.
		// Sorted starts plus nest-or-disjoint ranges guarantee each newly
		// opened candidate nests inside the current stack top.
		for next < len(cands) && cands[next].ord <= entry.Ord {
			c := cands[next]
			next++
			_, end := ix.SubtreeRange(c.ord)
			if end <= entry.Ord {
				continue // defensive: no S_L entries left in this range
			}
			stack = append(stack, maskOpen{c: c, end: end})
		}
		// The entry's keyword belongs to every open candidate; marking the
		// innermost suffices because masks fold upward on close.
		if len(stack) > 0 {
			stack[len(stack)-1].c.mask |= entry.Mask()
		}
	}
	for len(stack) > 0 {
		top := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		if len(stack) > 0 {
			stack[len(stack)-1].c.mask |= top.c.mask
		}
	}
	return stack
}

// rankCandidate scores one surviving candidate (§5) and builds its Result.
func (e *Engine) rankCandidate(c *candidate, sl []merge.Entry) Result {
	start, end := e.ix.SubtreeRange(c.ord)
	lo, hi := merge.OrdRange(sl, start, end)
	return Result{
		Ord:          c.ord,
		ID:           e.ix.IDOf(c.ord),
		Label:        e.ix.LabelOf(c.ord),
		IsEntity:     c.isEntity,
		Mask:         c.mask,
		KeywordCount: bits.OnesCount64(c.mask),
		LCPCount:     c.lcp,
		Rank:         e.scorer.Score(c.ord, c.mask, sl[lo:hi]),
	}
}

// sortResults orders results by rank, keyword count, then document order.
func sortResults(results []Result) {
	sort.SliceStable(results, func(i, j int) bool {
		a, b := results[i], results[j]
		if a.Rank != b.Rank {
			return a.Rank > b.Rank
		}
		if a.KeywordCount != b.KeywordCount {
			return a.KeywordCount > b.KeywordCount
		}
		return a.Ord < b.Ord
	})
}

// ResultBefore reports whether a precedes b in response order: rank
// descending, then keyword count descending, then global document order.
// The final key compares Dewey IDs rather than ordinals, so the order is
// well defined across results drawn from different index shards — within a
// single index the two orders coincide because pre-order ordinals equal
// Dewey order. The sharded scatter-gather merge uses it to interleave
// per-shard ranked lists into exactly the order sortResults produces on
// the equivalent single index.
func ResultBefore(a, b Result) bool {
	if a.Rank != b.Rank {
		return a.Rank > b.Rank
	}
	if a.KeywordCount != b.KeywordCount {
		return a.KeywordCount > b.KeywordCount
	}
	return dewey.Compare(a.ID, b.ID) < 0
}

// PostingLists resolves every query keyword to its posting list (phrase
// keywords intersect their token lists node-wise). The LCA baselines use
// it so that baseline comparisons search exactly the same keyword
// instances as the GKS engine. On a lazily-backed index a fetch failure
// yields empty lists here; callers that must distinguish broken storage
// from absent keywords check Index.LazyErr afterwards, as the search
// paths do.
func (e *Engine) PostingLists(q Query) [][]int32 {
	lists := make([][]int32, q.Len())
	for i, kw := range q.Keywords {
		lists[i] = e.postings(kw)
	}
	return lists
}

// postings returns the posting list of one keyword: a single token's list,
// or the node-wise intersection of all token lists for a phrase keyword.
func (e *Engine) postings(kw Keyword) []int32 {
	if len(kw.Tokens) == 0 {
		return nil
	}
	list := e.ix.PostingsFor(kw.Tokens[0])
	for _, tok := range kw.Tokens[1:] {
		list = intersectSorted(list, e.ix.PostingsFor(tok))
		if len(list) == 0 {
			return nil
		}
	}
	return list
}

func intersectSorted(a, b []int32) []int32 {
	var out []int32
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		switch {
		case a[i] < b[j]:
			i++
		case a[i] > b[j]:
			j++
		default:
			out = append(out, a[i])
			i++
			j++
		}
	}
	return out
}

// lcpNode maps the block's end ordinals to the node whose Dewey ID is their
// longest common prefix. Blocks spanning two documents have no common
// ancestor and produce no candidate.
//
// The longest common Dewey prefix of two nodes is their lowest common
// ancestor in the tree, so instead of materializing a prefix ID and
// binary-searching it back to an ordinal (which allocates the prefix path
// on every block), the ancestor is found by walking the parent pointers of
// the node table: equalize depths, then step both sides in lockstep. The
// baseline pipeline retains the Dewey-prefix variant (lcpNodeDewey), so
// the differential tests cross-check two independent LCA constructions.
func (e *Engine) lcpNode(a, b int32) (int32, bool) {
	ix := e.ix
	da, db := ix.DepthOf(a), ix.DepthOf(b)
	for da > db {
		a = ix.ParentOf(a)
		da--
	}
	for db > da {
		b = ix.ParentOf(b)
		db--
	}
	for a != b {
		pa, pb := ix.ParentOf(a), ix.ParentOf(b)
		if pa < 0 || pb < 0 {
			return 0, false // different documents: no common ancestor
		}
		a, b = pa, pb
	}
	return a, true
}

// lcpNodeDewey is the seed implementation of lcpNode: compute the longest
// common Dewey prefix, then resolve it to an ordinal by binary search.
func (e *Engine) lcpNodeDewey(a, b int32) (int32, bool) {
	if a == b {
		return a, true
	}
	lca, ok := dewey.LCA(e.ix.IDOf(a), e.ix.IDOf(b))
	if !ok {
		return 0, false
	}
	return e.ix.OrdinalOf(lca)
}
