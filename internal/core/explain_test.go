package core

import (
	"strings"
	"testing"
)

func TestExplainMatchesSearch(t *testing.T) {
	e := figure2aEngine(t)
	q := NewQuery("student", "karen", "mike", "john", "harry")
	for s := 1; s <= 5; s++ {
		ex, err := e.Explain(q, s)
		if err != nil {
			t.Fatal(err)
		}
		resp, err := e.Search(q, s)
		if err != nil {
			t.Fatal(err)
		}
		if len(ex.Response.Results) != len(resp.Results) {
			t.Fatalf("s=%d: explain %d results, search %d",
				s, len(ex.Response.Results), len(resp.Results))
		}
		for i := range resp.Results {
			if ex.Response.Results[i].Ord != resp.Results[i].Ord {
				t.Fatalf("s=%d pos=%d: explain/search disagree", s, i)
			}
		}
		if ex.Survivors != len(resp.Results) {
			t.Errorf("s=%d: survivors = %d, results = %d", s, ex.Survivors, len(resp.Results))
		}
		if ex.Candidates < ex.Survivors {
			t.Errorf("s=%d: candidates (%d) < survivors (%d)", s, ex.Candidates, ex.Survivors)
		}
		if ex.SLSize == 0 {
			t.Errorf("s=%d: empty S_L", s)
		}
		if len(resp.Results) > 0 && ex.Blocks == 0 {
			t.Errorf("s=%d: results without window blocks", s)
		}
	}
}

func TestExplainString(t *testing.T) {
	e := figure2aEngine(t)
	ex, err := e.Explain(NewQuery("karen", "mike"), 2)
	if err != nil {
		t.Fatal(err)
	}
	out := ex.String()
	for _, want := range []string{"|S_L|", "blocks", "survivors", "postings"} {
		if !strings.Contains(out, want) {
			t.Errorf("explain output missing %q:\n%s", want, out)
		}
	}
}

func TestExplainErrors(t *testing.T) {
	e := figure2aEngine(t)
	if _, err := e.Explain(Query{}, 1); err == nil {
		t.Error("empty query must error")
	}
}
