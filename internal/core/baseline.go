package core

import (
	"sort"

	"repro/internal/index"
	"repro/internal/merge"
)

// SearchBaseline executes the query with the pre-overhaul pipeline kept
// verbatim from the original implementation: a container/heap k-way merge,
// map-keyed scratch tables (lcpCounts, byOrd), one *candidate allocation
// per distinct lifted node and a fresh S_L slice per query. It exists for
// two reasons: the property tests diff the arena-based hot path against it
// (the responses must be identical), and the query benchmarks measure
// their speedup/allocation claims against it.
func (e *Engine) SearchBaseline(q Query, s int) (*Response, error) {
	if err := q.Validate(); err != nil {
		return nil, err
	}
	if s < 1 {
		s = 1
	}
	if s > q.Len() {
		s = q.Len()
	}
	resp := &Response{Query: q, S: s}

	// 1. Merge the posting lists into S_L with the heap merge.
	lists := make([][]int32, q.Len())
	for i, kw := range q.Keywords {
		lists[i] = e.postings(kw)
	}
	if err := e.ix.LazyErr(); err != nil {
		return nil, err
	}
	sl := merge.MergeHeap(lists)
	resp.SLSize = len(sl)
	if len(sl) == 0 {
		return resp, nil
	}

	// 2. Sliding-window block scan into a map of LCP counts.
	lcpCounts := make(map[int32]int)
	merge.Windows(sl, s, func(l, r int) {
		if ord, ok := e.lcpNodeDewey(sl[l].Ord, sl[r].Ord); ok {
			lcpCounts[ord]++
		}
	})

	// 3. Lift candidates, deduping through a map of heap-allocated
	// candidates.
	byOrd := make(map[int32]*candidate)
	for ord, count := range lcpCounts {
		lifted := ord
		for e.ix.CatOf(lifted)&index.Attribute != 0 && e.ix.ParentOf(lifted) >= 0 {
			lifted = e.ix.ParentOf(lifted)
		}
		final, isEntity := lifted, false
		if ent, ok := e.ix.LowestEntityAncestorOrSelf(lifted); ok {
			final, isEntity = ent, true
		}
		if e.ix.DepthOf(final) == 0 && final != lifted {
			final, isEntity = lifted, false
		}
		if e.ix.DepthOf(final) == 0 {
			continue
		}
		c := byOrd[final]
		if c == nil {
			c = &candidate{ord: final, isEntity: isEntity}
			byOrd[final] = c
		}
		c.lcp += count
	}

	cands := make([]*candidate, 0, len(byOrd))
	for _, c := range byOrd {
		cands = append(cands, c)
	}
	sort.Slice(cands, func(i, j int) bool { return cands[i].ord < cands[j].ord })
	computeMasks(e.ix, cands, sl, nil)

	// 4. Independent-witness filter.
	var stack []*candidate
	finalize := func(c *candidate) {
		c.survives = c.mask&^c.covered != 0
		if len(stack) > 0 {
			parent := stack[len(stack)-1]
			if c.survives {
				parent.covered |= c.mask
			} else {
				parent.covered |= c.covered
			}
		}
	}
	for _, c := range cands {
		for len(stack) > 0 && !e.ix.ContainsOrd(stack[len(stack)-1].ord, c.ord) {
			top := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			finalize(top)
		}
		stack = append(stack, c)
	}
	for len(stack) > 0 {
		top := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		finalize(top)
	}

	// 5. Rank the survivors.
	for _, c := range cands {
		if !c.survives {
			continue
		}
		resp.Results = append(resp.Results, e.rankCandidate(c, sl))
	}
	sortResults(resp.Results)
	return resp, nil
}
