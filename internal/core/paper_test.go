package core

import (
	"math"
	"testing"

	"repro/internal/index"
	"repro/internal/xmltree"
)

// Tests in this file check the engine against the paper's worked examples:
// Table 1 (queries Q1–Q3 on Figure 1), Example 3 (query Q4 on Figure 2(a)),
// the §2.3 "perfect query" Q5, and the Example 5 rank arithmetic.

func figure1Engine(t *testing.T) *Engine {
	t.Helper()
	ix, err := index.BuildDocument(xmltree.BuildFigure1(), index.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	return NewEngine(ix)
}

func figure2aEngine(t *testing.T) *Engine {
	t.Helper()
	ix, err := index.BuildDocument(xmltree.BuildFigure2a(), index.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	return NewEngine(ix)
}

// labelsOf maps results to the label of the parent "x" node; the Figure 1
// fixture keyword leaves are <k> children of x1..x4 or r.
func resultLabels(resp *Response) []string {
	out := make([]string, len(resp.Results))
	for i, r := range resp.Results {
		out[i] = r.Label
	}
	return out
}

func TestTable1Q1(t *testing.T) {
	e := figure1Engine(t)
	// Q1 = {a, b, c}, s = |Q1|: GKS returns exactly {x2}.
	resp, err := e.Search(NewQuery("alpha", "beta", "gamma"), 3)
	if err != nil {
		t.Fatal(err)
	}
	got := resultLabels(resp)
	if len(got) != 1 || got[0] != "x2" {
		t.Fatalf("Q1 response = %v, want [x2]", got)
	}
}

func TestTable1Q2(t *testing.T) {
	e := figure1Engine(t)
	// Q2 = {a, b, e}, s = 2: GKS returns {x2}, {x3}; SLCA/ELCA are NULL.
	resp, err := e.Search(NewQuery("alpha", "beta", "epsilon"), 2)
	if err != nil {
		t.Fatal(err)
	}
	got := resultLabels(resp)
	if len(got) != 2 || got[0] != "x2" || got[1] != "x3" {
		t.Fatalf("Q2 response = %v, want [x2 x3]", got)
	}
}

func TestTable1Q3(t *testing.T) {
	e := figure1Engine(t)
	// Q3 = {a, b, c, d}, s = 2: GKS returns {x2}, {x3}, {x4}, ranked; the
	// root r (the SLCA/ELCA answer) is pruned as it adds no new keyword.
	resp, err := e.Search(NewQuery("alpha", "beta", "gamma", "delta"), 2)
	if err != nil {
		t.Fatal(err)
	}
	got := resultLabels(resp)
	want := []string{"x2", "x3", "x4"}
	if len(got) != len(want) {
		t.Fatalf("Q3 response = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Q3 response = %v, want %v", got, want)
		}
	}
}

func TestExample5Ranks(t *testing.T) {
	e := figure1Engine(t)
	resp, err := e.Search(NewQuery("alpha", "beta", "gamma", "delta"), 2)
	if err != nil {
		t.Fatal(err)
	}
	wantRanks := map[string]float64{"x2": 3.0, "x3": 2.5, "x4": 2.0}
	for _, r := range resp.Results {
		want, ok := wantRanks[r.Label]
		if !ok {
			t.Errorf("unexpected node %s in response", r.Label)
			continue
		}
		if math.Abs(r.Rank-want) > 1e-9 {
			t.Errorf("rank(%s) = %v, want %v (Example 5)", r.Label, r.Rank, want)
		}
	}
}

func TestExample3CoursesReturned(t *testing.T) {
	e := figure2aEngine(t)
	// Q4 = {student, karen, mike, john, harry}, s = 2: the response is the
	// three Databases courses, as LCE nodes, with Data Mining ranked first.
	resp, err := e.Search(NewQuery("student", "karen", "mike", "john", "harry"), 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(resp.Results) != 3 {
		t.Fatalf("Q4 returned %d nodes, want 3 courses: %+v", len(resp.Results), resultLabels(resp))
	}
	for _, r := range resp.Results {
		if r.Label != "Course" {
			t.Errorf("Q4 result %s (%s), want Course LCE nodes", r.Label, r.ID)
		}
		if !r.IsEntity {
			t.Errorf("Q4 result %s must be an LCE node", r.ID)
		}
	}
	// Data Mining course (Karen, Mike, John all enrolled) ranks first.
	if top := resp.Results[0].ID.String(); top != "0.0.1.1.0" {
		t.Errorf("top result = %s, want the Data Mining course 0.0.1.1.0", top)
	}
	// P|e of the top course is 4 distinct keywords: student, karen, mike, john.
	if resp.Results[0].KeywordCount != 4 {
		t.Errorf("top course keyword count = %d, want 4", resp.Results[0].KeywordCount)
	}
}

func TestSection23PerfectQuery(t *testing.T) {
	e := figure2aEngine(t)
	// Q5 = {student, karen, mike, john}, s = |Q|: GKS answers with the
	// Course entity node n0.1.1.0 — not the <Students> SLCA node.
	resp, err := e.Search(NewQuery("student", "karen", "mike", "john"), 4)
	if err != nil {
		t.Fatal(err)
	}
	if len(resp.Results) != 1 {
		t.Fatalf("Q5 returned %d nodes, want 1: %v", len(resp.Results), resultLabels(resp))
	}
	r := resp.Results[0]
	if r.ID.String() != "0.0.1.1.0" || r.Label != "Course" || !r.IsEntity {
		t.Errorf("Q5 result = %s %s entity=%v, want Course 0.0.1.1.0 LCE", r.Label, r.ID, r.IsEntity)
	}
}

func TestSClampingAndLemma2(t *testing.T) {
	e := figure2aEngine(t)
	q := NewQuery("student", "karen", "mike", "john", "harry")
	// s larger than |Q| clamps to |Q|; s < 1 clamps to 1.
	big, err := e.Search(q, 99)
	if err != nil {
		t.Fatal(err)
	}
	if big.S != 5 {
		t.Errorf("clamped s = %d, want 5", big.S)
	}
	small, err := e.Search(q, -3)
	if err != nil {
		t.Fatal(err)
	}
	if small.S != 1 {
		t.Errorf("clamped s = %d, want 1", small.S)
	}
	// Lemma 2: |R_Q(s1)| <= |R_Q(s2)| for s1 > s2, and every R(s1) node has
	// an ancestor-or-self in R(s2).
	var prev *Response
	for s := 5; s >= 1; s-- {
		resp, err := e.Search(q, s)
		if err != nil {
			t.Fatal(err)
		}
		if prev != nil && len(prev.Results) > len(resp.Results) {
			t.Errorf("Lemma 2 violated: |R(%d)|=%d > |R(%d)|=%d",
				s+1, len(prev.Results), s, len(resp.Results))
		}
		prev = resp
	}
}

func TestKeywordsOf(t *testing.T) {
	e := figure1Engine(t)
	resp, err := e.Search(NewQuery("alpha", "beta", "gamma", "delta"), 2)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range resp.Results {
		kws := resp.KeywordsOf(r)
		if len(kws) != r.KeywordCount {
			t.Errorf("KeywordsOf(%s) = %v, want %d entries", r.Label, kws, r.KeywordCount)
		}
	}
}

func TestEmptyAndInvalidQueries(t *testing.T) {
	e := figure1Engine(t)
	if _, err := e.Search(Query{}, 1); err == nil {
		t.Error("empty query must error")
	}
	terms := make([]string, 65)
	for i := range terms {
		terms[i] = "kw" + string(rune('a'+i%26)) + string(rune('a'+i/26))
	}
	if _, err := e.Search(NewQuery(terms...), 1); err == nil {
		t.Error("queries over 64 keywords must error")
	}
}

func TestUnknownKeywordsGiveEmptyResponse(t *testing.T) {
	e := figure1Engine(t)
	resp, err := e.Search(NewQuery("zeta", "theta"), 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(resp.Results) != 0 || resp.SLSize != 0 {
		t.Errorf("unknown keywords: results=%d sl=%d, want empty", len(resp.Results), resp.SLSize)
	}
}

func TestPartiallyUnknownKeywords(t *testing.T) {
	e := figure1Engine(t)
	// "epsilon" does not occur; with s=1 the known keywords still match.
	resp, err := e.Search(NewQuery("delta", "epsilon"), 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(resp.Results) == 0 {
		t.Fatal("known keyword with s=1 must produce results")
	}
	for _, r := range resp.Results {
		if r.Mask&0b01 == 0 {
			t.Errorf("result %s lacks the known keyword", r.Label)
		}
	}
}

func TestPhraseKeyword(t *testing.T) {
	e := figure2aEngine(t)
	// "Data Mining" as a phrase matches only the one Name node value.
	resp, err := e.Search(NewQuery("Data Mining"), 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(resp.Results) != 1 {
		t.Fatalf("phrase query returned %d results, want 1", len(resp.Results))
	}
	// The attribute Name node lifts to its Course entity.
	if got := resp.Results[0].ID.String(); got != "0.0.1.1.0" {
		t.Errorf("phrase result = %s, want Course 0.0.1.1.0", got)
	}
}

func TestParseQuery(t *testing.T) {
	q := ParseQuery(`"Peter Buneman" "Wenfei Fan" 2001 databases`)
	if q.Len() != 4 {
		t.Fatalf("parsed %d keywords, want 4: %+v", q.Len(), q)
	}
	if !q.Keywords[0].IsPhrase() || q.Keywords[0].Raw != "Peter Buneman" {
		t.Errorf("keyword 0 = %+v", q.Keywords[0])
	}
	if q.Keywords[2].Raw != "2001" || q.Keywords[2].IsPhrase() {
		t.Errorf("keyword 2 = %+v", q.Keywords[2])
	}
	if got := q.String(); got != `"Peter Buneman" "Wenfei Fan" 2001 databases` {
		t.Errorf("String = %q", got)
	}
	// Unterminated quote treated as trailing phrase.
	q2 := ParseQuery(`alpha "beta gamma`)
	if q2.Len() != 2 || q2.Keywords[1].Raw != "beta gamma" {
		t.Errorf("unterminated quote parse = %+v", q2)
	}
	// Whitespace-only input.
	if ParseQuery("   ").Len() != 0 {
		t.Error("blank input must parse to empty query")
	}
}

func TestResponseIsRankedDescending(t *testing.T) {
	e := figure2aEngine(t)
	resp, err := e.Search(NewQuery("student", "karen", "mike", "john", "harry"), 1)
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i < len(resp.Results); i++ {
		if resp.Results[i-1].Rank < resp.Results[i].Rank {
			t.Fatalf("results not sorted by rank: %v then %v",
				resp.Results[i-1].Rank, resp.Results[i].Rank)
		}
	}
}

func TestEveryResultMeetsThreshold(t *testing.T) {
	e := figure2aEngine(t)
	for s := 1; s <= 5; s++ {
		resp, err := e.Search(NewQuery("student", "karen", "mike", "john", "harry"), s)
		if err != nil {
			t.Fatal(err)
		}
		for _, r := range resp.Results {
			if r.KeywordCount < resp.S {
				t.Errorf("s=%d: result %s has %d keywords", s, r.ID, r.KeywordCount)
			}
		}
	}
}

func TestMultiDocumentSearch(t *testing.T) {
	var repo xmltree.Repository
	repo.Add(xmltree.BuildFigure1())
	repo.Add(xmltree.BuildFigure1())
	ix, err := index.Build(&repo, index.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	e := NewEngine(ix)
	resp, err := e.Search(NewQuery("alpha", "beta", "gamma"), 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(resp.Results) != 2 {
		t.Fatalf("two-document search = %d results, want x2 in each doc", len(resp.Results))
	}
	docs := map[int32]bool{}
	for _, r := range resp.Results {
		if r.Label != "x2" {
			t.Errorf("result %s, want x2", r.Label)
		}
		docs[r.ID.Doc] = true
	}
	if !docs[0] || !docs[1] {
		t.Errorf("results must span both documents, got %v", docs)
	}
}
