package dewey

import (
	"encoding/binary"
	"fmt"
)

// Binary codec for IDs, used by the index persistence layer. The format is
//
//	uvarint(doc) uvarint(len(path)) uvarint(path[0]) ... uvarint(path[n-1])
//
// It is self-delimiting so IDs can be concatenated in a stream.

// AppendBinary appends the binary encoding of id to buf and returns the
// extended slice.
func (id ID) AppendBinary(buf []byte) []byte {
	buf = binary.AppendUvarint(buf, uint64(uint32(id.Doc)))
	buf = binary.AppendUvarint(buf, uint64(len(id.Path)))
	for _, c := range id.Path {
		buf = binary.AppendUvarint(buf, uint64(uint32(c)))
	}
	return buf
}

// DecodeBinary decodes one ID from the front of buf, returning the ID and
// the number of bytes consumed.
func DecodeBinary(buf []byte) (ID, int, error) {
	doc, n := binary.Uvarint(buf)
	if n <= 0 {
		return ID{}, 0, fmt.Errorf("dewey: truncated document number")
	}
	off := n
	length, n := binary.Uvarint(buf[off:])
	if n <= 0 {
		return ID{}, 0, fmt.Errorf("dewey: truncated path length")
	}
	off += n
	if length > uint64(len(buf)) { // cheap sanity bound: ≥1 byte per component
		return ID{}, 0, fmt.Errorf("dewey: implausible path length %d", length)
	}
	path := make([]int32, length)
	for i := range path {
		c, n := binary.Uvarint(buf[off:])
		if n <= 0 {
			return ID{}, 0, fmt.Errorf("dewey: truncated path component %d", i)
		}
		path[i] = int32(uint32(c))
		off += n
	}
	return ID{Doc: int32(uint32(doc)), Path: path}, off, nil
}
