package dewey

import "testing"

// FuzzParse checks the Dewey string parser: accepted inputs must round-trip
// through String, rejected inputs must not panic.
func FuzzParse(f *testing.F) {
	for _, s := range []string{"0.0", "1.0.2.3", "", "x", "0", "-1.0", "0.999999999999"} {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, s string) {
		id, err := Parse(s)
		if err != nil {
			return
		}
		if !id.IsValid() {
			t.Fatalf("Parse(%q) accepted invalid ID", s)
		}
		back, err := Parse(id.String())
		if err != nil || !Equal(back, id) {
			t.Fatalf("round trip failed for %q", s)
		}
	})
}

// FuzzDecodeBinary checks the binary codec rejects arbitrary bytes cleanly.
func FuzzDecodeBinary(f *testing.F) {
	f.Add([]byte{})
	f.Add(MustParse("0.0.1.2").AppendBinary(nil))
	f.Add([]byte{0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0x7f})
	f.Fuzz(func(t *testing.T, data []byte) {
		id, n, err := DecodeBinary(data)
		if err != nil {
			return
		}
		if n <= 0 || n > len(data) {
			t.Fatalf("consumed %d of %d bytes", n, len(data))
		}
		// Re-encoding and re-decoding must reproduce the same ID (the
		// input may use non-canonical varints, so byte equality is not
		// guaranteed).
		re := id.AppendBinary(nil)
		back, m, err := DecodeBinary(re)
		if err != nil || m != len(re) || !Equal(back, id) {
			t.Fatalf("re-encode round trip failed: %v", err)
		}
	})
}
