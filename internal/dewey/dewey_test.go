package dewey

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

func TestParseString(t *testing.T) {
	cases := []struct {
		in   string
		doc  int32
		path []int32
	}{
		{"0.0", 0, []int32{0}},
		{"0.0.1.2", 0, []int32{0, 1, 2}},
		{"3.0.2", 3, []int32{0, 2}},
		{"12.0.10.100.5", 12, []int32{0, 10, 100, 5}},
	}
	for _, c := range cases {
		id, err := Parse(c.in)
		if err != nil {
			t.Fatalf("Parse(%q): %v", c.in, err)
		}
		if id.Doc != c.doc {
			t.Errorf("Parse(%q).Doc = %d, want %d", c.in, id.Doc, c.doc)
		}
		if len(id.Path) != len(c.path) {
			t.Fatalf("Parse(%q).Path = %v, want %v", c.in, id.Path, c.path)
		}
		for i := range c.path {
			if id.Path[i] != c.path[i] {
				t.Errorf("Parse(%q).Path[%d] = %d, want %d", c.in, i, id.Path[i], c.path[i])
			}
		}
		if got := id.String(); got != c.in {
			t.Errorf("String() = %q, want %q", got, c.in)
		}
	}
}

func TestParseErrors(t *testing.T) {
	for _, in := range []string{"", "0", "a.b", "0.-1", "0.1.x", "1.2.3.4.5000000000000"} {
		if _, err := Parse(in); err == nil {
			t.Errorf("Parse(%q): expected error", in)
		}
	}
}

func TestCompare(t *testing.T) {
	order := []string{
		"0.0", "0.0.0", "0.0.0.0", "0.0.0.1", "0.0.1", "0.0.1.0", "0.0.2",
		"0.1", "1.0", "1.0.5", "2.0",
	}
	for i := range order {
		for j := range order {
			a, b := MustParse(order[i]), MustParse(order[j])
			got := Compare(a, b)
			want := 0
			if i < j {
				want = -1
			} else if i > j {
				want = 1
			}
			if got != want {
				t.Errorf("Compare(%s, %s) = %d, want %d", a, b, got, want)
			}
		}
	}
}

func TestAncestry(t *testing.T) {
	root := MustParse("0.0")
	mid := MustParse("0.0.1")
	leaf := MustParse("0.0.1.2")
	otherDoc := MustParse("1.0.1.2")

	if !root.IsAncestorOf(leaf) || !root.IsAncestorOf(mid) {
		t.Error("root should be ancestor of descendants")
	}
	if !mid.IsAncestorOf(leaf) {
		t.Error("mid should be ancestor of leaf")
	}
	if leaf.IsAncestorOf(mid) || mid.IsAncestorOf(root) {
		t.Error("descendant must not be ancestor of its ancestor")
	}
	if root.IsAncestorOf(root) {
		t.Error("IsAncestorOf must be strict")
	}
	if !root.IsAncestorOrSelf(root) {
		t.Error("IsAncestorOrSelf must include self")
	}
	if root.IsAncestorOf(otherDoc) {
		t.Error("ancestry must not cross documents")
	}
}

func TestParentChildDepth(t *testing.T) {
	id := MustParse("0.0.3.5")
	if id.Depth() != 2 {
		t.Errorf("Depth = %d, want 2", id.Depth())
	}
	p, ok := id.Parent()
	if !ok || p.String() != "0.0.3" {
		t.Errorf("Parent = %v/%v, want 0.0.3", p, ok)
	}
	if c := id.Child(7); c.String() != "0.0.3.5.7" {
		t.Errorf("Child(7) = %s", c)
	}
	r := Root(2)
	if _, ok := r.Parent(); ok {
		t.Error("root must have no parent")
	}
}

func TestLCA(t *testing.T) {
	a := MustParse("0.0.1.2.3")
	b := MustParse("0.0.1.5")
	lca, ok := LCA(a, b)
	if !ok || lca.String() != "0.0.1" {
		t.Errorf("LCA = %v/%v, want 0.0.1", lca, ok)
	}
	if _, ok := LCA(a, MustParse("1.0")); ok {
		t.Error("LCA across documents must fail")
	}
	self, ok := LCA(a, a)
	if !ok || !Equal(self, a) {
		t.Errorf("LCA(a,a) = %v, want a", self)
	}
	anc, ok := LCA(a, MustParse("0.0.1"))
	if !ok || anc.String() != "0.0.1" {
		t.Errorf("LCA(desc, anc) = %v, want the ancestor", anc)
	}
}

func TestSubtreeEnd(t *testing.T) {
	v := MustParse("0.0.1")
	end := v.SubtreeEnd()
	if end.String() != "0.0.2" {
		t.Errorf("SubtreeEnd = %s, want 0.0.2", end)
	}
	inside := []string{"0.0.1", "0.0.1.0", "0.0.1.99.4"}
	outside := []string{"0.0.0.5", "0.0.2", "0.1", "1.0.1"}
	for _, s := range inside {
		id := MustParse(s)
		if Compare(id, v) < 0 || Compare(id, end) >= 0 {
			t.Errorf("%s should fall inside [%s, %s)", s, v, end)
		}
	}
	for _, s := range outside {
		id := MustParse(s)
		if Compare(id, v) >= 0 && Compare(id, end) < 0 {
			t.Errorf("%s should fall outside [%s, %s)", s, v, end)
		}
	}
}

func TestSubtreeRangeEqualsAncestry(t *testing.T) {
	// Property: u in [v, v.SubtreeEnd()) ⇔ v.IsAncestorOrSelf(u), on random IDs.
	rng := rand.New(rand.NewSource(42))
	randomID := func() ID {
		depth := 1 + rng.Intn(6)
		path := make([]int32, depth)
		for i := range path {
			path[i] = int32(rng.Intn(3))
		}
		path[0] = 0
		return ID{Doc: int32(rng.Intn(2)), Path: path}
	}
	for i := 0; i < 5000; i++ {
		v, u := randomID(), randomID()
		inRange := Compare(u, v) >= 0 && Compare(u, v.SubtreeEnd()) < 0
		if inRange != v.IsAncestorOrSelf(u) {
			t.Fatalf("range/ancestry mismatch: v=%s u=%s inRange=%v ancestor=%v",
				v, u, inRange, v.IsAncestorOrSelf(u))
		}
	}
}

func TestAncestorsIteration(t *testing.T) {
	id := MustParse("0.0.1.2.3")
	var got []string
	id.Ancestors(func(a ID) bool {
		got = append(got, a.String())
		return true
	})
	want := []string{"0.0.1.2", "0.0.1", "0.0"}
	if len(got) != len(want) {
		t.Fatalf("Ancestors = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("Ancestors[%d] = %s, want %s", i, got[i], want[i])
		}
	}
	// Early stop.
	count := 0
	id.Ancestors(func(ID) bool { count++; return false })
	if count != 1 {
		t.Errorf("early stop visited %d ancestors, want 1", count)
	}
}

func TestKeyUniqueness(t *testing.T) {
	ids := []string{"0.0", "0.0.0", "0.0.1", "1.0", "0.0.128", "0.0.1.0", "0.0.16384"}
	seen := map[string]string{}
	for _, s := range ids {
		k := MustParse(s).Key()
		if prev, dup := seen[k]; dup {
			t.Errorf("Key collision between %s and %s", prev, s)
		}
		seen[k] = s
	}
}

func TestBinaryRoundTrip(t *testing.T) {
	f := func(doc uint16, raw []uint16) bool {
		path := make([]int32, 0, len(raw)+1)
		path = append(path, 0)
		for _, r := range raw {
			path = append(path, int32(r))
		}
		id := ID{Doc: int32(doc), Path: path}
		buf := id.AppendBinary(nil)
		got, n, err := DecodeBinary(buf)
		if err != nil || n != len(buf) {
			return false
		}
		return Equal(got, id)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func TestBinaryStream(t *testing.T) {
	ids := []ID{MustParse("0.0.1"), MustParse("3.0.2.500"), MustParse("0.0")}
	var buf []byte
	for _, id := range ids {
		buf = id.AppendBinary(buf)
	}
	for _, want := range ids {
		got, n, err := DecodeBinary(buf)
		if err != nil {
			t.Fatalf("DecodeBinary: %v", err)
		}
		if !Equal(got, want) {
			t.Errorf("decoded %s, want %s", got, want)
		}
		buf = buf[n:]
	}
	if len(buf) != 0 {
		t.Errorf("%d trailing bytes", len(buf))
	}
}

func TestDecodeBinaryErrors(t *testing.T) {
	if _, _, err := DecodeBinary(nil); err == nil {
		t.Error("expected error on empty buffer")
	}
	// Valid doc, truncated length.
	if _, _, err := DecodeBinary([]byte{0x01}); err == nil {
		t.Error("expected error on truncated length")
	}
	// Length longer than remaining bytes.
	if _, _, err := DecodeBinary([]byte{0x00, 0x7f, 0x01}); err == nil {
		t.Error("expected error on implausible length")
	}
}

func TestCompareMatchesSortedStrings(t *testing.T) {
	// Document order must equal pre-order; verify against an explicit
	// enumeration of a small tree.
	rng := rand.New(rand.NewSource(7))
	var ids []ID
	var build func(id ID, depth int)
	build = func(id ID, depth int) {
		ids = append(ids, id)
		if depth >= 4 {
			return
		}
		n := rng.Intn(3)
		for i := 0; i < n; i++ {
			build(id.Child(int32(i)), depth+1)
		}
	}
	build(Root(0), 0)
	build(Root(1), 0)
	shuffled := append([]ID(nil), ids...)
	rng.Shuffle(len(shuffled), func(i, j int) { shuffled[i], shuffled[j] = shuffled[j], shuffled[i] })
	sort.Slice(shuffled, func(i, j int) bool { return Compare(shuffled[i], shuffled[j]) < 0 })
	for i := range ids {
		if !Equal(ids[i], shuffled[i]) {
			t.Fatalf("pre-order/document-order mismatch at %d: %s vs %s", i, ids[i], shuffled[i])
		}
	}
}

func TestSortHelper(t *testing.T) {
	ids := []ID{MustParse("0.0.2"), MustParse("0.0"), MustParse("0.0.1.5"), MustParse("0.0.1")}
	Sort(ids)
	want := []string{"0.0", "0.0.1", "0.0.1.5", "0.0.2"}
	for i, w := range want {
		if ids[i].String() != w {
			t.Errorf("Sort[%d] = %s, want %s", i, ids[i], w)
		}
	}
}

func TestIsValid(t *testing.T) {
	if (ID{}).IsValid() {
		t.Error("zero ID must be invalid")
	}
	if !MustParse("0.0.1").IsValid() {
		t.Error("parsed ID must be valid")
	}
	if (ID{Doc: -1, Path: []int32{0}}).IsValid() {
		t.Error("negative doc must be invalid")
	}
	if (ID{Doc: 0, Path: []int32{0, -2}}).IsValid() {
		t.Error("negative component must be invalid")
	}
}

func TestCommonPrefixLen(t *testing.T) {
	a, b := MustParse("0.0.1.2.3"), MustParse("0.0.1.5")
	if got := CommonPrefixLen(a, b); got != 2 {
		t.Errorf("CommonPrefixLen = %d, want 2", got)
	}
	if got := CommonPrefixLen(a, MustParse("1.0")); got != -1 {
		t.Errorf("cross-document CommonPrefixLen = %d, want -1", got)
	}
}
