// Package dewey implements Dewey identifiers for nodes of labeled, ordered
// XML trees, as used by the GKS system (Agarwal et al., EDBT 2016, §2.1) and
// originally proposed by Tatarinov et al. (SIGMOD 2002).
//
// A Dewey ID encodes the position of a node in the tree: the ID of a node is
// the ID of its parent extended with the node's ordinal among its siblings.
// The root of a document has the path [0]. IDs are additionally qualified by
// a document number so that a single index can span a repository of many XML
// documents (§2.4 of the paper: "Dewey id for each node has been appended
// with the document id").
//
// The total order on IDs (document number first, then component-wise path
// order with a shorter prefix sorting before its extensions) equals document
// order, i.e. the pre-order traversal of the forest. Consequently the
// subtree rooted at a node v occupies a contiguous range in any Dewey-sorted
// sequence — the property the GKS search algorithm (§4.1), ranking (§5) and
// the SLCA/ELCA baselines all rely on.
package dewey

import (
	"errors"
	"fmt"
	"strconv"
	"strings"
)

// ID identifies a node in a multi-document XML repository.
//
// The zero value is not a valid node ID; valid IDs have a non-empty Path.
type ID struct {
	// Doc is the document number within the repository (0 for the first or
	// only document).
	Doc int32
	// Path is the Dewey path from the document root (Path[0] is always the
	// root ordinal, conventionally 0).
	Path []int32
}

// ErrSyntax is returned by Parse for malformed Dewey strings.
var ErrSyntax = errors.New("dewey: invalid syntax")

// New returns an ID for the given document with the given path components.
// The components are copied.
func New(doc int32, path ...int32) ID {
	p := make([]int32, len(path))
	copy(p, path)
	return ID{Doc: doc, Path: p}
}

// Root returns the ID of the root node of document doc.
func Root(doc int32) ID { return ID{Doc: doc, Path: []int32{0}} }

// Parse parses a Dewey string of the form "d0.p0.p1..." where the first
// component is the document number, e.g. "0.0.1.2". It is the inverse of
// String.
func Parse(s string) (ID, error) {
	parts := strings.Split(s, ".")
	if len(parts) < 2 {
		return ID{}, fmt.Errorf("%w: %q needs a document and at least one path component", ErrSyntax, s)
	}
	nums := make([]int32, len(parts))
	for i, p := range parts {
		v, err := strconv.ParseInt(p, 10, 32)
		if err != nil || v < 0 {
			return ID{}, fmt.Errorf("%w: component %q in %q", ErrSyntax, p, s)
		}
		nums[i] = int32(v)
	}
	return ID{Doc: nums[0], Path: nums[1:]}, nil
}

// MustParse is like Parse but panics on error. It is intended for tests and
// static initialization.
func MustParse(s string) ID {
	id, err := Parse(s)
	if err != nil {
		panic(err)
	}
	return id
}

// String renders the ID as "doc.p0.p1...". It is the inverse of Parse.
func (id ID) String() string {
	var b strings.Builder
	b.Grow(2 + 3*len(id.Path))
	b.WriteString(strconv.FormatInt(int64(id.Doc), 10))
	for _, c := range id.Path {
		b.WriteByte('.')
		b.WriteString(strconv.FormatInt(int64(c), 10))
	}
	return b.String()
}

// IsValid reports whether id denotes a node (non-empty path, non-negative
// components).
func (id ID) IsValid() bool {
	if id.Doc < 0 || len(id.Path) == 0 {
		return false
	}
	for _, c := range id.Path {
		if c < 0 {
			return false
		}
	}
	return true
}

// Depth returns the number of edges from the document root to the node
// (the root has depth 0).
func (id ID) Depth() int { return len(id.Path) - 1 }

// Clone returns a deep copy of id.
func (id ID) Clone() ID {
	return New(id.Doc, id.Path...)
}

// Child returns the ID of the ord-th child of id.
func (id ID) Child(ord int32) ID {
	p := make([]int32, len(id.Path)+1)
	copy(p, id.Path)
	p[len(id.Path)] = ord
	return ID{Doc: id.Doc, Path: p}
}

// Parent returns the ID of the parent node and true, or the zero ID and
// false if id is a document root.
func (id ID) Parent() (ID, bool) {
	if len(id.Path) <= 1 {
		return ID{}, false
	}
	return ID{Doc: id.Doc, Path: id.Path[:len(id.Path)-1]}, true
}

// Compare returns -1, 0 or +1 comparing a and b in document order: by
// document number first, then component-wise, with an ancestor (prefix)
// ordering before its descendants.
func Compare(a, b ID) int {
	switch {
	case a.Doc < b.Doc:
		return -1
	case a.Doc > b.Doc:
		return 1
	}
	n := len(a.Path)
	if len(b.Path) < n {
		n = len(b.Path)
	}
	for i := 0; i < n; i++ {
		switch {
		case a.Path[i] < b.Path[i]:
			return -1
		case a.Path[i] > b.Path[i]:
			return 1
		}
	}
	switch {
	case len(a.Path) < len(b.Path):
		return -1
	case len(a.Path) > len(b.Path):
		return 1
	}
	return 0
}

// Equal reports whether a and b identify the same node.
func Equal(a, b ID) bool { return Compare(a, b) == 0 }

// IsAncestorOf reports whether a is a proper ancestor of b (a ≠ b) in the
// same document.
func (id ID) IsAncestorOf(b ID) bool {
	if id.Doc != b.Doc || len(id.Path) >= len(b.Path) {
		return false
	}
	for i, c := range id.Path {
		if b.Path[i] != c {
			return false
		}
	}
	return true
}

// IsAncestorOrSelf reports whether a is b or a proper ancestor of b.
func (id ID) IsAncestorOrSelf(b ID) bool {
	return Equal(id, b) || id.IsAncestorOf(b)
}

// LCA returns the lowest common ancestor of a and b, which must belong to
// the same document; ok is false otherwise.
func LCA(a, b ID) (lca ID, ok bool) {
	if a.Doc != b.Doc {
		return ID{}, false
	}
	n := len(a.Path)
	if len(b.Path) < n {
		n = len(b.Path)
	}
	i := 0
	for i < n && a.Path[i] == b.Path[i] {
		i++
	}
	if i == 0 {
		// Distinct roots cannot happen within one document (all paths start
		// with the same root ordinal), but guard anyway.
		return ID{}, false
	}
	return ID{Doc: a.Doc, Path: append([]int32(nil), a.Path[:i]...)}, true
}

// CommonPrefixLen returns the length of the longest common path prefix of a
// and b, or -1 if they are in different documents.
func CommonPrefixLen(a, b ID) int {
	if a.Doc != b.Doc {
		return -1
	}
	n := len(a.Path)
	if len(b.Path) < n {
		n = len(b.Path)
	}
	i := 0
	for i < n && a.Path[i] == b.Path[i] {
		i++
	}
	return i
}

// SubtreeEnd returns the smallest ID strictly greater (in document order)
// than every node in the subtree rooted at id. Together with id it bounds
// the half-open Dewey range [id, SubtreeEnd) that holds exactly id's
// subtree. For a document root the end is the root of the next document.
func (id ID) SubtreeEnd() ID {
	if len(id.Path) == 0 {
		return ID{Doc: id.Doc + 1, Path: []int32{0}}
	}
	p := make([]int32, len(id.Path))
	copy(p, id.Path)
	p[len(p)-1]++
	return ID{Doc: id.Doc, Path: p}
}

// Key returns a compact string usable as a map key. Distinct IDs have
// distinct keys. The key does not preserve document order; use Compare for
// ordering.
func (id ID) Key() string {
	buf := make([]byte, 0, 4+4*len(id.Path))
	buf = appendUvarint32(buf, uint32(id.Doc))
	for _, c := range id.Path {
		buf = appendUvarint32(buf, uint32(c))
	}
	return string(buf)
}

func appendUvarint32(buf []byte, v uint32) []byte {
	for v >= 0x80 {
		buf = append(buf, byte(v)|0x80)
		v >>= 7
	}
	return append(buf, byte(v))
}

// Ancestors calls fn for every proper ancestor of id, from the parent up to
// the document root, stopping early if fn returns false.
func (id ID) Ancestors(fn func(ID) bool) {
	for p, ok := id.Parent(); ok; p, ok = p.Parent() {
		if !fn(p) {
			return
		}
	}
}

// Sort sorts ids in document order in place using an insertion-friendly
// comparison; callers with large slices should use sort.Slice with Compare.
func Sort(ids []ID) {
	// Simple binary-insertion sort is fine for the small slices this helper
	// is used with (test fixtures, ancestor sets). Large sorts in the
	// indexer use sort.Slice directly.
	for i := 1; i < len(ids); i++ {
		j := i
		for j > 0 && Compare(ids[j-1], ids[j]) > 0 {
			ids[j-1], ids[j] = ids[j], ids[j-1]
			j--
		}
	}
}
