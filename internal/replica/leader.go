// Package replica implements single-writer / N-reader replication for
// gksd: the leader ships WAL records over a chunked-HTTP stream, fresh
// followers bootstrap from a snapshot and tail the log from their
// durable LSN, and a thin query router fans reads across replicas with
// health-gated failover.
//
// The package deliberately knows nothing about the server's index or
// commit path: the leader reads from a wal.Log and a SnapshotSource,
// the follower drives an Applier. internal/server implements both
// interfaces structurally, so there is no import cycle and the apply
// path is exactly the two-phase commit local ingestion uses.
package replica

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"log"
	"net/http"
	"strconv"
	"time"

	"repro/internal/wal"
)

// SnapshotSource produces a point-in-time serialized index a fresh
// follower can install. The returned LSN is the last record folded into
// the snapshot: a follower that installs it resumes the stream from
// there. Implementations must only expose durable state — every record
// at or below the LSN has to be fsynced before the snapshot is handed
// out, or a leader crash could leave a follower ahead of its leader.
type SnapshotSource interface {
	Snapshot() (lsn uint64, r io.ReadCloser, err error)
}

// LeaderMetrics receives leader-side replication counters. Implemented
// by *obs.Registry; a Nop implementation is used when nil.
type LeaderMetrics interface {
	AddReplicaStreamed(records int)
	IncReplicaSnapshotServed()
}

type nopLeaderMetrics struct{}

func (nopLeaderMetrics) AddReplicaStreamed(int)    {}
func (nopLeaderMetrics) IncReplicaSnapshotServed() {}

// Leader serves the replication endpoints over an existing WAL.
type Leader struct {
	Log      *wal.Log
	Snapshot SnapshotSource

	// HeartbeatEvery is how often an idle stream emits a heartbeat frame
	// carrying the durable watermark (default 2s). Followers use it as a
	// liveness signal and to measure lag.
	HeartbeatEvery time.Duration
	// BatchRecords caps how many records one ReadAfter pulls before the
	// frames are flushed to the follower (default 256).
	BatchRecords int

	Metrics LeaderMetrics
	Logger  *log.Logger
}

func (ld *Leader) heartbeatEvery() time.Duration {
	if ld.HeartbeatEvery > 0 {
		return ld.HeartbeatEvery
	}
	return 2 * time.Second
}

func (ld *Leader) batchRecords() int {
	if ld.BatchRecords > 0 {
		return ld.BatchRecords
	}
	return 256
}

func (ld *Leader) metrics() LeaderMetrics {
	if ld.Metrics != nil {
		return ld.Metrics
	}
	return nopLeaderMetrics{}
}

func (ld *Leader) logf(format string, args ...any) {
	if ld.Logger != nil {
		ld.Logger.Printf(format, args...)
	}
}

// Routes mounts the replication endpoints on mux.
func (ld *Leader) Routes(mux *http.ServeMux) {
	mux.Handle("/replica/snapshot", ld.SnapshotHandler())
	mux.Handle("/replica/stream", ld.StreamHandler())
}

// SnapshotHandler serves GET /replica/snapshot: the current snapshot
// bytes with the covered LSN in the X-Gks-Lsn header.
func (ld *Leader) SnapshotHandler() http.Handler { return http.HandlerFunc(ld.handleSnapshot) }

// StreamHandler serves GET /replica/stream?from=N: the long-lived
// record feed. Mount it outside any per-request timeout middleware —
// the stream lives until the follower disconnects.
func (ld *Leader) StreamHandler() http.Handler { return http.HandlerFunc(ld.handleStream) }

func jsonError(w http.ResponseWriter, status int, msg string) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	json.NewEncoder(w).Encode(map[string]string{"error": msg})
}

// LSNHeader carries the snapshot's covered LSN on /replica/snapshot
// responses.
const LSNHeader = "X-Gks-Lsn"

func (ld *Leader) handleSnapshot(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		jsonError(w, http.StatusMethodNotAllowed, "GET only")
		return
	}
	lsn, rc, err := ld.Snapshot.Snapshot()
	if err != nil {
		ld.logf("replica: snapshot: %v", err)
		jsonError(w, http.StatusInternalServerError, "snapshot unavailable")
		return
	}
	defer rc.Close()
	w.Header().Set("Content-Type", "application/octet-stream")
	w.Header().Set(LSNHeader, strconv.FormatUint(lsn, 10))
	if _, err := io.Copy(w, rc); err != nil {
		ld.logf("replica: snapshot send: %v", err)
		return
	}
	ld.metrics().IncReplicaSnapshotServed()
}

// handleStream is the long-lived record feed. The follower passes its
// applied LSN in ?from=N and receives every durable record above it as
// wire frames, then heartbeats while idle. The stream ends when the
// client goes away, the log closes, or requested records have been
// truncated after the stream started (the follower reconnects and gets
// the 410 that sends it back to a snapshot).
func (ld *Leader) handleStream(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		jsonError(w, http.StatusMethodNotAllowed, "GET only")
		return
	}
	from, err := strconv.ParseUint(r.URL.Query().Get("from"), 10, 64)
	if err != nil {
		jsonError(w, http.StatusBadRequest, "from must be a non-negative integer lsn")
		return
	}
	// Probe before committing to a 200: a follower whose position was
	// truncated away needs a snapshot, and that verdict must arrive as a
	// status code, not a severed stream.
	if _, err := ld.Log.ReadAfter(from, 1); errors.Is(err, wal.ErrGone) {
		jsonError(w, http.StatusGone, fmt.Sprintf("records after lsn %d truncated; fetch a snapshot", from))
		return
	} else if errors.Is(err, wal.ErrClosed) {
		jsonError(w, http.StatusServiceUnavailable, "log closed")
		return
	}

	// The serving stack wraps handlers in per-request timeouts and the
	// http.Server carries a write deadline sized for point queries; a
	// replication stream outlives both by design. The controller reaches
	// Flush and SetWriteDeadline through middleware wrappers (they
	// implement Unwrap), where a plain type assertion would not.
	rc := http.NewResponseController(w)
	rc.SetWriteDeadline(time.Time{})

	w.Header().Set("Content-Type", "application/octet-stream")
	w.Header().Set("Cache-Control", "no-store")
	w.WriteHeader(http.StatusOK)

	// An immediate heartbeat tells the follower the leader's watermark
	// (and that the stream is live) before any records flow. If the
	// writer cannot flush, the stream cannot work; end it here and let
	// the follower's heartbeat watchdog report the broken leader.
	if _, err := w.Write(wal.EncodeWireHeartbeat(ld.Log.DurableLSN())); err != nil {
		return
	}
	if err := rc.Flush(); err != nil {
		ld.logf("replica: stream flush: %v", err)
		return
	}

	ctx := r.Context()
	pos := from
	for {
		recs, err := ld.Log.ReadAfter(pos, ld.batchRecords())
		switch {
		case errors.Is(err, wal.ErrGone):
			// A checkpoint truncated past the reader mid-stream; end the
			// stream so the reconnect sees the 410 above.
			ld.logf("replica: stream from %d outpaced by truncation", pos)
			return
		case err != nil:
			ld.logf("replica: stream read after %d: %v", pos, err)
			return
		}
		if len(recs) == 0 {
			hb, cancel := context.WithTimeout(ctx, ld.heartbeatEvery())
			err := ld.Log.WaitDurableMore(hb, pos)
			cancel()
			switch {
			case err == nil:
				continue
			case errors.Is(err, context.DeadlineExceeded) && ctx.Err() == nil:
				// Our idle timer, not the client: emit a heartbeat.
				if _, err := w.Write(wal.EncodeWireHeartbeat(ld.Log.DurableLSN())); err != nil {
					return
				}
				if err := rc.Flush(); err != nil {
					return
				}
				continue
			default:
				// Client gone, log closed, or sync failure: end the stream.
				return
			}
		}
		for _, rec := range recs {
			if _, err := w.Write(wal.EncodeWireFrame(rec)); err != nil {
				return
			}
			pos = rec.LSN
		}
		if err := rc.Flush(); err != nil {
			return
		}
		ld.metrics().AddReplicaStreamed(len(recs))
	}
}
