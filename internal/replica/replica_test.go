// Cluster property tests: a leader ingesting live mutations, followers
// tailing its WAL through scripted network faults, and the router
// fronting them — proven against byte-identity and cold-rebuild
// oracles. Run under -race by `make check`.
package replica_test

import (
	"context"
	"fmt"
	"io"
	"math/rand"
	"net"
	"net/http"
	"net/http/httptest"
	"net/url"
	"os"
	"sort"
	"strconv"
	"strings"
	"testing"
	"time"

	gks "repro"
	"repro/internal/replica"
	"repro/internal/replica/faultnet"
	"repro/internal/server"
	"repro/internal/wal"
)

// Compile-time checks that the server glue satisfies the replication
// interfaces (they are satisfied structurally; neither package imports
// the other).
var (
	_ replica.Applier        = (*server.ReplicaApplier)(nil)
	_ replica.SnapshotSource = (*server.SnapshotSource)(nil)
)

var vocab = []string{
	"apple", "pear", "plum", "cherry", "quince",
	"mango", "grape", "fig", "date", "olive",
}

// docXML builds a small paper-shaped document from vocabulary words.
func docXML(rng *rand.Rand, rev int) string {
	pick := func() string { return vocab[rng.Intn(len(vocab))] }
	return fmt.Sprintf("<paper rev=\"%d\"><title>%s %s</title><author>%s</author><topic>%s</topic></paper>",
		rev, pick(), pick(), pick(), pick())
}

var oracleQueries = []string{
	"apple pear", "cherry", "mango grape", "fig olive", "plum quince", "date",
}

// node is one in-process gksd-shaped replica: snapshot + WAL + the real
// server commit path, HTTP-served.
type node struct {
	t         *testing.T
	indexPath string
	walDir    string
	wal       *wal.Log
	api       *server.Handler
	rl        *server.Reloader
	applier   *server.ReplicaApplier
	fl        *replica.Follower
	srv       *httptest.Server
	ln        net.Listener
	stop      context.CancelFunc
	runDone   chan struct{}
}

func (n *node) loadSys() (gks.Searcher, error) {
	sys, err := gks.LoadIndexFile(n.indexPath)
	if err != nil {
		return nil, err
	}
	recovered, _, err := gks.ReplayWAL(sys, n.wal)
	return recovered, err
}

// startLeader boots a leader over an initial corpus and serves the full
// surface: search API, live ingestion, health, replication endpoints.
func startLeader(t *testing.T, rng *rand.Rand, finals map[string]string, initialDocs int) *node {
	t.Helper()
	dir := t.TempDir()
	n := &node{t: t, indexPath: dir + "/repo.gksidx", walDir: dir + "/repo.gksidx.wal"}

	docs := make([]*gks.Document, 0, initialDocs)
	for i := 0; i < initialDocs; i++ {
		name := fmt.Sprintf("seed-%d.xml", i)
		xml := docXML(rng, 0)
		finals[name] = xml
		d, err := gks.ParseDocumentString(xml, name)
		if err != nil {
			t.Fatal(err)
		}
		docs = append(docs, d)
	}
	sys, err := gks.IndexDocuments(docs...)
	if err != nil {
		t.Fatal(err)
	}
	if err := sys.SaveIndexFile(n.indexPath); err != nil {
		t.Fatal(err)
	}
	if n.wal, err = wal.Open(n.walDir, wal.Options{SegmentBytes: 2048}); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { n.wal.Close() })

	n.api = server.New(sys)
	n.rl = server.NewReloader(n.api, n.loadSys, nil, nil)
	persist := func(s gks.Searcher) error { return s.(*gks.System).SaveIndexFile(n.indexPath) }
	// Aggressive checkpointing (every 5 mutations) keeps truncating the
	// log out from under slow followers, forcing the 410 → snapshot
	// re-install transition under test.
	ckpt := server.NewCheckpointer(n.rl, n.wal, persist, 5, nil, nil)
	ing := server.NewIngester(n.rl, persist, nil, nil)
	ing.EnableWAL(n.wal, ckpt.Notify)
	ctx, cancel := context.WithCancel(context.Background())
	n.stop = cancel
	n.runDone = make(chan struct{})
	go func() { defer close(n.runDone); ckpt.Run(ctx) }()
	t.Cleanup(func() { cancel(); <-n.runDone })

	leader := &replica.Leader{
		Log:            n.wal,
		Snapshot:       n.rl.ReplicaSource(n.wal),
		HeartbeatEvery: 50 * time.Millisecond,
		BatchRecords:   7,
	}
	mux := http.NewServeMux()
	mux.Handle("/", n.api)
	mux.Handle("/admin/docs", ing.Handler())
	mux.Handle("/admin/docs/", ing.Handler())
	leader.Routes(mux)
	mux.Handle("/healthz", &server.Health{Handler: n.api, Role: "leader", WAL: n.wal, Checkpoint: ckpt})
	n.srv = httptest.NewServer(mux)
	t.Cleanup(n.srv.Close)
	return n
}

// startFollower boots (or re-boots, when dirs is non-nil) a follower.
// client carries the (possibly fault-injected) transport for the
// replication stream; the boot-time join uses a clean client, like a
// process that got far enough to start would.
func startFollower(t *testing.T, leaderURL string, client *http.Client, dirs *node) *node {
	t.Helper()
	n := dirs
	if n == nil {
		dir := t.TempDir()
		n = &node{indexPath: dir + "/replica.gksidx", walDir: dir + "/replica.gksidx.wal"}
	}
	n.t = t

	var err error
	if n.wal, err = wal.Open(n.walDir, wal.Options{SegmentBytes: 2048}); err != nil {
		t.Fatal(err)
	}
	needJoin := server.InstallPending(n.walDir)
	if !needJoin {
		if _, err := os.Stat(n.indexPath); err != nil {
			needJoin = true
		}
	}
	if needJoin {
		if err := server.JoinCluster(leaderURL, nil, n.indexPath, n.wal, nil); err != nil {
			t.Fatalf("join: %v", err)
		}
	}
	sys, err := n.loadSys()
	if err != nil {
		t.Fatalf("follower boot: %v", err)
	}

	n.api = server.New(sys)
	n.rl = server.NewReloader(n.api, n.loadSys, nil, nil)
	persist := func(s gks.Searcher) error { return s.(*gks.System).SaveIndexFile(n.indexPath) }
	ckpt := server.NewCheckpointer(n.rl, n.wal, persist, 8, nil, nil)
	n.applier = server.NewReplicaApplier(n.rl, n.wal, n.indexPath, nil, nil, ckpt.Notify)
	n.fl, err = replica.NewFollower(replica.Config{
		Leader:           leaderURL,
		Client:           client,
		Applier:          n.applier,
		MaxLag:           64,
		HeartbeatTimeout: time.Second,
		ReconnectMin:     5 * time.Millisecond,
		ReconnectMax:     80 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	n.stop = cancel
	n.runDone = make(chan struct{})
	// The checkpointer deliberately runs on a background context: an
	// abandoned node must never take the orderly final checkpoint a real
	// SIGKILL would skip.
	go ckpt.Run(context.Background())
	go func() {
		defer close(n.runDone)
		if err := n.fl.Run(ctx); err != nil && ctx.Err() == nil {
			t.Errorf("follower run: %v", err)
		}
	}()

	mux := http.NewServeMux()
	mux.Handle("/", n.api)
	mux.Handle("/healthz", &server.Health{
		Handler: n.api, Role: "follower", WAL: n.wal, Checkpoint: ckpt,
		Ready:   n.fl.Ready,
		Replica: func() any { return n.fl.Status() },
	})
	if n.ln != nil {
		// Restart on the same address so a router keeps probing the same URL.
		ln, err := net.Listen("tcp", n.ln.Addr().String())
		if err != nil {
			t.Fatalf("relisten: %v", err)
		}
		n.ln = ln
		n.srv = &httptest.Server{Listener: ln, Config: &http.Server{Handler: mux}}
		n.srv.Start()
	} else {
		n.srv = httptest.NewServer(mux)
	}
	// Register end-of-test teardown for THIS incarnation (a node can be
	// abandoned and restarted, so capture, don't reach through n). It is
	// safe to run after an explicit abandon: cancel, closed-channel
	// receive and httptest Close are all idempotent. Cleanups run LIFO,
	// so every follower tears down before the leader closes, which is
	// what lets the leader's server drain its replication streams.
	incSrv, incWAL, incDone := n.srv, n.wal, n.runDone
	t.Cleanup(func() {
		cancel()
		<-incDone
		incSrv.CloseClientConnections()
		incSrv.Close()
		incWAL.Close()
	})
	return n
}

// abandon simulates SIGKILL for an in-process node: stop the loops and
// the listener, take no final checkpoint, never close the WAL. Only
// fsynced state survives into a restart, exactly like a killed process
// on a surviving machine.
func (n *node) abandon() {
	n.stop()
	<-n.runDone
	n.srv.CloseClientConnections()
	n.srv.Close()
}

func httpGet(t *testing.T, rawURL string) (int, []byte) {
	t.Helper()
	resp, err := http.Get(rawURL)
	if err != nil {
		t.Fatalf("GET %s: %v", rawURL, err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatalf("GET %s: %v", rawURL, err)
	}
	return resp.StatusCode, body
}

func searchPath(q string) string {
	v := url.Values{}
	v.Set("q", q)
	v.Set("s", "1")
	return "/search?" + v.Encode()
}

// upsertDoc posts one document to the leader's live-ingestion endpoint.
func upsertDoc(t *testing.T, leaderURL, name, xml string) {
	t.Helper()
	body := fmt.Sprintf("{\"name\":%s,\"xml\":%s}", strconv.Quote(name), strconv.Quote(xml))
	resp, err := http.Post(leaderURL+"/admin/docs", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatalf("upsert %s: %v", name, err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != 200 {
		msg, _ := io.ReadAll(resp.Body)
		t.Fatalf("upsert %s: %d: %s", name, resp.StatusCode, msg)
	}
}

func deleteDoc(t *testing.T, leaderURL, name string) {
	t.Helper()
	req, _ := http.NewRequest(http.MethodDelete, leaderURL+"/admin/docs/"+url.PathEscape(name), nil)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatalf("delete %s: %v", name, err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != 200 {
		msg, _ := io.ReadAll(resp.Body)
		t.Fatalf("delete %s: %d: %s", name, resp.StatusCode, msg)
	}
}

// waitCaughtUp blocks until the follower's durable applied LSN reaches
// the leader's last LSN (the leader must be quiesced).
func waitCaughtUp(t *testing.T, label string, leader *node, f *node) {
	t.Helper()
	want := leader.wal.LastLSN()
	deadline := time.Now().Add(60 * time.Second)
	for time.Now().Before(deadline) {
		if f.applier.AppliedLSN() >= want {
			return
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Fatalf("%s: not caught up: applied %d, leader at %d (status %+v)",
		label, f.applier.AppliedLSN(), want, f.fl.Status())
}

// waitReady blocks until the follower reports ready — catch-up alone is
// not enough: readiness additionally requires the follower to have
// observed the leader's durable watermark on a heartbeat.
func waitReady(t *testing.T, label string, f *node) {
	t.Helper()
	deadline := time.Now().Add(30 * time.Second)
	for !f.fl.Ready() {
		if time.Now().After(deadline) {
			t.Fatalf("%s: never turned ready: %+v", label, f.fl.Status())
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// docInsensitiveResults projects a search response onto everything but
// the internal document IDs, which boot replay may legally renumber.
func docInsensitiveResults(t *testing.T, sys gks.Searcher, q string) []string {
	t.Helper()
	resp, err := sys.Search(q, 1)
	if err != nil {
		t.Fatalf("search %q: %v", q, err)
	}
	keys := make([]string, 0, len(resp.Results))
	for _, r := range resp.Results {
		id := r.ID.String()
		rel := ""
		if i := strings.IndexByte(id, '.'); i >= 0 {
			rel = id[i+1:]
		}
		kws := append([]string(nil), resp.KeywordsOf(r)...)
		sort.Strings(kws)
		keys = append(keys, strings.Join([]string{
			rel, r.Label, strconv.FormatFloat(r.Rank, 'g', 12, 64),
			strconv.Itoa(r.KeywordCount), strings.Join(kws, ","),
		}, "|"))
	}
	sort.Strings(keys)
	return keys
}

// assertStateEqual checks two systems hold the same logical state:
// identical stats, document sets, and doc-ID-insensitive result
// multisets for the oracle queries.
func assertStateEqual(t *testing.T, label string, want, got gks.Searcher) {
	t.Helper()
	if w, g := want.Stats(), got.Stats(); w != g {
		t.Fatalf("%s: stats %+v, want %+v", label, g, w)
	}
	ws := want.(*gks.System)
	gs := got.(*gks.System)
	wn := append([]string(nil), ws.DocNames()...)
	gn := append([]string(nil), gs.DocNames()...)
	sort.Strings(wn)
	sort.Strings(gn)
	if strings.Join(wn, "\n") != strings.Join(gn, "\n") {
		t.Fatalf("%s: documents %v, want %v", label, gn, wn)
	}
	for _, q := range oracleQueries {
		w := docInsensitiveResults(t, want, q)
		g := docInsensitiveResults(t, got, q)
		if strings.Join(w, "\n") != strings.Join(g, "\n") {
			t.Fatalf("%s: q=%q results diverge:\ngot  %v\nwant %v", label, q, g, w)
		}
	}
}

// coldRebuild indexes the final document set from scratch — the
// single-node oracle every recovered replica must match.
func coldRebuild(t *testing.T, finals map[string]string) *gks.System {
	t.Helper()
	names := make([]string, 0, len(finals))
	for name := range finals {
		names = append(names, name)
	}
	sort.Strings(names)
	docs := make([]*gks.Document, 0, len(names))
	for _, name := range names {
		d, err := gks.ParseDocumentString(finals[name], name)
		if err != nil {
			t.Fatal(err)
		}
		docs = append(docs, d)
	}
	sys, err := gks.IndexDocuments(docs...)
	if err != nil {
		t.Fatal(err)
	}
	return sys
}

// faultSchedule precomputes deterministic per-dial fault plans: refused
// dials, delayed reads, and connections cut mid-frame after a byte
// budget. Faults thin out with the dial count so every schedule
// eventually lets the follower through.
func faultSchedule(seed int64, dials int) func(int) faultnet.Plan {
	rng := rand.New(rand.NewSource(seed))
	plans := make([]faultnet.Plan, dials)
	for i := range plans {
		switch r := rng.Intn(100); {
		case r < 15:
			plans[i].FailDial = true
		case r < 40:
			plans[i].CutAfterRead = int64(40 + rng.Intn(3000))
		case r < 50:
			plans[i].CutAfterWrite = int64(16 + rng.Intn(120))
		case r < 65:
			plans[i].ReadDelay = time.Duration(1+rng.Intn(8)) * time.Millisecond
		}
	}
	return func(n int) faultnet.Plan {
		if n < len(plans) {
			return plans[n]
		}
		return faultnet.Plan{}
	}
}

// TestClusterConvergesUnderFaults is the replication property test:
// a leader ingests a randomized mutation history while one follower
// tails it through a scripted fault schedule (drops, delays, mid-frame
// truncations, periodic severing of every connection) and another is
// SIGKILLed mid-stream and restarted from its surviving disk state.
// Afterwards the faulted follower must serve /search responses
// byte-identical to the leader's, and every node — including the
// killed-and-recovered one — must match a cold single-node rebuild of
// the final document set.
func TestClusterConvergesUnderFaults(t *testing.T) {
	if testing.Short() {
		t.Skip("cluster property test (multi-second)")
	}
	for trial := 0; trial < 2; trial++ {
		trial := trial
		t.Run(fmt.Sprintf("seed%d", trial), func(t *testing.T) {
			seed := int64(0xC0FFEE + 7*trial)
			rng := rand.New(rand.NewSource(seed))
			finals := map[string]string{}

			leader := startLeader(t, rng, finals, 6)

			dialer := &faultnet.Dialer{Schedule: faultSchedule(seed^0x5EED, 400)}
			faultClient := &http.Client{Transport: &http.Transport{DialContext: dialer.DialContext}}
			faulted := startFollower(t, leader.srv.URL, faultClient, nil)
			victim := startFollower(t, leader.srv.URL, nil, nil)

			const mutations = 48
			killAt := 16 + rng.Intn(16)
			var restarted *node
			for i := 0; i < mutations; i++ {
				switch r := rng.Intn(100); {
				case r < 15 && len(finals) > 2:
					names := make([]string, 0, len(finals))
					for name := range finals {
						names = append(names, name)
					}
					sort.Strings(names)
					name := names[rng.Intn(len(names))]
					deleteDoc(t, leader.srv.URL, name)
					delete(finals, name)
				case r < 55:
					name := fmt.Sprintf("live-%d.xml", rng.Intn(24))
					xml := docXML(rng, i+1)
					upsertDoc(t, leader.srv.URL, name, xml)
					finals[name] = xml
				default:
					names := make([]string, 0, len(finals))
					for name := range finals {
						names = append(names, name)
					}
					sort.Strings(names)
					name := names[rng.Intn(len(names))]
					xml := docXML(rng, i+1)
					upsertDoc(t, leader.srv.URL, name, xml)
					finals[name] = xml
				}
				if i == killAt {
					victim.abandon() // SIGKILL mid-stream: no checkpoint, no close
				}
				if i == killAt+8 {
					restarted = startFollower(t, leader.srv.URL, nil, victim)
				}
				if i%12 == 11 {
					dialer.SeverAll()
				}
			}
			if restarted == nil {
				restarted = startFollower(t, leader.srv.URL, nil, victim)
			}

			waitCaughtUp(t, "faulted follower", leader, faulted)
			waitCaughtUp(t, "restarted follower", leader, restarted)

			// Byte-identity: a follower that never restarted mirrors the
			// leader's responses exactly, faults notwithstanding.
			for _, q := range oracleQueries {
				_, want := httpGet(t, leader.srv.URL+searchPath(q))
				_, got := httpGet(t, faulted.srv.URL+searchPath(q))
				if string(want) != string(got) {
					t.Fatalf("faulted follower diverges on %q:\nleader   %s\nfollower %s", q, want, got)
				}
			}

			// Every node matches a cold rebuild of the final corpus
			// (boot replay may renumber internal doc IDs, so the
			// restarted node is compared doc-ID-insensitively).
			oracle := coldRebuild(t, finals)
			assertStateEqual(t, "leader vs cold rebuild", oracle, leader.api.Searcher())
			assertStateEqual(t, "faulted follower vs cold rebuild", oracle, faulted.api.Searcher())
			assertStateEqual(t, "restarted follower vs cold rebuild", oracle, restarted.api.Searcher())

			if st := faulted.fl.Status(); st.Reconnects == 0 && dialer.Dials() < 2 {
				t.Fatalf("fault schedule exercised nothing: %+v, %d dials", st, dialer.Dials())
			}
		})
	}
}

// TestRouterFailoverAndPartial drives the router contract: full answers
// while all replicas serve, partial-flagged uncached answers while one
// is down, full answers again after re-admission.
func TestRouterFailoverAndPartial(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	finals := map[string]string{}
	leader := startLeader(t, rng, finals, 6)
	f1 := startFollower(t, leader.srv.URL, nil, nil)
	f2 := startFollower(t, leader.srv.URL, nil, nil)
	f2.ln = f2.srv.Listener // remember the address for the restart
	waitCaughtUp(t, "f1", leader, f1)
	waitCaughtUp(t, "f2", leader, f2)
	waitReady(t, "f1", f1)
	waitReady(t, "f2", f2)

	router, err := replica.NewRouter(replica.RouterConfig{
		Replicas:    []string{f1.srv.URL, f2.srv.URL},
		Leader:      leader.srv.URL,
		HealthEvery: time.Hour, // probes driven manually via CheckNow
		Timeout:     2 * time.Second,
		Retries:     2,
		Seed:        1,
	})
	if err != nil {
		t.Fatal(err)
	}
	mux := http.NewServeMux()
	router.Routes(mux)
	rsrv := httptest.NewServer(mux)
	defer rsrv.Close()
	ctx := context.Background()

	if n := router.CheckNow(ctx); n != 2 {
		t.Fatalf("healthy replicas: %d, want 2", n)
	}

	q := searchPath("apple pear")
	getJSON := func() (partial bool, cacheControl string) {
		t.Helper()
		resp, err := http.Get(rsrv.URL + q)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		body, _ := io.ReadAll(resp.Body)
		if resp.StatusCode != 200 {
			t.Fatalf("router search: %d: %s", resp.StatusCode, body)
		}
		return strings.Contains(string(body), "\"partial\":true"), resp.Header.Get("Cache-Control")
	}

	// Healthy cluster: full answers, untouched headers.
	if partial, cc := getJSON(); partial || cc == "no-store" {
		t.Fatalf("healthy cluster answered partial=%v cache-control=%q", partial, cc)
	}

	// Mutations forwarded to the leader through the router.
	body := `{"name":"via-router.xml","xml":"<paper><title>apple pear</title></paper>"}`
	resp, err := http.Post(rsrv.URL+"/admin/docs", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	msg, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != 200 {
		t.Fatalf("router-forwarded upsert: %d: %s", resp.StatusCode, msg)
	}
	finals["via-router.xml"] = `<paper><title>apple pear</title></paper>`
	waitCaughtUp(t, "f1 after forwarded write", leader, f1)
	waitCaughtUp(t, "f2 after forwarded write", leader, f2)

	// Kill f2 mid-service: the next queries must keep answering (via
	// f1), flagged partial and uncacheable while the set is degraded.
	f2.abandon()
	router.CheckNow(ctx)
	for i := 0; i < 4; i++ {
		partial, cc := getJSON()
		if !partial || cc != "no-store" {
			t.Fatalf("degraded cluster answered partial=%v cache-control=%q, want partial no-store", partial, cc)
		}
	}
	code, hbody := httpGet(t, rsrv.URL+"/healthz")
	if code != 200 || !strings.Contains(string(hbody), "\"status\":\"degraded\"") {
		t.Fatalf("router healthz while degraded: %d %s", code, hbody)
	}

	// Restart f2 on the same address; once it catches back up and a
	// probe passes, it is re-admitted and answers turn full again.
	f2r := startFollower(t, leader.srv.URL, nil, f2)
	waitCaughtUp(t, "restarted f2", leader, f2r)
	deadline := time.Now().Add(30 * time.Second)
	for router.CheckNow(ctx) != 2 {
		if time.Now().After(deadline) {
			t.Fatalf("f2 never re-admitted: %+v", f2r.fl.Status())
		}
		time.Sleep(20 * time.Millisecond)
	}
	if partial, cc := getJSON(); partial || cc == "no-store" {
		t.Fatalf("recovered cluster answered partial=%v cache-control=%q", partial, cc)
	}
}

// TestFollowerReadiness pins the /healthz?ready state machine: not
// ready before first catch-up, ready once caught up, still ready while
// disconnected (stale reads are the contract), not ready while lagging
// past MaxLag on a live connection.
func TestFollowerReadiness(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	finals := map[string]string{}
	leader := startLeader(t, rng, finals, 4)
	f := startFollower(t, leader.srv.URL, nil, nil)
	waitCaughtUp(t, "f", leader, f)

	deadline := time.Now().Add(10 * time.Second)
	for !f.fl.Ready() {
		if time.Now().After(deadline) {
			t.Fatalf("follower never turned ready: %+v", f.fl.Status())
		}
		time.Sleep(10 * time.Millisecond)
	}
	code, _ := httpGet(t, f.srv.URL+"/healthz?ready")
	if code != 200 {
		t.Fatalf("ready probe after catch-up: %d", code)
	}

	// Leader goes away entirely: the follower keeps serving stale reads
	// and stays ready.
	leader.srv.CloseClientConnections()
	leader.srv.Close()
	time.Sleep(50 * time.Millisecond)
	if !f.fl.Ready() {
		t.Fatalf("disconnected follower dropped readiness: %+v", f.fl.Status())
	}
	code, _ = httpGet(t, f.srv.URL+"/healthz?ready")
	if code != 200 {
		t.Fatalf("ready probe while disconnected: %d", code)
	}
}
