package replica

import (
	"bufio"
	"context"
	"errors"
	"fmt"
	"io"
	"log"
	"math/rand"
	"net/http"
	"strconv"
	"sync"
	"time"

	"repro/internal/wal"
)

// Applier is the follower's hook into the serving stack: it stages
// leader records through the same two-phase commit path local ingestion
// uses, and installs full snapshots when tailing is impossible.
// Implemented by server.ReplicaApplier.
type Applier interface {
	// AppliedLSN is the position the follower resumes from: every record
	// at or below it is durable locally and visible to searches.
	AppliedLSN() uint64
	// Apply stages one record (local WAL enqueue + index apply + swap).
	// Records arrive in strict LSN order; duplicates are the caller's
	// problem (the follower skips them before calling).
	Apply(rec wal.Record) error
	// Sync makes every staged record durable and advances AppliedLSN.
	// The follower calls it at batch boundaries, not per record, so the
	// local group commit sees the same batching the leader's did.
	Sync() error
	// InstallSnapshot atomically replaces all local state with the
	// snapshot in r, which covers LSNs through lsn.
	InstallSnapshot(lsn uint64, r io.Reader) error
}

// FollowerMetrics receives follower-side replication gauges and
// counters. Implemented by *obs.Registry.
type FollowerMetrics interface {
	SetReplicaLSNs(applied, leaderDurable uint64)
	IncReplicaReconnect()
	IncReplicaSnapshotInstall()
}

type nopFollowerMetrics struct{}

func (nopFollowerMetrics) SetReplicaLSNs(uint64, uint64) {}
func (nopFollowerMetrics) IncReplicaReconnect()          {}
func (nopFollowerMetrics) IncReplicaSnapshotInstall()    {}

// Status is a point-in-time view of a follower's replication state.
type Status struct {
	Connected     bool   `json:"connected"`
	CaughtUp      bool   `json:"caughtUp"`
	AppliedLSN    uint64 `json:"appliedLsn"`
	LeaderDurable uint64 `json:"leaderDurableLsn"`
	Reconnects    uint64 `json:"reconnects"`
	Installs      uint64 `json:"snapshotInstalls"`
}

// Config configures a Follower.
type Config struct {
	// Leader is the leader's base URL (e.g. http://10.0.0.1:8080).
	Leader string
	// Client issues the snapshot and stream requests. It must not carry
	// an overall request timeout — streams are long-lived. Defaults to a
	// dedicated client with a dial/header timeout only.
	Client *http.Client

	Applier Applier
	Metrics FollowerMetrics
	Logger  *log.Logger

	// MaxLag is the record lag beyond which a connected follower stops
	// reporting ready (default 4096). Disconnected followers keep serving
	// stale reads and stay ready once they have caught up at least once.
	MaxLag uint64
	// HeartbeatTimeout is how long a silent stream is trusted before the
	// connection is torn down (default 10s; the leader heartbeats every
	// 2s by default).
	HeartbeatTimeout time.Duration
	// ReconnectMin/Max bound the jittered backoff between connection
	// attempts (defaults 100ms / 3s).
	ReconnectMin, ReconnectMax time.Duration
}

// Follower tails a leader's replication stream and drives an Applier.
type Follower struct {
	cfg     Config
	client  *http.Client
	metrics FollowerMetrics

	mu            sync.Mutex
	connected     bool
	everCaughtUp  bool
	leaderDurable uint64
	reconnects    uint64
	installs      uint64
	rng           *rand.Rand
}

// NewFollower validates cfg and returns a follower ready to Run.
func NewFollower(cfg Config) (*Follower, error) {
	if cfg.Leader == "" {
		return nil, errors.New("replica: follower needs a leader URL")
	}
	if cfg.Applier == nil {
		return nil, errors.New("replica: follower needs an applier")
	}
	if cfg.MaxLag == 0 {
		cfg.MaxLag = 4096
	}
	if cfg.HeartbeatTimeout <= 0 {
		cfg.HeartbeatTimeout = 10 * time.Second
	}
	if cfg.ReconnectMin <= 0 {
		cfg.ReconnectMin = 100 * time.Millisecond
	}
	if cfg.ReconnectMax < cfg.ReconnectMin {
		cfg.ReconnectMax = 3 * time.Second
		if cfg.ReconnectMax < cfg.ReconnectMin {
			cfg.ReconnectMax = cfg.ReconnectMin
		}
	}
	client := cfg.Client
	if client == nil {
		client = &http.Client{Transport: http.DefaultTransport}
	}
	metrics := cfg.Metrics
	if metrics == nil {
		metrics = nopFollowerMetrics{}
	}
	return &Follower{
		cfg:     cfg,
		client:  client,
		metrics: metrics,
		rng:     rand.New(rand.NewSource(time.Now().UnixNano())),
	}, nil
}

func (f *Follower) logf(format string, args ...any) {
	if f.cfg.Logger != nil {
		f.cfg.Logger.Printf(format, args...)
	}
}

// Status reports the follower's current replication state.
func (f *Follower) Status() Status {
	applied := f.cfg.Applier.AppliedLSN()
	f.mu.Lock()
	defer f.mu.Unlock()
	return Status{
		Connected:     f.connected,
		CaughtUp:      f.caughtUpLocked(applied),
		AppliedLSN:    applied,
		LeaderDurable: f.leaderDurable,
		Reconnects:    f.reconnects,
		Installs:      f.installs,
	}
}

func (f *Follower) caughtUpLocked(applied uint64) bool {
	if f.connected {
		return f.leaderDurable <= applied+f.cfg.MaxLag
	}
	// Disconnected: trust the last sighting of the leader's watermark.
	// Stale reads are this design's contract; readiness only drops when
	// the follower has never caught up (still bootstrapping).
	return f.everCaughtUp
}

// Ready reports whether the follower should serve traffic: it has
// caught up to the leader at least once and, while connected, is within
// MaxLag of the leader's durable watermark.
func (f *Follower) Ready() bool {
	applied := f.cfg.Applier.AppliedLSN()
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.everCaughtUp && f.caughtUpLocked(applied)
}

func (f *Follower) setConnected(up bool) {
	f.mu.Lock()
	f.connected = up
	f.mu.Unlock()
}

func (f *Follower) observeLeaderDurable(durable uint64) {
	applied := f.cfg.Applier.AppliedLSN()
	f.mu.Lock()
	if durable > f.leaderDurable {
		f.leaderDurable = durable
	}
	// Initial catch-up demands full equality — a bootstrapping follower
	// is not ready until it has seen everything the leader had. Only
	// after that does the MaxLag slack apply.
	if f.leaderDurable <= applied {
		f.everCaughtUp = true
	}
	f.mu.Unlock()
	f.metrics.SetReplicaLSNs(applied, durable)
}

func (f *Follower) backoff(attempt int) time.Duration {
	d := f.cfg.ReconnectMin << attempt
	if d > f.cfg.ReconnectMax || d <= 0 {
		d = f.cfg.ReconnectMax
	}
	f.mu.Lock()
	jitter := time.Duration(f.rng.Int63n(int64(d)/2 + 1))
	f.mu.Unlock()
	return d/2 + jitter
}

// Run tails the leader until ctx ends. Every connection failure backs
// off with jitter; a 410 from the stream endpoint (the leader truncated
// past our position) falls back to a snapshot install. Run returns
// ctx.Err() on cancellation and a hard error only when the local
// applier fails (at which point the local state can no longer be
// trusted to mirror the leader).
func (f *Follower) Run(ctx context.Context) error {
	attempt := 0
	for {
		if err := ctx.Err(); err != nil {
			return err
		}
		err := f.tailOnce(ctx)
		f.setConnected(false)
		switch {
		case err == nil:
			// Leader closed the stream cleanly (shutdown or truncation
			// race); reconnect promptly.
			attempt = 0
		case errors.Is(err, context.Canceled) || ctx.Err() != nil:
			return ctx.Err()
		case errors.Is(err, errNeedSnapshot):
			if ierr := f.installSnapshot(ctx); ierr != nil {
				if ctx.Err() != nil {
					return ctx.Err()
				}
				f.logf("replica: snapshot install: %v", ierr)
				attempt++
			} else {
				attempt = 0
				continue
			}
		case isApplyFault(err):
			return err
		default:
			f.logf("replica: stream: %v", err)
			attempt++
		}
		f.mu.Lock()
		f.reconnects++
		f.mu.Unlock()
		f.metrics.IncReplicaReconnect()
		select {
		case <-ctx.Done():
			return ctx.Err()
		case <-time.After(f.backoff(attempt)):
		}
	}
}

// errNeedSnapshot reports that the leader no longer holds the records
// after our applied LSN.
var errNeedSnapshot = errors.New("replica: need snapshot")

// applyFault wraps applier errors so Run can tell "the network burped"
// (retry) from "local apply failed" (stop: the mirror is broken).
type applyFault struct{ err error }

func (a applyFault) Error() string { return a.err.Error() }
func (a applyFault) Unwrap() error { return a.err }

func isApplyFault(err error) bool {
	var a applyFault
	return errors.As(err, &a)
}

// tailOnce runs one stream connection to completion. nil means the
// leader ended the stream cleanly; errNeedSnapshot means fall back to a
// snapshot; applyFault means the local applier failed.
func (f *Follower) tailOnce(ctx context.Context) error {
	from := f.cfg.Applier.AppliedLSN()
	req, err := http.NewRequestWithContext(ctx, http.MethodGet,
		fmt.Sprintf("%s/replica/stream?from=%d", f.cfg.Leader, from), nil)
	if err != nil {
		return err
	}
	resp, err := f.client.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	switch resp.StatusCode {
	case http.StatusOK:
	case http.StatusGone:
		io.Copy(io.Discard, io.LimitReader(resp.Body, 4096))
		return errNeedSnapshot
	default:
		io.Copy(io.Discard, io.LimitReader(resp.Body, 4096))
		return fmt.Errorf("replica: stream: leader returned %s", resp.Status)
	}
	f.setConnected(true)

	// Heartbeat watchdog: if the stream goes silent past the timeout the
	// body is closed, which surfaces as a read error below. Rearmed on
	// every frame.
	watchdog := time.AfterFunc(f.cfg.HeartbeatTimeout, func() {
		f.logf("replica: stream silent for %s, reconnecting", f.cfg.HeartbeatTimeout)
		resp.Body.Close()
	})
	defer watchdog.Stop()

	br := bufio.NewReader(resp.Body)
	applied := from
	staged := 0
	syncStaged := func() error {
		if staged == 0 {
			return nil
		}
		if err := f.cfg.Applier.Sync(); err != nil {
			return applyFault{fmt.Errorf("replica: sync: %w", err)}
		}
		staged = 0
		// Re-evaluate catch-up with the freshly advanced applied LSN.
		f.observeLeaderDurable(f.leaderDurableNow())
		return nil
	}
	for {
		rec, err := wal.ReadWireFrame(br)
		if err != nil {
			serr := syncStaged()
			switch {
			case serr != nil:
				return serr
			case err == io.EOF:
				return nil
			case errors.Is(err, wal.ErrCorrupt):
				// A CRC-failed frame means bytes were mangled in flight;
				// drop the connection and re-request from the durable
				// position rather than applying garbage.
				return fmt.Errorf("replica: stream frame: %w", err)
			default:
				return fmt.Errorf("replica: stream read: %w", err)
			}
		}
		watchdog.Reset(f.cfg.HeartbeatTimeout)
		if rec.Op == wal.OpHeartbeat {
			if err := syncStaged(); err != nil {
				return err
			}
			f.observeLeaderDurable(rec.LSN)
			continue
		}
		if rec.LSN <= applied {
			continue // duplicate after a reconnect race
		}
		if rec.LSN != applied+1 {
			return fmt.Errorf("replica: stream gap: got lsn %d after %d", rec.LSN, applied)
		}
		if err := f.cfg.Applier.Apply(rec); err != nil {
			return applyFault{fmt.Errorf("replica: apply lsn %d: %w", rec.LSN, err)}
		}
		applied = rec.LSN
		staged++
		if rec.LSN > f.leaderDurableNow() {
			f.observeLeaderDurable(rec.LSN)
		}
		// Batch boundary: nothing more buffered — make the batch durable
		// before blocking on the network again.
		if br.Buffered() == 0 {
			if err := syncStaged(); err != nil {
				return err
			}
		}
	}
}

func (f *Follower) leaderDurableNow() uint64 {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.leaderDurable
}

// installSnapshot fetches the leader's current snapshot and hands it to
// the applier.
func (f *Follower) installSnapshot(ctx context.Context) error {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, f.cfg.Leader+"/replica/snapshot", nil)
	if err != nil {
		return err
	}
	resp, err := f.client.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		io.Copy(io.Discard, io.LimitReader(resp.Body, 4096))
		return fmt.Errorf("replica: snapshot: leader returned %s", resp.Status)
	}
	lsn, err := strconv.ParseUint(resp.Header.Get(LSNHeader), 10, 64)
	if err != nil {
		return fmt.Errorf("replica: snapshot: bad %s header: %v", LSNHeader, err)
	}
	if err := f.cfg.Applier.InstallSnapshot(lsn, resp.Body); err != nil {
		return fmt.Errorf("replica: snapshot install at lsn %d: %w", lsn, err)
	}
	f.mu.Lock()
	f.installs++
	f.mu.Unlock()
	f.metrics.IncReplicaSnapshotInstall()
	f.observeLeaderDurable(lsn)
	f.logf("replica: installed snapshot at lsn %d", lsn)
	return nil
}
