// Real-process crash smoke: gksd leader + follower as child processes,
// SIGKILLed mid-stream / mid-ingest and restarted, asserting the
// cluster converges. This is what `make replica-smoke` runs.
package replica_test

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"sync"
	"testing"
	"time"

	gks "repro"
)

// syncBuf is a concurrency-safe capture buffer: exec's pipe goroutine
// writes while the test may read it for a failure message.
type syncBuf struct {
	mu sync.Mutex
	b  bytes.Buffer
}

func (s *syncBuf) Write(p []byte) (int, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.b.Write(p)
}

func (s *syncBuf) String() string {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.b.String()
}

// proc wraps one gksd child process.
type proc struct {
	cmd  *exec.Cmd
	out  *syncBuf
	done chan struct{}
}

func startProc(t *testing.T, bin string, args ...string) *proc {
	t.Helper()
	p := &proc{cmd: exec.Command(bin, args...), out: &syncBuf{}, done: make(chan struct{})}
	p.cmd.Stdout = p.out
	p.cmd.Stderr = p.out
	if err := p.cmd.Start(); err != nil {
		t.Fatalf("start %s: %v", bin, err)
	}
	go func() { p.cmd.Wait(); close(p.done) }()
	t.Cleanup(func() { p.kill() })
	return p
}

// kill SIGKILLs the process and reaps it. Idempotent.
func (p *proc) kill() {
	p.cmd.Process.Kill()
	select {
	case <-p.done:
	case <-time.After(10 * time.Second):
	}
}

func freeAddr(t *testing.T) string {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := ln.Addr().String()
	ln.Close()
	return addr
}

// waitHTTP polls url until it answers with wantCode.
func waitHTTP(t *testing.T, p *proc, url string, wantCode int, within time.Duration) {
	t.Helper()
	deadline := time.Now().Add(within)
	for {
		resp, err := http.Get(url)
		if err == nil {
			resp.Body.Close()
			if resp.StatusCode == wantCode {
				return
			}
		}
		if time.Now().After(deadline) {
			t.Fatalf("GET %s never answered %d (last err %v)\nprocess output:\n%s", url, wantCode, err, p.out)
		}
		time.Sleep(25 * time.Millisecond)
	}
}

// healthLSN fetches the wal.lastLsn a node reports on /healthz.
func healthLSN(t *testing.T, base string) (uint64, error) {
	resp, err := http.Get(base + "/healthz")
	if err != nil {
		return 0, err
	}
	defer resp.Body.Close()
	var out struct {
		WAL struct {
			LastLSN uint64 `json:"lastLsn"`
		} `json:"wal"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		return 0, err
	}
	return out.WAL.LastLSN, nil
}

// searchKeys fetches /search and projects the results onto
// doc-ID-insensitive keys (process restarts may renumber internal doc
// IDs without changing any answer semantics).
func searchKeys(t *testing.T, base, q string) []string {
	t.Helper()
	_, body := httpGet(t, base+searchPath(q))
	var out struct {
		Total   int `json:"total"`
		Results []struct {
			ID       string   `json:"id"`
			Label    string   `json:"label"`
			Rank     float64  `json:"rank"`
			Keywords []string `json:"keywords"`
		} `json:"results"`
	}
	if err := json.Unmarshal(body, &out); err != nil {
		t.Fatalf("search %s%s: %v: %s", base, q, err, body)
	}
	keys := make([]string, 0, len(out.Results))
	for _, r := range out.Results {
		rel := r.ID
		if i := strings.IndexByte(rel, '.'); i >= 0 {
			rel = rel[i+1:]
		}
		kws := append([]string(nil), r.Keywords...)
		sort.Strings(kws)
		keys = append(keys, strings.Join([]string{
			rel, r.Label, strconv.FormatFloat(r.Rank, 'g', 12, 64), strings.Join(kws, ","),
		}, "|"))
	}
	sort.Strings(keys)
	return keys
}

// TestProcessCrashConvergence is the end-to-end crash drill with real
// processes: SIGKILL a follower mid-stream, SIGKILL the leader
// mid-ingest, restart both from their surviving directories, and assert
// both ends serve converged search results.
func TestProcessCrashConvergence(t *testing.T) {
	if testing.Short() {
		t.Skip("builds and drives real gksd processes")
	}
	tmp := t.TempDir()
	bin := filepath.Join(tmp, "gksd")
	root, err := filepath.Abs("../..")
	if err != nil {
		t.Fatal(err)
	}
	build := exec.Command("go", "build", "-o", bin, "./cmd/gksd")
	build.Dir = root
	if out, err := build.CombinedOutput(); err != nil {
		t.Fatalf("go build gksd: %v\n%s", err, out)
	}

	// Seed the leader's index.
	leaderIdx := filepath.Join(tmp, "leader.gksidx")
	var docs []*gks.Document
	for i := 0; i < 5; i++ {
		d, err := gks.ParseDocumentString(
			fmt.Sprintf("<paper><title>apple pear %d</title><author>mango</author></paper>", i),
			fmt.Sprintf("seed-%d.xml", i))
		if err != nil {
			t.Fatal(err)
		}
		docs = append(docs, d)
	}
	sys, err := gks.IndexDocuments(docs...)
	if err != nil {
		t.Fatal(err)
	}
	if err := sys.SaveIndexFile(leaderIdx); err != nil {
		t.Fatal(err)
	}

	leaderAddr := freeAddr(t)
	followerAddr := freeAddr(t)
	leaderURL := "http://" + leaderAddr
	followerURL := "http://" + followerAddr
	followerIdx := filepath.Join(tmp, "follower", "replica.gksidx")
	if err := os.MkdirAll(filepath.Dir(followerIdx), 0o755); err != nil {
		t.Fatal(err)
	}

	leaderArgs := []string{"-index", leaderIdx, "-addr", leaderAddr, "-quiet", "-cache", "0", "-checkpoint-every", "4"}
	followerArgs := []string{"-follow", leaderURL, "-index", followerIdx, "-addr", followerAddr, "-quiet", "-cache", "0", "-checkpoint-every", "4"}

	leader := startProc(t, bin, leaderArgs...)
	waitHTTP(t, leader, leaderURL+"/healthz", 200, 30*time.Second)
	follower := startProc(t, bin, followerArgs...)
	waitHTTP(t, follower, followerURL+"/healthz?ready", 200, 30*time.Second)

	// Phase 1: ingest against the leader, SIGKILL the follower
	// mid-stream, keep ingesting, restart it.
	for i := 0; i < 6; i++ {
		upsertDoc(t, leaderURL, fmt.Sprintf("live-%d.xml", i),
			fmt.Sprintf("<paper><title>cherry fig %d</title></paper>", i))
		if i == 2 {
			follower.kill()
		}
	}
	follower = startProc(t, bin, followerArgs...)
	waitHTTP(t, follower, followerURL+"/healthz?ready", 200, 30*time.Second)

	// Phase 2: SIGKILL the leader mid-ingest (a writer is in flight when
	// the signal lands; un-acked writes may or may not survive — both
	// are legal, and the cluster must converge on whichever it is).
	var wg sync.WaitGroup
	wg.Add(1)
	stop := make(chan struct{})
	go func() {
		defer wg.Done()
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			body := fmt.Sprintf("{\"name\":\"burst-%d.xml\",\"xml\":\"<paper><title>olive date %d</title></paper>\"}", i, i)
			resp, err := http.Post(leaderURL+"/admin/docs", "application/json", strings.NewReader(body))
			if err != nil {
				return // leader died mid-request: expected
			}
			resp.Body.Close()
		}
	}()
	time.Sleep(150 * time.Millisecond)
	leader.kill()
	close(stop)
	wg.Wait()

	leader = startProc(t, bin, leaderArgs...)
	waitHTTP(t, leader, leaderURL+"/healthz", 200, 30*time.Second)

	// Let the restarted pair converge: the follower must reach the
	// leader's (now quiescent) WAL position and report ready.
	waitHTTP(t, follower, followerURL+"/healthz?ready", 200, 30*time.Second)
	deadline := time.Now().Add(30 * time.Second)
	for {
		lLSN, lErr := healthLSN(t, leaderURL)
		fLSN, fErr := healthLSN(t, followerURL)
		if lErr == nil && fErr == nil && lLSN == fLSN {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("never converged: leader lsn %d (%v), follower lsn %d (%v)\nleader:\n%s\nfollower:\n%s",
				lLSN, lErr, fLSN, fErr, leader.out, follower.out)
		}
		time.Sleep(25 * time.Millisecond)
	}

	for _, q := range []string{"apple pear", "cherry fig", "olive date", "mango"} {
		want := searchKeys(t, leaderURL, q)
		got := searchKeys(t, followerURL, q)
		if strings.Join(want, "\n") != strings.Join(got, "\n") {
			t.Fatalf("diverged on %q after crash recovery:\nleader   %v\nfollower %v\nleader log:\n%s\nfollower log:\n%s",
				q, want, got, leader.out, follower.out)
		}
	}

	// The follower still refuses writes after all that.
	resp, err := http.Post(followerURL+"/admin/docs", "application/json",
		strings.NewReader(`{"name":"x.xml","xml":"<a>b</a>"}`))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusForbidden {
		t.Fatalf("follower accepted a write: %d", resp.StatusCode)
	}
}
