package faultnet

import (
	"context"
	"errors"
	"io"
	"net"
	"sync"
	"testing"
	"time"
)

// echoServer accepts connections and echoes bytes back until closed.
func echoServer(t *testing.T) net.Listener {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	go func() {
		for {
			c, err := ln.Accept()
			if err != nil {
				return
			}
			wg.Add(1)
			go func() {
				defer wg.Done()
				defer c.Close()
				io.Copy(c, c)
			}()
		}
	}()
	t.Cleanup(func() { ln.Close(); wg.Wait() })
	return ln
}

func dialEcho(t *testing.T, d *Dialer, ln net.Listener) net.Conn {
	t.Helper()
	c, err := d.DialContext(context.Background(), "tcp", ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { c.Close() })
	return c
}

func TestFailDial(t *testing.T) {
	ln := echoServer(t)
	d := &Dialer{Schedule: func(n int) Plan { return Plan{FailDial: n == 0} }}
	if _, err := d.DialContext(context.Background(), "tcp", ln.Addr().String()); !errors.Is(err, ErrInjected) {
		t.Fatalf("dial 0: %v, want ErrInjected", err)
	}
	c := dialEcho(t, d, ln) // dial 1 passes
	if _, err := c.Write([]byte("hi")); err != nil {
		t.Fatalf("write on clean dial: %v", err)
	}
	if d.Dials() != 2 {
		t.Fatalf("dials: %d, want 2", d.Dials())
	}
}

func TestCutAfterReadTruncatesMidBuffer(t *testing.T) {
	ln := echoServer(t)
	d := &Dialer{Schedule: func(int) Plan { return Plan{CutAfterRead: 5} }}
	c := dialEcho(t, d, ln)
	if _, err := c.Write([]byte("0123456789")); err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 10)
	n, err := io.ReadFull(c, buf)
	if n != 5 {
		t.Fatalf("read %d bytes before cut, want 5 (err %v)", n, err)
	}
	if err == nil {
		t.Fatal("read past the cut succeeded")
	}
	// The connection stays dead.
	if _, err := c.Read(buf); !errors.Is(err, ErrInjected) {
		t.Fatalf("read after cut: %v, want ErrInjected", err)
	}
}

func TestCutAfterWriteDeliversTruncatedPrefix(t *testing.T) {
	ln := echoServer(t)
	d := &Dialer{Schedule: func(int) Plan { return Plan{CutAfterWrite: 4} }}
	c := dialEcho(t, d, ln)
	n, err := c.Write([]byte("0123456789"))
	if n != 4 || !errors.Is(err, ErrInjected) {
		t.Fatalf("write: n=%d err=%v, want 4 bytes + ErrInjected", n, err)
	}
}

func TestSeverAll(t *testing.T) {
	ln := echoServer(t)
	d := &Dialer{}
	c := dialEcho(t, d, ln)
	if _, err := c.Write([]byte("hi")); err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() {
		buf := make([]byte, 64)
		// First read drains the echo; the second blocks until severed.
		if _, err := c.Read(buf); err != nil {
			done <- err
			return
		}
		_, err := c.Read(buf)
		done <- err
	}()
	time.Sleep(20 * time.Millisecond)
	d.SeverAll()
	select {
	case err := <-done:
		if err == nil {
			t.Fatal("read survived SeverAll")
		}
	case <-time.After(5 * time.Second):
		t.Fatal("blocked read not released by SeverAll")
	}
}

func TestDelaysApplied(t *testing.T) {
	ln := echoServer(t)
	d := &Dialer{Schedule: func(int) Plan { return Plan{WriteDelay: 30 * time.Millisecond} }}
	c := dialEcho(t, d, ln)
	start := time.Now()
	if _, err := c.Write([]byte("x")); err != nil {
		t.Fatal(err)
	}
	if took := time.Since(start); took < 25*time.Millisecond {
		t.Fatalf("write returned in %v, want >= 30ms delay", took)
	}
}
