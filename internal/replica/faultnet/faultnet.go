// Package faultnet injects network faults underneath an http.Transport:
// refused dials, per-direction latency, connections cut after a byte
// budget (truncating replication frames mid-payload), and on-demand
// severing of every live connection. The replication property tests use
// it to prove follower catch-up survives arbitrary fault schedules.
package faultnet

import (
	"context"
	"errors"
	"net"
	"sync"
	"time"
)

// Plan scripts the faults for one connection.
type Plan struct {
	// FailDial refuses the connection outright.
	FailDial bool
	// ReadDelay/WriteDelay are injected before every read/write.
	ReadDelay, WriteDelay time.Duration
	// CutAfterRead/CutAfterWrite sever the connection once that many
	// bytes have crossed in the given direction (0 = unlimited). A cut
	// mid-count truncates the in-flight buffer first, so frames are torn
	// mid-payload, not at tidy boundaries.
	CutAfterRead, CutAfterWrite int64
}

// ErrInjected is the error surfaced by scripted faults.
var ErrInjected = errors.New("faultnet: injected fault")

// Dialer produces scripted-fault connections. Schedule is consulted
// once per dial with a 0-based dial counter; a nil Schedule (or a zero
// Plan) passes traffic through untouched.
type Dialer struct {
	// Base performs the real dial; defaults to a net.Dialer.
	Base func(ctx context.Context, network, addr string) (net.Conn, error)
	// Schedule scripts the faults for the n-th dial.
	Schedule func(dial int) Plan

	mu    sync.Mutex
	dials int
	conns map[*conn]struct{}
}

// DialContext is shaped for http.Transport.DialContext.
func (d *Dialer) DialContext(ctx context.Context, network, addr string) (net.Conn, error) {
	d.mu.Lock()
	n := d.dials
	d.dials++
	d.mu.Unlock()
	var plan Plan
	if d.Schedule != nil {
		plan = d.Schedule(n)
	}
	if plan.FailDial {
		return nil, ErrInjected
	}
	base := d.Base
	if base == nil {
		var nd net.Dialer
		base = nd.DialContext
	}
	inner, err := base(ctx, network, addr)
	if err != nil {
		return nil, err
	}
	c := &conn{Conn: inner, plan: plan}
	d.mu.Lock()
	if d.conns == nil {
		d.conns = make(map[*conn]struct{})
	}
	d.conns[c] = struct{}{}
	c.onClose = func() {
		d.mu.Lock()
		delete(d.conns, c)
		d.mu.Unlock()
	}
	d.mu.Unlock()
	return c, nil
}

// Dials reports how many dials have been attempted.
func (d *Dialer) Dials() int {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.dials
}

// SeverAll abruptly closes every live connection — the network
// partition / process-kill analogue for in-process tests.
func (d *Dialer) SeverAll() {
	d.mu.Lock()
	live := make([]*conn, 0, len(d.conns))
	for c := range d.conns {
		live = append(live, c)
	}
	d.mu.Unlock()
	for _, c := range live {
		c.sever()
	}
}

type conn struct {
	net.Conn
	plan    Plan
	onClose func()

	mu        sync.Mutex
	readBytes int64
	wroteByte int64
	severed   bool
	closed    bool
}

func (c *conn) sever() {
	c.mu.Lock()
	c.severed = true
	c.mu.Unlock()
	c.Conn.Close()
}

func (c *conn) Close() error {
	c.mu.Lock()
	already := c.closed
	c.closed = true
	c.mu.Unlock()
	err := c.Conn.Close()
	if !already && c.onClose != nil {
		c.onClose()
	}
	return err
}

func (c *conn) isSevered() bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.severed
}

func (c *conn) Read(p []byte) (int, error) {
	if c.isSevered() {
		return 0, ErrInjected
	}
	if c.plan.ReadDelay > 0 {
		time.Sleep(c.plan.ReadDelay)
	}
	if lim := c.plan.CutAfterRead; lim > 0 {
		c.mu.Lock()
		remain := lim - c.readBytes
		c.mu.Unlock()
		if remain <= 0 {
			c.sever()
			return 0, ErrInjected
		}
		if int64(len(p)) > remain {
			// Shrink the read so the cut lands mid-frame, not at
			// whatever tidy boundary the caller asked for.
			p = p[:remain]
		}
	}
	n, err := c.Conn.Read(p)
	c.mu.Lock()
	c.readBytes += int64(n)
	hitCut := c.plan.CutAfterRead > 0 && c.readBytes >= c.plan.CutAfterRead
	c.mu.Unlock()
	if hitCut {
		c.sever()
		if err == nil {
			err = ErrInjected
		}
	}
	return n, err
}

func (c *conn) Write(p []byte) (int, error) {
	if c.isSevered() {
		return 0, ErrInjected
	}
	if c.plan.WriteDelay > 0 {
		time.Sleep(c.plan.WriteDelay)
	}
	if lim := c.plan.CutAfterWrite; lim > 0 {
		c.mu.Lock()
		remain := lim - c.wroteByte
		c.mu.Unlock()
		if remain <= 0 {
			c.sever()
			return 0, ErrInjected
		}
		if int64(len(p)) > remain {
			// Deliver a truncated prefix, then sever: the peer sees a
			// frame die mid-payload.
			n, _ := c.Conn.Write(p[:remain])
			c.mu.Lock()
			c.wroteByte += int64(n)
			c.mu.Unlock()
			c.sever()
			return n, ErrInjected
		}
	}
	n, err := c.Conn.Write(p)
	c.mu.Lock()
	c.wroteByte += int64(n)
	hitCut := c.plan.CutAfterWrite > 0 && c.wroteByte >= c.plan.CutAfterWrite
	c.mu.Unlock()
	if hitCut {
		c.sever()
		if err == nil {
			err = ErrInjected
		}
	}
	return n, err
}
