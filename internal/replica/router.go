package replica

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"log"
	"math/rand"
	"net/http"
	"strings"
	"sync"
	"time"
)

// Router fans read queries across replicas with health-gated failover.
// It is deliberately dumb about query semantics: it relays bytes. The
// one piece of protocol it understands is the partial-results contract
// from the sharded search path — when the replica set is degraded
// (fewer healthy backends than configured), every relayed query answer
// is re-marked "partial": true and stamped Cache-Control: no-store, so
// downstream caches never pin a degraded answer (the same rule the
// server applies to its own LRU).
type Router struct {
	backends []*backend
	leader   string // optional: base URL mutations are forwarded to
	client   *http.Client

	healthEvery time.Duration
	timeout     time.Duration
	retries     int

	logger *log.Logger

	mu   sync.Mutex
	next int
	rng  *rand.Rand
}

type backend struct {
	base string

	mu      sync.Mutex
	healthy bool
	lastErr string
}

func (b *backend) setHealth(ok bool, reason string) (changed bool) {
	b.mu.Lock()
	defer b.mu.Unlock()
	changed = b.healthy != ok
	b.healthy = ok
	b.lastErr = reason
	return changed
}

func (b *backend) isHealthy() bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.healthy
}

// RouterConfig configures NewRouter.
type RouterConfig struct {
	// Replicas are the base URLs queries fan across.
	Replicas []string
	// Leader, when set, receives forwarded mutations (POST/DELETE under
	// /admin/docs) and is also probed for /healthz passthrough.
	Leader string
	// Client issues relays and probes; defaults to http.DefaultTransport.
	Client *http.Client
	// HealthEvery is the probe interval (default 1s).
	HealthEvery time.Duration
	// Timeout bounds each relay attempt (default 5s).
	Timeout time.Duration
	// Retries is how many additional backends one query may try after a
	// failure (default 2).
	Retries int
	Logger  *log.Logger
	// Seed fixes the jitter/backoff randomness for tests; 0 seeds from
	// the clock.
	Seed int64
}

// NewRouter validates cfg and returns a router. Call Run to start the
// health loop; backends start unhealthy until the first probe passes
// (use CheckNow to gate startup).
func NewRouter(cfg RouterConfig) (*Router, error) {
	if len(cfg.Replicas) == 0 {
		return nil, errors.New("replica: router needs at least one replica URL")
	}
	if cfg.HealthEvery <= 0 {
		cfg.HealthEvery = time.Second
	}
	if cfg.Timeout <= 0 {
		cfg.Timeout = 5 * time.Second
	}
	if cfg.Retries < 0 {
		cfg.Retries = 0
	} else if cfg.Retries == 0 {
		cfg.Retries = 2
	}
	client := cfg.Client
	if client == nil {
		client = &http.Client{Transport: http.DefaultTransport}
	}
	seed := cfg.Seed
	if seed == 0 {
		seed = time.Now().UnixNano()
	}
	r := &Router{
		leader:      strings.TrimRight(cfg.Leader, "/"),
		client:      client,
		healthEvery: cfg.HealthEvery,
		timeout:     cfg.Timeout,
		retries:     cfg.Retries,
		logger:      cfg.Logger,
		rng:         rand.New(rand.NewSource(seed)),
	}
	for _, u := range cfg.Replicas {
		r.backends = append(r.backends, &backend{base: strings.TrimRight(u, "/")})
	}
	return r, nil
}

func (rt *Router) logf(format string, args ...any) {
	if rt.logger != nil {
		rt.logger.Printf(format, args...)
	}
}

// Run probes replica health until ctx ends.
func (rt *Router) Run(ctx context.Context) {
	ticker := time.NewTicker(rt.healthEvery)
	defer ticker.Stop()
	rt.CheckNow(ctx)
	for {
		select {
		case <-ctx.Done():
			return
		case <-ticker.C:
			rt.CheckNow(ctx)
		}
	}
}

// CheckNow probes every backend once, concurrently, and returns the
// number of healthy backends. Ejected backends are re-admitted here the
// moment their readiness probe passes again.
func (rt *Router) CheckNow(ctx context.Context) int {
	var wg sync.WaitGroup
	for _, b := range rt.backends {
		wg.Add(1)
		go func(b *backend) {
			defer wg.Done()
			ok, reason := rt.probe(ctx, b.base)
			if b.setHealth(ok, reason) {
				if ok {
					rt.logf("router: %s re-admitted", b.base)
				} else {
					rt.logf("router: %s ejected: %s", b.base, reason)
				}
			}
		}(b)
	}
	wg.Wait()
	healthy, _ := rt.healthCount()
	return healthy
}

func (rt *Router) probe(ctx context.Context, base string) (bool, string) {
	ctx, cancel := context.WithTimeout(ctx, rt.timeout)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, base+"/healthz?ready", nil)
	if err != nil {
		return false, err.Error()
	}
	resp, err := rt.client.Do(req)
	if err != nil {
		return false, err.Error()
	}
	defer resp.Body.Close()
	io.Copy(io.Discard, io.LimitReader(resp.Body, 4096))
	if resp.StatusCode != http.StatusOK {
		return false, fmt.Sprintf("readiness probe returned %s", resp.Status)
	}
	return true, ""
}

func (rt *Router) healthCount() (healthy, total int) {
	for _, b := range rt.backends {
		if b.isHealthy() {
			healthy++
		}
	}
	return healthy, len(rt.backends)
}

// pickOrder returns the backends to try for one query: healthy ones
// first in rotated round-robin order, then (as a last resort) unhealthy
// ones — a probe cycle may simply not have noticed a recovery yet.
func (rt *Router) pickOrder() []*backend {
	rt.mu.Lock()
	start := rt.next
	rt.next++
	rt.mu.Unlock()
	n := len(rt.backends)
	order := make([]*backend, 0, n)
	var down []*backend
	for i := 0; i < n; i++ {
		b := rt.backends[(start+i)%n]
		if b.isHealthy() {
			order = append(order, b)
		} else {
			down = append(down, b)
		}
	}
	return append(order, down...)
}

func (rt *Router) jitteredPause(attempt int) time.Duration {
	base := 10 * time.Millisecond << attempt
	if base > 200*time.Millisecond {
		base = 200 * time.Millisecond
	}
	rt.mu.Lock()
	j := time.Duration(rt.rng.Int63n(int64(base)/2 + 1))
	rt.mu.Unlock()
	return base/2 + j
}

// queryPaths are the read endpoints the router fans out; these carry
// the "partial" contract in their JSON answers.
var queryPaths = map[string]bool{
	"/search":   true,
	"/insights": true,
	"/refine":   true,
}

// Routes mounts the router's own endpoints on mux: the relayed query
// endpoints, mutation forwarding, and the router's health summary.
func (rt *Router) Routes(mux *http.ServeMux) {
	mux.HandleFunc("/", rt.relay)
	mux.HandleFunc("/healthz", rt.handleHealthz)
}

func (rt *Router) handleHealthz(w http.ResponseWriter, r *http.Request) {
	healthy, total := rt.healthCount()
	type backendHealth struct {
		URL     string `json:"url"`
		Healthy bool   `json:"healthy"`
		Error   string `json:"error,omitempty"`
	}
	out := struct {
		Status   string          `json:"status"`
		Role     string          `json:"role"`
		Healthy  int             `json:"healthyReplicas"`
		Total    int             `json:"totalReplicas"`
		Degraded bool            `json:"degraded"`
		Backends []backendHealth `json:"backends"`
	}{Role: "router", Healthy: healthy, Total: total, Degraded: healthy < total}
	switch {
	case healthy == total:
		out.Status = "ok"
	case healthy > 0:
		out.Status = "degraded"
	default:
		out.Status = "down"
	}
	for _, b := range rt.backends {
		b.mu.Lock()
		out.Backends = append(out.Backends, backendHealth{URL: b.base, Healthy: b.healthy, Error: b.lastErr})
		b.mu.Unlock()
	}
	status := http.StatusOK
	if _, ready := r.URL.Query()["ready"]; ready && healthy == 0 {
		status = http.StatusServiceUnavailable
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	json.NewEncoder(w).Encode(out)
}

func (rt *Router) relay(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		rt.forwardToLeader(w, r)
		return
	}
	order := rt.pickOrder()
	tries := rt.retries + 1
	if tries > len(order) {
		tries = len(order)
	}
	var lastErr error
	for i := 0; i < tries; i++ {
		if i > 0 {
			select {
			case <-r.Context().Done():
				return
			case <-time.After(rt.jitteredPause(i - 1)):
			}
		}
		b := order[i]
		done, err := rt.relayOnce(w, r, b)
		if done {
			return
		}
		lastErr = err
		if b.setHealth(false, err.Error()) {
			rt.logf("router: %s ejected: %v", b.base, err)
		}
	}
	msg := "no replica available"
	if lastErr != nil {
		msg = fmt.Sprintf("no replica available: %v", lastErr)
	}
	jsonError(w, http.StatusServiceUnavailable, msg)
}

// relayOnce tries one backend. done=true means a response (success or a
// replica-authored error like 400/404) was written; done=false with err
// means the backend failed in a way worth retrying elsewhere.
func (rt *Router) relayOnce(w http.ResponseWriter, r *http.Request, b *backend) (done bool, err error) {
	ctx, cancel := context.WithTimeout(r.Context(), rt.timeout)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, b.base+r.URL.RequestURI(), nil)
	if err != nil {
		return false, err
	}
	req.Header.Set("Accept", r.Header.Get("Accept"))
	resp, err := rt.client.Do(req)
	if err != nil {
		return false, err
	}
	defer resp.Body.Close()
	if resp.StatusCode >= 500 {
		io.Copy(io.Discard, io.LimitReader(resp.Body, 4096))
		return false, fmt.Errorf("replica returned %s", resp.Status)
	}
	healthy, total := rt.healthCount()
	degraded := healthy < total
	if degraded && resp.StatusCode == http.StatusOK && queryPaths[r.URL.Path] {
		return true, rt.copyDegraded(w, resp)
	}
	copyHeaders(w.Header(), resp.Header)
	w.WriteHeader(resp.StatusCode)
	io.Copy(w, resp.Body)
	return true, nil
}

// copyDegraded rewrites a query answer served while the replica set is
// degraded: "partial" is forced true and the answer is marked
// uncacheable, honoring the PR 3 contract that degraded answers are
// flagged and never cached.
func (rt *Router) copyDegraded(w http.ResponseWriter, resp *http.Response) error {
	body, err := io.ReadAll(io.LimitReader(resp.Body, 64<<20))
	if err != nil {
		return err
	}
	var payload map[string]json.RawMessage
	if jerr := json.Unmarshal(body, &payload); jerr == nil {
		payload["partial"] = json.RawMessage("true")
		if rewritten, merr := json.Marshal(payload); merr == nil {
			body = rewritten
		}
	}
	copyHeaders(w.Header(), resp.Header)
	w.Header().Del("Content-Length")
	w.Header().Set("Cache-Control", "no-store")
	w.WriteHeader(resp.StatusCode)
	w.Write(body)
	return nil
}

func copyHeaders(dst, src http.Header) {
	for _, k := range []string{"Content-Type", "Cache-Control"} {
		if v := src.Get(k); v != "" {
			dst.Set(k, v)
		}
	}
}

// forwardToLeader relays a mutation to the configured leader verbatim.
func (rt *Router) forwardToLeader(w http.ResponseWriter, r *http.Request) {
	if rt.leader == "" {
		jsonError(w, http.StatusMethodNotAllowed, "router serves reads; no leader configured for writes")
		return
	}
	body, err := io.ReadAll(io.LimitReader(r.Body, 16<<20))
	if err != nil {
		jsonError(w, http.StatusBadRequest, "read request body: "+err.Error())
		return
	}
	req, err := http.NewRequestWithContext(r.Context(), r.Method, rt.leader+r.URL.RequestURI(), bytes.NewReader(body))
	if err != nil {
		jsonError(w, http.StatusBadGateway, err.Error())
		return
	}
	if ct := r.Header.Get("Content-Type"); ct != "" {
		req.Header.Set("Content-Type", ct)
	}
	resp, err := rt.client.Do(req)
	if err != nil {
		jsonError(w, http.StatusBadGateway, "leader unreachable: "+err.Error())
		return
	}
	defer resp.Body.Close()
	copyHeaders(w.Header(), resp.Header)
	w.WriteHeader(resp.StatusCode)
	io.Copy(w, resp.Body)
}
