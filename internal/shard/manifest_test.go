package shard

import (
	"bytes"
	"errors"
	"math/rand"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/core"
	"repro/internal/index"
)

// buildTestSet makes a small deterministic sharded set for persistence
// tests.
func buildTestSet(t *testing.T, shards int) *Set {
	t.Helper()
	rng := rand.New(rand.NewSource(42))
	docs := randomCorpus(rng)
	set, err := Build(docs, DefaultOptions(shards))
	if err != nil {
		t.Fatal(err)
	}
	return set
}

func TestManifestRoundTrip(t *testing.T) {
	set := buildTestSet(t, 4)
	set.Generation = 7
	path := filepath.Join(t.TempDir(), "corpus.gksm")
	if err := set.SaveManifest(path); err != nil {
		t.Fatal(err)
	}
	// SaveManifest advances the generation (crash-safety depends on the
	// advanced value naming the new shard files).
	if set.Generation != 8 {
		t.Fatalf("generation after save = %d, want 8", set.Generation)
	}

	loaded, err := LoadManifest(path)
	if err != nil {
		t.Fatal(err)
	}
	if loaded.Generation != 8 {
		t.Fatalf("generation = %d, want 8", loaded.Generation)
	}
	if loaded.NumShards() != set.NumShards() {
		t.Fatalf("loaded %d shards, want %d", loaded.NumShards(), set.NumShards())
	}
	if err := loaded.ValidateIndex(); err != nil {
		t.Fatal(err)
	}

	// The reloaded set answers exactly like the original.
	q := core.NewQuery("apple", "pear")
	want, err := set.SearchQuery(q, 1)
	if err != nil {
		t.Fatal(err)
	}
	got, err := loaded.SearchQuery(q, 1)
	if err != nil {
		t.Fatal(err)
	}
	sameResponse(t, "round trip", want, got)
	if wantSt, gotSt := set.Stats(), loaded.Stats(); wantSt != gotSt {
		t.Fatalf("stats after round trip %+v, want %+v", gotSt, wantSt)
	}
}

// TestManifestLoadAllOrNothing pins the corruption contract: whatever is
// wrong with the set — a bit flip in one shard file, a truncated shard, a
// missing shard, or a damaged manifest — the load fails as a whole with
// ErrCorrupt (or the underlying I/O error) and never yields a partial set.
func TestManifestLoadAllOrNothing(t *testing.T) {
	set := buildTestSet(t, 4)
	save := func(t *testing.T) (string, string) {
		dir := t.TempDir()
		path := filepath.Join(dir, "corpus.gksm")
		if err := set.SaveManifest(path); err != nil {
			t.Fatal(err)
		}
		return dir, path
	}

	cases := []struct {
		name      string
		damage    func(t *testing.T, dir, path string)
		wantPlain bool // plain error acceptable (I/O, not corruption)
	}{
		{name: "bit flip in one shard file", damage: func(t *testing.T, dir, path string) {
			flipByte(t, filepath.Join(dir, ShardFileName(path, set.Generation, 2)), 0x01)
		}},
		{name: "truncated shard file", damage: func(t *testing.T, dir, path string) {
			truncateFile(t, filepath.Join(dir, ShardFileName(path, set.Generation, 1)))
		}},
		{name: "missing shard file", wantPlain: true, damage: func(t *testing.T, dir, path string) {
			if err := os.Remove(filepath.Join(dir, ShardFileName(path, set.Generation, 0))); err != nil {
				t.Fatal(err)
			}
		}},
		{name: "bit flip in manifest", damage: func(t *testing.T, dir, path string) {
			flipByte(t, path, 0x80)
		}},
		{name: "truncated manifest", damage: func(t *testing.T, dir, path string) {
			truncateFile(t, path)
		}},
		{name: "wrong magic", damage: func(t *testing.T, dir, path string) {
			data, err := os.ReadFile(path)
			if err != nil {
				t.Fatal(err)
			}
			copy(data, "NOPE!")
			if err := os.WriteFile(path, data, 0o644); err != nil {
				t.Fatal(err)
			}
		}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			dir, path := save(t)
			tc.damage(t, dir, path)
			loaded, err := LoadManifest(path)
			if err == nil {
				t.Fatalf("load succeeded on %s", tc.name)
			}
			if loaded != nil {
				t.Fatalf("load returned a set alongside error %v", err)
			}
			if !tc.wantPlain && !errors.Is(err, index.ErrCorrupt) {
				t.Fatalf("error does not wrap ErrCorrupt: %v", err)
			}
		})
	}
}

// TestManifestSaveCrashSafe pins the crash-safety contract of
// SaveManifest: a save in progress writes only generation-unique file
// names, so up to the instant of the final manifest rename the previous
// set stays loadable, and after the rename the stale generation's files
// are swept.
func TestManifestSaveCrashSafe(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "corpus.gksm")
	set := buildTestSet(t, 3)
	if err := set.SaveManifest(path); err != nil {
		t.Fatal(err)
	}
	genA := set.Generation
	_, entriesA, err := readManifest(path)
	if err != nil {
		t.Fatal(err)
	}

	// Simulate the crash window of a subsequent save: the next
	// generation's shard files hit the disk, the manifest rename never
	// does. The old manifest references only its own generation's files,
	// so the set must still load intact.
	for i, ix := range set.Indexes() {
		if err := ix.SaveFile(filepath.Join(dir, ShardFileName(path, genA+1, i))); err != nil {
			t.Fatal(err)
		}
	}
	loaded, err := LoadManifest(path)
	if err != nil {
		t.Fatalf("set unloadable after interrupted save: %v", err)
	}
	if loaded.Generation != genA {
		t.Fatalf("interrupted save changed the loadable generation: %d, want %d", loaded.Generation, genA)
	}

	// Completing the save advances the generation, references only the
	// new names (disjoint from the old), and sweeps the old files.
	if err := set.SaveManifest(path); err != nil {
		t.Fatal(err)
	}
	if set.Generation <= genA {
		t.Fatalf("generation did not advance: %d after %d", set.Generation, genA)
	}
	_, entriesB, err := readManifest(path)
	if err != nil {
		t.Fatal(err)
	}
	oldNames := make(map[string]bool, len(entriesA))
	for _, e := range entriesA {
		oldNames[e.Name] = true
	}
	for _, e := range entriesB {
		if oldNames[e.Name] {
			t.Fatalf("new manifest reuses shard file name %q from the previous generation", e.Name)
		}
	}
	for _, e := range entriesA {
		if _, err := os.Stat(filepath.Join(dir, e.Name)); !os.IsNotExist(err) {
			t.Errorf("stale shard file %s not swept after save (err=%v)", e.Name, err)
		}
	}
	if loaded, err = LoadManifest(path); err != nil {
		t.Fatal(err)
	}
	if loaded.Generation != set.Generation {
		t.Fatalf("loaded generation %d, want %d", loaded.Generation, set.Generation)
	}
}

// TestShardFilePatternScope: the stale-file sweep must only ever match
// names SaveManifest itself generates for this manifest base.
func TestShardFilePatternScope(t *testing.T) {
	pat := shardFilePattern("/data/corpus.gksm")
	for _, name := range []string{"corpus.gksm.s000", "corpus.gksm.g000002.s013"} {
		if !pat.MatchString(name) {
			t.Errorf("pattern missed shard file %q", name)
		}
	}
	for _, name := range []string{
		"corpus.gksm", "corpus.gksm.bak", "corpus.gksm.s1", "corpus.gksm.snapshot",
		"other.gksm.s000", "corpus.gksm.g2.s000x",
	} {
		if pat.MatchString(name) {
			t.Errorf("pattern would sweep unrelated file %q", name)
		}
	}
}

func flipByte(t *testing.T, path string, mask byte) {
	t.Helper()
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	data[len(data)/2] ^= mask
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
}

func truncateFile(t *testing.T, path string) {
	t.Helper()
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, data[:len(data)/2], 0o644); err != nil {
		t.Fatal(err)
	}
}

// TestManifestRejectsPathTraversal: a tampered manifest naming a shard
// file outside its own directory must be rejected before any file probe.
func TestManifestRejectsPathTraversal(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "evil.gksm")
	evil := buildManifestBytes(3, []manifestEntry{{Name: "../../etc/passwd", CRC: 1, Size: 1}})
	if err := os.WriteFile(path, evil, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadManifest(path); err == nil || !errors.Is(err, index.ErrCorrupt) {
		t.Fatalf("path-traversing manifest loaded: err=%v", err)
	}
}

// buildManifestBytes assembles a syntactically valid GKSM1 image for
// adversarial tests (correct trailing checksum, arbitrary entries).
func buildManifestBytes(gen uint64, entries []manifestEntry) []byte {
	var buf bytes.Buffer
	buf.WriteString(manifestMagic)
	buf.Write(appendUvarint(nil, gen))
	buf.Write(appendUvarint(nil, uint64(len(entries))))
	for _, e := range entries {
		buf.Write(appendUvarint(nil, uint64(len(e.Name))))
		buf.WriteString(e.Name)
		buf.Write(appendUvarint(nil, uint64(e.CRC)))
		buf.Write(appendUvarint(nil, uint64(e.Size)))
	}
	sum := crcIEEE(buf.Bytes())
	var trailer [4]byte
	trailer[0] = byte(sum)
	trailer[1] = byte(sum >> 8)
	trailer[2] = byte(sum >> 16)
	trailer[3] = byte(sum >> 24)
	buf.Write(trailer[:])
	return buf.Bytes()
}

// FuzzLoadManifest drives the manifest parser with mutated images: it must
// return a set or an error, never panic, and a corrupt count or name
// length must not drive allocation beyond the declared bounds.
func FuzzLoadManifest(f *testing.F) {
	rng := rand.New(rand.NewSource(9))
	docs := randomCorpus(rng)
	set, err := Build(docs, DefaultOptions(3))
	if err != nil {
		f.Fatal(err)
	}
	dir := f.TempDir()
	path := filepath.Join(dir, "seed.gksm")
	if err := set.SaveManifest(path); err != nil {
		f.Fatal(err)
	}
	valid, err := os.ReadFile(path)
	if err != nil {
		f.Fatal(err)
	}
	f.Add(valid)
	f.Add([]byte{})
	f.Add([]byte(manifestMagic))
	f.Add(buildManifestBytes(1, nil))
	f.Add(buildManifestBytes(2, []manifestEntry{{Name: "x.s000", CRC: 0xffffffff, Size: 1 << 40}}))
	f.Add(buildManifestBytes(3, []manifestEntry{{Name: "../escape", CRC: 1, Size: 1}}))
	f.Add(valid[:len(valid)/2])
	flipped := append([]byte(nil), valid...)
	flipped[len(flipped)/3] ^= 0x10
	f.Add(flipped)

	f.Fuzz(func(t *testing.T, data []byte) {
		p := filepath.Join(t.TempDir(), "fuzz.gksm")
		if err := os.WriteFile(p, data, 0o644); err != nil {
			t.Fatal(err)
		}
		gen, entries, err := readManifest(p)
		if err != nil {
			if entries != nil {
				t.Fatalf("readManifest returned entries alongside error: %v", err)
			}
			return
		}
		if len(entries) == 0 || len(entries) > maxManifestShards {
			t.Fatalf("accepted manifest with %d entries (gen %d)", len(entries), gen)
		}
		for _, e := range entries {
			if filepath.Base(e.Name) != e.Name {
				t.Fatalf("accepted path-traversing shard name %q", e.Name)
			}
		}
	})
}

// appendUvarint / crcIEEE keep the adversarial builder free of the
// production encoder (a shared bug would cancel out in tests).
func appendUvarint(b []byte, v uint64) []byte {
	for v >= 0x80 {
		b = append(b, byte(v)|0x80)
		v >>= 7
	}
	return append(b, byte(v))
}

func crcIEEE(data []byte) uint32 {
	const poly = 0xedb88320
	crc := ^uint32(0)
	for _, d := range data {
		crc ^= uint32(d)
		for i := 0; i < 8; i++ {
			if crc&1 != 0 {
				crc = crc>>1 ^ poly
			} else {
				crc >>= 1
			}
		}
	}
	return ^crc
}
