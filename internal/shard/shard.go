// Package shard partitions a multi-document repository into independent
// index shards and searches them with a parallel scatter-gather that is
// provably equivalent to searching one index over all the documents.
//
// Sharding is by document: a Dewey LCA never spans two documents, every
// sliding-window block that produces a candidate lies inside one document
// (§2.4 — "GKS search is seamlessly expanded over multiple documents by
// prefixing Dewey ids"), and the potential-flow rank of a candidate reads
// only its own subtree. Documents therefore keep their GLOBAL DocIDs
// inside each shard, per-document candidates/masks/ranks are bit-identical
// between the sharded and single-index pipelines, and a k-way merge of the
// per-shard ranked lists by core.ResultBefore reproduces exactly the
// single-index response order. The property test in equivalence_test.go
// asserts this for random corpora and shard counts.
package shard

import (
	"fmt"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/core"
	"repro/internal/index"
	"repro/internal/textproc"
	"repro/internal/xmltree"
)

// Options configures Build.
type Options struct {
	// Shards is the number of index shards. It is clamped to
	// [1, number of documents]; shards left empty by the assignment are
	// dropped, so NumShards on the built set may be lower.
	Shards int
	// ByTokens balances shards by document token count (greedy
	// longest-processing-time assignment) instead of hashing document
	// names. Hashing is stable under corpus growth; token balancing gives
	// tighter shard sizes for skewed corpora.
	ByTokens bool
	// Workers bounds the number of concurrent shard builds; <= 0 uses
	// GOMAXPROCS.
	Workers int
	// AllowPartial degrades scatter-gather searches to partial results
	// when a shard fails, instead of failing the whole query. Partial
	// responses are flagged in Response.Partial.
	AllowPartial bool
	// Index configures each shard's index build.
	Index index.Options
}

// DefaultOptions returns the standard configuration for n shards.
func DefaultOptions(n int) Options {
	return Options{Shards: n, Index: index.DefaultOptions()}
}

// Metrics receives shard-level observability events. It is satisfied by
// obs.Registry; a nil metrics sink disables reporting.
type Metrics interface {
	// ObserveShardSearch records one shard's portion of a scatter-gather
	// fan-out.
	ObserveShardSearch(shard int, d time.Duration)
	// IncShardPartial counts searches that returned partial results
	// because at least one shard failed.
	IncShardPartial()
}

// Set is a searchable collection of index shards. Like gks.System it is
// safe for concurrent readers once built; its search and analysis methods
// mirror System's signatures so both satisfy the gks.Searcher interface.
type Set struct {
	shards  []*index.Index
	engines []*core.Engine
	// docShard maps a global document ID to the shard holding it.
	docShard []int32
	// Generation is the manifest generation: 1 for a freshly built set,
	// the persisted value for a set loaded from a manifest. SaveManifest
	// advances it — shard file names embed it, which is what makes saves
	// crash-safe.
	Generation uint64

	allowPartial bool
	metrics      Metrics
	// ixOpts is the per-shard index build configuration, retained so live
	// ingestion (WithDocument) builds partial indexes exactly like the
	// original shards were built.
	ixOpts index.Options

	vocabOnce sync.Once
	vocab     map[string]int
}

// Build renumbers the documents globally (in order), partitions them into
// shards, and builds every shard index concurrently with a bounded worker
// pool. The documents' DocIDs and Dewey IDs are reassigned.
func Build(docs []*xmltree.Document, opts Options) (*Set, error) {
	if len(docs) == 0 {
		return nil, fmt.Errorf("shard: no documents")
	}
	// Global renumbering first: shard indexes must carry repository-wide
	// DocIDs for the merged response order (and DI resolution) to be
	// identical to the single-index build. Partitioning must NOT go
	// through xmltree.Repository.Add, which renumbers per repository.
	for i, d := range docs {
		d.DocID = int32(i)
		d.AssignIDs()
	}
	groups := Partition(docs, opts)

	// Partitioning gives each shard builder information a monolithic
	// build never has before it starts: the exact element-node count of
	// its group (a cheap structural walk, no tokenization), and — because
	// shards build independently — the observed term/posting stats of
	// whichever shard finishes first. Both become index.SizeHint
	// capacities, removing most of the node-table re-growth, posting-list
	// reallocation and map rehashing that dominate an unhinted build.
	// Training is opportunistic: a shard that starts before any other has
	// finished simply builds with the node hint alone.
	nodeCounts := make([]int, len(groups))
	for i, g := range groups {
		for _, d := range g {
			nodeCounts[i] += countElements(d.Root)
		}
	}
	var trained atomic.Pointer[index.Stats]

	shards := make([]*index.Index, len(groups))
	errs := make([]error, len(groups))
	workers := opts.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(groups) {
		workers = len(groups)
	}
	var wg sync.WaitGroup
	work := make(chan int)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range work {
				o := opts.Index
				o.Hint.Nodes = nodeCounts[i]
				if st := trained.Load(); st != nil && st.ElementNodes > 0 {
					// Same-corpus shards share most of their vocabulary,
					// so the trained term count transfers unscaled; the
					// posting volume scales with the group's node share.
					o.Hint.Terms = st.DistinctKeywords
					o.Hint.Postings = st.PostingEntries * nodeCounts[i] / st.ElementNodes
				}
				repo := &xmltree.Repository{Docs: groups[i]}
				shards[i], errs[i] = index.Build(repo, o)
				if errs[i] == nil {
					trained.CompareAndSwap(nil, &shards[i].Stats)
				}
			}
		}()
	}
	for i := range groups {
		work <- i
	}
	close(work)
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	return newSet(shards, opts.AllowPartial, opts.Index)
}

// Partition assigns documents to shard groups without building anything.
// Every group is sorted by DocID (a shard's pre-order node table must
// visit documents in increasing Dewey order) and empty groups are
// dropped. The assignment is deterministic: FNV-1a over the document name
// by default, greedy token-count balancing with ByTokens.
func Partition(docs []*xmltree.Document, opts Options) [][]*xmltree.Document {
	n := opts.Shards
	if n < 1 {
		n = 1
	}
	if n > len(docs) {
		n = len(docs)
	}
	groups := make([][]*xmltree.Document, n)
	if opts.ByTokens {
		// Greedy LPT: heaviest document first onto the lightest shard.
		type weighted struct {
			doc    *xmltree.Document
			tokens int
		}
		ws := make([]weighted, len(docs))
		for i, d := range docs {
			ws[i] = weighted{doc: d, tokens: docTokens(d)}
		}
		sort.SliceStable(ws, func(i, j int) bool { return ws[i].tokens > ws[j].tokens })
		loads := make([]int, n)
		for _, w := range ws {
			best := 0
			for s := 1; s < n; s++ {
				if loads[s] < loads[best] {
					best = s
				}
			}
			groups[best] = append(groups[best], w.doc)
			loads[best] += w.tokens
		}
		for _, g := range groups {
			sort.Slice(g, func(i, j int) bool { return g[i].DocID < g[j].DocID })
		}
	} else {
		for _, d := range docs {
			groups[RouteShard(d.Name, n)] = append(groups[RouteShard(d.Name, n)], d)
		}
	}
	out := groups[:0]
	for _, g := range groups {
		if len(g) > 0 {
			out = append(out, g)
		}
	}
	return out
}

// countElements counts the element nodes under root — the exact
// index.SizeHint.Nodes for a shard group, at the cost of a structural walk
// (no text processing).
func countElements(root *xmltree.Node) int {
	total := 0
	xmltree.Walk(root, func(n *xmltree.Node) bool {
		if n.IsElement() {
			total++
		}
		return true
	})
	return total
}

// docTokens counts the indexable tokens of a document — the balance weight
// for ByTokens partitioning, proportional to the shard's posting volume.
func docTokens(d *xmltree.Document) int {
	total := 0
	xmltree.Walk(d.Root, func(n *xmltree.Node) bool {
		if n.Kind == xmltree.Text {
			total += len(textproc.Tokenize(n.Text))
		}
		return true
	})
	return total
}

// newSet wraps built shard indexes, wiring engines and the doc→shard map.
func newSet(shards []*index.Index, allowPartial bool, ixOpts index.Options) (*Set, error) {
	if len(shards) == 0 {
		return nil, fmt.Errorf("shard: empty shard set")
	}
	s := &Set{
		shards:       shards,
		engines:      make([]*core.Engine, len(shards)),
		Generation:   1,
		allowPartial: allowPartial,
		ixOpts:       ixOpts,
	}
	for i, ix := range shards {
		s.engines[i] = core.NewEngine(ix)
	}
	docShard, err := computeDocShard(shards)
	if err != nil {
		return nil, err
	}
	s.docShard = docShard
	return s, nil
}

// computeDocShard builds the global document-id → shard map. Tombstoned
// documents are skipped: after a live delete their ids are free for the
// next append, and indexOfResult only ever resolves ids that appear in
// (live) search results.
func computeDocShard(shards []*index.Index) ([]int32, error) {
	// Document roots sit at ordinal 0 and every Subtree hop after it (the
	// node table is pre-order), so both passes below visit O(documents)
	// nodes, not O(nodes).
	maxDoc := int32(-1)
	for i, ix := range shards {
		for ord := int32(0); ord < int32(ix.NodeCount()); ord += ix.SubtreeSizeOf(ord) {
			if ix.SubtreeSizeOf(ord) <= 0 {
				return nil, fmt.Errorf("shard: shard %d has non-positive subtree at root %d", i, ord)
			}
			if !ix.LiveOrd(ord) {
				continue
			}
			if ix.DocOf(ord) > maxDoc {
				maxDoc = ix.DocOf(ord)
			}
		}
	}
	docShard := make([]int32, maxDoc+1)
	for i := range docShard {
		docShard[i] = -1
	}
	for i, ix := range shards {
		for ord := int32(0); ord < int32(ix.NodeCount()); ord += ix.SubtreeSizeOf(ord) {
			if !ix.LiveOrd(ord) {
				continue
			}
			doc := ix.DocOf(ord)
			if doc < 0 {
				return nil, fmt.Errorf("shard: shard %d holds negative document id %d", i, doc)
			}
			if docShard[doc] != -1 {
				return nil, fmt.Errorf("shard: document %d present in shards %d and %d", doc, docShard[doc], i)
			}
			docShard[doc] = int32(i)
		}
	}
	return docShard, nil
}

// SetMetrics installs the observability sink for scatter-gather searches.
// It must be called before the set serves concurrent traffic.
func (s *Set) SetMetrics(m Metrics) { s.metrics = m }

// SetAllowPartial switches degrade-to-partial search semantics on or off
// (builds take it from Options; manifest loads default to off). It must be
// called before the set serves concurrent traffic.
func (s *Set) SetAllowPartial(v bool) { s.allowPartial = v }

// NumShards returns the number of shards in the set.
func (s *Set) NumShards() int { return len(s.shards) }

// Indexes exposes the shard indexes (read-only; used by stats and tests).
func (s *Set) Indexes() []*index.Index { return s.shards }

// indexOfResult resolves the shard index holding a result — results carry
// global Dewey IDs, and Ord stays valid only within the owning shard.
func (s *Set) indexOfResult(r core.Result) *index.Index {
	return s.shards[s.docShard[r.ID.Doc]]
}

// ValidateIndex checks the structural invariants of every shard plus the
// cross-shard invariant that each document lives in exactly one shard
// (enforced at construction; revalidated here for loaded sets).
func (s *Set) ValidateIndex() error {
	for i, ix := range s.shards {
		if err := ix.Validate(); err != nil {
			return fmt.Errorf("shard %d: %w", i, err)
		}
	}
	return nil
}

// Stats aggregates index statistics across the shards. Additive counters
// sum; DistinctKeywords counts the union of shard vocabularies (a keyword
// appearing in several shards is one keyword); MaxDepth is the maximum.
func (s *Set) Stats() index.Stats {
	var out index.Stats
	distinct := make(map[string]struct{})
	for _, ix := range s.shards {
		st := ix.Stats
		out.Documents += st.Documents
		out.ElementNodes += st.ElementNodes
		out.TextNodes += st.TextNodes
		out.AttributeNodes += st.AttributeNodes
		out.RepeatingNodes += st.RepeatingNodes
		out.EntityNodes += st.EntityNodes
		out.ConnectingNodes += st.ConnectingNodes
		out.PostingEntries += st.PostingEntries
		if st.MaxDepth > out.MaxDepth {
			out.MaxDepth = st.MaxDepth
		}
		ix.ForEachKeyword(func(kw string, _ int) {
			distinct[kw] = struct{}{}
		})
	}
	out.DistinctKeywords = len(distinct)
	return out
}
