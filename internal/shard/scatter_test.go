package shard

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"testing"
	"time"

	"repro/internal/core"
)

// recordingMetrics is a race-safe Metrics sink for fan-out tests.
type recordingMetrics struct {
	mu       sync.Mutex
	observed map[int]int
	partials int
}

func (m *recordingMetrics) ObserveShardSearch(shard int, d time.Duration) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.observed == nil {
		m.observed = make(map[int]int)
	}
	m.observed[shard]++
}

func (m *recordingMetrics) IncShardPartial() {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.partials++
}

// failShard returns a scatter run function that searches normally except on
// the given engine, which fails with errBoom.
var errBoom = errors.New("shard exploded")

func failShard(s *Set, bad int) func(context.Context, *core.Engine) (*core.Response, error) {
	q := core.NewQuery("apple", "pear")
	return func(ctx context.Context, eng *core.Engine) (*core.Response, error) {
		if eng == s.engines[bad] {
			return nil, errBoom
		}
		return eng.SearchCtx(ctx, q, 1)
	}
}

func TestScatterFailFast(t *testing.T) {
	set := buildTestSet(t, 4)
	m := &recordingMetrics{}
	set.SetMetrics(m)

	_, partial, err := set.scatter(context.Background(), failShard(set, 1))
	if !errors.Is(err, errBoom) {
		t.Fatalf("err = %v, want the shard's own error (not context.Canceled)", err)
	}
	if partial {
		t.Fatal("fail-fast scatter flagged partial")
	}
	if m.partials != 0 {
		t.Fatalf("partial counter moved on a failed query: %d", m.partials)
	}
	// Every shard's latency is still observed, including the failed one.
	if len(m.observed) != set.NumShards() {
		t.Fatalf("observed %d shard latencies, want %d", len(m.observed), set.NumShards())
	}
}

func TestScatterPartialResults(t *testing.T) {
	set := buildTestSet(t, 4)
	m := &recordingMetrics{}
	set.SetMetrics(m)
	set.SetAllowPartial(true)

	resps, partial, err := set.scatter(context.Background(), failShard(set, 2))
	if err != nil {
		t.Fatal(err)
	}
	if !partial {
		t.Fatal("degraded scatter not flagged partial")
	}
	if resps[2] != nil {
		t.Fatal("failed shard produced a response")
	}
	alive := 0
	for i, r := range resps {
		if i != 2 && r != nil {
			alive++
		}
	}
	if alive != set.NumShards()-1 {
		t.Fatalf("%d healthy shards answered, want %d", alive, set.NumShards()-1)
	}
	if m.partials != 1 {
		t.Fatalf("partial counter = %d, want 1", m.partials)
	}

	// The merged response carries the flag out to the caller.
	q := core.NewQuery("apple", "pear")
	out := set.gather(q, resps, partial, 0)
	if !out.Partial {
		t.Fatal("gather dropped the partial flag")
	}
}

func TestScatterAllShardsFailing(t *testing.T) {
	set := buildTestSet(t, 3)
	set.SetAllowPartial(true)
	_, _, err := set.scatter(context.Background(), func(context.Context, *core.Engine) (*core.Response, error) {
		return nil, errBoom
	})
	if !errors.Is(err, errBoom) {
		t.Fatalf("all-shards-failed scatter returned %v, want the shard error", err)
	}
}

// TestScatterCancelledIsNotPartial: a caller-cancelled request must surface
// as context.Canceled even in degrade-to-partial mode — an operator
// counting partial results must not see client disconnects in there.
func TestScatterCancelledIsNotPartial(t *testing.T) {
	set := buildTestSet(t, 3)
	m := &recordingMetrics{}
	set.SetMetrics(m)
	set.SetAllowPartial(true)

	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, partial, err := set.scatter(ctx, func(ctx context.Context, eng *core.Engine) (*core.Response, error) {
		return eng.SearchCtx(ctx, core.NewQuery("apple"), 1)
	})
	if partial {
		t.Fatal("cancelled request reported as partial")
	}
	if err == nil {
		// All shards may still have completed before noticing cancellation
		// (the engine polls cooperatively); that counts as success, never as
		// a partial response.
		if m.partials != 0 {
			t.Fatalf("partial counter = %d on a successful fan-out", m.partials)
		}
		return
	}
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if m.partials != 0 {
		t.Fatalf("partial counter = %d on a cancelled request", m.partials)
	}
}

// TestBestEffortPartialProbes: if ANY probe of the best-effort threshold
// scan came back partial, the final response must be flagged partial —
// a degraded probe can make a non-empty threshold look empty and steer
// the scan to a lower s, so even a final probe that succeeded on every
// shard is not a complete answer.
func TestBestEffortPartialProbes(t *testing.T) {
	q := core.NewQuery("apple", "pear", "plum")
	mk := func(n int, partial bool) *core.Response {
		r := &core.Response{Query: q, S: 1, Partial: partial}
		for i := 0; i < n; i++ {
			r.Results = append(r.Results, core.Result{})
		}
		return r
	}

	// The probe at threshold 2 is degraded and looks empty, so the scan
	// settles on s=1 where every shard answered: still flagged partial.
	resp, err := bestEffortPartialAware(context.Background(), q, func(_ context.Context, s int) (*core.Response, error) {
		if s >= 2 {
			return mk(0, true), nil
		}
		return mk(3, false), nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if !resp.Partial {
		t.Fatal("best-effort scan with a partial probe returned an unflagged response")
	}

	// Every probe complete: the flag stays off.
	resp, err = bestEffortPartialAware(context.Background(), q, func(_ context.Context, s int) (*core.Response, error) {
		if s >= 2 {
			return mk(0, false), nil
		}
		return mk(3, false), nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if resp.Partial {
		t.Fatal("healthy best-effort scan flagged partial")
	}
}

func TestSearchContextCancelled(t *testing.T) {
	set := buildTestSet(t, 3)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := set.SearchContext(ctx, "apple pear", 1); err != nil && !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled or nil", err)
	}
}

// TestScatterConcurrentSearches exercises the fan-out under concurrent
// callers (meaningful with -race): a Set must be safe for concurrent
// readers like a single-index System.
func TestScatterConcurrentSearches(t *testing.T) {
	set := buildTestSet(t, 4)
	m := &recordingMetrics{}
	set.SetMetrics(m)
	want, err := set.Search("apple pear plum", 1)
	if err != nil {
		t.Fatal(err)
	}

	var wg sync.WaitGroup
	errs := make([]error, 8)
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			for j := 0; j < 20; j++ {
				got, err := set.Search("apple pear plum", 1)
				if err != nil {
					errs[i] = err
					return
				}
				if len(got.Results) != len(want.Results) {
					errs[i] = fmt.Errorf("goroutine %d: %d results, want %d",
						i, len(got.Results), len(want.Results))
					return
				}
			}
		}(i)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			t.Fatal(err)
		}
	}
}

// TestBuildWorkerPoolRespectsBounds: Build with a tiny worker budget still
// builds every shard, and the clamped pool matches single-worker output.
func TestBuildWorkerPoolRespectsBounds(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	docs := randomCorpus(rng)
	opts := DefaultOptions(4)
	opts.Workers = 1
	serial, err := Build(docs, opts)
	if err != nil {
		t.Fatal(err)
	}
	opts.Workers = 64 // clamped to the shard count internally
	parallel, err := Build(docs, opts)
	if err != nil {
		t.Fatal(err)
	}
	if serial.NumShards() != parallel.NumShards() {
		t.Fatalf("worker budget changed shard count: %d vs %d",
			serial.NumShards(), parallel.NumShards())
	}
	q := core.NewQuery("apple", "pear")
	a, err := serial.SearchQuery(q, 1)
	if err != nil {
		t.Fatal(err)
	}
	b, err := parallel.SearchQuery(q, 1)
	if err != nil {
		t.Fatal(err)
	}
	sameResponse(t, "worker bounds", a, b)
}

// TestPartitionDeterministic: the same corpus partitions identically on
// every call, in both hash and token-balance modes.
func TestPartitionDeterministic(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	docs := randomCorpus(rng)
	for i, d := range docs {
		d.DocID = int32(i)
		d.AssignIDs()
	}
	for _, byTokens := range []bool{false, true} {
		opts := Options{Shards: 3, ByTokens: byTokens}
		a := Partition(docs, opts)
		b := Partition(docs, opts)
		if len(a) != len(b) {
			t.Fatalf("byTokens=%v: group counts differ", byTokens)
		}
		seen := 0
		for g := range a {
			if len(a[g]) != len(b[g]) {
				t.Fatalf("byTokens=%v: group %d sizes differ", byTokens, g)
			}
			for j := range a[g] {
				if a[g][j] != b[g][j] {
					t.Fatalf("byTokens=%v: group %d differs at %d", byTokens, g, j)
				}
				seen++
			}
			for j := 1; j < len(a[g]); j++ {
				if a[g][j-1].DocID >= a[g][j].DocID {
					t.Fatalf("byTokens=%v: group %d not in DocID order", byTokens, g)
				}
			}
		}
		if seen != len(docs) {
			t.Fatalf("byTokens=%v: %d documents assigned, want %d", byTokens, seen, len(docs))
		}
	}
}
