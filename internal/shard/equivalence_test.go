package shard

import (
	"fmt"
	"math/rand"
	"testing"

	"repro/internal/core"
	"repro/internal/di"
	"repro/internal/index"
	"repro/internal/lca"
	"repro/internal/schema"
	"repro/internal/xmltree"
)

// The sharded scatter-gather must be observationally identical to one
// index over all the documents: same results in the same order with the
// same floats, same insights, same baselines, same inferred types. These
// tests assert exact (bit-level) equality on random corpora and random
// shard counts — any "approximately equal" escape hatch would hide a
// partition leak.

var corpusWords = []string{
	"apple", "pear", "plum", "fig", "cherry", "mango", "quince", "grape",
}

// randomDoc builds one random document; entity-shaped subtrees appear when
// withEntities is set so LCE lifting and DI have something to find.
func randomDoc(rng *rand.Rand, name string, withEntities bool) *xmltree.Document {
	var build func(depth int) *xmltree.Node
	build = func(depth int) *xmltree.Node {
		if depth >= 5 || rng.Intn(4) == 0 {
			return xmltree.ET("leaf", corpusWords[rng.Intn(len(corpusWords))])
		}
		if withEntities && rng.Intn(3) == 0 {
			e := xmltree.E("entity", xmltree.ET("label", corpusWords[rng.Intn(len(corpusWords))]))
			for i, members := 0, 2+rng.Intn(3); i < members; i++ {
				m := xmltree.E("member")
				for j := 0; j < 1+rng.Intn(2); j++ {
					m.Append(build(depth + 2))
				}
				e.Append(m)
			}
			return e
		}
		n := xmltree.E(fmt.Sprintf("n%d", rng.Intn(4)))
		for i := 0; i < 1+rng.Intn(3); i++ {
			n.Append(build(depth + 1))
		}
		return n
	}
	root := xmltree.E("root")
	for i := 0; i < 1+rng.Intn(3); i++ {
		root.Append(build(1))
	}
	return xmltree.NewDocument(name, 0, root)
}

// randomCorpus builds 1..10 random documents with distinct names.
func randomCorpus(rng *rand.Rand) []*xmltree.Document {
	docs := make([]*xmltree.Document, 1+rng.Intn(10))
	for i := range docs {
		docs[i] = randomDoc(rng, fmt.Sprintf("doc-%03d.xml", i), rng.Intn(2) == 0)
	}
	return docs
}

// singleIndex builds the reference: one index over all documents, numbered
// exactly as shard.Build numbers them (in slice order).
func singleIndex(t *testing.T, docs []*xmltree.Document) (*index.Index, *core.Engine) {
	t.Helper()
	repo := &xmltree.Repository{}
	for _, d := range docs {
		repo.Add(d)
	}
	ix, err := index.Build(repo, index.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	return ix, core.NewEngine(ix)
}

// sameResponse asserts bit-identical responses: every field of every
// result, position by position, including the exact Rank floats.
func sameResponse(t *testing.T, label string, want, got *core.Response) {
	t.Helper()
	if got.S != want.S || got.SLSize != want.SLSize {
		t.Fatalf("%s: S/SLSize = %d/%d, want %d/%d", label, got.S, got.SLSize, want.S, want.SLSize)
	}
	if len(got.Results) != len(want.Results) {
		t.Fatalf("%s: %d results, want %d", label, len(got.Results), len(want.Results))
	}
	for i := range want.Results {
		w, g := want.Results[i], got.Results[i]
		if g.ID.String() != w.ID.String() || g.Label != w.Label ||
			g.IsEntity != w.IsEntity || g.Mask != w.Mask ||
			g.KeywordCount != w.KeywordCount || g.LCPCount != w.LCPCount ||
			g.Rank != w.Rank {
			t.Fatalf("%s: result %d differs:\n  want %+v\n  got  %+v", label, i, w, g)
		}
	}
}

func sameInsights(t *testing.T, label string, want, got []di.Insight) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%s: %d insights, want %d", label, len(got), len(want))
	}
	for i := range want {
		w, g := want[i], got[i]
		if g.String() != w.String() || g.Weight != w.Weight || g.Count != w.Count ||
			g.Example.String() != w.Example.String() {
			t.Fatalf("%s: insight %d differs:\n  want %+v\n  got  %+v", label, i, w, g)
		}
	}
}

func sameStrings(t *testing.T, label string, want, got []string) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%s: %v, want %v", label, got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("%s: position %d: %q, want %q", label, i, got[i], want[i])
		}
	}
}

// singleBaseline renders the single-index SLCA/ELCA answer the way the set
// does: Dewey IDs in document order (ord order IS Dewey order).
func singleBaseline(ix *index.Index, eng *core.Engine, q core.Query,
	f func(*index.Index, [][]int32) []int32) []string {
	ords := f(ix, eng.PostingLists(q))
	out := make([]string, len(ords))
	for i, ord := range ords {
		out[i] = ix.Nodes[ord].ID.String()
	}
	return out
}

func TestShardedSearchEquivalence(t *testing.T) {
	rng := rand.New(rand.NewSource(1601))
	for trial := 0; trial < 60; trial++ {
		docs := randomCorpus(rng)
		ix, eng := singleIndex(t, docs)
		opts := DefaultOptions(1 + rng.Intn(8))
		opts.ByTokens = trial%3 == 0
		set, err := Build(docs, opts)
		if err != nil {
			t.Fatal(err)
		}

		// Random query of 2..4 distinct corpus words.
		terms := append([]string(nil), corpusWords...)
		rng.Shuffle(len(terms), func(i, j int) { terms[i], terms[j] = terms[j], terms[i] })
		terms = terms[:2+rng.Intn(3)]
		q := core.NewQuery(terms...)
		queryStr := ""
		for i, kw := range terms {
			if i > 0 {
				queryStr += " "
			}
			queryStr += kw
		}

		for s := 1; s <= q.Len(); s++ {
			label := fmt.Sprintf("trial %d (shards=%d) s=%d", trial, set.NumShards(), s)
			want, err := eng.Search(q, s)
			if err != nil {
				t.Fatal(err)
			}
			got, err := set.SearchQuery(q, s)
			if err != nil {
				t.Fatal(err)
			}
			sameResponse(t, label, want, got)
			if got.Partial {
				t.Fatalf("%s: healthy fan-out flagged partial", label)
			}

			// DI over the sharded response must match DI over the
			// single-index response (same ranked nodes, same weights).
			sameInsights(t, label,
				di.DiscoverIndexed(func(core.Result) *index.Index { return ix }, want, 5),
				set.Insights(got, 5))

			// Top-k for a handful of k, including k > |R| and k = 1.
			for _, k := range []int{1, 3, 17} {
				wantK, err := eng.SearchTopK(q, s, k)
				if err != nil {
					t.Fatal(err)
				}
				gotK, err := set.SearchTopK(queryStr, s, k)
				if err != nil {
					t.Fatal(err)
				}
				sameResponse(t, fmt.Sprintf("%s k=%d", label, k), wantK, gotK)
			}
		}

		// Best effort settles on the same threshold and the same response.
		wantBE, err := eng.SearchBestEffort(q)
		if err != nil {
			t.Fatal(err)
		}
		gotBE, err := set.SearchBestEffort(queryStr)
		if err != nil {
			t.Fatal(err)
		}
		sameResponse(t, fmt.Sprintf("trial %d best-effort", trial), wantBE, gotBE)

		// LCA baselines and inferred result types.
		sameStrings(t, fmt.Sprintf("trial %d SLCA", trial),
			singleBaseline(ix, eng, q, lca.SLCA), set.SLCA(q))
		sameStrings(t, fmt.Sprintf("trial %d ELCA", trial),
			singleBaseline(ix, eng, q, lca.ELCA), set.ELCA(q))
		wantTypes := di.InferResultTypes(eng, q, 5)
		gotTypes := set.InferResultTypes(queryStr, 5)
		if len(wantTypes) != len(gotTypes) {
			t.Fatalf("trial %d: %d type scores, want %d", trial, len(gotTypes), len(wantTypes))
		}
		for i := range wantTypes {
			w, g := wantTypes[i], gotTypes[i]
			if g.Label != w.Label || g.Score != w.Score || len(g.PerKeyword) != len(w.PerKeyword) {
				t.Fatalf("trial %d: type %d = %+v, want %+v", trial, i, g, w)
			}
			for j := range w.PerKeyword {
				if g.PerKeyword[j] != w.PerKeyword[j] {
					t.Fatalf("trial %d: type %d = %+v, want %+v", trial, i, g, w)
				}
			}
		}

		// Aggregated statistics match the single index exactly.
		wantSt, gotSt := ix.Stats, set.Stats()
		if gotSt != wantSt {
			t.Fatalf("trial %d: stats %+v, want %+v", trial, gotSt, wantSt)
		}
		if err := set.ValidateIndex(); err != nil {
			t.Fatal(err)
		}
	}
}

func singleSchemaEdges(ix *index.Index) []schema.Edge { return schema.Infer(ix).Edges() }

func applySingleSchema(ix *index.Index) int {
	return schema.Apply(ix, schema.Infer(ix).Categorize(ix))
}

// TestShardedSchemaEquivalence checks that cross-shard schema inference and
// re-categorization leave the sharded system in the same observable state
// as the single index: same edges, same changed-node count, and identical
// search results afterwards (categorization affects entity lifting).
func TestShardedSchemaEquivalence(t *testing.T) {
	rng := rand.New(rand.NewSource(77))
	for trial := 0; trial < 30; trial++ {
		docs := randomCorpus(rng)
		ix, eng := singleIndex(t, docs)
		set, err := Build(docs, DefaultOptions(1+rng.Intn(8)))
		if err != nil {
			t.Fatal(err)
		}

		wantEdges := singleSchemaEdges(ix)
		gotEdges := set.Schema()
		if len(wantEdges) != len(gotEdges) {
			t.Fatalf("trial %d: %d schema edges, want %d", trial, len(gotEdges), len(wantEdges))
		}
		for i := range wantEdges {
			if gotEdges[i] != wantEdges[i] {
				t.Fatalf("trial %d: edge %d = %+v, want %+v", trial, i, gotEdges[i], wantEdges[i])
			}
		}

		wantChanged := applySingleSchema(ix)
		gotChanged := set.ApplySchemaCategorization()
		if gotChanged != wantChanged {
			t.Fatalf("trial %d: categorization changed %d node(s), want %d",
				trial, gotChanged, wantChanged)
		}

		q := core.NewQuery("apple", "pear", "plum")
		want, err := eng.Search(q, 1)
		if err != nil {
			t.Fatal(err)
		}
		got, err := set.SearchQuery(q, 1)
		if err != nil {
			t.Fatal(err)
		}
		sameResponse(t, fmt.Sprintf("trial %d post-schema", trial), want, got)
	}
}
