package shard

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"sort"
	"testing"

	"repro/internal/core"
	"repro/internal/di"
	"repro/internal/index"
	"repro/internal/lca"
	"repro/internal/xmltree"
)

// referenceIndex builds the cold-rebuild reference for a mutated set: one
// index over the surviving documents with their document ids preserved
// exactly (Repository.Add would renumber; live mutation must not).
func referenceIndex(t *testing.T, docs []*xmltree.Document) (*index.Index, *core.Engine) {
	t.Helper()
	sorted := append([]*xmltree.Document(nil), docs...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i].DocID < sorted[j].DocID })
	ix, err := index.Build(&xmltree.Repository{Docs: sorted}, index.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	return ix, core.NewEngine(ix)
}

func TestRouteShardMatchesPartition(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	docs := make([]*xmltree.Document, 20)
	for i := range docs {
		docs[i] = randomDoc(rng, fmt.Sprintf("route-%03d.xml", i), false)
	}
	for _, n := range []int{1, 2, 3, 5, 8} {
		groups := Partition(docs, DefaultOptions(n))
		for shard, group := range groups {
			for _, d := range group {
				if got := RouteShard(d.Name, n); got != shard {
					t.Fatalf("RouteShard(%q, %d) = %d, but Partition placed it in shard %d",
						d.Name, n, got, shard)
				}
			}
		}
	}
}

// TestLiveMutationEquivalence is the correctness anchor of live ingestion:
// after ANY random interleaving of adds, replaces and deletes, the sharded
// set must be observationally identical — responses with exact rank floats,
// insights, baselines, stats, schema — to a single index cold-rebuilt from
// the surviving documents.
func TestLiveMutationEquivalence(t *testing.T) {
	rng := rand.New(rand.NewSource(1723))
	for trial := 0; trial < 12; trial++ {
		docs := randomCorpus(rng)
		set, err := Build(docs, DefaultOptions(1+rng.Intn(5)))
		if err != nil {
			t.Fatal(err)
		}
		live := make(map[string]*xmltree.Document, len(docs))
		for _, d := range docs {
			live[d.Name] = d
		}
		next := len(docs)

		for step := 0; step < 10; step++ {
			names := make([]string, 0, len(live))
			for n := range live {
				names = append(names, n)
			}
			sort.Strings(names)
			switch op := rng.Intn(3); {
			case op == 0 || len(live) == 1: // add
				name := fmt.Sprintf("doc-%03d.xml", next)
				next++
				doc := randomDoc(rng, name, rng.Intn(2) == 0)
				out, replaced, err := set.WithDocument(doc)
				if err != nil {
					t.Fatal(err)
				}
				if replaced {
					t.Fatalf("add of fresh name %q reported replaced", name)
				}
				set, live[name] = out, doc
			case op == 1: // replace
				name := names[rng.Intn(len(names))]
				doc := randomDoc(rng, name, rng.Intn(2) == 0)
				out, replaced, err := set.WithDocument(doc)
				if err != nil {
					t.Fatal(err)
				}
				if !replaced {
					t.Fatalf("replace of live name %q not reported as replaced", name)
				}
				set, live[name] = out, doc
			default: // delete
				name := names[rng.Intn(len(names))]
				out, err := set.WithoutDocument(name)
				if err != nil {
					t.Fatal(err)
				}
				set = out
				delete(live, name)
			}

			survivors := make([]*xmltree.Document, 0, len(live))
			for _, d := range live {
				survivors = append(survivors, d)
			}
			ix, eng := referenceIndex(t, survivors)
			label := fmt.Sprintf("trial %d step %d (shards=%d, docs=%d)",
				trial, step, set.NumShards(), len(live))

			terms := append([]string(nil), corpusWords...)
			rng.Shuffle(len(terms), func(i, j int) { terms[i], terms[j] = terms[j], terms[i] })
			q := core.NewQuery(terms[:2+rng.Intn(2)]...)
			for s := 1; s <= q.Len(); s++ {
				want, err := eng.Search(q, s)
				if err != nil {
					t.Fatal(err)
				}
				got, err := set.SearchQuery(q, s)
				if err != nil {
					t.Fatal(err)
				}
				sameResponse(t, fmt.Sprintf("%s s=%d", label, s), want, got)
				sameInsights(t, fmt.Sprintf("%s s=%d insights", label, s),
					di.DiscoverIndexed(func(core.Result) *index.Index { return ix }, want, 5),
					set.Insights(got, 5))
			}
			sameStrings(t, label+" SLCA", singleBaseline(ix, eng, q, lca.SLCA), set.SLCA(q))
			sameStrings(t, label+" ELCA", singleBaseline(ix, eng, q, lca.ELCA), set.ELCA(q))
			if want, got := ix.Stats, set.Stats(); want != got {
				t.Fatalf("%s: stats %+v, want %+v", label, got, want)
			}
			wantEdges, gotEdges := singleSchemaEdges(ix), set.Schema()
			if len(wantEdges) != len(gotEdges) {
				t.Fatalf("%s: %d schema edges, want %d", label, len(gotEdges), len(wantEdges))
			}
			for i := range wantEdges {
				if wantEdges[i] != gotEdges[i] {
					t.Fatalf("%s: schema edge %d = %+v, want %+v", label, i, gotEdges[i], wantEdges[i])
				}
			}
			if err := set.ValidateIndex(); err != nil {
				t.Fatalf("%s: %v", label, err)
			}
		}
	}
}

// TestMutationsAreCopyOnWrite: every mutation leaves the receiver serving
// its old corpus, and shards the mutation never touched share their engine
// (and its warmed arenas) with the successor.
func TestMutationsAreCopyOnWrite(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	docs := make([]*xmltree.Document, 6)
	for i := range docs {
		docs[i] = randomDoc(rng, fmt.Sprintf("cow-%d.xml", i), false)
	}
	set, err := Build(docs, DefaultOptions(3))
	if err != nil {
		t.Fatal(err)
	}
	statsBefore := set.Stats()
	docBefore := set.NumShards()

	doc := randomDoc(rng, "cow-new.xml", false)
	next, _, err := set.WithDocument(doc)
	if err != nil {
		t.Fatal(err)
	}
	if set.Stats() != statsBefore || set.NumShards() != docBefore || set.ContainsDoc("cow-new.xml") {
		t.Fatal("WithDocument mutated the receiver")
	}
	target := RouteShard("cow-new.xml", set.NumShards())
	for i := range set.shards {
		if i == target {
			if next.engines[i] == set.engines[i] {
				t.Fatalf("target shard %d kept its old engine", i)
			}
			continue
		}
		if next.shards[i] != set.shards[i] || next.engines[i] != set.engines[i] {
			t.Fatalf("untouched shard %d was rebuilt", i)
		}
	}

	del, err := next.WithoutDocument("cow-new.xml")
	if err != nil {
		t.Fatal(err)
	}
	if !next.ContainsDoc("cow-new.xml") {
		t.Fatal("WithoutDocument mutated the receiver")
	}
	if del.ContainsDoc("cow-new.xml") {
		t.Fatal("delete left the document live")
	}
}

func TestWithoutDocumentErrors(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	docs := []*xmltree.Document{
		randomDoc(rng, "e-0.xml", false),
		randomDoc(rng, "e-1.xml", false),
	}
	set, err := Build(docs, DefaultOptions(2))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := set.WithoutDocument("missing.xml"); !errors.Is(err, index.ErrNotFound) {
		t.Fatalf("unknown name: err = %v, want index.ErrNotFound", err)
	}
	one, err := set.WithoutDocument("e-0.xml")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := one.WithoutDocument("e-1.xml"); !errors.Is(err, index.ErrLastDocument) {
		t.Fatalf("deleting the last document: err = %v, want index.ErrLastDocument", err)
	}
}

// TestExplainContextEquivalence: the parallel scatter-based explain must
// produce the same merged response as the single-index engine and record a
// per-shard latency for every shard, like any other fan-out.
func TestExplainContextEquivalence(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	docs := randomCorpus(rng)
	set, err := Build(docs, DefaultOptions(4))
	if err != nil {
		t.Fatal(err)
	}
	m := &recordingMetrics{}
	set.SetMetrics(m)
	_, eng := referenceIndex(t, docs)

	want, err := eng.Explain(core.NewQuery("apple", "pear"), 1)
	if err != nil {
		t.Fatal(err)
	}
	got, err := set.ExplainContext(context.Background(), "apple pear", 1)
	if err != nil {
		t.Fatal(err)
	}
	sameResponse(t, "explain", want.Response, got.Response)
	if got.SLSize != want.SLSize {
		t.Fatalf("explain SLSize = %d, want %d", got.SLSize, want.SLSize)
	}
	if len(m.observed) != set.NumShards() {
		t.Fatalf("explain observed %d shard latencies, want %d", len(m.observed), set.NumShards())
	}

	// A caller-cancelled explain is an error, never a partial result — even
	// on a set configured to degrade on shard failure.
	set.SetAllowPartial(true)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := set.ExplainContext(ctx, "apple pear", 1); !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled explain returned %v, want context.Canceled", err)
	}
}
