package shard

import (
	"errors"
	"fmt"
	"hash/fnv"

	"repro/internal/core"
	"repro/internal/index"
	"repro/internal/xmltree"
)

// Live ingestion over a shard set. Mutations are copy-on-write, like the
// underlying indexes: WithDocument and WithoutDocument return a new *Set
// sharing every untouched shard (index AND engine, so their warmed query
// arenas survive) with the receiver, which keeps serving unchanged. Only
// the shard the document routes to is rebuilt — an append is a partial-
// index merge on that shard, a delete a tombstone mask — so the cost of a
// mutation scales with one shard, not the corpus.

// RouteShard returns the shard an incoming document with the given name
// routes to: the same FNV-1a name hash Partition uses, so a live add lands
// on the shard a from-scratch hash-partitioned build would have chosen.
func RouteShard(name string, numShards int) int {
	h := fnv.New32a()
	h.Write([]byte(name))
	// Reduce in uint32: int(Sum32()) is negative for high hashes on 32-bit
	// platforms, and a negative modulo would panic.
	return int(h.Sum32() % uint32(numShards))
}

// NextDocID returns the Dewey document number the next ingested document
// will take: one past the highest live document number across all shards.
func (s *Set) NextDocID() int32 {
	max := int32(0)
	for _, ix := range s.shards {
		if next := ix.NextDocID(); next > max {
			max = next
		}
	}
	return max
}

// ContainsDoc reports whether any shard holds a live document named name.
func (s *Set) ContainsDoc(name string) bool {
	for _, ix := range s.shards {
		if ix.ContainsDoc(name) {
			return true
		}
	}
	return false
}

// WithDocument returns a new set with doc added, replacing any live
// document(s) of the same name (replaced reports whether one existed).
// The receiver is unchanged. The document is renumbered to the set's next
// free document id; on failure the caller's document is left as passed
// in. Untouched shards are shared; the target shard (and any shard a
// replace tombstones) gets a fresh engine.
func (s *Set) WithDocument(doc *xmltree.Document) (*Set, bool, error) {
	if doc == nil || doc.Root == nil {
		return nil, false, fmt.Errorf("shard: add of empty document")
	}
	shards, engines, replaced, err := deleteByName(s.shards, s.engines, doc.Name)
	if err != nil {
		return nil, false, err
	}
	// The post-delete next id — the same number the single-index upsert
	// assigns, which is what keeps the sharded and single-index mutation
	// histories byte-equivalent.
	docID := int32(0)
	for _, ix := range shards {
		if next := ix.NextDocID(); next > docID {
			docID = next
		}
	}
	if len(shards) == 0 {
		// The replace emptied every shard: start a fresh single-shard set.
		ix, err := index.BuildDocumentAs(doc, docID, s.ixOpts)
		if err != nil {
			return nil, false, err
		}
		shards = append(shards, ix)
		engines = append(engines, core.NewEngine(ix))
	} else {
		target := RouteShard(doc.Name, len(shards))
		next, err := index.AppendAs(shards[target], doc, docID, s.ixOpts)
		if err != nil {
			return nil, false, err
		}
		shards[target] = next
		engines[target] = core.NewEngine(next)
	}
	set, err := s.withShards(shards, engines)
	if err != nil {
		return nil, false, err
	}
	return set, replaced, nil
}

// WithoutDocument returns a new set with every live document named name
// removed; the receiver is unchanged. It fails with index.ErrNotFound when
// no shard holds the document and with index.ErrLastDocument when the
// delete would empty the whole set.
func (s *Set) WithoutDocument(name string) (*Set, error) {
	shards, engines, removed, err := deleteByName(s.shards, s.engines, name)
	if err != nil {
		return nil, err
	}
	if !removed {
		return nil, fmt.Errorf("shard: %w: %q", index.ErrNotFound, name)
	}
	if len(shards) == 0 {
		return nil, fmt.Errorf("shard: %w: %q", index.ErrLastDocument, name)
	}
	return s.withShards(shards, engines)
}

// deleteByName tombstones every live document named name, returning fresh
// shard/engine slices. Shards the delete would empty are dropped from the
// set (an index cannot be empty); untouched shards are shared as-is.
func deleteByName(shards []*index.Index, engines []*core.Engine, name string) ([]*index.Index, []*core.Engine, bool, error) {
	outS := make([]*index.Index, 0, len(shards))
	outE := make([]*core.Engine, 0, len(engines))
	removed := false
	for i, ix := range shards {
		if !ix.ContainsDoc(name) {
			outS = append(outS, ix)
			outE = append(outE, engines[i])
			continue
		}
		next, err := ix.DeleteDoc(name)
		switch {
		case err == nil:
			outS = append(outS, next)
			outE = append(outE, core.NewEngine(next))
			removed = true
		case errors.Is(err, index.ErrLastDocument):
			removed = true // name was this shard's whole corpus: drop it
		default:
			return nil, nil, false, err
		}
	}
	return outS, outE, removed, nil
}

// withShards assembles a new set around mutated shard slices, carrying the
// receiver's serving configuration over and recomputing the document
// routing table (which also revalidates the one-shard-per-document
// invariant).
func (s *Set) withShards(shards []*index.Index, engines []*core.Engine) (*Set, error) {
	docShard, err := computeDocShard(shards)
	if err != nil {
		return nil, err
	}
	return &Set{
		shards:       shards,
		engines:      engines,
		docShard:     docShard,
		Generation:   s.Generation,
		allowPartial: s.allowPartial,
		metrics:      s.metrics,
		ixOpts:       s.ixOpts,
	}, nil
}
