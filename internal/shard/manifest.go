package shard

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
	"regexp"

	"repro/internal/index"
)

// A shard set persists as one GKSM1 manifest plus one GKS3 snapshot file
// per shard, all in the same directory. The manifest is the unit of
// atomicity: it is written last (atomically, via the same
// temp+fsync+rename discipline as snapshots) and names every shard file
// together with its CRC32 and size, so a loader either sees a complete,
// mutually consistent set or fails — there is no mixed-generation state.
//
// Layout (all integers uvarint unless noted):
//
//	magic "GKSM1"
//	generation
//	shard count
//	per shard: name length, name bytes, file CRC32, file size
//	CRC32 of everything above (4 bytes little-endian)
//
// Shard file names are stored relative to the manifest's directory; the
// manifest never references files outside it. Names embed the manifest
// generation, which advances on every save: the new generation's shard
// files never share a name with files the manifest currently at path
// references, so a save never writes over bytes the loadable set depends
// on.
const manifestMagic = "GKSM1"

// maxManifestShards bounds the shard count a loader will accept — far
// above any sane deployment, it keeps a corrupt count field from driving
// allocation or file probing into the millions.
const maxManifestShards = 1 << 12

// ShardFileName returns the file name of shard i for generation gen of
// the manifest at path: "<manifest base name>.g000002.s000", "….s001", …
// in the same directory. The generation in the name is what keeps a save
// from writing over files the live manifest references.
func ShardFileName(path string, gen uint64, i int) string {
	return fmt.Sprintf("%s.g%06d.s%03d", filepath.Base(path), gen, i)
}

// SaveManifest persists the set: every shard index is written as a GKS3
// snapshot next to the manifest (each write individually atomic), then
// the manifest itself is written atomically, then shard files no manifest
// references any more are removed. The save advances the set's
// Generation and bakes it into the new shard file names, so it never
// touches the files an existing manifest at path points to: a crash
// before the final manifest rename leaves the previous manifest — and
// therefore the previous complete set — intact and loadable, and a crash
// after it leaves the new set loadable (stray files from the interrupted
// cleanup are swept by the next save).
func (s *Set) SaveManifest(path string) error {
	dir := filepath.Dir(path)
	gen := s.Generation + 1
	if prevGen, _, err := readManifest(path); err == nil && prevGen >= gen {
		// Overwriting a manifest this set was not loaded from (e.g.
		// re-running `gks index -shards` over a served path, where the
		// fresh build starts at generation 1): stay ahead of the existing
		// manifest's generation too, or the new shard files would collide
		// with the very set being replaced.
		gen = prevGen + 1
	}
	var buf bytes.Buffer
	buf.WriteString(manifestMagic)
	buf.Write(binary.AppendUvarint(nil, gen))
	buf.Write(binary.AppendUvarint(nil, uint64(len(s.shards))))
	live := make(map[string]bool, len(s.shards))
	for i, ix := range s.shards {
		name := ShardFileName(path, gen, i)
		full := filepath.Join(dir, name)
		if err := ix.SaveFile(full); err != nil {
			return fmt.Errorf("shard: save shard %d: %w", i, err)
		}
		data, err := os.ReadFile(full)
		if err != nil {
			return fmt.Errorf("shard: save shard %d: %w", i, err)
		}
		live[name] = true
		buf.Write(binary.AppendUvarint(nil, uint64(len(name))))
		buf.WriteString(name)
		buf.Write(binary.AppendUvarint(nil, uint64(crc32.ChecksumIEEE(data))))
		buf.Write(binary.AppendUvarint(nil, uint64(len(data))))
	}
	sum := crc32.ChecksumIEEE(buf.Bytes())
	var trailer [4]byte
	binary.LittleEndian.PutUint32(trailer[:], sum)
	buf.Write(trailer[:])
	if err := index.WriteFileAtomic(path, func(w io.Writer) error {
		_, err := w.Write(buf.Bytes())
		return err
	}); err != nil {
		return err
	}
	s.Generation = gen
	removeStaleShardFiles(path, live)
	return nil
}

// shardFilePattern matches the shard file names SaveManifest generates
// for path's manifest, current ("<base>.gNNNNNN.sNNN") and legacy
// ("<base>.sNNN") forms alike — and nothing else, so the stale-file sweep
// can never touch an unrelated file.
func shardFilePattern(path string) *regexp.Regexp {
	return regexp.MustCompile(`^` + regexp.QuoteMeta(filepath.Base(path)) + `\.(g\d+\.)?s\d{3}$`)
}

// removeStaleShardFiles deletes, best effort, every shard file of path's
// manifest that is not in live: the generation the manifest rename just
// superseded, plus any strays from an earlier interrupted save. It runs
// strictly after the rename, so nothing it removes is referenced by a
// loadable manifest.
func removeStaleShardFiles(path string, live map[string]bool) {
	dir := filepath.Dir(path)
	entries, err := os.ReadDir(dir)
	if err != nil {
		return
	}
	pat := shardFilePattern(path)
	for _, e := range entries {
		if e.IsDir() || live[e.Name()] || !pat.MatchString(e.Name()) {
			continue
		}
		os.Remove(filepath.Join(dir, e.Name()))
	}
}

// manifestEntry is one shard reference parsed from a manifest.
type manifestEntry struct {
	Name string
	CRC  uint32
	Size int64
}

// readManifest parses and checksums a manifest file.
func readManifest(path string) (gen uint64, entries []manifestEntry, err error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return 0, nil, err
	}
	corrupt := func(format string, args ...any) (uint64, []manifestEntry, error) {
		return 0, nil, fmt.Errorf("shard: manifest %s: "+format+": %w",
			append(append([]any{path}, args...), index.ErrCorrupt)...)
	}
	if len(data) < len(manifestMagic)+4 || string(data[:len(manifestMagic)]) != manifestMagic {
		return corrupt("bad magic")
	}
	body, trailer := data[:len(data)-4], data[len(data)-4:]
	if crc32.ChecksumIEEE(body) != binary.LittleEndian.Uint32(trailer) {
		return corrupt("checksum mismatch")
	}
	r := bytes.NewReader(body[len(manifestMagic):])
	gen, err = binary.ReadUvarint(r)
	if err != nil {
		return corrupt("truncated generation")
	}
	count, err := binary.ReadUvarint(r)
	if err != nil {
		return corrupt("truncated shard count")
	}
	if count == 0 || count > maxManifestShards {
		return corrupt("implausible shard count %d", count)
	}
	for i := uint64(0); i < count; i++ {
		nameLen, err := binary.ReadUvarint(r)
		if err != nil || nameLen == 0 || nameLen > 4096 {
			return corrupt("shard %d: bad name length", i)
		}
		name := make([]byte, nameLen)
		if _, err := io.ReadFull(r, name); err != nil {
			return corrupt("shard %d: truncated name", i)
		}
		if filepath.Base(string(name)) != string(name) {
			// A path-traversing name would let a tampered manifest read
			// files outside its own directory.
			return corrupt("shard %d: name %q is not a plain file name", i, name)
		}
		crc, err := binary.ReadUvarint(r)
		if err != nil || crc > 0xFFFFFFFF {
			return corrupt("shard %d: bad crc", i)
		}
		size, err := binary.ReadUvarint(r)
		if err != nil || size > 1<<62 {
			return corrupt("shard %d: bad size", i)
		}
		entries = append(entries, manifestEntry{Name: string(name), CRC: uint32(crc), Size: int64(size)})
	}
	if r.Len() != 0 {
		return corrupt("%d trailing bytes", r.Len())
	}
	return gen, entries, nil
}

// LoadManifest restores a shard set from a manifest written by
// SaveManifest. Loading is all-or-nothing: every shard file must exist,
// match its manifest CRC and size, parse as a valid snapshot, and the
// documents must partition cleanly across shards — any failure fails the
// whole load, which is what lets the server's reload path keep serving
// the previous complete set.
func LoadManifest(path string) (*Set, error) {
	gen, entries, err := readManifest(path)
	if err != nil {
		return nil, err
	}
	dir := filepath.Dir(path)
	shards := make([]*index.Index, len(entries))
	for i, e := range entries {
		data, err := os.ReadFile(filepath.Join(dir, e.Name))
		if err != nil {
			return nil, fmt.Errorf("shard: manifest %s: shard %d: %w", path, i, err)
		}
		if int64(len(data)) != e.Size || crc32.ChecksumIEEE(data) != e.CRC {
			return nil, fmt.Errorf("shard: manifest %s: shard file %s does not match manifest: %w",
				path, e.Name, index.ErrCorrupt)
		}
		ix, err := index.Load(bytes.NewReader(data))
		if err != nil {
			return nil, fmt.Errorf("shard: manifest %s: shard file %s: %w", path, e.Name, err)
		}
		shards[i] = ix
	}
	set, err := newSet(shards, false, index.DefaultOptions())
	if err != nil {
		return nil, fmt.Errorf("%w: %w", err, index.ErrCorrupt)
	}
	set.Generation = gen
	return set, nil
}
