package shard

import (
	"container/heap"
	"context"
	"errors"
	"sync"
	"time"

	"repro/internal/core"
)

// Search parses the query string and runs a scatter-gather GKS search with
// threshold s, mirroring gks.System.Search.
func (s *Set) Search(query string, threshold int) (*core.Response, error) {
	return s.SearchQueryCtx(context.Background(), core.ParseQuery(query), threshold)
}

// SearchContext is Search honoring ctx: the fan-out propagates ctx to
// every shard, and each shard's engine polls it cooperatively.
func (s *Set) SearchContext(ctx context.Context, query string, threshold int) (*core.Response, error) {
	return s.SearchQueryCtx(ctx, core.ParseQuery(query), threshold)
}

// SearchQuery runs a scatter-gather search for an already-built query.
func (s *Set) SearchQuery(q core.Query, threshold int) (*core.Response, error) {
	return s.SearchQueryCtx(context.Background(), q, threshold)
}

// SearchQueryCtx fans the search out to every shard in parallel and merges
// the per-shard ranked lists into one globally ordered response.
func (s *Set) SearchQueryCtx(ctx context.Context, q core.Query, threshold int) (*core.Response, error) {
	if err := q.Validate(); err != nil {
		return nil, err
	}
	resps, partial, err := s.scatter(ctx, func(ctx context.Context, eng *core.Engine) (*core.Response, error) {
		return eng.SearchCtx(ctx, q, threshold)
	})
	if err != nil {
		return nil, err
	}
	return s.gather(q, resps, partial, 0), nil
}

// SearchBestEffort finds the largest threshold with a non-empty response —
// the binary scan runs at the set level, over merged responses, so the
// effective s is decided by the whole corpus exactly as on a single index
// (a per-shard best effort could settle on different thresholds per shard).
func (s *Set) SearchBestEffort(query string) (*core.Response, error) {
	return s.SearchBestEffortContext(context.Background(), query)
}

// SearchBestEffortContext is SearchBestEffort honoring ctx.
func (s *Set) SearchBestEffortContext(ctx context.Context, query string) (*core.Response, error) {
	q := core.ParseQuery(query)
	return bestEffortPartialAware(ctx, q, func(ctx context.Context, threshold int) (*core.Response, error) {
		return s.SearchQueryCtx(ctx, q, threshold)
	})
}

// bestEffortPartialAware runs the core.BestEffort threshold scan over
// search, flagging the final response partial when any probe in the scan
// was partial: under AllowPartial, a degraded probe can make a non-empty threshold
// look empty and steer the scan to a lower s than a healthy set would
// settle on — so even a final probe that succeeded on every shard is not
// trustworthy as a complete answer.
func bestEffortPartialAware(ctx context.Context, q core.Query, search func(context.Context, int) (*core.Response, error)) (*core.Response, error) {
	anyPartial := false
	resp, err := core.BestEffort(ctx, q, func(ctx context.Context, threshold int) (*core.Response, error) {
		r, err := search(ctx, threshold)
		if err == nil && r.Partial {
			anyPartial = true
		}
		return r, err
	})
	if err != nil || resp == nil {
		return resp, err
	}
	if anyPartial {
		// Probe responses are freshly allocated per scatter-gather merge,
		// so the flag can be set in place.
		resp.Partial = true
	}
	return resp, nil
}

// SearchTopK returns the k highest-ranked response nodes. Each shard
// computes its own top k with rank-bound pruning; the global top k is a
// prefix of the merge of per-shard top-k lists, because every global
// top-k result is by definition within the top k of its own shard.
func (s *Set) SearchTopK(query string, threshold, k int) (*core.Response, error) {
	return s.SearchTopKContext(context.Background(), query, threshold, k)
}

// SearchTopKContext is SearchTopK honoring ctx.
func (s *Set) SearchTopKContext(ctx context.Context, query string, threshold, k int) (*core.Response, error) {
	q := core.ParseQuery(query)
	if err := q.Validate(); err != nil {
		return nil, err
	}
	resps, partial, err := s.scatter(ctx, func(ctx context.Context, eng *core.Engine) (*core.Response, error) {
		return eng.SearchTopKCtx(ctx, q, threshold, k)
	})
	if err != nil {
		return nil, err
	}
	return s.gather(q, resps, partial, k), nil
}

// scatter runs one search function against every shard engine
// concurrently. Without AllowPartial the first shard error cancels the
// remaining shards and fails the search; with it, failed shards are
// dropped and the response is flagged partial (unless every shard failed,
// which is still an error). The returned slice has one entry per shard;
// failed shards are nil.
func (s *Set) scatter(ctx context.Context, run func(ctx context.Context, eng *core.Engine) (*core.Response, error)) ([]*core.Response, bool, error) {
	return scatterShards(ctx, s, run)
}

// scatterShards is the generic scatter fan-out shared by searches and
// explains (a free function because methods cannot carry type
// parameters). It owns all the fan-out policy: per-shard latency
// observation, first-error cancellation, degrade-to-partial under
// AllowPartial with the all-shards-failed and caller-cancelled
// exclusions. Failed shards leave the zero T in the result slice.
func scatterShards[T any](ctx context.Context, s *Set, run func(ctx context.Context, eng *core.Engine) (T, error)) ([]T, bool, error) {
	ctx, cancel := context.WithCancel(ctx)
	defer cancel()
	results := make([]T, len(s.engines))
	errs := make([]error, len(s.engines))
	var wg sync.WaitGroup
	for i := range s.engines {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			start := time.Now()
			res, err := run(ctx, s.engines[i])
			if s.metrics != nil {
				s.metrics.ObserveShardSearch(i, time.Since(start))
			}
			if err != nil {
				errs[i] = err
				if !s.allowPartial {
					cancel() // first error wins: stop the other shards
				}
				return
			}
			results[i] = res
		}(i)
	}
	wg.Wait()

	failed := 0
	var firstErr error
	for _, err := range errs {
		if err == nil {
			continue
		}
		failed++
		// Prefer the root-cause error over the context.Canceled the other
		// shards observe after the first failure cancels the fan-out.
		if firstErr == nil || (errors.Is(firstErr, context.Canceled) && !errors.Is(err, context.Canceled)) {
			firstErr = err
		}
	}
	if failed == 0 {
		return results, false, nil
	}
	if !s.allowPartial || failed == len(s.engines) {
		return nil, false, firstErr
	}
	if err := ctx.Err(); err != nil {
		// The caller's context expired mid-fan-out: that is a cancelled
		// request, not a degraded shard — don't dress it up as partial.
		return nil, false, err
	}
	if s.metrics != nil {
		s.metrics.IncShardPartial()
	}
	return results, true, nil
}

// gather merges per-shard responses into one response in global order:
// rank desc, keyword count desc, Dewey order — exactly the single-index
// sort. k > 0 truncates the merged list. SLSize sums (S_L is partitioned
// by document, like everything else).
func (s *Set) gather(q core.Query, resps []*core.Response, partial bool, k int) *core.Response {
	out := &core.Response{Query: q, Partial: partial}
	h := make(resultHeap, 0, len(resps))
	total := 0
	for _, r := range resps {
		if r == nil {
			continue
		}
		out.S = r.S
		out.SLSize += r.SLSize
		out.Stages.Add(r.Stages)
		total += len(r.Results)
		if len(r.Results) > 0 {
			h = append(h, cursor{list: r.Results})
		}
	}
	if k > 0 && total > k {
		total = k
	}
	out.Results = make([]core.Result, 0, total)
	heap.Init(&h)
	for h.Len() > 0 && (k <= 0 || len(out.Results) < k) {
		c := &h[0]
		out.Results = append(out.Results, c.list[c.pos])
		c.pos++
		if c.pos == len(c.list) {
			heap.Pop(&h)
		} else {
			heap.Fix(&h, 0)
		}
	}
	return out
}

// cursor walks one shard's ranked result list during the k-way merge.
type cursor struct {
	list []core.Result
	pos  int
}

// resultHeap is a min-heap of shard cursors ordered by the global response
// comparator, so the heap root is always the next result to emit.
type resultHeap []cursor

func (h resultHeap) Len() int { return len(h) }
func (h resultHeap) Less(i, j int) bool {
	return core.ResultBefore(h[i].list[h[i].pos], h[j].list[h[j].pos])
}
func (h resultHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }
func (h *resultHeap) Push(x any)   { *h = append(*h, x.(cursor)) }
func (h *resultHeap) Pop() any {
	old := *h
	n := len(old)
	x := old[n-1]
	*h = old[:n-1]
	return x
}

// Explain runs the query on every shard while recording pipeline
// statistics, and aggregates them: counters and stage times sum across
// shards, and the embedded response is the scatter-gather merge.
func (s *Set) Explain(query string, threshold int) (*core.Explanation, error) {
	return s.ExplainContext(context.Background(), query, threshold)
}

// ExplainContext is Explain honoring ctx. Shards are explained through
// the same scatter fan-out as searches: they run in parallel, per-shard
// latency reaches the metrics sink, a failing shard cancels its siblings,
// and under AllowPartial the trace degrades like a search would (failed
// shards contribute nothing; the embedded response is flagged partial).
func (s *Set) ExplainContext(ctx context.Context, query string, threshold int) (*core.Explanation, error) {
	q := core.ParseQuery(query)
	if err := q.Validate(); err != nil {
		return nil, err
	}
	exs, partial, err := scatterShards(ctx, s, func(ctx context.Context, eng *core.Engine) (*core.Explanation, error) {
		return eng.ExplainCtx(ctx, q, threshold)
	})
	if err != nil {
		return nil, err
	}
	out := &core.Explanation{Query: q}
	resps := make([]*core.Response, len(exs))
	for i, ex := range exs {
		if ex == nil {
			continue // failed shard under AllowPartial
		}
		if out.PostingSizes == nil {
			out.PostingSizes = make([]int, len(ex.PostingSizes))
		}
		for k, n := range ex.PostingSizes {
			out.PostingSizes[k] += n
		}
		out.S = ex.S
		out.SLSize += ex.SLSize
		out.Blocks += ex.Blocks
		out.LCPNodes += ex.LCPNodes
		out.Candidates += ex.Candidates
		out.EntityCandidates += ex.EntityCandidates
		out.Survivors += ex.Survivors
		out.MergeTime += ex.MergeTime
		out.ScanTime += ex.ScanTime
		out.RankTime += ex.RankTime
		out.Stages.Add(ex.Stages)
		resps[i] = ex.Response
	}
	out.Response = s.gather(q, resps, partial, 0)
	return out, nil
}
