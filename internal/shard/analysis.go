package shard

import (
	"fmt"
	"sort"

	"repro/internal/core"
	"repro/internal/dewey"
	"repro/internal/di"
	"repro/internal/index"
	"repro/internal/lca"
	"repro/internal/schema"
	"repro/internal/textproc"
)

// The analysis surface of gks.System, reproduced over the shard set. Every
// method reduces to per-shard computations merged so the output equals the
// single-index result: DI resolves each result to its owning shard, result
// types sum label-keyed frequency tables, LCA baselines sort the per-shard
// answers into global Dewey order, and the schema summary is inferred
// across all shard indexes at once.

// Insights discovers the top-m Deeper Analytical Insights of a response.
// The response must come from this set's searches: each result's Ord is
// interpreted in the shard owning the result's document.
func (s *Set) Insights(resp *core.Response, m int) []di.Insight {
	return di.DiscoverIndexed(s.indexOfResult, resp, m)
}

// InsightsRecursive applies DI discovery recursively (§2.3): each round
// feeds the previous round's top-m insight values back as a query.
func (s *Set) InsightsRecursive(q core.Query, threshold, m, rounds int) ([]di.Round, error) {
	if rounds < 1 {
		rounds = 1
	}
	var out []di.Round
	cur := q
	for r := 0; r < rounds; r++ {
		resp, err := s.SearchQuery(cur, threshold)
		if err != nil {
			return out, fmt.Errorf("di: round %d: %w", r, err)
		}
		ins := s.Insights(resp, m)
		out = append(out, di.Round{Query: cur, Response: resp, Insights: ins})
		if len(ins) == 0 {
			break
		}
		terms := make([]string, 0, len(ins))
		for _, in := range ins {
			terms = append(terms, in.Value)
		}
		next := core.NewQuery(terms...)
		if next.Len() == 0 {
			break
		}
		cur = next
	}
	return out, nil
}

// Refinements proposes sub-queries matching the keyword subsets of the
// top-ranked results (§6.1). Operates on the merged response only.
func (s *Set) Refinements(resp *core.Response, topK int) []core.Query {
	return di.Refinements(resp, topK)
}

// Augmentations combines a query with top insight values (§7.4).
func (s *Set) Augmentations(q core.Query, insights []di.Insight, topK int) []core.Query {
	return di.Augmentations(q, insights, topK)
}

// SLCA runs the Smallest-LCA baseline across all shards and returns the
// answer nodes' Dewey IDs in document order. An SLCA answer never spans
// documents, so the union of per-shard answers is the single-index answer
// set; sorting by Dewey order restores the single-index output order.
func (s *Set) SLCA(q core.Query) []string {
	return s.mergeBaseline(q, lca.SLCA)
}

// ELCA runs the Exclusive-LCA baseline across all shards.
func (s *Set) ELCA(q core.Query) []string {
	return s.mergeBaseline(q, lca.ELCA)
}

func (s *Set) mergeBaseline(q core.Query, f func(*index.Index, [][]int32) []int32) []string {
	var ids []dewey.ID
	for i, eng := range s.engines {
		ix := s.shards[i]
		for _, ord := range f(ix, eng.PostingLists(q)) {
			ids = append(ids, ix.IDOf(ord))
		}
	}
	sort.Slice(ids, func(i, j int) bool { return dewey.Compare(ids[i], ids[j]) < 0 })
	out := make([]string, len(ids))
	for i, id := range ids {
		out[i] = id.String()
	}
	return out
}

// InferResultTypes ranks entity labels by their confidence of being the
// query's target type. Per-shard frequency tables are keyed by label
// string and summed — entities never span shards, so the summed table is
// the single-index table and the scores match exactly.
func (s *Set) InferResultTypes(query string, topK int) []di.TypeScore {
	q := core.ParseQuery(query)
	if q.Len() == 0 {
		return nil
	}
	var freq map[string][]int
	for _, eng := range s.engines {
		freq = di.MergeTypeFrequencies(freq, di.TypeFrequencies(eng, q))
	}
	return di.ScoreTypes(freq, q.Len(), topK)
}

// Suggest returns the indexed keywords within maxDist edits of the input.
// The vocabulary is the union of the shard vocabularies with summed
// posting counts — identical to the single-index vocabulary.
func (s *Set) Suggest(keyword string, maxDist, topK int) []textproc.Suggestion {
	s.vocabOnce.Do(func() {
		s.vocab = make(map[string]int)
		for _, ix := range s.shards {
			ix.ForEachKeyword(func(kw string, live int) {
				s.vocab[kw] += live
			})
		}
	})
	return textproc.Suggest(keyword, s.vocab, maxDist, topK)
}

// HasMatches reports whether the keyword has postings in any shard.
func (s *Set) HasMatches(keyword string) bool {
	for _, ix := range s.shards {
		if len(ix.Lookup(keyword)) > 0 {
			return true
		}
	}
	return false
}

// Schema infers the structural schema summary across every shard — a
// child repeating in any shard marks the edge repeating, exactly as on a
// single index over all the documents.
func (s *Set) Schema() []schema.Edge {
	return schema.InferIndexes(s.shards...).Edges()
}

// ApplySchemaCategorization re-categorizes every shard's nodes against the
// schema inferred across ALL shards — inferring per shard would let the
// same label classify differently on different shards (e.g. a single-
// author article in a shard with no multi-author ones). Returns the total
// number of nodes whose category changed. Like the System method it must
// not race concurrent searches.
func (s *Set) ApplySchemaCategorization() int {
	sum := schema.InferIndexes(s.shards...)
	changed := 0
	for _, ix := range s.shards {
		changed += schema.Apply(ix, sum.Categorize(ix))
	}
	return changed
}
