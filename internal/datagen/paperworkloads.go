package datagen

import "repro/internal/xmltree"

// This file recreates the ground truth behind the paper's Table 6 query
// workload (§7.3–§7.4). The real datasets carried specific co-authorship
// and keyword co-occurrence structure that the paper's Tables 7 and 8
// report on; the plants below embed the same structure in the synthetic
// analogs, so the experiment harness can compare measured counts against
// the paper's numbers. See DESIGN.md §3.

// Paper query author names (Table 6).
const (
	// QD1 / §7.4 refinement example.
	authGeorgakopoulos = "Dimitrios Georgakopoulos"
	authMorrison       = "Joe D. Morrison"
	authRusinkiewicz   = "Marek Rusinkiewicz"
	// QD2 / Example 2.
	authBuneman   = "Peter Buneman"
	authFan       = "Wenfei Fan"
	authWeinstein = "Scott Weinstein"
	authBanerjee  = "Prithviraj Banerjee"
	// QD3.
	authCodd     = "E. F. Codd"
	authHornick  = "Mark F. Hornick"
	authManola   = "Frank Manola"
	authBuchmann = "Alejandro P. Buchmann"
	// QD4.
	authDeckert      = "Kenneth L. Deckert"
	authTraiger      = "Irving L. Traiger"
	authWatson       = "Vera Watson"
	authGray         = "Jim Gray"
	authChang        = "Chin-Liang Chang"
	authRoussopoulos = "Nick Roussopoulos"
	authCadiou       = "Jean-Marc Cadiou"
	// §7.6 hybrid query.
	authMeynadier   = "Jean-Marc Meynadier"
	authBehm        = "Patrick Behm"
	authRowe        = "Lawrence A. Rowe"
	authStonebraker = "Michael Stonebraker"
	// QS1–QS4.
	authWasserman    = "Anthony I. Wasserman"
	authKaplan       = "S. Jerrold Kaplan"
	authTrueblood    = "Robert P. Trueblood"
	authDeWitt       = "David J. DeWitt"
	authKatz         = "Randy H. Katz"
	authGhosh        = "Sakti P. Ghosh"
	authLin          = "C. C. Lin"
	authSellis       = "Timos K. Sellis"
	authPatterson    = "David A. Patterson"
	authGibson       = "Garth A. Gibson"
	authBlaustein    = "Barbara T. Blaustein"
	authDayal        = "Umeshwar Dayal"
	authChakravarthy = "Upen S. Chakravarthy"
	authHsu          = "M. Hsu"
	authLedin        = "R. Ledin"
	authMcCarthy     = "Dennis R. McCarthy"
	authRosenthal    = "Arnon Rosenthal"
)

// dblpPlants reproduces the DBLP ground truth:
//
//   - QD1 {Georgakopoulos, Morrison}: 30 articles at s=1, exactly 1 joint
//     (the SLCA); 10 joint Georgakopoulos–Rusinkiewicz articles back the
//     §7.4 refinement walk-through.
//   - QD2 {Buneman, Fan, Weinstein, Banerjee}: 234 articles at s=1, 10 at
//     s=2, no article with all four (SLCA = 0); of the five
//     Buneman–Fan–Weinstein joint articles, four have no other co-author
//     and one has five extra co-authors (ranked lower, Example 2); the
//     four clean joint articles appeared in SIGMOD Record in 2001 (the
//     Table 8 DI); Banerjee publishes heavily in ICPP (§6.2's "popular
//     but irrelevant" insight).
//   - QD3 (6 authors): 190 at s=1, 7 at s=3, and one article carrying 5 of
//     the 6 query authors (Table 7 max-keywords column).
//   - QD4 (8 authors): 267 at s=1, 4 at s=4 (four six-author articles),
//     SLCA = 0.
//   - §7.6: 3 inproceedings by Meynadier & Behm (plus extra co-authors).
func dblpPlants() []Plant {
	return []Plant{
		// --- QD1 / refinement ---
		{Authors: []string{authGeorgakopoulos, authRusinkiewicz}, Count: 10, Venue: "TCS", Year: "2000"},
		{Authors: []string{authGeorgakopoulos, authMorrison}, Count: 1},
		{Authors: []string{authGeorgakopoulos}, Count: 8},
		{Authors: []string{authMorrison}, Count: 10},
		// --- QD2 / Example 2 ---
		{Authors: []string{authBuneman, authFan, authWeinstein}, Count: 4, Venue: "SIGMOD Record", Year: "2001"},
		{Authors: []string{authBuneman, authFan, authWeinstein}, Count: 1, Venue: "SIGMOD Record", Year: "2001", ExtraAuthors: 8},
		{Authors: []string{authBuneman, authFan}, Count: 3},
		{Authors: []string{authFan, authWeinstein}, Count: 2},
		{Authors: []string{authBuneman}, Count: 50},
		{Authors: []string{authFan}, Count: 30},
		{Authors: []string{authWeinstein}, Count: 24},
		{Authors: []string{authBanerjee}, Count: 25, Venue: "ICPP"},
		{Authors: []string{authBanerjee}, Count: 95},
		// --- QD3 ---
		{Authors: []string{authHornick, authManola, authBuchmann}, Count: 6, Venue: "ICCD", Year: "1999"},
		{Authors: []string{authCodd, authHornick, authManola, authBuchmann, authGeorgakopoulos}, Count: 1, Venue: "ICCD", Year: "1999"},
		{Authors: []string{authCodd}, Count: 57},
		{Authors: []string{authHornick}, Count: 35},
		{Authors: []string{authManola}, Count: 30},
		{Authors: []string{authBuchmann}, Count: 28},
		// --- QD4 ---
		{Authors: []string{authCodd, authDeckert, authTraiger, authWatson, authGray, authChang}, Count: 4, Venue: "JACM", Year: "2001"},
		{Authors: []string{authGray}, Count: 63},
		{Authors: []string{authRoussopoulos}, Count: 45},
		{Authors: []string{authTraiger}, Count: 30},
		{Authors: []string{authChang}, Count: 25},
		{Authors: []string{authWatson}, Count: 18},
		{Authors: []string{authDeckert}, Count: 14},
		{Authors: []string{authCadiou}, Count: 10},
		// --- §7.6 hybrid ---
		{Authors: []string{authMeynadier, authBehm}, Count: 3, ExtraAuthors: 3},
	}
}

// sigmodPlants reproduces the SIGMOD Record ground truth:
//
//   - QS1 {Wasserman, Rowe}: 8 articles at s=1, no co-authorship (max
//     keywords 1); Rowe's articles are the five Rowe–Stonebraker joint
//     articles also used by the §7.6 hybrid experiment.
//   - QS2 (4 authors): 43 at s=1, 13 at s=2, no triple.
//   - QS3 (6 authors): 28 at s=1, 4 at s=3 (Patterson–Gibson–Katz).
//   - QS4 (8 authors): 36 at s=1, 2 at s=4, exactly one 8-author article
//     (SLCA = 1, max keywords 8).
func sigmodPlants() []Plant {
	return []Plant{
		// --- QS1 / §7.6 ---
		{Authors: []string{authRowe, authStonebraker}, Count: 5},
		{Authors: []string{authWasserman}, Count: 3},
		// --- QS2 ---
		{Authors: []string{authKaplan, authTrueblood}, Count: 7},
		{Authors: []string{authDeWitt, authKatz}, Count: 6},
		{Authors: []string{authKaplan}, Count: 5},
		{Authors: []string{authTrueblood}, Count: 5},
		{Authors: []string{authDeWitt}, Count: 12},
		{Authors: []string{authKatz}, Count: 4},
		// --- QS3 ---
		{Authors: []string{authPatterson, authGibson, authKatz}, Count: 4},
		{Authors: []string{authGhosh}, Count: 2},
		{Authors: []string{authLin}, Count: 5},
		{Authors: []string{authSellis}, Count: 5},
		{Authors: []string{authPatterson}, Count: 1},
		{Authors: []string{authGibson}, Count: 1},
		// --- QS4 ---
		{Authors: []string{authBlaustein, authDayal, authBuchmann, authChakravarthy, authHsu, authLedin, authMcCarthy, authRosenthal}, Count: 1},
		{Authors: []string{authBlaustein, authDayal, authBuchmann, authChakravarthy}, Count: 1},
		{Authors: []string{authDayal}, Count: 8},
		{Authors: []string{authBlaustein}, Count: 4},
		{Authors: []string{authBuchmann}, Count: 5},
		{Authors: []string{authChakravarthy}, Count: 4},
		{Authors: []string{authHsu}, Count: 3},
		{Authors: []string{authLedin}, Count: 2},
		{Authors: []string{authMcCarthy}, Count: 4},
		{Authors: []string{authRosenthal}, Count: 4},
	}
}

// PaperDBLP generates the DBLP analog carrying the QD1–QD4 ground truth.
func PaperDBLP(scale int) *xmltree.Document {
	return DBLP(BibConfig{Config: Config{Seed: 42, Scale: scale}, Plants: dblpPlants()})
}

// PaperSigmod generates the SIGMOD Record analog carrying the QS1–QS4
// ground truth.
func PaperSigmod(scale int) *xmltree.Document {
	return SigmodRecord(BibConfig{Config: Config{Seed: 43, Scale: scale}, Plants: sigmodPlants()})
}

// PaperQuery describes one Table 6 query together with the paper's
// reported Table 7 numbers for comparison.
type PaperQuery struct {
	// ID is the paper's query name (QS1..QS4, QD1..QD4, QM1..QM4, QI1, QI2).
	ID string
	// Dataset names the workload: "sigmod", "dblp", "mondial" or "interpro".
	Dataset string
	// Terms are the query keywords (phrases stay single keywords).
	Terms []string
	// PaperGKS1 and PaperGKSHalf are the paper's #GKS at s=1 and s=|Q|/2
	// (−1 when the paper reports NA).
	PaperGKS1, PaperGKSHalf int
	// PaperSLCA is the paper's SLCA result count.
	PaperSLCA int
	// PaperMaxKw is the paper's "Max keywords in a GKS node".
	PaperMaxKw int
	// PaperRankScore is the paper's rank score.
	PaperRankScore float64
	// Exact reports whether the plants reproduce the paper's counts
	// exactly (true for the bibliographic datasets, false for the
	// generator-driven Mondial/InterPro analogs, where only the shape is
	// expected to match).
	Exact bool
}

// PaperQueries returns the paper's Table 6 workload.
func PaperQueries() []PaperQuery {
	return []PaperQuery{
		{ID: "QS1", Dataset: "sigmod", Terms: []string{authWasserman, authRowe},
			PaperGKS1: 8, PaperGKSHalf: -1, PaperSLCA: 0, PaperMaxKw: 1, PaperRankScore: 1, Exact: true},
		{ID: "QS2", Dataset: "sigmod", Terms: []string{authKaplan, authTrueblood, authDeWitt, authKatz},
			PaperGKS1: 43, PaperGKSHalf: 13, PaperSLCA: 0, PaperMaxKw: 2, PaperRankScore: 1, Exact: true},
		{ID: "QS3", Dataset: "sigmod", Terms: []string{authGhosh, authLin, authSellis, authPatterson, authGibson, authKatz},
			PaperGKS1: 28, PaperGKSHalf: 4, PaperSLCA: 0, PaperMaxKw: 3, PaperRankScore: 1, Exact: true},
		{ID: "QS4", Dataset: "sigmod", Terms: []string{authBlaustein, authDayal, authBuchmann, authChakravarthy, authHsu, authLedin, authMcCarthy, authRosenthal},
			PaperGKS1: 36, PaperGKSHalf: 2, PaperSLCA: 1, PaperMaxKw: 8, PaperRankScore: 1, Exact: true},
		{ID: "QD1", Dataset: "dblp", Terms: []string{authGeorgakopoulos, authMorrison},
			PaperGKS1: 30, PaperGKSHalf: -1, PaperSLCA: 1, PaperMaxKw: 2, PaperRankScore: 1, Exact: true},
		{ID: "QD2", Dataset: "dblp", Terms: []string{authBuneman, authFan, authWeinstein, authBanerjee},
			PaperGKS1: 234, PaperGKSHalf: 10, PaperSLCA: 0, PaperMaxKw: 3, PaperRankScore: 0.72, Exact: true},
		{ID: "QD3", Dataset: "dblp", Terms: []string{authCodd, authHornick, authManola, authBuchmann, authGeorgakopoulos, authMorrison},
			PaperGKS1: 190, PaperGKSHalf: 7, PaperSLCA: 0, PaperMaxKw: 5, PaperRankScore: 1, Exact: true},
		{ID: "QD4", Dataset: "dblp", Terms: []string{authCodd, authDeckert, authTraiger, authWatson, authGray, authChang, authRoussopoulos, authCadiou},
			PaperGKS1: 267, PaperGKSHalf: 4, PaperSLCA: 0, PaperMaxKw: 6, PaperRankScore: 1, Exact: true},
		{ID: "QM1", Dataset: "mondial", Terms: []string{"country", "Muslim"},
			PaperGKS1: 230, PaperGKSHalf: -1, PaperSLCA: 98, PaperMaxKw: 2, PaperRankScore: 1},
		{ID: "QM2", Dataset: "mondial", Terms: []string{"Laos", "country", "name"},
			PaperGKS1: 234, PaperGKSHalf: -1, PaperSLCA: 1, PaperMaxKw: 2, PaperRankScore: 1},
		{ID: "QM3", Dataset: "mondial", Terms: []string{"Polish", "Spanish", "German", "Luxembourg", "Bruges", "Catholic"},
			PaperGKS1: 37, PaperGKSHalf: 4, PaperSLCA: 0, PaperMaxKw: 3, PaperRankScore: 0.17},
		{ID: "QM4", Dataset: "mondial", Terms: []string{"Chinese", "Thai", "Muslim", "Buddhism", "Christianity", "Hinduism", "Orthodox", "Catholic"},
			PaperGKS1: 116, PaperGKSHalf: 3, PaperSLCA: 0, PaperMaxKw: 6, PaperRankScore: 1},
		{ID: "QI1", Dataset: "interpro", Terms: []string{"Kringle", "Domain"},
			PaperGKS1: 8170, PaperGKSHalf: -1, PaperSLCA: 8, PaperMaxKw: 2, PaperRankScore: 0.893},
		{ID: "QI2", Dataset: "interpro", Terms: []string{"Publication", "2002", "Science"},
			PaperGKS1: 2517, PaperGKSHalf: 2517, PaperSLCA: 281, PaperMaxKw: 3, PaperRankScore: 1},
	}
}

// HybridAuthors returns the §7.6 hybrid query terms: the first two authors
// co-occur only in DBLP <inproceedings>, the last two only in SIGMOD
// Record <article> nodes.
func HybridAuthors() []string {
	return []string{authMeynadier, authBehm, authRowe, authStonebraker}
}

// RefinementAuthors returns the §7.4 walk-through names: the original QD1
// pair plus the DI-suggested co-author.
func RefinementAuthors() (georgakopoulos, morrison, rusinkiewicz string) {
	return authGeorgakopoulos, authMorrison, authRusinkiewicz
}
