package datagen

import (
	"fmt"
	"math/rand"

	"repro/internal/xmltree"
)

// Plant describes a deliberately placed group of bibliography entries whose
// author set is exactly Authors. The Table 7/8 experiments use plants to
// recreate the ground truth behind the paper's named queries (e.g. QD2:
// five joint articles by three of the four query authors and none with the
// fourth).
type Plant struct {
	// Authors is the exact author set of each planted entry.
	Authors []string
	// Count is how many such entries to plant.
	Count int
	// Venue, if set, forces the venue value (booktitle/journal).
	Venue string
	// Year, if set, forces the year value.
	Year string
	// ExtraAuthors adds this many synthetic co-authors to each planted
	// entry (the paper's fifth joint QD2 article ranks lower "due to many
	// co-authors").
	ExtraAuthors int
}

// BibConfig configures the flat DBLP-like bibliography generator.
type BibConfig struct {
	Config
	// Entries is the number of background entries per scale unit
	// (default 1200).
	Entries int
	// Plants lists the planted entry groups.
	Plants []Plant
	// DupFraction is the fraction of background entries (0..1) emitted as
	// exact copies of an earlier entry — same authors, title, year, venue
	// and pages, so the whole <inproceedings> subtree is structurally and
	// textually identical. Real DBLP dumps repeat entries across mirrored
	// streams; the knob lets the DAG-compression experiment sweep dedup
	// ratios instead of relying on whatever collisions the random pools
	// produce. 0 (the default) keeps the historical output byte-identical.
	DupFraction float64
}

var venues = []string{
	"VLDB", "SIGMOD Conference", "ICDE", "EDBT", "PODS", "CIKM", "WWW",
	"KDD", "ICDM", "SIGIR", "TKDE", "TODS", "VLDB Journal", "ICPP",
	"SIGMOD Record", "JACM", "TCS", "IBM Research Report", "ICCD",
}

// DBLP generates a flat DBLP-shaped bibliography:
//
//	<dblp>
//	  <inproceedings>
//	    <author>..</author>+ <title>..</title> <year>..</year>
//	    <booktitle>..</booktitle> <pages>..</pages>
//	  </inproceedings>*
//	</dblp>
//
// Multi-author entries are entity nodes (repeating <author> + attribute
// <title>); single-author entries classify as connecting nodes, matching
// the paper's §7.2 observation about DBLP.
func DBLP(cfg BibConfig) *xmltree.Document {
	rng := cfg.rng()
	entries := cfg.Entries
	if entries <= 0 {
		entries = 1200
	}
	entries *= cfg.scale()

	root := xmltree.E("dblp")
	// bibEntry captures every value of an emitted entry so DupFraction can
	// replay exact copies (identical subtree shape and text).
	type bibEntry struct {
		authors                   []string
		title, year, venue, pages string
	}
	emit := func(e bibEntry) {
		n := xmltree.E("inproceedings")
		for _, a := range e.authors {
			n.Append(xmltree.ET("author", a))
		}
		n.Append(xmltree.ET("title", e.title))
		n.Append(xmltree.ET("year", e.year))
		n.Append(xmltree.ET("booktitle", e.venue))
		n.Append(xmltree.ET("pages", e.pages))
		root.Append(n)
	}
	var history []bibEntry
	appendEntry := func(authors []string, venue, year string) {
		e := bibEntry{
			authors: authors,
			title:   title(rng, 4+rng.Intn(4)),
			year:    year,
			venue:   venue,
			pages:   fmt.Sprintf("%d-%d", 100+rng.Intn(400), 500+rng.Intn(400)),
		}
		history = append(history, e)
		emit(e)
	}

	// Background entries. A DupFraction slice of them replays an earlier
	// original entry verbatim; duplicates never enter history, so chains
	// of copies all point at original entries.
	for i := 0; i < entries; i++ {
		if cfg.DupFraction > 0 && len(history) > 0 && rng.Float64() < cfg.DupFraction {
			emit(history[rng.Intn(len(history))])
			continue
		}
		n := 1 + rng.Intn(4)
		authors := make([]string, n)
		for j := range authors {
			authors[j] = personName(rng)
		}
		appendEntry(authors, venues[rng.Intn(len(venues))], fmt.Sprintf("%d", 1985+rng.Intn(30)))
	}

	// Planted entries.
	for _, p := range cfg.Plants {
		for i := 0; i < p.Count; i++ {
			authors := append([]string(nil), p.Authors...)
			for j := 0; j < p.ExtraAuthors; j++ {
				authors = append(authors, personName(rng))
			}
			venue := p.Venue
			if venue == "" {
				venue = venues[rng.Intn(len(venues))]
			}
			year := p.Year
			if year == "" {
				year = fmt.Sprintf("%d", 1985+rng.Intn(30))
			}
			appendEntry(authors, venue, year)
		}
	}

	shuffleChildren(rng, root)
	return xmltree.NewDocument("dblp.xml", 0, root)
}

// SigmodRecord generates the nested SIGMOD Record shape:
//
//	<SigmodRecord>
//	  <issue>
//	    <volume>..</volume> <number>..</number>
//	    <articles>
//	      <article>
//	        <title>..</title> <initPage>..</initPage> <endPage>..</endPage>
//	        <authors> <author>..</author>+ </authors>
//	      </article>+
//	    </articles>
//	  </issue>*
//	</SigmodRecord>
func SigmodRecord(cfg BibConfig) *xmltree.Document {
	rng := cfg.rng()
	entries := cfg.Entries
	if entries <= 0 {
		entries = 600
	}
	entries *= cfg.scale()

	root := xmltree.E("SigmodRecord")
	var curIssue, curArticles *xmltree.Node
	perIssue := 0
	newIssue := func() {
		curIssue = xmltree.E("issue",
			xmltree.ET("volume", fmt.Sprintf("%d", 10+rng.Intn(30))),
			xmltree.ET("number", fmt.Sprintf("%d", 1+rng.Intn(4))),
		)
		curArticles = xmltree.E("articles")
		curIssue.Append(curArticles)
		root.Append(curIssue)
		perIssue = 0
	}
	newIssue()

	appendArticle := func(authors []string) {
		if perIssue >= 8 {
			newIssue()
		}
		perIssue++
		a := xmltree.E("article",
			xmltree.ET("title", title(rng, 5+rng.Intn(4))),
			xmltree.ET("initPage", fmt.Sprintf("%d", 1+rng.Intn(4000))),
			xmltree.ET("endPage", fmt.Sprintf("%d", 4001+rng.Intn(4000))),
		)
		aa := xmltree.E("authors")
		for _, au := range authors {
			aa.Append(xmltree.ET("author", au))
		}
		a.Append(aa)
		curArticles.Append(a)
	}

	for i := 0; i < entries; i++ {
		n := 1 + rng.Intn(3)
		authors := make([]string, n)
		for j := range authors {
			authors[j] = personName(rng)
		}
		appendArticle(authors)
	}
	// Every planted article is hosted in its own fresh issue, flanked by
	// two background articles: distinct plants never share an issue (the
	// paper's authors appear in separate issues of the real SIGMOD
	// Record), and the sibling articles keep <article> repeating so the
	// issue classifies as an entity node.
	for _, p := range cfg.Plants {
		for i := 0; i < p.Count; i++ {
			newIssue()
			appendArticle([]string{personName(rng)})
			authors := append([]string(nil), p.Authors...)
			for j := 0; j < p.ExtraAuthors; j++ {
				authors = append(authors, personName(rng))
			}
			appendArticle(authors)
			appendArticle([]string{personName(rng), personName(rng)})
		}
	}
	return xmltree.NewDocument("sigmod_record.xml", 0, root)
}

// shuffleChildren randomizes the order of root's children so planted
// entries are interleaved with background entries in document order.
func shuffleChildren(rng *rand.Rand, root *xmltree.Node) {
	rng.Shuffle(len(root.Children), func(i, j int) {
		root.Children[i], root.Children[j] = root.Children[j], root.Children[i]
	})
}
