package datagen

import (
	"fmt"

	"repro/internal/xmltree"
)

// XMark generates a simplified XMark auction site (Schmidt et al., VLDB
// 2002) — the standard XML benchmark schema. It is not part of the paper's
// evaluation; it serves as an additional realistic workload for the tools
// and as a cross-check that the categorization model generalizes beyond
// the paper's datasets:
//
//	<site>
//	  <regions> <africa|asia|europe|namerica> <item>…</item>+ </…> </regions>
//	  <categories> <category><name/><description/></category>+ </categories>
//	  <people> <person><name/><emailaddress/><address>…</address></person>+ </people>
//	  <open_auctions> <open_auction><initial/><bidder>…</bidder>*<seller/></open_auction>+ </open_auctions>
//	  <closed_auctions> <closed_auction><seller/><buyer/><price/><date/></closed_auction>+ </closed_auctions>
//	</site>
func XMark(cfg Config) *xmltree.Document {
	rng := cfg.rng()
	people := 150 * cfg.scale()
	items := 120 * cfg.scale()
	auctions := 100 * cfg.scale()

	regions := []string{"africa", "asia", "europe", "namerica"}
	categories := []string{
		"antiques", "books", "coins", "computers", "jewelry", "music",
		"photography", "pottery", "stamps", "toys",
	}

	root := xmltree.E("site")

	regionsNode := xmltree.E("regions")
	regionNodes := make(map[string]*xmltree.Node, len(regions))
	for _, r := range regions {
		n := xmltree.E(r)
		regionNodes[r] = n
		regionsNode.Append(n)
	}
	for i := 0; i < items; i++ {
		item := xmltree.E("item",
			xmltree.ET("location", cityNames[rng.Intn(len(cityNames))]),
			xmltree.ET("name", fmt.Sprintf("%s lot %d", categories[rng.Intn(len(categories))], i)),
			xmltree.ET("payment", "Creditcard"),
			xmltree.ET("description", title(rng, 6+rng.Intn(6))),
		)
		mailbox := xmltree.E("mailbox")
		for j := 0; j < rng.Intn(3); j++ {
			mailbox.Append(xmltree.E("mail",
				xmltree.ET("from", personName(rng)),
				xmltree.ET("to", personName(rng)),
				xmltree.ET("date", fmt.Sprintf("%02d/%02d/%d", 1+rng.Intn(12), 1+rng.Intn(28), 1998+rng.Intn(3))),
			))
		}
		if len(mailbox.Children) > 0 {
			item.Append(mailbox)
		}
		regionNodes[regions[rng.Intn(len(regions))]].Append(item)
	}
	root.Append(regionsNode)

	cats := xmltree.E("categories")
	for _, c := range categories {
		cats.Append(xmltree.E("category",
			xmltree.ET("name", c),
			xmltree.ET("description", title(rng, 5)),
		))
	}
	root.Append(cats)

	ppl := xmltree.E("people")
	for i := 0; i < people; i++ {
		name := personName(rng)
		ppl.Append(xmltree.E("person",
			xmltree.ET("name", name),
			xmltree.ET("emailaddress", fmt.Sprintf("mailto:person%d@example.com", i)),
			xmltree.E("address",
				xmltree.ET("city", cityNames[rng.Intn(len(cityNames))]),
				xmltree.ET("country", countryNames[rng.Intn(len(countryNames))]),
			),
		))
	}
	root.Append(ppl)

	open := xmltree.E("open_auctions")
	for i := 0; i < auctions; i++ {
		a := xmltree.E("open_auction",
			xmltree.ET("initial", fmt.Sprintf("%d.%02d", 1+rng.Intn(300), rng.Intn(100))),
		)
		for j := 0; j < 1+rng.Intn(4); j++ {
			a.Append(xmltree.E("bidder",
				xmltree.ET("date", fmt.Sprintf("%02d/%02d/%d", 1+rng.Intn(12), 1+rng.Intn(28), 1998+rng.Intn(3))),
				xmltree.ET("increase", fmt.Sprintf("%d.%02d", 1+rng.Intn(50), rng.Intn(100))),
			))
		}
		a.Append(xmltree.ET("seller", personName(rng)))
		open.Append(a)
	}
	root.Append(open)

	closed := xmltree.E("closed_auctions")
	for i := 0; i < auctions/2; i++ {
		closed.Append(xmltree.E("closed_auction",
			xmltree.ET("seller", personName(rng)),
			xmltree.ET("buyer", personName(rng)),
			xmltree.ET("price", fmt.Sprintf("%d.%02d", 10+rng.Intn(900), rng.Intn(100))),
			xmltree.ET("date", fmt.Sprintf("%02d/%02d/%d", 1+rng.Intn(12), 1+rng.Intn(28), 1998+rng.Intn(3))),
		))
	}
	root.Append(closed)

	return xmltree.NewDocument("xmark.xml", 0, root)
}
