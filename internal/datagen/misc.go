package datagen

import (
	"fmt"

	"repro/internal/xmltree"
)

// NASA generates the NASA astronomical dataset shape (the paper's §7.1.2
// response-time experiments; average keyword depth ≈ 6.7):
//
//	<datasets>
//	  <dataset>
//	    <title/> <altname/>
//	    <reference><source><other>
//	      <author><initial/><lastname/></author>+
//	      <name/> <publisher/> <city/> <date><year/></date>
//	    </other></source></reference>+
//	    <tableHead><tableLinks><tableLink><title/></tableLink>+</tableLinks></tableHead>
//	  </dataset>*
//	</datasets>
func NASA(cfg Config) *xmltree.Document {
	rng := cfg.rng()
	n := 400 * cfg.scale()

	objects := []string{
		"quasar", "pulsar", "nebula", "supernova", "asteroid", "comet",
		"galaxy", "cluster", "magnetar", "exoplanet",
	}
	surveys := []string{"survey", "catalog", "atlas", "photometry", "spectra"}
	root := xmltree.E("datasets")
	for i := 0; i < n; i++ {
		obj := objects[rng.Intn(len(objects))]
		ds := xmltree.E("dataset",
			xmltree.ET("title", fmt.Sprintf("%s %s %d", obj, surveys[rng.Intn(len(surveys))], i)),
			xmltree.ET("altname", fmt.Sprintf("NASA-%04d", i)),
		)
		for j := 0; j < 1+rng.Intn(2); j++ {
			other := xmltree.E("other")
			for k := 0; k < 1+rng.Intn(3); k++ {
				other.Append(xmltree.E("author",
					xmltree.ET("initial", string(rune('A'+rng.Intn(26)))),
					xmltree.ET("lastname", lastNames[rng.Intn(len(lastNames))]),
				))
			}
			other.Append(xmltree.ET("name", title(rng, 4)))
			other.Append(xmltree.ET("publisher", "Astronomical Data Center"))
			other.Append(xmltree.ET("city", cityNames[rng.Intn(len(cityNames))]))
			other.Append(xmltree.E("date", xmltree.ET("year", fmt.Sprintf("%d", 1970+rng.Intn(40)))))
			ds.Append(xmltree.E("reference", xmltree.E("source", other)))
		}
		links := xmltree.E("tableLinks")
		for j := 0; j < 1+rng.Intn(3); j++ {
			links.Append(xmltree.E("tableLink", xmltree.ET("title", obj+" table "+fmt.Sprint(j))))
		}
		ds.Append(xmltree.E("tableHead", links))
		root.Append(ds)
	}
	return xmltree.NewDocument("nasa.xml", 0, root)
}

// TreeBank generates deep, irregular parse trees like the Penn TreeBank
// dataset (depth 36 in the paper's Table 4 — the deepest dataset).
func TreeBank(cfg Config) *xmltree.Document {
	rng := cfg.rng()
	sentences := 300 * cfg.scale()

	nonterminals := []string{"S", "NP", "VP", "PP", "SBAR", "ADJP", "ADVP", "WHNP"}
	words := []string{
		"market", "stocks", "company", "shares", "trading", "investors",
		"prices", "billion", "quarter", "report", "analysts", "growth",
		"government", "policy", "index", "futures", "earnings", "revenue",
	}
	var grow func(depth, budget int) *xmltree.Node
	grow = func(depth, budget int) *xmltree.Node {
		if budget <= 1 || depth > 30 || rng.Intn(4) == 0 {
			return xmltree.ET("NN", words[rng.Intn(len(words))])
		}
		n := xmltree.E(nonterminals[rng.Intn(len(nonterminals))])
		kids := 1 + rng.Intn(2)
		for i := 0; i < kids; i++ {
			n.Append(grow(depth+1, budget/kids))
		}
		return n
	}
	root := xmltree.E("treebank")
	for i := 0; i < sentences; i++ {
		s := xmltree.E("S")
		s.Append(grow(1, 12))
		s.Append(grow(1, 12))
		root.Append(s)
	}
	return xmltree.NewDocument("treebank.xml", 0, root)
}

// Plays generates a repository of Shakespeare-like plays — the paper notes
// "Shakespeare's plays are distributed over multiple files", exercising the
// multi-document Dewey prefixing:
//
//	<PLAY><TITLE/><PERSONAE><PERSONA/>+</PERSONAE>
//	  <ACT><TITLE/><SCENE><TITLE/><SPEECH><SPEAKER/><LINE/>+</SPEECH>+</SCENE>+</ACT>+
//	</PLAY>
func Plays(cfg Config) *xmltree.Repository {
	rng := cfg.rng()
	nPlays := 3 * cfg.scale()

	speakers := []string{
		"HAMLET", "OPHELIA", "MACBETH", "BANQUO", "ROSALIND", "ORLANDO",
		"PROSPERO", "MIRANDA", "VIOLA", "ORSINO", "LEAR", "CORDELIA",
	}
	lineWords := []string{
		"thou", "art", "night", "light", "sweet", "sorrow", "crown",
		"blood", "ghost", "storm", "love", "fool", "king", "throne",
		"dagger", "sleep", "dream", "morrow",
	}
	repo := &xmltree.Repository{}
	for p := 0; p < nPlays; p++ {
		play := xmltree.E("PLAY", xmltree.ET("TITLE", fmt.Sprintf("The Tragedy of Play %d", p+1)))
		pers := xmltree.E("PERSONAE")
		for i := 0; i < 4; i++ {
			pers.Append(xmltree.ET("PERSONA", speakers[rng.Intn(len(speakers))]))
		}
		play.Append(pers)
		for a := 0; a < 3; a++ {
			act := xmltree.E("ACT", xmltree.ET("TITLE", fmt.Sprintf("ACT %d", a+1)))
			for sc := 0; sc < 2+rng.Intn(2); sc++ {
				scene := xmltree.E("SCENE", xmltree.ET("TITLE", fmt.Sprintf("SCENE %d", sc+1)))
				for sp := 0; sp < 4+rng.Intn(5); sp++ {
					speech := xmltree.E("SPEECH", xmltree.ET("SPEAKER", speakers[rng.Intn(len(speakers))]))
					for l := 0; l < 1+rng.Intn(4); l++ {
						speech.Append(xmltree.ET("LINE", title2(rng.Intn(1<<30), lineWords)))
					}
					scene.Append(speech)
				}
				act.Append(scene)
			}
			play.Append(act)
		}
		repo.Add(xmltree.NewDocument(fmt.Sprintf("play%02d.xml", p+1), 0, play))
	}
	return repo
}

// title2 builds a short line from the given pool, deterministically from n.
func title2(n int, pool []string) string {
	s := ""
	for i := 0; i < 5; i++ {
		if i > 0 {
			s += " "
		}
		s += pool[(n+i*7)%len(pool)]
		n /= 3
	}
	return s
}
