package datagen

import (
	"fmt"

	"repro/internal/xmltree"
)

// Geography pools for the Mondial analog. Real names are kept for the
// values the paper's QM1–QM4 queries mention (Laos, Luxembourg, Bruges,
// religions and languages), so those queries run verbatim.
var (
	countryNames = []string{
		"Laos", "Luxembourg", "Belgium", "Zimbabwe", "Brunei", "Austria",
		"Chile", "Kenya", "Norway", "Peru", "Jordan", "Nepal", "Fiji",
		"Malta", "Ghana", "Cuba", "Iceland", "Qatar", "Benin", "Tonga",
		"Andorra", "Bhutan", "Gabon", "Latvia", "Monaco", "Oman", "Palau",
		"Samoa", "Togo", "Tuvalu",
	}
	religions = []string{
		"Muslim", "Buddhism", "Christianity", "Hinduism", "Orthodox",
		"Catholic", "Protestant", "Jewish", "Sikh", "Taoist",
	}
	languageNames = []string{
		"Polish", "Spanish", "German", "French", "English", "Thai",
		"Chinese", "Arabic", "Hindi", "Swahili", "Dutch", "Portuguese",
	}
	cityNames = []string{
		"Bruges", "Vientiane", "Harare", "Oslo", "Lima", "Amman", "Suva",
		"Valletta", "Accra", "Havana", "Reykjavik", "Doha", "Nadi",
		"Gent", "Antwerp", "Graz", "Linz", "Cusco", "Nakuru", "Thimphu",
	}
)

// Mondial generates a Mondial-3.0-shaped geographic database:
//
//	<mondial>
//	  <country>
//	    <name>..</name> <population>..</population>
//	    <religions> <religion><name/><percentage/></religion>* </religions>
//	    <languages> <language><name/><percentage/></language>* </languages>
//	    <province> <name/> <city><name/><population/></city>+ </province>*
//	  </country>*
//	</mondial>
//
// Every country name, religion, language and city the paper's QM1–QM4
// queries reference is guaranteed to occur.
func Mondial(cfg Config) *xmltree.Document {
	rng := cfg.rng()
	// The real Mondial 3.0 describes 231 countries; the paper's QM1 SLCA
	// answer (98 countries with Muslim populations) fixes the Muslim share
	// at roughly 42%.
	countries := 231 * cfg.scale()

	root := xmltree.E("mondial")
	for i := 0; i < countries; i++ {
		name := fmt.Sprintf("Terra%d", i)
		if i < len(countryNames) {
			name = countryNames[i]
		}
		c := xmltree.E("country",
			xmltree.ET("name", name),
			xmltree.ET("population", fmt.Sprintf("%d", 100000+rng.Intn(90000000))),
			xmltree.ET("population_growth", fmt.Sprintf("%d.%02d", rng.Intn(4), rng.Intn(100))),
		)
		rel := xmltree.E("religions")
		nrel := 1 + rng.Intn(3)
		pct := 100
		for j := 0; j < nrel; j++ {
			p := pct
			if j < nrel-1 {
				p = 10 + rng.Intn(pct-10*(nrel-j-1))
			}
			pct -= p
			religion := religions[rng.Intn(len(religions))]
			if j == 0 && i%7 < 3 {
				religion = "Muslim" // ~43% of countries, matching QM1
			}
			rel.Append(xmltree.E("religion",
				xmltree.ET("name", religion),
				xmltree.ET("percentage", fmt.Sprintf("%d", p)),
			))
		}
		c.Append(rel)
		lang := xmltree.E("languages")
		for j := 0; j < 1+rng.Intn(3); j++ {
			lang.Append(xmltree.E("language",
				xmltree.ET("name", languageNames[rng.Intn(len(languageNames))]),
				xmltree.ET("percentage", fmt.Sprintf("%d", 10+rng.Intn(90))),
			))
		}
		c.Append(lang)
		for j := 0; j < 1+rng.Intn(3); j++ {
			prov := xmltree.E("province",
				xmltree.ET("name", fmt.Sprintf("%s Province %d", name, j+1)),
			)
			for k := 0; k < 1+rng.Intn(3); k++ {
				prov.Append(xmltree.E("city",
					xmltree.ET("name", cityNames[rng.Intn(len(cityNames))]),
					xmltree.ET("population", fmt.Sprintf("%d", 10000+rng.Intn(5000000))),
				))
			}
			c.Append(prov)
		}
		root.Append(c)
	}

	// QM3 ground truth: Belgium holds Bruges, speaks several languages and
	// is largely Catholic; Luxembourg is adjacent in the query. Force one
	// country carrying the co-occurring values.
	belgium := xmltree.E("country",
		xmltree.ET("name", "Belgium Special"),
		xmltree.ET("population", "10200000"),
		xmltree.E("religions",
			xmltree.E("religion", xmltree.ET("name", "Catholic"), xmltree.ET("percentage", "75")),
		),
		xmltree.E("languages",
			xmltree.E("language", xmltree.ET("name", "German"), xmltree.ET("percentage", "1")),
			xmltree.E("language", xmltree.ET("name", "Polish"), xmltree.ET("percentage", "1")),
			xmltree.E("language", xmltree.ET("name", "Spanish"), xmltree.ET("percentage", "1")),
		),
		xmltree.E("province",
			xmltree.ET("name", "West Flanders"),
			xmltree.E("city", xmltree.ET("name", "Bruges"), xmltree.ET("population", "118000")),
		),
	)
	root.Append(belgium)

	// QM4 ground truth: one country carrying six of the eight query
	// keywords (two languages + four religions), matching the paper's
	// "Max keywords in a GKS node = 6" for QM4 and the <name: Brunei
	// Anchor> DI.
	brunei := xmltree.E("country",
		xmltree.ET("name", "Brunei Anchor"),
		xmltree.ET("population", "450000"),
		xmltree.E("religions",
			xmltree.E("religion", xmltree.ET("name", "Muslim"), xmltree.ET("percentage", "67")),
			xmltree.E("religion", xmltree.ET("name", "Buddhism"), xmltree.ET("percentage", "13")),
			xmltree.E("religion", xmltree.ET("name", "Christianity"), xmltree.ET("percentage", "10")),
			xmltree.E("religion", xmltree.ET("name", "Hinduism"), xmltree.ET("percentage", "10")),
		),
		xmltree.E("languages",
			xmltree.E("language", xmltree.ET("name", "Chinese"), xmltree.ET("percentage", "10")),
			xmltree.E("language", xmltree.ET("name", "Thai"), xmltree.ET("percentage", "5")),
		),
		xmltree.E("province",
			xmltree.ET("name", "Brunei-Muara"),
			xmltree.E("city", xmltree.ET("name", "Bandar"), xmltree.ET("population", "100000")),
		),
	)
	root.Append(brunei)
	return xmltree.NewDocument("mondial.xml", 0, root)
}
