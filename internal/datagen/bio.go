package datagen

import (
	"fmt"

	"repro/internal/xmltree"
)

// Biological dataset analogs: InterPro, SwissProt and Protein Sequence.

var proteinFamilies = []string{
	"Kinase", "Phosphatase", "Helicase", "Transferase", "Hydrolase",
	"Isomerase", "Ligase", "Oxidoreductase", "Protease", "Synthase",
}

var entryTypes = []string{"Domain", "Family", "Repeat", "Site", "Motif"}

var taxa = []string{
	"Eukaryota", "Bacteria", "Archaea", "Metazoa", "Viridiplantae",
	"Fungi", "Chordata", "Arthropoda",
}

var journals = []string{
	"Science", "Nature", "Cell", "EMBO Journal", "J Mol Biol",
	"Biochemistry", "FEBS Letters", "Proteins",
}

// InterPro generates an InterPro-shaped protein signature database:
//
//	<interprodb>
//	  <interpro>
//	    <name>..</name> <type>Domain|Family|..</type> <abstract>..</abstract>
//	    <publication> <author_list/> <title/> <year/> <journal/> </publication>*
//	    <taxonomy_distribution> <taxon_data><name/><proteins_count/></taxon_data>+ </taxonomy_distribution>
//	  </interpro>*
//	</interprodb>
//
// Eight entries mention "Kringle" in their name — the paper's QI1 ground
// truth (SLCA returned 8 nodes for {Kringle, Domain}).
func InterPro(cfg Config) *xmltree.Document {
	rng := cfg.rng()
	entries := 500 * cfg.scale()

	root := xmltree.E("interprodb")
	for i := 0; i < entries; i++ {
		name := fmt.Sprintf("%s domain-containing protein %d",
			proteinFamilies[rng.Intn(len(proteinFamilies))], i)
		if i%((entries+7)/8) == 0 {
			// Exactly up to 8 entries carry the Kringle name.
			name = fmt.Sprintf("Kringle domain protein %d", i)
		}
		e := xmltree.E("interpro",
			xmltree.ET("name", name),
			xmltree.ET("type", entryTypes[rng.Intn(len(entryTypes))]),
			xmltree.ET("abstract", title(rng, 8+rng.Intn(8))),
		)
		for j := 0; j < 1+rng.Intn(3); j++ {
			e.Append(xmltree.E("publication",
				xmltree.ET("author_list", personName(rng)+", "+personName(rng)),
				xmltree.ET("title", title(rng, 6)),
				xmltree.ET("year", fmt.Sprintf("%d", 1995+rng.Intn(15))),
				xmltree.ET("journal", journals[rng.Intn(len(journals))]),
			))
		}
		tax := xmltree.E("taxonomy_distribution")
		for j := 0; j < 1+rng.Intn(3); j++ {
			tax.Append(xmltree.E("taxon_data",
				xmltree.ET("name", taxa[rng.Intn(len(taxa))]),
				xmltree.ET("proteins_count", fmt.Sprintf("%d", 1+rng.Intn(500))),
			))
		}
		e.Append(tax)
		root.Append(e)
	}
	return xmltree.NewDocument("interpro.xml", 0, root)
}

// SwissProt generates a SwissProt-shaped protein entry database (depth 8 in
// the paper's Table 4):
//
//	<swissprot>
//	  <Entry>
//	    <AC/> <Mod/> <Descr/> <Species/> <Org/>
//	    <Ref> <Author/>+ <Cite/> </Ref>+
//	    <Keyword/>*
//	    <Features> <DOMAIN><Descr/><From/><To/></DOMAIN>* </Features>
//	  </Entry>*
//	</swissprot>
func SwissProt(cfg Config) *xmltree.Document {
	rng := cfg.rng()
	entries := 700 * cfg.scale()

	kw := []string{
		"Hydrolase", "Kinase", "Transmembrane", "Zinc", "Repeat",
		"Signal", "Glycoprotein", "Membrane", "Nuclear", "Mitochondrion",
	}
	root := xmltree.E("swissprot")
	for i := 0; i < entries; i++ {
		e := xmltree.E("Entry",
			xmltree.ET("AC", fmt.Sprintf("P%05d", i)),
			xmltree.ET("Mod", fmt.Sprintf("%02d-%s-%d", 1+rng.Intn(28), "JAN", 1990+rng.Intn(20))),
			xmltree.ET("Descr", fmt.Sprintf("%s %s", proteinFamilies[rng.Intn(len(proteinFamilies))], title(rng, 3))),
			xmltree.ET("Species", taxa[rng.Intn(len(taxa))]),
			xmltree.ET("Org", taxa[rng.Intn(len(taxa))]),
		)
		for j := 0; j < 1+rng.Intn(3); j++ {
			ref := xmltree.E("Ref")
			for k := 0; k < 1+rng.Intn(3); k++ {
				ref.Append(xmltree.ET("Author", personName(rng)))
			}
			ref.Append(xmltree.ET("Cite", fmt.Sprintf("%s %d:%d-%d",
				journals[rng.Intn(len(journals))], 1+rng.Intn(400), 1+rng.Intn(100), 101+rng.Intn(300))))
			e.Append(ref)
		}
		for j := 0; j < 1+rng.Intn(4); j++ {
			e.Append(xmltree.ET("Keyword", kw[rng.Intn(len(kw))]))
		}
		feats := xmltree.E("Features")
		for j := 0; j < 1+rng.Intn(3); j++ {
			feats.Append(xmltree.E("DOMAIN",
				xmltree.ET("Descr", proteinFamilies[rng.Intn(len(proteinFamilies))]+" domain"),
				xmltree.ET("From", fmt.Sprintf("%d", 1+rng.Intn(200))),
				xmltree.ET("To", fmt.Sprintf("%d", 201+rng.Intn(300))),
			))
		}
		e.Append(feats)
		root.Append(e)
	}
	return xmltree.NewDocument("swissprot.xml", 0, root)
}

// ProteinSequence generates the Protein Sequence Database shape (the
// largest dataset after DBLP in the paper's Table 4):
//
//	<ProteinDatabase>
//	  <ProteinEntry>
//	    <header><uid/><accession/></header>
//	    <protein><name/></protein>
//	    <organism><source/><common/></organism>
//	    <reference><refinfo><authors><author/>+</authors><citation/><year/></refinfo></reference>*
//	    <summary/> <sequence/>
//	  </ProteinEntry>*
//	</ProteinDatabase>
func ProteinSequence(cfg Config) *xmltree.Document {
	rng := cfg.rng()
	entries := 900 * cfg.scale()

	root := xmltree.E("ProteinDatabase")
	bases := []byte("ACDEFGHIKLMNPQRSTVWY")
	for i := 0; i < entries; i++ {
		seq := make([]byte, 30+rng.Intn(40))
		for j := range seq {
			seq[j] = bases[rng.Intn(len(bases))]
		}
		e := xmltree.E("ProteinEntry",
			xmltree.E("header",
				xmltree.ET("uid", fmt.Sprintf("PS%06d", i)),
				xmltree.ET("accession", fmt.Sprintf("A%05d", rng.Intn(100000))),
			),
			xmltree.E("protein",
				xmltree.ET("name", proteinFamilies[rng.Intn(len(proteinFamilies))]+" "+title(rng, 2)),
			),
			xmltree.E("organism",
				xmltree.ET("source", taxa[rng.Intn(len(taxa))]),
				xmltree.ET("common", taxa[rng.Intn(len(taxa))]),
			),
		)
		for j := 0; j < 1+rng.Intn(2); j++ {
			authors := xmltree.E("authors")
			for k := 0; k < 1+rng.Intn(4); k++ {
				authors.Append(xmltree.ET("author", personName(rng)))
			}
			e.Append(xmltree.E("reference",
				xmltree.E("refinfo",
					authors,
					xmltree.ET("citation", journals[rng.Intn(len(journals))]),
					xmltree.ET("year", fmt.Sprintf("%d", 1980+rng.Intn(30))),
				),
			))
		}
		e.Append(xmltree.ET("summary", title(rng, 10)))
		e.Append(xmltree.ET("sequence", string(seq)))
		root.Append(e)
	}
	return xmltree.NewDocument("protein_sequence.xml", 0, root)
}
