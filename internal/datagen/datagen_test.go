package datagen

import (
	"testing"

	"repro/internal/core"
	"repro/internal/index"
	"repro/internal/lca"
	"repro/internal/xmltree"
)

func TestGeneratorsAreDeterministic(t *testing.T) {
	a := DBLP(BibConfig{Config: Config{Seed: 7}})
	b := DBLP(BibConfig{Config: Config{Seed: 7}})
	if a.NodeCount() != b.NodeCount() {
		t.Errorf("same seed produced %d vs %d nodes", a.NodeCount(), b.NodeCount())
	}
	c := DBLP(BibConfig{Config: Config{Seed: 8}})
	if a.NodeCount() == c.NodeCount() {
		t.Log("different seeds produced same node count (possible but unlikely)")
	}
	sizeA, err := xmltree.XMLSize(a)
	if err != nil {
		t.Fatal(err)
	}
	sizeB, err := xmltree.XMLSize(b)
	if err != nil {
		t.Fatal(err)
	}
	if sizeA != sizeB {
		t.Errorf("same seed produced %d vs %d bytes", sizeA, sizeB)
	}
}

func TestScaleGrowsDatasets(t *testing.T) {
	small := Mondial(Config{Seed: 1, Scale: 1})
	big := Mondial(Config{Seed: 1, Scale: 3})
	if big.NodeCount() <= small.NodeCount()*2 {
		t.Errorf("scale 3 (%d nodes) should be ~3x scale 1 (%d nodes)",
			big.NodeCount(), small.NodeCount())
	}
}

func TestDatasetShapes(t *testing.T) {
	cases := []struct {
		name     string
		doc      *xmltree.Document
		minDepth int
	}{
		{"dblp", DBLP(BibConfig{Config: Config{Seed: 1}}), 3},
		{"sigmod", SigmodRecord(BibConfig{Config: Config{Seed: 1}}), 4},
		{"mondial", Mondial(Config{Seed: 1}), 4},
		{"interpro", InterPro(Config{Seed: 1}), 3},
		{"swissprot", SwissProt(Config{Seed: 1}), 3},
		{"protein", ProteinSequence(Config{Seed: 1}), 4},
		{"nasa", NASA(Config{Seed: 1}), 5},
		{"treebank", TreeBank(Config{Seed: 1}), 6},
	}
	for _, c := range cases {
		if got := c.doc.Depth(); got < c.minDepth {
			t.Errorf("%s depth = %d, want >= %d", c.name, got, c.minDepth)
		}
		ix, err := index.BuildDocument(c.doc, index.DefaultOptions())
		if err != nil {
			t.Fatalf("%s: %v", c.name, err)
		}
		if ix.Stats.EntityNodes == 0 && c.name != "treebank" {
			t.Errorf("%s has no entity nodes", c.name)
		}
	}
}

func TestPlaysMultiDocument(t *testing.T) {
	repo := Plays(Config{Seed: 5, Scale: 1})
	if len(repo.Docs) != 3 {
		t.Fatalf("plays = %d documents, want 3", len(repo.Docs))
	}
	ix, err := index.Build(repo, index.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if ix.Stats.Documents != 3 {
		t.Errorf("indexed documents = %d", ix.Stats.Documents)
	}
}

func TestReplicate(t *testing.T) {
	repo := Replicate(func() *xmltree.Document { return SwissProt(Config{Seed: 2}) }, 3)
	if len(repo.Docs) != 3 {
		t.Fatalf("replicate = %d docs", len(repo.Docs))
	}
	if repo.Docs[0].NodeCount() != repo.Docs[2].NodeCount() {
		t.Error("replicas differ")
	}
}

// queryCounts runs a paper query on a built engine and returns GKS result
// counts at s=1 and s=|Q|/2 and the SLCA count.
func queryCounts(t *testing.T, eng *core.Engine, terms []string) (gks1, gksHalf, slcaN, maxKw int) {
	t.Helper()
	q := core.NewQuery(terms...)
	r1, err := eng.Search(q, 1)
	if err != nil {
		t.Fatal(err)
	}
	half, err := eng.Search(q, q.Len()/2)
	if err != nil {
		t.Fatal(err)
	}
	// Table 7 reports SLCA = 0 where "the response of an SLCA technique is
	// either null or document root" (§7.3) — roots are not counted.
	for _, ord := range lca.SLCA(eng.Index(), eng.PostingLists(q)) {
		if len(eng.Index().Nodes[ord].ID.Path) > 1 {
			slcaN++
		}
	}
	for _, res := range r1.Results {
		if res.KeywordCount > maxKw {
			maxKw = res.KeywordCount
		}
	}
	return len(r1.Results), len(half.Results), slcaN, maxKw
}

func TestPaperDBLPGroundTruth(t *testing.T) {
	doc := PaperDBLP(1)
	ix, err := index.BuildDocument(doc, index.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	eng := core.NewEngine(ix)

	for _, pq := range PaperQueries() {
		if pq.Dataset != "dblp" || !pq.Exact {
			continue
		}
		gks1, gksHalf, slcaN, maxKw := queryCounts(t, eng, pq.Terms)
		if gks1 != pq.PaperGKS1 {
			t.Errorf("%s: GKS s=1 = %d, paper %d", pq.ID, gks1, pq.PaperGKS1)
		}
		if pq.PaperGKSHalf >= 0 && gksHalf != pq.PaperGKSHalf {
			t.Errorf("%s: GKS s=|Q|/2 = %d, paper %d", pq.ID, gksHalf, pq.PaperGKSHalf)
		}
		if slcaN != pq.PaperSLCA {
			t.Errorf("%s: SLCA = %d, paper %d", pq.ID, slcaN, pq.PaperSLCA)
		}
		if maxKw != pq.PaperMaxKw {
			t.Errorf("%s: max keywords = %d, paper %d", pq.ID, maxKw, pq.PaperMaxKw)
		}
	}
}

func TestPaperSigmodGroundTruth(t *testing.T) {
	doc := PaperSigmod(1)
	ix, err := index.BuildDocument(doc, index.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	eng := core.NewEngine(ix)

	for _, pq := range PaperQueries() {
		if pq.Dataset != "sigmod" || !pq.Exact {
			continue
		}
		gks1, gksHalf, slcaN, maxKw := queryCounts(t, eng, pq.Terms)
		if gks1 != pq.PaperGKS1 {
			t.Errorf("%s: GKS s=1 = %d, paper %d", pq.ID, gks1, pq.PaperGKS1)
		}
		if pq.PaperGKSHalf >= 0 && gksHalf != pq.PaperGKSHalf {
			t.Errorf("%s: GKS s=|Q|/2 = %d, paper %d", pq.ID, gksHalf, pq.PaperGKSHalf)
		}
		if slcaN != pq.PaperSLCA {
			t.Errorf("%s: SLCA = %d, paper %d", pq.ID, slcaN, pq.PaperSLCA)
		}
		if maxKw != pq.PaperMaxKw {
			t.Errorf("%s: max keywords = %d, paper %d", pq.ID, maxKw, pq.PaperMaxKw)
		}
	}
}

func TestMondialQueryShape(t *testing.T) {
	doc := Mondial(Config{Seed: 44})
	ix, err := index.BuildDocument(doc, index.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	eng := core.NewEngine(ix)
	// QM2: Laos is unique, so {Laos country name} has SLCA = 1.
	q := core.NewQuery("Laos", "country", "name")
	slcas := lca.SLCA(ix, eng.PostingLists(q))
	if len(slcas) != 1 {
		t.Errorf("SLCA(QM2) = %d, want 1 (unique Laos)", len(slcas))
	}
	// QM1 shape: GKS(s=1) far exceeds SLCA.
	qm1 := core.NewQuery("country", "Muslim")
	r1, err := eng.Search(qm1, 1)
	if err != nil {
		t.Fatal(err)
	}
	s := lca.SLCA(ix, eng.PostingLists(qm1))
	if len(r1.Results) <= len(s) {
		t.Errorf("QM1: GKS s=1 (%d) must exceed SLCA (%d)", len(r1.Results), len(s))
	}
	if len(s) == 0 {
		t.Error("QM1 SLCA must be non-empty (countries with Muslim populations exist)")
	}
}

func TestInterProQueryShape(t *testing.T) {
	doc := InterPro(Config{Seed: 45})
	ix, err := index.BuildDocument(doc, index.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	eng := core.NewEngine(ix)
	q := core.NewQuery("Kringle", "Domain")
	slcas := lca.SLCA(ix, eng.PostingLists(q))
	if len(slcas) != 8 {
		t.Errorf("SLCA(QI1) = %d, want 8 Kringle entries", len(slcas))
	}
	r1, err := eng.Search(q, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(r1.Results) <= len(slcas)*10 {
		t.Errorf("QI1: GKS s=1 (%d) should dwarf SLCA (%d), as in the paper", len(r1.Results), len(slcas))
	}
}

func TestXMarkShape(t *testing.T) {
	doc := XMark(Config{Seed: 8})
	ix, err := index.BuildDocument(doc, index.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if ix.Stats.EntityNodes == 0 {
		t.Error("xmark has no entity nodes")
	}
	// person, item, open_auction must all classify as entities (name/attr
	// children + repeating siblings at schema positions).
	eng := core.NewEngine(ix)
	resp, err := eng.Search(core.NewQuery("antiques"), 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(resp.Results) == 0 {
		t.Error("category keyword must match")
	}
	if doc.Depth() < 4 {
		t.Errorf("depth = %d", doc.Depth())
	}
}

func TestExample2RankingClaims(t *testing.T) {
	// Example 2 of the paper: of the five joint Buneman–Fan–Weinstein
	// articles, four are the top-4 results and the fifth (with many extra
	// co-authors) still lands in the top 10.
	ix, err := index.BuildDocument(PaperDBLP(1), index.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	eng := core.NewEngine(ix)
	q := core.NewQuery("Peter Buneman", "Wenfei Fan", "Scott Weinstein", "Prithviraj Banerjee")
	resp, err := eng.Search(q, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(resp.Results) != 234 {
		t.Fatalf("results = %d", len(resp.Results))
	}
	for i := 0; i < 4; i++ {
		if resp.Results[i].KeywordCount != 3 {
			t.Errorf("top-%d result has %d query authors, want 3 (joint article)",
				i+1, resp.Results[i].KeywordCount)
		}
	}
	fifthPos := -1
	for i, r := range resp.Results {
		if i >= 4 && r.KeywordCount == 3 {
			fifthPos = i + 1
			break
		}
	}
	if fifthPos < 5 || fifthPos > 10 {
		t.Errorf("fifth joint article at position %d, want within top 10", fifthPos)
	}
	// "ranked lower due to many co-authors": it must not be in the top 4.
	if fifthPos <= 4 {
		t.Errorf("crowded joint article ranked too high: %d", fifthPos)
	}
}
