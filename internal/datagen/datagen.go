// Package datagen generates the synthetic XML repositories used to
// reproduce the paper's evaluation (Agarwal et al., EDBT 2016, §7).
//
// The paper evaluates GKS on real downloads from the University of
// Washington XML repository (DBLP, SIGMOD Record, Mondial, InterPro,
// SwissProt, Protein Sequence, NASA, TreeBank and Shakespeare's plays).
// Those files are not available offline, so this package substitutes
// deterministic generators that replicate each dataset's *schema shape* —
// element vocabulary, nesting depth, fan-out, repeating/attribute-node
// structure and keyword co-occurrence patterns — at a configurable scale.
// The GKS algorithms depend only on tree shape, Dewey order and
// posting-list statistics, all of which the generators preserve; see
// DESIGN.md §3 for the substitution argument.
//
// Generators are fully deterministic for a given Config, so experiment and
// test results are reproducible.
package datagen

import (
	"fmt"
	"math/rand"

	"repro/internal/xmltree"
)

// Config controls dataset generation.
type Config struct {
	// Seed drives all pseudo-randomness; equal configs generate equal
	// documents.
	Seed int64
	// Scale multiplies the number of top-level entities (articles,
	// countries, proteins, ...). Scale 1 produces test-sized documents of
	// a few thousand elements; the benchmark harness raises it.
	Scale int
}

func (c Config) scale() int {
	if c.Scale < 1 {
		return 1
	}
	return c.Scale
}

func (c Config) rng() *rand.Rand { return rand.New(rand.NewSource(c.Seed)) }

// firstNames and lastNames seed the synthetic author/person pools.
var firstNames = []string{
	"Ada", "Alan", "Barbara", "Carl", "Dana", "Edgar", "Fran", "Grace",
	"Hector", "Irene", "Jim", "Kate", "Leslie", "Miguel", "Nina", "Oscar",
	"Priya", "Quentin", "Rosa", "Sam", "Tanya", "Umberto", "Vera", "Walter",
	"Xena", "Yuri", "Zelda",
}

var lastNames = []string{
	"Adams", "Brown", "Chen", "Dietrich", "Evans", "Fischer", "Garcia",
	"Hansen", "Ivanov", "Jones", "Kim", "Larson", "Moreau", "Nakamura",
	"Olsen", "Patel", "Quinn", "Rivera", "Schmidt", "Tanaka", "Ueda",
	"Valdez", "Weber", "Xu", "Young", "Zhang",
}

// personName returns a deterministic synthetic full name.
func personName(rng *rand.Rand) string {
	return firstNames[rng.Intn(len(firstNames))] + " " + lastNames[rng.Intn(len(lastNames))]
}

var titleWords = []string{
	"efficient", "keyword", "search", "over", "semistructured", "data",
	"indexing", "ranking", "queries", "streams", "adaptive", "parallel",
	"transactions", "recovery", "optimization", "views", "schema",
	"integration", "mining", "graphs", "learning", "storage", "columnar",
	"distributed", "consistency", "replication",
}

// title returns a deterministic pseudo-title of n words.
func title(rng *rand.Rand, n int) string {
	s := ""
	for i := 0; i < n; i++ {
		if i > 0 {
			s += " "
		}
		s += titleWords[rng.Intn(len(titleWords))]
	}
	return s
}

// Replicate builds a repository holding n copies of the document — the
// paper's Figure 10 scalability setup ("we replicated the SwissProt dataset
// to create three datasets"). Each copy is regenerated so values stay
// identical while Dewey document ids differ.
func Replicate(gen func() *xmltree.Document, n int) *xmltree.Repository {
	repo := &xmltree.Repository{}
	for i := 0; i < n; i++ {
		d := gen()
		d.Name = fmt.Sprintf("%s#%d", d.Name, i)
		repo.Add(d)
	}
	return repo
}

// Repo wraps a single generated document in a repository.
func Repo(doc *xmltree.Document) *xmltree.Repository {
	repo := &xmltree.Repository{}
	repo.Add(doc)
	return repo
}
