package rank

import (
	"math"
	"testing"

	"repro/internal/dewey"
	"repro/internal/index"
	"repro/internal/merge"
	"repro/internal/xmltree"
)

func build(t *testing.T, doc *xmltree.Document) *index.Index {
	t.Helper()
	ix, err := index.BuildDocument(doc, index.Options{IndexElementNames: false})
	if err != nil {
		t.Fatal(err)
	}
	return ix
}

// entriesFor builds S_L-style instances for the given keyword → posting map
// restricted to the subtree of root.
func entriesFor(ix *index.Index, root int32, lists [][]int32) []merge.Entry {
	sl := merge.Merge(lists)
	start, end := ix.SubtreeRange(root)
	lo, hi := merge.OrdRange(sl, start, end)
	return sl[lo:hi]
}

func TestExample5Arithmetic(t *testing.T) {
	// Direct re-check of Example 5 at the scorer level (the engine-level
	// check lives in the core package).
	ix := build(t, xmltree.BuildFigure1())
	s := Scorer{IX: ix}
	lists := [][]int32{
		ix.Lookup("alpha"),
		ix.Lookup("beta"),
		ix.Lookup("gamma"),
		ix.Lookup("delta"),
	}
	cases := []struct {
		dewey string
		mask  uint64
		want  float64
	}{
		{"0.0.0.3", 0b0111, 3.0}, // x2: three terminals, three children
		{"0.0.1", 0b1011, 2.5},   // x3: a,b direct + d through x4
		{"0.0.1.2", 0b1001, 2.0}, // x4: two terminals, two children
	}
	for _, c := range cases {
		ord, ok := ix.OrdinalOf(mustID(t, c.dewey))
		if !ok {
			t.Fatalf("node %s missing", c.dewey)
		}
		got := s.Score(ord, c.mask, entriesFor(ix, ord, lists))
		if math.Abs(got-c.want) > 1e-9 {
			t.Errorf("Score(%s) = %v, want %v", c.dewey, got, c.want)
		}
	}
}

func TestTerminalAtRootReceivesFullPotential(t *testing.T) {
	doc := xmltree.NewDocument("r", 0, xmltree.E("root",
		xmltree.T("apple"),
		xmltree.E("c", xmltree.T("pear")),
	))
	ix := build(t, doc)
	s := Scorer{IX: ix}
	lists := [][]int32{ix.Lookup("apple"), ix.Lookup("pear")}
	root := int32(0)
	got := s.Score(root, 0b11, entriesFor(ix, root, lists))
	// apple sits at the root itself (full potential 2); pear at child c of
	// a 2-child root: 2/2 = 1.
	if math.Abs(got-3.0) > 1e-9 {
		t.Errorf("Score = %v, want 3.0", got)
	}
}

func TestMultipleTerminalsAtSameHighestLevel(t *testing.T) {
	// Keyword occurring twice at the highest level: both occurrences are
	// terminal points (§5).
	doc := xmltree.NewDocument("m", 0, xmltree.E("root",
		xmltree.ET("v", "apple"),
		xmltree.ET("v", "apple"),
		xmltree.E("deep", xmltree.ET("v", "apple")),
	))
	ix := build(t, doc)
	s := Scorer{IX: ix}
	lists := [][]int32{ix.Lookup("apple")}
	got := s.Score(0, 0b1, entriesFor(ix, 0, lists))
	// P = 1; two terminals at depth 1 each receive 1/3 (root has 3
	// children); the deeper occurrence is not terminal.
	if math.Abs(got-2.0/3.0) > 1e-9 {
		t.Errorf("Score = %v, want 2/3", got)
	}
}

func TestHigherOccurrenceShadowsDeeper(t *testing.T) {
	doc := xmltree.NewDocument("h", 0, xmltree.E("root",
		xmltree.ET("v", "apple"),
		xmltree.E("mid", xmltree.ET("v", "apple"), xmltree.ET("w", "pear")),
	))
	ix := build(t, doc)
	s := Scorer{IX: ix}
	lists := [][]int32{ix.Lookup("apple"), ix.Lookup("pear")}
	got := s.Score(0, 0b11, entriesFor(ix, 0, lists))
	// apple terminal at depth 1: 2/2 = 1; pear at depth 2 under mid (2
	// children): 2/(2*2) = 0.5.
	if math.Abs(got-1.5) > 1e-9 {
		t.Errorf("Score = %v, want 1.5", got)
	}
}

func TestZeroMask(t *testing.T) {
	ix := build(t, xmltree.BuildFigure1())
	s := Scorer{IX: ix}
	if got := s.Score(0, 0, nil); got != 0 {
		t.Errorf("Score with empty mask = %v, want 0", got)
	}
}

func TestRankIndependentOfAbsoluteDepth(t *testing.T) {
	// §7.6: entity nodes are ranked by keyword count and distribution, not
	// by their depth below the document root. Wrap the same subtree deeper
	// and verify the score is unchanged.
	leafy := func() *xmltree.Node {
		return xmltree.E("box",
			xmltree.ET("v", "apple"),
			xmltree.ET("v", "pear"),
		)
	}
	shallow := xmltree.NewDocument("s", 0, xmltree.E("root", leafy()))
	deep := xmltree.NewDocument("d", 0, xmltree.E("root",
		xmltree.E("l1", xmltree.E("l2", xmltree.E("l3", leafy())))))

	score := func(doc *xmltree.Document) float64 {
		ix := build(t, doc)
		var box int32 = -1
		for ord := range ix.Nodes {
			if ix.LabelOf(int32(ord)) == "box" {
				box = int32(ord)
			}
		}
		if box < 0 {
			t.Fatal("box not found")
		}
		lists := [][]int32{ix.Lookup("apple"), ix.Lookup("pear")}
		return Scorer{IX: ix}.Score(box, 0b11, entriesFor(ix, box, lists))
	}
	if a, b := score(shallow), score(deep); math.Abs(a-b) > 1e-9 {
		t.Errorf("depth changed the score: %v vs %v", a, b)
	}
}

func mustID(t *testing.T, s string) dewey.ID {
	t.Helper()
	return dewey.MustParse(s)
}
