// Package rank implements the potential-flow ranking model of GKS
// (Agarwal et al., EDBT 2016, §5).
//
// Each candidate node e receives an initial potential P|e equal to the
// number of distinct query keywords in its subtree. The potential flows
// from e toward the leaves, dividing equally among the direct children at
// every node. The rank of e is the total potential received by its
// terminal points — the highest (shallowest) occurrence(s) of each query
// keyword in e's subtree; if a keyword occurs several times at its highest
// level, every such occurrence is a terminal point.
//
// The model makes a node's rank depend only on how many query keywords its
// subtree holds and how tightly the subtree packs them — never on the
// node's absolute depth in the document (verified by the paper's hybrid
// query experiment, §7.6).
package rank

import (
	"math/bits"

	"repro/internal/index"
	"repro/internal/merge"
)

// Scorer ranks nodes against a built index.
type Scorer struct {
	// IX is the index whose node table supplies Dewey depths, parent links
	// and the direct-child counts stored in the entity/element hashes.
	IX *index.Index
}

// Score computes the rank of the node at ordinal root. mask is the set of
// distinct query keywords in root's subtree and instances lists every
// keyword instance (S_L entries) within the subtree.
func (s Scorer) Score(root int32, mask uint64, instances []merge.Entry) float64 {
	p := float64(bits.OnesCount64(mask))
	if p == 0 {
		return 0
	}
	// Group instances by keyword, find each keyword's highest level, and
	// accumulate the potential received by every terminal point.
	total := 0.0
	for m := mask; m != 0; m &= m - 1 {
		kw := uint8(bits.TrailingZeros64(m))
		minDepth := -1
		for _, inst := range instances {
			if inst.Kw != kw {
				continue
			}
			d := int(s.IX.DepthOf(inst.Ord))
			if minDepth < 0 || d < minDepth {
				minDepth = d
			}
		}
		if minDepth < 0 {
			continue
		}
		for _, inst := range instances {
			if inst.Kw != kw || int(s.IX.DepthOf(inst.Ord)) != minDepth {
				continue
			}
			total += s.flow(root, inst.Ord, p)
		}
	}
	return total
}

// flow returns the potential a terminal at ordinal t receives from root:
// p divided by the direct-child counts of every node on the path from root
// down to t's parent.
func (s Scorer) flow(root, t int32, p float64) float64 {
	f := p
	for cur := t; cur != root; {
		parent := s.IX.ParentOf(cur)
		if parent < 0 {
			return 0 // t not in root's subtree; defensive
		}
		if cc := s.IX.ChildCountOf(parent); cc > 0 {
			f /= float64(cc)
		}
		cur = parent
	}
	return f
}
