package textproc

import "testing"

func BenchmarkStem(b *testing.B) {
	words := []string{"relational", "troubled", "databases", "sensibiliti", "running", "keyword"}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		Stem(words[i%len(words)])
	}
}

func BenchmarkNormalize(b *testing.B) {
	const text = "The Design and Implementation of Generic Keyword Search over Semistructured Data Collections"
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if got := Normalize(text); len(got) == 0 {
			b.Fatal("empty")
		}
	}
}
