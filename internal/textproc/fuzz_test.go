package textproc

import (
	"testing"
)

// FuzzNormalize checks that the text pipeline never panics and that its
// output obeys the index invariants: lower-case tokens, no stop words, no
// empty strings.
func FuzzNormalize(f *testing.F) {
	seeds := []string{
		"", "Data Mining", "The quick brown fox", "2001: A Space Odyssey",
		"naïve café", "ALL CAPS TEXT", "mixed123alnum", "---", "a b c",
		"running runner ran", "\x00\x01\x02",
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, input string) {
		for _, tok := range Normalize(input) {
			if tok == "" {
				t.Fatal("empty token")
			}
			if IsStopword(tok) && Stem(tok) == tok {
				// A stop word may appear only if stemming produced it from
				// a non-stop word (e.g. "hi" forms); the raw form is fine.
				_ = tok
			}
			for _, r := range tok {
				// ASCII must be lower-cased; some Unicode letters have no
				// lower-case mapping and may remain in the Upper category.
				if r >= 'A' && r <= 'Z' {
					t.Fatalf("upper-case ASCII rune in token %q", tok)
				}
			}
		}
	})
}

// FuzzStem checks the Porter stemmer terminates and never grows a word.
func FuzzStem(f *testing.F) {
	for _, s := range []string{"", "a", "running", "caresses", "sensibiliti",
		"oscillate", "yyyy", "bbbb", "zzzzing"} {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, word string) {
		out := Stem(word)
		if len(out) > len(word) && len(word) > 2 {
			// Steps 1b may append 'e' (e.g. "fil"+"ing" -> "file"), so the
			// stem can exceed the *stemmed suffix* but never the input.
			t.Fatalf("Stem(%q) = %q grew beyond input", word, out)
		}
	})
}
