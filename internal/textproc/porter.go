package textproc

// Porter stemming algorithm (M.F. Porter, "An algorithm for suffix
// stripping", Program 14(3), 1980), implemented from the original paper's
// rule tables. Only lower-case ASCII words are stemmed; tokens containing
// digits or non-ASCII runes are returned unchanged, which keeps years
// ("2001") and identifiers stable in the index.

// Stem returns the Porter stem of a lower-case word.
func Stem(word string) string {
	if len(word) <= 2 {
		return word
	}
	for i := 0; i < len(word); i++ {
		if word[i] < 'a' || word[i] > 'z' {
			return word
		}
	}
	w := []byte(word)
	w = step1a(w)
	w = step1b(w)
	w = step1c(w)
	w = step2(w)
	w = step3(w)
	w = step4(w)
	w = step5a(w)
	w = step5b(w)
	return string(w)
}

// isCons reports whether w[i] is a consonant in Porter's sense: a letter
// other than a,e,i,o,u, and 'y' preceded by a consonant counts as a vowel.
func isCons(w []byte, i int) bool {
	switch w[i] {
	case 'a', 'e', 'i', 'o', 'u':
		return false
	case 'y':
		if i == 0 {
			return true
		}
		return !isCons(w, i-1)
	}
	return true
}

// measure computes m, the number of VC sequences in w[:k].
func measure(w []byte) int {
	m := 0
	i := 0
	n := len(w)
	// Skip initial consonants.
	for i < n && isCons(w, i) {
		i++
	}
	for i < n {
		// In vowel run.
		for i < n && !isCons(w, i) {
			i++
		}
		if i >= n {
			break
		}
		m++
		for i < n && isCons(w, i) {
			i++
		}
	}
	return m
}

func hasVowel(w []byte) bool {
	for i := range w {
		if !isCons(w, i) {
			return true
		}
	}
	return false
}

// endsDoubleCons reports whether w ends with a double consonant (*d).
func endsDoubleCons(w []byte) bool {
	n := len(w)
	return n >= 2 && w[n-1] == w[n-2] && isCons(w, n-1)
}

// endsCVC reports *o: stem ends cvc where the final c is not w, x or y.
func endsCVC(w []byte) bool {
	n := len(w)
	if n < 3 {
		return false
	}
	if !isCons(w, n-3) || isCons(w, n-2) || !isCons(w, n-1) {
		return false
	}
	switch w[n-1] {
	case 'w', 'x', 'y':
		return false
	}
	return true
}

func hasSuffix(w []byte, s string) bool {
	if len(w) < len(s) {
		return false
	}
	return string(w[len(w)-len(s):]) == s
}

// replace swaps suffix old for new if the stem (w without old) has measure
// > threshold. It reports whether old matched (regardless of replacement).
func replace(w *[]byte, old, new string, threshold int) bool {
	if !hasSuffix(*w, old) {
		return false
	}
	stem := (*w)[:len(*w)-len(old)]
	if measure(stem) > threshold {
		*w = append(stem, new...)
	}
	return true
}

func step1a(w []byte) []byte {
	switch {
	case hasSuffix(w, "sses"):
		return w[:len(w)-2] // sses -> ss
	case hasSuffix(w, "ies"):
		return w[:len(w)-2] // ies -> i
	case hasSuffix(w, "ss"):
		return w // ss -> ss
	case hasSuffix(w, "s"):
		return w[:len(w)-1] // s ->
	}
	return w
}

func step1b(w []byte) []byte {
	if hasSuffix(w, "eed") {
		if measure(w[:len(w)-3]) > 0 {
			return w[:len(w)-1] // eed -> ee
		}
		return w
	}
	matched := false
	if hasSuffix(w, "ed") && hasVowel(w[:len(w)-2]) {
		w = w[:len(w)-2]
		matched = true
	} else if hasSuffix(w, "ing") && hasVowel(w[:len(w)-3]) {
		w = w[:len(w)-3]
		matched = true
	}
	if !matched {
		return w
	}
	switch {
	case hasSuffix(w, "at"), hasSuffix(w, "bl"), hasSuffix(w, "iz"):
		return append(w, 'e')
	case endsDoubleCons(w) && !hasSuffix(w, "l") && !hasSuffix(w, "s") && !hasSuffix(w, "z"):
		return w[:len(w)-1]
	case measure(w) == 1 && endsCVC(w):
		return append(w, 'e')
	}
	return w
}

func step1c(w []byte) []byte {
	if hasSuffix(w, "y") && hasVowel(w[:len(w)-1]) {
		w[len(w)-1] = 'i'
	}
	return w
}

var step2Rules = []struct{ old, new string }{
	{"ational", "ate"}, {"tional", "tion"}, {"enci", "ence"}, {"anci", "ance"},
	{"izer", "ize"}, {"abli", "able"}, {"alli", "al"}, {"entli", "ent"},
	{"eli", "e"}, {"ousli", "ous"}, {"ization", "ize"}, {"ation", "ate"},
	{"ator", "ate"}, {"alism", "al"}, {"iveness", "ive"}, {"fulness", "ful"},
	{"ousness", "ous"}, {"aliti", "al"}, {"iviti", "ive"}, {"biliti", "ble"},
}

func step2(w []byte) []byte {
	for _, r := range step2Rules {
		if replace(&w, r.old, r.new, 0) {
			return w
		}
	}
	return w
}

var step3Rules = []struct{ old, new string }{
	{"icate", "ic"}, {"ative", ""}, {"alize", "al"}, {"iciti", "ic"},
	{"ical", "ic"}, {"ful", ""}, {"ness", ""},
}

func step3(w []byte) []byte {
	for _, r := range step3Rules {
		if replace(&w, r.old, r.new, 0) {
			return w
		}
	}
	return w
}

var step4Suffixes = []string{
	"al", "ance", "ence", "er", "ic", "able", "ible", "ant", "ement",
	"ment", "ent", "ion", "ou", "ism", "ate", "iti", "ous", "ive", "ize",
}

func step4(w []byte) []byte {
	for _, s := range step4Suffixes {
		if !hasSuffix(w, s) {
			continue
		}
		stem := w[:len(w)-len(s)]
		if measure(stem) <= 1 {
			return w
		}
		if s == "ion" {
			n := len(stem)
			if n == 0 || (stem[n-1] != 's' && stem[n-1] != 't') {
				return w
			}
		}
		return stem
	}
	return w
}

func step5a(w []byte) []byte {
	if !hasSuffix(w, "e") {
		return w
	}
	stem := w[:len(w)-1]
	m := measure(stem)
	if m > 1 || (m == 1 && !endsCVC(stem)) {
		return stem
	}
	return w
}

func step5b(w []byte) []byte {
	if measure(w) > 1 && endsDoubleCons(w) && hasSuffix(w, "ll") {
		return w[:len(w)-1]
	}
	return w
}
