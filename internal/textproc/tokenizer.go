// Package textproc implements the text pipeline of the GKS indexing engine
// (Agarwal et al., EDBT 2016, §2.4): tokenization, stop-word removal and
// stemming. The paper specifies that "a separate index entry is created for
// each of the keywords after stop words removal and stemming"; this package
// provides exactly that normalization, shared by the indexer and the query
// processor so query keywords and indexed keywords agree.
package textproc

import (
	"strings"
	"unicode"
)

// Tokenize splits s into lower-cased word tokens. Letters and digits form
// tokens; everything else separates tokens. Tokens keep internal digits
// ("2001", "vldb09") so year- and id-like keywords remain searchable.
func Tokenize(s string) []string {
	var tokens []string
	start := -1
	flush := func(end int) {
		if start >= 0 {
			tokens = append(tokens, strings.ToLower(s[start:end]))
			start = -1
		}
	}
	for i, r := range s {
		if unicode.IsLetter(r) || unicode.IsDigit(r) {
			if start < 0 {
				start = i
			}
			continue
		}
		flush(i)
	}
	flush(len(s))
	return tokens
}

// stopwords is a compact English stop-word list. The paper does not publish
// its list; this one covers the classic closed-class words that would
// otherwise dominate the inverted index.
var stopwords = map[string]bool{
	"a": true, "an": true, "and": true, "are": true, "as": true, "at": true,
	"be": true, "but": true, "by": true, "for": true, "from": true,
	"has": true, "have": true, "he": true, "her": true, "his": true,
	"i": true, "if": true, "in": true, "into": true, "is": true, "it": true, "its": true,
	"no": true, "not": true, "of": true, "on": true, "or": true, "our": true,
	"she": true, "so": true, "such": true, "that": true, "the": true,
	"their": true, "then": true, "there": true, "these": true, "they": true,
	"this": true, "to": true, "was": true, "we": true, "were": true,
	"which": true, "will": true, "with": true, "you": true,
}

// IsStopword reports whether the lower-cased token is a stop word.
func IsStopword(tok string) bool { return stopwords[tok] }

// Normalize runs the full pipeline on raw text: tokenize, drop stop words,
// stem. The result is the list of index keywords for the text, in order of
// appearance (duplicates preserved; the indexer dedups per node).
func Normalize(s string) []string {
	toks := Tokenize(s)
	out := toks[:0]
	for _, t := range toks {
		if IsStopword(t) {
			continue
		}
		out = append(out, Stem(t))
	}
	return out
}

// NormalizeKeyword normalizes a single query keyword (one token). It
// lower-cases and stems but does not drop stop words, so that a user
// explicitly searching for a stop word still gets a well-defined (empty)
// posting lookup rather than a silently altered query.
func NormalizeKeyword(s string) string {
	toks := Tokenize(s)
	if len(toks) == 0 {
		return ""
	}
	return Stem(toks[0])
}
