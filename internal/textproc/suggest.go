package textproc

// Did-you-mean suggestions: nearest indexed keywords by Damerau-ish edit
// distance, used when a query keyword has an empty posting list. Classic
// search-frontend behavior; the vocabulary scan is linear but vocabularies
// are small relative to corpora (distinct stemmed terms).

// Suggestion pairs a candidate keyword with its edit distance and corpus
// frequency.
type Suggestion struct {
	Keyword  string
	Distance int
	Count    int
}

// Suggest returns the vocabulary terms within maxDist edits of the
// normalized input, best first (smaller distance, then higher count, then
// alphabetical). vocab maps normalized keywords to their posting counts.
func Suggest(input string, vocab map[string]int, maxDist, topK int) []Suggestion {
	norm := NormalizeKeyword(input)
	if norm == "" || maxDist <= 0 {
		return nil
	}
	var out []Suggestion
	for kw, count := range vocab {
		if kw == norm {
			continue
		}
		// Cheap length filter before the DP.
		if diff := len(kw) - len(norm); diff > maxDist || -diff > maxDist {
			continue
		}
		if d := BoundedEditDistance(norm, kw, maxDist); d <= maxDist {
			out = append(out, Suggestion{Keyword: kw, Distance: d, Count: count})
		}
	}
	sortSuggestions(out)
	if topK > 0 && len(out) > topK {
		out = out[:topK]
	}
	return out
}

func sortSuggestions(s []Suggestion) {
	for i := 1; i < len(s); i++ {
		for j := i; j > 0 && lessSuggestion(s[j], s[j-1]); j-- {
			s[j], s[j-1] = s[j-1], s[j]
		}
	}
}

func lessSuggestion(a, b Suggestion) bool {
	if a.Distance != b.Distance {
		return a.Distance < b.Distance
	}
	if a.Count != b.Count {
		return a.Count > b.Count
	}
	return a.Keyword < b.Keyword
}

// BoundedEditDistance computes the Levenshtein distance between a and b,
// with adjacent transpositions counting as one edit, returning bound+1 as
// soon as the distance provably exceeds bound.
func BoundedEditDistance(a, b string, bound int) int {
	if a == b {
		return 0
	}
	la, lb := len(a), len(b)
	if la-lb > bound || lb-la > bound {
		return bound + 1
	}
	prev2 := make([]int, lb+1)
	prev := make([]int, lb+1)
	cur := make([]int, lb+1)
	for j := 0; j <= lb; j++ {
		prev[j] = j
	}
	for i := 1; i <= la; i++ {
		cur[0] = i
		rowMin := cur[0]
		for j := 1; j <= lb; j++ {
			cost := 1
			if a[i-1] == b[j-1] {
				cost = 0
			}
			v := min3(prev[j]+1, cur[j-1]+1, prev[j-1]+cost)
			if i > 1 && j > 1 && a[i-1] == b[j-2] && a[i-2] == b[j-1] {
				if t := prev2[j-2] + 1; t < v {
					v = t
				}
			}
			cur[j] = v
			if v < rowMin {
				rowMin = v
			}
		}
		if rowMin > bound {
			return bound + 1
		}
		prev2, prev, cur = prev, cur, prev2
	}
	return prev[lb]
}

func min3(a, b, c int) int {
	if b < a {
		a = b
	}
	if c < a {
		a = c
	}
	return a
}
