package textproc

import (
	"testing"
	"testing/quick"
)

func TestBoundedEditDistance(t *testing.T) {
	cases := []struct {
		a, b  string
		bound int
		want  int
	}{
		{"karen", "karen", 2, 0},
		{"karen", "karin", 2, 1},
		{"karen", "kraen", 2, 1}, // transposition
		{"karen", "kern", 2, 2},
		{"abc", "xyz", 2, 3}, // exceeds bound -> bound+1
		{"", "ab", 2, 2},
		{"ab", "", 2, 2},
		{"abcdef", "a", 2, 3}, // length filter
	}
	for _, c := range cases {
		if got := BoundedEditDistance(c.a, c.b, c.bound); got != c.want {
			t.Errorf("dist(%q,%q,%d) = %d, want %d", c.a, c.b, c.bound, got, c.want)
		}
	}
}

func TestEditDistanceProperties(t *testing.T) {
	f := func(a, b string) bool {
		if len(a) > 12 {
			a = a[:12]
		}
		if len(b) > 12 {
			b = b[:12]
		}
		d1 := BoundedEditDistance(a, b, 20)
		d2 := BoundedEditDistance(b, a, 20)
		if d1 != d2 { // symmetry
			return false
		}
		if (d1 == 0) != (a == b) { // identity
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestSuggest(t *testing.T) {
	vocab := map[string]int{
		"karen":   3,
		"karin":   1,
		"databas": 10,
		"mine":    5,
		"student": 16,
	}
	got := Suggest("karne", vocab, 2, 3)
	if len(got) == 0 || got[0].Keyword != "karen" {
		t.Fatalf("Suggest(karne) = %+v, want karen first", got)
	}
	// Exact matches are excluded; near misses ranked by distance then count.
	got = Suggest("Karen", vocab, 2, 5)
	for _, s := range got {
		if s.Keyword == "karen" {
			t.Error("exact match must not be suggested")
		}
	}
	// Normalization applies: "Databases" stems to databas (exact).
	got = Suggest("Databasses", vocab, 2, 3)
	if len(got) == 0 || got[0].Keyword != "databas" {
		t.Errorf("Suggest(Databasses) = %+v", got)
	}
	if got := Suggest("", vocab, 2, 3); got != nil {
		t.Error("empty input must yield nil")
	}
	if got := Suggest("zzzzzzzz", vocab, 1, 3); got != nil {
		t.Errorf("far word got %+v", got)
	}
}
