package textproc

import (
	"reflect"
	"testing"
)

func TestTokenize(t *testing.T) {
	cases := []struct {
		in   string
		want []string
	}{
		{"Data Mining", []string{"data", "mining"}},
		{"Peter Buneman", []string{"peter", "buneman"}},
		{"E. F. Codd", []string{"e", "f", "codd"}},
		{"year: 2001!", []string{"year", "2001"}},
		{"SIGMOD-Record", []string{"sigmod", "record"}},
		{"", nil},
		{"   \t\n ", nil},
		{"a1b2", []string{"a1b2"}},
		{"Jean-Marc Cadiou", []string{"jean", "marc", "cadiou"}},
	}
	for _, c := range cases {
		if got := Tokenize(c.in); !reflect.DeepEqual(got, c.want) {
			t.Errorf("Tokenize(%q) = %v, want %v", c.in, got, c.want)
		}
	}
}

func TestStemKnownVectors(t *testing.T) {
	// Reference vectors from Porter's published examples.
	cases := map[string]string{
		"caresses":     "caress",
		"ponies":       "poni",
		"ties":         "ti",
		"caress":       "caress",
		"cats":         "cat",
		"feed":         "feed",
		"agreed":       "agre",
		"plastered":    "plaster",
		"bled":         "bled",
		"motoring":     "motor",
		"sing":         "sing",
		"conflated":    "conflat",
		"troubled":     "troubl",
		"sized":        "size",
		"hopping":      "hop",
		"tanned":       "tan",
		"falling":      "fall",
		"hissing":      "hiss",
		"fizzed":       "fizz",
		"failing":      "fail",
		"filing":       "file",
		"happy":        "happi",
		"sky":          "sky",
		"relational":   "relat",
		"conditional":  "condit",
		"rational":     "ration",
		"valenci":      "valenc",
		"digitizer":    "digit",
		"operator":     "oper",
		"feudalism":    "feudal",
		"decisiveness": "decis",
		"hopefulness":  "hope",
		"callousness":  "callous",
		"formaliti":    "formal",
		"sensitiviti":  "sensit",
		"sensibiliti":  "sensibl",
		"triplicate":   "triplic",
		"formative":    "form",
		"formalize":    "formal",
		"electriciti":  "electr",
		"electrical":   "electr",
		"hopeful":      "hope",
		"goodness":     "good",
		"revival":      "reviv",
		"allowance":    "allow",
		"inference":    "infer",
		"airliner":     "airlin",
		"gyroscopic":   "gyroscop",
		"adjustable":   "adjust",
		"defensible":   "defens",
		"irritant":     "irrit",
		"replacement":  "replac",
		"adjustment":   "adjust",
		"dependent":    "depend",
		"adoption":     "adopt",
		"homologou":    "homolog",
		"communism":    "commun",
		"activate":     "activ",
		"angulariti":   "angular",
		"homologous":   "homolog",
		"effective":    "effect",
		"bowdlerize":   "bowdler",
		"probate":      "probat",
		"rate":         "rate",
		"cease":        "ceas",
		"controll":     "control",
		"roll":         "roll",
		"databases":    "databas",
		"mining":       "mine",
		"keyword":      "keyword",
	}
	for in, want := range cases {
		if got := Stem(in); got != want {
			t.Errorf("Stem(%q) = %q, want %q", in, got, want)
		}
	}
}

func TestStemLeavesNonWordsAlone(t *testing.T) {
	for _, in := range []string{"2001", "x86", "a1b2", "ab", "é"} {
		if got := Stem(in); got != in {
			t.Errorf("Stem(%q) = %q, want unchanged", in, got)
		}
	}
}

func TestNormalize(t *testing.T) {
	got := Normalize("The Databases and the Mining of Data")
	want := []string{"databas", "mine", "data"}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("Normalize = %v, want %v", got, want)
	}
}

func TestNormalizeKeyword(t *testing.T) {
	if got := NormalizeKeyword("Databases"); got != "databas" {
		t.Errorf("NormalizeKeyword = %q", got)
	}
	if got := NormalizeKeyword("  "); got != "" {
		t.Errorf("NormalizeKeyword(blank) = %q, want empty", got)
	}
	// Stop words are preserved for explicit queries.
	if got := NormalizeKeyword("the"); got != "the" {
		t.Errorf("NormalizeKeyword(the) = %q, want \"the\"", got)
	}
}

func TestIsStopword(t *testing.T) {
	if !IsStopword("the") || !IsStopword("and") {
		t.Error("classic stop words must be detected")
	}
	if IsStopword("database") {
		t.Error("content words must not be stop words")
	}
}

func TestStemIdempotentOnCommonWords(t *testing.T) {
	words := []string{"database", "search", "keyword", "student", "course",
		"journal", "author", "article", "protein", "sequence", "country"}
	for _, w := range words {
		once := Stem(w)
		twice := Stem(once)
		// Porter is not idempotent in general, but for our index/query
		// agreement we only need Normalize(query) == Normalize(index term),
		// both of which stem exactly once. Still, flag surprising drift.
		if len(twice) > len(once) {
			t.Errorf("Stem grew %q: %q -> %q", w, once, twice)
		}
	}
}
