package snippet

import (
	"strings"

	"repro/internal/core"
	"repro/internal/textproc"
	"repro/internal/xmltree"
)

// PrunedClone builds a MaxMatch-style "relaxed tightest fragment" (Liu &
// Chen, PVLDB 2008; Kong et al., EDBT 2009 — the paper's related-work §3)
// of a result subtree: branches with no query-keyword match are removed,
// except that value-carrying children of kept elements stay as context
// (the attribute nodes that, per §2.2, define the context of the matches).
// The returned tree is a deep copy; the original document is untouched.
func PrunedClone(resp *core.Response, node *xmltree.Node) *xmltree.Node {
	if resp == nil || node == nil {
		return nil
	}
	queryTokens := resp.Query.TokenSet()
	clone, _ := prune(node, queryTokens, true)
	return clone
}

// prune returns the pruned copy of n (nil if dropped) and whether n's
// subtree contains a match.
func prune(n *xmltree.Node, queryTokens map[string]bool, isRoot bool) (*xmltree.Node, bool) {
	if n.Kind == xmltree.Text {
		return &xmltree.Node{Kind: xmltree.Text, Text: n.Text, ID: n.ID},
			textMatches(n.Text, queryTokens)
	}
	selfMatch := labelMatches(n.Label, queryTokens)

	// Singleton value children are attribute nodes (Def 2.1.1) and stay as
	// context; repeating value children (same-label siblings) are dropped
	// unless they match — MaxMatch's "irrelevant match" filtering.
	labelCount := map[string]int{}
	for _, c := range n.Children {
		if c.IsElement() {
			labelCount[c.Label]++
		}
	}
	type kept struct {
		node    *xmltree.Node
		matched bool
		isValue bool
	}
	var children []kept
	anyChildMatch := false
	for _, c := range n.Children {
		cc, m := prune(c, queryTokens, false)
		if cc == nil {
			continue
		}
		isValue := c.Kind == xmltree.Text ||
			(c.DirectlyContainsValue() && labelCount[c.Label] == 1)
		children = append(children, kept{node: cc, matched: m, isValue: isValue})
		if m {
			anyChildMatch = true
		}
	}
	matched := selfMatch || anyChildMatch
	if !matched && !isRoot && !n.DirectlyContainsValue() {
		// Non-matching internal branches are dropped; value leaves survive
		// to this point so their parent can keep them as context.
		return nil, false
	}

	out := &xmltree.Node{Kind: xmltree.Element, Label: n.Label, ID: n.ID}
	for _, k := range children {
		// Keep matching branches always; keep non-matching children only
		// when they are value context (attribute-like) of a kept element.
		if k.matched || k.isValue {
			out.Append(k.node)
		}
	}
	return out, matched
}

func textMatches(text string, queryTokens map[string]bool) bool {
	for _, tok := range textproc.Tokenize(text) {
		if queryTokens[textproc.Stem(tok)] {
			return true
		}
	}
	return false
}

func labelMatches(label string, queryTokens map[string]bool) bool {
	return queryTokens[textproc.Stem(strings.ToLower(label))]
}
