package snippet

import (
	"testing"

	"repro/internal/core"
	"repro/internal/index"
	"repro/internal/xmltree"
)

func TestPrunedCloneKeepsMatchesAndContext(t *testing.T) {
	resp, doc := setup(t) // query {karen, mike}; top result = a Course
	node := doc.FindByID(resp.Results[0].ID)
	pruned := PrunedClone(resp, node)
	if pruned == nil {
		t.Fatal("nil pruned clone")
	}
	// The course Name (context attribute) and matching students survive;
	// non-matching students are dropped.
	var students, names []string
	xmltree.Walk(pruned, func(n *xmltree.Node) bool {
		switch n.Label {
		case "Student":
			students = append(students, n.Value())
		case "Name":
			names = append(names, n.Value())
		}
		return true
	})
	if len(names) != 1 {
		t.Errorf("names = %v, want the course name as context", names)
	}
	for _, s := range students {
		if s != "Karen" && s != "Mike" {
			t.Errorf("non-matching student %q survived pruning", s)
		}
	}
	if len(students) != 2 {
		t.Errorf("students = %v, want exactly Karen and Mike", students)
	}
}

func TestPrunedCloneDoesNotMutateOriginal(t *testing.T) {
	resp, doc := setup(t)
	node := doc.FindByID(resp.Results[0].ID)
	before := 0
	xmltree.Walk(node, func(*xmltree.Node) bool { before++; return true })
	_ = PrunedClone(resp, node)
	after := 0
	xmltree.Walk(node, func(*xmltree.Node) bool { after++; return true })
	if before != after {
		t.Errorf("original mutated: %d -> %d nodes", before, after)
	}
}

func TestPrunedCloneDropsEmptyBranches(t *testing.T) {
	doc := xmltree.NewDocument("d", 0, xmltree.E("root",
		xmltree.E("wanted",
			xmltree.ET("tag", "needle here"),
			xmltree.E("deep", xmltree.ET("note", "irrelevant"), xmltree.E("deeper", xmltree.ET("x", "also irrelevant"))),
		),
		xmltree.E("unwanted",
			xmltree.ET("tag", "nothing"),
		),
	))
	ix, err := index.BuildDocument(doc, index.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	eng := core.NewEngine(ix)
	resp, err := eng.Search(core.NewQuery("needle"), 1)
	if err != nil || len(resp.Results) == 0 {
		t.Fatalf("search: %v", err)
	}
	pruned := PrunedClone(resp, doc.Root)
	var labels []string
	xmltree.Walk(pruned, func(n *xmltree.Node) bool {
		if n.IsElement() {
			labels = append(labels, n.Label)
		}
		return true
	})
	for _, l := range labels {
		if l == "deeper" || l == "unwanted" || l == "deep" {
			t.Errorf("branch %q should be pruned (labels: %v)", l, labels)
		}
	}
	found := false
	for _, l := range labels {
		if l == "tag" {
			found = true
		}
	}
	if !found {
		t.Errorf("matching leaf missing: %v", labels)
	}
}

func TestPrunedCloneLabelMatch(t *testing.T) {
	// Element-name keywords keep the labeled branch.
	doc := xmltree.NewDocument("d", 0, xmltree.E("root",
		xmltree.E("items", xmltree.E("item", xmltree.ET("sku", "1")), xmltree.E("item", xmltree.ET("sku", "2"))),
		xmltree.E("other", xmltree.ET("note", "x")),
	))
	ix, err := index.BuildDocument(doc, index.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	eng := core.NewEngine(ix)
	resp, err := eng.Search(core.NewQuery("item"), 1)
	if err != nil {
		t.Fatal(err)
	}
	pruned := PrunedClone(resp, doc.Root)
	count := 0
	xmltree.Walk(pruned, func(n *xmltree.Node) bool {
		if n.Label == "item" || n.Label == "items" {
			count++
		}
		return true
	})
	if count < 3 {
		t.Errorf("labeled matches pruned away (count %d)", count)
	}
}

func TestPrunedCloneNil(t *testing.T) {
	if PrunedClone(nil, nil) != nil {
		t.Error("nil inputs must yield nil")
	}
}
