package snippet

import (
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/index"
	"repro/internal/xmltree"
)

func setup(t *testing.T) (*core.Response, *xmltree.Document) {
	t.Helper()
	doc := xmltree.BuildFigure2a()
	ix, err := index.BuildDocument(doc, index.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	eng := core.NewEngine(ix)
	resp, err := eng.Search(core.NewQuery("karen", "mike"), 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(resp.Results) == 0 {
		t.Fatal("no results")
	}
	return resp, doc
}

func TestBuildHighlightsMatches(t *testing.T) {
	resp, doc := setup(t)
	node := doc.FindByID(resp.Results[0].ID)
	lines := Build(resp, node, Options{MaxLines: 10})
	if len(lines) == 0 {
		t.Fatal("no snippet lines")
	}
	joined := ""
	for _, l := range lines {
		if !l.Matched {
			t.Errorf("unmatched line in match-only snippet: %s", l)
		}
		joined += l.String() + "\n"
	}
	if !strings.Contains(joined, "«Karen»") {
		t.Errorf("missing highlighted Karen:\n%s", joined)
	}
	if !strings.Contains(joined, "«Mike»") {
		t.Errorf("missing highlighted Mike:\n%s", joined)
	}
	// Paths are relative to the result node (a Course).
	if !strings.HasPrefix(lines[0].Path[0], "Course") {
		t.Errorf("path = %v", lines[0].Path)
	}
}

func TestBuildKeepUnmatched(t *testing.T) {
	resp, doc := setup(t)
	node := doc.FindByID(resp.Results[0].ID)
	lines := Build(resp, node, Options{MaxLines: 20, KeepUnmatched: true})
	foundUnmatched := false
	for _, l := range lines {
		if !l.Matched {
			foundUnmatched = true
		}
	}
	if !foundUnmatched {
		t.Error("expected unmatched context lines (course name, other students)")
	}
}

func TestBuildMaxLines(t *testing.T) {
	resp, doc := setup(t)
	node := doc.FindByID(resp.Results[0].ID)
	lines := Build(resp, node, Options{MaxLines: 1, KeepUnmatched: true})
	if len(lines) != 1 {
		t.Errorf("lines = %d, want 1", len(lines))
	}
	// Matched lines come first.
	if !lines[0].Matched {
		t.Error("first line must be a match")
	}
}

func TestCustomMarker(t *testing.T) {
	resp, doc := setup(t)
	node := doc.FindByID(resp.Results[0].ID)
	lines := Build(resp, node, Options{
		Mark: func(s string) string { return "<b>" + s + "</b>" },
	})
	found := false
	for _, l := range lines {
		if strings.Contains(l.Text, "<b>Karen</b>") {
			found = true
		}
	}
	if !found {
		t.Errorf("custom marker not applied: %+v", lines)
	}
}

func TestStemmedHighlight(t *testing.T) {
	doc := xmltree.NewDocument("d", 0, xmltree.E("r",
		xmltree.E("item", xmltree.ET("note", "databases and mining"), xmltree.ET("note", "other")),
		xmltree.E("item", xmltree.ET("note", "nothing here"), xmltree.ET("note", "at all")),
	))
	ix, err := index.BuildDocument(doc, index.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	eng := core.NewEngine(ix)
	resp, err := eng.Search(core.NewQuery("database"), 1)
	if err != nil || len(resp.Results) == 0 {
		t.Fatalf("search: %v (%d results)", err, len(resp.Results))
	}
	node := doc.FindByID(resp.Results[0].ID)
	lines := Build(resp, node, Options{})
	joined := ""
	for _, l := range lines {
		joined += l.Text
	}
	// Query "database" highlights the inflected "databases".
	if !strings.Contains(joined, "«databases»") {
		t.Errorf("stemmed match not highlighted: %s", joined)
	}
}

func TestNilInputs(t *testing.T) {
	if got := Build(nil, nil, Options{}); got != nil {
		t.Error("nil inputs must yield nil")
	}
}
