// Package snippet renders query-focused result previews: the value lines
// of a response node's subtree with matched query keywords highlighted —
// what a search UI shows under each hit. It complements the full XML chunk
// (the paper's "well-constructed XML chunk") with a compact, match-centric
// view.
package snippet

import (
	"strings"

	"repro/internal/core"
	"repro/internal/textproc"
	"repro/internal/xmltree"
)

// Options controls snippet rendering.
type Options struct {
	// MaxLines caps the emitted lines (0 means 6).
	MaxLines int
	// Mark wraps a matched token for display; nil wraps in «…».
	Mark func(string) string
	// KeepUnmatched keeps value lines without any match if there is room
	// left after all matching lines.
	KeepUnmatched bool
}

func (o Options) maxLines() int {
	if o.MaxLines <= 0 {
		return 6
	}
	return o.MaxLines
}

func (o Options) mark(tok string) string {
	if o.Mark != nil {
		return o.Mark(tok)
	}
	return "«" + tok + "»"
}

// Line is one rendered snippet line.
type Line struct {
	// Path is the element path from the result node to the value node.
	Path []string
	// Text is the value with matches highlighted.
	Text string
	// Matched reports whether the line contains a query keyword.
	Matched bool
}

// String renders "path: text".
func (l Line) String() string {
	return strings.Join(l.Path, "/") + ": " + l.Text
}

// Build renders the snippet for one result of a response. node must be the
// tree node of the result (resolved by the caller through the repository).
func Build(resp *core.Response, node *xmltree.Node, opts Options) []Line {
	if node == nil || resp == nil {
		return nil
	}
	queryTokens := resp.Query.TokenSet()
	var matched, unmatched []Line
	var walk func(n *xmltree.Node, path []string)
	walk = func(n *xmltree.Node, path []string) {
		if n.IsElement() {
			path = append(path, n.Label)
		}
		hasText := false
		for _, c := range n.Children {
			if c.Kind == xmltree.Text {
				hasText = true
			} else {
				walk(c, path)
			}
		}
		if !hasText {
			return
		}
		text, hit := highlight(n.Value(), queryTokens, opts)
		line := Line{Path: append([]string(nil), path...), Text: text, Matched: hit}
		if hit {
			matched = append(matched, line)
		} else {
			unmatched = append(unmatched, line)
		}
	}
	walk(node, nil)

	out := matched
	if opts.KeepUnmatched {
		out = append(out, unmatched...)
	}
	if len(out) > opts.maxLines() {
		out = out[:opts.maxLines()]
	}
	return out
}

// highlight wraps every token of value whose stem is a query token.
func highlight(value string, queryTokens map[string]bool, opts Options) (string, bool) {
	if len(queryTokens) == 0 {
		return value, false
	}
	var b strings.Builder
	hit := false
	i := 0
	for i < len(value) {
		start := i
		for i < len(value) && isWordByte(value[i]) {
			i++
		}
		if i > start {
			word := value[start:i]
			stem := textproc.Stem(strings.ToLower(word))
			if queryTokens[stem] {
				hit = true
				b.WriteString(opts.mark(word))
			} else {
				b.WriteString(word)
			}
		}
		for i < len(value) && !isWordByte(value[i]) {
			b.WriteByte(value[i])
			i++
		}
	}
	return b.String(), hit
}

func isWordByte(c byte) bool {
	return c >= 'a' && c <= 'z' || c >= 'A' && c <= 'Z' || c >= '0' && c <= '9' || c >= 0x80
}
