package di

import (
	"math"
	"sort"

	"repro/internal/core"
	"repro/internal/index"
)

// Result-type inference in the style of XReal (Bao et al., TKDE 2010) and
// XBridge (Li et al., EDBT 2010) — the paper's related-work §3 "deducing
// result types". For every entity label T the confidence that T is the
// query's target type is driven by how many T-entities contain each
// keyword:
//
//	score(T) = Σ_k ln(1 + f_{k,T})   if f_{k,T} > 0 for every keyword k
//	         = 0                     otherwise (product semantics)
//
// where f_{k,T} counts the distinct T-labeled entity nodes whose subtree
// holds keyword k. GKS uses the inference to tell users what kind of node
// their query most plausibly targets (e.g. <inproceedings> for author
// queries), complementing DI.

// TypeScore is one inferred result type.
type TypeScore struct {
	// Label is the entity element label.
	Label string
	// Score is the XReal-style confidence (0 when some keyword never
	// occurs under this type).
	Score float64
	// PerKeyword holds f_{k,T} per query keyword.
	PerKeyword []int
}

// InferResultTypes ranks entity labels by their confidence of being the
// query's target type. topK <= 0 returns all labels with non-zero score,
// plus — when no label covers every keyword — the best partial covers.
func InferResultTypes(eng *core.Engine, q core.Query, topK int) []TypeScore {
	if q.Len() == 0 {
		return nil
	}
	return ScoreTypes(TypeFrequencies(eng, q), q.Len(), topK)
}

// TypeFrequencies computes f_{k,T} for one engine: the returned table maps
// each entity label T to a per-keyword slice (length q.Len()) counting the
// distinct T-labeled entity nodes whose subtree holds keyword k. Keying by
// label string — not label ID — lets frequency tables from independently
// built indexes (shards with disjoint label interning) be summed with
// MergeTypeFrequencies before scoring.
func TypeFrequencies(eng *core.Engine, q core.Query) map[string][]int {
	ix := eng.Index()
	lists := eng.PostingLists(q)
	n := len(lists)
	if n == 0 {
		return nil
	}

	freq := make(map[string][]int)
	type nodeKw struct {
		ord int32
		kw  int
	}
	counted := make(map[nodeKw]bool)
	for k, list := range lists {
		for _, ord := range list {
			for cur := ord; cur >= 0; cur = ix.ParentOf(cur) {
				if ix.CatOf(cur)&index.Entity == 0 {
					continue
				}
				key := nodeKw{cur, k}
				if counted[key] {
					continue
				}
				counted[key] = true
				label := ix.Labels[ix.LabelIDOf(cur)]
				f := freq[label]
				if f == nil {
					f = make([]int, n)
					freq[label] = f
				}
				f[k]++
			}
		}
	}
	return freq
}

// MergeTypeFrequencies sums per-keyword counts into dst. Entity nodes are
// wholly contained in one document, so summing per-shard tables of a
// document-partitioned repository reproduces the single-index table
// exactly.
func MergeTypeFrequencies(dst, src map[string][]int) map[string][]int {
	if dst == nil {
		dst = make(map[string][]int, len(src))
	}
	for label, f := range src {
		d := dst[label]
		if d == nil {
			d = make([]int, len(f))
			dst[label] = d
		}
		for k, c := range f {
			d[k] += c
		}
	}
	return dst
}

// ScoreTypes turns a frequency table (n = query keyword count) into ranked
// TypeScores using the XReal-style confidence above.
func ScoreTypes(freq map[string][]int, n, topK int) []TypeScore {
	if n == 0 || len(freq) == 0 {
		return nil
	}
	out := make([]TypeScore, 0, len(freq))
	for label, f := range freq {
		ts := TypeScore{Label: label, PerKeyword: f}
		full := true
		score := 0.0
		for _, c := range f {
			if c == 0 {
				full = false
				continue
			}
			score += math.Log(1 + float64(c))
		}
		if full {
			ts.Score = score
		} else {
			// Partial cover: heavy penalty but still comparable, so the
			// best partial type surfaces when nothing covers everything.
			ts.Score = score / float64(10*n)
		}
		out = append(out, ts)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Score != out[j].Score {
			return out[i].Score > out[j].Score
		}
		return out[i].Label < out[j].Label
	})
	if topK > 0 && len(out) > topK {
		out = out[:topK]
	}
	return out
}
