package di

import (
	"testing"

	"repro/internal/core"
	"repro/internal/datagen"
	"repro/internal/index"
)

func TestInferResultTypesDBLP(t *testing.T) {
	ix, err := index.BuildDocument(datagen.PaperDBLP(1), index.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	eng := core.NewEngine(ix)
	q := core.NewQuery("Peter Buneman", "Wenfei Fan", "Scott Weinstein")
	types := InferResultTypes(eng, q, 3)
	if len(types) == 0 {
		t.Fatal("no types inferred")
	}
	if types[0].Label != "inproceedings" {
		t.Errorf("top type = %s, want inproceedings (%+v)", types[0].Label, types)
	}
	if types[0].Score <= 0 {
		t.Errorf("score = %v", types[0].Score)
	}
	for _, c := range types[0].PerKeyword {
		if c == 0 {
			t.Errorf("full-cover type has zero keyword count: %+v", types[0])
		}
	}
}

func TestInferResultTypesUniversity(t *testing.T) {
	eng, _ := fig2aAnalyzer(t)
	types := InferResultTypes(eng, core.NewQuery("karen", "mike"), 2)
	if len(types) == 0 || types[0].Label != "Course" {
		t.Fatalf("types = %+v, want Course first", types)
	}
	// A keyword pair that no single entity type fully covers still yields
	// a best partial type rather than nothing.
	types = InferResultTypes(eng, core.NewQuery("alice", "serena"), 2)
	if len(types) == 0 {
		t.Fatal("no partial types inferred")
	}
}

func TestInferResultTypesEmpty(t *testing.T) {
	eng, _ := fig2aAnalyzer(t)
	if got := InferResultTypes(eng, core.Query{}, 3); got != nil {
		t.Errorf("empty query: %+v", got)
	}
	if got := InferResultTypes(eng, core.NewQuery("nosuchword"), 3); len(got) != 0 {
		t.Errorf("unknown keyword: %+v", got)
	}
}
