// Package di implements the GKS Search Analysis Engine (Agarwal et al.,
// EDBT 2016, §2.3 and §6): discovery of Deeper Analytical Insights (DI) —
// the most relevant attribute keywords, with their schema semantics, in the
// context of a query — and query refinement.
//
// For every LCE node e in the ranked response, the value-carrying nodes
// whose lowest entity ancestor is e — its attribute nodes, plus repeating
// text nodes such as DBLP's <author> elements, which the paper's Example 2
// DI exposes — contribute their values to the weighted set S_w^Q; each
// contribution is weighted by rank(e), so an insight popular
// only inside low-ranked results (the paper's <booktitle: ICPP> example,
// §6.2) loses to insights relevant to the largest, highest-ranked subset of
// query keywords (<journal: SIGMOD Record>). The top-m weighted entries,
// each carrying the element path from the LCE node to the attribute (its
// "semantics"), form the DI. Insights containing query keywords are
// excluded. Applying the discovery recursively — feeding the top-m values
// back as a query — yields the paper's R^r_Q(s) rounds.
package di

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/core"
	"repro/internal/dewey"
	"repro/internal/index"
	"repro/internal/textproc"
)

// Insight is one DI element: an attribute value with its schema context.
type Insight struct {
	// Value is the raw attribute value, e.g. "SIGMOD Record".
	Value string
	// Path lists the element labels from the LCE node down to the
	// attribute node, e.g. [inproceedings, journal] — the semantics that
	// distinguish <year: 2001> from a street number 2001 (§1.2).
	Path []string
	// Weight is the summed rank of the LCE result nodes exposing the value.
	Weight float64
	// Count is the number of LCE result nodes exposing the value.
	Count int
	// Example identifies one attribute node carrying the value.
	Example dewey.ID
}

// String renders the insight like the paper: <ip: journal: SIGMOD Record>.
func (in Insight) String() string {
	return "<" + strings.Join(in.Path, ": ") + ": " + in.Value + ">"
}

// Analyzer discovers DI over a search engine's responses.
type Analyzer struct {
	eng *core.Engine
}

// New returns an analyzer bound to the engine whose responses it analyzes.
func New(eng *core.Engine) *Analyzer { return &Analyzer{eng: eng} }

// Discover returns the top-m insights for a response (Def 2.3.1). m <= 0
// returns every insight. The response must come from the analyzer's engine.
func (a *Analyzer) Discover(resp *core.Response, m int) []Insight {
	ix := a.eng.Index()
	return DiscoverIndexed(func(core.Result) *index.Index { return ix }, resp, m)
}

// DiscoverIndexed is the engine-agnostic core of DI discovery: ixOf maps
// each response node to the index holding it (and interpreting its Ord).
// A single-index system always resolves to its one index; the sharded
// searcher resolves each result to the shard owning the result's
// document, which makes sharded DI byte-identical to single-index DI —
// results are visited in the same (global rank) order, so the weight sums
// accumulate in the same floating-point order.
func DiscoverIndexed(ixOf func(core.Result) *index.Index, resp *core.Response, m int) []Insight {
	queryTokens := resp.Query.TokenSet()
	type key struct {
		path  string
		value string
	}
	acc := make(map[key]*Insight)
	for _, r := range resp.Results {
		if !r.IsEntity {
			continue
		}
		ix := ixOf(r)
		for _, attr := range ix.ValueNodesUnder(r.Ord) {
			info := ix.Info(attr)
			if containsQueryToken(info.Value, queryTokens) {
				continue // §6.2: query keywords are not included in S_w^Q
			}
			path := ix.PathLabels(r.Ord, attr)
			k := key{path: strings.Join(path, "/"), value: info.Value}
			in := acc[k]
			if in == nil {
				in = &Insight{Value: info.Value, Path: path, Example: info.ID}
				acc[k] = in
			}
			in.Weight += r.Rank
			in.Count++
		}
	}
	out := make([]Insight, 0, len(acc))
	for _, in := range acc {
		out = append(out, *in)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Weight != out[j].Weight {
			return out[i].Weight > out[j].Weight
		}
		if out[i].Count != out[j].Count {
			return out[i].Count > out[j].Count
		}
		if out[i].Value != out[j].Value {
			return out[i].Value < out[j].Value
		}
		// Full tiebreak down to the path keeps the order deterministic:
		// the accumulator map iterates randomly, and sort.Slice is not
		// stable, so any comparator tie would make equal inputs produce
		// differently ordered insights across runs (and across the
		// sharded/single-index implementations).
		return strings.Join(out[i].Path, "/") < strings.Join(out[j].Path, "/")
	})
	if m > 0 && len(out) > m {
		out = out[:m]
	}
	return out
}

func containsQueryToken(value string, queryTokens map[string]bool) bool {
	for _, tok := range textproc.Tokenize(value) {
		if queryTokens[textproc.Stem(tok)] {
			return true
		}
	}
	return false
}

// Round is one recursion step of DI discovery: the response R^r_Q(s) and
// the insights extracted from it.
type Round struct {
	Query    core.Query
	Response *core.Response
	Insights []Insight
}

// DiscoverRecursive runs the recursive DI procedure of §2.3: round 0
// searches q and extracts top-m insights; each following round feeds the
// previous round's top-m insight values back to GKS as a new query. It
// stops early when a round yields no insights. rounds is the total number
// of rounds (>= 1).
func (a *Analyzer) DiscoverRecursive(q core.Query, s, m, rounds int) ([]Round, error) {
	if rounds < 1 {
		rounds = 1
	}
	var out []Round
	cur := q
	for r := 0; r < rounds; r++ {
		resp, err := a.eng.Search(cur, s)
		if err != nil {
			return out, fmt.Errorf("di: round %d: %w", r, err)
		}
		ins := a.Discover(resp, m)
		out = append(out, Round{Query: cur, Response: resp, Insights: ins})
		if len(ins) == 0 {
			break
		}
		terms := make([]string, 0, len(ins))
		for _, in := range ins {
			terms = append(terms, in.Value)
		}
		next := core.NewQuery(terms...)
		if next.Len() == 0 {
			break
		}
		cur = next
	}
	return out, nil
}

// Refinements implements §6.1: it proposes sub-queries of q matching the
// distinct keyword subsets of the highest-ranked response nodes, in rank
// order — e.g. for the paper's Q3 = {a,b,c,d} the suggestions are {a,b,c}
// and {a,b,d}. At most topK suggestions are returned; subsets equal to the
// full query are skipped (nothing to refine).
func Refinements(resp *core.Response, topK int) []core.Query {
	full := uint64(1)<<uint(resp.Query.Len()) - 1
	seen := map[uint64]bool{}
	var out []core.Query
	for _, r := range resp.Results {
		if topK > 0 && len(out) >= topK {
			break
		}
		if r.Mask == full || seen[r.Mask] {
			continue
		}
		seen[r.Mask] = true
		var terms []string
		for i, kw := range resp.Query.Keywords {
			if r.Mask&(1<<uint(i)) != 0 {
				terms = append(terms, kw.Raw)
			}
		}
		if len(terms) == 0 {
			continue
		}
		out = append(out, core.NewQuery(terms...))
	}
	return out
}

// Augmentations implements the "adding keywords" direction of §6.1/§7.4:
// it combines q with each of the top insights' values, as in the paper's
// QD1 example where <author: Marek Rusinkiewicz> refines the query. Each
// returned query is q plus one insight value.
func Augmentations(q core.Query, insights []Insight, topK int) []core.Query {
	var out []core.Query
	for _, in := range insights {
		if topK > 0 && len(out) >= topK {
			break
		}
		terms := make([]string, 0, q.Len()+1)
		for _, kw := range q.Keywords {
			terms = append(terms, kw.Raw)
		}
		terms = append(terms, in.Value)
		out = append(out, core.NewQuery(terms...))
	}
	return out
}
