package di

import (
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/index"
	"repro/internal/xmltree"
)

func fig2aAnalyzer(t *testing.T) (*core.Engine, *Analyzer) {
	t.Helper()
	ix, err := index.BuildDocument(xmltree.BuildFigure2a(), index.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	eng := core.NewEngine(ix)
	return eng, New(eng)
}

func TestSection23DIExample(t *testing.T) {
	// For Q4 = {student, karen, mike, john, harry}, s=2, the weighted set
	// S_w^Q holds the course names {Data Mining, AI, Algorithms}; the top
	// insight is <Course: Name: Data Mining> because the Data Mining
	// course is ranked highest.
	eng, an := fig2aAnalyzer(t)
	resp, err := eng.Search(core.NewQuery("student", "karen", "mike", "john", "harry"), 2)
	if err != nil {
		t.Fatal(err)
	}
	ins := an.Discover(resp, 0)
	// Course names plus the non-query student names (Julie, Serena, Peter).
	if len(ins) != 6 {
		t.Fatalf("insights = %d (%v), want 6", len(ins), ins)
	}
	if ins[0].Value != "Data Mining" {
		t.Errorf("top insight = %q, want Data Mining", ins[0].Value)
	}
	if got := ins[0].String(); got != "<Course: Name: Data Mining>" {
		t.Errorf("insight rendering = %q", got)
	}
	values := map[string]bool{}
	for _, in := range ins {
		values[in.Value] = true
	}
	for _, want := range []string{"Data Mining", "AI", "Algorithms"} {
		if !values[want] {
			t.Errorf("missing insight %q", want)
		}
	}
	for _, leak := range []string{"Karen", "Mike", "John"} {
		if values[leak] {
			t.Errorf("query keyword %q leaked into DI", leak)
		}
	}
}

func TestDIExcludesQueryKeywords(t *testing.T) {
	eng, an := fig2aAnalyzer(t)
	// Querying the course name itself: "Data Mining" must not come back as
	// an insight, but the query's course still exposes no other attribute.
	resp, err := eng.Search(core.NewQuery("Data Mining", "karen"), 1)
	if err != nil {
		t.Fatal(err)
	}
	for _, in := range an.Discover(resp, 0) {
		if strings.Contains(in.Value, "Data Mining") {
			t.Errorf("query keyword leaked into DI: %v", in)
		}
		if strings.Contains(strings.ToLower(in.Value), "karen") {
			t.Errorf("query keyword leaked into DI: %v", in)
		}
	}
}

func TestDIWeightsAggregateAcrossLCEs(t *testing.T) {
	// Two courses share the name "Systems"; its weight must be the sum of
	// both course ranks and Count must be 2.
	doc := xmltree.NewDocument("dup", 0, xmltree.E("Dept",
		xmltree.ET("Dept_Name", "CS"),
		xmltree.E("Courses",
			xmltree.E("Course",
				xmltree.ET("Name", "Systems"),
				xmltree.E("Students", xmltree.ET("Student", "Ann"), xmltree.ET("Student", "Bob")),
			),
			xmltree.E("Course",
				xmltree.ET("Name", "Systems"),
				xmltree.E("Students", xmltree.ET("Student", "Ann"), xmltree.ET("Student", "Cid")),
			),
		),
	))
	ix, err := index.BuildDocument(doc, index.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	eng := core.NewEngine(ix)
	an := New(eng)
	resp, err := eng.Search(core.NewQuery("ann"), 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(resp.Results) != 2 {
		t.Fatalf("results = %d, want both courses", len(resp.Results))
	}
	ins := an.Discover(resp, 1)
	if len(ins) != 1 || ins[0].Value != "Systems" || ins[0].Count != 2 {
		t.Fatalf("insights = %+v, want aggregated Systems with count 2", ins)
	}
	wantWeight := resp.Results[0].Rank + resp.Results[1].Rank
	if diff := ins[0].Weight - wantWeight; diff > 1e-9 || diff < -1e-9 {
		t.Errorf("weight = %v, want %v", ins[0].Weight, wantWeight)
	}
}

func TestDITopM(t *testing.T) {
	eng, an := fig2aAnalyzer(t)
	resp, err := eng.Search(core.NewQuery("student", "karen", "mike", "john", "harry"), 2)
	if err != nil {
		t.Fatal(err)
	}
	if got := an.Discover(resp, 2); len(got) != 2 {
		t.Errorf("top-m = %d insights, want 2", len(got))
	}
	if got := an.Discover(resp, 100); len(got) != 6 {
		t.Errorf("m larger than set = %d insights, want 6", len(got))
	}
}

func TestDiscoverRecursive(t *testing.T) {
	_, an := fig2aAnalyzer(t)
	rounds, err := an.DiscoverRecursive(core.NewQuery("karen", "mike"), 1, 2, 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(rounds) < 2 {
		t.Fatalf("rounds = %d, want at least 2", len(rounds))
	}
	// Round 1's query must be built from round 0's insight values.
	if rounds[0].Insights[0].Value == "" {
		t.Fatal("round 0 produced no insights")
	}
	r1q := rounds[1].Query.String()
	if !strings.Contains(r1q, strings.Fields(rounds[0].Insights[0].Value)[0]) {
		t.Errorf("round 1 query %q not derived from round 0 insights %v", r1q, rounds[0].Insights)
	}
}

func TestRefinementsQ3(t *testing.T) {
	// §6.1: for Q3 = {a,b,c,d} over Figure 1 the refinement suggestions are
	// {a,b,c} (from x2) and {a,b,d} (from x3).
	ix, err := index.BuildDocument(xmltree.BuildFigure1(), index.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	eng := core.NewEngine(ix)
	resp, err := eng.Search(core.NewQuery("alpha", "beta", "gamma", "delta"), 2)
	if err != nil {
		t.Fatal(err)
	}
	refs := Refinements(resp, 2)
	if len(refs) != 2 {
		t.Fatalf("refinements = %v, want 2", refs)
	}
	if got := refs[0].String(); got != "alpha beta gamma" {
		t.Errorf("refinement 0 = %q, want alpha beta gamma", got)
	}
	if got := refs[1].String(); got != "alpha beta delta" {
		t.Errorf("refinement 1 = %q, want alpha beta delta", got)
	}
}

func TestRefinementsSkipFullQuery(t *testing.T) {
	ix, err := index.BuildDocument(xmltree.BuildFigure1(), index.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	eng := core.NewEngine(ix)
	// Q1 matched fully by x2: its mask equals the full query, so no
	// refinement is suggested.
	resp, err := eng.Search(core.NewQuery("alpha", "beta", "gamma"), 2)
	if err != nil {
		t.Fatal(err)
	}
	for _, ref := range Refinements(resp, 5) {
		if ref.Len() == 3 {
			t.Errorf("full query suggested as refinement: %v", ref)
		}
	}
}

func TestAugmentations(t *testing.T) {
	q := core.NewQuery("karen")
	ins := []Insight{{Value: "Data Mining"}, {Value: "AI"}}
	augs := Augmentations(q, ins, 1)
	if len(augs) != 1 {
		t.Fatalf("augmentations = %d, want 1", len(augs))
	}
	if got := augs[0].String(); got != `karen "Data Mining"` {
		t.Errorf("augmented query = %q", got)
	}
}

func TestDIEmptyResponse(t *testing.T) {
	eng, an := fig2aAnalyzer(t)
	resp, err := eng.Search(core.NewQuery("nosuchword"), 1)
	if err != nil {
		t.Fatal(err)
	}
	if got := an.Discover(resp, 5); len(got) != 0 {
		t.Errorf("insights from empty response = %v", got)
	}
	if refs := Refinements(resp, 5); len(refs) != 0 {
		t.Errorf("refinements from empty response = %v", refs)
	}
}
