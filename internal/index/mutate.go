package index

import (
	"errors"
	"fmt"
	"sort"

	"repro/internal/xmltree"
)

// Online mutation: delete and replace without a full rebuild.
//
// The index is immutable once built — that is what makes concurrent
// searches safe — so deletion is copy-on-write: DeleteDoc returns a new
// *Index that shares the node table, postings and label table with its
// predecessor and carries a tombstone mask marking the dead document's
// ordinal range. Search-facing accessors (PostingsFor, Lookup, OrdinalOf,
// LiveSpans) filter against the mask, so a tombstoned index answers
// queries exactly as if the dead documents had never been indexed.
// Tombstones are never persisted: Save/SaveBinary/SaveSnapshot compact
// first, and Append merges onto a compacted base, so the mask lives only
// between a delete and the next save or append.

// ErrNotFound reports a mutation against a document name that is not live
// in the index.
var ErrNotFound = errors.New("index: document not found")

// ErrLastDocument reports a delete that would leave the index empty; an
// Index always holds at least one document (Build rejects empty
// repositories), so the caller must rebuild from scratch instead.
var ErrLastDocument = errors.New("index: cannot delete the last live document")

// tombstones is the per-document delete mask carried by a mutated index.
// All ranges are half-open ordinal intervals, sorted and disjoint.
type tombstones struct {
	// dead holds the coalesced ordinal ranges of deleted documents.
	dead [][2]int32
	// live is the complement of dead within [0, len(Nodes)).
	live [][2]int32
	// deadPosts counts dead entries per posting list; only keys with at
	// least one dead entry are present, so the zero lookup keeps the
	// untouched-list fast path allocation-free.
	deadPosts map[string]int32
	// deadDocs is the number of tombstoned documents.
	deadDocs int
}

// Tombstoned reports whether the index carries a tombstone mask (i.e. has
// live deletes that a Save or Append would compact away).
func (ix *Index) Tombstoned() bool { return ix.tomb != nil }

// LiveSpans returns the sorted, disjoint, half-open ordinal ranges of the
// nodes that are not tombstoned. Iterating these spans visits exactly the
// live node table; without tombstones that is the whole table.
func (ix *Index) LiveSpans() [][2]int32 {
	if ix.tomb == nil {
		if ix.NodeCount() == 0 {
			return nil
		}
		return [][2]int32{{0, int32(ix.NodeCount())}}
	}
	return ix.tomb.live
}

// LiveOrd reports whether the node at ord is live (not tombstoned).
func (ix *Index) LiveOrd(ord int32) bool {
	if ix.tomb == nil {
		return true
	}
	dead := ix.tomb.dead
	i := sort.Search(len(dead), func(i int) bool { return dead[i][1] > ord })
	return i == len(dead) || ord < dead[i][0]
}

// PostingsFor returns the live posting list for a normalized keyword. When
// the list has no tombstoned entries the original slice is returned
// (allocation-free, the common case); otherwise a filtered copy. A fully
// dead list returns nil, indistinguishable from an absent keyword. The
// returned slice must not be modified.
//
// On a lazily-backed index the list is fetched from the posting source; a
// fetch failure poisons the index (it returns nil here, and LazyErr
// reports the failure — the query engine checks it after gathering
// lists, so broken storage fails queries instead of emptying them).
func (ix *Index) PostingsFor(key string) []int32 {
	if ix.lazy != nil {
		list, err := ix.lazy.src.Postings(key)
		if err != nil {
			ix.lazy.poison(err)
			return nil
		}
		return list
	}
	list := ix.Postings[key]
	if ix.tomb == nil {
		return list
	}
	deadCount := ix.tomb.deadPosts[key]
	if deadCount == 0 {
		return list
	}
	if int(deadCount) >= len(list) {
		return nil
	}
	out := make([]int32, 0, len(list)-int(deadCount))
	dead := ix.tomb.dead
	ri := 0
	for _, ord := range list {
		for ri < len(dead) && ord >= dead[ri][1] {
			ri++
		}
		if ri < len(dead) && ord >= dead[ri][0] {
			continue
		}
		out = append(out, ord)
	}
	return out
}

// ForEachKeyword calls f once per keyword with at least one live posting,
// passing the live posting count. Iteration order is unspecified (map
// order), matching a range over Postings on an untombstoned index.
func (ix *Index) ForEachKeyword(f func(keyword string, live int)) {
	if ix.lazy != nil {
		// The term directory is resident in the source, so this performs
		// no I/O and cannot fail — vocabulary walks (Suggest, top
		// keywords) stay cheap on a segment-backed index.
		ix.lazy.src.ForEachTerm(func(term string, count int) error {
			f(term, count)
			return nil
		})
		return
	}
	if ix.tomb == nil {
		for kw, list := range ix.Postings {
			f(kw, len(list))
		}
		return
	}
	for kw, list := range ix.Postings {
		live := len(list) - int(ix.tomb.deadPosts[kw])
		if live > 0 {
			f(kw, live)
		}
	}
}

// DocSpan describes one live document's slice of the node table.
type DocSpan struct {
	// Name is the document's repository name.
	Name string
	// Doc is the Dewey document number (sparse after deletes).
	Doc int32
	// Start and End bound the document's half-open ordinal range.
	Start, End int32
}

// LiveDocSpans returns the live documents in node-table (Dewey) order.
// The k-th root node of the table corresponds to DocNames[k], dead or
// alive; tombstoned documents are skipped.
func (ix *Index) LiveDocSpans() []DocSpan {
	out := make([]DocSpan, 0, ix.LiveDocCount())
	k := 0
	for ord, n := int32(0), int32(ix.NodeCount()); ord < n && k < len(ix.DocNames); k++ {
		size := ix.SubtreeSizeOf(ord)
		if size <= 0 {
			break // corrupt table; Validate reports this properly
		}
		if ix.LiveOrd(ord) {
			out = append(out, DocSpan{
				Name:  ix.DocNames[k],
				Doc:   ix.DocOf(ord),
				Start: ord,
				End:   ord + size,
			})
		}
		ord += size
	}
	return out
}

// LiveDocCount returns the number of live documents.
func (ix *Index) LiveDocCount() int {
	if ix.tomb == nil {
		return len(ix.DocNames)
	}
	return len(ix.DocNames) - ix.tomb.deadDocs
}

// LiveDocs returns the live document names in node-table order.
func (ix *Index) LiveDocs() []string {
	spans := ix.LiveDocSpans()
	out := make([]string, len(spans))
	for i, sp := range spans {
		out[i] = sp.Name
	}
	return out
}

// ContainsDoc reports whether a live document with the given name exists.
func (ix *Index) ContainsDoc(name string) bool {
	for _, sp := range ix.LiveDocSpans() {
		if sp.Name == name {
			return true
		}
	}
	return false
}

// NextDocID returns the Dewey document number the next appended document
// should take: one past the highest live document number. Appending at
// the maximum keeps the node table Dewey-sorted even when earlier deletes
// left holes in the numbering, which is what lets Append remain a cheap
// suffix merge.
func (ix *Index) NextDocID() int32 {
	max := int32(-1)
	for _, sp := range ix.LiveDocSpans() {
		if sp.Doc > max {
			max = sp.Doc
		}
	}
	return max + 1
}

// DeleteDoc removes the live document(s) named name and returns a new
// tombstoned index; ix itself is unchanged and keeps serving. The new
// index shares the node table, postings, labels and document names with
// ix — only the tombstone mask and the statistics are fresh. It fails
// with ErrNotFound when no live document has the name and with
// ErrLastDocument when the delete would empty the index.
func (ix *Index) DeleteDoc(name string) (*Index, error) {
	if ix.lazy != nil {
		// Tombstoning needs the Postings map; mutation of a segment-backed
		// index goes through an eager copy (the caller persists the result
		// as a fresh snapshot or segment anyway).
		m, err := ix.Materialized()
		if err != nil {
			return nil, err
		}
		ix = m
	}
	spans := ix.LiveDocSpans()
	var doomed [][2]int32
	for _, sp := range spans {
		if sp.Name == name {
			doomed = append(doomed, [2]int32{sp.Start, sp.End})
		}
	}
	if len(doomed) == 0 {
		return nil, fmt.Errorf("%w: %q", ErrNotFound, name)
	}
	if len(doomed) == len(spans) {
		return nil, fmt.Errorf("%w: %q", ErrLastDocument, name)
	}

	tomb := &tombstones{deadDocs: len(doomed)}
	if ix.tomb != nil {
		tomb.deadDocs += ix.tomb.deadDocs
		doomed = append(doomed, ix.tomb.dead...)
	}
	sort.Slice(doomed, func(i, j int) bool { return doomed[i][0] < doomed[j][0] })
	// Coalesce adjacent ranges; document ranges never overlap, so touching
	// ends are the only merge case.
	for _, r := range doomed {
		if n := len(tomb.dead); n > 0 && tomb.dead[n-1][1] == r[0] {
			tomb.dead[n-1][1] = r[1]
			continue
		}
		tomb.dead = append(tomb.dead, r)
	}

	// Live complement.
	cur := int32(0)
	for _, r := range tomb.dead {
		if r[0] > cur {
			tomb.live = append(tomb.live, [2]int32{cur, r[0]})
		}
		cur = r[1]
	}
	if n := int32(ix.NodeCount()); cur < n {
		tomb.live = append(tomb.live, [2]int32{cur, n})
	}

	// Per-keyword dead counts, recomputed from scratch against the merged
	// mask (a two-pointer sweep per list; posting lists are sorted).
	tomb.deadPosts = make(map[string]int32)
	for kw, list := range ix.Postings {
		dead := int32(0)
		ri := 0
		for _, ord := range list {
			for ri < len(tomb.dead) && ord >= tomb.dead[ri][1] {
				ri++
			}
			if ri < len(tomb.dead) && ord >= tomb.dead[ri][0] {
				dead++
			}
		}
		if dead > 0 {
			tomb.deadPosts[kw] = dead
		}
	}

	out := &Index{
		Labels:   ix.Labels,
		Nodes:    ix.Nodes,
		Postings: ix.Postings,
		DocNames: ix.DocNames,
		labelIDs: ix.labelIDs,
		tomb:     tomb,
		packed:   ix.packed,
	}
	out.recomputeLiveStats()
	return out, nil
}

// recomputeLiveStats rebuilds Stats from the live spans and live posting
// counts, so a tombstoned index reports exactly the statistics a cold
// rebuild from the surviving documents would.
func (ix *Index) recomputeLiveStats() {
	var st Stats
	for _, sp := range ix.LiveSpans() {
		var childSum, roots int32
		for ord := sp[0]; ord < sp[1]; ord++ {
			st.ElementNodes++
			childSum += ix.ChildCountOf(ord)
			if ix.ParentOf(ord) < 0 {
				roots++
			}
			if d := int(ix.DepthOf(ord)); d > st.MaxDepth {
				st.MaxDepth = d
			}
			c := ix.CatOf(ord)
			if c&Attribute != 0 {
				st.AttributeNodes++
			}
			if c&Repeating != 0 {
				st.RepeatingNodes++
			}
			if c&Entity != 0 {
				st.EntityNodes++
			}
			if c&Connecting != 0 {
				st.ConnectingNodes++
			}
		}
		// ChildCount counts element and text children alike; every element
		// in the span except its document roots is somebody's child, so the
		// remainder is the span's text-node count (spans align to document
		// boundaries, so no parent/child edge crosses a span edge).
		st.TextNodes += int(childSum - (sp[1] - sp[0] - roots))
		st.Documents += int(roots)
	}
	ix.ForEachKeyword(func(_ string, live int) {
		st.DistinctKeywords++
		st.PostingEntries += live
	})
	ix.Stats = st
}

// Compacted returns an index with the tombstoned documents physically
// removed: live nodes are re-packed contiguously (ordinals shift down,
// Dewey IDs — including sparse document numbers — are preserved), posting
// lists are filtered and re-based, and dead document names are dropped.
// Without tombstones it returns ix itself. The result is a plain
// immutable index, byte-identical in nodes and postings to a cold rebuild
// from the surviving documents; only the label table may retain interned
// labels that no surviving document uses. A packed index compacts by
// materializing the surviving nodes and re-packing the result — packing
// is deterministic, so the re-packed table equals a cold rebuild's pack.
func (ix *Index) Compacted() *Index {
	if ix.tomb == nil {
		return ix
	}
	out := &Index{
		Labels:   ix.Labels,
		labelIDs: ix.labelIDs,
		Postings: make(map[string][]int32, len(ix.Postings)),
		Stats:    ix.Stats,
	}
	out.Nodes = make([]NodeInfo, 0, ix.Stats.ElementNodes)
	for _, sp := range ix.tomb.live {
		// Nodes before this span shifted down by the dead mass before it.
		shift := sp[0] - int32(len(out.Nodes))
		for ord := sp[0]; ord < sp[1]; ord++ {
			var n NodeInfo
			if ix.packed != nil {
				n = ix.packed.nodeInfo(ord)
			} else {
				n = ix.Nodes[ord] // copy
			}
			if n.Parent >= 0 {
				// A non-root's parent is in the same document, hence the
				// same live span and the same shift.
				n.Parent -= shift
			}
			out.Nodes = append(out.Nodes, n)
		}
	}

	dead := ix.tomb.dead
	for kw, list := range ix.Postings {
		live := len(list) - int(ix.tomb.deadPosts[kw])
		if live <= 0 {
			continue
		}
		dst := make([]int32, 0, live)
		ri := 0
		shift := int32(0)
		for _, ord := range list {
			for ri < len(dead) && ord >= dead[ri][1] {
				shift += dead[ri][1] - dead[ri][0]
				ri++
			}
			if ri < len(dead) && ord >= dead[ri][0] {
				continue
			}
			dst = append(dst, ord-shift)
		}
		out.Postings[kw] = dst
	}

	out.DocNames = make([]string, 0, ix.LiveDocCount())
	k := 0
	for ord, n := int32(0), int32(ix.NodeCount()); ord < n && k < len(ix.DocNames); k++ {
		size := ix.SubtreeSizeOf(ord)
		if size <= 0 {
			break
		}
		if ix.LiveOrd(ord) {
			out.DocNames = append(out.DocNames, ix.DocNames[k])
		}
		ord += size
	}
	if ix.packed != nil {
		return out.Pack()
	}
	return out
}

// BuildDocumentAs indexes a single document under an explicit Dewey
// document number. Unlike the old Append it validates everything that can
// fail before touching the caller's tree, and restores the document's
// prior numbering if the build fails anyway — a failed build must leave
// the caller's document usable for a retry elsewhere.
func BuildDocumentAs(doc *xmltree.Document, docID int32, opts Options) (*Index, error) {
	if doc == nil || doc.Root == nil {
		return nil, fmt.Errorf("index: build of empty document")
	}
	if !doc.Root.IsElement() {
		return nil, fmt.Errorf("index: document %q root is not an element", doc.Name)
	}
	if docID < 0 {
		return nil, fmt.Errorf("index: document %q: negative document id %d", doc.Name, docID)
	}
	oldID := doc.DocID
	doc.DocID = docID
	doc.AssignIDs()
	ix, err := BuildDocument(doc, opts)
	if err != nil {
		doc.DocID = oldID
		doc.AssignIDs()
		return nil, err
	}
	return ix, nil
}
