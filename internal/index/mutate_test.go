package index

import (
	"bytes"
	"errors"
	"fmt"
	"math/rand"
	"testing"

	"repro/internal/dewey"
	"repro/internal/xmltree"
)

// wordDoc builds a small document holding the given words as text nodes,
// with an explicit (preserved) document id.
func wordDoc(name string, docID int32, words ...string) *xmltree.Document {
	root := xmltree.E("root")
	for _, w := range words {
		root.Append(xmltree.ET("item", w))
	}
	return xmltree.NewDocument(name, docID, root)
}

// rebuildFrom builds the cold-rebuild reference: one index over the given
// documents with their DocIDs preserved exactly (Repository.Add would
// renumber, which is why the Repository is constructed directly).
func rebuildFrom(t *testing.T, docs ...*xmltree.Document) *Index {
	t.Helper()
	ix, err := Build(&xmltree.Repository{Docs: docs}, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	return ix
}

// assertLiveEqual asserts two indexes are semantically identical: same
// nodes (labels compared as strings — a compacted index may retain interned
// labels only dead documents used), same postings, same stats, same
// document names.
func assertLiveEqual(t *testing.T, label string, want, got *Index) {
	t.Helper()
	if len(want.Nodes) != len(got.Nodes) {
		t.Fatalf("%s: %d nodes, want %d", label, len(got.Nodes), len(want.Nodes))
	}
	for i := range want.Nodes {
		w, g := &want.Nodes[i], &got.Nodes[i]
		if !dewey.Equal(w.ID, g.ID) || want.Labels[w.Label] != got.Labels[g.Label] ||
			w.Cat != g.Cat || w.ChildCount != g.ChildCount || w.Subtree != g.Subtree ||
			w.Parent != g.Parent || w.HasValue != g.HasValue || w.Value != g.Value {
			t.Fatalf("%s: node %d differs:\n  want %+v (label %q)\n  got  %+v (label %q)",
				label, i, w, want.Labels[w.Label], g, got.Labels[g.Label])
		}
	}
	if len(want.Postings) != len(got.Postings) {
		t.Fatalf("%s: %d posting keys, want %d", label, len(got.Postings), len(want.Postings))
	}
	for k, lw := range want.Postings {
		lg, ok := got.Postings[k]
		if !ok || len(lw) != len(lg) {
			t.Fatalf("%s: postings %q = %v, want %v", label, k, lg, lw)
		}
		for i := range lw {
			if lw[i] != lg[i] {
				t.Fatalf("%s: postings %q = %v, want %v", label, k, lg, lw)
			}
		}
	}
	if want.Stats != got.Stats {
		t.Fatalf("%s: stats %+v, want %+v", label, got.Stats, want.Stats)
	}
	if len(want.DocNames) != len(got.DocNames) {
		t.Fatalf("%s: doc names %v, want %v", label, got.DocNames, want.DocNames)
	}
	for i := range want.DocNames {
		if want.DocNames[i] != got.DocNames[i] {
			t.Fatalf("%s: doc names %v, want %v", label, got.DocNames, want.DocNames)
		}
	}
}

func TestDeleteDocTombstoneSemantics(t *testing.T) {
	a := wordDoc("a.xml", 0, "apple", "shared")
	b := wordDoc("b.xml", 1, "banana", "shared")
	c := wordDoc("c.xml", 2, "cherry", "shared")
	ix := rebuildFrom(t, a, b, c)
	nodesBefore := len(ix.Nodes)
	sharedBefore := len(ix.Lookup("shared"))

	del, err := ix.DeleteDoc("b.xml")
	if err != nil {
		t.Fatal(err)
	}

	// The receiver is untouched — old searchers keep a complete view.
	if len(ix.Nodes) != nodesBefore || len(ix.Lookup("shared")) != sharedBefore ||
		!ix.ContainsDoc("b.xml") || ix.Tombstoned() {
		t.Fatal("DeleteDoc mutated the receiver")
	}

	// The successor masks the dead document everywhere a reader looks.
	if !del.Tombstoned() {
		t.Fatal("successor is not tombstoned")
	}
	if del.ContainsDoc("b.xml") || !del.ContainsDoc("a.xml") || !del.ContainsDoc("c.xml") {
		t.Fatalf("live docs = %v", del.LiveDocs())
	}
	if got := del.Lookup("banana"); len(got) != 0 {
		t.Fatalf("dead document's keyword still visible: %v", got)
	}
	if got := len(del.Lookup("shared")); got != sharedBefore-1 {
		t.Fatalf("shared keyword has %d postings, want %d", got, sharedBefore-1)
	}
	if del.LiveDocCount() != 2 {
		t.Fatalf("live doc count = %d", del.LiveDocCount())
	}
	// Stats reflect only the survivors, exactly as a cold rebuild reports.
	if want := rebuildFrom(t, a, c).Stats; del.Stats != want {
		t.Fatalf("live stats %+v, want %+v", del.Stats, want)
	}
	// The dead document's id is free again: b held id 1, the max live id is
	// 2, so the next append takes 3 (ids stay in node-table order).
	if got := del.NextDocID(); got != 3 {
		t.Fatalf("NextDocID = %d, want 3", got)
	}

	// Deleting the highest live document hands its id back.
	del2, err := del.DeleteDoc("c.xml")
	if err != nil {
		t.Fatal(err)
	}
	if got := del2.NextDocID(); got != 1 {
		t.Fatalf("NextDocID after deleting the tail = %d, want 1", got)
	}
}

func TestDeleteDocErrors(t *testing.T) {
	ix := rebuildFrom(t, wordDoc("only.xml", 0, "apple"))
	if _, err := ix.DeleteDoc("missing.xml"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("unknown name: err = %v, want ErrNotFound", err)
	}
	if _, err := ix.DeleteDoc("only.xml"); !errors.Is(err, ErrLastDocument) {
		t.Fatalf("deleting the last document: err = %v, want ErrLastDocument", err)
	}
}

func TestCompactedEqualsRebuild(t *testing.T) {
	a := wordDoc("a.xml", 0, "apple", "shared")
	b := wordDoc("b.xml", 1, "banana", "shared", "banana")
	c := wordDoc("c.xml", 2, "cherry")
	d := wordDoc("d.xml", 3, "damson", "shared")
	ix := rebuildFrom(t, a, b, c, d)

	del, err := ix.DeleteDoc("b.xml")
	if err != nil {
		t.Fatal(err)
	}
	del, err = del.DeleteDoc("d.xml")
	if err != nil {
		t.Fatal(err)
	}
	compact := del.Compacted()
	if compact.Tombstoned() {
		t.Fatal("Compacted returned a tombstoned index")
	}
	// Survivors keep their original (now sparse) Dewey document numbers.
	assertLiveEqual(t, "compacted", rebuildFrom(t, a, c), compact)
	// Compacting a clean index is the identity.
	if compact.Compacted() != compact {
		t.Fatal("Compacted on a clean index did not return the receiver")
	}
}

func TestDeleteThenAppendEqualsRebuild(t *testing.T) {
	a := wordDoc("a.xml", 0, "apple")
	b := wordDoc("b.xml", 1, "banana")
	c := wordDoc("c.xml", 2, "cherry")
	ix := rebuildFrom(t, a, b, c)

	del, err := ix.DeleteDoc("a.xml")
	if err != nil {
		t.Fatal(err)
	}
	newDoc := wordDoc("n.xml", 0, "nectarine", "shared")
	next, err := Append(del, newDoc, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if next.Tombstoned() {
		t.Fatal("append did not compact the tombstones away")
	}
	// The appended document takes id 3 (one past the max live id, keeping
	// the node table in Dewey order despite the hole at id 0).
	want := rebuildFrom(t, b, c, wordDoc("n.xml", 3, "nectarine", "shared"))
	assertLiveEqual(t, "delete+append", want, next)
}

// TestAppendFailureLeavesDocumentUntouched is the regression test for the
// Append mutation bug: it used to renumber the caller's document (DocID and
// every Dewey ID) before validating it, so a failed append corrupted the
// document the caller still holds.
func TestAppendFailureLeavesDocumentUntouched(t *testing.T) {
	ix := rebuildFrom(t, wordDoc("a.xml", 0, "apple"))
	bad := &xmltree.Document{Name: "bad.xml", DocID: 7, Root: xmltree.T("loose text")}
	bad.AssignIDs()
	wantRoot := bad.Root.ID
	if _, err := Append(ix, bad, DefaultOptions()); err == nil {
		t.Fatal("append of a non-element root must fail")
	}
	if bad.DocID != 7 || !dewey.Equal(bad.Root.ID, wantRoot) {
		t.Fatalf("failed append mutated the caller's document: DocID=%d root=%s",
			bad.DocID, bad.Root.ID)
	}
}

// TestSaveCompactsTombstones: tombstones are a serving-time mask, never a
// persisted structure — every save path writes the compacted form, so a
// snapshot loaded after a crash equals the state the mutations reached.
func TestSaveCompactsTombstones(t *testing.T) {
	a := wordDoc("a.xml", 0, "apple")
	b := wordDoc("b.xml", 1, "banana")
	c := wordDoc("c.xml", 2, "cherry")
	ix := rebuildFrom(t, a, b, c)
	del, err := ix.DeleteDoc("b.xml")
	if err != nil {
		t.Fatal(err)
	}
	want := del.Compacted()

	var gob, bin, snap bytes.Buffer
	if err := del.Save(&gob); err != nil {
		t.Fatal(err)
	}
	if err := del.SaveBinary(&bin); err != nil {
		t.Fatal(err)
	}
	if err := del.SaveSnapshot(&snap); err != nil {
		t.Fatal(err)
	}
	for name, load := range map[string]func() (*Index, error){
		"gob":      func() (*Index, error) { return Load(&gob) },
		"binary":   func() (*Index, error) { return LoadBinary(&bin) },
		"snapshot": func() (*Index, error) { return Load(&snap) },
	} {
		got, err := load()
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if got.Tombstoned() {
			t.Fatalf("%s: loaded index is tombstoned", name)
		}
		assertLiveEqual(t, name, want, got)
	}
}

// TestRandomMutationsEqualRebuild drives a random interleaving of appends,
// replaces (delete+append, as System.UpsertDocument performs them) and
// deletes, checking after every step that the compacted live index is
// semantically identical to a cold rebuild from the surviving documents
// with their document ids preserved.
func TestRandomMutationsEqualRebuild(t *testing.T) {
	words := []string{"apple", "banana", "cherry", "damson", "elder", "fig"}
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 20; trial++ {
		mkdoc := func(name string, docID int32) *xmltree.Document {
			ws := make([]string, 1+rng.Intn(4))
			for i := range ws {
				ws[i] = words[rng.Intn(len(words))]
			}
			return wordDoc(name, docID, ws...)
		}
		seed := mkdoc("doc-0", 0)
		ix := rebuildFrom(t, seed)
		live := map[string]*xmltree.Document{"doc-0": seed} // survivors, by name
		next := 1

		for step := 0; step < 30; step++ {
			names := make([]string, 0, len(live))
			for n := range live {
				names = append(names, n)
			}
			switch op := rng.Intn(3); {
			case op == 0 || len(live) == 1: // append a new document
				name := fmt.Sprintf("doc-%d", next)
				next++
				doc := mkdoc(name, 0)
				out, err := AppendAs(ix, doc, ix.NextDocID(), DefaultOptions())
				if err != nil {
					t.Fatal(err)
				}
				ix, live[name] = out, doc
			case op == 1: // replace an existing document
				name := names[rng.Intn(len(names))]
				doc := mkdoc(name, 0)
				del, err := ix.DeleteDoc(name)
				if errors.Is(err, ErrLastDocument) {
					continue
				} else if err != nil {
					t.Fatal(err)
				}
				out, err := AppendAs(del, doc, del.NextDocID(), DefaultOptions())
				if err != nil {
					t.Fatal(err)
				}
				ix, live[name] = out, doc
			default: // delete
				name := names[rng.Intn(len(names))]
				out, err := ix.DeleteDoc(name)
				if err != nil {
					t.Fatal(err)
				}
				ix = out
				delete(live, name)
			}

			// Cold rebuild from survivors in document-id order.
			docs := make([]*xmltree.Document, 0, len(live))
			for _, d := range live {
				docs = append(docs, d)
			}
			for i := 0; i < len(docs); i++ {
				for j := i + 1; j < len(docs); j++ {
					if docs[j].DocID < docs[i].DocID {
						docs[i], docs[j] = docs[j], docs[i]
					}
				}
			}
			label := fmt.Sprintf("trial %d step %d (%d live)", trial, step, len(live))
			assertLiveEqual(t, label, rebuildFrom(t, docs...), ix.Compacted())
			if err := ix.Validate(); err != nil {
				t.Fatalf("%s: %v", label, err)
			}
		}
	}
}
