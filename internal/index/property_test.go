package index

import (
	"fmt"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/dewey"
	"repro/internal/xmltree"
)

// Structural invariants of the index, checked on random documents with
// testing/quick driving the tree shapes.

func randomDoc(seed int64) *xmltree.Document {
	rng := rand.New(rand.NewSource(seed))
	words := []string{"ant", "bee", "cat", "dog", "elk"}
	var build func(depth int) *xmltree.Node
	build = func(depth int) *xmltree.Node {
		if depth >= 5 || rng.Intn(3) == 0 {
			return xmltree.ET(fmt.Sprintf("v%d", rng.Intn(3)), words[rng.Intn(len(words))])
		}
		n := xmltree.E(fmt.Sprintf("e%d", rng.Intn(4)))
		for i := 0; i < 1+rng.Intn(3); i++ {
			n.Append(build(depth + 1))
		}
		return n
	}
	return xmltree.NewDocument("prop.xml", 0, build(0))
}

func TestPropertyNodeTableInvariants(t *testing.T) {
	f := func(seed int64) bool {
		doc := randomDoc(seed)
		ix, err := BuildDocument(doc, DefaultOptions())
		if err != nil {
			return false
		}
		for i := range ix.Nodes {
			n := &ix.Nodes[i]
			// Pre-order: IDs strictly increase.
			if i > 0 && dewey.Compare(ix.Nodes[i-1].ID, n.ID) >= 0 {
				return false
			}
			// Subtree sizes: 1 <= Subtree <= remaining nodes; nested ranges.
			if n.Subtree < 1 || int(n.Subtree) > len(ix.Nodes)-i {
				return false
			}
			// Parent is a proper pre-order predecessor whose range covers i.
			if n.Parent >= 0 {
				p := &ix.Nodes[n.Parent]
				if n.Parent >= int32(i) || !ix.ContainsOrd(n.Parent, int32(i)) {
					return false
				}
				if !p.ID.IsAncestorOf(n.ID) {
					return false
				}
			} else if len(n.ID.Path) != 1 {
				return false
			}
			// Category: exactly one of {AN, RN-or-EN combos, CN} per the
			// model — AN excludes everything else; CN excludes everything
			// else; RN and EN may combine.
			switch {
			case n.Cat == Attribute, n.Cat == Connecting:
			case n.Cat&(Attribute|Connecting) != 0:
				return false
			case n.Cat&(Repeating|Entity) == 0:
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Error(err)
	}
}

func TestPropertySubtreeRangesNest(t *testing.T) {
	f := func(seed int64) bool {
		doc := randomDoc(seed)
		ix, err := BuildDocument(doc, DefaultOptions())
		if err != nil {
			return false
		}
		// Ranges of any two nodes either nest or are disjoint.
		for i := 0; i < len(ix.Nodes); i++ {
			si, ei := ix.SubtreeRange(int32(i))
			for j := i + 1; j < len(ix.Nodes) && j < i+20; j++ {
				sj, ej := ix.SubtreeRange(int32(j))
				overlap := sj < ei && si < ej
				nested := (sj >= si && ej <= ei) || (si >= sj && ei <= ej)
				if overlap && !nested {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func TestPropertyPostingsPointAtValueOrLabel(t *testing.T) {
	f := func(seed int64) bool {
		doc := randomDoc(seed)
		ix, err := BuildDocument(doc, DefaultOptions())
		if err != nil {
			return false
		}
		for kw, list := range ix.Postings {
			prev := int32(-1)
			for _, ord := range list {
				if ord <= prev || int(ord) >= len(ix.Nodes) {
					return false
				}
				prev = ord
				// The posting's node must carry the keyword in its value
				// or its (normalized) label.
				n := &ix.Nodes[ord]
				if !n.HasValue && ix.LabelOf(ord) == "" {
					return false
				}
				_ = kw
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestPropertyEntityDefinition(t *testing.T) {
	// Def 2.1.3 verified directly: every entity node must expose a
	// qualifying attribute and a repeating endpoint through two distinct
	// children, computed here independently from the tree.
	f := func(seed int64) bool {
		doc := randomDoc(seed)
		ix, err := BuildDocument(doc, DefaultOptions())
		if err != nil {
			return false
		}
		var check func(n *xmltree.Node) bool
		check = func(n *xmltree.Node) bool {
			if n.IsElement() {
				ord, ok := ix.OrdinalOf(n.ID)
				if !ok {
					return false
				}
				if ix.Nodes[ord].Cat&Entity != 0 {
					if !entityByDefinition(n) {
						return false
					}
				}
			}
			for _, c := range n.Children {
				if c.IsElement() && !check(c) {
					return false
				}
			}
			return true
		}
		return check(doc.Root)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

// entityByDefinition re-derives Def 2.1.3 from the raw tree.
func entityByDefinition(v *xmltree.Node) bool {
	type vis struct{ qa, rv bool }
	var visibility func(n *xmltree.Node, isRep bool) vis
	labelCounts := func(n *xmltree.Node) map[string]int {
		m := map[string]int{}
		for _, c := range n.Children {
			if c.IsElement() {
				m[c.Label]++
			}
		}
		return m
	}
	visibility = func(n *xmltree.Node, isRep bool) vis {
		direct := n.DirectlyContainsValue()
		if direct {
			if isRep {
				return vis{qa: false, rv: true}
			}
			return vis{qa: true, rv: false}
		}
		if isRep {
			return vis{qa: false, rv: true}
		}
		counts := labelCounts(n)
		var out vis
		for _, c := range n.Children {
			if !c.IsElement() {
				continue
			}
			cv := visibility(c, counts[c.Label] > 1)
			out.qa = out.qa || cv.qa
			out.rv = out.rv || cv.rv
		}
		return out
	}
	counts := labelCounts(v)
	attr, rep, both := 0, 0, 0
	for _, c := range v.Children {
		if !c.IsElement() {
			continue
		}
		cv := visibility(c, counts[c.Label] > 1)
		switch {
		case cv.qa && cv.rv:
			both++
		case cv.qa:
			attr++
		case cv.rv:
			rep++
		}
	}
	switch {
	case both >= 2:
		return true
	case both == 1:
		return attr+rep >= 1
	default:
		return attr >= 1 && rep >= 1
	}
}
