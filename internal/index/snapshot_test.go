package index

import (
	"bytes"
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestSnapshotRoundTrip(t *testing.T) {
	ix := buildFig2a(t)
	var buf bytes.Buffer
	if err := ix.SaveSnapshot(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := Load(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	assertIndexesEqual(t, ix, back)
	if err := back.Validate(); err != nil {
		t.Fatalf("reloaded snapshot fails validation: %v", err)
	}
}

// TestSnapshotDetectsBitFlips flips every byte of a v3 snapshot in turn;
// each damaged image must fail to load (almost always via the CRC), and
// every failure must be typed ErrCorrupt — never a panic or a silently
// wrong index.
func TestSnapshotDetectsBitFlips(t *testing.T) {
	ix := buildFig2a(t)
	var buf bytes.Buffer
	if err := ix.SaveSnapshot(&buf); err != nil {
		t.Fatal(err)
	}
	good := buf.Bytes()
	for i := range good {
		damaged := bytes.Clone(good)
		damaged[i] ^= 0x40
		_, err := Load(bytes.NewReader(damaged))
		if err == nil {
			t.Fatalf("flip at byte %d: corrupt snapshot loaded without error", i)
		}
		if !errors.Is(err, ErrCorrupt) {
			t.Fatalf("flip at byte %d: error not ErrCorrupt: %v", i, err)
		}
	}
}

func TestSnapshotDetectsTruncation(t *testing.T) {
	ix := buildFig2a(t)
	var buf bytes.Buffer
	if err := ix.SaveSnapshot(&buf); err != nil {
		t.Fatal(err)
	}
	good := buf.Bytes()
	for cut := 0; cut < len(good); cut += 7 {
		if _, err := Load(bytes.NewReader(good[:cut])); err == nil {
			t.Fatalf("snapshot truncated to %d of %d bytes loaded without error", cut, len(good))
		}
	}
}

// failAfterWriter errors once n bytes have been written — the simulated
// crash / full disk in the middle of a snapshot save.
type failAfterWriter struct {
	w io.Writer
	n int
}

func (f *failAfterWriter) Write(p []byte) (int, error) {
	if f.n <= 0 {
		return 0, fmt.Errorf("simulated crash mid-write")
	}
	if len(p) > f.n {
		p = p[:f.n]
		n, err := f.w.Write(p)
		f.n -= n
		if err != nil {
			return n, err
		}
		return n, fmt.Errorf("simulated crash mid-write")
	}
	n, err := f.w.Write(p)
	f.n -= n
	return n, err
}

// TestSaveFileCrashMidWritePreservesPrevious proves the atomicity claim:
// when a save dies partway through, the previous snapshot at the
// destination survives byte-for-byte and still loads, and no temp litter
// is left behind.
func TestSaveFileCrashMidWritePreservesPrevious(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "repo.gksidx")

	ix := buildFig2a(t)
	if err := ix.SaveFile(path); err != nil {
		t.Fatal(err)
	}
	goodBytes, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}

	for _, failAt := range []int{0, 1, 10, len(goodBytes) / 2, len(goodBytes) - 1} {
		testInterceptWriter = func(w io.Writer) io.Writer { return &failAfterWriter{w: w, n: failAt} }
		err := ix.SaveFile(path)
		testInterceptWriter = nil
		if err == nil {
			t.Fatalf("failAt=%d: SaveFile succeeded despite writer failure", failAt)
		}
		after, err := os.ReadFile(path)
		if err != nil {
			t.Fatalf("failAt=%d: previous snapshot gone: %v", failAt, err)
		}
		if !bytes.Equal(after, goodBytes) {
			t.Fatalf("failAt=%d: previous snapshot modified by failed save", failAt)
		}
		if _, err := LoadFile(path); err != nil {
			t.Fatalf("failAt=%d: previous snapshot no longer loads: %v", failAt, err)
		}
	}

	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		if strings.Contains(e.Name(), ".tmp") {
			t.Errorf("temp file %s left behind by failed save", e.Name())
		}
	}
}

func TestSaveFileReplacesExisting(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "repo.gksidx")
	ix := buildFig2a(t)
	if err := ix.SaveFile(path); err != nil {
		t.Fatal(err)
	}
	if err := ix.SaveFile(path); err != nil {
		t.Fatal(err)
	}
	back, err := LoadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	assertIndexesEqual(t, ix, back)
}

// TestLoadFileCorruptNamesFile covers the startup contract: a corrupt or
// truncated snapshot fails fast with an ErrCorrupt-wrapped error that
// names the offending file.
func TestLoadFileCorruptNamesFile(t *testing.T) {
	dir := t.TempDir()
	ix := buildFig2a(t)

	var snap bytes.Buffer
	if err := ix.SaveSnapshot(&snap); err != nil {
		t.Fatal(err)
	}
	var gob bytes.Buffer
	if err := ix.Save(&gob); err != nil {
		t.Fatal(err)
	}
	var bin bytes.Buffer
	if err := ix.SaveBinary(&bin); err != nil {
		t.Fatal(err)
	}

	cases := map[string][]byte{
		"garbage.gksidx":       []byte("this is not an index at all"),
		"truncated-v3.gksidx":  snap.Bytes()[:snap.Len()/2],
		"flipped-v3.gksidx":    flipByte(snap.Bytes(), snap.Len()-2),
		"truncated-gob.gksidx": gob.Bytes()[:gob.Len()/2],
		"truncated-v2.gksidx":  bin.Bytes()[:bin.Len()/2],
	}
	for name, data := range cases {
		path := filepath.Join(dir, name)
		if err := os.WriteFile(path, data, 0o644); err != nil {
			t.Fatal(err)
		}
		_, err := LoadFile(path)
		if err == nil {
			t.Errorf("%s: loaded without error", name)
			continue
		}
		if !errors.Is(err, ErrCorrupt) {
			t.Errorf("%s: error not ErrCorrupt: %v", name, err)
		}
		if !strings.Contains(err.Error(), path) {
			t.Errorf("%s: error does not name the file: %v", name, err)
		}
	}

	// A missing file is an environmental error, not corruption.
	if _, err := LoadFile(filepath.Join(dir, "nope.gksidx")); err == nil {
		t.Error("missing file loaded without error")
	} else if errors.Is(err, ErrCorrupt) {
		t.Errorf("missing file misreported as corrupt: %v", err)
	}
}

func flipByte(b []byte, i int) []byte {
	out := bytes.Clone(b)
	out[i] ^= 0xff
	return out
}

// TestLoadBoundedAllocation feeds headers that claim astronomically many
// nodes/postings backed by almost no bytes; the loader must reject them as
// corrupt (given the known file size) instead of pre-allocating gigabytes.
func TestLoadBoundedAllocation(t *testing.T) {
	dir := t.TempDir()

	// v2 stream: magic, version 2, 0 labels, 0 docs, 2^30 nodes... and EOF.
	hugeNodes := append([]byte(binaryMagic), 2, 0, 0)
	hugeNodes = appendUvarint(hugeNodes, 1<<30)
	path := filepath.Join(dir, "huge-nodes.gksidx")
	if err := os.WriteFile(path, hugeNodes, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadFile(path); err == nil || !errors.Is(err, ErrCorrupt) {
		t.Errorf("huge node count: want ErrCorrupt, got %v", err)
	}

	// Same stream through size-unknown Load: it may begin decoding, but the
	// bounded pre-allocation means it fails on EOF after a small allocation
	// rather than demanding 2^30 * sizeof(NodeInfo) up front.
	if _, err := Load(bytes.NewReader(hugeNodes)); err == nil {
		t.Error("huge node count loaded without error from stream")
	}

	// v3 envelope claiming a multi-GB payload that is not there.
	hdr := appendUvarint(nil, snapshotVersion)
	hdr = appendUvarint(hdr, 1<<40)
	frame := append([]byte(snapshotMagic), byte(len(hdr)))
	frame = append(frame, hdr...)
	if _, err := Load(bytes.NewReader(frame)); err == nil || !errors.Is(err, ErrCorrupt) {
		t.Errorf("lying v3 payload length: want ErrCorrupt, got %v", err)
	}
}

func appendUvarint(b []byte, v uint64) []byte {
	for v >= 0x80 {
		b = append(b, byte(v)|0x80)
		v >>= 7
	}
	return append(b, byte(v))
}

func TestValidateCatchesDamage(t *testing.T) {
	good := buildFig2a(t)
	if err := good.Validate(); err != nil {
		t.Fatalf("healthy index fails validation: %v", err)
	}

	mutate := map[string]func(*Index){
		"label out of range":   func(ix *Index) { ix.Nodes[0].Label = int32(len(ix.Labels)) },
		"parent not preceding": func(ix *Index) { ix.Nodes[1].Parent = 1 },
		"subtree overruns":     func(ix *Index) { ix.Nodes[0].Subtree = int32(len(ix.Nodes)) + 5 },
		"posting out of range": func(ix *Index) {
			for kw := range ix.Postings {
				ix.Postings[kw] = []int32{int32(len(ix.Nodes))}
				break
			}
		},
		"posting out of order": func(ix *Index) {
			for kw := range ix.Postings {
				ix.Postings[kw] = []int32{2, 1}
				break
			}
		},
	}
	for name, fn := range mutate {
		ix := buildFig2a(t)
		fn(ix)
		if err := ix.Validate(); err == nil {
			t.Errorf("%s: validation passed on damaged index", name)
		}
	}
}
