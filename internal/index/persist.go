package index

import (
	"bufio"
	"encoding/gob"
	"fmt"
	"io"
	"os"
)

// persisted is the gob wire format of an Index. Preparing the index "is a
// onetime activity" (§2.4); Save/Load let tools and benchmarks reuse a
// built index across runs, and SizeBytes reports the serialized size for
// the Table 4 experiment.
type persisted struct {
	Version  int
	Labels   []string
	Nodes    []NodeInfo
	Postings map[string][]int32
	DocNames []string
	Stats    Stats
}

const formatVersion = 1

// Save writes the index to w in gob format.
func (ix *Index) Save(w io.Writer) error {
	enc := gob.NewEncoder(w)
	p := persisted{
		Version:  formatVersion,
		Labels:   ix.Labels,
		Nodes:    ix.Nodes,
		Postings: ix.Postings,
		DocNames: ix.DocNames,
		Stats:    ix.Stats,
	}
	if err := enc.Encode(&p); err != nil {
		return fmt.Errorf("index: save: %w", err)
	}
	return nil
}

// Load reads an index previously written by Save (gob, format v1) or
// SaveBinary (compact binary, format v2); the format is auto-detected from
// the leading bytes.
func Load(r io.Reader) (*Index, error) {
	br := bufio.NewReader(r)
	if magic, err := br.Peek(len(binaryMagic)); err == nil && string(magic) == binaryMagic {
		if _, err := br.Discard(len(binaryMagic)); err != nil {
			return nil, fmt.Errorf("index: load: %w", err)
		}
		return loadBinaryAfterMagic(br)
	}
	return loadGob(br)
}

func loadGob(r io.Reader) (*Index, error) {
	dec := gob.NewDecoder(r)
	var p persisted
	if err := dec.Decode(&p); err != nil {
		return nil, fmt.Errorf("index: load: %w", err)
	}
	if p.Version != formatVersion {
		return nil, fmt.Errorf("index: load: unsupported format version %d", p.Version)
	}
	ix := &Index{
		Labels:   p.Labels,
		Nodes:    p.Nodes,
		Postings: p.Postings,
		DocNames: p.DocNames,
		Stats:    p.Stats,
		labelIDs: make(map[string]int32, len(p.Labels)),
	}
	if ix.Postings == nil {
		ix.Postings = make(map[string][]int32)
	}
	for i, l := range ix.Labels {
		ix.labelIDs[l] = int32(i)
	}
	return ix, nil
}

// SaveFile writes the index to path.
func (ix *Index) SaveFile(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("index: %w", err)
	}
	if err := ix.Save(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// LoadFile reads an index from path.
func LoadFile(path string) (*Index, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("index: %w", err)
	}
	defer f.Close()
	return Load(f)
}

// SizeBytes returns the size of the serialized index — the "Index Size"
// column of Table 4.
func (ix *Index) SizeBytes() (int64, error) {
	var cw countWriter
	if err := ix.Save(&cw); err != nil {
		return 0, err
	}
	return cw.n, nil
}

type countWriter struct{ n int64 }

func (c *countWriter) Write(p []byte) (int, error) {
	c.n += int64(len(p))
	return len(p), nil
}
