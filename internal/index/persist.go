package index

import (
	"bufio"
	"encoding/gob"
	"errors"
	"fmt"
	"io"
	"os"
)

// persisted is the gob wire format of an Index. Preparing the index "is a
// onetime activity" (§2.4); Save/Load let tools and benchmarks reuse a
// built index across runs, and SizeBytes reports the serialized size for
// the Table 4 experiment.
type persisted struct {
	Version  int
	Labels   []string
	Nodes    []NodeInfo
	Postings map[string][]int32
	DocNames []string
	Stats    Stats
}

const formatVersion = 1

// Save writes the index to w in gob format (v1, legacy). New snapshots
// should prefer SaveSnapshot / SaveFile, which add checksummed framing.
// A tombstoned index is compacted first: deletes never reach disk as
// masks, so every load yields a plain immutable index.
func (ix *Index) Save(w io.Writer) error {
	// gob encodes the Postings map directly, so a lazily-backed index must
	// be materialized first (SaveBinary/SaveSnapshot stream instead), and
	// the v1 wire format predates the packed node table, so a packed index
	// is flattened.
	ix, err := ix.Materialized()
	if err != nil {
		return err
	}
	ix = ix.Compacted().Unpacked()
	enc := gob.NewEncoder(w)
	p := persisted{
		Version:  formatVersion,
		Labels:   ix.Labels,
		Nodes:    ix.Nodes,
		Postings: ix.Postings,
		DocNames: ix.DocNames,
		Stats:    ix.Stats,
	}
	if err := enc.Encode(&p); err != nil {
		return fmt.Errorf("index: save: %w", err)
	}
	return nil
}

// Load reads an index previously written by Save (gob, format v1),
// SaveBinary (compact binary, format v2) or SaveSnapshot (checksummed
// envelope, format v3); the format is auto-detected from the leading bytes.
// Damaged input fails with an ErrCorrupt-wrapped error; v1/v2 streams
// detect damage on decode, while v3 verifies a CRC32 before decoding.
func Load(r io.Reader) (*Index, error) {
	return loadSized(r, -1)
}

// loadSized is Load with a bound on the bytes plausibly available in r
// (size < 0 means unknown). The decoder uses the bound to cap
// pre-allocations, so a corrupt header claiming billions of nodes cannot
// demand a giant allocation from a tiny file.
func loadSized(r io.Reader, size int64) (*Index, error) {
	br := bufio.NewReader(r)
	if magic, err := br.Peek(len(snapshotMagic)); err == nil && string(magic) == snapshotMagic {
		if _, err := br.Discard(len(snapshotMagic)); err != nil {
			return nil, fmt.Errorf("index: load: %w", err)
		}
		return loadSnapshotAfterMagic(br)
	}
	if magic, err := br.Peek(len(binaryMagic)); err == nil && string(magic) == binaryMagic {
		if _, err := br.Discard(len(binaryMagic)); err != nil {
			return nil, fmt.Errorf("index: load: %w", err)
		}
		if size >= 0 {
			size -= int64(len(binaryMagic))
		}
		return loadBinaryAfterMagic(br, size)
	}
	return loadGob(br)
}

func loadGob(r io.Reader) (ix *Index, err error) {
	// encoding/gob decodes adversarial input with errors, but a defensive
	// recover keeps Load panic-free even if a decoder edge case slips
	// through — corrupt snapshots must never crash a serving process.
	defer func() {
		if v := recover(); v != nil {
			ix, err = nil, corruptf("gob decode panicked: %v", v)
		}
	}()
	dec := gob.NewDecoder(r)
	var p persisted
	if err := dec.Decode(&p); err != nil {
		return nil, corruptf("gob load: %v", err)
	}
	if p.Version != formatVersion {
		return nil, corruptf("gob load: unsupported format version %d", p.Version)
	}
	ix = &Index{
		Labels:   p.Labels,
		Nodes:    p.Nodes,
		Postings: p.Postings,
		DocNames: p.DocNames,
		Stats:    p.Stats,
		labelIDs: make(map[string]int32, len(p.Labels)),
	}
	if ix.Postings == nil {
		ix.Postings = make(map[string][]int32)
	}
	for i, l := range ix.Labels {
		ix.labelIDs[l] = int32(i)
	}
	return ix, nil
}

// SaveFile writes the index to path in the checksummed snapshot format
// (v3), atomically: the bytes go to a temp file in the same directory which
// is fsynced and renamed over path, so a crash, full disk, or failed write
// mid-save never destroys a previous snapshot at path.
func (ix *Index) SaveFile(path string) error {
	return WriteFileAtomic(path, ix.SaveSnapshot)
}

// LoadFile reads an index from path (any format; see Load). Decode
// failures are wrapped with ErrCorrupt and the file name, so startup and
// reload paths surface "which snapshot is bad" rather than a raw
// gob/varint error.
func LoadFile(path string) (*Index, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("index: %w", err)
	}
	defer f.Close()
	size := int64(-1)
	if fi, err := f.Stat(); err == nil {
		size = fi.Size()
	}
	ix, err := loadSized(f, size)
	if err != nil {
		if errors.Is(err, ErrCorrupt) {
			return nil, fmt.Errorf("index: snapshot %s: %w", path, err)
		}
		return nil, fmt.Errorf("index: snapshot %s: %w (%v)", path, ErrCorrupt, err)
	}
	return ix, nil
}

// SizeBytes returns the size of the serialized index — the "Index Size"
// column of Table 4 — as written by SaveSnapshot, the v3 checksummed
// format everything actually ships. It used to measure the legacy gob v1
// encoding, which forced a Materialized()+Unpacked() flattening of the
// whole index and reported a format nothing writes anymore; the snapshot
// writer streams lazy postings straight from their source and serializes
// a packed node table without unpacking it, so this is cheap on every
// representation.
func (ix *Index) SizeBytes() (int64, error) {
	var cw countWriter
	if err := ix.SaveSnapshot(&cw); err != nil {
		return 0, err
	}
	return cw.n, nil
}

type countWriter struct{ n int64 }

func (c *countWriter) Write(p []byte) (int, error) {
	c.n += int64(len(p))
	return len(p), nil
}
