package index

import (
	"encoding/binary"
	"fmt"

	"repro/internal/dewey"
)

// DAG-compressed node table (ROADMAP item 4, after "Efficient XML Keyword
// Search based on DAG-Compression", Böttcher et al.): a structure-of-arrays
// replacement for the []NodeInfo hot path that (1) stores only the trailing
// Dewey component per node — full paths are rebuilt by the parent-chain
// walk the engine already performs for LCA — and every Value string in one
// shared interned arena, and (2) deduplicates identical element subtrees:
// each repeated subtree's *shape* (labels, categories, child structure,
// values and the sibling Dewey offsets of its element children) is stored
// once in a shape table, and an instance table maps pre-order ordinal
// ranges onto shapes. The window/LCP engine keeps running over plain
// instance ordinals — resolution from ordinal to node fields is O(1) via a
// 4-byte-per-node dispatch array — and expansion to a full NodeInfo (Dewey
// path included) happens lazily at result-lift/snippet time.
//
// The packed table is a read-only serving form. Mutation entry points
// materialize the flat table first (mirroring how lazy posting sources are
// materialized before mutation) and Compacted() re-packs, so a packed
// index survives delete/compact churn without losing its representation.
//
// Layout. Every ordinal is either a *spine* node (stored individually) or
// part of an *instance* (a subtree that shares a shape with at least one
// other subtree). ordInst[ord] >= 0 names the instance; ordInst[ord] < 0
// encodes the spine slot as ^v. An instance covers the contiguous ordinal
// range [inStart[i], inStart[i]+shape size); the k-th node of the range is
// the k-th pre-order node of the shape. Because the packing scan only
// descends into spine nodes and skips whole instance subtrees, an instance
// root's parent is always a spine node — per-instance data is therefore
// just (start, shape, parent ordinal, trailing Dewey component, depth).
type packedNodes struct {
	// ordInst dispatches an ordinal: >= 0 → instance index, < 0 → spine
	// index ^v.
	ordInst []int32

	// Spine arrays, indexed by spine slot.
	spLabel   []int32
	spCat     []uint8
	spChild   []int32
	spSubtree []int32
	spParent  []int32 // global parent ordinal, -1 at a document root
	spLast    []int32 // trailing Dewey path component
	spDepth   []int32
	spVal     []int32 // value id, -1 when the node has no direct text

	// Instance arrays, indexed by instance.
	inStart  []int32 // first ordinal of the instance's subtree range
	inShape  []int32
	inParent []int32 // global parent ordinal of the instance root (spine)
	inLast   []int32 // trailing Dewey component of the instance root
	inDepth  []int32 // absolute depth of the instance root

	// Shape arrays: shOff[s]..shOff[s+1] delimit shape s's pre-order node
	// records. Within a shape, parents are shape-relative offsets and
	// depths are relative to the shape root; shLast of the shape root is
	// unused (the root's component is per-instance).
	shOff     []int32
	shLabel   []int32
	shCat     []uint8
	shChild   []int32
	shSubtree []int32
	shParent  []int32 // shape-relative parent offset, -1 at the shape root
	shLast    []int32
	shDepth   []int32
	shVal     []int32 // value id, -1 when absent

	// Interned value arena: value id v spans valArena[valOff[v]:valOff[v+1]].
	valOff   []int32
	valArena []byte

	// Document roots in ordinal order: docStart[k] is the root ordinal of
	// the k-th document in the table, docNum[k] its Dewey document number.
	docStart []int32
	docNum   []int32

	// Delta-append bookkeeping (see packed_append.go). deltaNodes and
	// deltaDocs count what the delta path appended since the last full
	// pack — the repack policy's debt numerator. app carries the lineage's
	// append claim and lookup sidecar; it travels by pointer across
	// delta-appended generations and is never serialized (a loaded table
	// starts a fresh lineage with zero debt).
	deltaNodes int
	deltaDocs  int
	app        *appendState
}

// IsPacked reports whether the node table is DAG-compressed.
func (ix *Index) IsPacked() bool { return ix.packed != nil }

// NodeCount returns the number of element nodes in the table, packed or
// flat. It replaces len(ix.Nodes) everywhere a reader must work on both
// representations.
func (ix *Index) NodeCount() int {
	if ix.packed != nil {
		return len(ix.packed.ordInst)
	}
	return len(ix.Nodes)
}

// --- O(1) per-ordinal field resolution ---------------------------------

func (p *packedNodes) shapeSlot(ord int32) (int32, int32) {
	i := p.ordInst[ord]
	return i, p.shOff[p.inShape[i]] + (ord - p.inStart[i])
}

func (p *packedNodes) labelOf(ord int32) int32 {
	if v := p.ordInst[ord]; v < 0 {
		return p.spLabel[^v]
	}
	_, s := p.shapeSlot(ord)
	return p.shLabel[s]
}

func (p *packedNodes) catOf(ord int32) Category {
	if v := p.ordInst[ord]; v < 0 {
		return Category(p.spCat[^v])
	}
	_, s := p.shapeSlot(ord)
	return Category(p.shCat[s])
}

func (p *packedNodes) childCountOf(ord int32) int32 {
	if v := p.ordInst[ord]; v < 0 {
		return p.spChild[^v]
	}
	_, s := p.shapeSlot(ord)
	return p.shChild[s]
}

func (p *packedNodes) subtreeOf(ord int32) int32 {
	if v := p.ordInst[ord]; v < 0 {
		return p.spSubtree[^v]
	}
	_, s := p.shapeSlot(ord)
	return p.shSubtree[s]
}

func (p *packedNodes) parentOf(ord int32) int32 {
	v := p.ordInst[ord]
	if v < 0 {
		return p.spParent[^v]
	}
	i := v
	k := ord - p.inStart[i]
	if k == 0 {
		return p.inParent[i]
	}
	s := p.shOff[p.inShape[i]]
	return p.inStart[i] + p.shParent[s+k]
}

func (p *packedNodes) depthOf(ord int32) int32 {
	if v := p.ordInst[ord]; v < 0 {
		return p.spDepth[^v]
	}
	i, s := p.shapeSlot(ord)
	return p.inDepth[i] + p.shDepth[s]
}

func (p *packedNodes) lastOf(ord int32) int32 {
	v := p.ordInst[ord]
	if v < 0 {
		return p.spLast[^v]
	}
	i := v
	if ord == p.inStart[i] {
		return p.inLast[i]
	}
	_, s := p.shapeSlot(ord)
	return p.shLast[s]
}

func (p *packedNodes) valIDOf(ord int32) int32 {
	if v := p.ordInst[ord]; v < 0 {
		return p.spVal[^v]
	}
	_, s := p.shapeSlot(ord)
	return p.shVal[s]
}

func (p *packedNodes) value(id int32) string {
	return string(p.valArena[p.valOff[id]:p.valOff[id+1]])
}

// docOf returns the Dewey document number of the document containing ord
// by binary search over the root table.
func (p *packedNodes) docOf(ord int32) int32 {
	lo, hi := 0, len(p.docStart)
	for lo < hi {
		mid := (lo + hi) / 2
		if p.docStart[mid] <= ord {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return p.docNum[lo-1]
}

// appendPath appends ord's full Dewey path to buf by walking the parent
// chain; depths are O(1) so the slice is sized once.
func (p *packedNodes) appendPath(ord int32, buf []int32) []int32 {
	d := int(p.depthOf(ord)) + 1
	n := len(buf)
	for i := 0; i < d; i++ {
		buf = append(buf, 0)
	}
	for cur := ord; d > 0; d-- {
		buf[n+d-1] = p.lastOf(cur)
		cur = p.parentOf(cur)
	}
	return buf
}

func (p *packedNodes) idOf(ord int32) dewey.ID {
	return dewey.ID{Doc: p.docOf(ord), Path: p.appendPath(ord, nil)}
}

// compareID orders ord's Dewey ID against id without materializing a path
// allocation (OrdinalOf probes this O(log n) times per lookup).
func (p *packedNodes) compareID(ord int32, id dewey.ID) int {
	if doc := p.docOf(ord); doc != id.Doc {
		if doc < id.Doc {
			return -1
		}
		return 1
	}
	var scratch [64]int32
	path := p.appendPath(ord, scratch[:0])
	for i := 0; i < len(path) && i < len(id.Path); i++ {
		if path[i] != id.Path[i] {
			if path[i] < id.Path[i] {
				return -1
			}
			return 1
		}
	}
	switch {
	case len(path) < len(id.Path):
		return -1
	case len(path) > len(id.Path):
		return 1
	}
	return 0
}

// nodeInfo materializes the full NodeInfo of ord — the lazy expansion used
// at result-lift/snippet time and by flat materialization.
func (p *packedNodes) nodeInfo(ord int32) NodeInfo {
	n := NodeInfo{
		ID:         p.idOf(ord),
		Label:      p.labelOf(ord),
		Cat:        p.catOf(ord),
		ChildCount: p.childCountOf(ord),
		Subtree:    p.subtreeOf(ord),
		Parent:     p.parentOf(ord),
	}
	if v := p.valIDOf(ord); v >= 0 {
		n.HasValue = true
		n.Value = p.value(v)
	}
	return n
}

// --- packing ------------------------------------------------------------

// Pack returns an index serving from the DAG-compressed node table. The
// posting lists, label table, document names and statistics are shared
// with ix (they are immutable); only the node storage changes shape. A
// tombstoned index is compacted first — the packed form has no delete
// mask — and packing an already-packed index returns it unchanged.
// Packing is deterministic: equal flat tables pack to equal packed tables.
func (ix *Index) Pack() *Index {
	if ix.packed != nil {
		return ix
	}
	ix = ix.Compacted()
	out := &Index{
		Labels:   ix.Labels,
		Postings: ix.Postings,
		DocNames: ix.DocNames,
		Stats:    ix.Stats,
		labelIDs: ix.labelIDs,
		lazy:     ix.lazy,
		packed:   packNodes(ix.Nodes),
	}
	return out
}

// Unpacked returns a flat-table equivalent of the index: every node is
// materialized into a fresh []NodeInfo. An already-flat index is returned
// as-is. Mutation paths that must edit node records in place (appends,
// schema re-categorization) call this before operating and may re-Pack
// afterwards.
func (ix *Index) Unpacked() *Index {
	if ix.packed == nil {
		return ix
	}
	p := ix.packed
	nodes := make([]NodeInfo, len(p.ordInst))
	for ord := range nodes {
		nodes[ord] = p.nodeInfo(int32(ord))
	}
	return &Index{
		Labels:   ix.Labels,
		Nodes:    nodes,
		Postings: ix.Postings,
		DocNames: ix.DocNames,
		Stats:    ix.Stats,
		labelIDs: ix.labelIDs,
		lazy:     ix.lazy,
		tomb:     ix.tomb,
	}
}

// UnpackInPlace materializes the flat node table into ix itself and drops
// the packed form. Unlike Unpacked it mutates the receiver, keeping
// ordinals, the tombstone mask and the shared postings untouched — the
// entry half of the unpack→edit→RepackInPlace dance used by in-place
// mutators such as schema re-categorization.
func (ix *Index) UnpackInPlace() {
	if ix.packed == nil {
		return
	}
	p := ix.packed
	nodes := make([]NodeInfo, len(p.ordInst))
	for ord := range nodes {
		nodes[ord] = p.nodeInfo(int32(ord))
	}
	ix.Nodes, ix.packed = nodes, nil
}

// RepackInPlace re-derives the packed node table from ix.Nodes without
// compacting, so ordinals (and any tombstone mask over them) are
// preserved. No-op on an already-packed index.
func (ix *Index) RepackInPlace() {
	if ix.packed != nil || ix.Nodes == nil {
		return
	}
	ix.packed = packNodes(ix.Nodes)
	ix.Nodes = nil
}

// packNodes builds the packed representation from a flat pre-order table.
//
// Pass 1 interns values (first-encounter order) and computes a structural
// shape id per node bottom-up: the shape key covers the node's label,
// category, child count, value id and, for each element child, the child's
// shape id *and* its trailing Dewey component — text-node interleaving
// shifts sibling components, so two subtrees are shape-equal only when
// their element layout relative to text children matches too. Interning is
// exact (keyed on the canonical encoding, not a hash), so distinct
// subtrees can never be merged.
//
// Pass 2 scans top-down: a node whose shape occurs at least twice becomes
// an instance and its whole subtree is skipped (so nested repeats dedup at
// the outermost level); everything else is spine and the scan descends.
func packNodes(nodes []NodeInfo) *packedNodes {
	packCount.Add(1)
	n := int32(len(nodes))
	p := &packedNodes{ordInst: make([]int32, n)}
	p.app = &appendState{owner: p}

	// Value interning.
	valIDs := make(map[string]int32)
	valOf := make([]int32, n)
	for ord := int32(0); ord < n; ord++ {
		nd := &nodes[ord]
		if !nd.HasValue {
			valOf[ord] = -1
			continue
		}
		id, ok := valIDs[nd.Value]
		if !ok {
			id = int32(len(p.valOff))
			valIDs[nd.Value] = id
			p.valOff = append(p.valOff, int32(len(p.valArena)))
			p.valArena = append(p.valArena, nd.Value...)
		}
		valOf[ord] = id
	}
	p.valOff = append(p.valOff, int32(len(p.valArena)))

	// Bottom-up shape interning. Children have higher ordinals than their
	// parents in pre-order, so a reverse sweep sees every child's shape
	// before the parent needs it.
	shapeIDs := make(map[string]int32)
	shapeOf := make([]int32, n)
	shapeCount := make([]int32, 0, 1024)
	var key []byte
	for ord := n - 1; ord >= 0; ord-- {
		nd := &nodes[ord]
		key = binary.AppendUvarint(key[:0], uint64(nd.Label))
		key = append(key, byte(nd.Cat))
		key = binary.AppendUvarint(key, uint64(nd.ChildCount))
		key = binary.AppendUvarint(key, uint64(valOf[ord]+1))
		for c := ord + 1; c < ord+nd.Subtree; c += nodes[c].Subtree {
			key = binary.AppendUvarint(key, uint64(shapeOf[c]))
			key = binary.AppendUvarint(key, uint64(uint32(lastComp(&nodes[c]))))
		}
		sid, ok := shapeIDs[string(key)]
		if !ok {
			sid = int32(len(shapeCount))
			shapeIDs[string(key)] = sid
			shapeCount = append(shapeCount, 0)
		}
		shapeOf[ord] = sid
		shapeCount[sid]++
	}

	// Top-down instance selection. canon maps a raw shape id to its
	// emitted shape-table index, assigned in first-instance order so the
	// result is deterministic.
	canon := make(map[int32]int32)
	for ord := int32(0); ord < n; {
		nd := &nodes[ord]
		sid := shapeOf[ord]
		if shapeCount[sid] < 2 {
			slot := int32(len(p.spLabel))
			p.ordInst[ord] = ^slot
			p.spLabel = append(p.spLabel, nd.Label)
			p.spCat = append(p.spCat, uint8(nd.Cat))
			p.spChild = append(p.spChild, nd.ChildCount)
			p.spSubtree = append(p.spSubtree, nd.Subtree)
			p.spParent = append(p.spParent, nd.Parent)
			p.spLast = append(p.spLast, lastComp(nd))
			p.spDepth = append(p.spDepth, int32(nd.ID.Depth()))
			p.spVal = append(p.spVal, valOf[ord])
			ord++
			continue
		}
		cs, ok := canon[sid]
		if !ok {
			// First instance of this shape: emit the shape's node records
			// from this occurrence. Parents and depths become relative to
			// the shape root.
			cs = int32(len(p.shOff))
			canon[sid] = cs
			p.shOff = append(p.shOff, int32(len(p.shLabel)))
			for k := int32(0); k < nd.Subtree; k++ {
				m := &nodes[ord+k]
				p.shLabel = append(p.shLabel, m.Label)
				p.shCat = append(p.shCat, uint8(m.Cat))
				p.shChild = append(p.shChild, m.ChildCount)
				p.shSubtree = append(p.shSubtree, m.Subtree)
				rel := int32(-1)
				if k > 0 {
					rel = m.Parent - ord
				}
				p.shParent = append(p.shParent, rel)
				p.shLast = append(p.shLast, lastComp(m))
				p.shDepth = append(p.shDepth, int32(m.ID.Depth()-nd.ID.Depth()))
				p.shVal = append(p.shVal, valOf[ord+k])
			}
		}
		inst := int32(len(p.inStart))
		p.inStart = append(p.inStart, ord)
		p.inShape = append(p.inShape, cs)
		p.inParent = append(p.inParent, nd.Parent)
		p.inLast = append(p.inLast, lastComp(nd))
		p.inDepth = append(p.inDepth, int32(nd.ID.Depth()))
		for k := int32(0); k < nd.Subtree; k++ {
			p.ordInst[ord+k] = inst
		}
		ord += nd.Subtree
	}
	p.shOff = append(p.shOff, int32(len(p.shLabel)))

	// Document roots.
	for ord := int32(0); ord < n; ord += nodes[ord].Subtree {
		p.docStart = append(p.docStart, ord)
		p.docNum = append(p.docNum, nodes[ord].ID.Doc)
	}
	return p
}

func lastComp(n *NodeInfo) int32 { return n.ID.Path[len(n.ID.Path)-1] }

// --- accounting ---------------------------------------------------------

// PackInfo summarizes a packed node table for benchmarks and stats tools.
type PackInfo struct {
	// Nodes is the total element-node count; SpineNodes of them are stored
	// individually, the rest are covered by Instances of Shapes distinct
	// deduplicated subtrees (ShapeNodes node records shared among them).
	Nodes, SpineNodes, Instances, Shapes, ShapeNodes int
	// Values is the interned distinct-value count, ValueBytes the arena
	// size.
	Values, ValueBytes int
	// DeltaNodes and DeltaDocs count what the delta-maintaining append
	// added since the last full pack; DeadNodes counts tombstoned
	// ordinals still physically present. (DeltaNodes+DeadNodes)/Nodes is
	// the pack debt (see Index.PackDebt) the repack policy thresholds on.
	DeltaNodes, DeltaDocs, DeadNodes int
}

// PackedInfo returns the dedup summary of a packed index, or a zero value
// and false on a flat one.
func (ix *Index) PackedInfo() (PackInfo, bool) {
	p := ix.packed
	if p == nil {
		return PackInfo{}, false
	}
	dead := 0
	if ix.tomb != nil {
		for _, r := range ix.tomb.dead {
			dead += int(r[1] - r[0])
		}
	}
	return PackInfo{
		Nodes:      len(p.ordInst),
		SpineNodes: len(p.spLabel),
		Instances:  len(p.inStart),
		Shapes:     len(p.shOff) - 1,
		ShapeNodes: len(p.shLabel),
		Values:     len(p.valOff) - 1,
		ValueBytes: len(p.valArena),
		DeltaNodes: p.deltaNodes,
		DeltaDocs:  p.deltaDocs,
		DeadNodes:  dead,
	}, true
}

// NodeTableBytes returns the exact heap footprint of the node table's
// backing storage: for a packed index the sum of its arrays, for a flat
// one the NodeInfo structs plus every per-node Dewey path backing array
// and value string. This is the "node table" column of the segment and
// DAG benchmarks — computed, not sampled, so it is stable across GC
// timing.
func (ix *Index) NodeTableBytes() int64 {
	if p := ix.packed; p != nil {
		b := int64(len(p.ordInst)) * 4
		b += int64(len(p.spLabel))*4 + int64(len(p.spCat)) + int64(len(p.spChild))*4 +
			int64(len(p.spSubtree))*4 + int64(len(p.spParent))*4 + int64(len(p.spLast))*4 +
			int64(len(p.spDepth))*4 + int64(len(p.spVal))*4
		b += int64(len(p.inStart))*4 + int64(len(p.inShape))*4 + int64(len(p.inParent))*4 +
			int64(len(p.inLast))*4 + int64(len(p.inDepth))*4
		b += int64(len(p.shOff))*4 + int64(len(p.shLabel))*4 + int64(len(p.shCat)) +
			int64(len(p.shChild))*4 + int64(len(p.shSubtree))*4 + int64(len(p.shParent))*4 +
			int64(len(p.shLast))*4 + int64(len(p.shDepth))*4 + int64(len(p.shVal))*4
		b += int64(len(p.valOff))*4 + int64(len(p.valArena))
		b += int64(len(p.docStart))*4 + int64(len(p.docNum))*4
		return b
	}
	const nodeInfoSize = 72 // unsafe.Sizeof(NodeInfo{}) on 64-bit
	b := int64(len(ix.Nodes)) * nodeInfoSize
	for i := range ix.Nodes {
		n := &ix.Nodes[i]
		b += int64(len(n.ID.Path)) * 4
		b += int64(len(n.Value))
	}
	return b
}

// validatePacked checks the structural invariants of the packed arrays,
// mirroring what Validate checks on the flat table. Every derived lookup
// (shapeSlot, parentOf, docOf) indexes blindly for speed, so a decoded
// packed image must pass here before it serves.
func (p *packedNodes) validatePacked() error {
	n := int32(len(p.ordInst))
	nSpine := int32(len(p.spLabel))
	nInst := int32(len(p.inStart))
	nShapes := int32(len(p.shOff)) - 1
	nShapeNodes := int32(len(p.shLabel))
	nVals := int32(len(p.valOff)) - 1

	if nShapes < 0 || nVals < 0 {
		return fmt.Errorf("index: validate packed: missing offset sentinel")
	}
	for _, ls := range [][2]int{
		{len(p.spCat), int(nSpine)}, {len(p.spChild), int(nSpine)},
		{len(p.spSubtree), int(nSpine)}, {len(p.spParent), int(nSpine)},
		{len(p.spLast), int(nSpine)}, {len(p.spDepth), int(nSpine)},
		{len(p.spVal), int(nSpine)},
		{len(p.inShape), int(nInst)}, {len(p.inParent), int(nInst)},
		{len(p.inLast), int(nInst)}, {len(p.inDepth), int(nInst)},
		{len(p.shCat), int(nShapeNodes)}, {len(p.shChild), int(nShapeNodes)},
		{len(p.shSubtree), int(nShapeNodes)}, {len(p.shParent), int(nShapeNodes)},
		{len(p.shLast), int(nShapeNodes)}, {len(p.shDepth), int(nShapeNodes)},
		{len(p.shVal), int(nShapeNodes)},
		{len(p.docNum), len(p.docStart)},
	} {
		if ls[0] != ls[1] {
			return fmt.Errorf("index: validate packed: parallel array length mismatch (%d vs %d)", ls[0], ls[1])
		}
	}
	prev := int32(0)
	for s := int32(0); s <= nShapes; s++ {
		off := p.shOff[s]
		if off < prev || off > nShapeNodes {
			return fmt.Errorf("index: validate packed: shape offset %d out of order", off)
		}
		prev = off
	}
	prev = 0
	for v := int32(0); v <= nVals; v++ {
		off := p.valOff[v]
		if off < prev || int(off) > len(p.valArena) {
			return fmt.Errorf("index: validate packed: value offset %d out of order", off)
		}
		prev = off
	}
	for i := int32(0); i < nInst; i++ {
		s := p.inShape[i]
		if s < 0 || s >= nShapes {
			return fmt.Errorf("index: validate packed: instance %d: shape %d out of range [0,%d)", i, s, nShapes)
		}
		size := p.shOff[s+1] - p.shOff[s]
		if size < 1 {
			return fmt.Errorf("index: validate packed: shape %d is empty", s)
		}
		start := p.inStart[i]
		if start < 0 || int64(start)+int64(size) > int64(n) {
			return fmt.Errorf("index: validate packed: instance %d: range [%d,%d) overruns %d nodes", i, start, start+size, n)
		}
		if par := p.inParent[i]; par < -1 || par >= start {
			return fmt.Errorf("index: validate packed: instance %d: parent %d is not a preceding ordinal", i, par)
		}
		if p.inDepth[i] < 0 {
			return fmt.Errorf("index: validate packed: instance %d: negative depth", i)
		}
	}
	for k := int32(0); k < nShapeNodes; k++ {
		if p.shVal[k] < -1 || p.shVal[k] >= nVals {
			return fmt.Errorf("index: validate packed: shape node %d: value id %d out of range [−1,%d)", k, p.shVal[k], nVals)
		}
		if p.shSubtree[k] < 1 {
			return fmt.Errorf("index: validate packed: shape node %d: subtree size %d < 1", k, p.shSubtree[k])
		}
		if p.shChild[k] < 0 || p.shDepth[k] < 0 {
			return fmt.Errorf("index: validate packed: shape node %d: negative child count or depth", k)
		}
	}
	for s := int32(0); s < nShapes; s++ {
		base, end := p.shOff[s], p.shOff[s+1]
		if p.shParent[base] != -1 {
			return fmt.Errorf("index: validate packed: shape %d: root parent %d != -1", s, p.shParent[base])
		}
		if p.shDepth[base] != 0 {
			return fmt.Errorf("index: validate packed: shape %d: root depth %d != 0", s, p.shDepth[base])
		}
		if p.shSubtree[base] != end-base {
			return fmt.Errorf("index: validate packed: shape %d: root subtree %d != shape size %d", s, p.shSubtree[base], end-base)
		}
		for k := base + 1; k < end; k++ {
			rel := p.shParent[k]
			if rel < 0 || rel >= k-base {
				return fmt.Errorf("index: validate packed: shape %d node %d: parent offset %d is not a preceding offset", s, k-base, rel)
			}
			if int64(k-base)+int64(p.shSubtree[k]) > int64(end-base) {
				return fmt.Errorf("index: validate packed: shape %d node %d: subtree overruns shape", s, k-base)
			}
		}
	}
	for v := int32(0); v < nSpine; v++ {
		if p.spVal[v] < -1 || p.spVal[v] >= nVals {
			return fmt.Errorf("index: validate packed: spine %d: value id %d out of range [−1,%d)", v, p.spVal[v], nVals)
		}
		if p.spSubtree[v] < 1 || p.spChild[v] < 0 || p.spDepth[v] < 0 {
			return fmt.Errorf("index: validate packed: spine %d: negative or zero structural field", v)
		}
	}
	// The dispatch array must tile [0,n) consistently: spine slots and
	// instance ranges must agree with the arrays they point to.
	seenInst := int32(-1)
	for ord := int32(0); ord < n; ord++ {
		v := p.ordInst[ord]
		if v < 0 {
			slot := ^v
			if slot >= nSpine {
				return fmt.Errorf("index: validate packed: ordinal %d: spine slot %d out of range [0,%d)", ord, slot, nSpine)
			}
			if par := p.spParent[slot]; par < -1 || par >= ord {
				return fmt.Errorf("index: validate packed: ordinal %d: parent %d is not a preceding ordinal", ord, par)
			}
			if int64(ord)+int64(p.spSubtree[slot]) > int64(n) {
				return fmt.Errorf("index: validate packed: ordinal %d: subtree overruns %d nodes", ord, n)
			}
			continue
		}
		if v >= nInst {
			return fmt.Errorf("index: validate packed: ordinal %d: instance %d out of range [0,%d)", ord, v, nInst)
		}
		if k := ord - p.inStart[v]; k < 0 || k >= p.shOff[p.inShape[v]+1]-p.shOff[p.inShape[v]] {
			return fmt.Errorf("index: validate packed: ordinal %d: outside instance %d's range", ord, v)
		}
		if v != seenInst && ord != p.inStart[v] {
			return fmt.Errorf("index: validate packed: instance %d entered mid-range at ordinal %d", v, ord)
		}
		seenInst = v
	}
	if len(p.docStart) == 0 && n > 0 {
		return fmt.Errorf("index: validate packed: no document roots for %d nodes", n)
	}
	prev = -1
	for k, start := range p.docStart {
		if start < 0 || start >= n || start <= prev {
			return fmt.Errorf("index: validate packed: document root %d out of order or out of range", start)
		}
		if p.ordInst[start] < 0 {
			if p.spParent[^p.ordInst[start]] != -1 {
				return fmt.Errorf("index: validate packed: document root ordinal %d has a parent", start)
			}
		} else if p.inParent[p.ordInst[start]] != -1 || p.inStart[p.ordInst[start]] != start {
			return fmt.Errorf("index: validate packed: document root ordinal %d has a parent", start)
		}
		if k > 0 && p.docNum[k] <= p.docNum[k-1] {
			return fmt.Errorf("index: validate packed: document numbers out of order at root %d", start)
		}
		prev = start
	}
	return nil
}
