package index

import (
	"bytes"
	"errors"
	"fmt"
	"testing"

	"repro/internal/datagen"
	"repro/internal/dewey"
	"repro/internal/xmltree"
)

// packedCorpora builds the corpora the packed-table tests sweep: the
// paper's running examples, a repetitive replicated repository (whole
// documents dedup into instances) and low-repetition generator shapes.
func packedCorpora(t *testing.T) map[string]*Index {
	t.Helper()
	build := func(repo *xmltree.Repository) *Index {
		ix, err := Build(repo, DefaultOptions())
		if err != nil {
			t.Fatal(err)
		}
		return ix
	}
	multi := &xmltree.Repository{}
	multi.Add(xmltree.BuildFigure2a())
	multi.Add(xmltree.BuildFigure1())
	return map[string]*Index{
		"fig2a": buildFig2a(t),
		"multi": build(multi),
		"replicated": build(datagen.Replicate(func() *xmltree.Document {
			return datagen.SigmodRecord(datagen.BibConfig{Config: datagen.Config{Seed: 7}, Entries: 40})
		}, 4)),
		"dblp": build(datagen.Repo(datagen.DBLP(datagen.BibConfig{
			Config: datagen.Config{Seed: 11}, Entries: 150,
		}))),
		"dblp-dup": build(datagen.Repo(datagen.DBLP(datagen.BibConfig{
			Config: datagen.Config{Seed: 11}, Entries: 150, DupFraction: 0.6,
		}))),
		"mondial": build(datagen.Repo(datagen.Mondial(datagen.Config{Seed: 5}))),
	}
}

// assertAccessorsEqual compares every per-ordinal accessor of two indexes
// that must describe identical logical tables (one may be packed).
func assertAccessorsEqual(t *testing.T, flat, packed *Index) {
	t.Helper()
	if flat.NodeCount() != packed.NodeCount() {
		t.Fatalf("node counts differ: %d vs %d", flat.NodeCount(), packed.NodeCount())
	}
	for ord := int32(0); ord < int32(flat.NodeCount()); ord++ {
		if a, b := flat.LabelIDOf(ord), packed.LabelIDOf(ord); a != b {
			t.Fatalf("ord %d: label %d vs %d", ord, a, b)
		}
		if a, b := flat.CatOf(ord), packed.CatOf(ord); a != b {
			t.Fatalf("ord %d: cat %v vs %v", ord, a, b)
		}
		if a, b := flat.ChildCountOf(ord), packed.ChildCountOf(ord); a != b {
			t.Fatalf("ord %d: child count %d vs %d", ord, a, b)
		}
		if a, b := flat.SubtreeSizeOf(ord), packed.SubtreeSizeOf(ord); a != b {
			t.Fatalf("ord %d: subtree %d vs %d", ord, a, b)
		}
		if a, b := flat.ParentOf(ord), packed.ParentOf(ord); a != b {
			t.Fatalf("ord %d: parent %d vs %d", ord, a, b)
		}
		if a, b := flat.DepthOf(ord), packed.DepthOf(ord); a != b {
			t.Fatalf("ord %d: depth %d vs %d", ord, a, b)
		}
		if a, b := flat.HasValueAt(ord), packed.HasValueAt(ord); a != b {
			t.Fatalf("ord %d: has-value %v vs %v", ord, a, b)
		}
		if a, b := flat.ValueAt(ord), packed.ValueAt(ord); a != b {
			t.Fatalf("ord %d: value %q vs %q", ord, a, b)
		}
		if a, b := flat.IDOf(ord), packed.IDOf(ord); !dewey.Equal(a, b) {
			t.Fatalf("ord %d: id %v vs %v", ord, a, b)
		}
		if a, b := flat.DocOf(ord), packed.DocOf(ord); a != b {
			t.Fatalf("ord %d: doc %d vs %d", ord, a, b)
		}
	}
}

func TestPackAccessorsMatchFlat(t *testing.T) {
	for name, flat := range packedCorpora(t) {
		t.Run(name, func(t *testing.T) {
			packed := flat.Pack()
			if !packed.IsPacked() || flat.IsPacked() {
				t.Fatal("Pack must produce a packed copy and leave the flat source flat")
			}
			if err := packed.Validate(); err != nil {
				t.Fatalf("packed index fails validation: %v", err)
			}
			assertAccessorsEqual(t, flat, packed)

			info, ok := packed.PackedInfo()
			if !ok {
				t.Fatal("PackedInfo must report on a packed index")
			}
			t.Logf("%s: %d nodes → %d spine + %d instances of %d shapes (%d shape nodes), %d values (%d B); %d B vs flat %d B",
				name, info.Nodes, info.SpineNodes, info.Instances, info.Shapes, info.ShapeNodes,
				info.Values, info.ValueBytes, packed.NodeTableBytes(), flat.NodeTableBytes())
		})
	}
}

func TestPackUnpackedRoundTrip(t *testing.T) {
	for name, flat := range packedCorpora(t) {
		t.Run(name, func(t *testing.T) {
			back := flat.Pack().Unpacked()
			if back.IsPacked() {
				t.Fatal("Unpacked must return a flat index")
			}
			assertIndexesEqual(t, flat, back)
		})
	}
}

func TestPackIsDeterministic(t *testing.T) {
	flat := packedCorpora(t)["replicated"]
	var a, b bytes.Buffer
	if err := flat.Pack().SaveBinary(&a); err != nil {
		t.Fatal(err)
	}
	if err := flat.Pack().SaveBinary(&b); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Fatal("packing + serialization must be deterministic")
	}
}

func TestPackedOrdinalOf(t *testing.T) {
	flat := packedCorpora(t)["replicated"]
	packed := flat.Pack()
	for ord := int32(0); ord < int32(flat.NodeCount()); ord++ {
		got, ok := packed.OrdinalOf(flat.IDOf(ord))
		if !ok || got != ord {
			t.Fatalf("ord %d: OrdinalOf(%v) = %d, %v", ord, flat.IDOf(ord), got, ok)
		}
	}
	// A Dewey ID that is not in the table must not be found.
	if _, ok := packed.OrdinalOf(dewey.ID{Doc: 9999, Path: []int32{1, 2, 3}}); ok {
		t.Fatal("absent id must not resolve")
	}
}

func TestPackedDedupsReplicatedDocs(t *testing.T) {
	// Four identical replicas: at least three document roots must collapse
	// into instances of the first replica's shape.
	flat := packedCorpora(t)["replicated"]
	packed := flat.Pack()
	info, _ := packed.PackedInfo()
	if info.Instances < 3 {
		t.Fatalf("expected ≥3 instances from 4 identical replicas, got %d", info.Instances)
	}
	if fb, pb := flat.NodeTableBytes(), packed.NodeTableBytes(); pb*2 > fb {
		t.Errorf("replicated corpus should pack to <1/2 of flat: packed %d B vs flat %d B", pb, fb)
	}
}

func TestPackedBinaryRoundTrip(t *testing.T) {
	for name, flat := range packedCorpora(t) {
		t.Run(name, func(t *testing.T) {
			packed := flat.Pack()
			var buf bytes.Buffer
			if err := packed.SaveBinary(&buf); err != nil {
				t.Fatal(err)
			}
			back, err := Load(bytes.NewReader(buf.Bytes()))
			if err != nil {
				t.Fatal(err)
			}
			if !back.IsPacked() {
				t.Fatal("v3 image must load packed")
			}
			if err := back.Validate(); err != nil {
				t.Fatalf("loaded packed index fails validation: %v", err)
			}
			assertAccessorsEqual(t, flat, back)
			assertIndexesEqual(t, flat, back.Unpacked())
		})
	}
}

func TestPackedSnapshotRoundTrip(t *testing.T) {
	flat := packedCorpora(t)["dblp-dup"]
	packed := flat.Pack()
	var buf bytes.Buffer
	if err := packed.SaveSnapshot(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := Load(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if !back.IsPacked() {
		t.Fatal("snapshot of a packed index must load packed")
	}
	assertAccessorsEqual(t, flat, back)
}

func TestPackedMetaRoundTrip(t *testing.T) {
	for name, flat := range packedCorpora(t) {
		t.Run(name, func(t *testing.T) {
			packed := flat.Pack()
			var buf bytes.Buffer
			if err := EncodeMeta(&buf, packed); err != nil {
				t.Fatal(err)
			}
			back, err := DecodeMeta(bytes.NewReader(buf.Bytes()), int64(buf.Len()))
			if err != nil {
				t.Fatal(err)
			}
			if !back.IsPacked() {
				t.Fatal("packed meta must decode packed")
			}
			assertAccessorsEqual(t, flat, back)
		})
	}
}

func TestPackedCodecRejectsDamage(t *testing.T) {
	flat := packedCorpora(t)["replicated"]
	var buf bytes.Buffer
	if err := flat.Pack().SaveBinary(&buf); err != nil {
		t.Fatal(err)
	}
	full := buf.Bytes()

	// Every truncation must fail typed as ErrCorrupt, never panic.
	for cut := 0; cut < len(full); cut += 1 + len(full)/257 {
		_, err := Load(bytes.NewReader(full[:cut]))
		if err == nil {
			t.Fatalf("truncation at %d bytes must fail", cut)
		}
		if !errors.Is(err, ErrCorrupt) {
			t.Fatalf("truncation at %d bytes: error not typed ErrCorrupt: %v", cut, err)
		}
	}
	// Bit flips must be caught by the loader (typed ErrCorrupt) or by the
	// Validate pass every reload path runs before swapping an index in; a
	// flip inside a value string is legal data and passes both. No outcome
	// may panic.
	for pos := 0; pos < len(full); pos += 1 + len(full)/509 {
		for _, bit := range []byte{0x01, 0x80} {
			dam := append([]byte(nil), full...)
			dam[pos] ^= bit
			ix, err := Load(bytes.NewReader(dam))
			if err != nil {
				if !errors.Is(err, ErrCorrupt) {
					t.Fatalf("bit flip at %d: error not typed ErrCorrupt: %v", pos, err)
				}
				continue
			}
			_ = ix.Validate() // either verdict is fine; must not panic
		}
	}
}

func TestPackedDeleteAndCompact(t *testing.T) {
	flat := packedCorpora(t)["replicated"]
	packed := flat.Pack()

	delP, err := packed.DeleteDoc(packed.DocNames[1])
	if err != nil {
		t.Fatal(err)
	}
	if !delP.IsPacked() {
		t.Fatal("deleting from a packed index must keep it packed")
	}
	delF, err := flat.DeleteDoc(flat.DocNames[1])
	if err != nil {
		t.Fatal(err)
	}
	if delP.Stats != delF.Stats {
		t.Fatalf("tombstoned stats differ: %+v vs %+v", delP.Stats, delF.Stats)
	}

	compP, compF := delP.Compacted(), delF.Compacted()
	if !compP.IsPacked() {
		t.Fatal("compacting a packed index must re-pack")
	}
	assertAccessorsEqual(t, compF, compP)
	assertIndexesEqual(t, compF, compP.Unpacked())

	// The re-packed table must byte-match a cold rebuild's pack.
	var a, b bytes.Buffer
	if err := compP.SaveBinary(&a); err != nil {
		t.Fatal(err)
	}
	if err := compF.Pack().SaveBinary(&b); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Fatal("compacted re-pack must byte-match packing the compacted flat table")
	}
}

func TestPackedTextInterleavingNotMerged(t *testing.T) {
	// <a>text<b/></a> and <a><b/>text</a> have identical element
	// structure but different sibling Dewey components; their subtrees
	// must NOT share a shape. Build two such parents plus duplicates so
	// both shapes qualify for dedup.
	root := xmltree.E("r")
	for i := 0; i < 2; i++ {
		a1 := xmltree.E("a")
		a1.Append(xmltree.T("text before"))
		a1.Append(xmltree.E("b"))
		root.Append(a1)
		a2 := xmltree.E("a")
		a2.Append(xmltree.E("b"))
		a2.Append(xmltree.T("text before"))
		root.Append(a2)
	}
	doc := xmltree.NewDocument("interleave.xml", 0, root)
	flat, err := BuildDocument(doc, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	packed := flat.Pack()
	if err := packed.Validate(); err != nil {
		t.Fatal(err)
	}
	assertAccessorsEqual(t, flat, packed)
}

func TestNodeTableBytesAccounting(t *testing.T) {
	flat := packedCorpora(t)["dblp-dup"]
	packed := flat.Pack()
	fb, pb := flat.NodeTableBytes(), packed.NodeTableBytes()
	if fb <= 0 || pb <= 0 {
		t.Fatalf("node table byte accounting must be positive: flat %d, packed %d", fb, pb)
	}
	if pb >= fb {
		t.Errorf("packed table (%d B) should be smaller than flat (%d B)", pb, fb)
	}
	t.Log(fmt.Sprintf("flat %d B, packed %d B (%.2fx)", fb, pb, float64(fb)/float64(pb)))
}
