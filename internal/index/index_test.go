package index

import (
	"bytes"
	"sort"
	"testing"

	"repro/internal/dewey"
	"repro/internal/xmltree"
)

func buildFig2a(t *testing.T) *Index {
	t.Helper()
	ix, err := BuildDocument(xmltree.BuildFigure2a(), DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	return ix
}

// catOf returns the category of the node with the given Dewey string.
func catOf(t *testing.T, ix *Index, id string) Category {
	t.Helper()
	ord, ok := ix.OrdinalOf(dewey.MustParse(id))
	if !ok {
		t.Fatalf("node %s not found", id)
	}
	return ix.Nodes[ord].Cat
}

func TestFigure2aCategories(t *testing.T) {
	ix := buildFig2a(t)
	cases := []struct {
		id   string
		want Category
		desc string
	}{
		{"0.0", Entity, "Dept is an entity node"},
		{"0.0.0", Attribute, "Dept_Name is an attribute node"},
		{"0.0.1", Entity | Repeating, "Area is both entity and repeating"},
		{"0.0.2", Entity | Repeating, "second Area too"},
		{"0.0.1.0", Attribute, "Area/Name is an attribute node"},
		{"0.0.1.1", Connecting, "Courses is a connecting node"},
		{"0.0.1.1.0", Entity | Repeating, "Course is entity + repeating"},
		{"0.0.1.1.1", Entity | Repeating, "second Course too"},
		{"0.0.1.1.0.0", Attribute, "Course/Name is an attribute node"},
		{"0.0.1.1.0.1", Connecting, "Students is a connecting node"},
		{"0.0.1.1.0.1.0", Repeating, "Student is a repeating node"},
		{"0.0.2.1", Connecting, "single-course Courses is connecting (lowest-LCA rule)"},
		{"0.0.2.1.0", Entity, "single Course is entity but not repeating"},
	}
	for _, c := range cases {
		if got := catOf(t, ix, c.id); got != c.want {
			t.Errorf("%s (%s): category = %v, want %v", c.id, c.desc, got, c.want)
		}
	}
}

func TestFigure2aStats(t *testing.T) {
	ix := buildFig2a(t)
	s := ix.Stats
	if s.ElementNodes != 32 {
		t.Errorf("ElementNodes = %d, want 32", s.ElementNodes)
	}
	if s.AttributeNodes != 7 {
		t.Errorf("AttributeNodes = %d, want 7", s.AttributeNodes)
	}
	if s.RepeatingNodes != 17 {
		t.Errorf("RepeatingNodes = %d, want 17", s.RepeatingNodes)
	}
	if s.EntityNodes != 7 {
		t.Errorf("EntityNodes = %d, want 7", s.EntityNodes)
	}
	if s.ConnectingNodes != 6 {
		t.Errorf("ConnectingNodes = %d, want 6", s.ConnectingNodes)
	}
	if s.MaxDepth != 5 {
		t.Errorf("MaxDepth = %d, want 5", s.MaxDepth)
	}
	if s.Documents != 1 {
		t.Errorf("Documents = %d, want 1", s.Documents)
	}
}

func TestPostingsTable3(t *testing.T) {
	// Table 3 of the paper: Karen appears at did.0.1.1.0.1.0 and
	// did.0.1.1.2.1.0 (and, in our fixture, in the Algorithms course too).
	ix := buildFig2a(t)
	karen := ix.Lookup("Karen")
	want := []string{"0.0.1.1.0.1.0", "0.0.1.1.1.1.0", "0.0.1.1.2.1.0"}
	if len(karen) != len(want) {
		t.Fatalf("karen postings = %d entries, want %d", len(karen), len(want))
	}
	for i, ord := range karen {
		if got := ix.Nodes[ord].ID.String(); got != want[i] {
			t.Errorf("karen[%d] = %s, want %s", i, got, want[i])
		}
	}
	// Mike: Data Mining and AI courses.
	mike := ix.Lookup("Mike")
	if len(mike) != 2 {
		t.Errorf("mike postings = %d, want 2", len(mike))
	}
}

func TestPostingsSortedAndCaseInsensitive(t *testing.T) {
	ix := buildFig2a(t)
	for kw, posts := range ix.Postings {
		for i := 1; i < len(posts); i++ {
			if posts[i-1] >= posts[i] {
				t.Fatalf("postings for %q not strictly increasing: %v", kw, posts)
			}
		}
	}
	if len(ix.Lookup("KAREN")) != len(ix.Lookup("karen")) {
		t.Error("lookup must be case-insensitive")
	}
}

func TestElementNameKeywords(t *testing.T) {
	ix := buildFig2a(t)
	// "Students" and "Student" both stem to "student": 4 + 12 tags.
	students := ix.Lookup("student")
	if len(students) != 16 {
		t.Errorf("student element postings = %d, want 16", len(students))
	}
	course := ix.Lookup("Course")
	// 4 <Course> elements + 1 <Courses>? No: "Courses" stems to "cours" and
	// "Course" stems to "cours" as well, so both tag families share a key.
	if len(course) != 6 {
		t.Errorf("course element postings = %d, want 6 (4 Course + 2 Courses)", len(course))
	}

	// With element-name indexing off, tags are not searchable.
	off, err := BuildDocument(xmltree.BuildFigure2a(), Options{IndexElementNames: false})
	if err != nil {
		t.Fatal(err)
	}
	if got := off.Lookup("student"); got != nil {
		t.Errorf("element names indexed despite opts: %v", got)
	}
	if len(off.Lookup("karen")) == 0 {
		t.Error("text keywords must still be indexed")
	}
}

func TestStemmingUnifiesQueryAndIndex(t *testing.T) {
	ix := buildFig2a(t)
	// "Databases" is indexed; querying "database" must hit the same list.
	a := ix.Lookup("Databases")
	b := ix.Lookup("database")
	if len(a) == 0 || len(a) != len(b) {
		t.Errorf("stem mismatch: %d vs %d postings", len(a), len(b))
	}
}

func TestMultiWordValuesSplit(t *testing.T) {
	ix := buildFig2a(t)
	// "Data Mining" contributes separate entries for data and mining.
	if len(ix.Lookup("data")) == 0 || len(ix.Lookup("mining")) == 0 {
		t.Error("multi-keyword text values must be split into separate entries")
	}
}

func TestSubtreeRangeAndContains(t *testing.T) {
	ix := buildFig2a(t)
	area, _ := ix.OrdinalOf(dewey.MustParse("0.0.1"))
	start, end := ix.SubtreeRange(area)
	if start != area {
		t.Errorf("range start = %d, want %d", start, area)
	}
	// Databases area subtree: Area + Name + Courses + 3×(Course+Name+Students) + 10 students = 22 elements.
	if end-start != 22 {
		t.Errorf("area subtree size = %d, want 22", end-start)
	}
	course0, _ := ix.OrdinalOf(dewey.MustParse("0.0.1.1.0"))
	if !ix.ContainsOrd(area, course0) {
		t.Error("Area must contain Course 0")
	}
	if ix.ContainsOrd(course0, area) {
		t.Error("Course must not contain Area")
	}
}

func TestLowestEntityAncestorOrSelf(t *testing.T) {
	ix := buildFig2a(t)
	student, _ := ix.OrdinalOf(dewey.MustParse("0.0.1.1.0.1.0"))
	e, ok := ix.LowestEntityAncestorOrSelf(student)
	if !ok {
		t.Fatal("student must have an entity ancestor")
	}
	if got := ix.Nodes[e].ID.String(); got != "0.0.1.1.0" {
		t.Errorf("LCE lift of student = %s, want Course 0.0.1.1.0", got)
	}
	// An entity node lifts to itself.
	course, _ := ix.OrdinalOf(dewey.MustParse("0.0.1.1.0"))
	e2, ok := ix.LowestEntityAncestorOrSelf(course)
	if !ok || e2 != course {
		t.Errorf("entity must lift to itself, got %d want %d", e2, course)
	}
}

func TestIsEntityIsElementHelpers(t *testing.T) {
	ix := buildFig2a(t)
	course, _ := ix.OrdinalOf(dewey.MustParse("0.0.1.1.0"))
	if got := ix.IsEntity(course); got != 2 {
		t.Errorf("isEntity(Course) = %d, want child count 2", got)
	}
	students, _ := ix.OrdinalOf(dewey.MustParse("0.0.1.1.0.1"))
	if got := ix.IsEntity(students); got != 0 {
		t.Errorf("isEntity(Students) = %d, want 0", got)
	}
	if got := ix.IsElement(students); got != 3 {
		t.Errorf("isElement(Students) = %d, want 3 (3 Student children)", got)
	}
	name, _ := ix.OrdinalOf(dewey.MustParse("0.0.1.1.0.0"))
	if got := ix.IsElement(name); got != 0 {
		t.Errorf("isElement(attribute Name) = %d, want 0", got)
	}
}

func TestPathLabels(t *testing.T) {
	ix := buildFig2a(t)
	course, _ := ix.OrdinalOf(dewey.MustParse("0.0.1.1.0"))
	name, _ := ix.OrdinalOf(dewey.MustParse("0.0.1.1.0.0"))
	got := ix.PathLabels(course, name)
	want := []string{"Course", "Name"}
	if len(got) != len(want) || got[0] != want[0] || got[1] != want[1] {
		t.Errorf("PathLabels = %v, want %v", got, want)
	}
	// Cross-branch path is nil.
	other, _ := ix.OrdinalOf(dewey.MustParse("0.0.2"))
	if ix.PathLabels(course, other) != nil {
		t.Error("PathLabels across branches must be nil")
	}
}

func TestValueNodesUnder(t *testing.T) {
	ix := buildFig2a(t)
	course0, _ := ix.OrdinalOf(dewey.MustParse("0.0.1.1.0"))
	vals := ix.ValueNodesUnder(course0)
	// Name + 3 Students.
	if len(vals) != 4 {
		t.Fatalf("value nodes under Course 0 = %d, want 4", len(vals))
	}
	// Area's own value nodes exclude those of nested Course entities.
	area, _ := ix.OrdinalOf(dewey.MustParse("0.0.1"))
	vals = ix.ValueNodesUnder(area)
	if len(vals) != 1 || ix.LabelOf(vals[0]) != "Name" {
		t.Errorf("value nodes under Area = %d (want only its own Name)", len(vals))
	}
}

func TestOrdinalOf(t *testing.T) {
	ix := buildFig2a(t)
	for ord := range ix.Nodes {
		got, ok := ix.OrdinalOf(ix.Nodes[ord].ID)
		if !ok || got != int32(ord) {
			t.Fatalf("OrdinalOf(%s) = %d/%v, want %d", ix.Nodes[ord].ID, got, ok, ord)
		}
	}
	if _, ok := ix.OrdinalOf(dewey.MustParse("0.0.9.9")); ok {
		t.Error("OrdinalOf must fail for missing nodes")
	}
}

func TestMultiDocumentIndex(t *testing.T) {
	var repo xmltree.Repository
	repo.Add(xmltree.BuildFigure2a())
	repo.Add(xmltree.NewDocument("extra.xml", 0, xmltree.E("Dept",
		xmltree.ET("Dept_Name", "EE"),
		xmltree.E("Area",
			xmltree.ET("Name", "Signals"),
			xmltree.E("Courses",
				xmltree.E("Course",
					xmltree.ET("Name", "DSP"),
					xmltree.E("Students",
						xmltree.ET("Student", "Karen"),
						xmltree.ET("Student", "Zoe"),
					),
				),
			),
		),
	)))
	ix, err := Build(&repo, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	karen := ix.Lookup("karen")
	if len(karen) != 4 {
		t.Fatalf("karen across documents = %d, want 4", len(karen))
	}
	last := ix.Nodes[karen[len(karen)-1]].ID
	if last.Doc != 1 {
		t.Errorf("last karen posting in doc %d, want 1", last.Doc)
	}
	if len(ix.DocNames) != 2 {
		t.Errorf("DocNames = %v", ix.DocNames)
	}
}

func TestBuildErrors(t *testing.T) {
	if _, err := Build(nil, DefaultOptions()); err == nil {
		t.Error("nil repository must fail")
	}
	if _, err := Build(&xmltree.Repository{}, DefaultOptions()); err == nil {
		t.Error("empty repository must fail")
	}
	bad := &xmltree.Repository{Docs: []*xmltree.Document{{Name: "x"}}}
	if _, err := Build(bad, DefaultOptions()); err == nil {
		t.Error("document without root must fail")
	}
}

func TestSaveLoadRoundTrip(t *testing.T) {
	ix := buildFig2a(t)
	var buf bytes.Buffer
	if err := ix.Save(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := Load(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(back.Nodes) != len(ix.Nodes) {
		t.Fatalf("nodes %d != %d", len(back.Nodes), len(ix.Nodes))
	}
	if back.Stats != ix.Stats {
		t.Errorf("stats differ: %+v vs %+v", back.Stats, ix.Stats)
	}
	if len(back.Lookup("karen")) != len(ix.Lookup("karen")) {
		t.Error("postings lost in round trip")
	}
	ord, ok := back.OrdinalOf(dewey.MustParse("0.0.1.1.0"))
	if !ok || back.LabelOf(ord) != "Course" {
		t.Error("node table lost in round trip")
	}
}

func TestLoadErrors(t *testing.T) {
	if _, err := Load(bytes.NewReader([]byte("not gob"))); err == nil {
		t.Error("garbage input must fail")
	}
}

func TestSizeBytes(t *testing.T) {
	ix := buildFig2a(t)
	n, err := ix.SizeBytes()
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := ix.SaveSnapshot(&buf); err != nil {
		t.Fatal(err)
	}
	if n != int64(buf.Len()) {
		t.Errorf("SizeBytes = %d, snapshot encoded = %d", n, buf.Len())
	}
}

// TestSizeBytesPacked pins that SizeBytes reports the shipping v3 size of
// a packed index without flattening it: the count must equal the bytes
// SaveSnapshot writes for the packed form (which serializes the packed
// node section directly), not the legacy flattened gob encoding.
func TestSizeBytesPacked(t *testing.T) {
	packed := buildFig2a(t).Pack()
	if !packed.IsPacked() {
		t.Fatal("Pack() did not pack")
	}
	n, err := packed.SizeBytes()
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := packed.SaveSnapshot(&buf); err != nil {
		t.Fatal(err)
	}
	if n != int64(buf.Len()) {
		t.Errorf("packed SizeBytes = %d, snapshot encoded = %d", n, buf.Len())
	}
	if !packed.IsPacked() {
		t.Error("SizeBytes flattened the packed index")
	}
}

// memSource serves a posting map through the PostingSource interface, so
// lazy-path behavior is testable without a segment file behind it.
type memSource struct{ posts map[string][]int32 }

func (m *memSource) Postings(term string) ([]int32, error) {
	list, ok := m.posts[term]
	if !ok {
		return nil, nil
	}
	return append([]int32(nil), list...), nil
}

func (m *memSource) ForEachTerm(f func(term string, count int) error) error {
	terms := make([]string, 0, len(m.posts))
	for t := range m.posts {
		terms = append(terms, t)
	}
	sort.Strings(terms)
	for _, t := range terms {
		if err := f(t, len(m.posts[t])); err != nil {
			return err
		}
	}
	return nil
}

func (m *memSource) TermCount() int { return len(m.posts) }

// TestSizeBytesLazy pins that SizeBytes on a lazily-backed index streams
// the postings from the source — the index must stay lazy afterwards, and
// the reported size must equal the eager equivalent's snapshot (the v3
// writer sorts terms either way, so the bytes coincide).
func TestSizeBytesLazy(t *testing.T) {
	eager := buildFig2a(t)
	want, err := eager.SizeBytes()
	if err != nil {
		t.Fatal(err)
	}
	meta := &Index{
		Labels:   eager.Labels,
		Nodes:    eager.Nodes,
		DocNames: eager.DocNames,
		Stats:    eager.Stats,
		labelIDs: eager.labelIDs,
	}
	lazy := NewLazy(meta, &memSource{posts: eager.Postings})
	got, err := lazy.SizeBytes()
	if err != nil {
		t.Fatal(err)
	}
	if got != want {
		t.Errorf("lazy SizeBytes = %d, eager = %d", got, want)
	}
	if !lazy.IsLazy() {
		t.Error("SizeBytes materialized the lazy index")
	}
}

func TestCategoryString(t *testing.T) {
	if got := (Entity | Repeating).String(); got != "RN|EN" {
		t.Errorf("String = %q", got)
	}
	if got := Category(0).String(); got != "none" {
		t.Errorf("zero String = %q", got)
	}
	if got := Attribute.String(); got != "AN" {
		t.Errorf("AN String = %q", got)
	}
}

func TestUnknownKeywordLookup(t *testing.T) {
	ix := buildFig2a(t)
	if got := ix.Lookup("nonexistentword"); got != nil {
		t.Errorf("unknown keyword = %v, want nil", got)
	}
	if got := ix.Lookup("   "); got != nil {
		t.Errorf("blank keyword = %v, want nil", got)
	}
}

func TestDuplicateKeywordsWithinNodeIndexedOnce(t *testing.T) {
	doc := xmltree.NewDocument("dup", 0, xmltree.E("r",
		xmltree.ET("v", "apple apple apple banana"),
	))
	ix, err := BuildDocument(doc, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if got := len(ix.Lookup("apple")); got != 1 {
		t.Errorf("apple postings = %d, want 1 (deduped per node)", got)
	}
}

func TestMixedContentValueIndexed(t *testing.T) {
	doc, err := xmltree.ParseString("<p>alpha <b>beta</b> gamma</p>", 0, "m")
	if err != nil {
		t.Fatal(err)
	}
	ix, err := BuildDocument(doc, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if len(ix.Lookup("alpha")) != 1 || len(ix.Lookup("gamma")) != 1 {
		t.Error("mixed-content text must be indexed at the containing element")
	}
	if len(ix.Lookup("beta")) != 1 {
		t.Error("nested text must be indexed at <b>")
	}
}
