package index

import "sort"

// Corpus statistics beyond the build-time counters: term and label
// distributions used by cmd/gks stats, the dataset generators' validation
// and capacity planning for real deployments.

// KeywordFreq pairs a normalized keyword with its posting-list length.
type KeywordFreq struct {
	Keyword string
	Count   int
}

// TopKeywords returns the k keywords with the longest posting lists,
// descending; ties break alphabetically. k <= 0 returns all keywords.
func (ix *Index) TopKeywords(k int) []KeywordFreq {
	out := make([]KeywordFreq, 0, len(ix.Postings))
	ix.ForEachKeyword(func(kw string, live int) {
		out = append(out, KeywordFreq{Keyword: kw, Count: live})
	})
	sort.Slice(out, func(i, j int) bool {
		if out[i].Count != out[j].Count {
			return out[i].Count > out[j].Count
		}
		return out[i].Keyword < out[j].Keyword
	})
	if k > 0 && len(out) > k {
		out = out[:k]
	}
	return out
}

// LabelCount pairs an element label with its instance count and dominant
// category distribution.
type LabelCount struct {
	Label string
	Count int
	// PerCategory counts instances carrying each category bit, indexed by
	// Attribute, Repeating, Entity, Connecting in that order.
	PerCategory [4]int
}

// LabelHistogram returns per-label instance counts with category splits,
// ordered by count descending (ties alphabetically).
func (ix *Index) LabelHistogram() []LabelCount {
	counts := make([]LabelCount, len(ix.Labels))
	for i, l := range ix.Labels {
		counts[i].Label = l
	}
	for _, sp := range ix.LiveSpans() {
		for ord := sp[0]; ord < sp[1]; ord++ {
			lc := &counts[ix.LabelIDOf(ord)]
			lc.Count++
			cat := ix.CatOf(ord)
			if cat&Attribute != 0 {
				lc.PerCategory[0]++
			}
			if cat&Repeating != 0 {
				lc.PerCategory[1]++
			}
			if cat&Entity != 0 {
				lc.PerCategory[2]++
			}
			if cat&Connecting != 0 {
				lc.PerCategory[3]++
			}
		}
	}
	sort.Slice(counts, func(i, j int) bool {
		if counts[i].Count != counts[j].Count {
			return counts[i].Count > counts[j].Count
		}
		return counts[i].Label < counts[j].Label
	})
	return counts
}

// DepthHistogram returns the number of element nodes at each depth
// (index 0 = document roots).
func (ix *Index) DepthHistogram() []int {
	var hist []int
	for _, sp := range ix.LiveSpans() {
		for ord := sp[0]; ord < sp[1]; ord++ {
			d := int(ix.DepthOf(ord))
			for len(hist) <= d {
				hist = append(hist, 0)
			}
			hist[d]++
		}
	}
	return hist
}

// PostingPercentiles returns the posting-list length at the given
// percentiles (0–100), useful for sizing decisions. Percentile 100 is the
// longest list.
func (ix *Index) PostingPercentiles(percentiles ...int) []int {
	lengths := make([]int, 0, len(ix.Postings))
	ix.ForEachKeyword(func(_ string, live int) {
		lengths = append(lengths, live)
	})
	sort.Ints(lengths)
	out := make([]int, len(percentiles))
	if len(lengths) == 0 {
		return out
	}
	for i, p := range percentiles {
		if p < 0 {
			p = 0
		}
		if p > 100 {
			p = 100
		}
		idx := p * (len(lengths) - 1) / 100
		out[i] = lengths[idx]
	}
	return out
}
