package index

import (
	"bytes"
	"testing"

	"repro/internal/datagen"
	"repro/internal/xmltree"
)

func BenchmarkBuildTree(b *testing.B) {
	repo := datagen.Repo(datagen.SwissProt(datagen.Config{Seed: 42}))
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := Build(repo, DefaultOptions()); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkBuildStream measures the single-pass streaming build against
// the same document serialized to XML; -benchmem shows the allocation
// saving versus parse+Build.
func BenchmarkBuildStream(b *testing.B) {
	var buf bytes.Buffer
	if err := xmltree.WriteXML(&buf, datagen.SwissProt(datagen.Config{Seed: 42})); err != nil {
		b.Fatal(err)
	}
	src := buf.Bytes()
	b.ReportAllocs()
	b.ResetTimer()
	b.Run("stream", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := BuildStream(bytes.NewReader(src), 0, "bench", DefaultOptions()); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("parse+build", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			doc, err := xmltree.Parse(bytes.NewReader(src), 0, "bench")
			if err != nil {
				b.Fatal(err)
			}
			if _, err := BuildDocument(doc, DefaultOptions()); err != nil {
				b.Fatal(err)
			}
		}
	})
}
