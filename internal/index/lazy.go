package index

import (
	"sort"
	"sync"
)

// Lazily-backed indexes: an Index whose posting lists live behind a
// PostingSource (a GKS4 segment reader, internal/segment) instead of the
// in-memory Postings map. The node table, labels, document names and
// statistics are always resident — the search engine walks Nodes directly
// — but posting lists are fetched on demand, which is what bounds the
// resident memory of a serving process to the block cache rather than the
// corpus.
//
// A lazy index answers every read-path accessor (PostingsFor,
// ForEachKeyword, LiveSpans, Lookup, ...) identically to its materialized
// twin. Fetch failures cannot surface through PostingsFor's historical
// []int32 signature, so they poison the index (LazyErr) and the query
// engine checks the poison after gathering lists — queries fail loudly,
// never silently with an empty list. Mutation and persistence paths
// (DeleteDoc, Append, Save) materialize first: a lazy index is an
// immutable serving view, and tombstones never coexist with laziness.

// PostingSource provides posting lists for a lazily-backed index.
// Implementations must be safe for concurrent use.
type PostingSource interface {
	// Postings returns the sorted posting list for term, or (nil, nil)
	// when the term is absent. The caller owns the returned slice.
	Postings(term string) ([]int32, error)
	// ForEachTerm calls f for every term in sorted lexicographic order
	// with its posting count, without fetching any list. It returns only
	// f's error: the term directory is resident, so iteration itself
	// cannot fail.
	ForEachTerm(f func(term string, count int) error) error
	// TermCount returns the number of distinct terms.
	TermCount() int
}

// lazyState is the shared mutable state of a lazily-backed index. It is
// held by pointer so Index values stay copyable.
type lazyState struct {
	src PostingSource
	mu  sync.Mutex
	err error
}

func (l *lazyState) poison(err error) {
	l.mu.Lock()
	if l.err == nil {
		l.err = err
	}
	l.mu.Unlock()
}

func (l *lazyState) sticky() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.err
}

// NewLazy turns meta — an Index holding labels, document names, the node
// table and statistics, but no posting lists (as decoded by DecodeMeta) —
// into a lazily-backed index served from src. meta is returned for
// convenience; it must not be used independently afterwards.
func NewLazy(meta *Index, src PostingSource) *Index {
	meta.Postings = nil
	meta.tomb = nil
	meta.lazy = &lazyState{src: src}
	return meta
}

// IsLazy reports whether posting lists are served from a PostingSource.
func (ix *Index) IsLazy() bool { return ix.lazy != nil }

// LazyErr returns the first posting-fetch failure of a lazily-backed
// index, or nil. The error is sticky: once a fetch fails the index is
// considered broken (the backing file is damaged or gone) and every
// subsequent query must check this. Always nil for eager indexes.
func (ix *Index) LazyErr() error {
	if ix.lazy == nil {
		return nil
	}
	return ix.lazy.sticky()
}

// Materialized returns an eager equivalent of the index: for a lazy index
// every posting list is fetched into a fresh Postings map (the node table
// and label/doc tables are shared — they are immutable); an already-eager
// index is returned as-is. Mutation and gob-persistence paths call this
// because they operate on the Postings map directly.
func (ix *Index) Materialized() (*Index, error) {
	if ix.lazy == nil {
		return ix, nil
	}
	src := ix.lazy.src
	cp := &Index{
		Labels:   ix.Labels,
		Nodes:    ix.Nodes,
		DocNames: ix.DocNames,
		Stats:    ix.Stats,
		labelIDs: ix.labelIDs,
		Postings: make(map[string][]int32, src.TermCount()),
		packed:   ix.packed,
	}
	err := src.ForEachTerm(func(term string, _ int) error {
		list, err := src.Postings(term)
		if err != nil {
			return err
		}
		cp.Postings[term] = list
		return nil
	})
	if err != nil {
		ix.lazy.poison(err)
		return nil, err
	}
	return cp, nil
}

// keywordCount returns the number of distinct keywords with at least one
// live posting — the count ForEachKeywordSorted will visit.
func (ix *Index) keywordCount() int {
	if ix.lazy != nil {
		return ix.lazy.src.TermCount()
	}
	if ix.tomb == nil {
		return len(ix.Postings)
	}
	n := 0
	ix.ForEachKeyword(func(string, int) { n++ })
	return n
}

// ForEachKeywordSorted calls f once per keyword in sorted lexicographic
// order with its live posting list. For a lazy index the lists stream
// from the source one at a time — this is how save/convert paths
// serialize a segment-backed index without materializing it. Source fetch
// failures poison the index and abort the iteration.
func (ix *Index) ForEachKeywordSorted(f func(keyword string, list []int32) error) error {
	if ix.lazy != nil {
		src := ix.lazy.src
		return src.ForEachTerm(func(term string, _ int) error {
			list, err := src.Postings(term)
			if err != nil {
				ix.lazy.poison(err)
				return err
			}
			return f(term, list)
		})
	}
	keys := make([]string, 0, len(ix.Postings))
	for k := range ix.Postings {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		list := ix.PostingsFor(k)
		if len(list) == 0 {
			continue // fully tombstoned
		}
		if err := f(k, list); err != nil {
			return err
		}
	}
	return nil
}

// Fields returns the statistics in the serialization order of format v2 —
// exported for sibling on-disk formats (the GKS4 segment footer).
func (s *Stats) Fields() []int { return s.fields() }

// SetFields assigns the statistics from the format-v2 serialization
// order; v must hold StatsFieldCount values.
func (s *Stats) SetFields(v []int) { s.setFields(v) }

// StatsFieldCount is the number of values Fields returns.
const StatsFieldCount = statsFieldCount
