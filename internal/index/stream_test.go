package index

import (
	"bytes"
	"math/rand"
	"os"
	"strings"
	"testing"

	"repro/internal/datagen"
	"repro/internal/xmltree"
)

// buildBothWays parses src with the tree builder and streams it directly,
// returning both indexes.
func buildBothWays(t *testing.T, src string) (*Index, *Index) {
	t.Helper()
	doc, err := xmltree.ParseString(src, 0, "stream.xml")
	if err != nil {
		t.Fatal(err)
	}
	tree, err := BuildDocument(doc, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	stream, err := BuildStream(strings.NewReader(src), 0, "stream.xml", DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	return tree, stream
}

func TestStreamEqualsTreeOnFixture(t *testing.T) {
	var buf bytes.Buffer
	if err := xmltree.WriteXML(&buf, xmltree.BuildFigure2a()); err != nil {
		t.Fatal(err)
	}
	tree, stream := buildBothWays(t, buf.String())
	assertIndexesEqual(t, tree, stream)
}

func TestStreamEqualsTreeWithAttributes(t *testing.T) {
	const src = `<dblp>
  <article key="a1" mdate="2020-01-02">
    <author>Jane Roe</author>
    <author>John Doe</author>
    <title>On Things</title>
  </article>
  <article key="a2">
    <author>Solo Writer</author>
    <title>Alone</title>
  </article>
</dblp>`
	tree, stream := buildBothWays(t, src)
	assertIndexesEqual(t, tree, stream)
}

func TestStreamEqualsTreeMixedContent(t *testing.T) {
	const src = `<p>alpha <b>beta gamma</b> delta <i>epsilon</i> zeta</p>`
	tree, stream := buildBothWays(t, src)
	assertIndexesEqual(t, tree, stream)
}

func TestStreamEqualsTreeEntities(t *testing.T) {
	const src = `<r><v>a&amp;b</v><v>c &lt; d</v></r>`
	tree, stream := buildBothWays(t, src)
	assertIndexesEqual(t, tree, stream)
}

func TestStreamEqualsTreeOnGeneratedDatasets(t *testing.T) {
	gens := map[string]func() *xmltree.Document{
		"dblp": func() *xmltree.Document {
			return datagen.DBLP(datagen.BibConfig{Config: datagen.Config{Seed: 3}, Entries: 120})
		},
		"mondial": func() *xmltree.Document { return datagen.Mondial(datagen.Config{Seed: 3}) },
		"xmark":   func() *xmltree.Document { return datagen.XMark(datagen.Config{Seed: 3}) },
	}
	for name, gen := range gens {
		var buf bytes.Buffer
		if err := xmltree.WriteXML(&buf, gen()); err != nil {
			t.Fatal(err)
		}
		src := buf.String()
		tree, stream := buildBothWays(t, src)
		t.Run(name, func(t *testing.T) { assertIndexesEqual(t, tree, stream) })
	}
}

func TestStreamEqualsTreeOnRandomDocuments(t *testing.T) {
	rng := rand.New(rand.NewSource(777))
	words := []string{"ant", "bee", "cat", "dog"}
	var build func(depth int) *xmltree.Node
	build = func(depth int) *xmltree.Node {
		if depth >= 5 || rng.Intn(3) == 0 {
			return xmltree.ET("v", words[rng.Intn(len(words))])
		}
		n := xmltree.E("e" + string(rune('a'+rng.Intn(3))))
		for i := 0; i < 1+rng.Intn(3); i++ {
			n.Append(build(depth + 1))
		}
		if rng.Intn(4) == 0 { // mixed content
			n.Append(xmltree.T(words[rng.Intn(len(words))]))
		}
		return n
	}
	for trial := 0; trial < 40; trial++ {
		doc := xmltree.NewDocument("rand", 0, build(0))
		var buf bytes.Buffer
		if err := xmltree.WriteXML(&buf, doc); err != nil {
			t.Fatal(err)
		}
		tree, stream := buildBothWays(t, buf.String())
		assertIndexesEqual(t, tree, stream)
	}
}

func TestStreamErrors(t *testing.T) {
	bad := []string{
		"",
		"just text",
		"<a><b></a>",
		"<a/><b/>",
		"<a>",
	}
	for _, src := range bad {
		if _, err := BuildStream(strings.NewReader(src), 0, "bad", DefaultOptions()); err == nil {
			t.Errorf("BuildStream(%q): expected error", src)
		}
	}
}

func TestBuildStreamFiles(t *testing.T) {
	dir := t.TempDir()
	paths := make([]string, 2)
	for i := range paths {
		var buf bytes.Buffer
		if err := xmltree.WriteXML(&buf, xmltree.BuildFigure2a()); err != nil {
			t.Fatal(err)
		}
		paths[i] = dir + "/doc" + string(rune('0'+i)) + ".xml"
		if err := writeTestFile(paths[i], buf.Bytes()); err != nil {
			t.Fatal(err)
		}
	}
	streamed, err := BuildStreamFiles(paths, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	var repo xmltree.Repository
	for _, p := range paths {
		d, err := xmltree.ParseFile(p, 0)
		if err != nil {
			t.Fatal(err)
		}
		repo.Add(d)
	}
	batch, err := Build(&repo, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	// Doc names differ (paths vs names) — align before comparing.
	batch.DocNames = streamed.DocNames
	assertIndexesEqual(t, batch, streamed)

	if _, err := BuildStreamFiles(nil, DefaultOptions()); err == nil {
		t.Error("no files must fail")
	}
	if _, err := BuildStreamFiles([]string{dir + "/missing.xml"}, DefaultOptions()); err == nil {
		t.Error("missing file must fail")
	}
}

func writeTestFile(path string, data []byte) error {
	return os.WriteFile(path, data, 0o644)
}
