package index

import (
	"fmt"

	"repro/internal/xmltree"
)

// Append indexes doc as the next document of the repository behind ix and
// returns a new merged index; ix itself is not modified (indexes are
// immutable once built, which is what makes concurrent searches safe).
// The document is renumbered to the next free live document id.
//
// Because documents are independent subtrees under distinct Dewey document
// numbers, appending reduces to the same partial-index merge used by the
// parallel builder: the new document's ordinals all sort after the
// existing ones, so posting lists stay sorted and subtree ranges stay
// contiguous.
//
// On failure the caller's document is left exactly as it was passed in,
// so it can be retried against another index.
func Append(ix *Index, doc *xmltree.Document, opts Options) (*Index, error) {
	if ix == nil {
		return nil, fmt.Errorf("index: append to nil index")
	}
	return AppendAs(ix, doc, ix.NextDocID(), opts)
}

// AppendAs is Append with an explicit Dewey document number. The number
// must sort at or after every live document of ix, or the merged node
// table would fall out of Dewey order; callers that don't care should use
// Append, which picks the next free id.
//
// On a packed base the delta-maintaining pack (packed_append.go) applies
// whenever it can: the new document is packed against the existing shape
// table at O(document) cost, tombstones survive, and the base is never
// flattened. When the delta path declines — the document number collides
// with a tombstoned document's, or a sibling append already extended this
// generation's arrays — the legacy flatten-splice-repack path below runs
// instead, which also compacts any tombstones away.
func AppendAs(ix *Index, doc *xmltree.Document, docID int32, opts Options) (*Index, error) {
	if ix == nil {
		return nil, fmt.Errorf("index: append to nil index")
	}
	// The merge (and the delta path) reads Postings maps directly, so a
	// lazily-backed base is materialized up front (before doc is touched,
	// like validation).
	ix, err := ix.Materialized()
	if err != nil {
		return nil, err
	}
	// Validation (and any Build failure) happens before the base is
	// touched and restores doc on error; only a fully built partial index
	// reaches the merge, which cannot fail on well-formed parts.
	partial, err := BuildDocumentAs(doc, docID, opts)
	if err != nil {
		return nil, err
	}
	if ix.IsPacked() {
		if out, ok := ix.appendPacked(partial); ok {
			return out, nil
		}
	}
	return appendMerged(ix, partial)
}

// AppendAsFullRepack is AppendAs with the delta-maintaining pack disabled:
// a packed base is flattened, spliced and re-packed from scratch, exactly
// the pre-delta behavior. It exists as the benchmark baseline (the cost
// the delta path removes) and as a differential oracle — the two paths
// must agree on the compacted observable state.
func AppendAsFullRepack(ix *Index, doc *xmltree.Document, docID int32, opts Options) (*Index, error) {
	if ix == nil {
		return nil, fmt.Errorf("index: append to nil index")
	}
	ix, err := ix.Materialized()
	if err != nil {
		return nil, err
	}
	partial, err := BuildDocumentAs(doc, docID, opts)
	if err != nil {
		return nil, err
	}
	return appendMerged(ix, partial)
}

// appendMerged is the legacy splice: flatten (compacting tombstones),
// merge the flat tables, and re-pack when the base was packed.
func appendMerged(ix, partial *Index) (*Index, error) {
	repack := ix.IsPacked()
	merged, err := mergePartials([]*Index{ix.Compacted().Unpacked(), partial})
	if err != nil || !repack {
		return merged, err
	}
	return merged.Pack(), nil
}

// AppendBatch indexes docs — renumbered sequentially from the base's next
// free document id, in slice order — and merges them in a single splice:
// the base is flattened once, every partial merges in one mergePartials
// call, and a packed base re-packs exactly once at the end. This is the
// WAL-replay batch path: replaying K records used to pay K full
// unpack/repack cycles (O(N·K)); now boot replay packs once regardless of
// K. An empty batch returns the (materialized) base unchanged.
func AppendBatch(ix *Index, docs []*xmltree.Document, opts Options) (*Index, error) {
	if ix == nil {
		return nil, fmt.Errorf("index: append to nil index")
	}
	ix, err := ix.Materialized()
	if err != nil {
		return nil, err
	}
	if len(docs) == 0 {
		return ix, nil
	}
	repack := ix.IsPacked()
	// Unpacked preserves the tombstone mask; compacting the flat table
	// removes the dead rows without triggering a re-pack.
	flat := ix.Unpacked().Compacted()
	parts := make([]*Index, 0, len(docs)+1)
	parts = append(parts, flat)
	id := flat.NextDocID()
	for _, doc := range docs {
		part, err := BuildDocumentAs(doc, id, opts)
		if err != nil {
			return nil, err
		}
		id++
		parts = append(parts, part)
	}
	merged, err := mergePartials(parts)
	if err != nil || !repack {
		return merged, err
	}
	return merged.Pack(), nil
}
