package index

import (
	"fmt"

	"repro/internal/xmltree"
)

// Append indexes doc as the next document of the repository behind ix and
// returns a new merged index; ix itself is not modified (indexes are
// immutable once built, which is what makes concurrent searches safe).
// The document is renumbered to the next free document id.
//
// Because documents are independent subtrees under distinct Dewey document
// numbers, appending reduces to the same partial-index merge used by the
// parallel builder: the new document's ordinals all sort after the
// existing ones, so posting lists stay sorted and subtree ranges stay
// contiguous.
func Append(ix *Index, doc *xmltree.Document, opts Options) (*Index, error) {
	if ix == nil {
		return nil, fmt.Errorf("index: append to nil index")
	}
	if doc == nil || doc.Root == nil {
		return nil, fmt.Errorf("index: append of empty document")
	}
	doc.DocID = int32(len(ix.DocNames))
	doc.AssignIDs()
	partial, err := Build(&xmltree.Repository{Docs: []*xmltree.Document{doc}}, opts)
	if err != nil {
		return nil, err
	}
	return mergePartials([]*Index{ix, partial})
}
