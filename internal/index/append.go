package index

import (
	"fmt"

	"repro/internal/xmltree"
)

// Append indexes doc as the next document of the repository behind ix and
// returns a new merged index; ix itself is not modified (indexes are
// immutable once built, which is what makes concurrent searches safe).
// The document is renumbered to the next free live document id.
//
// Because documents are independent subtrees under distinct Dewey document
// numbers, appending reduces to the same partial-index merge used by the
// parallel builder: the new document's ordinals all sort after the
// existing ones, so posting lists stay sorted and subtree ranges stay
// contiguous.
//
// On failure the caller's document is left exactly as it was passed in,
// so it can be retried against another index.
func Append(ix *Index, doc *xmltree.Document, opts Options) (*Index, error) {
	if ix == nil {
		return nil, fmt.Errorf("index: append to nil index")
	}
	return AppendAs(ix, doc, ix.NextDocID(), opts)
}

// AppendAs is Append with an explicit Dewey document number. The number
// must sort at or after every live document of ix, or the merged node
// table would fall out of Dewey order; callers that don't care should use
// Append, which picks the next free id. A tombstoned base is compacted
// first, so the result is always a plain immutable index.
func AppendAs(ix *Index, doc *xmltree.Document, docID int32, opts Options) (*Index, error) {
	if ix == nil {
		return nil, fmt.Errorf("index: append to nil index")
	}
	// The merge reads Postings maps directly, so a lazily-backed base is
	// materialized up front (before doc is touched, like validation).
	ix, err := ix.Materialized()
	if err != nil {
		return nil, err
	}
	// Validation (and any Build failure) happens before the base is
	// touched and restores doc on error; only a fully built partial index
	// reaches the merge, which cannot fail on well-formed parts.
	partial, err := BuildDocumentAs(doc, docID, opts)
	if err != nil {
		return nil, err
	}
	// The merge splices flat node tables; a packed base is flattened for
	// the splice and the result re-packed, so a packed serving index stays
	// packed across ingestion.
	repack := ix.IsPacked()
	merged, err := mergePartials([]*Index{ix.Compacted().Unpacked(), partial})
	if err != nil || !repack {
		return merged, err
	}
	return merged.Pack(), nil
}
