package index

import (
	"bufio"
	"bytes"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
)

// ErrCorrupt reports that a persisted index could not be decoded because its
// bytes are damaged (bit flips, truncation, a partial write) or are not an
// index snapshot at all. Callers that manage snapshot lifecycles — the gksd
// reload path, startup validation — match it with errors.Is to distinguish
// "the file is bad" from environmental failures such as os.ErrNotExist.
var ErrCorrupt = errors.New("corrupt index snapshot")

// corruptf builds an ErrCorrupt-wrapped error with detail.
func corruptf(format string, args ...any) error {
	return fmt.Errorf("%w: %s", ErrCorrupt, fmt.Sprintf(format, args...))
}

// Snapshot format ("GKS3", version 3): a durability envelope around the
// compact binary codec (format v2, binary.go). The v2 payload is framed by a
// self-describing header and sealed with a trailing checksum so that
// truncation and bit flips are detected up front — the loader never decodes
// damaged bytes into a serving index.
//
// Layout:
//
//	magic "GKS3"                          4 bytes
//	headerLen                             uvarint
//	header (headerLen bytes):
//	    envelope version (= 3)            uvarint
//	    payloadLen                        uvarint
//	payload (payloadLen bytes):           a complete v2 image ("GKSI"...)
//	crc32                                 4 bytes little-endian,
//	                                      IEEE over header ++ payload
const snapshotMagic = "GKS3"

const snapshotVersion = 3

// maxSnapshotHeader bounds the length-framed header; the header holds a few
// varints, so anything larger proves corruption.
const maxSnapshotHeader = 1 << 10

// SaveSnapshot writes the index in the checksummed snapshot format (v3).
// This is the durable on-disk format used by SaveFile; SaveBinary remains
// available for raw v2 streams and Save for the legacy gob format.
func (ix *Index) SaveSnapshot(w io.Writer) error {
	var payload bytes.Buffer
	if err := ix.SaveBinary(&payload); err != nil {
		return err
	}
	var hdr []byte
	hdr = binary.AppendUvarint(hdr, snapshotVersion)
	hdr = binary.AppendUvarint(hdr, uint64(payload.Len()))

	crc := crc32.NewIEEE()
	crc.Write(hdr)
	crc.Write(payload.Bytes())

	var frame []byte
	frame = append(frame, snapshotMagic...)
	frame = binary.AppendUvarint(frame, uint64(len(hdr)))
	frame = append(frame, hdr...)
	if _, err := w.Write(frame); err != nil {
		return fmt.Errorf("index: save snapshot: %w", err)
	}
	if _, err := w.Write(payload.Bytes()); err != nil {
		return fmt.Errorf("index: save snapshot: %w", err)
	}
	var tail [4]byte
	binary.LittleEndian.PutUint32(tail[:], crc.Sum32())
	if _, err := w.Write(tail[:]); err != nil {
		return fmt.Errorf("index: save snapshot: %w", err)
	}
	return nil
}

// loadSnapshotAfterMagic decodes a v3 snapshot whose magic bytes have
// already been consumed. The whole payload is read and checksummed before
// any decoding, so a damaged snapshot fails with ErrCorrupt instead of
// being decoded into garbage; io.ReadAll grows with the bytes actually
// present, so a corrupt payloadLen cannot force a giant upfront allocation.
func loadSnapshotAfterMagic(br *bufio.Reader) (*Index, error) {
	hdrLen, err := binary.ReadUvarint(br)
	if err != nil {
		return nil, corruptf("snapshot header length: %v", err)
	}
	if hdrLen == 0 || hdrLen > maxSnapshotHeader {
		return nil, corruptf("implausible snapshot header length %d", hdrLen)
	}
	hdr := make([]byte, hdrLen)
	if _, err := io.ReadFull(br, hdr); err != nil {
		return nil, corruptf("snapshot header: %v", err)
	}
	hr := bytes.NewReader(hdr)
	version, err := binary.ReadUvarint(hr)
	if err != nil {
		return nil, corruptf("snapshot version: %v", err)
	}
	if version != snapshotVersion {
		return nil, corruptf("unsupported snapshot version %d", version)
	}
	payloadLen, err := binary.ReadUvarint(hr)
	if err != nil {
		return nil, corruptf("snapshot payload length: %v", err)
	}
	if payloadLen > 1<<62 {
		return nil, corruptf("implausible snapshot payload length %d", payloadLen)
	}
	// A short read here is truncation inside the length-framed payload —
	// corruption, not an environmental I/O failure, so it carries the same
	// typed ErrCorrupt as every other framing violation (reload paths
	// dispatch on it).
	payload, err := io.ReadAll(io.LimitReader(br, int64(payloadLen)))
	if err != nil {
		return nil, corruptf("read snapshot payload: %v", err)
	}
	if uint64(len(payload)) != payloadLen {
		return nil, corruptf("truncated snapshot payload: %d of %d bytes", len(payload), payloadLen)
	}
	var tail [4]byte
	if _, err := io.ReadFull(br, tail[:]); err != nil {
		return nil, corruptf("snapshot checksum: %v", err)
	}
	crc := crc32.NewIEEE()
	crc.Write(hdr)
	crc.Write(payload)
	if got, want := binary.LittleEndian.Uint32(tail[:]), crc.Sum32(); got != want {
		return nil, corruptf("snapshot checksum mismatch: stored %08x, computed %08x", got, want)
	}
	// The payload is a verified, complete v2 image; decode it with its
	// exact size as the allocation bound.
	return loadSized(bytes.NewReader(payload), int64(len(payload)))
}

// testInterceptWriter, when non-nil, wraps the temp-file writer inside
// SaveFile — the fail-after-N-bytes hook the crash-mid-write regression
// test uses to prove a failed save never destroys the previous snapshot.
var testInterceptWriter func(io.Writer) io.Writer

// WriteFileAtomic writes via a temp file in path's directory, fsyncs, and
// renames over path, so the destination always holds either the previous
// complete file or the new complete file — never a truncated mix. The
// directory is fsynced after the rename so the new name itself is durable.
// Exported so sibling persistence formats (the shard-set manifest) share
// the same crash-safety discipline.
func WriteFileAtomic(path string, write func(io.Writer) error) (err error) {
	dir := filepath.Dir(path)
	tmp, err := os.CreateTemp(dir, filepath.Base(path)+".tmp-")
	if err != nil {
		return fmt.Errorf("index: save: %w", err)
	}
	tmpName := tmp.Name()
	defer func() {
		if err != nil {
			tmp.Close()
			os.Remove(tmpName)
		}
	}()
	var w io.Writer = tmp
	if testInterceptWriter != nil {
		w = testInterceptWriter(tmp)
	}
	if err = write(w); err != nil {
		return err
	}
	if err = tmp.Sync(); err != nil {
		return fmt.Errorf("index: save: sync %s: %w", tmpName, err)
	}
	if err = tmp.Close(); err != nil {
		return fmt.Errorf("index: save: close %s: %w", tmpName, err)
	}
	if err = os.Rename(tmpName, path); err != nil {
		os.Remove(tmpName)
		return fmt.Errorf("index: save: %w", err)
	}
	syncDir(dir)
	return nil
}

// syncDir fsyncs a directory so a just-renamed entry survives a crash.
// Best-effort: some filesystems refuse directory fsync, which only weakens
// durability of the rename, not atomicity.
func syncDir(dir string) {
	d, err := os.Open(dir)
	if err != nil {
		return
	}
	d.Sync()
	d.Close()
}
