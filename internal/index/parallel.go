package index

import (
	"fmt"
	"runtime"
	"sync"

	"repro/internal/xmltree"
)

// BuildParallel indexes the repository with up to workers concurrent
// per-document builders and merges the partial indexes. The result is
// byte-for-byte identical to Build: documents are merged in repository
// order, so node ordinals, posting order and Dewey order all match the
// single-pass build. workers <= 1 falls back to the serial Build.
//
// The paper's index construction is a single sequential pass (§2.4);
// parallelism across documents is a production extension for multi-file
// repositories such as the Shakespeare plays or sharded DBLP dumps.
func BuildParallel(repo *xmltree.Repository, opts Options, workers int) (*Index, error) {
	if repo == nil || len(repo.Docs) == 0 {
		return nil, fmt.Errorf("index: empty repository")
	}
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers == 1 || len(repo.Docs) == 1 {
		return Build(repo, opts)
	}

	partials := make([]*Index, len(repo.Docs))
	errs := make([]error, len(repo.Docs))
	sem := make(chan struct{}, workers)
	var wg sync.WaitGroup
	for i, doc := range repo.Docs {
		wg.Add(1)
		go func(i int, doc *xmltree.Document) {
			defer wg.Done()
			sem <- struct{}{}
			defer func() { <-sem }()
			single := &xmltree.Repository{Docs: []*xmltree.Document{doc}}
			ix, err := buildNoRenumber(single, opts)
			partials[i], errs[i] = ix, err
		}(i, doc)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			return nil, fmt.Errorf("index: document %d (%s): %w", i, repo.Docs[i].Name, err)
		}
	}
	return mergePartials(partials)
}

// buildNoRenumber builds an index for a repository without touching the
// documents' existing Dewey document numbers (Build on a sub-repository
// would otherwise see them as-is anyway; this helper exists for clarity).
func buildNoRenumber(repo *xmltree.Repository, opts Options) (*Index, error) {
	return Build(repo, opts)
}

// mergePartials concatenates per-document indexes in order.
func mergePartials(parts []*Index) (*Index, error) {
	out := &Index{
		Postings: make(map[string][]int32),
		labelIDs: make(map[string]int32),
	}
	for _, p := range parts {
		base := int32(len(out.Nodes))

		// Remap the partial's label table into the global one.
		labelMap := make([]int32, len(p.Labels))
		for i, l := range p.Labels {
			if id, ok := out.labelIDs[l]; ok {
				labelMap[i] = id
				continue
			}
			id := int32(len(out.Labels))
			out.Labels = append(out.Labels, l)
			out.labelIDs[l] = id
			labelMap[i] = id
		}

		for i := range p.Nodes {
			n := p.Nodes[i] // copy
			n.Label = labelMap[n.Label]
			if n.Parent >= 0 {
				n.Parent += base
			}
			out.Nodes = append(out.Nodes, n)
		}
		for key, list := range p.Postings {
			dst := out.Postings[key]
			for _, ord := range list {
				dst = append(dst, ord+base)
			}
			out.Postings[key] = dst
		}
		out.DocNames = append(out.DocNames, p.DocNames...)
		if p.Stats.MaxDepth > out.Stats.MaxDepth {
			out.Stats.MaxDepth = p.Stats.MaxDepth
		}
		out.Stats.TextNodes += p.Stats.TextNodes
	}
	out.finalizeStats()
	return out, nil
}
