package index

import (
	"fmt"
	"math/rand"
	"testing"

	"repro/internal/xmltree"
)

// allocBagDoc builds a small document over a fixed vocabulary so the
// corpus vocabulary — and with it the size of the postings-map clone a
// delta append pays — stays constant as the node table grows.
func allocBagDoc(name string, rng *rand.Rand) *xmltree.Document {
	words := []string{"alpha", "bravo", "charlie", "delta", "echo", "foxtrot", "golf", "hotel"}
	root := xmltree.E("collection")
	for i := 0; i < 5; i++ {
		entry := xmltree.E("entry")
		entry.Append(xmltree.ET("title", words[rng.Intn(len(words))]+" "+words[rng.Intn(len(words))]))
		entry.Append(xmltree.ET("year", words[rng.Intn(len(words))]))
		root.Append(entry)
	}
	return xmltree.NewDocument(name, 0, root)
}

// TestPackAppendAllocsSublinear pins the tentpole complexity claim: a
// delta append onto a packed index allocates O(document), not O(index).
// Allocation counts are compared between a base and a 4x-larger base —
// the legacy flatten-splice-repack path scales linearly (every node is
// re-materialized and re-packed), so a delta regression shows up as the
// ratio heading toward 4. The chained-append shape makes AllocsPerRun's
// warmup call absorb the one-time lookup-sidecar build, so every measured
// run is a pure delta append; PackCount pins that no measured append fell
// back to a full repack.
func TestPackAppendAllocsSublinear(t *testing.T) {
	if testing.Short() {
		t.Skip("allocation measurement")
	}
	build := func(nDocs int, seed int64) *Index {
		rng := rand.New(rand.NewSource(seed))
		repo := &xmltree.Repository{}
		for i := 0; i < nDocs; i++ {
			repo.Add(allocBagDoc(fmt.Sprintf("base-%d", i), rng))
		}
		ix, err := Build(repo, DefaultOptions())
		if err != nil {
			t.Fatal(err)
		}
		return ix.Pack()
	}
	measure := func(base *Index, seed int64) float64 {
		rng := rand.New(rand.NewSource(seed))
		const runs = 24
		docs := make([]*xmltree.Document, runs+1) // +1 for AllocsPerRun's warmup call
		for i := range docs {
			docs[i] = allocBagDoc(fmt.Sprintf("live-%d", i), rng)
		}
		cur, i := base, 0
		before := PackCount()
		avg := testing.AllocsPerRun(runs, func() {
			next, err := AppendAs(cur, docs[i], cur.NextDocID(), DefaultOptions())
			if err != nil {
				t.Fatal(err)
			}
			cur, i = next, i+1
		})
		if d := PackCount() - before; d != 0 {
			t.Fatalf("appends onto the packed base ran packNodes %d time(s); delta path not engaged", d)
		}
		if !cur.IsPacked() {
			t.Fatal("append chain lost the packed representation")
		}
		return avg
	}

	small := measure(build(16, 1), 2)
	large := measure(build(64, 3), 4)
	t.Logf("allocs per delta append: base 16 docs = %.1f, base 64 docs = %.1f", small, large)
	// O(document) appends keep the count flat; a generous 2x bound leaves
	// room for map-rehash and slice-doubling noise while still failing
	// hard if anything O(index) sneaks back onto the append path.
	if large > small*2 {
		t.Fatalf("delta append allocations scale with base size: %.1f at 16 docs vs %.1f at 64 docs", small, large)
	}
}
