package index

import (
	"strings"
	"testing"

	"repro/internal/xmltree"
)

// collisionXML is a document where element names reappear as value tokens
// of the same node: <author> whose text says "author", and an attribute
// whose synthesized child label equals a token of its value. Both build
// paths used to post the shared ordinal twice — once for the label, once
// for the value token — planting a duplicate in a strictly-increasing
// posting list that the save-path codec (postings.Encode) rejects by
// panic. The collision must dedup at build time.
const collisionXML = `<?xml version="1.0"?>
<bib>
  <article type="journal Type">
    <author>The Author Writes</author>
    <title>title of the title</title>
  </article>
  <author>author</author>
</bib>`

// assertStrictlyIncreasing fails on any duplicate or out-of-order ordinal.
func assertStrictlyIncreasing(t *testing.T, ix *Index) {
	t.Helper()
	for kw, list := range ix.Postings {
		for i := 1; i < len(list); i++ {
			if list[i] <= list[i-1] {
				t.Errorf("keyword %q: ordinal %d after %d not strictly increasing (%v)", kw, list[i], list[i-1], list)
			}
		}
	}
}

func TestLabelValueCollisionDedup(t *testing.T) {
	doc, err := xmltree.ParseString(collisionXML, 0, "collision.xml")
	if err != nil {
		t.Fatal(err)
	}
	tree, err := BuildDocument(doc, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	assertStrictlyIncreasing(t, tree)

	stream, err := BuildStream(strings.NewReader(collisionXML), 0, "collision.xml", DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	assertStrictlyIncreasing(t, stream)

	// Both builders must agree keyword for keyword — the collision is not
	// a point where the tree and streaming paths may diverge.
	if len(tree.Postings) != len(stream.Postings) {
		t.Fatalf("builders disagree: %d vs %d keywords", len(tree.Postings), len(stream.Postings))
	}
	for kw, want := range tree.Postings {
		got := stream.Postings[kw]
		if len(got) != len(want) {
			t.Errorf("keyword %q: tree %v vs stream %v", kw, want, got)
		}
	}

	// The collided keyword posts each node once.
	if list := tree.Postings["author"]; len(list) != 2 {
		t.Fatalf("author postings = %v, want one entry per <author> node", list)
	}

	// Appending a colliding document onto an existing index (the live
	// ingestion path) must stay save-clean too: Save uses the strict codec
	// and would panic on a duplicate.
	base := buildFig2a(t)
	merged, err := Append(base, doc, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	assertStrictlyIncreasing(t, merged)
	var sink strings.Builder
	if err := merged.SaveSnapshot(&sink); err != nil {
		t.Fatal(err)
	}
}
