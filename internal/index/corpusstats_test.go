package index

import (
	"sort"
	"testing"
)

func TestTopKeywords(t *testing.T) {
	ix := buildFig2a(t)
	top := ix.TopKeywords(3)
	if len(top) != 3 {
		t.Fatalf("top = %d entries", len(top))
	}
	// "student" (16 tags) dominates, then "cours" (6 tags).
	if top[0].Keyword != "student" || top[0].Count != 16 {
		t.Errorf("top[0] = %+v", top[0])
	}
	for i := 1; i < len(top); i++ {
		if top[i-1].Count < top[i].Count {
			t.Error("not sorted by count")
		}
	}
	all := ix.TopKeywords(0)
	if len(all) != ix.Stats.DistinctKeywords {
		t.Errorf("all = %d, want %d", len(all), ix.Stats.DistinctKeywords)
	}
}

func TestLabelHistogram(t *testing.T) {
	ix := buildFig2a(t)
	hist := ix.LabelHistogram()
	byLabel := map[string]LabelCount{}
	total := 0
	for _, lc := range hist {
		byLabel[lc.Label] = lc
		total += lc.Count
	}
	if total != ix.Stats.ElementNodes {
		t.Errorf("histogram total = %d, want %d", total, ix.Stats.ElementNodes)
	}
	if st := byLabel["Student"]; st.Count != 12 || st.PerCategory[1] != 12 {
		t.Errorf("Student = %+v, want 12 repeating", st)
	}
	if c := byLabel["Course"]; c.Count != 4 || c.PerCategory[2] != 4 {
		t.Errorf("Course = %+v, want 4 entities", c)
	}
	if !sort.SliceIsSorted(hist, func(i, j int) bool {
		if hist[i].Count != hist[j].Count {
			return hist[i].Count > hist[j].Count
		}
		return hist[i].Label < hist[j].Label
	}) {
		t.Error("histogram not sorted")
	}
}

func TestDepthHistogram(t *testing.T) {
	ix := buildFig2a(t)
	hist := ix.DepthHistogram()
	if len(hist) != ix.Stats.MaxDepth+1 {
		t.Fatalf("histogram depth = %d, want %d", len(hist), ix.Stats.MaxDepth+1)
	}
	if hist[0] != 1 {
		t.Errorf("roots = %d, want 1", hist[0])
	}
	total := 0
	for _, c := range hist {
		total += c
	}
	if total != ix.Stats.ElementNodes {
		t.Errorf("total = %d, want %d", total, ix.Stats.ElementNodes)
	}
	// Depth 5 holds the 12 students of the Databases area plus 2 of Logic.
	if hist[5] == 0 {
		t.Error("no nodes at max depth")
	}
}

func TestPostingPercentiles(t *testing.T) {
	ix := buildFig2a(t)
	ps := ix.PostingPercentiles(0, 50, 100)
	if len(ps) != 3 {
		t.Fatalf("ps = %v", ps)
	}
	if ps[0] > ps[1] || ps[1] > ps[2] {
		t.Errorf("percentiles not monotone: %v", ps)
	}
	if ps[2] != 16 {
		t.Errorf("p100 = %d, want 16 (student)", ps[2])
	}
	// Clamping.
	cl := ix.PostingPercentiles(-5, 200)
	if cl[0] != ps[0] || cl[1] != ps[2] {
		t.Errorf("clamped = %v", cl)
	}
}
