package index

import (
	"testing"

	"repro/internal/datagen"
	"repro/internal/xmltree"
)

func playsRepo(t *testing.T) *xmltree.Repository {
	t.Helper()
	return datagen.Plays(datagen.Config{Seed: 9, Scale: 3})
}

func TestBuildParallelEqualsSerial(t *testing.T) {
	repo := playsRepo(t)
	serial, err := Build(repo, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	parallel, err := BuildParallel(repo, DefaultOptions(), 4)
	if err != nil {
		t.Fatal(err)
	}
	assertIndexesEqual(t, serial, parallel)
}

func TestBuildParallelSingleWorkerFallsBack(t *testing.T) {
	repo := playsRepo(t)
	ix, err := BuildParallel(repo, DefaultOptions(), 1)
	if err != nil {
		t.Fatal(err)
	}
	if ix.Stats.Documents != len(repo.Docs) {
		t.Errorf("documents = %d, want %d", ix.Stats.Documents, len(repo.Docs))
	}
}

func TestBuildParallelDefaultWorkers(t *testing.T) {
	repo := playsRepo(t)
	ix, err := BuildParallel(repo, DefaultOptions(), 0)
	if err != nil {
		t.Fatal(err)
	}
	serial, err := Build(repo, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	assertIndexesEqual(t, serial, ix)
}

func TestBuildParallelErrors(t *testing.T) {
	if _, err := BuildParallel(nil, DefaultOptions(), 2); err == nil {
		t.Error("nil repository must fail")
	}
	bad := &xmltree.Repository{}
	bad.Add(xmltree.BuildFigure2a())
	bad.Docs = append(bad.Docs, &xmltree.Document{Name: "broken"})
	if _, err := BuildParallel(bad, DefaultOptions(), 2); err == nil {
		t.Error("broken document must fail")
	}
}

func TestBuildParallelSearchableAcrossDocs(t *testing.T) {
	repo := playsRepo(t)
	ix, err := BuildParallel(repo, DefaultOptions(), 4)
	if err != nil {
		t.Fatal(err)
	}
	// Posting lists must stay strictly increasing and within bounds.
	for kw, list := range ix.Postings {
		for i, ord := range list {
			if i > 0 && list[i-1] >= ord {
				t.Fatalf("postings for %q not increasing after merge", kw)
			}
			if int(ord) >= len(ix.Nodes) {
				t.Fatalf("posting out of bounds for %q", kw)
			}
		}
	}
	// Parent pointers must resolve within the merged table.
	for i := range ix.Nodes {
		p := ix.Nodes[i].Parent
		if p >= int32(i) || (p < 0 && len(ix.Nodes[i].ID.Path) != 1) {
			t.Fatalf("node %d has bad parent %d", i, p)
		}
	}
}
