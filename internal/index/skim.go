package index

import (
	"bufio"
	"bytes"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
)

// ErrSkimUnsupported reports that a file is not in a format whose
// statistics can be skimmed without decoding the index (i.e. not a GKS3
// snapshot); callers fall back to a full load.
var ErrSkimUnsupported = errors.New("index: stats skim unsupported for this format")

// SkimSnapshotStats returns the statistics of a GKS3 snapshot without
// building the index: the v2 payload is scanned once — strings discarded,
// posting deltas skipped — while the CRC is accumulated, so the whole
// file is still integrity-checked but no node table or posting map is
// ever allocated. This is what `gks stats` uses: O(1) memory instead of a
// full decode. A non-GKS3 file fails with ErrSkimUnsupported; a damaged
// GKS3 file fails with ErrCorrupt naming nothing (the caller adds the
// path, as with LoadFile).
func SkimSnapshotStats(path string) (Stats, error) {
	f, err := os.Open(path)
	if err != nil {
		return Stats{}, fmt.Errorf("index: %w", err)
	}
	defer f.Close()
	st, err := skimSnapshotStats(bufio.NewReader(f))
	if err != nil && errors.Is(err, ErrCorrupt) {
		return Stats{}, fmt.Errorf("index: snapshot %s: %w", path, err)
	}
	return st, err
}

func skimSnapshotStats(br *bufio.Reader) (Stats, error) {
	var magic [4]byte
	if _, err := io.ReadFull(br, magic[:]); err != nil {
		return Stats{}, ErrSkimUnsupported
	}
	if string(magic[:]) != snapshotMagic {
		return Stats{}, ErrSkimUnsupported
	}

	// GKS3 envelope, as in loadSnapshotAfterMagic.
	hdrLen, err := binary.ReadUvarint(br)
	if err != nil {
		return Stats{}, corruptf("snapshot header length: %v", err)
	}
	if hdrLen == 0 || hdrLen > maxSnapshotHeader {
		return Stats{}, corruptf("implausible snapshot header length %d", hdrLen)
	}
	hdr := make([]byte, hdrLen)
	if _, err := io.ReadFull(br, hdr); err != nil {
		return Stats{}, corruptf("snapshot header: %v", err)
	}
	hr := bytes.NewReader(hdr)
	version, err := binary.ReadUvarint(hr)
	if err != nil {
		return Stats{}, corruptf("snapshot version: %v", err)
	}
	if version != snapshotVersion {
		return Stats{}, corruptf("unsupported snapshot version %d", version)
	}
	payloadLen, err := binary.ReadUvarint(hr)
	if err != nil {
		return Stats{}, corruptf("snapshot payload length: %v", err)
	}
	if payloadLen > 1<<62 {
		return Stats{}, corruptf("implausible snapshot payload length %d", payloadLen)
	}

	// Skim the payload through the CRC: everything up to the trailing
	// stats is skipped field by field, never materialized.
	crc := crc32.NewIEEE()
	crc.Write(hdr)
	pr := bufio.NewReader(io.TeeReader(io.LimitReader(br, int64(payloadLen)), crc))
	st, err := skimBinaryStats(pr)
	if err != nil {
		return Stats{}, err
	}
	// Whatever trails the stats (nothing, in a well-formed image) still
	// belongs to the checksummed payload.
	if _, err := io.Copy(io.Discard, pr); err != nil {
		return Stats{}, corruptf("snapshot payload: %v", err)
	}
	var tail [4]byte
	if _, err := io.ReadFull(br, tail[:]); err != nil {
		return Stats{}, corruptf("snapshot checksum: %v", err)
	}
	if got, want := binary.LittleEndian.Uint32(tail[:]), crc.Sum32(); got != want {
		return Stats{}, corruptf("snapshot checksum mismatch: stored %08x, computed %08x", got, want)
	}
	return st, nil
}

// skimBinaryStats walks a v2 image, discarding everything except the
// trailing statistics.
func skimBinaryStats(br *bufio.Reader) (Stats, error) {
	var st Stats
	bad := func(what string, err error) (Stats, error) {
		if errors.Is(err, ErrCorrupt) {
			return Stats{}, err
		}
		return Stats{}, corruptf("stats skim: %s: %v", what, err)
	}
	uv := func() (uint64, error) { return binary.ReadUvarint(br) }
	skipString := func() error {
		n, err := uv()
		if err != nil {
			return err
		}
		if n > 1<<28 {
			return corruptf("stats skim: implausible string length %d", n)
		}
		_, err = br.Discard(int(n))
		return err
	}
	skipUvarints := func(n uint64) error {
		for i := uint64(0); i < n; i++ {
			if _, err := uv(); err != nil {
				return err
			}
		}
		return nil
	}

	var magic [4]byte
	if _, err := io.ReadFull(br, magic[:]); err != nil {
		return bad("magic", err)
	}
	if string(magic[:]) != binaryMagic {
		return Stats{}, corruptf("stats skim: payload magic %q", magic)
	}
	version, err := uv()
	if err != nil {
		return bad("version", err)
	}
	if version != binaryVersion {
		return Stats{}, corruptf("stats skim: unsupported version %d", version)
	}

	for _, section := range []string{"label", "doc"} {
		n, err := uv()
		if err != nil {
			return bad(section+" count", err)
		}
		if n > 1<<31 {
			return Stats{}, corruptf("stats skim: implausible %s count %d", section, n)
		}
		for i := uint64(0); i < n; i++ {
			if err := skipString(); err != nil {
				return bad(section, err)
			}
		}
	}

	nNodes, err := uv()
	if err != nil {
		return bad("node count", err)
	}
	if nNodes > 1<<31 {
		return Stats{}, corruptf("stats skim: implausible node count %d", nNodes)
	}
	for i := uint64(0); i < nNodes; i++ {
		// dewey: doc + path length + path components.
		if _, err := uv(); err != nil {
			return bad("dewey doc", err)
		}
		plen, err := uv()
		if err != nil {
			return bad("dewey length", err)
		}
		if plen > 1<<20 {
			return Stats{}, corruptf("stats skim: implausible path length %d", plen)
		}
		if err := skipUvarints(plen + 1); err != nil { // path + label
			return bad("node", err)
		}
		if _, err := br.Discard(1); err != nil { // category
			return bad("node category", err)
		}
		if err := skipUvarints(3); err != nil { // childCount subtree parent
			return bad("node", err)
		}
		hv, err := br.ReadByte()
		if err != nil {
			return bad("has-value flag", err)
		}
		if hv == 1 {
			if err := skipString(); err != nil {
				return bad("value", err)
			}
		}
	}

	nKeys, err := uv()
	if err != nil {
		return bad("keyword count", err)
	}
	if nKeys > 1<<31 {
		return Stats{}, corruptf("stats skim: implausible keyword count %d", nKeys)
	}
	for i := uint64(0); i < nKeys; i++ {
		if err := skipString(); err != nil {
			return bad("keyword", err)
		}
		n, err := uv()
		if err != nil {
			return bad("posting count", err)
		}
		if n > 1<<31 {
			return Stats{}, corruptf("stats skim: implausible posting count %d", n)
		}
		if err := skipUvarints(n); err != nil {
			return bad("postings", err)
		}
	}

	vals := make([]int, statsFieldCount)
	for i := range vals {
		v, err := uv()
		if err != nil {
			return bad("stats", err)
		}
		vals[i] = int(v)
	}
	st.setFields(vals)
	return st, nil
}
