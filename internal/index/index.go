// Package index implements the GKS Indexing Engine (Agarwal et al.,
// EDBT 2016, §2.2 and §2.4): the per-instance XML node categorization model
// (Attribute / Repeating / Entity / Connecting nodes, Defs 2.1.1–2.1.4), the
// inverted index over text and element-name keywords, and the entity/element
// hash tables with direct-child counts that the search and ranking engines
// consume.
//
// The index is built in a single pass over a parsed repository. Element
// nodes are stored in pre-order, which equals Dewey (document) order, so the
// subtree of a node occupies a contiguous ordinal range — the invariant the
// GKS search algorithm exploits.
package index

import (
	"fmt"
	"sort"

	"repro/internal/dewey"
	"repro/internal/textproc"
	"repro/internal/xmltree"
)

// Category is a bit set of node categories per §2.2. A node can carry more
// than one category: for example the <Course> nodes of Figure 2(a) are both
// entity nodes and repeating nodes within <Area>.
type Category uint8

const (
	// Attribute marks an attribute node (Def 2.1.1): an element whose only
	// child is its value and that has no same-label sibling.
	Attribute Category = 1 << iota
	// Repeating marks a repeating node (Def 2.1.2): an element with at
	// least one same-label sibling.
	Repeating
	// Entity marks an entity node (Def 2.1.3): the lowest common ancestor
	// of a group of repeating nodes and at least one attribute node not
	// contained in any repeating node.
	Entity
	// Connecting marks a connecting node (Def 2.1.4): none of the above.
	Connecting
)

// String renders the category set, e.g. "EN|RN".
func (c Category) String() string {
	names := []struct {
		bit  Category
		name string
	}{{Attribute, "AN"}, {Repeating, "RN"}, {Entity, "EN"}, {Connecting, "CN"}}
	s := ""
	for _, n := range names {
		if c&n.bit != 0 {
			if s != "" {
				s += "|"
			}
			s += n.name
		}
	}
	if s == "" {
		return "none"
	}
	return s
}

// NodeInfo is the per-element record kept by the index. It subsumes the
// paper's entityHash and elementHash (§2.4): both hash tables "store the
// number of direct children each node has", which is exactly ChildCount.
type NodeInfo struct {
	// ID is the node's Dewey identifier.
	ID dewey.ID
	// Label is an index into Index.Labels.
	Label int32
	// Cat is the node's category bit set.
	Cat Category
	// ChildCount is the number of direct children (elements and text
	// nodes); it is the divisor of the potential-flow ranking model (§5).
	ChildCount int32
	// Subtree is the number of element nodes in the subtree rooted here,
	// including the node itself; [ord, ord+Subtree) is the subtree's
	// ordinal range.
	Subtree int32
	// Parent is the ordinal of the parent element, or -1 for a document
	// root.
	Parent int32
	// HasValue reports whether the element directly contains text (the
	// paper's "text node"); such nodes carry postings and feed DI.
	HasValue bool
	// Value is the concatenated direct text content for HasValue nodes.
	Value string
}

// Index is the complete GKS index for one repository.
type Index struct {
	// Labels is the interned element-label table.
	Labels []string
	// Nodes lists all element nodes in pre-order (Dewey order).
	Nodes []NodeInfo
	// Postings maps a normalized keyword to the sorted ordinals of the
	// element nodes that directly contain it (text keywords) or carry it
	// as their tag (element-name keywords).
	Postings map[string][]int32
	// DocNames records the name of each indexed document, by document id.
	DocNames []string
	// Stats summarizes the build (Tables 4 and 5 of the paper); on a
	// tombstoned index it reflects only the live documents.
	Stats Stats

	labelIDs map[string]int32

	// tomb is the delete mask of a mutated index, nil on a freshly built
	// or compacted one. It is never persisted: save paths compact first.
	// See mutate.go.
	tomb *tombstones

	// lazy, when non-nil, serves posting lists from a PostingSource (a
	// GKS4 segment) instead of the Postings map, which stays nil. Never
	// set together with tomb: mutations materialize first. See lazy.go.
	lazy *lazyState

	// packed, when non-nil, holds the DAG-compressed node table and Nodes
	// is nil: all structural reads go through the accessor methods below,
	// which resolve against the packed arrays. See packed.go.
	packed *packedNodes
}

// Stats aggregates the counters reported in the paper's §7.1–7.2.
type Stats struct {
	Documents        int
	ElementNodes     int
	TextNodes        int
	AttributeNodes   int
	RepeatingNodes   int
	EntityNodes      int
	ConnectingNodes  int
	DistinctKeywords int
	PostingEntries   int
	MaxDepth         int
}

// Options configures Build.
type Options struct {
	// IndexElementNames controls whether element tags are added to the
	// inverted index as keywords. The paper's Example 3 queries element
	// names ("student"), so this defaults to on.
	IndexElementNames bool
	// Hint pre-sizes the builder's structures. Zero fields mean unknown
	// and fall back to growth on demand. Hints affect only allocation,
	// never the built index: a misestimate costs memory or reallocation,
	// not correctness. shard.Build supplies hints from the partition's
	// node counts and from already-built shards' observed stats.
	Hint SizeHint
}

// SizeHint carries expected sizes for Build's backing structures.
type SizeHint struct {
	// Nodes is the expected element-node count (capacity of Index.Nodes —
	// NodeInfo is large, so avoiding re-growth of this table is the
	// biggest single saving).
	Nodes int
	// Terms is the expected number of distinct keywords (initial size of
	// the postings map).
	Terms int
	// Postings is the expected total posting count; Postings/Terms seeds
	// the capacity of each new posting list.
	Postings int
}

// DefaultOptions returns the configuration used by the paper's system.
func DefaultOptions() Options { return Options{IndexElementNames: true} }

// Build indexes the repository in one pass.
func Build(repo *xmltree.Repository, opts Options) (*Index, error) {
	if repo == nil || len(repo.Docs) == 0 {
		return nil, fmt.Errorf("index: empty repository")
	}
	ix := &Index{
		Postings: make(map[string][]int32, opts.Hint.Terms),
		labelIDs: make(map[string]int32),
	}
	if opts.Hint.Nodes > 0 {
		ix.Nodes = make([]NodeInfo, 0, opts.Hint.Nodes)
	}
	b := builder{ix: ix, opts: opts}
	if opts.Hint.Terms > 0 && opts.Hint.Postings > opts.Hint.Terms {
		b.listCap = opts.Hint.Postings / opts.Hint.Terms
	}
	for _, doc := range repo.Docs {
		if doc.Root == nil {
			return nil, fmt.Errorf("index: document %q has no root", doc.Name)
		}
		if !doc.Root.IsElement() {
			return nil, fmt.Errorf("index: document %q root is not an element", doc.Name)
		}
		ix.DocNames = append(ix.DocNames, doc.Name)
		b.walk(doc.Root, false, -1, 0)
	}
	ix.finalizeStats()
	return ix, nil
}

// BuildDocument indexes a single document as a one-document repository.
func BuildDocument(doc *xmltree.Document, opts Options) (*Index, error) {
	return Build(&xmltree.Repository{Docs: []*xmltree.Document{doc}}, opts)
}

type builder struct {
	ix   *Index
	opts Options
	// listCap seeds the capacity of new posting lists (average postings
	// per term from Options.Hint), 0 to grow on demand.
	listCap int
}

// walk classifies n, appends its NodeInfo, indexes its keywords and returns
// the attribute/repeating visibility of n's subtree as seen from its parent
// (§2.2): qualAttr is true when the subtree exposes an attribute node not
// hidden inside a repeating node; repVis is true when it exposes a
// repeating-node endpoint.
func (b *builder) walk(n *xmltree.Node, isRep bool, parent int32, depth int) (qualAttr, repVis bool) {
	ix := b.ix
	ord := int32(len(ix.Nodes))
	ix.Nodes = append(ix.Nodes, NodeInfo{
		ID:         n.ID,
		Label:      b.labelID(n.Label),
		ChildCount: int32(len(n.Children)),
		Parent:     parent,
	})
	if depth > ix.Stats.MaxDepth {
		ix.Stats.MaxDepth = depth
	}

	// Inverted-index entries are emitted pre-order so every posting list is
	// automatically sorted in Dewey order (§2.4). The label keyword seeds
	// the value-token dedup: a text value containing the element's own name
	// (an <author> node whose text says "author") must not post the same
	// ordinal twice — posting lists are strictly increasing by invariant,
	// and the codec enforces it.
	var labelKey string
	if b.opts.IndexElementNames {
		if key := textproc.NormalizeKeyword(n.Label); key != "" {
			b.post(key, ord)
			labelKey = key
		}
	}
	value, hasText := directTextValue(n)
	if hasText {
		ix.Stats.TextNodes += countTextChildren(n)
		seen := map[string]bool{}
		if labelKey != "" {
			seen[labelKey] = true
		}
		for _, tok := range textproc.Normalize(value) {
			if !seen[tok] {
				seen[tok] = true
				b.post(tok, ord)
			}
		}
	}

	// Count same-label element siblings among n's children to decide which
	// children are repeating (Def 2.1.2).
	labelCount := make(map[string]int, len(n.Children))
	for _, c := range n.Children {
		if c.IsElement() {
			labelCount[c.Label]++
		}
	}

	// Recurse, collecting per-child visibility for the entity test.
	var attrChildren, repChildren, bothChildren int
	for _, c := range n.Children {
		if !c.IsElement() {
			continue
		}
		qa, rv := b.walk(c, labelCount[c.Label] > 1, ord, depth+1)
		switch {
		case qa && rv:
			bothChildren++
		case qa:
			attrChildren++
		case rv:
			repChildren++
		}
	}

	info := &ix.Nodes[ord]
	info.Subtree = int32(len(ix.Nodes)) - ord
	if hasText {
		info.HasValue = true
		info.Value = value
	}

	// Classify (Defs 2.1.1–2.1.4).
	directValue := n.DirectlyContainsValue()
	var cat Category
	switch {
	case directValue && isRep:
		// "A node that directly contains its value and also has siblings
		// with the same XML tag is considered a repeating node."
		cat = Repeating
	case directValue:
		cat = Attribute
	default:
		if isRep {
			cat |= Repeating
		}
		if entityTest(attrChildren, repChildren, bothChildren) {
			cat |= Entity
		}
		if cat == 0 {
			// Connecting = none of AN/RN/EN (Def 2.1.4).
			cat = Connecting
		}
	}
	info.Cat = cat

	// Visibility propagated to the parent.
	switch {
	case cat&Repeating != 0:
		// A repeating node is itself a repeating endpoint and hides any
		// attribute nodes inside it (Def 2.1.3: attributes "do not occur in
		// any repeating node").
		return false, true
	case cat == Attribute:
		return true, false
	default:
		qa := attrChildren+bothChildren > 0
		rv := repChildren+bothChildren > 0
		return qa, rv
	}
}

// entityTest implements Def 2.1.3: the node is the *lowest* common ancestor
// of a qualifying attribute node and a repeating group exactly when the
// attribute and the repeating endpoint are exposed by two distinct children
// (if a single child exposed both, that child's subtree would contain the
// whole set and the LCA would be deeper).
func entityTest(attr, rep, both int) bool {
	switch {
	case both >= 2:
		return true
	case both == 1:
		return attr+rep >= 1
	default:
		return attr >= 1 && rep >= 1
	}
}

// directTextValue returns the concatenated direct text of n and whether it
// has any text children.
func directTextValue(n *xmltree.Node) (string, bool) {
	has := false
	for _, c := range n.Children {
		if !c.IsElement() {
			has = true
			break
		}
	}
	if !has {
		return "", false
	}
	return n.Value(), true
}

func countTextChildren(n *xmltree.Node) int {
	count := 0
	for _, c := range n.Children {
		if !c.IsElement() {
			count++
		}
	}
	return count
}

func (b *builder) labelID(label string) int32 {
	if id, ok := b.ix.labelIDs[label]; ok {
		return id
	}
	id := int32(len(b.ix.Labels))
	b.ix.Labels = append(b.ix.Labels, label)
	b.ix.labelIDs[label] = id
	return id
}

func (b *builder) post(keyword string, ord int32) {
	list, ok := b.ix.Postings[keyword]
	if !ok && b.listCap > 0 {
		list = make([]int32, 0, b.listCap)
	}
	b.ix.Postings[keyword] = append(list, ord)
}

func (ix *Index) finalizeStats() {
	s := &ix.Stats
	s.Documents = len(ix.DocNames)
	s.ElementNodes = ix.NodeCount()
	ix.RefreshCategoryStats()
	s.DistinctKeywords = len(ix.Postings)
	s.PostingEntries = 0
	for _, p := range ix.Postings {
		s.PostingEntries += len(p)
	}
}

// RefreshCategoryStats recomputes the category counters after an external
// re-categorization (e.g. internal/schema's schema-level pass). Only live
// nodes are counted, so a tombstoned index reports the statistics of its
// surviving documents.
func (ix *Index) RefreshCategoryStats() {
	s := &ix.Stats
	s.AttributeNodes, s.RepeatingNodes, s.EntityNodes, s.ConnectingNodes = 0, 0, 0, 0
	for _, sp := range ix.LiveSpans() {
		for ord := sp[0]; ord < sp[1]; ord++ {
			c := ix.CatOf(ord)
			if c&Attribute != 0 {
				s.AttributeNodes++
			}
			if c&Repeating != 0 {
				s.RepeatingNodes++
			}
			if c&Entity != 0 {
				s.EntityNodes++
			}
			if c&Connecting != 0 {
				s.ConnectingNodes++
			}
		}
	}
}

// Lookup returns the live posting list for a raw keyword after
// normalization (lower-case + stem), or nil if absent. The returned slice
// must not be modified.
func (ix *Index) Lookup(raw string) []int32 {
	key := textproc.NormalizeKeyword(raw)
	if key == "" {
		return nil
	}
	return ix.PostingsFor(key)
}

// LabelOf returns the element label of the node at ord.
func (ix *Index) LabelOf(ord int32) string { return ix.Labels[ix.LabelIDOf(ord)] }

// LabelIDOf returns the interned label id (index into Labels) of the node
// at ord.
func (ix *Index) LabelIDOf(ord int32) int32 {
	if ix.packed != nil {
		return ix.packed.labelOf(ord)
	}
	return ix.Nodes[ord].Label
}

// CatOf returns the category bit set of the node at ord.
func (ix *Index) CatOf(ord int32) Category {
	if ix.packed != nil {
		return ix.packed.catOf(ord)
	}
	return ix.Nodes[ord].Cat
}

// ChildCountOf returns the direct child count (elements and text nodes) of
// the node at ord.
func (ix *Index) ChildCountOf(ord int32) int32 {
	if ix.packed != nil {
		return ix.packed.childCountOf(ord)
	}
	return ix.Nodes[ord].ChildCount
}

// SubtreeSizeOf returns the element count of the subtree rooted at ord,
// including ord itself.
func (ix *Index) SubtreeSizeOf(ord int32) int32 {
	if ix.packed != nil {
		return ix.packed.subtreeOf(ord)
	}
	return ix.Nodes[ord].Subtree
}

// DepthOf returns the Dewey depth of the node at ord (document roots are
// depth 0). On both representations this is O(1): the flat table stores
// full paths, the packed table stores depths explicitly.
func (ix *Index) DepthOf(ord int32) int32 {
	if ix.packed != nil {
		return ix.packed.depthOf(ord)
	}
	return int32(ix.Nodes[ord].ID.Depth())
}

// HasValueAt reports whether the node at ord directly contains text.
func (ix *Index) HasValueAt(ord int32) bool {
	if ix.packed != nil {
		return ix.packed.valIDOf(ord) >= 0
	}
	return ix.Nodes[ord].HasValue
}

// ValueAt returns the concatenated direct text of the node at ord ("" when
// HasValueAt is false).
func (ix *Index) ValueAt(ord int32) string {
	if ix.packed != nil {
		if v := ix.packed.valIDOf(ord); v >= 0 {
			return ix.packed.value(v)
		}
		return ""
	}
	return ix.Nodes[ord].Value
}

// IDOf returns the Dewey identifier of the node at ord. On a packed index
// the path is materialized by a parent-chain walk (lazy expansion); result
// formatting is the only hot caller, so the allocation stays off the
// query's merge/window path.
func (ix *Index) IDOf(ord int32) dewey.ID {
	if ix.packed != nil {
		return ix.packed.idOf(ord)
	}
	return ix.Nodes[ord].ID
}

// DocOf returns the Dewey document number of the node at ord.
func (ix *Index) DocOf(ord int32) int32 {
	if ix.packed != nil {
		return ix.packed.docOf(ord)
	}
	return ix.Nodes[ord].ID.Doc
}

// Info returns the NodeInfo at ord. On a packed index the record is
// materialized on the fly; callers that need a single field should prefer
// the field accessors, which do not allocate.
func (ix *Index) Info(ord int32) *NodeInfo {
	if ix.packed != nil {
		n := ix.packed.nodeInfo(ord)
		return &n
	}
	return &ix.Nodes[ord]
}

// IsEntity mirrors the paper's isEntity(DeweyId) helper: it returns the
// number of direct children when the node is an entity node, and 0
// otherwise.
func (ix *Index) IsEntity(ord int32) int32 {
	if ix.CatOf(ord)&Entity != 0 {
		return ix.ChildCountOf(ord)
	}
	return 0
}

// IsElement mirrors the paper's isElement(DeweyId) helper for repeating and
// connecting nodes.
func (ix *Index) IsElement(ord int32) int32 {
	if ix.CatOf(ord)&(Repeating|Connecting) != 0 {
		return ix.ChildCountOf(ord)
	}
	return 0
}

// OrdinalOf locates the element with the given Dewey ID by binary search
// over the pre-order node table. Tombstoned nodes are not found.
func (ix *Index) OrdinalOf(id dewey.ID) (int32, bool) {
	if p := ix.packed; p != nil {
		n := len(p.ordInst)
		i := sort.Search(n, func(i int) bool { return p.compareID(int32(i), id) >= 0 })
		if i < n && p.compareID(int32(i), id) == 0 && ix.LiveOrd(int32(i)) {
			return int32(i), true
		}
		return 0, false
	}
	i := sort.Search(len(ix.Nodes), func(i int) bool {
		return dewey.Compare(ix.Nodes[i].ID, id) >= 0
	})
	if i < len(ix.Nodes) && dewey.Equal(ix.Nodes[i].ID, id) && ix.LiveOrd(int32(i)) {
		return int32(i), true
	}
	return 0, false
}

// SubtreeRange returns the half-open ordinal range [start, end) of the
// subtree rooted at ord.
func (ix *Index) SubtreeRange(ord int32) (start, end int32) {
	return ord, ord + ix.SubtreeSizeOf(ord)
}

// ContainsOrd reports whether desc lies in the subtree of anc (or is anc).
func (ix *Index) ContainsOrd(anc, desc int32) bool {
	return desc >= anc && desc < anc+ix.SubtreeSizeOf(anc)
}

// LowestEntityAncestorOrSelf returns the ordinal of the nearest entity node
// on the path from ord to its document root, including ord itself, and
// whether one exists. This is the lifting step of the GKS search algorithm
// (§4.1: "we check if it is an entity node or any of its ancestors is an
// entity node").
func (ix *Index) LowestEntityAncestorOrSelf(ord int32) (int32, bool) {
	for cur := ord; cur >= 0; cur = ix.ParentOf(cur) {
		if ix.CatOf(cur)&Entity != 0 {
			return cur, true
		}
	}
	return 0, false
}

// ParentOf returns the ordinal of ord's parent element, or -1 at a root.
func (ix *Index) ParentOf(ord int32) int32 {
	if ix.packed != nil {
		return ix.packed.parentOf(ord)
	}
	return ix.Nodes[ord].Parent
}

// PathLabels returns the element labels on the path from (and including)
// anc down to (and including) desc. It is used to expose DI semantics —
// "the XML elements on the path from the root of LCE node till the keyword"
// (§1.2). If desc is not in anc's subtree, nil is returned.
func (ix *Index) PathLabels(anc, desc int32) []string {
	if !ix.ContainsOrd(anc, desc) {
		return nil
	}
	var rev []int32
	for cur := desc; cur != anc; cur = ix.ParentOf(cur) {
		rev = append(rev, cur)
	}
	labels := make([]string, 0, len(rev)+1)
	labels = append(labels, ix.LabelOf(anc))
	for i := len(rev) - 1; i >= 0; i-- {
		labels = append(labels, ix.LabelOf(rev[i]))
	}
	return labels
}

// ValueNodesUnder returns the ordinals of the value-carrying nodes in the
// subtree of e whose lowest entity ancestor is e itself — the paper's
// "attribute nodes of the LCE node" used by DI discovery (§6.2). Nested
// entities keep their own attributes.
func (ix *Index) ValueNodesUnder(e int32) []int32 {
	start, end := ix.SubtreeRange(e)
	var out []int32
	for ord := start; ord < end; ord++ {
		if ord != start && ix.CatOf(ord)&Entity != 0 {
			// Skip the whole nested entity subtree.
			ord += ix.SubtreeSizeOf(ord) - 1
			continue
		}
		if ix.HasValueAt(ord) {
			out = append(out, ord)
		}
	}
	return out
}

// Validate checks the structural invariants a healthy index satisfies:
// labels in range, parents preceding their children (pre-order), subtree
// ranges inside the node table, and posting lists strictly increasing
// within bounds. A decoded snapshot that passes the checksum but was
// written by a buggy or hostile producer is caught here before it is
// swapped into a serving system; reload paths call this between load and
// swap.
func (ix *Index) Validate() error {
	nNodes := ix.NodeCount()
	nLabels := int32(len(ix.Labels))
	if p := ix.packed; p != nil {
		if err := p.validatePacked(); err != nil {
			return err
		}
		for _, arr := range [][]int32{p.spLabel, p.shLabel} {
			for i, l := range arr {
				if l < 0 || l >= nLabels {
					return fmt.Errorf("index: validate: packed node record %d: label %d out of range [0,%d)", i, l, nLabels)
				}
			}
		}
	} else {
		for i := range ix.Nodes {
			n := &ix.Nodes[i]
			if n.Label < 0 || n.Label >= nLabels {
				return fmt.Errorf("index: validate: node %d: label %d out of range [0,%d)", i, n.Label, nLabels)
			}
			if n.Parent < -1 || n.Parent >= int32(i) {
				return fmt.Errorf("index: validate: node %d: parent %d is not a preceding ordinal", i, n.Parent)
			}
			if n.ChildCount < 0 {
				return fmt.Errorf("index: validate: node %d: negative child count %d", i, n.ChildCount)
			}
			if n.Subtree < 1 || int64(i)+int64(n.Subtree) > int64(nNodes) {
				return fmt.Errorf("index: validate: node %d: subtree size %d overruns %d nodes", i, n.Subtree, nNodes)
			}
		}
	}
	for kw, list := range ix.Postings {
		prev := int32(-1)
		for _, ord := range list {
			if ord <= prev || int(ord) >= nNodes {
				return fmt.Errorf("index: validate: posting list %q: ordinal %d out of order or out of range [0,%d)", kw, ord, nNodes)
			}
			prev = ord
		}
	}
	return nil
}
