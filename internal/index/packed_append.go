package index

import (
	"encoding/binary"
	"sync"
	"sync/atomic"
)

// Delta-maintaining pack (ROADMAP item 4 follow-on): appending a document
// to a packed index without flattening it. The legacy append path ran
// Compacted().Unpacked() — materializing the whole node table as flat
// NodeInfo records — and then re-packed the merged result from scratch,
// making every live mutation O(index). The delta path instead packs only
// the new document's subtree against the *existing* shape table: shape
// interning stays exact (keyed on the same canonical byte encoding
// packNodes uses), the table is append-only between full repacks, and new
// spine rows, instances, ordInst entries and arena values are appended in
// place. Cost is O(document + touched posting lists), not O(index).
//
// Concurrency. Packed indexes are immutable serving state, but the delta
// path extends the predecessor's backing arrays in place (beyond their
// published lengths, which no reader's slice header can reach). That is
// safe for exactly one appender per array generation, so each packed
// lineage carries an appendState whose mutex-guarded owner pointer names
// the one generation whose tails may still grow. The first append wins
// ownership and moves it to the successor; a second append branching from
// the same generation loses the claim and falls back to the legacy
// flatten-splice-repack path, which is always correct.
//
// Amortization. Delta appends leave debt behind: shapes that would have
// deduplicated against the new subtrees stay spine, and tombstoned
// ordinals keep their physical rows. PackDebt reports the ratio,
// Repacked() pays it with a full deterministic repack, and the server's
// checkpointer triggers that under the reload-mutex discipline once the
// ratio crosses its threshold.

// appendState is the per-lineage delta-append claim and lookup sidecar.
// It is shared by pointer along a chain of delta-appended generations;
// owner names the single generation whose array tails are extendable.
type appendState struct {
	mu    sync.Mutex
	owner *packedNodes
	look  *packLookups
}

// packLookups is the append-side reconstruction of packNodes' interning
// state: value → arena id, canonical shape key → shape id, per-shape
// occurrence counts, and shape id → emitted shape-table index. It is
// built once per lineage (O(N)) on the first delta append and maintained
// incrementally afterwards; ownership moves with the appendState claim.
type packLookups struct {
	valIDs   map[string]int32
	shapeIDs map[string]int32
	shapeCnt []int32
	canon    map[int32]int32
}

// packCount counts full packNodes runs process-wide; regression tests use
// deltas of it to pin that batch replay and delta appends do not repack.
var packCount atomic.Uint64

// PackCount returns the number of full node-table packs performed by this
// process since start. Delta appends do not increment it; every call to
// Pack/RepackInPlace/Compacted-on-packed does.
func PackCount() uint64 { return packCount.Load() }

// appendShapeKey appends ord's canonical shape key — the exact encoding
// packNodes interns on — resolving child shape ids through sidOf.
func (p *packedNodes) appendShapeKey(key []byte, ord int32, sidOf []int32) []byte {
	key = binary.AppendUvarint(key, uint64(p.labelOf(ord)))
	key = append(key, byte(p.catOf(ord)))
	key = binary.AppendUvarint(key, uint64(p.childCountOf(ord)))
	key = binary.AppendUvarint(key, uint64(p.valIDOf(ord)+1))
	for c, end := ord+1, ord+p.subtreeOf(ord); c < end; c += p.subtreeOf(c) {
		key = binary.AppendUvarint(key, uint64(sidOf[c]))
		key = binary.AppendUvarint(key, uint64(uint32(p.lastOf(c))))
	}
	return key
}

// buildLookups reconstructs the interning maps for the whole packed table.
// The bottom-up sweep mirrors packNodes: children carry higher ordinals,
// so a reverse scan sees every child's shape id before its parent's key
// needs it. Shape keys are only ever compared against other keys built
// from the same table (plus delta documents), so the reconstructed id
// space does not need to match the original pack's transient one — it
// only needs to group identical subtrees identically, which the exact
// canonical encoding guarantees.
func (p *packedNodes) buildLookups() *packLookups {
	n := int32(len(p.ordInst))
	lk := &packLookups{
		valIDs:   make(map[string]int32, len(p.valOff)-1),
		shapeIDs: make(map[string]int32, n/2+1),
		canon:    make(map[int32]int32, len(p.shOff)),
	}
	for v := int32(0); v+1 < int32(len(p.valOff)); v++ {
		lk.valIDs[p.value(v)] = v
	}
	sidOf := make([]int32, n)
	var key []byte
	for ord := n - 1; ord >= 0; ord-- {
		key = p.appendShapeKey(key[:0], ord, sidOf)
		sid, ok := lk.shapeIDs[string(key)]
		if !ok {
			sid = int32(len(lk.shapeCnt))
			lk.shapeIDs[string(key)] = sid
			lk.shapeCnt = append(lk.shapeCnt, 0)
		}
		sidOf[ord] = sid
		lk.shapeCnt[sid]++
	}
	for i := range p.inStart {
		lk.canon[sidOf[p.inStart[i]]] = p.inShape[i]
	}
	return lk
}

// deltaAppend packs nodes (a flat pre-order table of whole documents, all
// numbered past the base's last document) against the existing shape
// table and returns the extended generation. remap translates the
// partial's label ids to the base's; lk must be current for p. The caller
// holds the appendState mutex and owns p's array tails.
func (p *packedNodes) deltaAppend(nodes []NodeInfo, remap []int32, lk *packLookups) *packedNodes {
	baseN := int32(len(p.ordInst))
	m := int32(len(nodes))
	q := *p // shallow copy; every extended array is reassigned below

	// Value interning against the shared arena. A new value's id is the
	// current offset count minus the sentinel; the old sentinel becomes its
	// start offset and a fresh sentinel is appended.
	valOf := make([]int32, m)
	for k := int32(0); k < m; k++ {
		nd := &nodes[k]
		if !nd.HasValue {
			valOf[k] = -1
			continue
		}
		id, ok := lk.valIDs[nd.Value]
		if !ok {
			id = int32(len(q.valOff)) - 1
			lk.valIDs[nd.Value] = id
			q.valArena = append(q.valArena, nd.Value...)
			q.valOff = append(q.valOff, int32(len(q.valArena)))
		}
		valOf[k] = id
	}

	// Bottom-up shape interning over the new nodes, against the global
	// shape-id space (base table + prior deltas).
	sidOf := make([]int32, m)
	var key []byte
	for k := m - 1; k >= 0; k-- {
		nd := &nodes[k]
		key = binary.AppendUvarint(key[:0], uint64(remap[nd.Label]))
		key = append(key, byte(nd.Cat))
		key = binary.AppendUvarint(key, uint64(nd.ChildCount))
		key = binary.AppendUvarint(key, uint64(valOf[k]+1))
		for c := k + 1; c < k+nd.Subtree; c += nodes[c].Subtree {
			key = binary.AppendUvarint(key, uint64(sidOf[c]))
			key = binary.AppendUvarint(key, uint64(uint32(lastComp(&nodes[c]))))
		}
		sid, ok := lk.shapeIDs[string(key)]
		if !ok {
			sid = int32(len(lk.shapeCnt))
			lk.shapeIDs[string(key)] = sid
			lk.shapeCnt = append(lk.shapeCnt, 0)
		}
		sidOf[k] = sid
		lk.shapeCnt[sid]++
	}

	// Top-down emission, mirroring packNodes' instance selection: a node
	// whose shape now occurs at least twice across the whole table becomes
	// an instance (emitting the shape's records on first use) and its
	// subtree is skipped; everything else is spine and the scan descends.
	// A shape whose earlier occurrences stayed spine in the base keeps
	// them there — that residue is the delta debt a full repack clears.
	for k := int32(0); k < m; {
		nd := &nodes[k]
		sid := sidOf[k]
		if lk.shapeCnt[sid] < 2 {
			slot := int32(len(q.spLabel))
			q.ordInst = append(q.ordInst, ^slot)
			q.spLabel = append(q.spLabel, remap[nd.Label])
			q.spCat = append(q.spCat, uint8(nd.Cat))
			q.spChild = append(q.spChild, nd.ChildCount)
			q.spSubtree = append(q.spSubtree, nd.Subtree)
			par := nd.Parent
			if par >= 0 {
				par += baseN
			}
			q.spParent = append(q.spParent, par)
			q.spLast = append(q.spLast, lastComp(nd))
			q.spDepth = append(q.spDepth, int32(nd.ID.Depth()))
			q.spVal = append(q.spVal, valOf[k])
			k++
			continue
		}
		cs, ok := lk.canon[sid]
		if !ok {
			cs = int32(len(q.shOff)) - 1
			lk.canon[sid] = cs
			for j := int32(0); j < nd.Subtree; j++ {
				md := &nodes[k+j]
				q.shLabel = append(q.shLabel, remap[md.Label])
				q.shCat = append(q.shCat, uint8(md.Cat))
				q.shChild = append(q.shChild, md.ChildCount)
				q.shSubtree = append(q.shSubtree, md.Subtree)
				rel := int32(-1)
				if j > 0 {
					rel = md.Parent - k
				}
				q.shParent = append(q.shParent, rel)
				q.shLast = append(q.shLast, lastComp(md))
				q.shDepth = append(q.shDepth, int32(md.ID.Depth()-nd.ID.Depth()))
				q.shVal = append(q.shVal, valOf[k+j])
			}
			q.shOff = append(q.shOff, int32(len(q.shLabel)))
		}
		inst := int32(len(q.inStart))
		q.inStart = append(q.inStart, baseN+k)
		q.inShape = append(q.inShape, cs)
		par := nd.Parent
		if par >= 0 {
			par += baseN
		}
		q.inParent = append(q.inParent, par)
		q.inLast = append(q.inLast, lastComp(nd))
		q.inDepth = append(q.inDepth, int32(nd.ID.Depth()))
		for j := int32(0); j < nd.Subtree; j++ {
			q.ordInst = append(q.ordInst, inst)
		}
		k += nd.Subtree
	}

	docs := 0
	for k := int32(0); k < m; k += nodes[k].Subtree {
		q.docStart = append(q.docStart, baseN+k)
		q.docNum = append(q.docNum, nodes[k].ID.Doc)
		docs++
	}
	q.deltaNodes = p.deltaNodes + int(m)
	q.deltaDocs = p.deltaDocs + docs
	return &q
}

// appendPacked attempts the delta append of a one-or-more-document flat
// partial index onto the packed base and reports whether it applied. It
// declines — and the caller falls back to the legacy flatten-splice-
// repack — when the base is not the extendable tip of its lineage, or
// when the partial's document numbers do not sort strictly after every
// physical (live or tombstoned) document of the base, which would break
// the Dewey order the packed root table and OrdinalOf rely on.
func (ix *Index) appendPacked(partial *Index) (*Index, bool) {
	p := ix.packed
	if p == nil || p.app == nil || ix.lazy != nil || len(partial.Nodes) == 0 {
		return nil, false
	}
	if n := len(p.docNum); n > 0 && partial.Nodes[0].ID.Doc <= p.docNum[n-1] {
		return nil, false
	}

	a := p.app
	a.mu.Lock()
	defer a.mu.Unlock()
	if a.owner != p {
		return nil, false
	}
	if a.look == nil {
		a.look = p.buildLookups()
	}

	// Label remap; the tables are shared untouched unless the document
	// introduces labels the base has never seen.
	labels, labelIDs := ix.Labels, ix.labelIDs
	remap := make([]int32, len(partial.Labels))
	copied := false
	for i, l := range partial.Labels {
		id, ok := labelIDs[l]
		if !ok {
			if !copied {
				labels = append([]string(nil), ix.Labels...)
				ids := make(map[string]int32, len(ix.labelIDs)+4)
				for k, v := range ix.labelIDs {
					ids[k] = v
				}
				labelIDs = ids
				copied = true
			}
			id = int32(len(labels))
			labels = append(labels, l)
			labelIDs[l] = id
		}
		remap[i] = id
	}

	baseN := int32(len(p.ordInst))
	q := p.deltaAppend(partial.Nodes, remap, a.look)
	q.app = a
	a.owner = q

	// Postings: fresh map (concurrent readers hold the old one), untouched
	// lists shared, the document's terms extended with rebased ordinals.
	post := make(map[string][]int32, len(ix.Postings)+len(partial.Postings))
	for kw, list := range ix.Postings {
		post[kw] = list
	}
	for kw, plist := range partial.Postings {
		base := post[kw]
		dst := make([]int32, len(base), len(base)+len(plist))
		copy(dst, base)
		for _, ord := range plist {
			dst = append(dst, ord+baseN)
		}
		post[kw] = dst
	}

	names := make([]string, 0, len(ix.DocNames)+len(partial.DocNames))
	names = append(append(names, ix.DocNames...), partial.DocNames...)

	// Tombstones survive the append (unlike the legacy path, which
	// compacts): the new ordinals extend the final live span. The dead
	// ranges and per-keyword dead counts are immutable after DeleteDoc,
	// so they are shared.
	var tomb *tombstones
	if t := ix.tomb; t != nil {
		live := make([][2]int32, len(t.live), len(t.live)+1)
		copy(live, t.live)
		m := int32(len(partial.Nodes))
		if n := len(live); n > 0 && live[n-1][1] == baseN {
			live[n-1][1] = baseN + m
		} else {
			live = append(live, [2]int32{baseN, baseN + m})
		}
		tomb = &tombstones{dead: t.dead, live: live, deadPosts: t.deadPosts, deadDocs: t.deadDocs}
	}

	// Incremental live statistics: the base's stats are already live-only
	// (recomputed at delete time), the partial's are self-contained, and
	// the only cross term is vocabulary overlap.
	st := ix.Stats
	pst := partial.Stats
	st.Documents += pst.Documents
	st.ElementNodes += pst.ElementNodes
	st.TextNodes += pst.TextNodes
	st.AttributeNodes += pst.AttributeNodes
	st.RepeatingNodes += pst.RepeatingNodes
	st.EntityNodes += pst.EntityNodes
	st.ConnectingNodes += pst.ConnectingNodes
	st.PostingEntries += pst.PostingEntries
	if pst.MaxDepth > st.MaxDepth {
		st.MaxDepth = pst.MaxDepth
	}
	for kw := range partial.Postings {
		base, ok := ix.Postings[kw]
		if !ok || (ix.tomb != nil && int(ix.tomb.deadPosts[kw]) >= len(base)) {
			st.DistinctKeywords++
		}
	}

	return &Index{
		Labels:   labels,
		Postings: post,
		DocNames: names,
		Stats:    st,
		labelIDs: labelIDs,
		tomb:     tomb,
		packed:   q,
	}, true
}

// PackDebt reports the fraction of the physical node table a full repack
// would reclaim or re-deduplicate: ordinals appended by delta packs since
// the last full pack plus tombstoned ordinals, over the total. It is the
// signal the checkpointer's amortization policy thresholds on; a freshly
// packed (or flat, untombstoned) index reports 0.
func (ix *Index) PackDebt() float64 {
	n := ix.NodeCount()
	if n == 0 {
		return 0
	}
	debt := 0
	if p := ix.packed; p != nil {
		debt += p.deltaNodes
	}
	if ix.tomb != nil {
		for _, r := range ix.tomb.dead {
			debt += int(r[1] - r[0])
		}
	}
	if debt >= n {
		return 1
	}
	return float64(debt) / float64(n)
}

// Repacked pays the index's pack debt: tombstones are compacted away and
// a packed node table is rebuilt from scratch by the deterministic full
// pack, so the result is exactly what a cold rebuild's Pack() of the
// surviving documents produces. An index with no debt is returned as-is;
// a flat index compacts without gaining a packed table.
func (ix *Index) Repacked() *Index {
	if ix.tomb != nil {
		return ix.Compacted()
	}
	if p := ix.packed; p != nil && p.deltaNodes > 0 {
		return ix.Unpacked().Pack()
	}
	return ix
}
