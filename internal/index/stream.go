package index

import (
	"encoding/xml"
	"fmt"
	"io"
	"os"
	"sort"
	"strings"

	"repro/internal/dewey"
	"repro/internal/textproc"
)

// Streaming index construction: BuildStream consumes an XML token stream
// directly, without materializing the document tree — the paper's "single
// pass over the data" (§2.2: "XML documents follow pre-order arrival of
// nodes. Hence, different node types are identified in a single pass")
// made literal. Peak memory is O(depth + index) instead of
// O(document + index), which is what lets the real 1.45 GB DBLP dump be
// indexed on a laptop.
//
// The resulting index is identical to Build over the parsed tree
// (property-tested): categorization is deferred to each element's parent
// (sibling multiplicity is only known then), and posting lists are sorted
// once at the end because mixed-content text can arrive after descendant
// elements.

// streamFrame is the per-open-element state.
type streamFrame struct {
	ord        int32
	childCount int32 // elements + text children
	elemOrder  int32 // ordinal for the next child (elements and text)
	depth      int
	textChunks []string
	seenTokens map[string]bool
	labelCount map[int32]int // element children per label
	children   []childSummary
}

// childSummary carries what the parent needs to classify a finished child.
type childSummary struct {
	ord         int32
	label       int32
	directValue bool
	attrC       int // the child's own child-visibility tallies
	repC        int
	bothC       int
}

// BuildStream indexes one XML document from r as document docID of a
// repository, in a single pass.
func BuildStream(r io.Reader, docID int32, name string, opts Options) (*Index, error) {
	ix := &Index{
		Postings: make(map[string][]int32),
		labelIDs: make(map[string]int32),
		DocNames: []string{name},
	}
	b := &streamBuilder{ix: ix, opts: opts, docID: docID}
	if err := b.run(r, name); err != nil {
		return nil, err
	}
	// Mixed content can emit an ancestor's text tokens after descendant
	// ordinals; one final sort restores per-keyword Dewey order.
	for kw, list := range ix.Postings {
		sort.Slice(list, func(i, j int) bool { return list[i] < list[j] })
		ix.Postings[kw] = list
	}
	ix.finalizeStats()
	return ix, nil
}

// BuildStreamFile indexes the XML file at path in a single pass.
func BuildStreamFile(path string, docID int32, opts Options) (*Index, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("index: %w", err)
	}
	defer f.Close()
	return BuildStream(f, docID, path, opts)
}

// BuildStreamFiles streams every file and merges the partial indexes into
// one repository index, equivalent to parsing and Build-ing all files.
func BuildStreamFiles(paths []string, opts Options) (*Index, error) {
	if len(paths) == 0 {
		return nil, fmt.Errorf("index: no input files")
	}
	parts := make([]*Index, len(paths))
	for i, p := range paths {
		ix, err := BuildStreamFile(p, int32(i), opts)
		if err != nil {
			return nil, err
		}
		parts[i] = ix
	}
	return mergePartials(parts)
}

type streamBuilder struct {
	ix    *Index
	opts  Options
	docID int32
}

func (b *streamBuilder) run(r io.Reader, name string) error {
	dec := xml.NewDecoder(r)
	var stack []*streamFrame
	var path []int32 // Dewey path of the innermost open element
	sawRoot := false

	for {
		tok, err := dec.Token()
		if err == io.EOF {
			break
		}
		if err != nil {
			return fmt.Errorf("index: streaming %s: %w", name, err)
		}
		switch t := tok.(type) {
		case xml.StartElement:
			if len(stack) == 0 {
				if sawRoot {
					return fmt.Errorf("index: streaming %s: multiple root elements", name)
				}
				sawRoot = true
				path = append(path, 0)
			} else {
				parent := stack[len(stack)-1]
				path = append(path, parent.elemOrder)
				parent.elemOrder++
				parent.childCount++
			}
			frame := b.openElement(t.Name.Local, path, len(stack))
			if len(stack) > 0 {
				p := stack[len(stack)-1]
				p.labelCount[frame.labelAlias]++
			}
			stack = append(stack, frame.frame)
			// Normalized XML attributes: synthesize leading child elements
			// the way xmltree.Parse does.
			for _, a := range t.Attr {
				if a.Name.Space == "xmlns" || a.Name.Local == "xmlns" {
					continue
				}
				if err := b.attrChild(stack, &path, a.Name.Local, a.Value); err != nil {
					return err
				}
			}
		case xml.EndElement:
			if len(stack) == 0 {
				return fmt.Errorf("index: streaming %s: unbalanced end element", name)
			}
			top := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			path = path[:len(path)-1]
			summary := b.closeElement(top)
			if len(stack) > 0 {
				stack[len(stack)-1].children = append(stack[len(stack)-1].children, summary)
			}
		case xml.CharData:
			if len(stack) == 0 {
				continue
			}
			text := strings.TrimSpace(string(t))
			if text == "" {
				continue
			}
			top := stack[len(stack)-1]
			top.textChunks = append(top.textChunks, text)
			top.childCount++
			top.elemOrder++
			b.ix.Stats.TextNodes++
			for _, tok := range textproc.Normalize(text) {
				if !top.seenTokens[tok] {
					top.seenTokens[tok] = true
					b.post(tok, top.ord)
				}
			}
		}
	}
	if !sawRoot {
		return fmt.Errorf("index: streaming %s: document has no root element", name)
	}
	if len(stack) != 0 {
		return fmt.Errorf("index: streaming %s: unexpected end of input", name)
	}
	return nil
}

type openedFrame struct {
	frame      *streamFrame
	labelAlias int32
}

// openElement appends the NodeInfo shell and posts the label keyword.
func (b *streamBuilder) openElement(label string, path []int32, depth int) openedFrame {
	ix := b.ix
	ord := int32(len(ix.Nodes))
	labelID := b.labelID(label)
	id := dewey.ID{Doc: b.docID, Path: append([]int32(nil), path...)}
	// Parent ordinals are assigned when the parent closes (closeElement);
	// until then every node carries -1, which is also the final value for
	// document roots.
	ix.Nodes = append(ix.Nodes, NodeInfo{ID: id, Label: labelID, Parent: -1})
	if depth > ix.Stats.MaxDepth {
		ix.Stats.MaxDepth = depth
	}
	// The label keyword is pre-seeded into the frame's token dedup: a text
	// value containing the element's own name (an <author> node whose text
	// says "author") must not post the same ordinal twice — posting lists
	// are strictly increasing by invariant, and the codec enforces it.
	seen := map[string]bool{}
	if b.opts.IndexElementNames {
		if key := textproc.NormalizeKeyword(label); key != "" {
			b.post(key, ord)
			seen[key] = true
		}
	}
	return openedFrame{
		frame: &streamFrame{
			ord:        ord,
			depth:      depth,
			seenTokens: seen,
			labelCount: map[int32]int{},
		},
		labelAlias: labelID,
	}
}

// attrChild synthesizes the <k>v</k> child for an XML attribute.
func (b *streamBuilder) attrChild(stack []*streamFrame, path *[]int32, name, value string) error {
	parent := stack[len(stack)-1]
	*path = append(*path, parent.elemOrder)
	parent.elemOrder++
	parent.childCount++
	opened := b.openElement(name, *path, len(stack))
	f := opened.frame
	parent.labelCount[opened.labelAlias]++
	// Value text.
	text := strings.TrimSpace(value)
	if text != "" {
		f.textChunks = append(f.textChunks, text)
		f.childCount++
		f.elemOrder++
		b.ix.Stats.TextNodes++
		for _, tok := range textproc.Normalize(text) {
			if !f.seenTokens[tok] {
				f.seenTokens[tok] = true
				b.post(tok, f.ord)
			}
		}
	}
	summary := b.closeElement(f)
	parent.children = append(parent.children, summary)
	*path = (*path)[:len(*path)-1]
	return nil
}

// closeElement finalizes subtree size, value, child categories and the
// frame's visibility tallies, returning the summary for its parent.
func (b *streamBuilder) closeElement(f *streamFrame) childSummary {
	ix := b.ix
	info := &ix.Nodes[f.ord]
	info.Subtree = int32(len(ix.Nodes)) - f.ord
	info.ChildCount = f.childCount
	if len(f.textChunks) > 0 {
		info.HasValue = true
		info.Value = strings.Join(f.textChunks, " ")
	}

	// Classify the (now complete) children with full sibling knowledge,
	// and tally their visibility toward this node.
	var attrC, repC, bothC int
	for _, cs := range f.children {
		isRep := f.labelCount[cs.label] > 1
		cat := classify(cs.directValue, isRep, cs.attrC, cs.repC, cs.bothC)
		ix.Nodes[cs.ord].Cat = cat
		ix.Nodes[cs.ord].Parent = f.ord
		qa, rv := visibility(cat, cs.attrC, cs.repC, cs.bothC)
		switch {
		case qa && rv:
			bothC++
		case qa:
			attrC++
		case rv:
			repC++
		}
	}

	// The root has no parent to classify it; do it here (roots are never
	// repeating).
	if f.depth == 0 {
		directValue := info.Subtree == 1 && info.HasValue && info.ChildCount == 1
		ix.Nodes[f.ord].Cat = classify(directValue, false, attrC, repC, bothC)
		ix.Nodes[f.ord].Parent = -1
	}

	return childSummary{
		ord:         f.ord,
		label:       ix.Nodes[f.ord].Label,
		directValue: info.Subtree == 1 && info.HasValue && info.ChildCount == 1,
		attrC:       attrC,
		repC:        repC,
		bothC:       bothC,
	}
}

// classify applies Defs 2.1.1–2.1.4 given the node's own visibility
// tallies and sibling-repetition status.
func classify(directValue, isRep bool, attrC, repC, bothC int) Category {
	switch {
	case directValue && isRep:
		return Repeating
	case directValue:
		return Attribute
	}
	var cat Category
	if isRep {
		cat |= Repeating
	}
	if entityTest(attrC, repC, bothC) {
		cat |= Entity
	}
	if cat == 0 {
		cat = Connecting
	}
	return cat
}

// visibility mirrors the tree builder's propagation rules.
func visibility(cat Category, attrC, repC, bothC int) (qa, rv bool) {
	switch {
	case cat&Repeating != 0:
		return false, true
	case cat == Attribute:
		return true, false
	default:
		return attrC+bothC > 0, repC+bothC > 0
	}
}

func (b *streamBuilder) labelID(label string) int32 {
	if id, ok := b.ix.labelIDs[label]; ok {
		return id
	}
	id := int32(len(b.ix.Labels))
	b.ix.Labels = append(b.ix.Labels, label)
	b.ix.labelIDs[label] = id
	return id
}

func (b *streamBuilder) post(keyword string, ord int32) {
	b.ix.Postings[keyword] = append(b.ix.Postings[keyword], ord)
}
