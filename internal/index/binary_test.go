package index

import (
	"bytes"
	"testing"

	"repro/internal/datagen"
	"repro/internal/dewey"
	"repro/internal/xmltree"
)

func TestBinaryRoundTrip(t *testing.T) {
	ix := buildFig2a(t)
	var buf bytes.Buffer
	if err := ix.SaveBinary(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := LoadBinary(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	assertIndexesEqual(t, ix, back)
}

func TestLoadAutoDetectsBinary(t *testing.T) {
	ix := buildFig2a(t)
	var bin, gob bytes.Buffer
	if err := ix.SaveBinary(&bin); err != nil {
		t.Fatal(err)
	}
	if err := ix.Save(&gob); err != nil {
		t.Fatal(err)
	}
	fromBin, err := Load(&bin)
	if err != nil {
		t.Fatalf("auto-detect binary: %v", err)
	}
	fromGob, err := Load(&gob)
	if err != nil {
		t.Fatalf("auto-detect gob: %v", err)
	}
	assertIndexesEqual(t, fromBin, fromGob)
}

func TestBinaryRoundTripLargeDataset(t *testing.T) {
	doc := datagen.PaperDBLP(1)
	ix, err := BuildDocument(doc, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := ix.SaveBinary(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := LoadBinary(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	assertIndexesEqual(t, ix, back)
}

func TestBinarySmallerThanGob(t *testing.T) {
	doc := datagen.SwissProt(datagen.Config{Seed: 3})
	ix, err := BuildDocument(doc, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	var bin, gobBuf bytes.Buffer
	if err := ix.SaveBinary(&bin); err != nil {
		t.Fatal(err)
	}
	if err := ix.Save(&gobBuf); err != nil {
		t.Fatal(err)
	}
	if bin.Len() >= gobBuf.Len() {
		t.Errorf("binary format (%d bytes) should beat gob (%d bytes)", bin.Len(), gobBuf.Len())
	}
	t.Logf("binary %d bytes vs gob %d bytes (%.1f%%)",
		bin.Len(), gobBuf.Len(), 100*float64(bin.Len())/float64(gobBuf.Len()))
}

func TestBinaryLoadErrors(t *testing.T) {
	if _, err := LoadBinary(bytes.NewReader(nil)); err == nil {
		t.Error("empty input must fail")
	}
	if _, err := LoadBinary(bytes.NewReader([]byte("NOPE"))); err == nil {
		t.Error("bad magic must fail")
	}
	if _, err := LoadBinary(bytes.NewReader([]byte("GKSI\x63"))); err == nil {
		t.Error("bad version must fail")
	}
	// Truncations at every prefix length must fail, not panic.
	ix := buildFig2a(t)
	var buf bytes.Buffer
	if err := ix.SaveBinary(&buf); err != nil {
		t.Fatal(err)
	}
	full := buf.Bytes()
	for _, cut := range []int{5, 10, 20, 50, 100, len(full) / 2, len(full) - 1} {
		if cut >= len(full) {
			continue
		}
		if _, err := LoadBinary(bytes.NewReader(full[:cut])); err == nil {
			t.Errorf("truncation at %d bytes must fail", cut)
		}
	}
}

func TestBinaryDeterministic(t *testing.T) {
	ix := buildFig2a(t)
	var a, b bytes.Buffer
	if err := ix.SaveBinary(&a); err != nil {
		t.Fatal(err)
	}
	if err := ix.SaveBinary(&b); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Error("binary serialization must be deterministic")
	}
}

func assertIndexesEqual(t *testing.T, a, b *Index) {
	t.Helper()
	if len(a.Nodes) != len(b.Nodes) {
		t.Fatalf("node counts differ: %d vs %d", len(a.Nodes), len(b.Nodes))
	}
	for i := range a.Nodes {
		na, nb := &a.Nodes[i], &b.Nodes[i]
		if !dewey.Equal(na.ID, nb.ID) || na.Label != nb.Label || na.Cat != nb.Cat ||
			na.ChildCount != nb.ChildCount || na.Subtree != nb.Subtree ||
			na.Parent != nb.Parent || na.HasValue != nb.HasValue || na.Value != nb.Value {
			t.Fatalf("node %d differs: %+v vs %+v", i, na, nb)
		}
	}
	if len(a.Postings) != len(b.Postings) {
		t.Fatalf("posting keys differ: %d vs %d", len(a.Postings), len(b.Postings))
	}
	for k, la := range a.Postings {
		lb := b.Postings[k]
		if len(la) != len(lb) {
			t.Fatalf("postings %q differ in length", k)
		}
		for i := range la {
			if la[i] != lb[i] {
				t.Fatalf("postings %q differ at %d", k, i)
			}
		}
	}
	if a.Stats != b.Stats {
		t.Errorf("stats differ: %+v vs %+v", a.Stats, b.Stats)
	}
	if len(a.Labels) != len(b.Labels) || len(a.DocNames) != len(b.DocNames) {
		t.Error("label or doc tables differ")
	}
	// Lookup must work after load (labelIDs rebuilt).
	if la, lb := a.Lookup("karen"), b.Lookup("karen"); len(la) != len(lb) {
		t.Error("lookup differs after round trip")
	}
}

func TestMultiDocBinaryRoundTrip(t *testing.T) {
	var repo xmltree.Repository
	repo.Add(xmltree.BuildFigure2a())
	repo.Add(xmltree.BuildFigure1())
	ix, err := Build(&repo, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := ix.SaveBinary(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := Load(&buf)
	if err != nil {
		t.Fatal(err)
	}
	assertIndexesEqual(t, ix, back)
}
