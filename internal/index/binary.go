package index

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"sort"

	"repro/internal/dewey"
	"repro/internal/postings"
)

// Binary index format ("GKSI", version 2): a compact, self-describing
// serialization that stores posting lists delta-varint compressed
// (internal/postings) and Dewey IDs with the varint codec
// (internal/dewey). It is substantially smaller and faster to decode than
// the gob format (format v1), which is retained for compatibility; Load
// and LoadFile auto-detect the format from the leading magic bytes.
//
// Layout (all integers unsigned varints unless noted):
//
//	magic "GKSI" | version
//	labels:   count, then len+bytes each
//	docs:     count, then len+bytes each
//	nodes:    count, then per node:
//	            dewey(binary codec) label cat(byte) childCount subtree
//	            parent+1 hasValue(byte) [valueLen valueBytes]
//	postings: count, then per keyword:
//	            keyLen keyBytes n deltaVarints...
//	stats:    fixed sequence of varints
const binaryMagic = "GKSI"

const binaryVersion = 2

// SaveBinary writes the index in the compact binary format.
func (ix *Index) SaveBinary(w io.Writer) error {
	bw := bufio.NewWriter(w)
	var scratch []byte
	writeUvarint := func(v uint64) {
		scratch = binary.AppendUvarint(scratch[:0], v)
		bw.Write(scratch)
	}
	writeString := func(s string) {
		writeUvarint(uint64(len(s)))
		bw.WriteString(s)
	}

	bw.WriteString(binaryMagic)
	writeUvarint(binaryVersion)

	writeUvarint(uint64(len(ix.Labels)))
	for _, l := range ix.Labels {
		writeString(l)
	}
	writeUvarint(uint64(len(ix.DocNames)))
	for _, d := range ix.DocNames {
		writeString(d)
	}

	writeUvarint(uint64(len(ix.Nodes)))
	for i := range ix.Nodes {
		n := &ix.Nodes[i]
		scratch = n.ID.AppendBinary(scratch[:0])
		bw.Write(scratch)
		writeUvarint(uint64(n.Label))
		bw.WriteByte(byte(n.Cat))
		writeUvarint(uint64(n.ChildCount))
		writeUvarint(uint64(n.Subtree))
		writeUvarint(uint64(n.Parent + 1))
		if n.HasValue {
			bw.WriteByte(1)
			writeString(n.Value)
		} else {
			bw.WriteByte(0)
		}
	}

	// Keywords are written sorted so the format is deterministic.
	keys := make([]string, 0, len(ix.Postings))
	for k := range ix.Postings {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	writeUvarint(uint64(len(keys)))
	for _, k := range keys {
		writeString(k)
		list := ix.Postings[k]
		writeUvarint(uint64(len(list)))
		scratch = postings.Encode(scratch[:0], list)
		bw.Write(scratch)
	}

	for _, v := range ix.Stats.fields() {
		writeUvarint(uint64(v))
	}
	return bw.Flush()
}

// fields flattens Stats for serialization; order is part of the format.
func (s *Stats) fields() []int {
	return []int{
		s.Documents, s.ElementNodes, s.TextNodes, s.AttributeNodes,
		s.RepeatingNodes, s.EntityNodes, s.ConnectingNodes,
		s.DistinctKeywords, s.PostingEntries, s.MaxDepth,
	}
}

func (s *Stats) setFields(v []int) {
	s.Documents, s.ElementNodes, s.TextNodes, s.AttributeNodes,
		s.RepeatingNodes, s.EntityNodes, s.ConnectingNodes,
		s.DistinctKeywords, s.PostingEntries, s.MaxDepth =
		v[0], v[1], v[2], v[3], v[4], v[5], v[6], v[7], v[8], v[9]
}

const statsFieldCount = 10

// LoadBinary reads an index written by SaveBinary. The magic bytes must
// already be verified by the caller (Load does this) or present in r.
func LoadBinary(r io.Reader) (*Index, error) {
	br := bufio.NewReader(r)
	var magic [4]byte
	if _, err := io.ReadFull(br, magic[:]); err != nil {
		return nil, fmt.Errorf("index: binary load: %w", err)
	}
	if string(magic[:]) != binaryMagic {
		return nil, fmt.Errorf("index: binary load: bad magic %q", magic)
	}
	return loadBinaryAfterMagic(br)
}

func loadBinaryAfterMagic(br *bufio.Reader) (*Index, error) {
	readUvarint := func() (uint64, error) { return binary.ReadUvarint(br) }
	readString := func() (string, error) {
		n, err := readUvarint()
		if err != nil {
			return "", err
		}
		if n > 1<<28 {
			return "", fmt.Errorf("implausible string length %d", n)
		}
		buf := make([]byte, n)
		if _, err := io.ReadFull(br, buf); err != nil {
			return "", err
		}
		return string(buf), nil
	}
	fail := func(what string, err error) (*Index, error) {
		return nil, fmt.Errorf("index: binary load: %s: %w", what, err)
	}

	version, err := readUvarint()
	if err != nil {
		return fail("version", err)
	}
	if version != binaryVersion {
		return nil, fmt.Errorf("index: binary load: unsupported version %d", version)
	}

	ix := &Index{Postings: make(map[string][]int32), labelIDs: make(map[string]int32)}
	nLabels, err := readUvarint()
	if err != nil {
		return fail("label count", err)
	}
	for i := uint64(0); i < nLabels; i++ {
		l, err := readString()
		if err != nil {
			return fail("label", err)
		}
		ix.labelIDs[l] = int32(len(ix.Labels))
		ix.Labels = append(ix.Labels, l)
	}
	nDocs, err := readUvarint()
	if err != nil {
		return fail("doc count", err)
	}
	for i := uint64(0); i < nDocs; i++ {
		d, err := readString()
		if err != nil {
			return fail("doc name", err)
		}
		ix.DocNames = append(ix.DocNames, d)
	}

	nNodes, err := readUvarint()
	if err != nil {
		return fail("node count", err)
	}
	if nNodes > 1<<31 {
		return nil, fmt.Errorf("index: binary load: implausible node count %d", nNodes)
	}
	ix.Nodes = make([]NodeInfo, nNodes)
	for i := range ix.Nodes {
		n := &ix.Nodes[i]
		id, err := readDewey(br)
		if err != nil {
			return fail("dewey", err)
		}
		n.ID = id
		label, err := readUvarint()
		if err != nil {
			return fail("node label", err)
		}
		n.Label = int32(label)
		cat, err := br.ReadByte()
		if err != nil {
			return fail("node category", err)
		}
		n.Cat = Category(cat)
		cc, err := readUvarint()
		if err != nil {
			return fail("child count", err)
		}
		n.ChildCount = int32(cc)
		st, err := readUvarint()
		if err != nil {
			return fail("subtree", err)
		}
		n.Subtree = int32(st)
		parent, err := readUvarint()
		if err != nil {
			return fail("parent", err)
		}
		n.Parent = int32(parent) - 1
		hv, err := br.ReadByte()
		if err != nil {
			return fail("has-value flag", err)
		}
		if hv == 1 {
			n.HasValue = true
			if n.Value, err = readString(); err != nil {
				return fail("value", err)
			}
		}
	}

	nKeys, err := readUvarint()
	if err != nil {
		return fail("keyword count", err)
	}
	for i := uint64(0); i < nKeys; i++ {
		key, err := readString()
		if err != nil {
			return fail("keyword", err)
		}
		n, err := readUvarint()
		if err != nil {
			return fail("posting count", err)
		}
		list := make([]int32, 0, n)
		prev := int32(-1)
		for j := uint64(0); j < n; j++ {
			d, err := readUvarint()
			if err != nil {
				return fail("posting delta", err)
			}
			prev += int32(d)
			list = append(list, prev)
		}
		ix.Postings[key] = list
	}

	vals := make([]int, statsFieldCount)
	for i := range vals {
		v, err := readUvarint()
		if err != nil {
			return fail("stats", err)
		}
		vals[i] = int(v)
	}
	ix.Stats.setFields(vals)
	return ix, nil
}

// readDewey decodes one varint-framed Dewey ID from the reader.
func readDewey(br *bufio.Reader) (dewey.ID, error) {
	doc, err := binary.ReadUvarint(br)
	if err != nil {
		return dewey.ID{}, err
	}
	length, err := binary.ReadUvarint(br)
	if err != nil {
		return dewey.ID{}, err
	}
	if length > 1<<20 {
		return dewey.ID{}, fmt.Errorf("implausible path length %d", length)
	}
	path := make([]int32, length)
	for i := range path {
		c, err := binary.ReadUvarint(br)
		if err != nil {
			return dewey.ID{}, err
		}
		path[i] = int32(uint32(c))
	}
	return dewey.ID{Doc: int32(uint32(doc)), Path: path}, nil
}
