package index

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"

	"repro/internal/dewey"
	"repro/internal/postings"
)

// Binary index format ("GKSI", version 2): a compact, self-describing
// serialization that stores posting lists delta-varint compressed
// (internal/postings) and Dewey IDs with the varint codec
// (internal/dewey). It is substantially smaller and faster to decode than
// the gob format (format v1), which is retained for compatibility; Load
// and LoadFile auto-detect the format from the leading magic bytes.
//
// Layout (all integers unsigned varints unless noted):
//
//	magic "GKSI" | version
//	labels:   count, then len+bytes each
//	docs:     count, then len+bytes each
//	nodes:    count, then per node:
//	            dewey(binary codec) label cat(byte) childCount subtree
//	            parent+1 hasValue(byte) [valueLen valueBytes]
//	postings: count, then per keyword:
//	            keyLen keyBytes n deltaVarints...
//	stats:    fixed sequence of varints
const binaryMagic = "GKSI"

const binaryVersion = 2

// binWriter bundles the buffered writer and varint scratch the binary
// encoders share.
type binWriter struct {
	bw      *bufio.Writer
	scratch []byte
}

func (w *binWriter) uvarint(v uint64) {
	w.scratch = binary.AppendUvarint(w.scratch[:0], v)
	w.bw.Write(w.scratch)
}

func (w *binWriter) str(s string) {
	w.uvarint(uint64(len(s)))
	w.bw.WriteString(s)
}

// writeMeta writes the labels/docs/nodes sections in the v2 encoding —
// the part of the format shared between SaveBinary and the GKS4 segment
// meta section.
func (w *binWriter) writeMeta(ix *Index) {
	w.uvarint(uint64(len(ix.Labels)))
	for _, l := range ix.Labels {
		w.str(l)
	}
	w.uvarint(uint64(len(ix.DocNames)))
	for _, d := range ix.DocNames {
		w.str(d)
	}

	w.uvarint(uint64(len(ix.Nodes)))
	for i := range ix.Nodes {
		n := &ix.Nodes[i]
		w.scratch = n.ID.AppendBinary(w.scratch[:0])
		w.bw.Write(w.scratch)
		w.uvarint(uint64(n.Label))
		w.bw.WriteByte(byte(n.Cat))
		w.uvarint(uint64(n.ChildCount))
		w.uvarint(uint64(n.Subtree))
		w.uvarint(uint64(n.Parent + 1))
		if n.HasValue {
			w.bw.WriteByte(1)
			w.str(n.Value)
		} else {
			w.bw.WriteByte(0)
		}
	}
}

// EncodeMeta writes the labels, document names and node table in the v2
// encoding, without magic or version framing. This is the GKS4 segment
// meta section (internal/segment); DecodeMeta is its inverse. A
// tombstoned index must be compacted by the caller first.
func EncodeMeta(w io.Writer, ix *Index) error {
	bw := &binWriter{bw: bufio.NewWriter(w)}
	bw.writeMeta(ix)
	return bw.bw.Flush()
}

// SaveBinary writes the index in the compact binary format. A tombstoned
// index is compacted first — the on-disk formats have no notion of a
// delete mask — and a lazily-backed index streams its lists from the
// source one at a time, so serializing never materializes the postings.
func (ix *Index) SaveBinary(w io.Writer) error {
	ix = ix.Compacted()
	bw := &binWriter{bw: bufio.NewWriter(w)}

	bw.bw.WriteString(binaryMagic)
	bw.uvarint(binaryVersion)
	bw.writeMeta(ix)

	// Keywords are written sorted so the format is deterministic. A
	// separate buffer keeps list encoding off bw.scratch, which the
	// uvarint helper reuses.
	var encBuf []byte
	bw.uvarint(uint64(ix.keywordCount()))
	err := ix.ForEachKeywordSorted(func(k string, list []int32) error {
		bw.str(k)
		bw.uvarint(uint64(len(list)))
		encBuf = postings.Encode(encBuf[:0], list)
		bw.bw.Write(encBuf)
		return nil
	})
	if err != nil {
		return err
	}

	for _, v := range ix.Stats.fields() {
		bw.uvarint(uint64(v))
	}
	return bw.bw.Flush()
}

// fields flattens Stats for serialization; order is part of the format.
func (s *Stats) fields() []int {
	return []int{
		s.Documents, s.ElementNodes, s.TextNodes, s.AttributeNodes,
		s.RepeatingNodes, s.EntityNodes, s.ConnectingNodes,
		s.DistinctKeywords, s.PostingEntries, s.MaxDepth,
	}
}

func (s *Stats) setFields(v []int) {
	s.Documents, s.ElementNodes, s.TextNodes, s.AttributeNodes,
		s.RepeatingNodes, s.EntityNodes, s.ConnectingNodes,
		s.DistinctKeywords, s.PostingEntries, s.MaxDepth =
		v[0], v[1], v[2], v[3], v[4], v[5], v[6], v[7], v[8], v[9]
}

const statsFieldCount = 10

// LoadBinary reads an index written by SaveBinary. The magic bytes must
// already be verified by the caller (Load does this) or present in r.
func LoadBinary(r io.Reader) (*Index, error) {
	br := bufio.NewReader(r)
	var magic [4]byte
	if _, err := io.ReadFull(br, magic[:]); err != nil {
		return nil, corruptf("binary load: magic: %v", err)
	}
	if string(magic[:]) != binaryMagic {
		return nil, corruptf("binary load: bad magic %q", magic)
	}
	return loadBinaryAfterMagic(br, -1)
}

// preallocCap bounds an upfront slice allocation for a decoded count when
// the input size is unknown: the slice starts at most this many elements
// and grows by append, so a lying count costs a bounded allocation before
// the stream runs dry and decoding fails.
const preallocCap = 1 << 16

// boundedCount validates a decoded element count. Every element occupies at
// least minBytes bytes of input, so when the input size is known a count
// exceeding size/minBytes proves corruption before anything is allocated;
// absCap is the structural ceiling (e.g. node ordinals are int32).
func boundedCount(what string, n uint64, minBytes, size int64, absCap uint64) (int, error) {
	if n > absCap {
		return 0, corruptf("binary load: implausible %s %d", what, n)
	}
	if size >= 0 && n > uint64(size)/uint64(minBytes) {
		return 0, corruptf("binary load: %s %d exceeds what %d input bytes can hold", what, n, size)
	}
	return int(n), nil
}

// loadBinaryAfterMagic decodes a v2 stream whose magic has been consumed.
// size bounds the bytes plausibly remaining in br (< 0 when unknown); all
// pre-allocations are capped against it so corrupt counts fail with
// ErrCorrupt instead of demanding multi-GB allocations.
func loadBinaryAfterMagic(br *bufio.Reader, size int64) (*Index, error) {
	readUvarint := func() (uint64, error) { return binary.ReadUvarint(br) }
	readString := func() (string, error) {
		n, err := readUvarint()
		if err != nil {
			return "", err
		}
		if n > 1<<28 || (size >= 0 && n > uint64(size)) {
			return "", corruptf("binary load: implausible string length %d", n)
		}
		buf := make([]byte, n)
		if _, err := io.ReadFull(br, buf); err != nil {
			return "", err
		}
		return string(buf), nil
	}
	fail := func(what string, err error) (*Index, error) {
		if errors.Is(err, ErrCorrupt) {
			return nil, err
		}
		return nil, corruptf("binary load: %s: %v", what, err)
	}

	version, err := readUvarint()
	if err != nil {
		return fail("version", err)
	}
	if version != binaryVersion {
		return nil, corruptf("binary load: unsupported version %d", version)
	}

	ix := &Index{Postings: make(map[string][]int32), labelIDs: make(map[string]int32)}
	if err := readMetaInto(br, size, ix); err != nil {
		return nil, err
	}

	nKeys, err := readUvarint()
	if err != nil {
		return fail("keyword count", err)
	}
	if _, err := boundedCount("keyword count", nKeys, 1, size, 1<<31); err != nil {
		return nil, err
	}
	for i := uint64(0); i < nKeys; i++ {
		key, err := readString()
		if err != nil {
			return fail("keyword", err)
		}
		rawN, err := readUvarint()
		if err != nil {
			return fail("posting count", err)
		}
		n, err := boundedCount("posting count", rawN, 1, size, 1<<31)
		if err != nil {
			return nil, err
		}
		list := make([]int32, 0, min(n, preallocCap))
		prev := int32(-1)
		for j := 0; j < n; j++ {
			d, err := readUvarint()
			if err != nil {
				return fail("posting delta", err)
			}
			// A zero delta would decode a duplicate ordinal — lists are
			// strictly increasing by invariant, and the save-path codec
			// enforces it, so accepting one here would plant a panic in a
			// later save.
			if d == 0 {
				return nil, corruptf("binary load: keyword %q: zero posting delta", key)
			}
			prev += int32(d)
			list = append(list, prev)
		}
		ix.Postings[key] = list
	}

	vals := make([]int, statsFieldCount)
	for i := range vals {
		v, err := readUvarint()
		if err != nil {
			return fail("stats", err)
		}
		vals[i] = int(v)
	}
	ix.Stats.setFields(vals)
	return ix, nil
}

// DecodeMeta reads the labels/docs/nodes sections written by EncodeMeta
// into a fresh Index with no posting lists and zero statistics — the
// skeleton internal/segment hands to NewLazy. size bounds allocations as
// in Load; damaged input fails with ErrCorrupt.
func DecodeMeta(r io.Reader, size int64) (*Index, error) {
	br := bufio.NewReader(r)
	ix := &Index{labelIDs: make(map[string]int32)}
	if err := readMetaInto(br, size, ix); err != nil {
		return nil, err
	}
	return ix, nil
}

// readMetaInto decodes the labels/docs/nodes sections (the writeMeta
// layout) into ix. size bounds pre-allocations as in loadBinaryAfterMagic.
func readMetaInto(br *bufio.Reader, size int64, ix *Index) error {
	readUvarint := func() (uint64, error) { return binary.ReadUvarint(br) }
	readString := func() (string, error) {
		n, err := readUvarint()
		if err != nil {
			return "", err
		}
		if n > 1<<28 || (size >= 0 && n > uint64(size)) {
			return "", corruptf("binary load: implausible string length %d", n)
		}
		buf := make([]byte, n)
		if _, err := io.ReadFull(br, buf); err != nil {
			return "", err
		}
		return string(buf), nil
	}
	fail := func(what string, err error) error {
		if errors.Is(err, ErrCorrupt) {
			return err
		}
		return corruptf("binary load: %s: %v", what, err)
	}

	nLabels, err := readUvarint()
	if err != nil {
		return fail("label count", err)
	}
	if _, err := boundedCount("label count", nLabels, 1, size, 1<<31); err != nil {
		return err
	}
	for i := uint64(0); i < nLabels; i++ {
		l, err := readString()
		if err != nil {
			return fail("label", err)
		}
		ix.labelIDs[l] = int32(len(ix.Labels))
		ix.Labels = append(ix.Labels, l)
	}
	nDocs, err := readUvarint()
	if err != nil {
		return fail("doc count", err)
	}
	if _, err := boundedCount("doc count", nDocs, 1, size, 1<<31); err != nil {
		return err
	}
	for i := uint64(0); i < nDocs; i++ {
		d, err := readString()
		if err != nil {
			return fail("doc name", err)
		}
		ix.DocNames = append(ix.DocNames, d)
	}

	rawNodes, err := readUvarint()
	if err != nil {
		return fail("node count", err)
	}
	// A serialized node is at least 8 bytes (2 dewey varints + label +
	// category + child count + subtree + parent + has-value flag).
	nNodes, err := boundedCount("node count", rawNodes, 8, size, 1<<31)
	if err != nil {
		return err
	}
	ix.Nodes = make([]NodeInfo, 0, min(nNodes, preallocCap))
	for i := 0; i < nNodes; i++ {
		var n NodeInfo
		id, err := readDewey(br)
		if err != nil {
			return fail("dewey", err)
		}
		n.ID = id
		label, err := readUvarint()
		if err != nil {
			return fail("node label", err)
		}
		n.Label = int32(label)
		cat, err := br.ReadByte()
		if err != nil {
			return fail("node category", err)
		}
		n.Cat = Category(cat)
		cc, err := readUvarint()
		if err != nil {
			return fail("child count", err)
		}
		n.ChildCount = int32(cc)
		st, err := readUvarint()
		if err != nil {
			return fail("subtree", err)
		}
		n.Subtree = int32(st)
		parent, err := readUvarint()
		if err != nil {
			return fail("parent", err)
		}
		n.Parent = int32(parent) - 1
		hv, err := br.ReadByte()
		if err != nil {
			return fail("has-value flag", err)
		}
		if hv == 1 {
			n.HasValue = true
			if n.Value, err = readString(); err != nil {
				return fail("value", err)
			}
		}
		ix.Nodes = append(ix.Nodes, n)
	}
	return nil
}

// readDewey decodes one varint-framed Dewey ID from the reader.
func readDewey(br *bufio.Reader) (dewey.ID, error) {
	doc, err := binary.ReadUvarint(br)
	if err != nil {
		return dewey.ID{}, err
	}
	length, err := binary.ReadUvarint(br)
	if err != nil {
		return dewey.ID{}, err
	}
	if length > 1<<20 {
		return dewey.ID{}, fmt.Errorf("implausible path length %d", length)
	}
	path := make([]int32, length)
	for i := range path {
		c, err := binary.ReadUvarint(br)
		if err != nil {
			return dewey.ID{}, err
		}
		path[i] = int32(uint32(c))
	}
	return dewey.ID{Doc: int32(uint32(doc)), Path: path}, nil
}
