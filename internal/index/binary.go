package index

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"sort"

	"repro/internal/dewey"
	"repro/internal/postings"
)

// Binary index format ("GKSI", version 2): a compact, self-describing
// serialization that stores posting lists delta-varint compressed
// (internal/postings) and Dewey IDs with the varint codec
// (internal/dewey). It is substantially smaller and faster to decode than
// the gob format (format v1), which is retained for compatibility; Load
// and LoadFile auto-detect the format from the leading magic bytes.
//
// Layout (all integers unsigned varints unless noted):
//
//	magic "GKSI" | version
//	labels:   count, then len+bytes each
//	docs:     count, then len+bytes each
//	nodes:    count, then per node:
//	            dewey(binary codec) label cat(byte) childCount subtree
//	            parent+1 hasValue(byte) [valueLen valueBytes]
//	postings: count, then per keyword:
//	            keyLen keyBytes n deltaVarints...
//	stats:    fixed sequence of varints
const binaryMagic = "GKSI"

const binaryVersion = 2

// SaveBinary writes the index in the compact binary format. A tombstoned
// index is compacted first — the on-disk formats have no notion of a
// delete mask.
func (ix *Index) SaveBinary(w io.Writer) error {
	ix = ix.Compacted()
	bw := bufio.NewWriter(w)
	var scratch []byte
	writeUvarint := func(v uint64) {
		scratch = binary.AppendUvarint(scratch[:0], v)
		bw.Write(scratch)
	}
	writeString := func(s string) {
		writeUvarint(uint64(len(s)))
		bw.WriteString(s)
	}

	bw.WriteString(binaryMagic)
	writeUvarint(binaryVersion)

	writeUvarint(uint64(len(ix.Labels)))
	for _, l := range ix.Labels {
		writeString(l)
	}
	writeUvarint(uint64(len(ix.DocNames)))
	for _, d := range ix.DocNames {
		writeString(d)
	}

	writeUvarint(uint64(len(ix.Nodes)))
	for i := range ix.Nodes {
		n := &ix.Nodes[i]
		scratch = n.ID.AppendBinary(scratch[:0])
		bw.Write(scratch)
		writeUvarint(uint64(n.Label))
		bw.WriteByte(byte(n.Cat))
		writeUvarint(uint64(n.ChildCount))
		writeUvarint(uint64(n.Subtree))
		writeUvarint(uint64(n.Parent + 1))
		if n.HasValue {
			bw.WriteByte(1)
			writeString(n.Value)
		} else {
			bw.WriteByte(0)
		}
	}

	// Keywords are written sorted so the format is deterministic.
	keys := make([]string, 0, len(ix.Postings))
	for k := range ix.Postings {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	writeUvarint(uint64(len(keys)))
	for _, k := range keys {
		writeString(k)
		list := ix.Postings[k]
		writeUvarint(uint64(len(list)))
		scratch = postings.Encode(scratch[:0], list)
		bw.Write(scratch)
	}

	for _, v := range ix.Stats.fields() {
		writeUvarint(uint64(v))
	}
	return bw.Flush()
}

// fields flattens Stats for serialization; order is part of the format.
func (s *Stats) fields() []int {
	return []int{
		s.Documents, s.ElementNodes, s.TextNodes, s.AttributeNodes,
		s.RepeatingNodes, s.EntityNodes, s.ConnectingNodes,
		s.DistinctKeywords, s.PostingEntries, s.MaxDepth,
	}
}

func (s *Stats) setFields(v []int) {
	s.Documents, s.ElementNodes, s.TextNodes, s.AttributeNodes,
		s.RepeatingNodes, s.EntityNodes, s.ConnectingNodes,
		s.DistinctKeywords, s.PostingEntries, s.MaxDepth =
		v[0], v[1], v[2], v[3], v[4], v[5], v[6], v[7], v[8], v[9]
}

const statsFieldCount = 10

// LoadBinary reads an index written by SaveBinary. The magic bytes must
// already be verified by the caller (Load does this) or present in r.
func LoadBinary(r io.Reader) (*Index, error) {
	br := bufio.NewReader(r)
	var magic [4]byte
	if _, err := io.ReadFull(br, magic[:]); err != nil {
		return nil, corruptf("binary load: magic: %v", err)
	}
	if string(magic[:]) != binaryMagic {
		return nil, corruptf("binary load: bad magic %q", magic)
	}
	return loadBinaryAfterMagic(br, -1)
}

// preallocCap bounds an upfront slice allocation for a decoded count when
// the input size is unknown: the slice starts at most this many elements
// and grows by append, so a lying count costs a bounded allocation before
// the stream runs dry and decoding fails.
const preallocCap = 1 << 16

// boundedCount validates a decoded element count. Every element occupies at
// least minBytes bytes of input, so when the input size is known a count
// exceeding size/minBytes proves corruption before anything is allocated;
// absCap is the structural ceiling (e.g. node ordinals are int32).
func boundedCount(what string, n uint64, minBytes, size int64, absCap uint64) (int, error) {
	if n > absCap {
		return 0, corruptf("binary load: implausible %s %d", what, n)
	}
	if size >= 0 && n > uint64(size)/uint64(minBytes) {
		return 0, corruptf("binary load: %s %d exceeds what %d input bytes can hold", what, n, size)
	}
	return int(n), nil
}

// loadBinaryAfterMagic decodes a v2 stream whose magic has been consumed.
// size bounds the bytes plausibly remaining in br (< 0 when unknown); all
// pre-allocations are capped against it so corrupt counts fail with
// ErrCorrupt instead of demanding multi-GB allocations.
func loadBinaryAfterMagic(br *bufio.Reader, size int64) (*Index, error) {
	readUvarint := func() (uint64, error) { return binary.ReadUvarint(br) }
	readString := func() (string, error) {
		n, err := readUvarint()
		if err != nil {
			return "", err
		}
		if n > 1<<28 || (size >= 0 && n > uint64(size)) {
			return "", corruptf("binary load: implausible string length %d", n)
		}
		buf := make([]byte, n)
		if _, err := io.ReadFull(br, buf); err != nil {
			return "", err
		}
		return string(buf), nil
	}
	fail := func(what string, err error) (*Index, error) {
		if errors.Is(err, ErrCorrupt) {
			return nil, err
		}
		return nil, corruptf("binary load: %s: %v", what, err)
	}

	version, err := readUvarint()
	if err != nil {
		return fail("version", err)
	}
	if version != binaryVersion {
		return nil, corruptf("binary load: unsupported version %d", version)
	}

	ix := &Index{Postings: make(map[string][]int32), labelIDs: make(map[string]int32)}
	nLabels, err := readUvarint()
	if err != nil {
		return fail("label count", err)
	}
	if _, err := boundedCount("label count", nLabels, 1, size, 1<<31); err != nil {
		return nil, err
	}
	for i := uint64(0); i < nLabels; i++ {
		l, err := readString()
		if err != nil {
			return fail("label", err)
		}
		ix.labelIDs[l] = int32(len(ix.Labels))
		ix.Labels = append(ix.Labels, l)
	}
	nDocs, err := readUvarint()
	if err != nil {
		return fail("doc count", err)
	}
	if _, err := boundedCount("doc count", nDocs, 1, size, 1<<31); err != nil {
		return nil, err
	}
	for i := uint64(0); i < nDocs; i++ {
		d, err := readString()
		if err != nil {
			return fail("doc name", err)
		}
		ix.DocNames = append(ix.DocNames, d)
	}

	rawNodes, err := readUvarint()
	if err != nil {
		return fail("node count", err)
	}
	// A serialized node is at least 8 bytes (2 dewey varints + label +
	// category + child count + subtree + parent + has-value flag).
	nNodes, err := boundedCount("node count", rawNodes, 8, size, 1<<31)
	if err != nil {
		return nil, err
	}
	ix.Nodes = make([]NodeInfo, 0, min(nNodes, preallocCap))
	for i := 0; i < nNodes; i++ {
		var n NodeInfo
		id, err := readDewey(br)
		if err != nil {
			return fail("dewey", err)
		}
		n.ID = id
		label, err := readUvarint()
		if err != nil {
			return fail("node label", err)
		}
		n.Label = int32(label)
		cat, err := br.ReadByte()
		if err != nil {
			return fail("node category", err)
		}
		n.Cat = Category(cat)
		cc, err := readUvarint()
		if err != nil {
			return fail("child count", err)
		}
		n.ChildCount = int32(cc)
		st, err := readUvarint()
		if err != nil {
			return fail("subtree", err)
		}
		n.Subtree = int32(st)
		parent, err := readUvarint()
		if err != nil {
			return fail("parent", err)
		}
		n.Parent = int32(parent) - 1
		hv, err := br.ReadByte()
		if err != nil {
			return fail("has-value flag", err)
		}
		if hv == 1 {
			n.HasValue = true
			if n.Value, err = readString(); err != nil {
				return fail("value", err)
			}
		}
		ix.Nodes = append(ix.Nodes, n)
	}

	nKeys, err := readUvarint()
	if err != nil {
		return fail("keyword count", err)
	}
	if _, err := boundedCount("keyword count", nKeys, 1, size, 1<<31); err != nil {
		return nil, err
	}
	for i := uint64(0); i < nKeys; i++ {
		key, err := readString()
		if err != nil {
			return fail("keyword", err)
		}
		rawN, err := readUvarint()
		if err != nil {
			return fail("posting count", err)
		}
		n, err := boundedCount("posting count", rawN, 1, size, 1<<31)
		if err != nil {
			return nil, err
		}
		list := make([]int32, 0, min(n, preallocCap))
		prev := int32(-1)
		for j := 0; j < n; j++ {
			d, err := readUvarint()
			if err != nil {
				return fail("posting delta", err)
			}
			prev += int32(d)
			list = append(list, prev)
		}
		ix.Postings[key] = list
	}

	vals := make([]int, statsFieldCount)
	for i := range vals {
		v, err := readUvarint()
		if err != nil {
			return fail("stats", err)
		}
		vals[i] = int(v)
	}
	ix.Stats.setFields(vals)
	return ix, nil
}

// readDewey decodes one varint-framed Dewey ID from the reader.
func readDewey(br *bufio.Reader) (dewey.ID, error) {
	doc, err := binary.ReadUvarint(br)
	if err != nil {
		return dewey.ID{}, err
	}
	length, err := binary.ReadUvarint(br)
	if err != nil {
		return dewey.ID{}, err
	}
	if length > 1<<20 {
		return dewey.ID{}, fmt.Errorf("implausible path length %d", length)
	}
	path := make([]int32, length)
	for i := range path {
		c, err := binary.ReadUvarint(br)
		if err != nil {
			return dewey.ID{}, err
		}
		path[i] = int32(uint32(c))
	}
	return dewey.ID{Doc: int32(uint32(doc)), Path: path}, nil
}
